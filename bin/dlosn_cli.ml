(* dlosn: command-line front end for the diffusive-logistic information
   diffusion library.

   Subcommands:
     generate      build a synthetic Digg corpus and save it as TSV
     characterize  print the temporal/spatial density patterns (Figs 2-5)
     predict       run the DL prediction pipeline on a story (Fig 7, Tables I-II)
     properties    verify the model's theoretical properties numerically
     sweep         parameter-sensitivity sweep over d, r and K
     tournament    rank every registry model on a shared story set *)

open Cmdliner

(* --- shared options --- *)

let scale_conv =
  let parse = function
    | "small" -> Ok Socialnet.Digg.small
    | "medium" -> Ok Socialnet.Digg.medium
    | "full" -> Ok Socialnet.Digg.full
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (small|medium|full)" s))
  in
  let print ppf (s : Socialnet.Digg.scale) =
    Format.fprintf ppf "%d-users" s.Socialnet.Digg.n_users
  in
  Arg.conv (parse, print)

let scale_arg =
  Arg.(
    value
    & opt scale_conv Socialnet.Digg.medium
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Corpus scale: small (~2k users), medium (~20k), full \
              (139,409 users / 3,553 stories, the paper's scale).")

let seed_arg =
  Arg.(
    value & opt int 7
    & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic corpus seed.")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> Ok j
    | Some _ -> Error (`Msg "expected a worker count >= 1")
    | None -> Error (`Msg "expected an integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for the parallel sections (calibration \
              restarts, per-story batch evaluation, sweeps).  Defaults \
              to the $(b,DLOSN_NUM_DOMAINS) environment variable, or 1. \
              Results are bit-identical whatever the value; on OCaml 4 \
              the value is clamped to 1.")

let pool_of_jobs = function
  | Some j -> Parallel.Pool.create ~jobs:j ()
  | None -> Parallel.Pool.create ()

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Persist every completed calibration into the model store \
              at DIR (created if missing) so it can be inspected with \
              $(b,dlosn store) or warm-start $(b,dlosn serve).")

(* Run [f] with the process-wide fit hook wired to a store at [dir],
   so every Fit.fit completed inside [f] is durably checkpointed. *)
let with_fit_store store_dir f =
  match store_dir with
  | None -> f ()
  | Some dir ->
    let store = Store.open_ ~source:"cli" dir in
    Store.attach_fit_hook store ();
    Fun.protect
      ~finally:(fun () ->
        Store.detach_fit_hook ();
        Store.close store)
      f

(* --- observability options (shared by every subcommand) --- *)

let log_level_conv =
  let parse s =
    match Obs.Level.of_string s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  let print ppf l = Format.pp_print_string ppf (Obs.Level.to_string l) in
  Arg.conv (parse, print)

let log_level_arg =
  Arg.(
    value
    & opt (some log_level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Enable structured logging on stderr at LEVEL (debug, info, \
              warn or error).  The $(b,DLOSN_LOG) environment variable \
              sets the same default.")

let log_json_arg =
  Arg.(
    value & flag
    & info [ "log-json" ]
        ~doc:"Emit logs as JSON lines instead of human-readable text \
              (implies $(b,--log-level) info when no level is given).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"After the command finishes, dump every recorded counter, \
              gauge and histogram to FILE as JSON (schema \
              dlosn-metrics/1).")

let no_solver_cache_arg =
  Arg.(
    value & flag
    & info [ "no-solver-cache" ]
        ~doc:"Disable the solver fast paths: run the per-step-allocating \
              reference PDE stepper instead of the cached-factorization \
              workspace, and turn off fitting-objective memoization.  \
              Results are bit-identical either way; this is an escape \
              hatch for debugging and benchmarking.  The \
              $(b,DLOSN_BENCH_REFERENCE_SOLVER) environment variable \
              disables the workspace path only.")

let flame_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flame-out" ] ~docv:"FILE"
        ~doc:"After the command finishes, write the recorded span trees \
              to FILE in folded-stack format (one \
              $(i,frame;frame weight) line per stack, weight = self \
              time in nanoseconds) — feed it to flamegraph.pl or \
              speedscope.")

let otlp_endpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "otlp-endpoint" ] ~docv:"URL"
        ~doc:"Export spans, logs and metrics to this OTLP/HTTP collector \
              ($(i,http://host:port)) while the command runs.  The \
              $(b,DLOSN_OTLP) environment variable sets the same \
              default.")

let otlp_sample_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "otlp-sample-rate" ] ~docv:"RATE"
        ~doc:"Head-sample OTLP export: keep this fraction of traces \
              (0..1, default 1 = everything), decided per trace id so \
              a trace exports with all its spans and logs or not at \
              all.  The $(b,DLOSN_OTLP_SAMPLE) environment variable \
              sets the same default.")

type obs_opts = {
  metrics_out : string option;
  flame_out : string option;
  otlp_endpoint : string option;  (* resolved: flag, else DLOSN_OTLP *)
  otlp_sample_rate : float;  (* resolved: flag, else DLOSN_OTLP_SAMPLE *)
}

let setup_obs level json metrics_out no_solver_cache flame_out otlp_endpoint
    otlp_sample_rate =
  if level <> None || json || metrics_out <> None || flame_out <> None then
    Obs.set_enabled true;
  (match (level, json) with
  | Some l, _ -> Obs.Log.set_level (Some l)
  | None, true -> Obs.Log.set_level (Some Obs.Level.Info)
  | None, false -> ());
  if json then Obs.Log.set_sink Obs.Log.Json;
  if no_solver_cache then begin
    Numerics.Pde.set_use_reference_stepper true;
    Dl.Fit.set_objective_memo false
  end;
  let otlp_endpoint =
    match otlp_endpoint with
    | Some _ as e -> e
    | None -> Sys.getenv_opt Otlp.env_var
  in
  let otlp_sample_rate =
    match otlp_sample_rate with
    | Some r -> r
    | None -> (
      match Sys.getenv_opt Otlp.sample_env_var with
      | None -> 1.0
      | Some v -> (
        match float_of_string_opt v with
        | Some r -> r
        | None ->
          Format.eprintf "dlosn: ignoring %s=%S (not a number)@."
            Otlp.sample_env_var v;
          1.0))
  in
  { metrics_out; flame_out; otlp_endpoint; otlp_sample_rate }

(* Build, hook and start an exporter for a batch-style command.  The
   serve command skips this (with_obs ~otlp:false) and passes the
   endpoint into the server config instead, so export snapshots read
   the server's request aggregate rather than this domain's context. *)
let start_cli_otlp opts =
  match opts.otlp_endpoint with
  | None -> None
  | Some endpoint -> (
    match
      Otlp.create
        ~config:
          { Otlp.default_config with
            Otlp.sample_rate = opts.otlp_sample_rate }
        ~endpoint ~metrics_provider:Obs.Metrics.expose ()
    with
    | exporter ->
      Obs.set_enabled true;
      Otlp.observe_spans exporter;
      Otlp.tee_logs exporter;
      Otlp.start exporter;
      Some exporter
    | exception Invalid_argument msg ->
      Format.eprintf "dlosn: ignoring OTLP endpoint: %s@." msg;
      None)

let obs_term =
  Term.(
    const setup_obs $ log_level_arg $ log_json_arg $ metrics_out_arg
    $ no_solver_cache_arg $ flame_out_arg $ otlp_endpoint_arg
    $ otlp_sample_rate_arg)

(* Runs even when the command raises, so a failed run still leaves its
   profile and metrics behind. *)
let with_obs ?(otlp = true) opts f =
  let exporter = if otlp then start_cli_otlp opts else None in
  Fun.protect
    ~finally:(fun () ->
      (if Obs.enabled () then begin
         Obs.Span.log_summary ();
         (* one status line per artifact, JSON-clean when needed *)
         let wrote what path =
           match Obs.Log.sink () with
           | Obs.Log.Json ->
             Obs.Log.info (what ^ ".written") ~fields:(fun () ->
                 [ Obs.Log.str "path" path ])
           | Obs.Log.Human ->
             Format.eprintf "%s written to %s@." what path
         in
         (match opts.flame_out with
         | Some path ->
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               output_string oc (Obs.Span.to_folded (Obs.Span.roots ())));
           wrote "flame" path
         | None -> ());
         match opts.metrics_out with
         | Some path ->
           Obs.Metrics.write_json ~path;
           wrote "metrics" path
         | None -> ()
       end);
      (* shutdown runs a final flush, so spans recorded after the last
         periodic flush still reach the collector *)
      Option.iter Otlp.shutdown exporter)
    f

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:"Load a dataset saved by $(b,generate) instead of building \
              one (story indices then refer to positions in that file; \
              the four representative stories are the last four).")

let story_arg =
  Arg.(
    value & opt int 1
    & info [ "story" ] ~docv:"N"
        ~doc:"Representative story to analyse: 1 (most popular) to 4.")

let metric_conv =
  let parse = function
    | "hops" -> Ok `Hops
    | "interest" -> Ok `Interest
    | "interest-quantile" -> Ok `Interest_quantile
    | s ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown metric %S (hops|interest|interest-quantile)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | `Hops -> "hops"
      | `Interest -> "interest"
      | `Interest_quantile -> "interest-quantile")
  in
  Arg.conv (parse, print)

let metric_arg =
  Arg.(
    value & opt metric_conv `Hops
    & info [ "metric" ] ~docv:"METRIC"
        ~doc:"Distance metric: friendship $(b,hops), shared \
              $(b,interest) (equal-width groups, as in the paper) or \
              $(b,interest-quantile) (population-balanced groups).")

let pipeline_metric = function
  | `Hops -> Dl.Pipeline.hops
  | `Interest -> Dl.Pipeline.interest
  | `Interest_quantile ->
    Dl.Pipeline.Interest
      { n_groups = 5; grouping = Socialnet.Distance.Quantile }

(* Either load a saved dataset (rep stories are the last four) or build
   a fresh corpus. *)
let get_dataset load scale seed =
  match load with
  | Some path ->
    let ds = Socialnet.Dataset.load_tsv path in
    let n = Socialnet.Dataset.n_stories ds in
    if n < 4 then failwith "dataset has fewer than four stories";
    (ds, Array.init 4 (fun i -> n - 4 + i))
  | None ->
    let corpus = Socialnet.Digg.build ~scale ~seed () in
    (corpus.Socialnet.Digg.dataset, corpus.Socialnet.Digg.rep_ids)

let get_story ds rep_ids index =
  if index < 1 || index > Array.length rep_ids then
    failwith "story index must be 1..4";
  Socialnet.Dataset.story ds rep_ids.(index - 1)

(* --- generate --- *)

let generate_cmd =
  let out =
    Arg.(
      value & opt string "digg_corpus.tsv"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run obs scale seed out =
   with_obs obs @@ fun () ->
    Format.printf "Building corpus (%d users, seed %d)...@."
      scale.Socialnet.Digg.n_users seed;
    let corpus = Socialnet.Digg.build ~scale ~seed () in
    let ds = corpus.Socialnet.Digg.dataset in
    Socialnet.Dataset.save_tsv ds out;
    Format.printf "%a@.written to %s@." Socialnet.Dataset.pp ds out;
    Array.iteri
      (fun k id ->
        Format.printf "s%d = %a@." (k + 1) Socialnet.Types.pp_story
          (Socialnet.Dataset.story ds id))
      corpus.Socialnet.Digg.rep_ids
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Build a synthetic Digg corpus and save it.")
    Term.(const run $ obs_term $ scale_arg $ seed_arg $ out)

(* --- characterize --- *)

let characterize_cmd =
  let run obs scale seed load metric =
   with_obs obs @@ fun () ->
    let ds, rep_ids = get_dataset load scale seed in
    let times = [| 1.; 5.; 10.; 15.; 20.; 25.; 30.; 35.; 40.; 45.; 50. |] in
    Array.iteri
      (fun k id ->
        let story = Socialnet.Dataset.story ds id in
        Format.printf "@.=== s%d: %a ===@." (k + 1) Socialnet.Types.pp_story
          story;
        let assignment =
          match metric with
          | `Hops -> Socialnet.Distance.friendship_hops ds ~story
          | `Interest -> Socialnet.Distance.interest_groups ds ~story
          | `Interest_quantile ->
            Socialnet.Distance.interest_groups
              ~grouping:Socialnet.Distance.Quantile ds ~story
        in
        (if metric = `Hops then begin
           let dist =
             Socialnet.Density.distance_distribution ~assignment
               ~max_distance:10
           in
           Format.printf "distance distribution (Fig 2): ";
           Array.iter (fun (d, f) -> Format.printf "%d:%.3f " d f) dist;
           Format.printf "@."
         end);
        let obs =
          Socialnet.Density.observe story ~assignment ~max_distance:5 ~times
        in
        Format.printf "%a@." Socialnet.Density.pp obs;
        if Socialnet.Types.story_vote_count story >= 2 then begin
          let half = Socialnet.Temporal.time_to_fraction story ~fraction:0.5 in
          let sat = Socialnet.Temporal.saturation_time story in
          let gaps = Socialnet.Temporal.inter_arrival_stats story in
          Format.printf
            "50%% of votes by %.1f h; saturation (98%%) at %.1f h; median \
             inter-vote gap %.3f h@."
            half sat gaps.Socialnet.Temporal.median
        end)
      rep_ids
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Print the temporal and spatial diffusion patterns (Figs 2-5).")
    Term.(const run $ obs_term $ scale_arg $ seed_arg $ load_arg $ metric_arg)

(* --- predict --- *)

let params_conv =
  let parse = function
    | "paper" -> Ok `Paper
    | "auto" -> Ok `Auto
    | "insample" -> Ok `Insample
    | s -> Error (`Msg (Printf.sprintf "unknown params %S (paper|auto|insample)" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with `Paper -> "paper" | `Auto -> "auto" | `Insample -> "insample")
  in
  Arg.conv (parse, print)

let predict_cmd =
  let params_arg =
    Arg.(
      value & opt params_conv `Paper
      & info [ "params" ] ~docv:"P"
          ~doc:"Parameter choice: $(b,paper) (published constants), \
                $(b,auto) (calibrated on t = 2..4, judged out of \
                sample) or $(b,insample) (calibrated on t = 2..6 like \
                the paper's hand tuning).")
  in
  let baselines_arg =
    Arg.(
      value & flag
      & info [ "baselines" ]
          ~doc:"Also report persistence / linear / no-diffusion-logistic \
                baselines.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write a markdown report of the experiment to FILE.")
  in
  let export_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:"Write plot-ready TSV exports (densities, predictions, \
                accuracy, surface) into DIR.")
  in
  let run obs scale seed load metric story params baselines report export jobs
      store_dir =
   with_obs obs @@ fun () ->
   with_fit_store store_dir @@ fun () ->
    let ds, rep_ids = get_dataset load scale seed in
    let pool = pool_of_jobs jobs in
    let story = get_story ds rep_ids story in
    Format.printf "story: %a@." Socialnet.Types.pp_story story;
    let param_choice =
      match params with
      | `Paper -> Dl.Pipeline.Paper
      | `Auto ->
        Dl.Pipeline.Auto
          { rng = Numerics.Rng.create (seed + 1); config = Dl.Fit.default_config }
      | `Insample ->
        Dl.Pipeline.Auto
          {
            rng = Numerics.Rng.create (seed + 1);
            config =
              {
                Dl.Fit.default_config with
                fit_times = [| 2.; 3.; 4.; 5.; 6. |];
              };
          }
    in
    let exp =
      Dl.Pipeline.run ~params:param_choice ~pool ds ~story
        ~metric:(pipeline_metric metric)
    in
    Format.printf "params: %a@." Dl.Params.pp exp.Dl.Pipeline.params;
    (match exp.Dl.Pipeline.fit_error with
    | Some e -> Format.printf "training error: %.4f@." e
    | None -> ());
    Format.printf "%a@." Dl.Accuracy.pp_table exp.Dl.Pipeline.table;
    let named_baselines () =
      let obs = exp.Dl.Pipeline.observation in
      let fit_times = [| 2.; 3.; 4. |] in
      [
        ("persistence", Dl.Baselines.persistence obs);
        ("linear trend", Dl.Baselines.linear_trend obs ~fit_times);
        ( "logistic (no diffusion)",
          Dl.Baselines.logistic_per_distance obs ~fit_times );
      ]
    in
    if baselines then begin
      Format.printf "@.%-24s overall: %.2f%%@." "DL"
        (100. *. exp.Dl.Pipeline.table.Dl.Accuracy.overall_average);
      List.iter
        (fun (name, p) ->
          let table = Dl.Pipeline.baseline_table exp ~baseline:p in
          Format.printf "%-24s overall: %.2f%%@." name
            (100. *. table.Dl.Accuracy.overall_average))
        (named_baselines ())
    end;
    (match report with
    | Some path ->
      let text =
        if baselines then
          Dl.Report.render_with_baselines exp ~baselines:(named_baselines ())
        else Dl.Report.render exp
      in
      Dl.Report.save ~path text;
      Format.printf "report written to %s@." path
    | None -> ());
    match export with
    | Some dir ->
      let written = Dl.Export.export_experiment exp ~dir ~prefix:"experiment" in
      Format.printf "exported %d files to %s@." (List.length written) dir
    | None -> ()
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Predict a story's density evolution with the DL model \
             (Fig 7, Tables I-II).")
    Term.(
      const run $ obs_term $ scale_arg $ seed_arg $ load_arg $ metric_arg
      $ story_arg $ params_arg $ baselines_arg $ report_arg $ export_arg
      $ jobs_arg $ store_arg)

(* --- properties --- *)

let properties_cmd =
  let run obs scale seed load metric story =
   with_obs obs @@ fun () ->
    let ds, rep_ids = get_dataset load scale seed in
    let story = get_story ds rep_ids story in
    let exp = Dl.Pipeline.run ds ~story ~metric:(pipeline_metric metric) in
    Format.printf "story: %a@.params: %a@." Socialnet.Types.pp_story story
      Dl.Params.pp exp.Dl.Pipeline.params;
    Format.printf "phi admissibility: %a@." Dl.Initial.pp_report
      (Dl.Initial.check exp.Dl.Pipeline.phi ~params:exp.Dl.Pipeline.params);
    Format.printf "unique property (0 <= I <= K): %a@."
      Dl.Properties.pp_verdict
      (Dl.Properties.bounds exp.Dl.Pipeline.solution);
    Format.printf "strictly increasing property:  %a@."
      Dl.Properties.pp_verdict
      (Dl.Properties.monotone_in_time exp.Dl.Pipeline.solution)
  in
  Cmd.v
    (Cmd.info "properties"
       ~doc:"Verify the model's theoretical properties on a story.")
    Term.(
      const run $ obs_term $ scale_arg $ seed_arg $ load_arg $ metric_arg
      $ story_arg)

(* --- sweep --- *)

let sweep_cmd =
  let run obs scale seed load story jobs =
   with_obs obs @@ fun () ->
    let ds, rep_ids = get_dataset load scale seed in
    let pool = pool_of_jobs jobs in
    let story = get_story ds rep_ids story in
    let exp = Dl.Pipeline.run ds ~story ~metric:Dl.Pipeline.hops in
    let phi = exp.Dl.Pipeline.phi in
    let base = exp.Dl.Pipeline.params in
    let distances = exp.Dl.Pipeline.observation.Socialnet.Density.distances in
    let accuracy params =
      let sol = Dl.Model.solve params ~phi ~times:[| 2.; 3.; 4.; 5.; 6. |] in
      let table =
        Dl.Accuracy.table
          ~predict:(fun ~x ~t -> Dl.Model.predict sol ~x:(float_of_int x) ~t)
          ~actual:(fun ~x ~t ->
            Socialnet.Density.at exp.Dl.Pipeline.observation ~distance:x
              ~time:t)
          ~distances ~times:[| 2.; 3.; 4.; 5.; 6. |]
      in
      100. *. table.Dl.Accuracy.overall_average
    in
    (* each candidate is an independent solve: evaluate the whole sweep
       on the pool, then print in order *)
    let sweep name fmt candidates of_value =
      Format.printf "%s@." name;
      let values =
        Parallel.Pool.parallel_map pool
          (fun v -> accuracy (of_value v))
          (Array.of_list candidates)
      in
      List.iteri
        (fun i v ->
          Format.printf "  %s = %-7g overall accuracy %.2f%%@." fmt v
            values.(i))
        candidates;
      Format.printf "@."
    in
    Format.printf "story: %a@.@." Socialnet.Types.pp_story story;
    sweep "diffusion-rate sweep (others fixed at paper values):" "d"
      [ 0.; 0.005; 0.01; 0.05; 0.1; 0.3 ]
      (fun d -> { base with Dl.Params.d });
    sweep "carrying-capacity sweep:" "K"
      [ 15.; 25.; 40.; 60. ]
      (fun k -> { base with Dl.Params.k });
    sweep "growth-decay sweep (r = a e^{-b(t-1)} + c, varying b):" "b"
      [ 0.5; 1.0; 1.5; 2.5 ]
      (fun b ->
        { base with Dl.Params.r = Dl.Growth.Exp_decay { a = 1.4; b; c = 0.25 } })
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Parameter-sensitivity sweep around the paper values.")
    Term.(
      const run $ obs_term $ scale_arg $ seed_arg $ load_arg $ story_arg
      $ jobs_arg)

(* --- batch --- *)

let batch_cmd =
  let n_arg =
    Arg.(
      value & opt int 12
      & info [ "n" ] ~docv:"N" ~doc:"Number of top-voted stories to evaluate.")
  in
  let mode_conv =
    let parse = function
      | "paper" -> Ok `Paper
      | "insample" -> Ok `Insample
      | "oos" -> Ok `Oos
      | s -> Error (`Msg (Printf.sprintf "unknown mode %S (paper|insample|oos)" s))
    in
    let print ppf m =
      Format.pp_print_string ppf
        (match m with `Paper -> "paper" | `Insample -> "insample" | `Oos -> "oos")
    in
    Arg.conv (parse, print)
  in
  let mode_arg =
    Arg.(
      value & opt mode_conv `Paper
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Parameter protocol per story: $(b,paper), $(b,insample) \
                or $(b,oos).")
  in
  let run obs scale seed load metric n mode jobs store_dir =
   with_obs obs @@ fun () ->
   with_fit_store store_dir @@ fun () ->
    let ds, _ = get_dataset load scale seed in
    let pool = pool_of_jobs jobs in
    let stories = Dl.Batch.top_stories ds ~n in
    let mode =
      match mode with
      | `Paper -> Dl.Batch.Paper_params
      | `Insample -> Dl.Batch.In_sample (seed + 100)
      | `Oos -> Dl.Batch.Out_of_sample (seed + 100)
    in
    let summary =
      Obs_progress.with_bar ~label:"batch" ~total:(Array.length stories)
        ~span:"batch.story"
      @@ fun () ->
      Dl.Batch.evaluate ~pool ~mode ~metric:(pipeline_metric metric) ds
        ~stories
    in
    Format.printf "%a@." Dl.Batch.pp_summary summary;
    Array.iter
      (fun (r : Dl.Batch.story_result) ->
        match r.Dl.Batch.skipped with
        | None ->
          Format.printf "  story %-5d %6d votes  %6.2f%%@." r.Dl.Batch.story_id
            r.Dl.Batch.votes
            (100. *. r.Dl.Batch.overall)
        | Some reason ->
          Format.printf "  story %-5d %6d votes  skipped (%s)@."
            r.Dl.Batch.story_id r.Dl.Batch.votes reason)
      summary.Dl.Batch.results
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Evaluate the DL pipeline across the corpus's top stories.")
    Term.(
      const run $ obs_term $ scale_arg $ seed_arg $ load_arg $ metric_arg
      $ n_arg $ mode_arg $ jobs_arg $ store_arg)

(* --- stats --- *)

let stats_cmd =
  let run obs scale seed load =
   with_obs obs @@ fun () ->
    let ds, rep_ids = get_dataset load scale seed in
    Format.printf "%a@.@." Socialnet.Corpus_stats.pp
      (Socialnet.Corpus_stats.compute ds);
    Format.printf "representative stories:@.";
    Array.iteri
      (fun k id ->
        let story = Socialnet.Dataset.story ds id in
        Format.printf "  s%d = %a@." (k + 1) Socialnet.Types.pp_story story)
      rep_ids;
    let ranked =
      Socialnet.Temporal.spread_speed_rank
        (Array.map (Socialnet.Dataset.story ds) rep_ids)
    in
    Format.printf "spread speed (time to half the votes), fastest first:@.";
    Array.iter
      (fun (id, t) -> Format.printf "  story %d: %.1f h@." id t)
      ranked
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print corpus-level statistics.")
    Term.(const run $ obs_term $ scale_arg $ seed_arg $ load_arg)

(* --- serve --- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port, \
                printed at startup).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Live-connection cap; new connections past it are \
                answered 503 and closed.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float Serve.Server.default_config.Serve.Server.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close an idle keep-alive connection after this many \
                seconds without a request.")
  in
  let serve_store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Persistent model store: warm-start the fit cache from \
                DIR on boot (a restart serves previously fitted \
                stories without refitting) and durably append every \
                new fit there.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt float Serve.Server.default_config.Serve.Server.slow_request_ms
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Warn (with the request's trace id) about requests slower \
                than MS milliseconds.")
  in
  let lateness_arg =
    Arg.(
      value
      & opt float Serve.Server.default_config.Serve.Server.live_lateness
      & info [ "lateness" ] ~docv:"HOURS"
          ~doc:"Out-of-order window for POST /observe streams: votes \
                older than the story's watermark minus HOURS are \
                dropped (and counted as live.dropped_late).")
  in
  let drift_arg =
    Arg.(
      value
      & opt float Serve.Server.default_config.Serve.Server.drift_threshold
      & info [ "drift-threshold" ] ~docv:"ERR"
          ~doc:"Mean relative error of the serving fit against the \
                live profile beyond which the daemon schedules a \
                warm-started refit.")
  in
  let refit_min_votes_arg =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.refit_min_votes
      & info [ "refit-min-votes" ] ~docv:"N"
          ~doc:"Profile votes required before the refit daemon fits a \
                story at all.")
  in
  let refit_min_new_arg =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.refit_min_new_votes
      & info [ "refit-min-new-votes" ] ~docv:"N"
          ~doc:"Votes that must have arrived since the serving fit \
                before drift may trigger a refit.")
  in
  let live_seed_arg =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.live_seed
      & info [ "live-seed" ] ~docv:"SEED"
          ~doc:"Rng seed for daemon fits (fixed, so refits are \
                reproducible offline).")
  in
  let graph_arg =
    Arg.(
      value
      & opt (some scale_conv) None
      & info [ "graph" ] ~docv:"SCALE"
          ~doc:"Build a synthetic Digg influence graph at SCALE \
                (small|medium|full) so POST /observe can resolve hop \
                distances for votes that carry none (the first batch \
                must then name the story's initiator).")
  in
  let graph_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "graph-seed" ] ~docv:"SEED"
          ~doc:"Seed for the --graph corpus (must match the replay \
                driver's --seed for hop labels to agree).")
  in
  let run obs port host max_conns idle_timeout jobs store_dir slow_ms lateness
      drift_threshold refit_min_votes refit_min_new_votes live_seed graph
      graph_seed =
   (* the server owns the OTLP exporter (serve-side metrics snapshots
      must read the request aggregate), so skip the CLI-level one *)
   with_obs ~otlp:false obs @@ fun () ->
    let jobs =
      match jobs with Some j -> j | None -> Parallel.Pool.default_jobs ()
    in
    let graph =
      Option.map
        (fun scale ->
          (Socialnet.Digg.build ~scale ~seed:graph_seed ()).Socialnet.Digg
            .dataset)
        graph
    in
    let config =
      {
        Serve.Server.default_config with
        Serve.Server.host;
        port;
        jobs;
        max_conns;
        idle_timeout;
        store_dir;
        slow_request_ms = slow_ms;
        otlp_endpoint = obs.otlp_endpoint;
        otlp_sample_rate = obs.otlp_sample_rate;
        live_lateness = lateness;
        drift_threshold;
        refit_min_votes;
        refit_min_new_votes;
        live_seed;
        graph;
      }
    in
    let server =
      try Serve.Server.create ~config ()
      with Invalid_argument msg ->
        prerr_endline ("dlosn serve: " ^ msg);
        exit 1
    in
    Serve.Server.install_signal_handlers server;
    Format.printf "dlosn serving on http://%s:%d (%d worker%s) — SIGINT or \
                   SIGTERM drains and exits@."
      host
      (Serve.Server.port server)
      jobs
      (if jobs = 1 then "" else "s");
    Format.print_flush ();
    Serve.Server.run server;
    Format.printf "served %d requests@." (Serve.Server.requests_handled server)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve DL-model fits and predictions over HTTP \
             (/healthz, /metrics, /fit, /predict, /observe, /live, \
             /debug/traces, /debug/flame).")
    Term.(
      const run $ obs_term $ port_arg $ host_arg $ max_conns_arg
      $ idle_timeout_arg $ jobs_arg $ serve_store_arg $ slow_ms_arg
      $ lateness_arg $ drift_arg $ refit_min_votes_arg $ refit_min_new_arg
      $ live_seed_arg $ graph_arg $ graph_seed_arg)

(* --- replay: stream a simulated cascade into a live server --- *)

module Tiny_json = Serve.Tiny_json

let replay_cmd =
  let port_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Port of the dlosn server to stream into (loopback).")
  in
  let speedup_arg =
    Arg.(
      value & opt float 3600.
      & info [ "speedup" ] ~docv:"X"
          ~doc:"Event-time compression: one hour of cascade time plays \
                back in 3600/X seconds (default 3600 — an hour per \
                second).  Use $(b,inf) to stream with no pacing.")
  in
  let batch_arg =
    Arg.(
      value & opt int 25
      & info [ "batch" ] ~docv:"N"
          ~doc:"Votes per POST /observe request.")
  in
  let from_arg =
    Arg.(
      value & opt float 0.
      & info [ "from" ] ~docv:"HOURS"
          ~doc:"Skip votes before this event time — resume a stream \
                past a restarted server's persisted observation \
                cursor (printed by the server's live.resumed log).")
  in
  let story_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "story" ] ~docv:"NAME"
          ~doc:"Story key for the stream (default replay-SEED).")
  in
  let run scale seed port speedup batch from story =
    if batch < 1 then begin
      prerr_endline "dlosn replay: --batch must be >= 1";
      exit 1
    end;
    if not (speedup > 0.) then begin
      prerr_endline "dlosn replay: --speedup must be positive";
      exit 1
    end;
    let stream = Socialnet.Replay.simulate ~scale ~seed () in
    let story = match story with Some s -> s | None -> Printf.sprintf "replay-%d" seed in
    let events =
      Array.of_list
        (List.filter
           (fun (e : Socialnet.Replay.event) -> e.Socialnet.Replay.time >= from)
           (Array.to_list stream.Socialnet.Replay.events))
    in
    Format.printf
      "replaying %d votes (of %d simulated) into story %S on port %d@."
      (Array.length events)
      (Array.length stream.Socialnet.Replay.events)
      story port;
    Format.print_flush ();
    let conn =
      match Serve.Client.connect ~timeout:30. ~port () with
      | Ok c -> c
      | Error msg ->
        prerr_endline ("dlosn replay: connect failed: " ^ msg);
        exit 1
    in
    let vote_json (e : Socialnet.Replay.event) =
      Tiny_json.Object
        [
          ("voter", Tiny_json.Number (float_of_int e.Socialnet.Replay.voter));
          ("time", Tiny_json.Number e.Socialnet.Replay.time);
          ("distance", Tiny_json.Number (float_of_int e.Socialnet.Replay.distance));
        ]
    in
    let num_array a = Tiny_json.List (List.map (fun v -> Tiny_json.Number v) (Array.to_list a)) in
    let n = Array.length events in
    let ingested = ref 0 and refits = ref 0 and batches = ref 0 in
    let clock = ref from in
    let i = ref 0 in
    while !i < n do
      let j = min n (!i + batch) in
      let votes = Array.to_list (Array.sub events !i (j - !i)) in
      let last_t = events.(j - 1).Socialnet.Replay.time in
      (* pace the stream: sleep the compressed event-time gap *)
      let gap = last_t -. !clock in
      if gap > 0. && Float.is_finite speedup then
        Unix.sleepf (gap *. 3600. /. speedup);
      clock := Float.max !clock last_t;
      let body_fields =
        [
          ("story", Tiny_json.String story);
          ("votes", Tiny_json.List (List.map vote_json votes));
        ]
        @
        (* grid fields ride along on the first batch only *)
        if !batches = 0 then
          [
            ("times", num_array stream.Socialnet.Replay.times);
            ( "population",
              num_array
                (Array.map float_of_int stream.Socialnet.Replay.population) );
            ( "max_distance",
              Tiny_json.Number
                (float_of_int stream.Socialnet.Replay.max_distance) );
          ]
        else []
      in
      let body = Tiny_json.to_string (Tiny_json.Object body_fields) in
      (match Serve.Client.request_on conn ~body "POST" "/observe" with
      | Error msg ->
        prerr_endline ("dlosn replay: /observe failed: " ^ msg);
        exit 1
      | Ok { Serve.Client.status; body; _ } when status <> 200 ->
        prerr_endline
          (Printf.sprintf "dlosn replay: /observe returned %d: %s" status body);
        exit 1
      | Ok { Serve.Client.body; _ } ->
        incr batches;
        (match Tiny_json.parse body with
        | Ok json ->
          (match Option.bind (Tiny_json.member "ingested" json) Tiny_json.to_int with
          | Some k -> ingested := !ingested + k
          | None -> ());
          (match Tiny_json.member "refit_scheduled" json with
          | Some (Tiny_json.Bool true) ->
            incr refits;
            Format.printf "  t=%.2fh: refit scheduled (%d votes in)@."
              last_t !ingested;
            Format.print_flush ()
          | _ -> ())
        | Error _ -> ()));
      i := j
    done;
    (* final status: what the daemon made of the stream *)
    (match Serve.Client.request_on conn "GET" ("/live?story=" ^ story) with
    | Ok { Serve.Client.status = 200; body; _ } ->
      Format.printf "final /live: %s@." body
    | Ok { Serve.Client.status; _ } ->
      Format.printf "final /live returned %d@." status
    | Error msg -> Format.printf "final /live failed: %s@." msg);
    Serve.Client.close conn;
    Format.printf
      "replayed %d batches, %d votes ingested, %d refits scheduled@."
      !batches !ingested !refits
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Stream a simulated Digg cascade into a running dlosn \
             server's POST /observe endpoint at a configurable \
             speedup, driving the incremental density profile and the \
             online refit daemon end to end.")
    Term.(
      const run $ scale_arg $ seed_arg $ port_arg $ speedup_arg $ batch_arg
      $ from_arg $ story_arg)

(* --- store --- *)

let store_dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Model store directory.")

let created_string ns =
  let tm = Unix.localtime (float_of_int ns /. 1e9) in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let load_store_or_warn dir =
  let records, info = Store.load dir in
  (match info.Store.corruption with
  | Some msg ->
    Format.eprintf "warning: partial recovery — %s (%d bytes dropped)@." msg
      info.Store.dropped_bytes
  | None -> ());
  (records, info)

let record_json (r : Store.Format.record) =
  let module J = Serve.Tiny_json in
  let num v = J.Number v in
  let arr f xs = J.List (Array.to_list (Array.map f xs)) in
  let growth =
    match r.Store.Format.params.Dl.Params.r with
    | Dl.Growth.Constant v ->
      J.Object [ ("kind", J.String "constant"); ("value", num v) ]
    | Dl.Growth.Exp_decay { a; b; c } ->
      J.Object
        [
          ("kind", J.String "exp_decay");
          ("a", num a);
          ("b", num b);
          ("c", num c);
        ]
  in
  let p = r.Store.Format.params in
  J.Object
    [
      ("id", J.String r.Store.Format.id);
      ("story", J.String r.Store.Format.story);
      ("source", J.String r.Store.Format.source);
      ("model", J.String r.Store.Format.model);
      ("created_ns", num (float_of_int r.Store.Format.created_ns));
      ( "params",
        J.Object
          [
            ("d", num p.Dl.Params.d);
            ("k", num p.Dl.Params.k);
            ("r", growth);
            ("l", num p.Dl.Params.l);
            ("L", num p.Dl.Params.big_l);
          ] );
      ( "phi",
        J.Object
          [
            ("xs", arr num r.Store.Format.phi_xs);
            ("densities", arr num r.Store.Format.phi_densities);
          ] );
      ("scheme", J.String (Store.Format.scheme_name r.Store.Format.scheme));
      ("nx", num (float_of_int r.Store.Format.nx));
      ("dt", num r.Store.Format.dt);
      ("reference_stepper", J.Bool r.Store.Format.reference_stepper);
      ("fit_times", arr num r.Store.Format.fit_times);
      ("training_error", num r.Store.Format.training_error);
      ("evaluations", num (float_of_int r.Store.Format.evaluations));
      ("starts", num (float_of_int r.Store.Format.starts));
    ]

let store_cmd =
  let ls_cmd =
    let run dir =
      let records, info = load_store_or_warn dir in
      Format.printf "%d record%s (%d from snapshot, %d from wal)@."
        (List.length records)
        (if List.length records = 1 then "" else "s")
        info.Store.snapshot_records info.Store.wal_records;
      List.iter
        (fun (r : Store.Format.record) ->
          Format.printf
            "  %-34s %-10s %-9s %-6s %s  %-14s nx=%-4d dt=%-5g err=%.4g@."
            r.Store.Format.id
            (if r.Store.Format.story = "" then "-" else r.Store.Format.story)
            r.Store.Format.model r.Store.Format.source
            (created_string r.Store.Format.created_ns)
            (Store.Format.scheme_name r.Store.Format.scheme)
            r.Store.Format.nx r.Store.Format.dt r.Store.Format.training_error)
        records
    in
    Cmd.v
      (Cmd.info "ls" ~doc:"List the fit records in a model store.")
      Term.(const run $ store_dir_pos)
  in
  let find_record records id =
    let exact =
      List.filter (fun (r : Store.Format.record) -> r.Store.Format.id = id)
        records
    in
    let matches =
      if exact <> [] then exact
      else
        List.filter
          (fun (r : Store.Format.record) ->
            String.length id > 0
            && String.starts_with ~prefix:id r.Store.Format.id)
          records
    in
    match matches with
    | [ r ] -> Ok r
    | [] -> Error (Printf.sprintf "no record matches %S" id)
    | _ :: _ ->
      Error (Printf.sprintf "%d records match %S; use the full id"
               (List.length matches) id)
  in
  let show_cmd =
    let id_arg =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"ID" ~doc:"Record id (or a unique prefix of one).")
    in
    let run dir id =
      let records, _ = load_store_or_warn dir in
      match find_record records id with
      | Error msg ->
        prerr_endline ("dlosn store show: " ^ msg);
        exit 1
      | Ok r ->
        Format.printf "id:              %s@." r.Store.Format.id;
        Format.printf "story:           %s@."
          (if r.Store.Format.story = "" then "-" else r.Store.Format.story);
        Format.printf "model:           %s@." r.Store.Format.model;
        Format.printf "source:          %s@." r.Store.Format.source;
        Format.printf "created:         %s@."
          (created_string r.Store.Format.created_ns);
        Format.printf "params:          %a@." Dl.Params.pp r.Store.Format.params;
        Format.printf "phi knots:       %d@."
          (Array.length r.Store.Format.phi_xs);
        Format.printf "solver:          %s, nx=%d, dt=%g%s@."
          (Store.Format.scheme_name r.Store.Format.scheme)
          r.Store.Format.nx r.Store.Format.dt
          (if r.Store.Format.reference_stepper then ", reference stepper" else "");
        Format.printf "fit times:       %s@."
          (String.concat ", "
             (Array.to_list
                (Array.map (Printf.sprintf "%g") r.Store.Format.fit_times)));
        Format.printf "training error:  %.6g@." r.Store.Format.training_error;
        Format.printf "evaluations:     %d (over %d starts)@."
          r.Store.Format.evaluations r.Store.Format.starts
    in
    Cmd.v
      (Cmd.info "show" ~doc:"Print one record in full.")
      Term.(const run $ store_dir_pos $ id_arg)
  in
  let export_cmd =
    let out_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "out" ] ~docv:"FILE"
            ~doc:"Write to FILE instead of standard output.")
    in
    let run dir out =
      let records, _ = load_store_or_warn dir in
      let lines =
        List.map
          (fun r -> Serve.Tiny_json.to_string (record_json r))
          records
      in
      let text = String.concat "\n" lines ^ if lines = [] then "" else "\n" in
      match out with
      | None -> print_string text
      | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Format.printf "exported %d records to %s@." (List.length records) path
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:"Dump every record as JSON lines (params, phi knots, \
               solver config, accuracy).")
      Term.(const run $ store_dir_pos $ out_arg)
  in
  let gc_cmd =
    let duration_conv =
      (* 30s / 45m / 12h / 7d, or a bare number of seconds *)
      let parse s =
        let fail () =
          Error
            (`Msg
               (Printf.sprintf
                  "invalid duration %S (expected e.g. 30s, 45m, 12h, 7d)" s))
        in
        if s = "" then fail ()
        else
          let n = String.length s in
          let unit_scale = function
            | 's' -> Some 1.
            | 'm' -> Some 60.
            | 'h' -> Some 3600.
            | 'd' -> Some 86400.
            | _ -> None
          in
          let num, scale =
            match unit_scale s.[n - 1] with
            | Some k -> (String.sub s 0 (n - 1), k)
            | None -> (s, 1.)
          in
          match float_of_string_opt num with
          | Some v when v >= 0. -> Ok (v *. scale)
          | Some _ | None -> fail ()
      in
      let print ppf secs = Format.fprintf ppf "%gs" secs in
      Arg.conv (parse, print)
    in
    let keep_last_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "keep-last" ] ~docv:"N"
            ~doc:"Retention: drop all but the newest N records before \
                  compacting.")
    in
    let max_age_arg =
      Arg.(
        value
        & opt (some duration_conv) None
        & info [ "max-age" ] ~docv:"DUR"
            ~doc:"Retention: drop records older than DUR (e.g. \
                  $(b,30s), $(b,45m), $(b,12h), $(b,7d); a bare number \
                  is seconds) before compacting.")
    in
    let run dir keep_last max_age =
      (match keep_last with
      | Some k when k < 0 ->
        prerr_endline "dlosn store gc: --keep-last must be >= 0";
        exit 1
      | _ -> ());
      let store = Store.open_ ~source:"cli" dir in
      let before_records = Store.record_count store in
      let before = Store.wal_bytes store in
      let max_age_ns =
        Option.map (fun secs -> int_of_float (secs *. 1e9)) max_age
      in
      Store.gc ?keep_last ?max_age_ns store;
      let after_records = Store.record_count store in
      Format.printf "compacted %d record%s (wal %d -> %d bytes%s)@."
        after_records
        (if after_records = 1 then "" else "s")
        before (Store.wal_bytes store)
        (if before_records > after_records then
           Printf.sprintf ", dropped %d" (before_records - after_records)
         else "");
      Store.close store
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Compact — fold the WAL into a fresh snapshot and truncate \
               it — optionally applying retention first \
               ($(b,--keep-last), $(b,--max-age)).")
      Term.(const run $ store_dir_pos $ keep_last_arg $ max_age_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain persistent model stores ($(b,ls), \
             $(b,show), $(b,export), $(b,gc)).")
    [ ls_cmd; show_cmd; export_cmd; gc_cmd ]

(* --- tournament --- *)

let tournament_cmd =
  let models_conv =
    let parse s =
      let names =
        List.filter (fun m -> m <> "") (String.split_on_char ',' s)
      in
      match names with
      | [] -> Error (`Msg "expected a comma-separated list of model names")
      | _ -> (
        match
          List.find_opt (fun m -> Dl.Predictor.find m = None) names
        with
        | Some m ->
          Error
            (`Msg
               (Printf.sprintf "unknown model %S (registered: %s)" m
                  (String.concat ", " (Dl.Predictor.names ()))))
        | None -> Ok names)
    in
    let print ppf ms = Format.pp_print_string ppf (String.concat "," ms) in
    Arg.conv (parse, print)
  in
  let models_arg =
    Arg.(
      value
      & opt (some models_conv) None
      & info [ "models" ] ~docv:"NAMES"
          ~doc:"Comma-separated registry models to enter.  Defaults to \
                every built-in except $(b,network) (which needs graph \
                context the tournament's density observations cannot \
                supply).  $(b,--list) prints the registry.")
  in
  let stories_arg =
    Arg.(
      value & opt int 4
      & info [ "n"; "stories" ] ~docv:"N"
          ~doc:"Number of synthetic stories in the shared ground-truth \
                set (DL solves under randomly drawn parameters, plus \
                observation noise).")
  in
  let tseed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Tournament seed: per-(model, story) fitting seeds derive \
                from it deterministically, independent of $(b,--jobs).")
  in
  let story_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "story-seed" ] ~docv:"SEED"
          ~doc:"Seed for drawing the synthetic story parameters.")
  in
  let fit_times_conv =
    let parse s =
      let parts = List.filter (fun p -> p <> "") (String.split_on_char ',' s) in
      try
        let ts = List.map float_of_string parts in
        if ts = [] then Error (`Msg "expected at least one hour")
        else if List.exists (fun t -> t <= 1.) ts then
          Error (`Msg "calibration hours must be > 1 (t = 1 seeds phi)")
        else Ok (Array.of_list ts)
      with Failure _ -> Error (`Msg "expected comma-separated hours")
    in
    let print ppf ts =
      Format.pp_print_string ppf
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%g") ts)))
    in
    Arg.conv (parse, print)
  in
  let fit_times_arg =
    Arg.(
      value
      & opt fit_times_conv [| 2.; 3. |]
      & info [ "fit-times" ] ~docv:"HOURS"
          ~doc:"Calibration hours (comma-separated, beyond the t = 1 \
                snapshot); every later observed hour is held out for \
                the accuracy ranking.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the leaderboard as JSON (schema \
                dlosn-tournament/1) instead of a table.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the leaderboard JSON to FILE.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the registered models with their descriptions and \
                exit (no tournament runs).")
  in
  let run obs list_only models n tseed story_seed fit_times json out jobs =
    with_obs obs @@ fun () ->
    if list_only then
      List.iter
        (fun (p : Dl.Predictor.t) ->
          Format.printf "%-14s %s@." p.Dl.Predictor.name
            p.Dl.Predictor.description)
        (Dl.Predictor.all ())
    else begin
      let pool = pool_of_jobs jobs in
      let models =
        match models with Some ms -> ms | None -> Dl.Tournament.default_models
      in
      let stories = Dl.Tournament.synthetic_stories ~n ~seed:story_seed () in
      Format.eprintf "tournament: %d models x %d stories (%d worker%s)@."
        (List.length models) n
        (Parallel.Pool.jobs pool)
        (if Parallel.Pool.jobs pool = 1 then "" else "s");
      let lb =
        Obs_progress.with_bar ~label:"tournament"
          ~total:(List.length models * List.length stories)
          ~span:"tournament.item"
        @@ fun () ->
        Dl.Tournament.run ~pool ~fit_times ~seed:tseed ~models stories
      in
      (match out with
      | Some path ->
        let oc = open_out path in
        output_string oc (Dl.Tournament.json_string lb);
        close_out oc;
        Format.eprintf "leaderboard written to %s@." path
      | None -> ());
      if json then print_string (Dl.Tournament.json_string lb)
      else Format.printf "%a" Dl.Tournament.pp lb
    end
  in
  Cmd.v
    (Cmd.info "tournament"
       ~doc:"Fit every registry model on a shared synthetic story set \
             and rank them on held-out accuracy (the paper's \
             DL-vs-baselines comparison at model-zoo scale).  \
             Accuracy fields are bit-identical for any $(b,--jobs); \
             only wall-clock latencies vary.")
    Term.(
      const run $ obs_term $ list_arg $ models_arg $ stories_arg $ tseed_arg
      $ story_seed_arg $ fit_times_arg $ json_arg $ out_arg $ jobs_arg)

let () =
  let doc = "diffusive-logistic information diffusion in online social networks" in
  let info = Cmd.info "dlosn" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; characterize_cmd; predict_cmd; properties_cmd;
            sweep_cmd; batch_cmd; stats_cmd; serve_cmd; replay_cmd;
            store_cmd; tournament_cmd ]))
