#!/usr/bin/env python3
"""Validate a dlosn-tournament/1 leaderboard document.

Usage: check_tournament.py LEADERBOARD_JSON [EXPECTED_MODEL ...]

Checks the schema produced by `dlosn tournament --json` (and embedded
under "tournament" in bench_results.json):

- top-level shape: schema tag, seed/jobs ints, fit_times/stories
  arrays, a non-empty leaderboard;
- one entry per requested model, each carrying every documented field
  with the documented type (null allowed exactly where docs/MODELS.md
  says: error, mean_rel_err, per_story cells);
- ranking invariant: successful entries come first, sorted ascending
  by mean_rel_err, with null-accuracy and failed entries after;
- per_story length equals the story count;
- when EXPECTED_MODEL args are given, each must appear in the
  leaderboard and must have fitted at least one story (ok=true).
"""
import json
import math
import sys

SCHEMA = "dlosn-tournament/1"


def fail(msg):
    print(f"check_tournament: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def main():
    path = sys.argv[1]
    expected = sys.argv[2:]
    with open(path) as f:
        doc = json.load(f)

    # the bench file embeds the leaderboard under "tournament"
    if doc.get("schema") == "dlosn-bench/1":
        doc = doc.get("tournament") or fail(f"{path}: no tournament section")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")

    for key, typ in (("seed", int), ("jobs", int)):
        if not isinstance(doc.get(key), typ) or isinstance(doc.get(key), bool):
            fail(f"{key!r} is not an {typ.__name__}")
    stories = doc.get("stories")
    if not isinstance(stories, list) or not all(
        isinstance(s, str) for s in stories
    ):
        fail("'stories' is not a list of labels")
    fit_times = doc.get("fit_times")
    if not isinstance(fit_times, list) or not all(is_num(t) for t in fit_times):
        fail("'fit_times' is not a list of hours")

    entries = doc.get("leaderboard")
    if not isinstance(entries, list) or not entries:
        fail("'leaderboard' missing or empty")

    seen = []
    for e in entries:
        model = e.get("model")
        if not isinstance(model, str) or not model:
            fail(f"entry without a model name: {e!r}")
        if model in seen:
            fail(f"duplicate leaderboard entry for {model!r}")
        seen.append(model)
        if not isinstance(e.get("ok"), bool):
            fail(f"{model}: 'ok' is not a bool")
        if not (e.get("error") is None or isinstance(e.get("error"), str)):
            fail(f"{model}: 'error' is neither null nor a string")
        for key in ("mean_rel_err", "training_error"):
            v = e.get(key)
            if not (v is None or is_num(v)):
                fail(f"{model}: {key!r} is neither null nor a number")
        per_story = e.get("per_story")
        if not isinstance(per_story, list) or len(per_story) != len(stories):
            fail(
                f"{model}: 'per_story' has {per_story and len(per_story)} "
                f"cells for {len(stories)} stories"
            )
        if not all(v is None or is_num(v) for v in per_story):
            fail(f"{model}: 'per_story' cell is neither null nor a number")
        for key in ("fit_ms", "predict_ms"):
            if not is_num(e.get(key)):
                fail(f"{model}: {key!r} is not a number")
        if not isinstance(e.get("evaluations"), int):
            fail(f"{model}: 'evaluations' is not an int")

    # ranking: ok-with-accuracy ascending, then ok-without, then failed
    def rank(e):
        if not e["ok"]:
            return 2
        return 0 if e["mean_rel_err"] is not None else 1

    ranks = [rank(e) for e in entries]
    if ranks != sorted(ranks):
        fail(f"leaderboard rank classes out of order: {ranks}")
    errs = [e["mean_rel_err"] for e in entries if rank(e) == 0]
    if errs != sorted(errs) or any(math.isnan(v) for v in errs):
        fail(f"successful entries not sorted by mean_rel_err: {errs}")

    for model in expected:
        entry = next((e for e in entries if e["model"] == model), None)
        if entry is None:
            fail(f"expected model {model!r} missing from the leaderboard")
        if not entry["ok"]:
            fail(f"expected model {model!r} failed: {entry.get('error')!r}")

    print(
        f"check_tournament: OK — {len(entries)} models over "
        f"{len(stories)} stories; "
        + ", ".join(
            f"{e['model']}={e['mean_rel_err']}"
            for e in entries
            if e["mean_rel_err"] is not None
        )
    )


if __name__ == "__main__":
    main()
