#!/usr/bin/env python3
"""Minimal OTLP/HTTP collector stand-in for CI (stdlib only).

Usage: otlp_sink.py PORT OUT_FILE

Accepts POSTs on /v1/traces, /v1/metrics and /v1/logs, replies 200,
and appends one JSON line per request to OUT_FILE:

    {"path": "/v1/traces", "body": {...decoded OTLP payload...}}

Run it in the background, point `dlosn --otlp-endpoint` at it, then
validate OUT_FILE with check_otlp.py.
"""
import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class Handler(BaseHTTPRequestHandler):
    out_path = None

    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length)
        status = 200
        try:
            body = json.loads(raw)
        except ValueError:
            body, status = {"_undecodable": raw.decode("utf-8", "replace")}, 400
        with open(self.out_path, "a") as f:
            f.write(json.dumps({"path": self.path, "body": body}) + "\n")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", "2")
        self.end_headers()
        self.wfile.write(b"{}")

    def log_message(self, fmt, *args):  # keep CI logs quiet
        pass


def main():
    port, out_path = int(sys.argv[1]), sys.argv[2]
    Handler.out_path = out_path
    open(out_path, "a").close()  # exists even if nothing arrives
    server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
    print(f"otlp_sink: listening on 127.0.0.1:{port} -> {out_path}", flush=True)
    server.serve_forever()


if __name__ == "__main__":
    main()
