#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape from `dlosn serve`.

Usage: check_prometheus.py METRICS_TXT [REQUIRED_SERIES ...]

Fails (exit 1) unless the file is well-formed exposition format
(version 0.0.4): every sample line parses as `name[{labels}] value`,
every sample's family has a preceding `# TYPE` line with a known kind,
histogram buckets are cumulative per label set and end with a `+Inf`
bucket whose count equals that label set's `_count`, and every
REQUIRED_SERIES name prefix (default:
dlosn_fit_, dlosn_pde_, dlosn_pool_, dlosn_serve_) matches at least
one sample.  Additionally requires
dlosn_serve_connections_reused_total >= 1: the smoke test pipelines
requests over one keep-alive connection, and a zero would mean reuse
silently stopped working.
"""
import re
import sys

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[^}]*\})?"  # optional label set
    r" (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$"  # value
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
KINDS = {"counter", "gauge", "histogram"}
SUFFIXES = ("_bucket", "_sum", "_count")


def fail(msg):
    print(f"check_prometheus: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def family_of(name):
    for suffix in SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    path = sys.argv[1]
    required = sys.argv[2:] or [
        "dlosn_fit_",
        "dlosn_pde_",
        "dlosn_pool_",
        "dlosn_serve_",
    ]

    typed = {}
    samples = []  # (name, labels-dict, value)
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4 or parts[3] not in KINDS:
                    fail(f"line {i}: malformed TYPE line: {line!r}")
                typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"line {i}: unparseable sample: {line!r}")
            name, labelblock, value = m.groups()
            labels = {}
            if labelblock:
                for pair in labelblock[1:-1].split(","):
                    lm = LABEL_RE.match(pair)
                    if not lm:
                        fail(f"line {i}: bad label pair {pair!r}")
                    labels[lm.group(1)] = lm.group(2)
            family = family_of(name)
            if name not in typed and family not in typed:
                fail(f"line {i}: sample {name} has no preceding TYPE line")
            samples.append((name, labels, float(value)))

    # histogram bucket discipline: cumulative, +Inf present, total =
    # _count — checked per label set (a family may expose one unlabelled
    # series plus per-route labelled series, e.g. dlosn_serve_request_ns)
    def series_key(labels):
        return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))

    for family, kind in typed.items():
        if kind != "histogram":
            continue
        by_series = {}
        for name, labels, v in samples:
            if name == f"{family}_bucket":
                by_series.setdefault(series_key(labels), []).append(
                    (labels.get("le"), v)
                )
        counts = {
            series_key(labels): v
            for name, labels, v in samples
            if name == f"{family}_count"
        }
        if not by_series:
            fail(f"histogram {family} has no buckets")
        for key, buckets in by_series.items():
            label_desc = f"{family}{dict(key) if key else ''}"
            if buckets[-1][0] != "+Inf":
                fail(f"histogram {label_desc} does not end with a +Inf bucket")
            values = [v for _, v in buckets]
            if values != sorted(values):
                fail(
                    f"histogram {label_desc} buckets are not cumulative: "
                    f"{values}"
                )
            if key not in counts:
                fail(f"histogram {label_desc} has buckets but no _count")
            if counts[key] != values[-1]:
                fail(
                    f"histogram {label_desc}: +Inf bucket {values[-1]} "
                    f"!= _count {counts[key]}"
                )

    names = {name for name, _, _ in samples}
    for prefix in required:
        if not any(n.startswith(prefix) for n in names):
            fail(f"no series matching {prefix!r} (have {sorted(names)[:10]}...)")

    # the smoke test pipelines requests over one connection, so the
    # server must have observed keep-alive reuse (a zero here means
    # every request paid a fresh TCP connection)
    reused = [
        v
        for name, _, v in samples
        if name == "dlosn_serve_connections_reused_total"
    ]
    if not reused:
        fail("dlosn_serve_connections_reused_total not exported")
    if max(reused) < 1:
        fail(
            "dlosn_serve_connections_reused_total is 0 — "
            "keep-alive connection reuse never happened"
        )

    print(
        f"check_prometheus: OK — {len(samples)} samples in "
        f"{len(typed)} families, all required series present"
    )


if __name__ == "__main__":
    main()
