#!/usr/bin/env python3
"""Gate the live-ingestion smoke and benchmark.

Usage: check_live.py SCRAPE_TXT [BENCH_JSON]

SCRAPE_TXT is a Prometheus exposition scraped from a server that just
ingested a `dlosn replay` stream.  Fails (exit 1) unless:

- dlosn_live_votes_ingested_total > 0: the /observe path actually
  accepted votes;
- dlosn_live_fits_total >= 1: the refit daemon produced at least one
  fit from the stream;
- dlosn_live_refits_total >= 1: at least one of those was a
  drift-triggered warm refit, i.e. the drift detector closed the loop
  (override the floor via LIVE_MIN_REFITS);
- dlosn_fit_warm_starts_total >= 1: the refit really warm-started from
  the previous generation instead of fitting cold.

BENCH_JSON, if given, is a dlosn-bench-live/1 (or dlosn-bench/1) file
from `DLOSN_BENCH_LIVE_ONLY=1 bench/main.exe`.  Additional gates:

- votes > 0 and dropped == 0: every /observe batch was answered;
- fits >= 1: the daemon kept up with the blast-speed stream;
- warm_evals < cold_evals: the warm refit is strictly cheaper than an
  equivalent cold fit on the same data;
- observe_p99_ms <= LIVE_P99_MS (default 50: /observe is a mutation
  plus drift check, the bar is looser than cache-hit /predict).
"""
import json
import os
import sys

MIN_REFITS = int(os.environ.get("LIVE_MIN_REFITS", "1"))
P99_MS = float(os.environ.get("LIVE_P99_MS", "50"))


def fail(msg):
    print(f"check_live: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def metric(lines, name):
    for line in lines:
        parts = line.split()
        if len(parts) == 2 and parts[0] == name:
            try:
                return float(parts[1])
            except ValueError:
                fail(f"unparseable sample for {name}: {line!r}")
    fail(f"metric {name} not found in scrape")


def check_scrape(path):
    with open(path) as f:
        lines = f.read().splitlines()
    votes = metric(lines, "dlosn_live_votes_ingested_total")
    if votes <= 0:
        fail(f"dlosn_live_votes_ingested_total = {votes:.0f}, expected > 0")
    fits = metric(lines, "dlosn_live_fits_total")
    if fits < 1:
        fail(f"dlosn_live_fits_total = {fits:.0f}, expected >= 1")
    refits = metric(lines, "dlosn_live_refits_total")
    if refits < MIN_REFITS:
        fail(f"dlosn_live_refits_total = {refits:.0f}, expected >= {MIN_REFITS}")
    warm = metric(lines, "dlosn_fit_warm_starts_total")
    if warm < 1:
        fail(f"dlosn_fit_warm_starts_total = {warm:.0f}, expected >= 1")
    print(
        f"check_live: scrape OK: {votes:.0f} votes ingested, "
        f"{fits:.0f} daemon fits ({refits:.0f} drift-triggered, "
        f"{warm:.0f} warm starts)"
    )


def check_bench(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in ("dlosn-bench-live/1", "dlosn-bench/1"):
        fail(f"unexpected schema {doc.get('schema')!r} in {path}")
    live = doc.get("live")
    if not isinstance(live, dict):
        fail(f"no \"live\" object in {path}")
    if live.get("votes", 0) <= 0:
        fail(f"bench ingested {live.get('votes')} votes, expected > 0")
    if live.get("dropped", 1) != 0:
        fail(f"bench dropped {live.get('dropped')} /observe batches")
    if live.get("fits", 0) < 1:
        fail(f"bench saw {live.get('fits')} daemon fits, expected >= 1")
    warm, cold = live.get("warm_evals", 0), live.get("cold_evals", 0)
    if not warm or not cold or warm >= cold:
        fail(f"warm refit not cheaper: {warm} evals vs cold {cold}")
    p99 = live.get("observe_p99_ms")
    if p99 is None or p99 > P99_MS:
        fail(f"observe_p99_ms = {p99}, bound {P99_MS}")
    print(
        f"check_live: bench OK: {live['votes']} votes at "
        f"{live.get('votes_per_s', 0):.0f}/s, p99 {p99:.2f} ms, "
        f"warm {warm} vs cold {cold} evals"
    )


def main():
    if len(sys.argv) < 2:
        fail("usage: check_live.py SCRAPE_TXT [BENCH_JSON]")
    check_scrape(sys.argv[1])
    if len(sys.argv) > 2:
        check_bench(sys.argv[2])
    print("check_live: OK")


if __name__ == "__main__":
    main()
