#!/usr/bin/env python3
"""Gate the PDE-solver fast path against the committed baseline.

Usage: check_bench.py CURRENT_JSON BASELINE_JSON

Reads the "solver" section of two bench files (either the full
dlosn-bench/1 harness output or the standalone dlosn-bench-solver/1
document the DLOSN_BENCH_SOLVER_ONLY mode writes) and fails (exit 1)
when the fresh run regresses against bench/baseline.json.

Per-scheme checks (scalar workspace path vs reference stepper):

- output divergence: every scheme must report identical=true (the
  workspace path is only allowed to exist while it is bit-identical to
  the reference stepper);
- allocation regression: fast_minor_words_per_solve may not exceed the
  baseline by more than 20% (minor-word counts are deterministic, so
  this is a tight absolute check), and alloc_ratio (reference / fast)
  must stay >= 2 — the headline claim of the optimisation — for every
  scheme with a cached implicit operator.  A baseline entry may set
  "min_alloc_ratio" to override the floor: FTCS has no factorization
  to cache and its remaining allocations (boxed floats crossing the
  user-supplied reaction closure) are shared with the reference path,
  so it carries a lower floor;
- time regression: ns/step is machine-dependent, so the check is
  relative — fast_ns_per_step / ref_ns_per_step, both measured in the
  same run on the same machine, may not exceed the baseline ratio by
  more than 20%.

Panel checks (fused multi-story panel vs a per-story scalar loop,
both measured in the same run):

- every panel entry must report identical=true — the fused solver is
  only allowed to exist while each story's output is bit-identical to
  its scalar solve;
- speedup (scalar time / panel time per story-step) must stay >= 2
  for the committed >= 8-story panels ("min_speedup" in the baseline
  entry overrides the floor);
- allocation regression: panel_minor_words_per_story may not exceed
  the baseline by more than 20%.
"""
import json
import sys

TOLERANCE = 1.20
MIN_ALLOC_RATIO = 2.0
MIN_PANEL_SPEEDUP = 2.0

SCHEMAS = ("dlosn-bench/1", "dlosn-bench-solver/1")


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def solver_of(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in SCHEMAS:
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    solver = doc.get("solver")
    if not solver or not solver.get("schemes"):
        fail(f"{path}: no solver section")
    schemes = {s["name"]: s for s in solver["schemes"]}
    panel = {p["name"]: p for p in solver.get("panel", [])}
    return schemes, panel


def check_schemes(current, baseline):
    checked = 0
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            fail(f"scheme {name!r} present in baseline but missing from run")

        if cur.get("identical") is not True:
            fail(f"{name}: fast path is not bit-identical to the reference")

        words = cur["fast_minor_words_per_solve"]
        base_words = base["fast_minor_words_per_solve"]
        if words > base_words * TOLERANCE:
            fail(
                f"{name}: allocation regression — "
                f"{words:.0f} minor words/solve vs baseline {base_words:.0f} "
                f"(>{TOLERANCE:.0%})"
            )

        ratio = cur["alloc_ratio"]
        min_ratio = base.get("min_alloc_ratio", MIN_ALLOC_RATIO)
        if ratio < min_ratio:
            fail(
                f"{name}: alloc_ratio {ratio:.2f} below the required "
                f"{min_ratio}x reference-to-fast reduction"
            )

        rel = cur["fast_ns_per_step"] / cur["ref_ns_per_step"]
        base_rel = base["fast_ns_per_step"] / base["ref_ns_per_step"]
        if rel > base_rel * TOLERANCE:
            fail(
                f"{name}: time regression — fast/ref step-time ratio "
                f"{rel:.3f} vs baseline {base_rel:.3f} (>{TOLERANCE:.0%})"
            )
        checked += 1
        print(
            f"check_bench: {name}: identical, {words:.0f} words/solve "
            f"(baseline {base_words:.0f}), alloc x{ratio:.1f}, "
            f"fast/ref time {rel:.3f} (baseline {base_rel:.3f})"
        )

    if checked == 0:
        fail("baseline contained no schemes")
    return checked


def check_panel(current, baseline):
    checked = 0
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            fail(f"panel {name!r} present in baseline but missing from run")

        if cur.get("identical") is not True:
            fail(
                f"panel {name}: fused solve is not bit-identical to the "
                f"per-story scalar path"
            )

        if cur["stories"] < base["stories"]:
            fail(
                f"panel {name}: run used {cur['stories']} stories, "
                f"baseline gates {base['stories']}"
            )

        speedup = cur["speedup"]
        min_speedup = base.get("min_speedup", MIN_PANEL_SPEEDUP)
        if speedup < min_speedup:
            fail(
                f"panel {name}: speedup {speedup:.2f}x vs the scalar loop "
                f"below the required {min_speedup}x"
            )

        words = cur["panel_minor_words_per_story"]
        base_words = base["panel_minor_words_per_story"]
        if words > base_words * TOLERANCE:
            fail(
                f"panel {name}: allocation regression — "
                f"{words:.0f} minor words/story vs baseline {base_words:.0f} "
                f"(>{TOLERANCE:.0%})"
            )
        checked += 1
        print(
            f"check_bench: panel {name}: identical, {cur['stories']} stories, "
            f"{speedup:.2f}x vs scalar loop (floor {min_speedup}x), "
            f"{words:.0f} words/story (baseline {base_words:.0f})"
        )
    return checked


def main():
    cur_schemes, cur_panel = solver_of(sys.argv[1])
    base_schemes, base_panel = solver_of(sys.argv[2])

    checked = check_schemes(cur_schemes, base_schemes)
    panel_checked = check_panel(cur_panel, base_panel)
    if base_panel and panel_checked == 0:
        fail("baseline contained panel entries but none were checked")
    print(
        f"check_bench: OK — {checked} schemes and {panel_checked} panels "
        f"within tolerance"
    )


if __name__ == "__main__":
    main()
