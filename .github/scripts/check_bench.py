#!/usr/bin/env python3
"""Gate the PDE-solver fast path against the committed baseline.

Usage: check_bench.py CURRENT_JSON BASELINE_JSON

Reads the "solver" section of two dlosn-bench/1 files and fails
(exit 1) when the fresh run regresses against bench/baseline.json:

- output divergence: every scheme must report identical=true (the
  workspace path is only allowed to exist while it is bit-identical to
  the reference stepper);
- allocation regression: fast_minor_words_per_solve may not exceed the
  baseline by more than 20% (minor-word counts are deterministic, so
  this is a tight absolute check), and alloc_ratio (reference / fast)
  must stay >= 2 — the headline claim of the optimisation — for every
  scheme with a cached implicit operator.  A baseline entry may set
  "min_alloc_ratio" to override the floor: FTCS has no factorization
  to cache and its remaining allocations (boxed floats crossing the
  user-supplied reaction closure) are shared with the reference path,
  so it carries a lower floor;
- time regression: ns/step is machine-dependent, so the check is
  relative — fast_ns_per_step / ref_ns_per_step, both measured in the
  same run on the same machine, may not exceed the baseline ratio by
  more than 20%.
"""
import json
import sys

TOLERANCE = 1.20
MIN_ALLOC_RATIO = 2.0


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def schemes_of(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dlosn-bench/1":
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    solver = doc.get("solver")
    if not solver or not solver.get("schemes"):
        fail(f"{path}: no solver section")
    return {s["name"]: s for s in solver["schemes"]}


def main():
    current = schemes_of(sys.argv[1])
    baseline = schemes_of(sys.argv[2])

    checked = 0
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            fail(f"scheme {name!r} present in baseline but missing from run")

        if cur.get("identical") is not True:
            fail(f"{name}: fast path is not bit-identical to the reference")

        words = cur["fast_minor_words_per_solve"]
        base_words = base["fast_minor_words_per_solve"]
        if words > base_words * TOLERANCE:
            fail(
                f"{name}: allocation regression — "
                f"{words:.0f} minor words/solve vs baseline {base_words:.0f} "
                f"(>{TOLERANCE:.0%})"
            )

        ratio = cur["alloc_ratio"]
        min_ratio = base.get("min_alloc_ratio", MIN_ALLOC_RATIO)
        if ratio < min_ratio:
            fail(
                f"{name}: alloc_ratio {ratio:.2f} below the required "
                f"{min_ratio}x reference-to-fast reduction"
            )

        rel = cur["fast_ns_per_step"] / cur["ref_ns_per_step"]
        base_rel = base["fast_ns_per_step"] / base["ref_ns_per_step"]
        if rel > base_rel * TOLERANCE:
            fail(
                f"{name}: time regression — fast/ref step-time ratio "
                f"{rel:.3f} vs baseline {base_rel:.3f} (>{TOLERANCE:.0%})"
            )
        checked += 1
        print(
            f"check_bench: {name}: identical, {words:.0f} words/solve "
            f"(baseline {base_words:.0f}), alloc x{ratio:.1f}, "
            f"fast/ref time {rel:.3f} (baseline {base_rel:.3f})"
        )

    if checked == 0:
        fail("baseline contained no schemes")
    print(f"check_bench: OK — {checked} schemes within tolerance")


if __name__ == "__main__":
    main()
