#!/usr/bin/env python3
"""Validate a dlosn-metrics/1 dump and a JSON-lines log file.

Usage: check_metrics.py METRICS_JSON LOGS_JSONL MIN_DOMAINS

Fails (exit 1) unless the metrics file parses, carries the expected
schema, and contains non-zero fit.nm_iterations, pde.steps and a
pool.tasks_per_domain counter for at least MIN_DOMAINS distinct
domains, all non-zero; and unless every log line is a JSON object with
"level" and "msg" members.
"""
import json
import sys


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    metrics_path, logs_path, min_domains = (
        sys.argv[1],
        sys.argv[2],
        int(sys.argv[3]),
    )

    with open(metrics_path) as f:
        m = json.load(f)
    if m.get("schema") != "dlosn-metrics/1":
        fail(f"unexpected schema {m.get('schema')!r}")
    counters = {(r["name"], r.get("label")): r["value"] for r in m["counters"]}

    for name in ("fit.nm_iterations", "pde.steps"):
        if counters.get((name, None), 0) <= 0:
            fail(f"counter {name} missing or zero")

    per_domain = {
        label: v
        for (name, label), v in counters.items()
        if name == "pool.tasks_per_domain"
    }
    if len(per_domain) < min_domains:
        fail(
            f"expected >= {min_domains} pool.tasks_per_domain labels, "
            f"got {sorted(per_domain)}"
        )
    for label, v in sorted(per_domain.items()):
        if v <= 0:
            fail(f"domain {label} recorded no tasks")

    n_lines = 0
    with open(logs_path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{logs_path}:{i} is not valid JSON ({e}): {line[:120]}")
            if not isinstance(rec, dict) or "level" not in rec or "msg" not in rec:
                fail(f"{logs_path}:{i} lacks level/msg: {line[:120]}")
            n_lines += 1
    if n_lines == 0:
        fail("no log records emitted")

    print(
        f"check_metrics: OK — {len(counters)} counters, "
        f"{len(per_domain)} domains, {n_lines} log records"
    )


if __name__ == "__main__":
    main()
