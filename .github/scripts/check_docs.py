#!/usr/bin/env python3
"""Docs consistency check.

Usage: check_docs.py REPO_ROOT [MODEL_LIST_FILE]

- every `docs/*.md` path mentioned in README.md must exist on disk
  (a reference to a renamed or deleted doc is a broken promise);
- README.md must link docs/MODELS.md (the model-zoo handbook);
- every registered model must appear in docs/MODELS.md.  The registry
  is read from MODEL_LIST_FILE — the output of
  `dlosn tournament --list`, one `name description` line per model —
  so the check can never drift from the code's own registry.
"""
import os
import re
import sys


def fail(msg):
    print(f"check_docs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    root = sys.argv[1]
    readme_path = os.path.join(root, "README.md")
    with open(readme_path) as f:
        readme = f.read()

    refs = sorted(set(re.findall(r"docs/[A-Za-z0-9_.-]+\.md", readme)))
    if not refs:
        fail("README.md references no docs/*.md at all")
    for ref in refs:
        if not os.path.isfile(os.path.join(root, ref)):
            fail(f"README.md references {ref}, which does not exist")
    if "docs/MODELS.md" not in refs:
        fail("README.md does not link docs/MODELS.md")
    print(f"check_docs: README references {len(refs)} docs, all present")

    models_path = os.path.join(root, "docs", "MODELS.md")
    with open(models_path) as f:
        models_doc = f.read()

    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            models = [
                line.split()[0] for line in f if line.strip()
            ]
        if not models:
            fail(f"{sys.argv[2]} lists no models")
        missing = [
            m for m in models if f"`{m}`" not in models_doc
        ]
        if missing:
            fail(
                f"docs/MODELS.md does not document registered "
                f"model(s): {', '.join(missing)}"
            )
        print(
            f"check_docs: all {len(models)} registered models documented "
            f"in docs/MODELS.md"
        )
    print("check_docs: OK")


if __name__ == "__main__":
    main()
