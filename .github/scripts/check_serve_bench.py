#!/usr/bin/env python3
"""Gate the serving layer's keep-alive load benchmark.

Usage: check_serve_bench.py SERVE_JSON

Reads the "serve" object of a dlosn-bench-serve/1 (or dlosn-bench/1)
file — produced by `DLOSN_BENCH_SERVE_ONLY=1 bench/main.exe` — and
fails (exit 1) unless:

- connections >= 1000: the event loop actually multiplexed a thousand
  concurrent keep-alive connections in one process;
- dropped == 0: every request got a response, including the ones in
  flight when the bench SIGTERMed the server;
- drained is true: the SIGTERM drain answered all in-flight requests
  and the server process exited 0;
- reused >= 2 * connections: requests genuinely rode existing
  connections instead of paying a fresh TCP handshake each;
- p50 <= SERVE_P50_MS and p99 <= SERVE_P99_MS (defaults 10 / 25 —
  cache-hit /predict latency; the local acceptance bar is p99 < 10 ms,
  the CI default leaves headroom for shared runners.  Override via
  environment).
"""
import json
import os
import sys

P50_MS = float(os.environ.get("SERVE_P50_MS", "10"))
P99_MS = float(os.environ.get("SERVE_P99_MS", "25"))


def fail(msg):
    print(f"check_serve_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    path = sys.argv[1]
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in ("dlosn-bench-serve/1", "dlosn-bench/1"):
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    serve = doc.get("serve")
    if not serve:
        fail(f"{path}: no serve section")

    conns = serve.get("connections", 0)
    if conns < 1000:
        fail(f"only {conns} concurrent keep-alive connections (need >= 1000)")
    if serve.get("dropped", 1) != 0:
        fail(f"{serve['dropped']} dropped responses (need 0)")
    if serve.get("drained") is not True:
        fail("SIGTERM under load did not drain cleanly")
    reused = serve.get("reused", 0)
    if reused < 2 * conns:
        fail(
            f"connection reuse {reused} below {2 * conns} — "
            f"keep-alive is not carrying the load"
        )
    p50, p99 = serve.get("p50_ms"), serve.get("p99_ms")
    if p50 is None or p50 > P50_MS:
        fail(f"p50 {p50} ms over the {P50_MS} ms bound")
    if p99 is None or p99 > P99_MS:
        fail(f"p99 {p99} ms over the {P99_MS} ms bound")

    print(
        f"check_serve_bench: OK — {serve['requests']} requests over "
        f"{conns} connections, reused {reused}, dropped 0, drained, "
        f"p50 {p50:.2f} ms, p99 {p99:.2f} ms "
        f"(bounds {P50_MS:.0f}/{P99_MS:.0f})"
    )


if __name__ == "__main__":
    main()
