#!/usr/bin/env python3
"""Validate what the OTLP sink captured from a `dlosn serve` smoke run.

Usage: check_otlp.py SINK_JSONL [TRACE_ID]

SINK_JSONL is the file otlp_sink.py wrote (one {"path","body"} JSON
line per POST).  Fails (exit 1) unless:

  * at least one POST each landed on /v1/traces and /v1/metrics;
  * every payload has the OTLP resource envelope for its signal
    (resourceSpans / resourceMetrics / resourceLogs) with the
    service.name resource attribute set to "dlosn";
  * every exported span has 32-hex traceId, 16-hex spanId, string
    nanosecond timestamps with end >= start;
  * a `serve.request` span is present, and when TRACE_ID is given at
    least one serve.request span carries exactly that traceId.
"""
import json
import re
import sys

HEX16 = re.compile(r"^[0-9a-f]{16}$")
HEX32 = re.compile(r"^[0-9a-f]{32}$")


def fail(msg):
    print(f"check_otlp: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def service_name(resource_entry):
    for attr in resource_entry.get("resource", {}).get("attributes", []):
        if attr.get("key") == "service.name":
            return attr.get("value", {}).get("stringValue")
    return None


def iter_spans(body):
    for rs in body.get("resourceSpans", []):
        for ss in rs.get("scopeSpans", []):
            yield from ss.get("spans", [])


def check_span(span):
    if not HEX32.match(span.get("traceId", "")):
        fail(f"span {span.get('name')!r}: bad traceId {span.get('traceId')!r}")
    if not HEX16.match(span.get("spanId", "")):
        fail(f"span {span.get('name')!r}: bad spanId {span.get('spanId')!r}")
    for key in ("startTimeUnixNano", "endTimeUnixNano"):
        if not isinstance(span.get(key), str) or not span[key].isdigit():
            fail(f"span {span.get('name')!r}: {key} must be a digit string")
    if int(span["endTimeUnixNano"]) < int(span["startTimeUnixNano"]):
        fail(f"span {span.get('name')!r}: end precedes start")


def main():
    path = sys.argv[1]
    want_trace = sys.argv[2] if len(sys.argv) > 2 else None

    envelopes = {
        "/v1/traces": "resourceSpans",
        "/v1/metrics": "resourceMetrics",
        "/v1/logs": "resourceLogs",
    }
    posts_by_path = {}
    spans = []
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            post = json.loads(line)
            p, body = post.get("path"), post.get("body", {})
            if p not in envelopes:
                fail(f"line {i}: POST to unexpected path {p!r}")
            envelope = envelopes[p]
            if envelope not in body:
                fail(f"line {i}: {p} payload lacks {envelope}")
            for entry in body[envelope]:
                svc = service_name(entry)
                if svc != "dlosn":
                    fail(f"line {i}: service.name is {svc!r}, want 'dlosn'")
            posts_by_path.setdefault(p, 0)
            posts_by_path[p] += 1
            spans.extend(iter_spans(body))

    for required in ("/v1/traces", "/v1/metrics"):
        if not posts_by_path.get(required):
            fail(f"no POST captured on {required} (saw {posts_by_path})")

    for span in spans:
        check_span(span)

    serve_spans = [s for s in spans if s.get("name") == "serve.request"]
    if not serve_spans:
        fail(f"no serve.request span among {len(spans)} exported spans")
    if want_trace is not None:
        if not any(s["traceId"] == want_trace for s in serve_spans):
            seen = sorted({s["traceId"] for s in serve_spans})
            fail(f"no serve.request span with traceId {want_trace} (saw {seen})")

    print(
        f"check_otlp: OK — {sum(posts_by_path.values())} posts "
        f"({posts_by_path}), {len(spans)} spans, "
        f"{len(serve_spans)} serve.request"
        + (f", trace {want_trace} present" if want_trace else "")
    )


if __name__ == "__main__":
    main()
