type config = {
  threshold : float;
  min_votes : int;
  min_new_votes : int;
}

let default = { threshold = 0.25; min_votes = 8; min_new_votes = 4 }

let relative_error ~predict ~obs ~times =
  let err = ref 0. and cells = ref 0 in
  Array.iter
    (fun x ->
      Array.iter
        (fun t ->
          if t > 1. +. 1e-9 then begin
            let actual = Socialnet.Density.at obs ~distance:x ~time:t in
            if actual > 0. then begin
              let predicted = predict ~x:(float_of_int x) ~t in
              err := !err +. (Float.abs (predicted -. actual) /. actual);
              incr cells
            end
          end)
        times)
    obs.Socialnet.Density.distances;
  if !cells = 0 then (0., 0) else (!err /. float_of_int !cells, !cells)

let should_refit cfg ~drift ~cells ~votes ~votes_at_fit =
  cells > 0
  && votes >= cfg.min_votes
  && votes - votes_at_fit >= cfg.min_new_votes
  && (Float.is_nan drift || drift >= cfg.threshold)
