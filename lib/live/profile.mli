(** Incremental per-story density-by-distance profiles.

    A [Profile.t] is the streaming counterpart of
    {!Socialnet.Density.observe}: votes arrive one at a time (in any
    order within a bounded lateness window) and the profile maintains
    exactly the density table a batch [Density.observe] over the
    accumulated vote set would produce — the equivalence is
    property-tested.  Each vote is folded in O(1): it lands in the
    first observation-time bucket covering it, and the cumulative
    table is materialised only when {!density} is called.

    {2 Watermarking}

    The watermark is the largest event time accepted so far.  A vote
    older than [watermark - lateness] is {e late}: it is dropped (the
    profile no longer changes) and counted — the server surfaces the
    count as the [live.dropped_late] metric.  Votes within the window
    are folded in regardless of arrival order; because cells are
    cumulative counts, the result is order-independent. *)

type t

type outcome =
  | Added  (** folded into the profile *)
  | Late  (** older than [watermark - lateness]; dropped and counted *)
  | Out_of_range
      (** distance outside [1 .. max_distance]; dropped and counted
          (batch [Density.observe] ignores these labels too) *)
  | Beyond_horizon
      (** later than the last observation time; advances the watermark
          but lands in no cell *)

val create :
  ?lateness:float ->
  ?watermark:float ->
  max_distance:int ->
  times:float array ->
  population:int array ->
  unit ->
  t
(** [create ~max_distance ~times ~population ()] starts an empty
    profile over distance groups [1 .. max_distance] observed at
    [times] (strictly increasing, first element [1.]).
    [population.(i)] is the group size for distance [i+1] — the
    denominator of the density percentages, as in
    {!Socialnet.Density.observe}.  [lateness] is the out-of-order
    window in event-time hours (default [2.]; [infinity] never drops).
    [watermark] pre-positions the stream clock (default [0.]), used to
    resume ingestion from a persisted observation cursor after a
    restart.
    @raise Invalid_argument on an empty/unsorted time grid, a first
    time other than 1, a population of the wrong length, or a negative
    lateness. *)

val add : t -> distance:int -> time:float -> outcome
(** Fold one vote in.  [distance] is the vote's distance label (hops
    or interest group, 1-based); [time] its event time in hours.
    @raise Invalid_argument on a non-finite or negative time. *)

val density : t -> Socialnet.Density.t
(** The accumulated observation table: bit-equal to
    [Density.observe] over every vote accepted so far (late and
    out-of-range drops excluded, exactly as batch observation would
    exclude them from its input). *)

val watermark : t -> float
(** Largest accepted event time (the stream clock); [create]'s
    [?watermark] before any vote. *)

val observed_times : t -> float array
(** The observation times the stream has fully reached
    ([times.(i) <= watermark]) — the cells a drift check may trust. *)

val times : t -> float array
val max_distance : t -> int
val lateness : t -> float
val votes : t -> int  (** votes folded into cells *)

val dropped_late : t -> int
val dropped_range : t -> int
val beyond_horizon : t -> int
