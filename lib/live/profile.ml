type t = {
  max_distance : int;
  times : float array;
  population : int array;
  lateness : float;
  (* counts.(ix).(it): votes at distance ix+1 whose first covering
     observation time is times.(it).  The density cell (ix, it) is the
     prefix sum over buckets 0..it — cumulative counts make folding a
     vote O(1) and the result independent of arrival order. *)
  counts : int array array;
  mutable watermark : float;
  mutable total : int;
  mutable dropped_late : int;
  mutable dropped_range : int;
  mutable beyond : int;
}

type outcome = Added | Late | Out_of_range | Beyond_horizon

let create ?(lateness = 2.) ?(watermark = 0.) ~max_distance ~times
    ~population () =
  let nt = Array.length times in
  if max_distance < 1 then invalid_arg "Live.Profile: max_distance < 1";
  if nt = 0 then invalid_arg "Live.Profile: empty time grid";
  if Float.abs (times.(0) -. 1.) > 1e-9 then
    invalid_arg "Live.Profile: observation times must start at t = 1";
  for i = 1 to nt - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Live.Profile: observation times must be increasing"
  done;
  if Array.length population <> max_distance then
    invalid_arg "Live.Profile: population length must equal max_distance";
  Array.iter
    (fun p -> if p < 0 then invalid_arg "Live.Profile: negative population")
    population;
  if lateness < 0. then invalid_arg "Live.Profile: negative lateness";
  {
    max_distance;
    times = Array.copy times;
    population = Array.copy population;
    lateness;
    counts = Array.make_matrix max_distance nt 0;
    watermark;
    total = 0;
    dropped_late = 0;
    dropped_range = 0;
    beyond = 0;
  }

(* First observation time covering the vote, i.e. the smallest [it]
   with [time <= times.(it)] — the same [<=] as [Density.observe]. *)
let bucket t time =
  let nt = Array.length t.times in
  if time > t.times.(nt - 1) then None
  else begin
    let lo = ref 0 and hi = ref (nt - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if time <= t.times.(mid) then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

let add t ~distance ~time =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Live.Profile.add: bad vote time";
  if time < t.watermark -. t.lateness then begin
    t.dropped_late <- t.dropped_late + 1;
    Late
  end
  else begin
    if time > t.watermark then t.watermark <- time;
    if distance < 1 || distance > t.max_distance then begin
      t.dropped_range <- t.dropped_range + 1;
      Out_of_range
    end
    else
      match bucket t time with
      | None ->
        t.beyond <- t.beyond + 1;
        Beyond_horizon
      | Some it ->
        t.counts.(distance - 1).(it) <- t.counts.(distance - 1).(it) + 1;
        t.total <- t.total + 1;
        Added
  end

let density t =
  let nt = Array.length t.times in
  let density =
    Array.init t.max_distance (fun ix ->
        let row = Array.make nt 0. in
        let pop = t.population.(ix) in
        let cum = ref 0 in
        for it = 0 to nt - 1 do
          cum := !cum + t.counts.(ix).(it);
          row.(it) <-
            (if pop = 0 then 0.
             else 100. *. float_of_int !cum /. float_of_int pop)
        done;
        row)
  in
  {
    Socialnet.Density.distances = Array.init t.max_distance (fun i -> i + 1);
    times = Array.copy t.times;
    density;
    population = Array.copy t.population;
  }

let watermark t = t.watermark

let observed_times t =
  Array.of_list
    (List.filter (fun tm -> tm <= t.watermark) (Array.to_list t.times))

let times t = Array.copy t.times
let max_distance t = t.max_distance
let lateness t = t.lateness
let votes t = t.total
let dropped_late t = t.dropped_late
let dropped_range t = t.dropped_range
let beyond_horizon t = t.beyond
