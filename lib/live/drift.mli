(** Drift detection for the online refit daemon.

    Drift is the mean relative error of the currently-serving fit's
    prediction against the live profile, evaluated at the observation
    times the stream has fully reached ({!Profile.observed_times}) —
    the same error the fitting objective minimises, so "drift past the
    threshold" literally means "the serving fit is now this far off
    the data it ought to explain". *)

type config = {
  threshold : float;
      (** mean relative error beyond which a refit fires
          (default 0.25) *)
  min_votes : int;
      (** profile votes required before drift is trusted at all
          (default 8) *)
  min_new_votes : int;
      (** votes that must have arrived since the serving fit was
          computed — a refit on an unchanged profile would reproduce
          it (default 4) *)
}

val default : config

val relative_error :
  predict:(x:float -> t:float -> float) ->
  obs:Socialnet.Density.t ->
  times:float array ->
  float * int
(** [(error, cells)]: mean of [|predict - actual| / actual] over every
    (distance, time) cell of [obs] restricted to [times] and [t > 1]
    with a positive observed density, and the number of cells that
    contributed.  [(0., 0)] when no cell qualifies. *)

val should_refit :
  config -> drift:float -> cells:int -> votes:int -> votes_at_fit:int -> bool
(** The trigger decision: at least one contributing cell, [votes >=
    min_votes], [votes - votes_at_fit >= min_new_votes], and [drift >=
    threshold].  A non-finite [drift] (e.g. the serving solution blew
    up at a queried time) triggers when the vote gates pass — a fit
    that cannot predict the present is maximally drifted. *)
