(* Serialised format (line-oriented, tab-separated):

     dlosn-dataset 1
     users <n>
     follows <m>
     <u> <v>          (m lines: u follows v)
     stories <k>
     story <id> <initiator> <topic> <n_votes>
     <user> <time>    (n_votes lines, sorted by time)
     ... repeated for each story *)

open Osn_graph

type t = {
  follows : Digraph.t;
  influence : Digraph.t;
  stories : Types.story array;
  votes_by_user : int array array; (* ascending story ids per user *)
}

let make ~follows ~stories =
  let n = Digraph.n_nodes follows in
  Array.iter
    (fun (s : Types.story) ->
      Types.check_story s;
      Array.iter
        (fun (v : Types.vote) ->
          if v.Types.user < 0 || v.Types.user >= n then
            invalid_arg "Dataset.make: voter id out of range")
        s.Types.votes)
    stories;
  let buckets = Array.make n [] in
  Array.iter
    (fun (s : Types.story) ->
      Array.iter
        (fun (v : Types.vote) ->
          buckets.(v.Types.user) <- s.Types.id :: buckets.(v.Types.user))
        s.Types.votes)
    stories;
  let votes_by_user =
    Array.map
      (fun ids ->
        let a = Array.of_list ids in
        Array.sort compare a;
        a)
      buckets
  in
  { follows; influence = Digraph.reverse follows; stories; votes_by_user }

let n_users t = Digraph.n_nodes t.follows
let n_stories t = Array.length t.stories
let follows t = t.follows
let influence t = t.influence

let story t i =
  if i < 0 || i >= Array.length t.stories then
    invalid_arg "Dataset.story: index out of range";
  t.stories.(i)

let stories t = t.stories
let stories_voted_by t u = t.votes_by_user.(u)

let total_votes t =
  Array.fold_left (fun acc s -> acc + Array.length s.Types.votes) 0 t.stories

let save_tsv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let pr fmt = Printf.fprintf oc fmt in
      pr "dlosn-dataset 1\n";
      pr "users %d\n" (n_users t);
      pr "follows %d\n" (Digraph.n_edges t.follows);
      Digraph.iter_edges t.follows (fun u v -> pr "%d\t%d\n" u v);
      pr "stories %d\n" (Array.length t.stories);
      Array.iter
        (fun (s : Types.story) ->
          pr "story\t%d\t%d\t%d\t%d\n" s.Types.id s.Types.initiator s.Types.topic
            (Array.length s.Types.votes);
          Array.iter
            (fun (v : Types.vote) -> pr "%d\t%.6f\n" v.Types.user v.Types.time)
            s.Types.votes)
        t.stories)

let load_tsv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () = input_line ic in
      let fail msg = failwith (Printf.sprintf "Dataset.load_tsv %s: %s" path msg) in
      let expect_header tag l =
        match String.split_on_char ' ' l with
        | [ t; v ] when t = tag -> (
          match int_of_string_opt v with
          | Some n -> n
          | None -> fail (tag ^ ": bad count"))
        | _ -> fail ("expected " ^ tag)
      in
      (if line () <> "dlosn-dataset 1" then fail "bad magic");
      let n = expect_header "users" (line ()) in
      let m = expect_header "follows" (line ()) in
      let g = Digraph.create n in
      for _ = 1 to m do
        match String.split_on_char '\t' (line ()) with
        | [ u; v ] -> Digraph.add_edge g (int_of_string u) (int_of_string v)
        | _ -> fail "bad edge line"
      done;
      let k = expect_header "stories" (line ()) in
      let stories =
        Array.init k (fun _ ->
            match String.split_on_char '\t' (line ()) with
            | [ "story"; id; initiator; topic; nv ] ->
              let nv = int_of_string nv in
              let votes =
                Array.init nv (fun _ ->
                    match String.split_on_char '\t' (line ()) with
                    | [ u; tm ] ->
                      {
                        Types.user = int_of_string u;
                        time = float_of_string tm;
                      }
                    | _ -> fail "bad vote line")
              in
              {
                Types.id = int_of_string id;
                initiator = int_of_string initiator;
                topic = int_of_string topic;
                votes;
              }
            | _ -> fail "bad story line")
      in
      make ~follows:g ~stories)

let pp ppf t =
  Format.fprintf ppf "dataset(%d users, %d follow edges, %d stories, %d votes)"
    (n_users t)
    (Digraph.n_edges t.follows)
    (n_stories t) (total_votes t)
