(** Temporal analytics of vote streams.

    Quantifies the patterns the paper reads off its Figure 3 ("popular
    stories spread faster", "densities remain stable after 50 hours"):
    vote-rate histograms, time-to-fraction, saturation time, and
    inter-arrival statistics. *)

val votes_per_hour : Types.story -> duration:float -> int array
(** [votes_per_hour s ~duration] is one bucket per whole hour starting
    at submission ([ceil duration] buckets); votes beyond [duration]
    are dropped. *)

val time_to_fraction : Types.story -> fraction:float -> float
(** Earliest vote timestamp by which at least [fraction] (in (0, 1]])
    of the story's total votes were cast. *)

val saturation_time : ?tolerance:float -> Types.story -> float
(** Time after which the remaining vote mass is below [tolerance]
    (default 0.02) of the total — the paper's "no longer new"
    instant. *)

val peak_hour : Types.story -> duration:float -> int
(** Index (0-based) of the busiest hour bucket. *)

type inter_arrival = {
  mean : float;
  median : float;
  max : float;
}

val inter_arrival_stats : Types.story -> inter_arrival
(** Statistics of the gaps between consecutive votes.
    @raise Invalid_argument for stories with fewer than two votes. *)

val spread_speed_rank :
  Types.story array -> (int * float) array
(** Stories ranked by time-to-half-votes (ascending = fastest first);
    pairs of (story id, time to 50 %). *)
