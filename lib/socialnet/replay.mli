(** Replay adapter: turn the cascade simulator into a live traffic
    stream.

    The serving layer's streaming-ingestion path ([POST /observe])
    wants timestamped votes with distance labels; this module packages
    a {!Cascade.simulate_traced} run over a {!Digg} corpus into
    exactly that — time-ordered events plus the observation grid and
    per-distance populations the receiving side needs to build its
    incremental density profile.  The [dlosn replay] CLI driver and
    the live bench both stream from here. *)

type event = {
  voter : int;
  time : float;  (** hours since submission *)
  distance : int;
      (** friendship-hop distance of the voter from the initiator;
          [-1] when unreachable in the influence graph *)
  channel : Cascade.channel;
}

type stream = {
  story : Types.story;  (** the simulated cascade (time-sorted votes) *)
  events : event array;  (** one per vote, time-ascending *)
  assignment : int array;  (** per-user hop labels over the whole graph *)
  max_distance : int;
  times : float array;  (** observation grid, [1 .. horizon] hours *)
  population : int array;
      (** users at each hop distance [1 .. max_distance] — the density
          denominators, as {!Density.observe} counts them *)
}

val default_params : Cascade.params
(** Cascade settings tuned for a replay session: immediate promotion,
    a burst-then-decay front page and an 8-hour horizon, so densities
    move visibly across the default [1..6] observation grid. *)

val simulate :
  ?scale:Digg.scale ->
  ?params:Cascade.params ->
  ?max_distance:int ->
  ?times:float array ->
  seed:int ->
  unit ->
  stream
(** Build a {!Digg} corpus (default {!Digg.small}), re-run a fresh
    cascade from the corpus's s1 initiator on its topic, and label
    every vote with its hop distance.  Deterministic in [seed].
    Defaults: [max_distance = 6], [times = 1..6].
    @raise Invalid_argument when [times] is empty or not ascending. *)

val batch_density : stream -> Density.t
(** The batch observation an offline pipeline would compute from the
    full stream ({!Density.observe} over every vote) — the reference
    the live profile must converge to. *)
