open Osn_graph

let friendship_hops ds ~story =
  let init = story.Types.initiator in
  let dist = Traversal.bfs_distances (Dataset.influence ds) init in
  Array.mapi (fun u d -> if u = init || d <= 0 then -1 else d) dist

(* Intersection/union sizes of two sorted int arrays, skipping
   [exclude]. *)
let jaccard_distance ~exclude a b =
  let na = Array.length a and nb = Array.length b in
  let inter = ref 0 and union = ref 0 in
  let i = ref 0 and j = ref 0 in
  let bump x =
    if x <> exclude then incr union
  in
  while !i < na && !j < nb do
    let va = a.(!i) and vb = b.(!j) in
    if va = vb then begin
      if va <> exclude then begin
        incr inter;
        incr union
      end;
      incr i;
      incr j
    end
    else if va < vb then begin
      bump va;
      incr i
    end
    else begin
      bump vb;
      incr j
    end
  done;
  while !i < na do
    bump a.(!i);
    incr i
  done;
  while !j < nb do
    bump b.(!j);
    incr j
  done;
  if !union = 0 then 1.
  else 1. -. (float_of_int !inter /. float_of_int !union)

let shared_interest ds ~exclude a b =
  jaccard_distance ~exclude (Dataset.stories_voted_by ds a)
    (Dataset.stories_voted_by ds b)

type grouping = Equal_width | Quantile

let interest_groups ?(n_groups = 5) ?(grouping = Equal_width) ds ~story =
  if n_groups < 1 then invalid_arg "Distance.interest_groups: n_groups >= 1";
  let n = Dataset.n_users ds in
  let init = story.Types.initiator in
  let exclude = story.Types.id in
  (* Users with no measurable vote history (beyond the story under
     study) are outside the metric's universe, like non-voters in the
     paper's crawl of voters: exclude them rather than piling them all
     into the farthest group. *)
  let measurable u =
    let voted = Dataset.stories_voted_by ds u in
    Array.exists (fun id -> id <> exclude) voted
  in
  let d =
    Array.init n (fun u ->
        if u = init || not (measurable u) then nan
        else shared_interest ds ~exclude init u)
  in
  let observed = Array.of_seq (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq d)) in
  let group_of =
    match grouping with
    | Equal_width ->
      let lo = Numerics.Stats.min observed and hi = Numerics.Stats.max observed in
      let width = if hi > lo then (hi -. lo) /. float_of_int n_groups else 1. in
      fun x ->
        let g = int_of_float ((x -. lo) /. width) in
        1 + Stdlib.max 0 (Stdlib.min (n_groups - 1) g)
    | Quantile ->
      let cuts =
        Array.init (n_groups - 1) (fun k ->
            Numerics.Stats.quantile observed
              (float_of_int (k + 1) /. float_of_int n_groups))
      in
      fun x ->
        let rec scan k = if k >= n_groups - 1 || x <= cuts.(k) then k + 1 else scan (k + 1) in
        scan 0
  in
  Array.map (fun x -> if Float.is_nan x then -1 else group_of x) d
