(** Corpus-level descriptive statistics.

    The measurement-paper-style characterisation table: users, edges,
    votes, degree and activity distributions, story-size distribution,
    reciprocity and clustering — the numbers used to argue a synthetic
    corpus is Digg-shaped (cf. DESIGN.md's substitution table). *)

type t = {
  n_users : int;
  n_follow_edges : int;
  n_stories : int;
  n_votes : int;
  mean_followers : float;
  max_followers : int;
  reciprocity : float;
  clustering : float;          (** sampled local clustering coefficient *)
  in_degree_power_law : float; (** log-log slope of the follower-count histogram *)
  votes_per_user : Numerics.Stats.summary;
  votes_per_story : Numerics.Stats.summary;
  fraction_users_voting : float;
}

val compute : ?seed:int -> Dataset.t -> t
(** [seed] feeds the sampled metrics (clustering); default 42. *)

val pp : Format.formatter -> t -> unit
