open Osn_graph

type t = {
  n_users : int;
  n_follow_edges : int;
  n_stories : int;
  n_votes : int;
  mean_followers : float;
  max_followers : int;
  reciprocity : float;
  clustering : float;
  in_degree_power_law : float;
  votes_per_user : Numerics.Stats.summary;
  votes_per_story : Numerics.Stats.summary;
  fraction_users_voting : float;
}

let compute ?(seed = 42) ds =
  let g = Dataset.follows ds in
  let n = Dataset.n_users ds in
  let rng = Numerics.Rng.create seed in
  let max_followers = ref 0 in
  for v = 0 to n - 1 do
    max_followers := Stdlib.max !max_followers (Digraph.in_degree g v)
  done;
  let votes_per_user =
    Array.init n (fun u ->
        float_of_int (Array.length (Dataset.stories_voted_by ds u)))
  in
  let voting_users =
    Array.fold_left (fun acc c -> if c > 0. then acc + 1 else acc) 0 votes_per_user
  in
  let votes_per_story =
    Array.map
      (fun s -> float_of_int (Types.story_vote_count s))
      (Dataset.stories ds)
  in
  {
    n_users = n;
    n_follow_edges = Digraph.n_edges g;
    n_stories = Dataset.n_stories ds;
    n_votes = Dataset.total_votes ds;
    mean_followers = Metrics.mean_degree g;
    max_followers = !max_followers;
    reciprocity = Metrics.reciprocity g;
    clustering = Metrics.clustering_coefficient ~samples:1000 rng g;
    in_degree_power_law =
      Metrics.power_law_exponent (Metrics.degree_histogram `In g);
    votes_per_user = Numerics.Stats.summarize votes_per_user;
    votes_per_story = Numerics.Stats.summarize votes_per_story;
    fraction_users_voting = float_of_int voting_users /. float_of_int n;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>users: %d;  follow edges: %d;  stories: %d;  votes: %d@,\
     followers/user: mean %.2f, max %d;  reciprocity: %.3f;  clustering: %.3f@,\
     follower-count power-law slope: %.2f@,\
     votes per user:  %a@,\
     votes per story: %a@,\
     fraction of users who voted at least once: %.3f@]"
    s.n_users s.n_follow_edges s.n_stories s.n_votes s.mean_followers
    s.max_followers s.reciprocity s.clustering s.in_degree_power_law
    Numerics.Stats.pp_summary s.votes_per_user Numerics.Stats.pp_summary
    s.votes_per_story s.fraction_users_voting
