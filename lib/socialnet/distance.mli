(** The paper's two distance metrics (Section II.A).

    Both produce, for a given story, an integer distance label per user
    (or [-1] for users excluded from the measurement).  The labels are
    what the density observations ({!Density}) are grouped by. *)

val friendship_hops : Dataset.t -> story:Types.story -> int array
(** BFS hop count from the story's initiator along influence edges
    (followee to follower): direct followers are at hop 1.  Unreachable
    users and the initiator itself get [-1]. *)

val shared_interest : Dataset.t -> exclude:int -> int -> int -> float
(** [shared_interest ds ~exclude a b] is the paper's Eq. 1 distance
    [1 - |Ca ∩ Cb| / |Ca ∪ Cb|] over voted-story sets, with story id
    [exclude] removed from both sides first (so the story under study
    does not correlate with itself; pass [-1] to keep everything).
    Two users with no votes at all are at distance [1.]. *)

type grouping = Equal_width | Quantile

val interest_groups :
  ?n_groups:int -> ?grouping:grouping -> Dataset.t -> story:Types.story ->
  int array
(** Distance label per user: the shared-interest distance from the
    story's initiator, quantised into [n_groups] (default 5) groups
    labelled [1] (closest) to [n_groups] (farthest), like the paper's
    "five disjoint groups based on their interest ranges".
    [Equal_width] (default) splits the observed distance range evenly;
    [Quantile] balances group populations.  The initiator gets [-1]. *)
