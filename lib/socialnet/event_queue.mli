(** Binary min-heap priority queue keyed by float time.

    Drives the event loop of the cascade simulator.  Payloads are
    polymorphic; ties in time pop in unspecified order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val peek_time : 'a t -> float option
