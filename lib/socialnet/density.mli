(** Observed densities of influenced users — the paper's I(x, t).

    Given a story, a per-user distance assignment (from {!Distance})
    and a set of observation times, computes the percentage of users at
    each distance who have voted by each time:
    [I(x, t) = 100 * |influenced in U_x by t| / |U_x|]. *)

type t = {
  distances : int array;  (** distance labels, ascending (e.g. 1..5) *)
  times : float array;    (** observation times, hours *)
  density : float array array;
      (** [density.(ix).(it)] in percent, [ix] indexing [distances] *)
  population : int array; (** group sizes |U_x| *)
}

val observe :
  Types.story -> assignment:int array -> max_distance:int ->
  times:float array -> t
(** Users with labels outside [1 .. max_distance] (including the [-1]
    exclusions) are dropped.  Groups with zero population report
    density [0.]. *)

val distance_distribution :
  assignment:int array -> max_distance:int -> (int * float) array
(** [(distance, fraction-of-labelled-users)] — the paper's Fig. 2
    histogram. *)

val at : t -> distance:int -> time:float -> float
(** Density at an exact recorded (distance, time) pair.
    @raise Not_found if either coordinate was not recorded. *)

val series_at_distance : t -> distance:int -> float array
(** Time series [I(x, ·)] for one distance.  @raise Not_found. *)

val profile_at_time : t -> time:float -> float array
(** Spatial profile [I(·, t)] at one recorded time.  @raise Not_found. *)

val pp : Format.formatter -> t -> unit
(** Fixed-width table, distances as rows. *)
