type event = {
  voter : int;
  time : float;
  distance : int;
  channel : Cascade.channel;
}

type stream = {
  story : Types.story;
  events : event array;
  assignment : int array;
  max_distance : int;
  times : float array;
  population : int array;
}

let default_params =
  {
    Cascade.p_follow = 0.3;
    initiator_boost = 2.0;
    follow_delay_mean = 0.6;
    promote_threshold = 1;
    front_page_rate = 60.;
    front_page_decay = 0.25;
    front_page_burst = 0.2;
    duration = 8.;
    max_votes = 3000;
  }

let default_times = [| 1.; 2.; 3.; 4.; 5.; 6. |]

let simulate ?(scale = Digg.small) ?(params = default_params)
    ?(max_distance = 6) ?(times = default_times) ~seed () =
  if Array.length times = 0 then invalid_arg "Replay.simulate: empty times";
  for i = 1 to Array.length times - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Replay.simulate: times must be ascending"
  done;
  let corpus = Digg.build ~scale ~seed () in
  let ds = corpus.Digg.dataset in
  (* replay the corpus's s1 setting as a fresh cascade: same initiator
     and topic, new rng stream, so the traffic is new but plays out on
     the calibrated graph *)
  let s1 = Dataset.story ds corpus.Digg.rep_ids.(0) in
  let initiator = s1.Types.initiator in
  let topic = s1.Types.topic in
  let rng = Numerics.Rng.create (seed + 0x5eed) in
  let story, channels =
    Cascade.simulate_traced rng ~influence:(Dataset.influence ds)
      ~affinity:(Digg.affinity corpus ~topic)
      ~params ~initiator
      ~story_id:(Dataset.n_stories ds)
      ~topic ()
  in
  let assignment = Distance.friendship_hops ds ~story in
  let population = Array.make max_distance 0 in
  Array.iter
    (fun x ->
      if x >= 1 && x <= max_distance then
        population.(x - 1) <- population.(x - 1) + 1)
    assignment;
  let events =
    Array.mapi
      (fun i (v : Types.vote) ->
        let distance =
          if v.Types.user < Array.length assignment then
            assignment.(v.Types.user)
          else -1
        in
        { voter = v.Types.user; time = v.Types.time; distance;
          channel = channels.(i) })
      story.Types.votes
  in
  {
    story;
    events;
    assignment;
    max_distance;
    times = Array.copy times;
    population;
  }

let batch_density s =
  Density.observe s.story ~assignment:s.assignment
    ~max_distance:s.max_distance ~times:s.times
