open Numerics
open Osn_graph

type corpus = {
  dataset : Dataset.t;
  rep_ids : int array;
  n_topics : int;
}

let n_topics = 8

(* Twitter-flavoured follower graph: preferential attachment with heavy
   hubs ("celebrities"), low reciprocity, no community structure to
   speak of (interest homophily on Twitter is weaker than on topical
   news sites). *)
let make_graph rng n =
  Generators.barabasi_albert rng ~n ~m:4 ~reciprocity:0.1 ()

let make_prefs rng n =
  Array.init n (fun _ -> Rng.dirichlet rng (Array.make n_topics 0.5))

let build ?(n_users = 20_000) ?(n_background = 300) ~seed () =
  let rng = Rng.create seed in
  let follows = make_graph rng n_users in
  let influence = Digraph.reverse follows in
  let prefs = make_prefs rng n_users in
  let activity =
    Array.init n_users (fun _ ->
        Float.min 8. (Rng.pareto rng ~alpha:2. ~x_min:0.5))
  in
  let affinity topic u =
    Float.min 1.0 (3.0 *. activity.(u) *. prefs.(u).(topic))
  in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Background tweets: follower-channel cascades with a faint search
     channel, just enough to give users vote histories. *)
  let background =
    Array.init n_background (fun _ ->
        let initiator = Rng.int rng n_users in
        let topic = Rng.weighted_index rng prefs.(initiator) in
        let params =
          {
            Cascade.default with
            p_follow = 0.35;
            initiator_boost = 2.0;
            follow_delay_mean = 0.3;
            promote_threshold = 1;
            front_page_rate = 3.;
            front_page_decay = 0.3;
            duration = 50.;
            max_votes = 4_000;
          }
        in
        Cascade.simulate rng ~influence ~affinity:(affinity topic) ~params
          ~initiator ~story_id:(fresh_id ()) ~topic ())
  in
  (* Representative tweets: initiators with decreasing follower counts
     (a celebrity, two mid-tier accounts, a regular user). *)
  let ranking = Centrality.in_degree_ranking follows in
  let rep_ranks = [| 0; 12; 60; 400 |] in
  let rep =
    Array.map
      (fun rank ->
        let initiator = ranking.(Stdlib.min rank (n_users - 1)) in
        let topic = Rng.weighted_index rng prefs.(initiator) in
        let params =
          {
            Cascade.default with
            p_follow = 0.4;
            initiator_boost = 2.5;
            follow_delay_mean = 0.3;
            promote_threshold = 1;
            front_page_rate = 5.;
            front_page_decay = 0.3;
            duration = 50.;
            max_votes = n_users / 3;
          }
        in
        Cascade.simulate rng ~influence ~affinity:(affinity topic) ~params
          ~initiator ~story_id:(fresh_id ()) ~topic ())
      rep_ranks
  in
  let stories = Array.append background rep in
  let dataset = Dataset.make ~follows ~stories in
  {
    dataset;
    rep_ids = Array.map (fun (s : Types.story) -> s.Types.id) rep;
    n_topics;
  }
