(** Synthetic Digg-June-2009 corpus builder.

    Builds a dataset shaped like the crawl the paper uses: a
    heavy-tailed directed follower graph, topic communities with
    homophilous following, thousands of background stories (which give
    users the vote histories that the shared-interest metric needs) and
    four calibrated {e representative stories} mirroring the paper's
    s1 (24,099 votes), s2 (8,521), s3 (5,988) and s4 (1,618):

    - s1: a broadly appealing (mainstream-topic) story submitted by an
      initiator in a niche community — after promotion the front-page
      channel reaches the mainstream masses at hop >= 3, reproducing
      the paper's observation that s1's hop-3 density exceeds hop-2;
    - s2, s3: popular stories by well-followed initiators on their own
      community's topic;
    - s4: a small cascade that stays mostly in the follower channel,
      where density decreases monotonically with hop distance.

    Everything is deterministic in [seed]. *)

type scale = {
  n_users : int;
  n_background : int;  (** background stories for vote histories *)
  vote_factor : float;
      (** multiplies the four representative vote targets; 1.0 at the
          paper's scale *)
}

val small : scale
(** ~2k users — unit tests. *)

val medium : scale
(** ~20k users — examples and benches (default). *)

val full : scale
(** 139,409 users, 3,553 stories — the paper's reported scale. *)

type corpus = {
  dataset : Dataset.t;
  rep_ids : int array;
      (** story ids of s1..s4 within the dataset, in that order *)
  community : int array;   (** community of each user *)
  prefs : float array array;  (** per-user topic-preference vectors *)
  activity : float array;
      (** heavy-tailed per-user engagement multiplier (mean ~1); makes
          vote histories heavy-tailed, which in turn makes the
          shared-interest distance informative, as in real Digg *)
  n_topics : int;
}

val n_topics : int
(** Number of topics/communities (topic 0 is "mainstream"). *)

val affinity : corpus -> topic:int -> int -> float
(** [affinity corpus ~topic u] is the probability-scale interest of
    user [u] in [topic] (used by the cascade simulator). *)

val build : ?scale:scale -> seed:int -> unit -> corpus
