open Numerics
open Osn_graph

type params = {
  p_follow : float;
  initiator_boost : float;
  follow_delay_mean : float;
  promote_threshold : int;
  front_page_rate : float;
  front_page_decay : float;
  front_page_burst : float;
  duration : float;
  max_votes : int;
}

let default =
  {
    p_follow = 0.25;
    initiator_boost = 1.0;
    follow_delay_mean = 2.0;
    promote_threshold = 30;
    front_page_rate = 15.;
    front_page_decay = 0.15;
    front_page_burst = 0.;
    duration = 50.;
    max_votes = max_int;
  }

type event = Vote of int | Arrival

(* Schedule the whole decaying Poisson arrival stream at promotion
   time.  Hour h after promotion carries
   Poisson(rate/decay * (e^{-decay h} - e^{-decay (h+1)})) arrivals at
   uniform times within the hour.  The arriving user is drawn at
   processing time (affinity-weighted rejection), so an arrival can
   also "miss" — that keeps the realised volume proportional to the
   story's breadth of appeal. *)
let schedule_front_page rng queue p t_promoted =
  if p.front_page_rate > 0. then begin
    let horizon = p.duration -. t_promoted in
    let hours = int_of_float (ceil horizon) in
    let tail_scale = 1. -. p.front_page_burst in
    (* top-of-front-page spike: a burst of arrivals in the first hour *)
    let total_mass =
      if p.front_page_decay <= 0. then p.front_page_rate *. horizon
      else p.front_page_rate /. p.front_page_decay
    in
    let burst = Rng.poisson rng (Float.max 1e-9 (p.front_page_burst *. total_mass)) in
    for _ = 1 to burst do
      let t = t_promoted +. Rng.float rng in
      if t <= p.duration then Event_queue.push queue t Arrival
    done;
    for h = 0 to hours - 1 do
      let expected =
        tail_scale
        *.
        if p.front_page_decay <= 0. then p.front_page_rate
        else
          p.front_page_rate /. p.front_page_decay
          *. (exp (-.p.front_page_decay *. float_of_int h)
              -. exp (-.p.front_page_decay *. float_of_int (h + 1)))
      in
      if expected > 1e-9 then begin
        let count = Rng.poisson rng (Float.max 1e-9 expected) in
        for _ = 1 to count do
          let t = t_promoted +. float_of_int h +. Rng.float rng in
          if t <= p.duration then Event_queue.push queue t Arrival
        done
      end
    done
  end

type channel = Seed | Follower | Front_page

let simulate_traced rng ~influence ~affinity ?(visibility = fun _ -> 1.)
    ~params:p ~initiator ~story_id ~topic () =
  let n = Digraph.n_nodes influence in
  assert (initiator >= 0 && initiator < n);
  let voted = Bytes.make n '\000' in
  let scheduled = Bytes.make n '\000' in
  let has_voted u = Bytes.get voted u <> '\000' in
  let queue : event Event_queue.t = Event_queue.create () in
  let votes = ref [] and channels = ref [] and n_votes = ref 0 in
  let promoted = ref false in
  let expose t u =
    (* u just voted at time t: give each follower an exposure trial *)
    let boost = if u = initiator then p.initiator_boost else 1. in
    Digraph.iter_out influence u (fun f ->
        if (not (has_voted f)) && Bytes.get scheduled f = '\000' then
          let prob =
            Float.min 1. (boost *. p.p_follow *. affinity f *. visibility f)
          in
          if Rng.bernoulli rng prob then begin
            Bytes.set scheduled f '\001';
            let delay = Rng.exponential rng (1. /. p.follow_delay_mean) in
            let t' = t +. delay in
            if t' <= p.duration then Event_queue.push queue t' (Vote f)
          end)
  in
  let record_vote t u channel =
    Bytes.set voted u '\001';
    votes := { Types.user = u; time = t } :: !votes;
    channels := channel :: !channels;
    incr n_votes;
    if (not !promoted) && !n_votes >= p.promote_threshold then begin
      promoted := true;
      schedule_front_page rng queue p t
    end;
    expose t u
  in
  record_vote 0. initiator Seed;
  let stop = ref false in
  while not !stop do
    if !n_votes >= p.max_votes then stop := true
    else
      match Event_queue.pop queue with
      | None -> stop := true
      | Some (t, Vote u) -> if not (has_voted u) then record_vote t u Follower
      | Some (t, Arrival) ->
        (* affinity-weighted rejection pick of a fresh voter *)
        let rec try_pick attempts =
          if attempts >= 20 then ()
          else begin
            let u = Rng.int rng n in
            let accept = Float.min 1. (affinity u *. visibility u) in
            if (not (has_voted u)) && Rng.bernoulli rng accept then
              record_vote t u Front_page
            else try_pick (attempts + 1)
          end
        in
        try_pick 0
  done;
  let votes = Array.of_list (List.rev !votes) in
  let channels = Array.of_list (List.rev !channels) in
  (* max_votes can truncate mid-queue; votes are already time-sorted
     because the event loop pops in time order. *)
  ({ Types.id = story_id; initiator; topic; votes }, channels)

let simulate rng ~influence ~affinity ?visibility ~params ~initiator ~story_id
    ~topic () =
  fst
    (simulate_traced rng ~influence ~affinity ?visibility ~params ~initiator
       ~story_id ~topic ())
