open Osn_graph

type id_maps = {
  user_of_raw : (int, int) Hashtbl.t;
  story_of_raw : (int, int) Hashtbl.t;
}

(* Fields may be bare integers or wrapped in double quotes. *)
let parse_int_field s =
  let s = String.trim s in
  let s =
    let n = String.length s in
    if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
    else s
  in
  int_of_string_opt s

let split_csv line = String.split_on_char ',' line

let parse_vote_line line =
  match split_csv line with
  | [ a; b; c ] -> (
    match (parse_int_field a, parse_int_field b, parse_int_field c) with
    | Some ts, Some voter, Some story -> Some (float_of_int ts, voter, story)
    | _ -> None)
  | _ -> None

let parse_friend_line line =
  match split_csv line with
  | [ a; b; c; d ] -> (
    match
      (parse_int_field a, parse_int_field b, parse_int_field c, parse_int_field d)
    with
    | Some mutual, Some ts, Some user, Some friend ->
      Some (mutual <> 0, float_of_int ts, user, friend)
    | _ -> None)
  | _ -> None

let fold_lines path f init =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc lineno =
        match input_line ic with
        | line -> go (f acc lineno line) (lineno + 1)
        | exception End_of_file -> acc
      in
      go init 1)

let load ?(min_votes = 2) ~votes ~friends () =
  let user_of_raw = Hashtbl.create 4096 in
  let story_of_raw = Hashtbl.create 4096 in
  let intern table raw =
    match Hashtbl.find_opt table raw with
    | Some id -> id
    | None ->
      let id = Hashtbl.length table in
      Hashtbl.add table raw id;
      id
  in
  (* pass 1: votes, bucketed per story *)
  let story_votes : (int, (float * int) list ref) Hashtbl.t =
    Hashtbl.create 4096
  in
  let () =
    fold_lines votes
      (fun () lineno line ->
        if String.trim line = "" then ()
        else
          match parse_vote_line line with
          | Some (ts, raw_voter, raw_story) ->
            let voter = intern user_of_raw raw_voter in
            let story = intern story_of_raw raw_story in
            let bucket =
              match Hashtbl.find_opt story_votes story with
              | Some b -> b
              | None ->
                let b = ref [] in
                Hashtbl.add story_votes story b;
                b
            in
            bucket := (ts, voter) :: !bucket
          | None ->
            (* tolerate a header on the first line only *)
            if lineno > 1 then
              failwith
                (Printf.sprintf "digg_votes: malformed row at line %d" lineno))
      ()
  in
  (* pass 2: friendships (edge user -> friend means user follows friend) *)
  let edges = ref [] in
  let () =
    fold_lines friends
      (fun () lineno line ->
        if String.trim line = "" then ()
        else
          match parse_friend_line line with
          | Some (mutual, _ts, raw_user, raw_friend) ->
            let u = intern user_of_raw raw_user in
            let v = intern user_of_raw raw_friend in
            edges := (u, v) :: !edges;
            if mutual then edges := (v, u) :: !edges
          | None ->
            if lineno > 1 then
              failwith
                (Printf.sprintf "digg_friends: malformed row at line %d" lineno))
      ()
  in
  let n_users = Hashtbl.length user_of_raw in
  let follows = Digraph.create n_users in
  List.iter (fun (u, v) -> Digraph.add_edge follows u v) !edges;
  (* assemble stories: sort votes, dedupe voters (first vote wins),
     re-base times to hours since the first vote *)
  let stories = ref [] in
  Hashtbl.iter
    (fun story_id bucket ->
      let votes = Array.of_list !bucket in
      Array.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) votes;
      let seen = Hashtbl.create (Array.length votes) in
      let deduped =
        Array.to_list votes
        |> List.filter (fun (_, voter) ->
               if Hashtbl.mem seen voter then false
               else begin
                 Hashtbl.add seen voter ();
                 true
               end)
      in
      match deduped with
      | [] -> ()
      | (t0, initiator) :: _ when List.length deduped >= min_votes ->
        let votes =
          Array.of_list
            (List.map
               (fun (ts, voter) ->
                 { Types.user = voter; time = (ts -. t0) /. 3600. })
               deduped)
        in
        stories :=
          { Types.id = story_id; initiator; topic = 0; votes } :: !stories
      | _ -> ())
    story_votes;
  let stories =
    List.sort (fun (a : Types.story) b -> compare a.Types.id b.Types.id) !stories
  in
  let dataset = Dataset.make ~follows ~stories:(Array.of_list stories) in
  (dataset, { user_of_raw; story_of_raw })
