(** Loader for the original Digg 2009 dataset format.

    The crawl the paper uses (Lerman's "Digg 2009" release) shipped as
    two CSV files:

    - [digg_votes.csv] — rows ["timestamp","voter_id","story_id"]
      (unix seconds; ids are anonymised integers);
    - [digg_friends.csv] — rows
      ["mutual","timestamp","user_id","friend_id"], where [user_id]
      follows [friend_id] and [mutual = 1] marks a reciprocated link.

    The files are no longer publicly distributed, which is why this
    repository ships a synthetic substitute ({!Digg}); but if you hold
    a copy, this loader turns it into a {!Dataset.t} and the entire
    pipeline runs on the paper's actual data.

    Ids are compacted to dense 0-based user/story indices.  Vote
    timestamps are converted to hours since each story's first vote,
    and the first voter is taken as the story's initiator (exactly the
    paper's convention).  Stories with fewer than [min_votes] votes are
    dropped.  Topics are not part of the release; all stories get topic
    0. *)

type id_maps = {
  user_of_raw : (int, int) Hashtbl.t;   (** raw id -> dense id *)
  story_of_raw : (int, int) Hashtbl.t;
}

val load :
  ?min_votes:int -> votes:string -> friends:string -> unit ->
  Dataset.t * id_maps
(** [load ~votes ~friends ()] parses both CSVs (default
    [min_votes = 2]).  Quoted and unquoted integer fields are accepted;
    malformed rows raise [Failure] with the offending line number. *)

val parse_vote_line : string -> (float * int * int) option
(** [Some (timestamp, voter, story)] for a data row, [None] for a
    header/blank line (exposed for tests). *)

val parse_friend_line : string -> (bool * float * int * int) option
(** [Some (mutual, timestamp, user, friend)] (exposed for tests). *)
