(** An immutable social-news dataset: a follower graph plus a corpus of
    voted stories, mirroring the structure of the Digg-2009 crawl the
    paper uses (follower links, per-story vote streams with
    timestamps).

    Graph orientation: an edge [u -> v] in [follows] means "[u] follows
    [v]".  Information travels the other way, so the {e influence}
    graph (edge [v -> u]) is what BFS hop distances are measured on —
    the initiator's direct followers are at hop 1, exactly as in the
    paper. *)

type t

val make : follows:Osn_graph.Digraph.t -> stories:Types.story array -> t
(** Validates every story (see {!Types.check_story}) and that all voter
    ids fit the graph.  Builds the influence graph and the per-user
    vote index eagerly. *)

val n_users : t -> int
val n_stories : t -> int

val follows : t -> Osn_graph.Digraph.t
val influence : t -> Osn_graph.Digraph.t
(** Reverse of [follows]: edges point from followee to follower. *)

val story : t -> int -> Types.story
(** [story t i] for [i] in [0 .. n_stories-1]. *)

val stories : t -> Types.story array

val stories_voted_by : t -> int -> int array
(** Ascending story ids the user voted on — the set [C_a] of the
    paper's shared-interest metric (Eq. 1). *)

val total_votes : t -> int

val save_tsv : t -> string -> unit
(** Serialise to a plain-text format (see the implementation header
    for the grammar). *)

val load_tsv : string -> t
(** Inverse of [save_tsv].  @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
