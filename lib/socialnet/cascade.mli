(** Agent-based information-cascade simulator.

    This is the data-generating substitute for the (unavailable) Digg
    2009 crawl.  It implements exactly the two propagation channels the
    paper describes for Digg (Section III.A):

    + {b follower channel} — when a user votes, each of their followers
      is exposed and may vote after a random delay ("a user can see the
      news submitted by the friends he follows and vote the news");
    + {b front-page channel} — once the story accumulates
      [promote_threshold] votes it is "promoted"; from then on users
      unrelated to the voters arrive by a Poisson process whose rate
      decays as the story ages ("once the news is promoted to the front
      page ... users who do not friend with the initiator ... will also
      be able to view and vote"), which is the random-walk diffusion
      the DL model's [d (d2 I / d x2)] term abstracts.

    Whether an exposed or arriving user actually votes is modulated by
    a per-user [affinity] in [0, 1] (topic interest), which is what
    makes the shared-interest distance metric informative.

    The simulator is purely mechanistic — there is no PDE anywhere in
    it — so fitting the DL model to its output is a genuine test. *)

type params = {
  p_follow : float;
      (** per-exposure probability scale that a follower votes
          (multiplied by the follower's affinity and visibility) *)
  initiator_boost : float;
      (** multiplier on exposures coming directly from the initiator —
          a submission is more prominent in followers' feeds than a
          mere vote *)
  follow_delay_mean : float;  (** mean exposure-to-vote delay, hours *)
  promote_threshold : int;    (** votes needed to reach the front page *)
  front_page_rate : float;    (** arrivals/hour right after promotion *)
  front_page_decay : float;   (** exponential decay of the arrival rate, 1/h *)
  front_page_burst : float;
      (** fraction of the total front-page arrival mass that lands
          within the first hour after promotion (the top-of-front-page
          spike); the remainder follows the decaying-rate stream *)
  duration : float;           (** simulation horizon, hours *)
  max_votes : int;            (** hard safety cap *)
}

val default : params
(** Mild settings suitable for background stories. *)

type channel =
  | Seed        (** the initiator's own vote *)
  | Follower    (** exposure through a followed user's vote *)
  | Front_page  (** random arrival after promotion *)

val simulate_traced :
  Numerics.Rng.t ->
  influence:Osn_graph.Digraph.t ->
  affinity:(int -> float) ->
  ?visibility:(int -> float) ->
  params:params ->
  initiator:int ->
  story_id:int ->
  topic:int ->
  unit ->
  Types.story * channel array
(** Like {!simulate}, additionally returning which channel produced
    each vote ([channels.(i)] belongs to [votes.(i)]).  Used to
    decompose the paper's two propagation processes empirically. *)

val simulate :
  Numerics.Rng.t ->
  influence:Osn_graph.Digraph.t ->
  affinity:(int -> float) ->
  ?visibility:(int -> float) ->
  params:params ->
  initiator:int ->
  story_id:int ->
  topic:int ->
  unit ->
  Types.story
(** Runs one cascade and returns the story with its time-sorted votes.
    [influence] must have edges followee -> follower.  [visibility]
    (default [fun _ -> 1.]) further modulates both exposure and
    front-page acceptance per user; the Digg builder uses it to make
    users who share interests with the initiator more likely to
    encounter the story (shared interests imply shared channels, the
    paper's own reading of the metric).  Deterministic given the
    [Rng.t] state. *)
