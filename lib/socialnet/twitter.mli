(** Synthetic Twitter-like corpus — the paper's future-work target.

    The paper closes by proposing to test the DL model "on other social
    networks such as Facebook and Twitter".  This builder produces a
    network with Twitter's salient differences from Digg:

    - follows are far less reciprocal (~10 % vs Digg's ~20-30 %);
    - there is no front page: propagation is almost entirely along the
      follower graph (retweets), with only a weak search/hashtag
      channel;
    - cascades therefore hug the graph — density decays sharply with
      hop distance and the paper's s1 anomaly (hop 3 > hop 2) should
      {e not} appear.

    The bench's future-work section runs the DL pipeline on this corpus
    to check that the model transfers. *)

type corpus = {
  dataset : Dataset.t;
  rep_ids : int array;  (** four representative tweets, most viral first *)
  n_topics : int;
}

val build : ?n_users:int -> ?n_background:int -> seed:int -> unit -> corpus
(** Defaults: 20,000 users, 300 background tweets. *)
