let votes_per_hour (s : Types.story) ~duration =
  if duration <= 0. then invalid_arg "Temporal.votes_per_hour: duration > 0";
  let buckets = int_of_float (ceil duration) in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun (v : Types.vote) ->
      if v.Types.time < duration then begin
        let b = Stdlib.min (buckets - 1) (int_of_float v.Types.time) in
        counts.(b) <- counts.(b) + 1
      end)
    s.Types.votes;
  counts

let time_to_fraction (s : Types.story) ~fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Temporal.time_to_fraction: fraction in (0, 1]";
  let total = Array.length s.Types.votes in
  let needed = int_of_float (ceil (fraction *. float_of_int total)) in
  let needed = Stdlib.max 1 needed in
  s.Types.votes.(needed - 1).Types.time

let saturation_time ?(tolerance = 0.02) (s : Types.story) =
  time_to_fraction s ~fraction:(1. -. tolerance)

let peak_hour s ~duration =
  let counts = votes_per_hour s ~duration in
  let best = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
  !best

type inter_arrival = { mean : float; median : float; max : float }

let inter_arrival_stats (s : Types.story) =
  let n = Array.length s.Types.votes in
  if n < 2 then invalid_arg "Temporal.inter_arrival_stats: need >= 2 votes";
  let gaps =
    Array.init (n - 1) (fun i ->
        s.Types.votes.(i + 1).Types.time -. s.Types.votes.(i).Types.time)
  in
  {
    mean = Numerics.Stats.mean gaps;
    median = Numerics.Stats.median gaps;
    max = Numerics.Stats.max gaps;
  }

let spread_speed_rank stories =
  let ranked =
    Array.map
      (fun (s : Types.story) ->
        (s.Types.id, time_to_fraction s ~fraction:0.5))
      stories
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) ranked;
  ranked
