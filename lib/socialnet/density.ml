type t = {
  distances : int array;
  times : float array;
  density : float array array;
  population : int array;
}

let observe story ~assignment ~max_distance ~times =
  if max_distance < 1 then invalid_arg "Density.observe: max_distance >= 1";
  let population = Array.make max_distance 0 in
  Array.iter
    (fun x -> if x >= 1 && x <= max_distance then population.(x - 1) <- population.(x - 1) + 1)
    assignment;
  let nt = Array.length times in
  let counts = Array.make_matrix max_distance nt 0 in
  Array.iter
    (fun (v : Types.vote) ->
      let x = if v.Types.user < Array.length assignment then assignment.(v.Types.user) else -1 in
      if x >= 1 && x <= max_distance then
        Array.iteri
          (fun it t -> if v.Types.time <= t then counts.(x - 1).(it) <- counts.(x - 1).(it) + 1)
          times)
    story.Types.votes;
  let density =
    Array.init max_distance (fun ix ->
        Array.init nt (fun it ->
            if population.(ix) = 0 then 0.
            else
              100. *. float_of_int counts.(ix).(it) /. float_of_int population.(ix)))
  in
  {
    distances = Array.init max_distance (fun i -> i + 1);
    times = Array.copy times;
    density;
    population;
  }

let distance_distribution ~assignment ~max_distance =
  let counts = Array.make max_distance 0 in
  let total = ref 0 in
  Array.iter
    (fun x ->
      if x >= 1 then begin
        incr total;
        if x <= max_distance then counts.(x - 1) <- counts.(x - 1) + 1
      end)
    assignment;
  Array.init max_distance (fun i ->
      ( i + 1,
        if !total = 0 then 0.
        else float_of_int counts.(i) /. float_of_int !total ))

let index_of arr v ~eq =
  let found = ref (-1) in
  Array.iteri (fun i x -> if !found < 0 && eq x v then found := i) arr;
  if !found < 0 then raise Not_found else !found

let at t ~distance ~time =
  let ix = index_of t.distances distance ~eq:( = ) in
  let it = index_of t.times time ~eq:(fun a b -> Float.abs (a -. b) < 1e-9) in
  t.density.(ix).(it)

let series_at_distance t ~distance =
  let ix = index_of t.distances distance ~eq:( = ) in
  Array.copy t.density.(ix)

let profile_at_time t ~time =
  let it = index_of t.times time ~eq:(fun a b -> Float.abs (a -. b) < 1e-9) in
  Array.map (fun row -> row.(it)) t.density

let pp ppf t =
  Format.fprintf ppf "@[<v>x \\ t ";
  Array.iter (fun tm -> Format.fprintf ppf "%8.1f" tm) t.times;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun ix x ->
      Format.fprintf ppf "%-6d" x;
      Array.iter (fun v -> Format.fprintf ppf "%8.2f" v) t.density.(ix);
      Format.fprintf ppf "  (|U|=%d)@," t.population.(ix))
    t.distances;
  Format.fprintf ppf "@]"
