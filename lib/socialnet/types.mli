(** Core data types of the synthetic online social network.

    Conventions:
    - users are integers [0 .. n_users-1];
    - vote timestamps are hours since the story's submission (the
      paper works at hour granularity; we keep full float precision
      and bucket by hour when observing densities);
    - every story's first vote is its initiator at time [0.]. *)

type vote = { user : int; time : float }

type story = {
  id : int;
  initiator : int;
  topic : int;
  votes : vote array;  (** sorted by time ascending; first is the initiator *)
}

val story_vote_count : story -> int

val votes_before : story -> float -> vote array
(** [votes_before s t] is the prefix of votes with [time <= t]. *)

val voters : story -> int array
(** All voter ids, in vote order. *)

val check_story : story -> unit
(** Validates the invariants (sorted votes, initiator first, no
    duplicate voters).  @raise Invalid_argument on violation. *)

val pp_story : Format.formatter -> story -> unit
