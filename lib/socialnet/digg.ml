open Numerics
open Osn_graph

let log_src = Logs.Src.create "dlosn.digg" ~doc:"synthetic Digg corpus builder"

module Log = (val Logs.src_log log_src : Logs.LOG)

let n_topics = 10

type scale = { n_users : int; n_background : int; vote_factor : float }

let small = { n_users = 2_000; n_background = 80; vote_factor = 0.02 }
let medium = { n_users = 20_000; n_background = 400; vote_factor = 0.14 }
let full = { n_users = 139_409; n_background = 3_549; vote_factor = 1.0 }

type corpus = {
  dataset : Dataset.t;
  rep_ids : int array;
  community : int array;
  prefs : float array array;
  activity : float array;
  n_topics : int;
}

let affinity corpus ~topic u =
  Float.min 1.0 (2.2 *. corpus.activity.(u) *. corpus.prefs.(u).(topic))

(* Community sizes follow a mild power law; community 0 ("mainstream")
   is the largest. *)
let community_weights =
  Array.init n_topics (fun c -> (float_of_int (c + 1)) ** -0.7)

let assign_communities rng n =
  Array.init n (fun _ -> Rng.weighted_index rng community_weights)

(* Topic preferences: mostly the user's own community topic, a bump on
   the mainstream topic, and Dirichlet noise for individuality. *)
let make_prefs rng community =
  Array.map
    (fun c ->
      let noise = Rng.dirichlet rng (Array.make n_topics 0.4) in
      Array.init n_topics (fun k ->
          (0.55 *. if k = c then 1. else 0.)
          +. (0.08 *. if k = 0 then 1. else 0.)
          +. (0.33 *. noise.(k))))
    community

(* Heavy-tailed follower graph with topic homophily: preferential
   attachment where ~85% of follow choices are restricted to the
   user's own community. *)
let make_follower_graph rng n community =
  let g = Digraph.create n in
  let homophily = 0.85 and reciprocity = 0.2 in
  (* growable bags of previously-followed targets, one per community
     plus a global one; uniform picks from a bag are degree-weighted *)
  let bag () = ref ([||], 0) in
  let global = bag () and per_community = Array.init n_topics (fun _ -> bag ()) in
  let push b v =
    let data, len = !b in
    let data =
      if len = Array.length data then begin
        let bigger = Array.make (Stdlib.max 16 (2 * len)) 0 in
        Array.blit data 0 bigger 0 len;
        bigger
      end
      else data
    in
    data.(len) <- v;
    b := (data, len + 1)
  in
  let pick b =
    let data, len = !b in
    if len = 0 then None else Some data.(Rng.int rng len)
  in
  let register v =
    push global v;
    push per_community.(community.(v)) v
  in
  let pick_target u =
    let b =
      if Rng.bernoulli rng homophily then per_community.(community.(u))
      else global
    in
    match (if Rng.bernoulli rng 0.9 then pick b else None) with
    | Some v -> v
    | None -> Rng.int rng n
  in
  for u = 0 to n - 1 do
    let m = 2 + Rng.poisson rng 2.5 in
    let m = Stdlib.min m 40 in
    let added = ref 0 and attempts = ref 0 in
    while !added < m && !attempts < 30 * m do
      incr attempts;
      let v = pick_target u in
      if v <> u && not (Digraph.has_edge g u v) then begin
        Digraph.add_edge g u v;
        register v;
        if Rng.bernoulli rng reciprocity && not (Digraph.has_edge g v u) then begin
          Digraph.add_edge g v u;
          register u
        end;
        incr added
      end
    done
  done;
  g

(* Users of a community ranked by follower count (descending). *)
let ranked_by_followers follows community c =
  let n = Digraph.n_nodes follows in
  let members = ref [] in
  for u = 0 to n - 1 do
    if community.(u) = c then members := u :: !members
  done;
  let arr = Array.of_list !members in
  Array.sort
    (fun a b -> compare (Digraph.in_degree follows b) (Digraph.in_degree follows a))
    arr;
  arr

(* The four representative stories, tuned so the realised cascades land
   near the paper's vote scales and reproduce its qualitative shapes
   (see mli).  [target] is the desired vote count before vote_factor. *)
type rep_spec = {
  target : float;
  decay : float;      (* faster decay = story gets stale sooner *)
  p_follow : float;
  boost : float;      (* initiator exposure prominence *)
  rate_factor : float; (* front-page volume as a fraction of target *)
  mainstream : bool;  (* mainstream topic vs initiator's own community *)
  rank : int;         (* initiator's follower-count rank in its community *)
  rep_community : int;
}

let rep_specs =
  [|
    (* s1: most popular, broad appeal, niche initiator *)
    { target = 24_099.; decay = 0.22; p_follow = 0.30; boost = 1.7;
      rate_factor = 0.20; mainstream = true; rank = 20; rep_community = 1 };
    (* s2: second most popular, community hub initiator *)
    { target = 8_521.; decay = 0.12; p_follow = 0.08; boost = 1.2;
      rate_factor = 0.55; mainstream = false; rank = 0; rep_community = 0 };
    (* s3 *)
    { target = 5_988.; decay = 0.10; p_follow = 0.05; boost = 1.2;
      rate_factor = 0.95; mainstream = false; rank = 1; rep_community = 2 };
    (* s4: least popular; hub initiator with weak engagement, so density
       decays monotonically with hop distance *)
    { target = 1_618.; decay = 0.07; p_follow = 0.015; boost = 1.2;
      rate_factor = 1.2; mainstream = false; rank = 1; rep_community = 3 };
  |]

(* Visibility: users who share interests with the initiator are more
   likely to encounter the story at all (shared channels).  Cosine
   similarity of preference vectors, mapped into [0.45, 1]. *)
let make_visibility prefs initiator =
  let pi = prefs.(initiator) in
  let norm v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v) in
  let ni = norm pi in
  fun u ->
    let pu = prefs.(u) in
    let dot = ref 0. in
    Array.iteri (fun k x -> dot := !dot +. (x *. pu.(k))) pi;
    let cosine = !dot /. (ni *. norm pu) in
    0.45 +. (0.55 *. cosine)

let build ?(scale = medium) ~seed () =
  let { n_users = n; n_background; vote_factor } = scale in
  let rng = Rng.create seed in
  let community = assign_communities rng n in
  let prefs = make_prefs rng community in
  (* Pareto(2, 0.5): mean 1, a few hyper-active users, capped so one
     user cannot dominate a story. *)
  let activity =
    Array.init n (fun _ -> Float.min 8. (Rng.pareto rng ~alpha:2. ~x_min:0.5))
  in
  let follows = make_follower_graph rng n community in
  Log.debug (fun m ->
      m "follower graph: %d users, %d edges" n (Digraph.n_edges follows));
  let influence = Digraph.reverse follows in
  let user_affinity topic u =
    Float.min 1.0 (2.2 *. activity.(u) *. prefs.(u).(topic))
  in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Pick representative initiators up front so their activity can be
     raised before the background stories build everyone's vote
     history: rep initiators need rich, measurable histories for the
     shared-interest distance to them to be informative. *)
  let rep_initiators =
    Array.map
      (fun spec ->
        let ranked = ranked_by_followers follows community spec.rep_community in
        ranked.(Stdlib.min spec.rank (Array.length ranked - 1)))
      rep_specs
  in
  Array.iter
    (fun init -> activity.(init) <- Float.max 3. activity.(init))
    rep_initiators;
  (* Background stories give users vote histories (the C_a sets of the
     shared-interest metric).  Sizes are Pareto so a few background
     stories are big, like real front pages. *)
  let bg_mean = Float.max 30. (Float.min 600. (0.02 *. float_of_int n)) in
  let background =
    Array.init n_background (fun _ ->
        let initiator = Rng.int rng n in
        let topic = Rng.weighted_index rng prefs.(initiator) in
        let target =
          Float.min (6. *. bg_mean)
            (Rng.pareto rng ~alpha:1.8 ~x_min:(bg_mean /. 2.25))
        in
        (* the corpus only contains promoted (front-page) stories, so
           promotion is immediate, like the paper's crawl *)
        let params =
          {
            Cascade.default with
            p_follow = 0.3;
            promote_threshold = 1;
            front_page_rate = 0.3 *. target *. 0.15;
            front_page_decay = 0.15;
            max_votes = int_of_float (3. *. target) + 10;
          }
        in
        Cascade.simulate rng ~influence ~affinity:(user_affinity topic)
          ~visibility:(make_visibility prefs initiator) ~params ~initiator
          ~story_id:(fresh_id ()) ~topic ())
  in
  (* Representative stories s1..s4. *)
  let rep =
    Array.mapi
      (fun k spec ->
        let initiator = rep_initiators.(k) in
        let topic = if spec.mainstream then 0 else community.(initiator) in
        let target =
          Float.min (0.35 *. float_of_int n) (spec.target *. vote_factor)
        in
        let params =
          {
            Cascade.p_follow = spec.p_follow;
            initiator_boost = spec.boost;
            follow_delay_mean = 0.6;
            (* every story in the corpus reached the front page; start
               the arrival stream immediately so cascades are viable at
               every corpus scale *)
            promote_threshold = 1;
            front_page_rate = spec.rate_factor *. target *. spec.decay;
            front_page_decay = spec.decay;
            front_page_burst = 0.25;
            duration = 50.;
            max_votes = int_of_float (3. *. target) + 10;
          }
        in
        Cascade.simulate rng ~influence ~affinity:(user_affinity topic)
          ~visibility:(make_visibility prefs initiator) ~params ~initiator
          ~story_id:(fresh_id ()) ~topic ())
      rep_specs
  in
  let stories = Array.append background rep in
  Log.debug (fun m ->
      m "cascades done: %d stories, %d votes"
        (Array.length stories)
        (Array.fold_left
           (fun acc s -> acc + Types.story_vote_count s)
           0 stories));
  let dataset = Dataset.make ~follows ~stories in
  let rep_ids = Array.map (fun (s : Types.story) -> s.Types.id) rep in
  { dataset; rep_ids; community; prefs; activity; n_topics }
