type vote = { user : int; time : float }

type story = {
  id : int;
  initiator : int;
  topic : int;
  votes : vote array;
}

let story_vote_count s = Array.length s.votes

let votes_before s t =
  (* votes are sorted: binary search for the cut point *)
  let n = Array.length s.votes in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.votes.(mid).time <= t then lo := mid + 1 else hi := mid
  done;
  Array.sub s.votes 0 !lo

let voters s = Array.map (fun v -> v.user) s.votes

let check_story s =
  let n = Array.length s.votes in
  if n = 0 then invalid_arg "story has no votes";
  if s.votes.(0).user <> s.initiator then
    invalid_arg "first vote must be the initiator";
  if s.votes.(0).time <> 0. then invalid_arg "initiator vote must be at t=0";
  let seen = Hashtbl.create n in
  Array.iteri
    (fun i v ->
      if i > 0 && v.time < s.votes.(i - 1).time then
        invalid_arg "votes must be sorted by time";
      if Hashtbl.mem seen v.user then invalid_arg "duplicate voter";
      Hashtbl.add seen v.user ())
    s.votes

let pp_story ppf s =
  Format.fprintf ppf "story %d (initiator %d, topic %d, %d votes)" s.id
    s.initiator s.topic (Array.length s.votes)
