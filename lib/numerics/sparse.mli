(** Sparse matrices (CSR) and iterative solvers.

    Backs the network variant of the DL model, where diffusion acts on
    the social graph's Laplacian (10^4-10^5 nodes) instead of a 1-D
    distance interval: matrix-vector products for explicit stepping and
    conjugate gradient for the implicit (backward-Euler) step. *)

type t
(** Compressed sparse row matrix. *)

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Builds from (row, col, value) triplets; duplicate entries are
    summed, explicit zeros dropped. *)

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val get : t -> int -> int -> float
(** O(log row-nnz) lookup; [0.] for absent entries. *)

val mv : t -> Vec.t -> Vec.t
(** Matrix--vector product. *)

val mv_into : t -> Vec.t -> Vec.t -> unit
(** [mv_into a x y] writes [a x] into [y] without allocating. *)

val scale : float -> t -> t
val add_identity : float -> t -> t
(** [add_identity c a] is [c I + a] (square matrices only). *)

val transpose : t -> t
val to_dense : t -> Mat.t
(** For tests; do not call on large matrices. *)

val conjugate_gradient :
  ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> t -> Vec.t -> Vec.t
(** Solves [a x = b] for symmetric positive-definite [a].  Defaults:
    [tol = 1e-10] (on the residual norm relative to [||b||]),
    [max_iter = 2 * dim].  @raise Invalid_argument if [a] is not
    square. *)
