let bracket xs x =
  let n = Array.length xs in
  assert (n >= 1);
  if n = 1 then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear ~xs ~ys x =
  let n = Array.length xs in
  assert (Array.length ys = n && n >= 1);
  if n = 1 || x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let i = bracket xs x in
    let w = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
    ((1. -. w) *. ys.(i)) +. (w *. ys.(i + 1))
  end

let nearest ~xs ~ys x =
  let n = Array.length xs in
  assert (Array.length ys = n && n >= 1);
  if n = 1 || x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let i = bracket xs x in
    if x -. xs.(i) <= xs.(i + 1) -. x then ys.(i) else ys.(i + 1)
  end

let bilinear ~xs ~ts ~values x t =
  let nx = Array.length xs and nt = Array.length ts in
  assert (Array.length values = nx);
  assert (nx >= 1 && nt >= 1);
  let clampf lo hi v = Float.max lo (Float.min hi v) in
  let x = clampf xs.(0) xs.(nx - 1) x in
  let t = clampf ts.(0) ts.(nt - 1) t in
  let i = if nx = 1 then 0 else bracket xs x in
  let j = if nt = 1 then 0 else bracket ts t in
  let i1 = Stdlib.min (i + 1) (nx - 1) and j1 = Stdlib.min (j + 1) (nt - 1) in
  let wx =
    if i1 = i then 0. else (x -. xs.(i)) /. (xs.(i1) -. xs.(i))
  and wt =
    if j1 = j then 0. else (t -. ts.(j)) /. (ts.(j1) -. ts.(j))
  in
  ((1. -. wx) *. (1. -. wt) *. values.(i).(j))
  +. (wx *. (1. -. wt) *. values.(i1).(j))
  +. ((1. -. wx) *. wt *. values.(i).(j1))
  +. (wx *. wt *. values.(i1).(j1))
