(* SplitMix64 (Steele, Lea, Flood 2014).  64-bit state, 64-bit output,
   period 2^64.  Fast, statistically solid for simulation workloads, and
   trivially splittable, which is what we need to hand independent
   streams to sub-components. *)

type t = {
  mutable state : int64;
  (* Cached second Box--Muller deviate. *)
  mutable gauss : float option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed); gauss = None }

let copy t = { state = t.state; gauss = t.gauss }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = mix seed; gauss = None }

(* Top 53 bits -> uniform float in [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t a b =
  assert (a <= b);
  a +. ((b -. a) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    let v = Int64.rem raw n64 in
    if Int64.(sub raw v > sub max_int (sub n64 1L)) then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t < p

let normal t ?(mu = 0.) ?(sigma = 1.) () =
  let z =
    match t.gauss with
    | Some z ->
      t.gauss <- None;
      z
    | None ->
      let rec polar () =
        let u = uniform t (-1.) 1. and v = uniform t (-1.) 1. in
        let s = (u *. u) +. (v *. v) in
        if s >= 1. || s = 0. then polar ()
        else begin
          let f = sqrt (-2. *. log s /. s) in
          t.gauss <- Some (v *. f);
          u *. f
        end
      in
      polar ()
  in
  mu +. (sigma *. z)

let exponential t lambda =
  assert (lambda > 0.);
  -.log1p (-.float t) /. lambda

let poisson t lambda =
  assert (lambda > 0.);
  if lambda < 60. then begin
    let limit = exp (-.lambda) in
    let rec loop k p =
      let p = p *. float t in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation with continuity correction; adequate for the
       high-rate front-page arrival process. *)
    let x = normal t ~mu:lambda ~sigma:(sqrt lambda) () in
    max 0 (int_of_float (Float.round x))
  end

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = float t in
    int_of_float (floor (log1p (-.u) /. log1p (-.p)))

let pareto t ~alpha ~x_min =
  assert (alpha > 0. && x_min > 0.);
  x_min /. ((1. -. float t) ** (1. /. alpha))

(* Marsaglia--Tsang gamma sampler, shape >= 0; used only by [dirichlet]. *)
let rec gamma t shape =
  if shape < 1. then begin
    let u = float t in
    gamma t (shape +. 1.) *. (u ** (1. /. shape))
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec draw () =
      let x = normal t () in
      let v = (1. +. (c *. x)) ** 3. in
      if v <= 0. then draw ()
      else
        let u = float t in
        let x2 = x *. x in
        if u < 1. -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1. -. v +. log v)) then d *. v
        else draw ()
    in
    draw ()
  end

let dirichlet t alphas =
  let g = Array.map (fun a -> gamma t a) alphas in
  let s = Array.fold_left ( +. ) 0. g in
  Array.map (fun x -> x /. s) g

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  if k * 3 >= n then begin
    (* Dense: shuffle a full index array and take a prefix. *)
    let all = Array.init n Fun.id in
    shuffle t all;
    Array.sub all 0 k
  end
  else begin
    (* Sparse: rejection with a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = int t n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0. w in
  assert (total > 0.);
  let target = float t *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
