(** Statistical hypothesis tests and resampling.

    Used to validate the synthetic corpus against target distributions
    (degree sequences, vote-size distributions) and to put confidence
    intervals on the batch-evaluation accuracy numbers. *)

val ks_two_sample : float array -> float array -> float * float
(** [(statistic, p_value)] of the two-sample Kolmogorov--Smirnov test.
    The p-value uses the asymptotic Kolmogorov distribution (accurate
    for n over ~20 per side). *)

val ks_statistic : float array -> cdf:(float -> float) -> float
(** One-sample KS statistic against a reference CDF. *)

val chi_square_statistic :
  observed:int array -> expected:float array -> float
(** Pearson chi-square statistic; expected entries must be positive. *)

val bootstrap_ci :
  ?confidence:float -> ?resamples:int ->
  Rng.t -> float array -> (float array -> float) -> float * float
(** [(lo, hi)] percentile-bootstrap confidence interval for an
    arbitrary statistic of the sample (default 95 %, 1000 resamples). *)

val bootstrap_mean_ci :
  ?confidence:float -> ?resamples:int -> Rng.t -> float array -> float * float
(** Bootstrap CI for the mean. *)
