type boundary = Natural | Clamped of float * float
type extrapolation = Flat | Linear | Error

type t = {
  xs : float array;
  ys : float array;
  moments : float array; (* second derivatives at the knots *)
  extrapolation : extrapolation;
}

let strictly_increasing xs =
  let ok = ref true in
  for i = 0 to Array.length xs - 2 do
    if xs.(i + 1) <= xs.(i) then ok := false
  done;
  !ok

(* Solve the tridiagonal moment system for the knot second
   derivatives.  Interior rows are the standard continuity equations;
   boundary rows encode the requested end conditions. *)
let compute_moments boundary xs ys =
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let slope i = (ys.(i + 1) -. ys.(i)) /. h.(i) in
  let sub = Array.make (n - 1) 0.
  and diag = Array.make n 0.
  and sup = Array.make (n - 1) 0.
  and rhs = Array.make n 0. in
  for i = 1 to n - 2 do
    sub.(i - 1) <- h.(i - 1) /. 6.;
    diag.(i) <- (h.(i - 1) +. h.(i)) /. 3.;
    sup.(i) <- h.(i) /. 6.;
    rhs.(i) <- slope i -. slope (i - 1)
  done;
  (match boundary with
  | Natural ->
    diag.(0) <- 1.;
    rhs.(0) <- 0.;
    diag.(n - 1) <- 1.;
    rhs.(n - 1) <- 0.
    (* sup.(0) and sub.(n-2) stay 0 for interior rows of the first/last
       equations unless clamped; Natural rows are M0 = 0, Mn-1 = 0. *)
  | Clamped (fpa, fpb) ->
    diag.(0) <- h.(0) /. 3.;
    sup.(0) <- h.(0) /. 6.;
    rhs.(0) <- slope 0 -. fpa;
    diag.(n - 1) <- h.(n - 2) /. 3.;
    sub.(n - 2) <- h.(n - 2) /. 6.;
    rhs.(n - 1) <- fpb -. slope (n - 2));
  (* For Natural the first/last off-diagonals must be zero. *)
  (match boundary with
  | Natural ->
    sup.(0) <- 0.;
    sub.(n - 2) <- 0.
  | Clamped _ -> ());
  Tridiag.solve (Tridiag.make ~sub ~diag ~sup) rhs

let make ?(boundary = Natural) ?(extrapolation = Flat) ~xs ~ys () =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Spline.make: need at least two points";
  if Array.length ys <> n then invalid_arg "Spline.make: length mismatch";
  if not (strictly_increasing xs) then
    invalid_arg "Spline.make: xs must be strictly increasing";
  let moments = compute_moments boundary xs ys in
  { xs = Array.copy xs; ys = Array.copy ys; moments; extrapolation }

let flat_ends ~xs ~ys =
  make ~boundary:(Clamped (0., 0.)) ~extrapolation:Flat ~xs ~ys ()

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))
let knots t = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i)))

(* Index of the interval containing x, by binary search. *)
let interval t x =
  let n = Array.length t.xs in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) <= x then lo := mid else hi := mid
  done;
  !lo

let in_range t x =
  let l, r = domain t in
  x >= l && x <= r

(* Derivative of the spline at the left/right end knot (needed by
   Linear extrapolation). *)
let end_slope t ~right =
  let n = Array.length t.xs in
  let i = if right then n - 2 else 0 in
  let h = t.xs.(i + 1) -. t.xs.(i) in
  let s = (t.ys.(i + 1) -. t.ys.(i)) /. h in
  if right then s +. (h /. 6. *. ((2. *. t.moments.(i + 1)) +. t.moments.(i)))
  else s -. (h /. 6. *. ((2. *. t.moments.(i)) +. t.moments.(i + 1)))

let outside t x k =
  let l, r = domain t in
  let n = Array.length t.xs in
  match t.extrapolation with
  | Error ->
    invalid_arg (Printf.sprintf "Spline: %g outside domain [%g, %g]" x l r)
  | Flat -> (
    match k with
    | `Value -> if x < l then t.ys.(0) else t.ys.(n - 1)
    | `Deriv | `Second -> 0.)
  | Linear -> (
    let right = x > r in
    let slope = end_slope t ~right in
    match k with
    | `Value ->
      if right then t.ys.(n - 1) +. (slope *. (x -. r))
      else t.ys.(0) +. (slope *. (x -. l))
    | `Deriv -> slope
    | `Second -> 0.)

let eval t x =
  if not (in_range t x) then outside t x `Value
  else begin
    let i = interval t x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let a = (t.xs.(i + 1) -. x) /. h and b = (x -. t.xs.(i)) /. h in
    (a *. t.ys.(i)) +. (b *. t.ys.(i + 1))
    +. (h *. h /. 6.
        *. ((((a *. a *. a) -. a) *. t.moments.(i))
            +. (((b *. b *. b) -. b) *. t.moments.(i + 1))))
  end

let deriv t x =
  if not (in_range t x) then outside t x `Deriv
  else begin
    let i = interval t x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let a = (t.xs.(i + 1) -. x) /. h and b = (x -. t.xs.(i)) /. h in
    ((t.ys.(i + 1) -. t.ys.(i)) /. h)
    +. (h /. 6.
        *. ((((3. *. b *. b) -. 1.) *. t.moments.(i + 1))
            -. (((3. *. a *. a) -. 1.) *. t.moments.(i))))
  end

let second_deriv t x =
  if not (in_range t x) then outside t x `Second
  else begin
    let i = interval t x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let a = (t.xs.(i + 1) -. x) /. h and b = (x -. t.xs.(i)) /. h in
    (a *. t.moments.(i)) +. (b *. t.moments.(i + 1))
  end

let to_function t = eval t
