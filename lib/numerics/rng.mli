(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG based on SplitMix64.  Every stochastic
    component of the library (graph generators, cascade simulator,
    Nelder--Mead restarts, property tests) threads an explicit [Rng.t]
    so that whole experiments are reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is (for practical
    purposes) independent of the remainder of [t]'s stream; [t] is
    advanced.  Use it to give sub-components their own streams. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform on [\[a, b)].  Requires [a <= b]. *)

val int : t -> int -> int
(** [int t n] is uniform on [\[0, n)].  Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val normal : t -> ?mu:float -> ?sigma:float -> unit -> float
(** Gaussian deviate via Box--Muller (defaults: [mu = 0.], [sigma = 1.]). *)

val exponential : t -> float -> float
(** [exponential t lambda] with rate [lambda > 0] (mean [1/lambda]). *)

val poisson : t -> float -> int
(** [poisson t lambda] for [lambda > 0].  Uses Knuth's method for small
    means and a normal approximation above 60. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success
    of a [p]-coin, [0 <= result].  Requires [0 < p <= 1]. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto deviate: density proportional to [x^-(alpha+1)] on
    [\[x_min, infinity)]. *)

val dirichlet : t -> float array -> float array
(** [dirichlet t alphas] samples a probability vector from a Dirichlet
    distribution via normalised Gamma deviates
    (Marsaglia--Tsang). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher--Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)] (order unspecified).  Requires [0 <= k <= n]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] samples index [i] with probability
    [w.(i) / sum w].  Weights must be non-negative with positive sum. *)
