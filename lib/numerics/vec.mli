(** Dense float vectors.

    Thin, allocation-conscious helpers over [float array].  All
    functions treat their inputs as immutable unless the name says
    otherwise ([*_inplace], [fill], [axpy_inplace]). *)

type t = float array

val create : int -> float -> t
(** [create n x] is an [n]-vector filled with [x]. *)

val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val of_list : float list -> t
val to_list : t -> float list

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val mapi : (int -> float -> float) -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Element-wise product. *)

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val axpy_inplace : float -> t -> t -> unit
(** [axpy_inplace a x y] sets [y <- a*x + y]. *)

val dot : t -> t -> float
val sum : t -> float
val mean : t -> float

val norm1 : t -> float
val norm2 : t -> float
val norm_inf : t -> float

val dist2 : t -> t -> float
(** Euclidean distance. *)

val max : t -> float
val min : t -> float
val argmax : t -> int
val argmin : t -> int

val clamp : lo:float -> hi:float -> t -> t
(** Element-wise clamp into [\[lo, hi\]]. *)

val fold_left : ('a -> float -> 'a) -> 'a -> t -> 'a

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance (default
    [1e-9]); [false] when dimensions differ. *)

val pp : Format.formatter -> t -> unit
