(** Descriptive statistics, error metrics and simple regression.

    Error metrics follow the usual conventions; the paper's own
    "prediction accuracy" lives in [Dl.Accuracy] because its definition
    is specific to the paper (Eq. 8). *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance ([n-1] denominator); [0.] for [n < 2]. *)

val std : float array -> float
val median : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]], linear interpolation between
    order statistics (type-7, the numpy default). *)

val min : float array -> float
val max : float array -> float

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] is an array of [(lo, hi, count)] over
    equal-width bins spanning the data range (default 10 bins). *)

val rmse : float array -> float array -> float
val mae : float array -> float array -> float

val mape : float array -> float array -> float
(** Mean absolute percentage error of predictions against actuals
    (first argument = predicted, second = actual); actual entries that
    are exactly [0.] are skipped. *)

val pearson : float array -> float array -> float
(** Pearson correlation; [nan] when either side is constant. *)

val linear_regression : float array -> float array -> float * float * float
(** [linear_regression xs ys] is [(slope, intercept, r2)] of the OLS
    fit [y = slope*x + intercept]. *)
