type problem = {
  xl : float;
  xr : float;
  nx : int;
  diffusion : float -> float;
  reaction : x:float -> t:float -> u:float -> float;
  initial : float -> float;
  t0 : float;
}

type reaction_step = x:float -> t:float -> dt:float -> u:float -> float

type scheme = Ftcs | Imex of float | Strang of reaction_step

type solution = {
  xs : float array;
  ts : float array;
  values : float array array;
}

let grid p =
  assert (p.nx >= 3 && p.xr > p.xl);
  Vec.linspace p.xl p.xr p.nx

let dx p = (p.xr -. p.xl) /. float_of_int (p.nx - 1)

(* Face diffusivities d_{i+1/2}, arithmetic mean of node values. *)
let face_diffusion p xs =
  Array.init (p.nx - 1) (fun i ->
      (p.diffusion xs.(i) +. p.diffusion xs.(i + 1)) /. 2.)

(* CFL bound from an already-built grid, so [solve] (which owns one)
   never rebuilds it just to size the FTCS step. *)
let cfl_of p xs =
  let dmax =
    Array.fold_left (fun acc x -> Float.max acc (p.diffusion x)) 0. xs
  in
  let h = dx p in
  if dmax <= 0. then infinity else h *. h /. (2. *. dmax)

let cfl_limit p = cfl_of p (grid p)

(* Finite-volume discretisation of (d u_x)_x with zero-flux faces:
   (L u)_i = (F_{i+1/2} - F_{i-1/2}) / (h c_i),  F = d (u_{i+1} - u_i)/h,
   where boundary cells have half volume (c = 1/2).  Equivalent to the
   second-order mirrored-ghost stencil at the boundaries, and it makes
   the trapezoid integral of u an exact invariant of pure diffusion. *)
let cell_weight n i = if i = 0 || i = n - 1 then 0.5 else 1.

let apply_operator p df u =
  let n = p.nx in
  let h2 = dx p ** 2. in
  Array.init n (fun i ->
      let flux_right = if i = n - 1 then 0. else df.(i) *. (u.(i + 1) -. u.(i)) in
      let flux_left = if i = 0 then 0. else df.(i - 1) *. (u.(i) -. u.(i - 1)) in
      (flux_right -. flux_left) /. (h2 *. cell_weight n i))

(* Tridiagonal representation of L (same stencil as [apply_operator]). *)
let operator_tridiag p df =
  let n = p.nx in
  let h2 = dx p ** 2. in
  let sub = Array.make (n - 1) 0.
  and diag = Array.make n 0.
  and sup = Array.make (n - 1) 0. in
  for i = 0 to n - 1 do
    let h2i = h2 *. cell_weight n i in
    let dr = if i = n - 1 then 0. else df.(i) /. h2i in
    let dl = if i = 0 then 0. else df.(i - 1) /. h2i in
    diag.(i) <- -.(dr +. dl);
    if i < n - 1 then sup.(i) <- dr;
    if i > 0 then sub.(i - 1) <- dl
  done;
  Tridiag.make ~sub ~diag ~sup

(* (I + c L) as a tridiagonal matrix. *)
let shifted c l =
  let n = Array.length l.Tridiag.diag in
  Tridiag.make
    ~sub:(Array.map (fun v -> c *. v) l.Tridiag.sub)
    ~diag:(Array.init n (fun i -> 1. +. (c *. l.Tridiag.diag.(i))))
    ~sup:(Array.map (fun v -> c *. v) l.Tridiag.sup)

let logistic_reaction_step ~r ~k : reaction_step =
  (* The r(t)-integral is x-independent, so the one-slot memo turns the
     per-cell Simpson evaluation into a per-(t, dt) one — same value,
     bit for bit, since a hit returns the previously computed float.
     [current] feeds the cached value through Ode's closed form without
     allocating a fresh closure per cell.  Stateful: build one step
     closure per solve; do not share across domains. *)
  let integral = Quadrature.simpson_memo r ~n:8 in
  let current = ref 0. in
  let r_integral _ = !current in
  fun ~x:_ ~t ~dt ~u ->
    if u = 0. then 0.
    else begin
      current := integral ~a:t ~b:(t +. dt);
      Ode.logistic_varying_r ~r_integral ~k ~n0:u dt
    end

let linear_reaction_step ~r : reaction_step =
  (* Exact flow of u' = r(t) u: u e^{int r}.  Same one-slot memo trick
     as [logistic_reaction_step]; stateful, one closure per solve. *)
  let integral = Quadrature.simpson_memo r ~n:8 in
  fun ~x:_ ~t ~dt ~u ->
    if u = 0. then 0. else u *. exp (integral ~a:t ~b:(t +. dt))

(* Second-order (Heun) increment of the reaction term over [t, t+dt]. *)
let reaction_rk2 p xs t dt u =
  Array.mapi
    (fun i ui ->
      let x = xs.(i) in
      let k1 = p.reaction ~x ~t ~u:ui in
      let k2 = p.reaction ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
      dt *. (k1 +. k2) /. 2.)
    u

(* One macro time step of size dt, dispatching on the scheme.  For
   FTCS the caller has already split dt below the CFL limit.

   This is the RETAINED REFERENCE STEPPER: it allocates fresh arrays
   and operators every step, exactly as the original solver did.  The
   workspace fast path below must stay bit-identical to it — same
   floating-point operations in the same order — which
   [test/test_pde_perf.ml] enforces per cell.  Do not "optimise" this
   function; it is the oracle. *)
let step p xs df l scheme t dt u =
  match scheme with
  | Ftcs ->
    let lu = apply_operator p df u in
    let dr = reaction_rk2 p xs t dt u in
    Array.mapi (fun i ui -> ui +. (dt *. lu.(i)) +. dr.(i)) u
  | Imex theta ->
    (* (I - theta dt L) u' = (I + (1-theta) dt L) u + RK2 reaction *)
    let explicit = Tridiag.mv (shifted ((1. -. theta) *. dt) l) u in
    let dr = reaction_rk2 p xs t dt u in
    let rhs = Array.mapi (fun i v -> v +. dr.(i)) explicit in
    Tridiag.solve (shifted (-.(theta *. dt)) l) rhs
  | Strang react ->
    let half = dt /. 2. in
    let u1 = Array.mapi (fun i ui -> react ~x:xs.(i) ~t ~dt:half ~u:ui) u in
    (* Crank--Nicolson diffusion over the full step. *)
    let explicit = Tridiag.mv (shifted (dt /. 2.) l) u1 in
    let u2 = Tridiag.solve (shifted (-.(dt /. 2.)) l) explicit in
    Array.mapi
      (fun i ui -> react ~x:xs.(i) ~t:(t +. half) ~dt:half ~u:ui)
      u2

(* --- workspace fast path ---------------------------------------- *)

(* Everything a solve's hot loop needs, allocated once up front: a
   double-buffered state, rhs/stage scratch, the hoisted dx^2
   cell-weight table, and (for the implicit schemes) the shifted
   operators and their Thomas factorization for the macro step size.
   Ragged final partial steps before a snapshot target build throwaway
   operators and leave the dt_macro cache intact. *)
type workspace = {
  mutable w_u : float array;     (* current state *)
  mutable w_next : float array;  (* written by the step, then swapped *)
  w_rhs : float array;
  w_stage : float array;
  w_h2w : float array;           (* dx^2 * cell_weight, per cell *)
  w_dt_macro : float;
  mutable w_ops : (Tridiag.t * Tridiag.factored) option;
  mutable w_reuses : int;        (* steps served by the cached ops *)
  mutable w_rebuilds : int;      (* operator (re)builds, incl. the first *)
}

let make_workspace p u0 dt_macro =
  let n = p.nx in
  let h2 = dx p ** 2. in
  {
    w_u = u0;
    w_next = Array.make n 0.;
    w_rhs = Array.make n 0.;
    w_stage = Array.make n 0.;
    w_h2w = Array.init n (fun i -> h2 *. cell_weight n i);
    w_dt_macro = dt_macro;
    w_ops = None;
    w_reuses = 0;
    w_rebuilds = 0;
  }

(* (I + c L) pairs for one step of size dt: the explicit operator and
   the factorized implicit one.  Same [shifted] coefficients as the
   reference stepper. *)
let build_ops l scheme dt =
  match scheme with
  | Ftcs -> assert false (* no implicit operator in FTCS *)
  | Imex theta ->
    ( shifted ((1. -. theta) *. dt) l,
      Tridiag.factorize (shifted (-.(theta *. dt)) l) )
  | Strang _ ->
    (shifted (dt /. 2.) l, Tridiag.factorize (shifted (-.(dt /. 2.)) l))

let ops_for ws l scheme dt =
  if dt = ws.w_dt_macro then (
    match ws.w_ops with
    | Some ops ->
      ws.w_reuses <- ws.w_reuses + 1;
      ops
    | None ->
      let ops = build_ops l scheme dt in
      ws.w_ops <- Some ops;
      ws.w_rebuilds <- ws.w_rebuilds + 1;
      ops)
  else begin
    ws.w_rebuilds <- ws.w_rebuilds + 1;
    build_ops l scheme dt
  end

(* Allocation-free step into [ws.w_next], then a buffer swap.  Each
   branch performs the reference stepper's floating-point operations in
   the same order (and calls [p.reaction] / [react] in the same cell
   order), so outputs are bit-identical; only the array churn is gone. *)
let step_ws p xs df l scheme ws t dt =
  let n = p.nx in
  let u = ws.w_u and next = ws.w_next in
  (match scheme with
  | Ftcs ->
    for i = 0 to n - 1 do
      let flux_right = if i = n - 1 then 0. else df.(i) *. (u.(i + 1) -. u.(i)) in
      let flux_left = if i = 0 then 0. else df.(i - 1) *. (u.(i) -. u.(i - 1)) in
      let lu = (flux_right -. flux_left) /. ws.w_h2w.(i) in
      let x = xs.(i) in
      let ui = u.(i) in
      let k1 = p.reaction ~x ~t ~u:ui in
      let k2 = p.reaction ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
      next.(i) <- ui +. (dt *. lu) +. (dt *. (k1 +. k2) /. 2.)
    done
  | Imex _ ->
    let exp_op, imp = ops_for ws l scheme dt in
    Tridiag.mv_into exp_op u ~dst:ws.w_rhs;
    for i = 0 to n - 1 do
      let x = xs.(i) in
      let ui = u.(i) in
      let k1 = p.reaction ~x ~t ~u:ui in
      let k2 = p.reaction ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
      ws.w_rhs.(i) <- ws.w_rhs.(i) +. (dt *. (k1 +. k2) /. 2.)
    done;
    Tridiag.solve_factored imp ~src:ws.w_rhs ~dst:next
  | Strang react ->
    let half = dt /. 2. in
    let exp_op, imp = ops_for ws l scheme dt in
    let stage = ws.w_stage in
    for i = 0 to n - 1 do
      stage.(i) <- react ~x:xs.(i) ~t ~dt:half ~u:u.(i)
    done;
    Tridiag.mv_into exp_op stage ~dst:ws.w_rhs;
    Tridiag.solve_factored imp ~src:ws.w_rhs ~dst:stage;
    for i = 0 to n - 1 do
      next.(i) <- react ~x:xs.(i) ~t:(t +. half) ~dt:half ~u:stage.(i)
    done);
  ws.w_u <- next;
  ws.w_next <- u

(* --- solver entry point ------------------------------------------ *)

let reference_env_var = "DLOSN_BENCH_REFERENCE_SOLVER"

let use_reference =
  ref
    (match Sys.getenv_opt reference_env_var with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let set_use_reference_stepper b = use_reference := b
let use_reference_stepper () = !use_reference

let m_solves = Obs.Metrics.counter "pde.solves"
let m_steps = Obs.Metrics.counter "pde.steps"
let m_ws_reuses = Obs.Metrics.counter "pde.workspace_reuses"
let m_ws_rebuilds = Obs.Metrics.counter "pde.factor_rebuilds"
let m_solve_ns = Obs.Metrics.histogram "pde.solve_ns"
let m_step_ns = Obs.Metrics.histogram "pde.step_ns"

let solve ?(scheme = Imex 0.5) ?(dt = 1e-3) ?reference p ~times =
  assert (dt > 0.);
  (match scheme with
  | Imex theta ->
    if theta < 0.5 || theta > 1. then
      invalid_arg "Pde.solve: theta must be in [0.5, 1]"
  | Ftcs | Strang _ -> ());
  let reference =
    match reference with Some b -> b | None -> !use_reference
  in
  let xs = grid p in
  let df = face_diffusion p xs in
  let l = operator_tridiag p df in
  let dt_macro =
    match scheme with
    | Ftcs ->
      let cfl = cfl_of p xs in
      if Float.is_finite cfl then Float.min dt (0.9 *. cfl) else dt
    | Imex _ | Strang _ -> dt
  in
  (* Timing syscalls only happen when observability is on; the numeric
     path is untouched either way. *)
  let obs_on = Obs.enabled () in
  let solve_start = if obs_on then Obs.now_ns () else 0 in
  let steps = ref 0 in
  let u0 = Array.map p.initial xs in
  let ws = if reference then None else Some (make_workspace p u0 dt_macro) in
  let u = ref u0 and t = ref p.t0 in
  let advance step_dt =
    match ws with
    | None -> u := step p xs df l scheme !t step_dt !u
    | Some w -> step_ws p xs df l scheme w !t step_dt
  in
  let current () = match ws with None -> !u | Some w -> w.w_u in
  let snapshots = ref [ (p.t0, Array.copy u0) ] in
  Array.iter
    (fun target ->
      if target < !t -. 1e-12 then
        invalid_arg "Pde.solve: times must be increasing and >= t0";
      while target -. !t > 1e-12 do
        let step_dt = Float.min dt_macro (target -. !t) in
        if obs_on then begin
          let t0 = Obs.now_ns () in
          advance step_dt;
          Obs.Metrics.observe m_step_ns (float_of_int (Obs.now_ns () - t0))
        end
        else advance step_dt;
        incr steps;
        t := !t +. step_dt
      done;
      t := target;
      snapshots := (target, Array.copy (current ())) :: !snapshots)
    times;
  if obs_on then begin
    Obs.Metrics.incr m_solves;
    Obs.Metrics.incr ~by:!steps m_steps;
    (match ws with
    | Some w ->
      Obs.Metrics.incr ~by:w.w_reuses m_ws_reuses;
      Obs.Metrics.incr ~by:w.w_rebuilds m_ws_rebuilds
    | None -> ());
    Obs.Metrics.observe m_solve_ns (float_of_int (Obs.now_ns () - solve_start))
  end;
  let snaps = Array.of_list (List.rev !snapshots) in
  {
    xs;
    ts = Array.map fst snaps;
    values = Array.map snd snaps;
  }

(* Top level, not per call: the old per-call [clampf] closure was an
   allocation on the prediction hot path. *)
let clampf lo hi v = Float.max lo (Float.min hi v)

(* values.(it).(ix): bilinear wants values.(ix).(it); transpose view
   via index juggling to avoid materialising.  A NaN query would sail
   through the clamps ([Float.min hi nan] is NaN) and turn the bracket
   search into garbage, so it is rejected up front. *)
let eval_core xs ts values nx nt x_lo x_hi t_lo t_hi ~x ~t =
  if Float.is_nan x || Float.is_nan t then
    invalid_arg
      (Printf.sprintf
         "Pde.eval: NaN input (x = %g, t = %g); clamping a NaN is \
          meaningless" x t);
  let x = clampf x_lo x_hi x in
  let t = clampf t_lo t_hi t in
  let i = if nx = 1 then 0 else Interp.bracket xs x in
  let j = if nt = 1 then 0 else Interp.bracket ts t in
  let i1 = Stdlib.min (i + 1) (nx - 1) and j1 = Stdlib.min (j + 1) (nt - 1) in
  let wx = if i1 = i then 0. else (x -. xs.(i)) /. (xs.(i1) -. xs.(i)) in
  let wt = if j1 = j then 0. else (t -. ts.(j)) /. (ts.(j1) -. ts.(j)) in
  ((1. -. wx) *. (1. -. wt) *. values.(j).(i))
  +. (wx *. (1. -. wt) *. values.(j).(i1))
  +. ((1. -. wx) *. wt *. values.(j1).(i))
  +. (wx *. wt *. values.(j1).(i1))

let evaluator sol =
  let nt = Array.length sol.ts and nx = Array.length sol.xs in
  assert (nt >= 1 && nx >= 1);
  let xs = sol.xs and ts = sol.ts and values = sol.values in
  let x_lo = xs.(0) and x_hi = xs.(nx - 1) in
  let t_lo = ts.(0) and t_hi = ts.(nt - 1) in
  fun ~x ~t -> eval_core xs ts values nx nt x_lo x_hi t_lo t_hi ~x ~t

let eval sol ~x ~t =
  let nt = Array.length sol.ts and nx = Array.length sol.xs in
  assert (nt >= 1 && nx >= 1);
  eval_core sol.xs sol.ts sol.values nx nt sol.xs.(0)
    sol.xs.(nx - 1) sol.ts.(0) sol.ts.(nt - 1) ~x ~t

let snapshot sol ~t =
  let nt = Array.length sol.ts in
  let best = ref 0 in
  for j = 1 to nt - 1 do
    if Float.abs (sol.ts.(j) -. t) < Float.abs (sol.ts.(!best) -. t) then
      best := j
  done;
  Array.copy sol.values.(!best)

let mass sol ~it =
  Quadrature.trapezoid_sampled ~xs:sol.xs ~ys:sol.values.(it)
