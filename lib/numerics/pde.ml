type problem = {
  xl : float;
  xr : float;
  nx : int;
  diffusion : float -> float;
  reaction : x:float -> t:float -> u:float -> float;
  initial : float -> float;
  t0 : float;
}

type reaction_step = x:float -> t:float -> dt:float -> u:float -> float

type scheme = Ftcs | Imex of float | Strang of reaction_step

type solution = {
  xs : float array;
  ts : float array;
  values : float array array;
}

let grid p =
  assert (p.nx >= 3 && p.xr > p.xl);
  Vec.linspace p.xl p.xr p.nx

let dx p = (p.xr -. p.xl) /. float_of_int (p.nx - 1)

(* Face diffusivities d_{i+1/2}, arithmetic mean of node values. *)
let face_diffusion p xs =
  Array.init (p.nx - 1) (fun i ->
      (p.diffusion xs.(i) +. p.diffusion xs.(i + 1)) /. 2.)

let cfl_limit p =
  let xs = grid p in
  let dmax =
    Array.fold_left (fun acc x -> Float.max acc (p.diffusion x)) 0. xs
  in
  let h = dx p in
  if dmax <= 0. then infinity else h *. h /. (2. *. dmax)

(* Finite-volume discretisation of (d u_x)_x with zero-flux faces:
   (L u)_i = (F_{i+1/2} - F_{i-1/2}) / (h c_i),  F = d (u_{i+1} - u_i)/h,
   where boundary cells have half volume (c = 1/2).  Equivalent to the
   second-order mirrored-ghost stencil at the boundaries, and it makes
   the trapezoid integral of u an exact invariant of pure diffusion. *)
let cell_weight n i = if i = 0 || i = n - 1 then 0.5 else 1.

let apply_operator p df u =
  let n = p.nx in
  let h2 = dx p ** 2. in
  Array.init n (fun i ->
      let flux_right = if i = n - 1 then 0. else df.(i) *. (u.(i + 1) -. u.(i)) in
      let flux_left = if i = 0 then 0. else df.(i - 1) *. (u.(i) -. u.(i - 1)) in
      (flux_right -. flux_left) /. (h2 *. cell_weight n i))

(* Tridiagonal representation of L (same stencil as [apply_operator]). *)
let operator_tridiag p df =
  let n = p.nx in
  let h2 = dx p ** 2. in
  let sub = Array.make (n - 1) 0.
  and diag = Array.make n 0.
  and sup = Array.make (n - 1) 0. in
  for i = 0 to n - 1 do
    let h2i = h2 *. cell_weight n i in
    let dr = if i = n - 1 then 0. else df.(i) /. h2i in
    let dl = if i = 0 then 0. else df.(i - 1) /. h2i in
    diag.(i) <- -.(dr +. dl);
    if i < n - 1 then sup.(i) <- dr;
    if i > 0 then sub.(i - 1) <- dl
  done;
  Tridiag.make ~sub ~diag ~sup

(* (I + c L) as a tridiagonal matrix. *)
let shifted c l =
  let n = Array.length l.Tridiag.diag in
  Tridiag.make
    ~sub:(Array.map (fun v -> c *. v) l.Tridiag.sub)
    ~diag:(Array.init n (fun i -> 1. +. (c *. l.Tridiag.diag.(i))))
    ~sup:(Array.map (fun v -> c *. v) l.Tridiag.sup)

let logistic_reaction_step ~r ~k : reaction_step =
 fun ~x:_ ~t ~dt ~u ->
  if u = 0. then 0.
  else begin
    let integral = Quadrature.simpson r ~a:t ~b:(t +. dt) ~n:8 in
    Ode.logistic_varying_r ~r_integral:(fun _ -> integral) ~k ~n0:u dt
  end

(* Second-order (Heun) increment of the reaction term over [t, t+dt]. *)
let reaction_rk2 p xs t dt u =
  Array.mapi
    (fun i ui ->
      let x = xs.(i) in
      let k1 = p.reaction ~x ~t ~u:ui in
      let k2 = p.reaction ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
      dt *. (k1 +. k2) /. 2.)
    u

(* One macro time step of size dt, dispatching on the scheme.  For
   FTCS the caller has already split dt below the CFL limit. *)
let step p xs df l scheme t dt u =
  match scheme with
  | Ftcs ->
    let lu = apply_operator p df u in
    let dr = reaction_rk2 p xs t dt u in
    Array.mapi (fun i ui -> ui +. (dt *. lu.(i)) +. dr.(i)) u
  | Imex theta ->
    (* (I - theta dt L) u' = (I + (1-theta) dt L) u + RK2 reaction *)
    let explicit = Tridiag.mv (shifted ((1. -. theta) *. dt) l) u in
    let dr = reaction_rk2 p xs t dt u in
    let rhs = Array.mapi (fun i v -> v +. dr.(i)) explicit in
    Tridiag.solve (shifted (-.(theta *. dt)) l) rhs
  | Strang react ->
    let half = dt /. 2. in
    let u1 = Array.mapi (fun i ui -> react ~x:xs.(i) ~t ~dt:half ~u:ui) u in
    (* Crank--Nicolson diffusion over the full step. *)
    let explicit = Tridiag.mv (shifted (dt /. 2.) l) u1 in
    let u2 = Tridiag.solve (shifted (-.(dt /. 2.)) l) explicit in
    Array.mapi
      (fun i ui -> react ~x:xs.(i) ~t:(t +. half) ~dt:half ~u:ui)
      u2

let m_solves = Obs.Metrics.counter "pde.solves"
let m_steps = Obs.Metrics.counter "pde.steps"
let m_solve_ns = Obs.Metrics.histogram "pde.solve_ns"
let m_step_ns = Obs.Metrics.histogram "pde.step_ns"

let solve ?(scheme = Imex 0.5) ?(dt = 1e-3) p ~times =
  assert (dt > 0.);
  (match scheme with
  | Imex theta ->
    if theta < 0.5 || theta > 1. then
      invalid_arg "Pde.solve: theta must be in [0.5, 1]"
  | Ftcs | Strang _ -> ());
  let xs = grid p in
  let df = face_diffusion p xs in
  let l = operator_tridiag p df in
  let dt_macro =
    match scheme with
    | Ftcs ->
      let cfl = cfl_limit p in
      if Float.is_finite cfl then Float.min dt (0.9 *. cfl) else dt
    | Imex _ | Strang _ -> dt
  in
  (* Timing syscalls only happen when observability is on; the numeric
     path is untouched either way. *)
  let obs_on = Obs.enabled () in
  let solve_start = if obs_on then Obs.now_ns () else 0 in
  let steps = ref 0 in
  let u = ref (Array.map p.initial xs) and t = ref p.t0 in
  let snapshots = ref [ (p.t0, Array.copy !u) ] in
  Array.iter
    (fun target ->
      if target < !t -. 1e-12 then
        invalid_arg "Pde.solve: times must be increasing and >= t0";
      while target -. !t > 1e-12 do
        let step_dt = Float.min dt_macro (target -. !t) in
        if obs_on then begin
          let t0 = Obs.now_ns () in
          u := step p xs df l scheme !t step_dt !u;
          Obs.Metrics.observe m_step_ns (float_of_int (Obs.now_ns () - t0))
        end
        else u := step p xs df l scheme !t step_dt !u;
        incr steps;
        t := !t +. step_dt
      done;
      t := target;
      snapshots := (target, Array.copy !u) :: !snapshots)
    times;
  if obs_on then begin
    Obs.Metrics.incr m_solves;
    Obs.Metrics.incr ~by:!steps m_steps;
    Obs.Metrics.observe m_solve_ns (float_of_int (Obs.now_ns () - solve_start))
  end;
  let snaps = Array.of_list (List.rev !snapshots) in
  {
    xs;
    ts = Array.map fst snaps;
    values = Array.map snd snaps;
  }

let eval sol ~x ~t =
  (* values.(it).(ix): bilinear wants values.(ix).(it); transpose view
     via a small wrapper to avoid materialising. *)
  let nt = Array.length sol.ts and nx = Array.length sol.xs in
  assert (nt >= 1 && nx >= 1);
  let clampf lo hi v = Float.max lo (Float.min hi v) in
  let x = clampf sol.xs.(0) sol.xs.(nx - 1) x in
  let t = clampf sol.ts.(0) sol.ts.(nt - 1) t in
  let i = if nx = 1 then 0 else Interp.bracket sol.xs x in
  let j = if nt = 1 then 0 else Interp.bracket sol.ts t in
  let i1 = Stdlib.min (i + 1) (nx - 1) and j1 = Stdlib.min (j + 1) (nt - 1) in
  let wx = if i1 = i then 0. else (x -. sol.xs.(i)) /. (sol.xs.(i1) -. sol.xs.(i)) in
  let wt = if j1 = j then 0. else (t -. sol.ts.(j)) /. (sol.ts.(j1) -. sol.ts.(j)) in
  ((1. -. wx) *. (1. -. wt) *. sol.values.(j).(i))
  +. (wx *. (1. -. wt) *. sol.values.(j).(i1))
  +. ((1. -. wx) *. wt *. sol.values.(j1).(i))
  +. (wx *. wt *. sol.values.(j1).(i1))

let snapshot sol ~t =
  let nt = Array.length sol.ts in
  let best = ref 0 in
  for j = 1 to nt - 1 do
    if Float.abs (sol.ts.(j) -. t) < Float.abs (sol.ts.(!best) -. t) then
      best := j
  done;
  Array.copy sol.values.(!best)

let mass sol ~it =
  Quadrature.trapezoid_sampled ~xs:sol.xs ~ys:sol.values.(it)
