(* The reaction term, specialised by shape.  [Logistic]/[Linear] name
   the paper's two models directly so hot loops can dispatch once per
   solve and run unboxed float arithmetic per cell; [Custom] keeps the
   fully general closure (floats box at every call — the per-cell
   closure-call floor the panel path removes for the named shapes).
   [reaction_eval] is the single semantics: every path, reference or
   fast, scalar or panel, computes exactly its floating-point
   expressions. *)
type reaction =
  | Logistic of { r : float -> float; k : float }
  | Linear of { r : float -> float }
  | Custom of (x:float -> t:float -> u:float -> float)

let reaction_eval re ~x ~t ~u =
  match re with
  | Logistic { r; k } -> r t *. u *. (1. -. (u /. k))
  | Linear { r } -> r t *. u
  | Custom f -> f ~x ~t ~u

type problem = {
  xl : float;
  xr : float;
  nx : int;
  diffusion : float -> float;
  reaction : reaction;
  initial : float -> float;
  t0 : float;
}

type reaction_step = x:float -> t:float -> dt:float -> u:float -> float

type scheme = Ftcs | Imex of float | Strang of reaction_step

type solution = {
  xs : float array;
  ts : float array;
  values : float array array;
}

let grid p =
  assert (p.nx >= 3 && p.xr > p.xl);
  Vec.linspace p.xl p.xr p.nx

let dx p = (p.xr -. p.xl) /. float_of_int (p.nx - 1)

(* Face diffusivities d_{i+1/2}, arithmetic mean of node values. *)
let face_diffusion p xs =
  Array.init (p.nx - 1) (fun i ->
      (p.diffusion xs.(i) +. p.diffusion xs.(i + 1)) /. 2.)

(* CFL bound from an already-built grid, so [solve] (which owns one)
   never rebuilds it just to size the FTCS step. *)
let cfl_of p xs =
  let dmax =
    Array.fold_left (fun acc x -> Float.max acc (p.diffusion x)) 0. xs
  in
  let h = dx p in
  if dmax <= 0. then infinity else h *. h /. (2. *. dmax)

let cfl_limit p = cfl_of p (grid p)

(* Finite-volume discretisation of (d u_x)_x with zero-flux faces:
   (L u)_i = (F_{i+1/2} - F_{i-1/2}) / (h c_i),  F = d (u_{i+1} - u_i)/h,
   where boundary cells have half volume (c = 1/2).  Equivalent to the
   second-order mirrored-ghost stencil at the boundaries, and it makes
   the trapezoid integral of u an exact invariant of pure diffusion. *)
let cell_weight n i = if i = 0 || i = n - 1 then 0.5 else 1.

let apply_operator p df u =
  let n = p.nx in
  let h2 = dx p ** 2. in
  Array.init n (fun i ->
      let flux_right = if i = n - 1 then 0. else df.(i) *. (u.(i + 1) -. u.(i)) in
      let flux_left = if i = 0 then 0. else df.(i - 1) *. (u.(i) -. u.(i - 1)) in
      (flux_right -. flux_left) /. (h2 *. cell_weight n i))

(* Tridiagonal representation of L (same stencil as [apply_operator]). *)
let operator_tridiag p df =
  let n = p.nx in
  let h2 = dx p ** 2. in
  let sub = Array.make (n - 1) 0.
  and diag = Array.make n 0.
  and sup = Array.make (n - 1) 0. in
  for i = 0 to n - 1 do
    let h2i = h2 *. cell_weight n i in
    let dr = if i = n - 1 then 0. else df.(i) /. h2i in
    let dl = if i = 0 then 0. else df.(i - 1) /. h2i in
    diag.(i) <- -.(dr +. dl);
    if i < n - 1 then sup.(i) <- dr;
    if i > 0 then sub.(i - 1) <- dl
  done;
  Tridiag.make ~sub ~diag ~sup

(* (I + c L) as a tridiagonal matrix. *)
let shifted c l =
  let n = Array.length l.Tridiag.diag in
  Tridiag.make
    ~sub:(Array.map (fun v -> c *. v) l.Tridiag.sub)
    ~diag:(Array.init n (fun i -> 1. +. (c *. l.Tridiag.diag.(i))))
    ~sup:(Array.map (fun v -> c *. v) l.Tridiag.sup)

let logistic_reaction_step ~r ~k : reaction_step =
  (* The r(t)-integral is x-independent, so the one-slot memo turns the
     per-cell Simpson evaluation into a per-(t, dt) one — same value,
     bit for bit, since a hit returns the previously computed float.
     [current] feeds the cached value through Ode's closed form without
     allocating a fresh closure per cell.  Stateful: build one step
     closure per solve; do not share across domains. *)
  let integral = Quadrature.simpson_memo r ~n:8 in
  let current = ref 0. in
  let r_integral _ = !current in
  fun ~x:_ ~t ~dt ~u ->
    if u = 0. then 0.
    else begin
      current := integral ~a:t ~b:(t +. dt);
      Ode.logistic_varying_r ~r_integral ~k ~n0:u dt
    end

let linear_reaction_step ~r : reaction_step =
  (* Exact flow of u' = r(t) u: u e^{int r}.  Same one-slot memo trick
     as [logistic_reaction_step]; stateful, one closure per solve. *)
  let integral = Quadrature.simpson_memo r ~n:8 in
  fun ~x:_ ~t ~dt ~u ->
    if u = 0. then 0. else u *. exp (integral ~a:t ~b:(t +. dt))

(* Second-order (Heun) increment of the reaction term over [t, t+dt]. *)
let reaction_rk2 p xs t dt u =
  Array.mapi
    (fun i ui ->
      let x = xs.(i) in
      let k1 = reaction_eval p.reaction ~x ~t ~u:ui in
      let k2 = reaction_eval p.reaction ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
      dt *. (k1 +. k2) /. 2.)
    u

(* One macro time step of size dt, dispatching on the scheme.  For
   FTCS the caller has already split dt below the CFL limit.

   This is the RETAINED REFERENCE STEPPER: it allocates fresh arrays
   and operators every step, exactly as the original solver did.  The
   workspace fast path below must stay bit-identical to it — same
   floating-point operations in the same order — which
   [test/test_pde_perf.ml] enforces per cell.  Do not "optimise" this
   function; it is the oracle. *)
let step p xs df l scheme t dt u =
  match scheme with
  | Ftcs ->
    let lu = apply_operator p df u in
    let dr = reaction_rk2 p xs t dt u in
    Array.mapi (fun i ui -> ui +. (dt *. lu.(i)) +. dr.(i)) u
  | Imex theta ->
    (* (I - theta dt L) u' = (I + (1-theta) dt L) u + RK2 reaction *)
    let explicit = Tridiag.mv (shifted ((1. -. theta) *. dt) l) u in
    let dr = reaction_rk2 p xs t dt u in
    let rhs = Array.mapi (fun i v -> v +. dr.(i)) explicit in
    Tridiag.solve (shifted (-.(theta *. dt)) l) rhs
  | Strang react ->
    let half = dt /. 2. in
    let u1 = Array.mapi (fun i ui -> react ~x:xs.(i) ~t ~dt:half ~u:ui) u in
    (* Crank--Nicolson diffusion over the full step. *)
    let explicit = Tridiag.mv (shifted (dt /. 2.) l) u1 in
    let u2 = Tridiag.solve (shifted (-.(dt /. 2.)) l) explicit in
    Array.mapi
      (fun i ui -> react ~x:xs.(i) ~t:(t +. half) ~dt:half ~u:ui)
      u2

(* --- workspace fast path ---------------------------------------- *)

(* Everything a solve's hot loop needs, allocated once up front: a
   double-buffered state, rhs/stage scratch, the hoisted dx^2
   cell-weight table, and (for the implicit schemes) the shifted
   operators and their Thomas factorization for the macro step size.
   Ragged final partial steps before a snapshot target build throwaway
   operators and leave the dt_macro cache intact. *)
type workspace = {
  mutable w_u : float array;     (* current state *)
  mutable w_next : float array;  (* written by the step, then swapped *)
  w_rhs : float array;
  w_stage : float array;
  w_h2w : float array;           (* dx^2 * cell_weight, per cell *)
  w_dt_macro : float;
  mutable w_ops : (Tridiag.t * Tridiag.factored) option;
  mutable w_reuses : int;        (* steps served by the cached ops *)
  mutable w_rebuilds : int;      (* operator (re)builds, incl. the first *)
}

let make_workspace p u0 dt_macro =
  let n = p.nx in
  let h2 = dx p ** 2. in
  {
    w_u = u0;
    w_next = Array.make n 0.;
    w_rhs = Array.make n 0.;
    w_stage = Array.make n 0.;
    w_h2w = Array.init n (fun i -> h2 *. cell_weight n i);
    w_dt_macro = dt_macro;
    w_ops = None;
    w_reuses = 0;
    w_rebuilds = 0;
  }

(* (I + c L) pairs for one step of size dt: the explicit operator and
   the factorized implicit one.  Same [shifted] coefficients as the
   reference stepper. *)
let build_ops l scheme dt =
  match scheme with
  | Ftcs -> assert false (* no implicit operator in FTCS *)
  | Imex theta ->
    ( shifted ((1. -. theta) *. dt) l,
      Tridiag.factorize (shifted (-.(theta *. dt)) l) )
  | Strang _ ->
    (shifted (dt /. 2.) l, Tridiag.factorize (shifted (-.(dt /. 2.)) l))

let ops_for ws l scheme dt =
  if dt = ws.w_dt_macro then (
    match ws.w_ops with
    | Some ops ->
      ws.w_reuses <- ws.w_reuses + 1;
      ops
    | None ->
      let ops = build_ops l scheme dt in
      ws.w_ops <- Some ops;
      ws.w_rebuilds <- ws.w_rebuilds + 1;
      ops)
  else begin
    ws.w_rebuilds <- ws.w_rebuilds + 1;
    build_ops l scheme dt
  end

(* Allocation-free step into [ws.w_next], then a buffer swap.  Each
   branch performs the reference stepper's floating-point operations in
   the same order (and calls [p.reaction] / [react] in the same cell
   order), so outputs are bit-identical; only the array churn is gone. *)
let step_ws p xs df l scheme ws t dt =
  let n = p.nx in
  let u = ws.w_u and next = ws.w_next in
  (match scheme with
  | Ftcs ->
    for i = 0 to n - 1 do
      let flux_right = if i = n - 1 then 0. else df.(i) *. (u.(i + 1) -. u.(i)) in
      let flux_left = if i = 0 then 0. else df.(i - 1) *. (u.(i) -. u.(i - 1)) in
      let lu = (flux_right -. flux_left) /. ws.w_h2w.(i) in
      let x = xs.(i) in
      let ui = u.(i) in
      let k1 = reaction_eval p.reaction ~x ~t ~u:ui in
      let k2 = reaction_eval p.reaction ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
      next.(i) <- ui +. (dt *. lu) +. (dt *. (k1 +. k2) /. 2.)
    done
  | Imex _ ->
    let exp_op, imp = ops_for ws l scheme dt in
    Tridiag.mv_into exp_op u ~dst:ws.w_rhs;
    for i = 0 to n - 1 do
      let x = xs.(i) in
      let ui = u.(i) in
      let k1 = reaction_eval p.reaction ~x ~t ~u:ui in
      let k2 = reaction_eval p.reaction ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
      ws.w_rhs.(i) <- ws.w_rhs.(i) +. (dt *. (k1 +. k2) /. 2.)
    done;
    Tridiag.solve_factored imp ~src:ws.w_rhs ~dst:next
  | Strang react ->
    let half = dt /. 2. in
    let exp_op, imp = ops_for ws l scheme dt in
    let stage = ws.w_stage in
    for i = 0 to n - 1 do
      stage.(i) <- react ~x:xs.(i) ~t ~dt:half ~u:u.(i)
    done;
    Tridiag.mv_into exp_op stage ~dst:ws.w_rhs;
    Tridiag.solve_factored imp ~src:ws.w_rhs ~dst:stage;
    for i = 0 to n - 1 do
      next.(i) <- react ~x:xs.(i) ~t:(t +. half) ~dt:half ~u:stage.(i)
    done);
  ws.w_u <- next;
  ws.w_next <- u

(* --- solver entry point ------------------------------------------ *)

let reference_env_var = "DLOSN_BENCH_REFERENCE_SOLVER"

let use_reference =
  ref
    (match Sys.getenv_opt reference_env_var with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let set_use_reference_stepper b = use_reference := b
let use_reference_stepper () = !use_reference

let m_solves = Obs.Metrics.counter "pde.solves"
let m_steps = Obs.Metrics.counter "pde.steps"
let m_ws_reuses = Obs.Metrics.counter "pde.workspace_reuses"
let m_ws_rebuilds = Obs.Metrics.counter "pde.factor_rebuilds"
let m_solve_ns = Obs.Metrics.histogram "pde.solve_ns"
let m_step_ns = Obs.Metrics.histogram "pde.step_ns"

let solve ?(scheme = Imex 0.5) ?(dt = 1e-3) ?reference p ~times =
  assert (dt > 0.);
  (match scheme with
  | Imex theta ->
    if theta < 0.5 || theta > 1. then
      invalid_arg "Pde.solve: theta must be in [0.5, 1]"
  | Ftcs | Strang _ -> ());
  let reference =
    match reference with Some b -> b | None -> !use_reference
  in
  let xs = grid p in
  let df = face_diffusion p xs in
  let l = operator_tridiag p df in
  let dt_macro =
    match scheme with
    | Ftcs ->
      let cfl = cfl_of p xs in
      if Float.is_finite cfl then Float.min dt (0.9 *. cfl) else dt
    | Imex _ | Strang _ -> dt
  in
  (* Timing syscalls only happen when observability is on; the numeric
     path is untouched either way. *)
  let obs_on = Obs.enabled () in
  let solve_start = if obs_on then Obs.now_ns () else 0 in
  let steps = ref 0 in
  let u0 = Array.map p.initial xs in
  let ws = if reference then None else Some (make_workspace p u0 dt_macro) in
  let u = ref u0 and t = ref p.t0 in
  let advance step_dt =
    match ws with
    | None -> u := step p xs df l scheme !t step_dt !u
    | Some w -> step_ws p xs df l scheme w !t step_dt
  in
  let current () = match ws with None -> !u | Some w -> w.w_u in
  let snapshots = ref [ (p.t0, Array.copy u0) ] in
  Array.iter
    (fun target ->
      if target < !t -. 1e-12 then
        invalid_arg "Pde.solve: times must be increasing and >= t0";
      while target -. !t > 1e-12 do
        let step_dt = Float.min dt_macro (target -. !t) in
        if obs_on then begin
          let t0 = Obs.now_ns () in
          advance step_dt;
          Obs.Metrics.observe m_step_ns (float_of_int (Obs.now_ns () - t0))
        end
        else advance step_dt;
        incr steps;
        t := !t +. step_dt
      done;
      t := target;
      snapshots := (target, Array.copy (current ())) :: !snapshots)
    times;
  if obs_on then begin
    Obs.Metrics.incr m_solves;
    Obs.Metrics.incr ~by:!steps m_steps;
    (match ws with
    | Some w ->
      Obs.Metrics.incr ~by:w.w_reuses m_ws_reuses;
      Obs.Metrics.incr ~by:w.w_rebuilds m_ws_rebuilds
    | None -> ());
    Obs.Metrics.observe m_solve_ns (float_of_int (Obs.now_ns () - solve_start))
  end;
  let snaps = Array.of_list (List.rev !snapshots) in
  {
    xs;
    ts = Array.map fst snaps;
    values = Array.map snd snaps;
  }

(* --- fused panel path -------------------------------------------- *)

(* A panel steps S problems sharing (domain, grid, t0, dt, scheme)
   through the time loop in lockstep: one batched Thomas sweep per
   step services every story with contiguous inner-loop access
   (structure-of-arrays [Tridiag.panel]s, story-major rows), the
   x-independent per-step scalars (r(t), Simpson integrals of r, their
   exponentials) are hoisted out of the cell loops once per story, and
   the [Logistic]/[Linear] reactions run as unboxed float arithmetic.
   Column [s] of the result is bit-identical to [solve] on story [s]
   alone — the loop interchange never mixes stories, the hoisted
   scalars are exactly the values the scalar path computes per cell
   (or memoizes, for the Strang Simpson integral), and every batched
   kernel replicates its scalar counterpart's operation order. *)

type panel_story = {
  ps_diffusion : float -> float;
  ps_reaction : reaction;
  ps_initial : float -> float;
}

type panel_problem = {
  pp_xl : float;
  pp_xr : float;
  pp_nx : int;
  pp_t0 : float;
  pp_stories : panel_story array;
}

type panel_scheme = Panel_imex of float | Panel_strang

let problem_of_story pp st =
  {
    xl = pp.pp_xl;
    xr = pp.pp_xr;
    nx = pp.pp_nx;
    t0 = pp.pp_t0;
    diffusion = st.ps_diffusion;
    reaction = st.ps_reaction;
    initial = st.ps_initial;
  }

(* The scalar scheme a panel story runs under — also the definition of
   what the fused path must reproduce.  Strang panels derive the exact
   reaction flow from the reaction shape; a [Custom] closure carries no
   derivable flow, so it is rejected (use [Panel_imex], where the
   closure path applies, or the scalar [solve] with an explicit
   [Strang] step). *)
let scalar_scheme_of_story scheme st =
  match scheme with
  | Panel_imex theta -> Imex theta
  | Panel_strang -> (
    match st.ps_reaction with
    | Logistic { r; k } -> Strang (logistic_reaction_step ~r ~k)
    | Linear { r } -> Strang (linear_reaction_step ~r)
    | Custom _ ->
      invalid_arg
        "Pde.solve_panel: Strang panels need a Logistic or Linear reaction")

(* Reaction tags for the per-cell dispatch (int match, no closure). *)
let tag_logistic = 0
let tag_linear = 1
let tag_custom = 2

(* All the panel buffers for one (nx, stories) shape.  Everything is
   rebuilt per solve except the allocations themselves; [pb_ops_dt]
   tracks which step size the shifted operators + factorization
   currently hold (NaN = none), so ragged final partial steps refill
   the same buffers and the macro ops are restored on the next full
   step. *)
type panel_bufs = {
  pb_nx : int;
  pb_ns : int;
  mutable pb_u : Tridiag.panel;
  mutable pb_next : Tridiag.panel;
  pb_rhs : Tridiag.panel;
  pb_stage : Tridiag.panel;
  (* the FV operator L, per story *)
  pb_l_sub : Tridiag.panel;
  pb_l_diag : Tridiag.panel;
  pb_l_sup : Tridiag.panel;
  (* shifted explicit (I + cE L) and implicit (I + cI L) operators *)
  pb_e_sub : Tridiag.panel;
  pb_e_diag : Tridiag.panel;
  pb_e_sup : Tridiag.panel;
  pb_i_sub : Tridiag.panel;
  pb_i_diag : Tridiag.panel;
  pb_i_sup : Tridiag.panel;
  (* Thomas factorization of the implicit operator *)
  pb_f_c : Tridiag.panel;
  pb_f_m : Tridiag.panel;
  mutable pb_ops_dt : float;
  (* per-story hoisted scalars: r(t), r(t+dt), reaction flow factors *)
  pb_rt : float array;
  pb_rt2 : float array;
  pb_flow : float array;
  pb_k : float array;
  pb_tag : int array;
}

let make_panel_bufs ~nx ~ns =
  let p () = Tridiag.panel_create ~n:nx ~stories:ns in
  {
    pb_nx = nx;
    pb_ns = ns;
    pb_u = p ();
    pb_next = p ();
    pb_rhs = p ();
    pb_stage = p ();
    pb_l_sub = p ();
    pb_l_diag = p ();
    pb_l_sup = p ();
    pb_e_sub = p ();
    pb_e_diag = p ();
    pb_e_sup = p ();
    pb_i_sub = p ();
    pb_i_diag = p ();
    pb_i_sup = p ();
    pb_f_c = p ();
    pb_f_m = p ();
    pb_ops_dt = Float.nan;
    pb_rt = Array.make ns 0.;
    pb_rt2 = Array.make ns 0.;
    pb_flow = Array.make ns 0.;
    pb_k = Array.make ns 0.;
    pb_tag = Array.make ns tag_custom;
  }

(* A reusable panel workspace: keeps the buffer block alive across
   solves (one per fit restart / pool worker — at any instant a single
   domain owns it; do not share concurrently).  Shape changes
   reallocate. *)
type panel_workspace = {
  mutable pw_bufs : panel_bufs option;
  mutable pw_reuses : int;
  mutable pw_rebuilds : int;
}

let panel_workspace () = { pw_bufs = None; pw_reuses = 0; pw_rebuilds = 0 }

let panel_workspace_stats ws = (ws.pw_reuses, ws.pw_rebuilds)

let m_panel_solves = Obs.Metrics.counter "pde.panel_solves"
let m_panel_stories = Obs.Metrics.counter "pde.panel_stories"
let m_panel_steps = Obs.Metrics.counter "pde.panel_steps"
let m_panel_reuses = Obs.Metrics.counter "pde.panel_reuses"
let m_panel_rebuilds = Obs.Metrics.counter "pde.panel_rebuilds"
let m_panel_solve_ns = Obs.Metrics.histogram "pde.panel_solve_ns"

let ensure_panel_bufs ws ~nx ~ns ~obs_on =
  match ws.pw_bufs with
  | Some b when b.pb_nx = nx && b.pb_ns = ns ->
    ws.pw_reuses <- ws.pw_reuses + 1;
    if obs_on then Obs.Metrics.incr m_panel_reuses;
    b.pb_ops_dt <- Float.nan;
    b
  | _ ->
    let b = make_panel_bufs ~nx ~ns in
    ws.pw_bufs <- Some b;
    ws.pw_rebuilds <- ws.pw_rebuilds + 1;
    if obs_on then Obs.Metrics.incr m_panel_rebuilds;
    b

(* Fill the shifted operator panels and factorize the implicit one for
   step size [dt].  Coefficients replicate [build_ops]/[shifted]: the
   per-element expressions are identical, so the factorization matches
   the scalar one bit for bit. *)
let panel_ops b scheme dt =
  if not (dt = b.pb_ops_dt) then begin
    let ce, ci =
      match scheme with
      | Panel_imex theta -> ((1. -. theta) *. dt, -.(theta *. dt))
      | Panel_strang -> (dt /. 2., -.(dt /. 2.))
    in
    let nx = b.pb_nx and ns = b.pb_ns in
    let open Bigarray.Array2 in
    for i = 0 to nx - 1 do
      for s = 0 to ns - 1 do
        let ld = unsafe_get b.pb_l_diag i s in
        unsafe_set b.pb_e_diag i s (1. +. (ce *. ld));
        unsafe_set b.pb_i_diag i s (1. +. (ci *. ld))
      done
    done;
    for i = 0 to nx - 2 do
      for s = 0 to ns - 1 do
        let lsub = unsafe_get b.pb_l_sub i s in
        let lsup = unsafe_get b.pb_l_sup i s in
        unsafe_set b.pb_e_sub i s (ce *. lsub);
        unsafe_set b.pb_e_sup i s (ce *. lsup);
        unsafe_set b.pb_i_sub i s (ci *. lsub);
        unsafe_set b.pb_i_sup i s (ci *. lsup)
      done
    done;
    Tridiag.factorize_batch ~sub:b.pb_i_sub ~diag:b.pb_i_diag ~sup:b.pb_i_sup
      ~c:b.pb_f_c ~m:b.pb_f_m;
    b.pb_ops_dt <- dt
  end

(* One lockstep macro step of size [dt] for the whole panel, into
   [pb_next], then a buffer swap. *)
let step_panel b stories xs scheme t dt =
  let nx = b.pb_nx and ns = b.pb_ns in
  let open Bigarray.Array2 in
  panel_ops b scheme dt;
  (match scheme with
  | Panel_imex _ ->
    (* rhs <- (I + cE L) u, then += RK2 (Heun) reaction increment *)
    Tridiag.mv_batch ~sub:b.pb_e_sub ~diag:b.pb_e_diag ~sup:b.pb_e_sup
      ~src:b.pb_u ~dst:b.pb_rhs;
    for s = 0 to ns - 1 do
      match stories.(s).ps_reaction with
      | Logistic { r; k } ->
        b.pb_rt.(s) <- r t;
        b.pb_rt2.(s) <- r (t +. dt);
        b.pb_k.(s) <- k
      | Linear { r } ->
        b.pb_rt.(s) <- r t;
        b.pb_rt2.(s) <- r (t +. dt)
      | Custom _ -> ()
    done;
    for i = 0 to nx - 1 do
      let x = xs.(i) in
      for s = 0 to ns - 1 do
        let ui = unsafe_get b.pb_u i s in
        let tag = b.pb_tag.(s) in
        let dr =
          if tag = tag_logistic then begin
            (* same association as [reaction_eval]'s Logistic arm, with
               r(t)/r(t+dt) hoisted per story (identical floats: r is
               deterministic in t) *)
            let k = b.pb_k.(s) in
            let k1 = b.pb_rt.(s) *. ui *. (1. -. (ui /. k)) in
            let u2 = ui +. (dt *. k1) in
            let k2 = b.pb_rt2.(s) *. u2 *. (1. -. (u2 /. k)) in
            dt *. (k1 +. k2) /. 2.
          end
          else if tag = tag_linear then begin
            let k1 = b.pb_rt.(s) *. ui in
            let k2 = b.pb_rt2.(s) *. (ui +. (dt *. k1)) in
            dt *. (k1 +. k2) /. 2.
          end
          else begin
            let f =
              match stories.(s).ps_reaction with
              | Custom f -> f
              | Logistic _ | Linear _ -> assert false
            in
            let k1 = f ~x ~t ~u:ui in
            let k2 = f ~x ~t:(t +. dt) ~u:(ui +. (dt *. k1)) in
            dt *. (k1 +. k2) /. 2.
          end
        in
        unsafe_set b.pb_rhs i s (unsafe_get b.pb_rhs i s +. dr)
      done
    done;
    Tridiag.solve_factored_batch ~sub:b.pb_i_sub ~c:b.pb_f_c ~m:b.pb_f_m
      ~src:b.pb_rhs ~dst:b.pb_next
  | Panel_strang ->
    let half = dt /. 2. in
    (* First half reaction step at t.  The flow factor exp(±∫r) is
       x-independent: computed once per story, exactly the value the
       scalar path's one-slot Simpson memo hands every cell. *)
    for s = 0 to ns - 1 do
      match stories.(s).ps_reaction with
      | Logistic { r; k } ->
        b.pb_flow.(s) <-
          exp (-.Quadrature.simpson r ~a:t ~b:(t +. half) ~n:8);
        b.pb_k.(s) <- k
      | Linear { r } ->
        b.pb_flow.(s) <- exp (Quadrature.simpson r ~a:t ~b:(t +. half) ~n:8)
      | Custom _ -> assert false (* rejected before stepping *)
    done;
    for i = 0 to nx - 1 do
      for s = 0 to ns - 1 do
        let ui = unsafe_get b.pb_u i s in
        let v =
          if ui = 0. then 0.
          else if b.pb_tag.(s) = tag_logistic then
            (* Ode.logistic_varying_r's closed form, flow hoisted *)
            let k = b.pb_k.(s) in
            k /. (1. +. (((k /. ui) -. 1.) *. b.pb_flow.(s)))
          else ui *. b.pb_flow.(s)
        in
        unsafe_set b.pb_stage i s v
      done
    done;
    (* Crank--Nicolson diffusion over the full step *)
    Tridiag.mv_batch ~sub:b.pb_e_sub ~diag:b.pb_e_diag ~sup:b.pb_e_sup
      ~src:b.pb_stage ~dst:b.pb_rhs;
    Tridiag.solve_factored_batch ~sub:b.pb_i_sub ~c:b.pb_f_c ~m:b.pb_f_m
      ~src:b.pb_rhs ~dst:b.pb_stage;
    (* Second half reaction step at t + half (integral over
       [t+half, (t+half)+half], matching the scalar call order). *)
    let t2 = t +. half in
    for s = 0 to ns - 1 do
      match stories.(s).ps_reaction with
      | Logistic { r; _ } ->
        b.pb_flow.(s) <-
          exp (-.Quadrature.simpson r ~a:t2 ~b:(t2 +. half) ~n:8)
      | Linear { r } ->
        b.pb_flow.(s) <- exp (Quadrature.simpson r ~a:t2 ~b:(t2 +. half) ~n:8)
      | Custom _ -> assert false
    done;
    for i = 0 to nx - 1 do
      for s = 0 to ns - 1 do
        let ui = unsafe_get b.pb_stage i s in
        let v =
          if ui = 0. then 0.
          else if b.pb_tag.(s) = tag_logistic then
            let k = b.pb_k.(s) in
            k /. (1. +. (((k /. ui) -. 1.) *. b.pb_flow.(s)))
          else ui *. b.pb_flow.(s)
        in
        unsafe_set b.pb_next i s v
      done
    done);
  let u = b.pb_u in
  b.pb_u <- b.pb_next;
  b.pb_next <- u

let solve_panel ?(scheme = Panel_imex 0.5) ?(dt = 1e-3) ?reference ?workspace
    pp ~times =
  assert (dt > 0.);
  (match scheme with
  | Panel_imex theta ->
    if theta < 0.5 || theta > 1. then
      invalid_arg "Pde.solve_panel: theta must be in [0.5, 1]"
  | Panel_strang -> ());
  let stories = pp.pp_stories in
  let ns = Array.length stories in
  if ns = 0 then [||]
  else begin
    (* Validate every story's scheme pairing up front (this also
       rejects Custom-under-Strang before any work happens). *)
    let scalar_schemes =
      Array.map (fun st -> scalar_scheme_of_story scheme st) stories
    in
    let reference =
      match reference with Some b -> b | None -> !use_reference
    in
    if reference then
      (* The oracle: the panel is definitionally S independent scalar
         solves.  Used by the bit-identity gates. *)
      Array.mapi
        (fun s st ->
          solve ~scheme:scalar_schemes.(s) ~dt ~reference:true
            (problem_of_story pp st) ~times)
        stories
    else begin
      let obs_on = Obs.enabled () in
      let solve_start = if obs_on then Obs.now_ns () else 0 in
      let nx = pp.pp_nx in
      (* grid + operators once per panel, not per story: every story
         shares (xl, xr, nx), so [grid] is computed a single time. *)
      let p0 = problem_of_story pp stories.(0) in
      let xs = grid p0 in
      let ws = match workspace with Some w -> w | None -> panel_workspace () in
      let b = ensure_panel_bufs ws ~nx ~ns ~obs_on in
      let open Bigarray.Array2 in
      (* per-story FV operator L and initial state, packed into panels
         (packing copies exact values — nothing is recomputed) *)
      Array.iteri
        (fun s st ->
          let p = problem_of_story pp st in
          let df = face_diffusion p xs in
          let l = operator_tridiag p df in
          for i = 0 to nx - 1 do
            unsafe_set b.pb_l_diag i s l.Tridiag.diag.(i);
            unsafe_set b.pb_u i s (st.ps_initial xs.(i))
          done;
          for i = 0 to nx - 2 do
            unsafe_set b.pb_l_sub i s l.Tridiag.sub.(i);
            unsafe_set b.pb_l_sup i s l.Tridiag.sup.(i)
          done;
          b.pb_tag.(s) <-
            (match st.ps_reaction with
            | Logistic _ -> tag_logistic
            | Linear _ -> tag_linear
            | Custom _ -> tag_custom))
        stories;
      let dt_macro = dt in
      let steps = ref 0 in
      let t = ref pp.pp_t0 in
      let snapshot_of s = Array.init nx (fun i -> unsafe_get b.pb_u i s) in
      let snapshots = Array.map (fun _ -> ref []) stories in
      Array.iteri
        (fun s _ -> snapshots.(s) := [ (pp.pp_t0, snapshot_of s) ])
        stories;
      Array.iter
        (fun target ->
          if target < !t -. 1e-12 then
            invalid_arg "Pde.solve: times must be increasing and >= t0";
          while target -. !t > 1e-12 do
            let step_dt = Float.min dt_macro (target -. !t) in
            step_panel b stories xs scheme !t step_dt;
            incr steps;
            t := !t +. step_dt
          done;
          t := target;
          Array.iteri
            (fun s snaps -> snaps := (target, snapshot_of s) :: !snaps)
            snapshots)
        times;
      if obs_on then begin
        Obs.Metrics.incr m_panel_solves;
        Obs.Metrics.incr ~by:ns m_panel_stories;
        Obs.Metrics.incr ~by:!steps m_panel_steps;
        Obs.Metrics.observe m_panel_solve_ns
          (float_of_int (Obs.now_ns () - solve_start))
      end;
      Array.map
        (fun snaps ->
          let arr = Array.of_list (List.rev !snaps) in
          { xs; ts = Array.map fst arr; values = Array.map snd arr })
        snapshots
    end
  end

(* Top level, not per call: the old per-call [clampf] closure was an
   allocation on the prediction hot path. *)
let clampf lo hi v = Float.max lo (Float.min hi v)

(* values.(it).(ix): bilinear wants values.(ix).(it); transpose view
   via index juggling to avoid materialising.  A NaN query would sail
   through the clamps ([Float.min hi nan] is NaN) and turn the bracket
   search into garbage, so it is rejected up front. *)
let eval_core xs ts values nx nt x_lo x_hi t_lo t_hi ~x ~t =
  if Float.is_nan x || Float.is_nan t then
    invalid_arg
      (Printf.sprintf
         "Pde.eval: NaN input (x = %g, t = %g); clamping a NaN is \
          meaningless" x t);
  let x = clampf x_lo x_hi x in
  let t = clampf t_lo t_hi t in
  let i = if nx = 1 then 0 else Interp.bracket xs x in
  let j = if nt = 1 then 0 else Interp.bracket ts t in
  let i1 = Stdlib.min (i + 1) (nx - 1) and j1 = Stdlib.min (j + 1) (nt - 1) in
  let wx = if i1 = i then 0. else (x -. xs.(i)) /. (xs.(i1) -. xs.(i)) in
  let wt = if j1 = j then 0. else (t -. ts.(j)) /. (ts.(j1) -. ts.(j)) in
  ((1. -. wx) *. (1. -. wt) *. values.(j).(i))
  +. (wx *. (1. -. wt) *. values.(j).(i1))
  +. ((1. -. wx) *. wt *. values.(j1).(i))
  +. (wx *. wt *. values.(j1).(i1))

let evaluator sol =
  let nt = Array.length sol.ts and nx = Array.length sol.xs in
  assert (nt >= 1 && nx >= 1);
  let xs = sol.xs and ts = sol.ts and values = sol.values in
  let x_lo = xs.(0) and x_hi = xs.(nx - 1) in
  let t_lo = ts.(0) and t_hi = ts.(nt - 1) in
  fun ~x ~t -> eval_core xs ts values nx nt x_lo x_hi t_lo t_hi ~x ~t

let eval sol ~x ~t =
  let nt = Array.length sol.ts and nx = Array.length sol.xs in
  assert (nt >= 1 && nx >= 1);
  eval_core sol.xs sol.ts sol.values nx nt sol.xs.(0)
    sol.xs.(nx - 1) sol.ts.(0) sol.ts.(nt - 1) ~x ~t

let snapshot sol ~t =
  let nt = Array.length sol.ts in
  let best = ref 0 in
  for j = 1 to nt - 1 do
    if Float.abs (sol.ts.(j) -. t) < Float.abs (sol.ts.(!best) -. t) then
      best := j
  done;
  Array.copy sol.values.(!best)

let mass sol ~it =
  Quadrature.trapezoid_sampled ~xs:sol.xs ~ys:sol.values.(it)
