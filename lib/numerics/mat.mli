(** Dense row-major matrices and direct linear solvers.

    Sized for the library's needs (spline systems, Crank--Nicolson
    steps, least squares on small designs): plain [O(n^3)] LU with
    partial pivoting, no blocking. *)

type t

val create : int -> int -> float -> t
(** [create rows cols x] is a [rows x cols] matrix filled with [x]. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product.  Requires inner dimensions to agree. *)

val mv : t -> Vec.t -> Vec.t
(** Matrix--vector product. *)

type lu
(** Factorisation [P A = L U] with partial pivoting. *)

exception Singular
(** Raised by factorisation/solve when a pivot is (numerically) zero. *)

val lu_decompose : t -> lu
val lu_solve : lu -> Vec.t -> Vec.t

val solve : t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b].  @raise Singular if [a] is singular. *)

val inverse : t -> t
val determinant : t -> float

val solve_least_squares : t -> Vec.t -> Vec.t
(** [solve_least_squares a b] minimises [||a x - b||_2] via the normal
    equations — fine for the small, well-conditioned designs used
    here.  @raise Singular if [a^T a] is singular. *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
