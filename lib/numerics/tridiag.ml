type t = { sub : float array; diag : float array; sup : float array }

let make ~sub ~diag ~sup =
  let n = Array.length diag in
  assert (n >= 1);
  assert (Array.length sub = n - 1);
  assert (Array.length sup = n - 1);
  { sub; diag; sup }

let dim t = Array.length t.diag

let solve t b =
  let n = dim t in
  assert (Array.length b = n);
  (* Forward sweep with scratch copies; the classic Thomas algorithm. *)
  let c' = Array.make n 0. and d' = Array.make n 0. in
  let pivot0 = t.diag.(0) in
  if Float.abs pivot0 < 1e-300 then raise Mat.Singular;
  c'.(0) <- (if n > 1 then t.sup.(0) /. pivot0 else 0.);
  d'.(0) <- b.(0) /. pivot0;
  for i = 1 to n - 1 do
    let m = t.diag.(i) -. (t.sub.(i - 1) *. c'.(i - 1)) in
    if Float.abs m < 1e-300 then raise Mat.Singular;
    if i < n - 1 then c'.(i) <- t.sup.(i) /. m;
    d'.(i) <- (b.(i) -. (t.sub.(i - 1) *. d'.(i - 1))) /. m
  done;
  let x = Array.make n 0. in
  x.(n - 1) <- d'.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
  done;
  x

(* A precomputed Thomas factorization: [c] is the forward-swept
   super-diagonal c' and [m] the pivots, exactly the values the direct
   [solve] computes on every call.  [sub] aliases the source matrix's
   sub-diagonal (the matrix must not be mutated while the factorization
   is live).  [solve_factored] then performs only the O(n) d'-sweep and
   back-substitution, with the same floating-point operations in the
   same order as [solve] — outputs are bit-identical. *)
type factored = { f_sub : float array; f_c : float array; f_m : float array }

let factorize t =
  let n = dim t in
  let c = Array.make n 0. and m = Array.make n 0. in
  let pivot0 = t.diag.(0) in
  if Float.abs pivot0 < 1e-300 then raise Mat.Singular;
  m.(0) <- pivot0;
  c.(0) <- (if n > 1 then t.sup.(0) /. pivot0 else 0.);
  for i = 1 to n - 1 do
    let mi = t.diag.(i) -. (t.sub.(i - 1) *. c.(i - 1)) in
    if Float.abs mi < 1e-300 then raise Mat.Singular;
    m.(i) <- mi;
    if i < n - 1 then c.(i) <- t.sup.(i) /. mi
  done;
  { f_sub = t.sub; f_c = c; f_m = m }

let factored_dim f = Array.length f.f_m

let solve_factored f ~src ~dst =
  let n = factored_dim f in
  assert (Array.length src = n && Array.length dst = n);
  (* d'-sweep into dst (safe when src == dst: src.(i) is read before
     dst.(i) is written and earlier cells already hold d'), then
     back-substitution in place. *)
  dst.(0) <- src.(0) /. f.f_m.(0);
  for i = 1 to n - 1 do
    dst.(i) <- (src.(i) -. (f.f_sub.(i - 1) *. dst.(i - 1))) /. f.f_m.(i)
  done;
  for i = n - 2 downto 0 do
    dst.(i) <- dst.(i) -. (f.f_c.(i) *. dst.(i + 1))
  done

(* ---------------------------------------------------------------- *)
(* Batched panels: S independent tridiagonal systems advanced in
   lockstep.  Storage is structure-of-arrays: a panel is a c_layout
   float64 [Bigarray.Array2.t] of dims [(n, stories)], so element
   [(i, s)] is grid cell [i] of story [s] and the innermost loop over
   stories walks contiguous memory.  Every batched routine replicates
   the scalar routine's floating-point operations, per story, in the
   same order — column [s] of the outputs is bit-identical to running
   the scalar routine on story [s] alone.  (The loop interchange —
   outer over [i], inner over [s] — is legal because the S systems are
   independent: no cross-story value ever enters a story's data
   flow.) *)

type panel = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

let panel_create ~n ~stories : panel =
  assert (n >= 1 && stories >= 1);
  Bigarray.Array2.create Bigarray.Float64 Bigarray.c_layout n stories

let panel_dims (p : panel) = (Bigarray.Array2.dim1 p, Bigarray.Array2.dim2 p)

let check_panel name (p : panel) ~rows ~stories =
  if Bigarray.Array2.dim1 p <> rows || Bigarray.Array2.dim2 p <> stories then
    invalid_arg
      (Printf.sprintf "Tridiag.%s: panel dims (%d,%d), expected (%d,%d)" name
         (Bigarray.Array2.dim1 p) (Bigarray.Array2.dim2 p) rows stories)

(* Off-diagonal panels only need rows [0 .. n-2]; allowing extra rows
   lets callers allocate every panel of a workspace as [(n, stories)]. *)
let check_offdiag name (p : panel) ~rows ~stories =
  if Bigarray.Array2.dim1 p < rows || Bigarray.Array2.dim2 p <> stories then
    invalid_arg
      (Printf.sprintf
         "Tridiag.%s: off-diagonal panel dims (%d,%d), need (>=%d,%d)" name
         (Bigarray.Array2.dim1 p) (Bigarray.Array2.dim2 p) rows stories)

let factorize_batch ~(sub : panel) ~(diag : panel) ~(sup : panel) ~(c : panel)
    ~(m : panel) =
  let n = Bigarray.Array2.dim1 diag in
  let ns = Bigarray.Array2.dim2 diag in
  assert (n >= 1);
  check_offdiag "factorize_batch" sub ~rows:(n - 1) ~stories:ns;
  check_offdiag "factorize_batch" sup ~rows:(n - 1) ~stories:ns;
  check_panel "factorize_batch" c ~rows:n ~stories:ns;
  check_panel "factorize_batch" m ~rows:n ~stories:ns;
  let open Bigarray.Array2 in
  for s = 0 to ns - 1 do
    let pivot0 = unsafe_get diag 0 s in
    if Float.abs pivot0 < 1e-300 then raise Mat.Singular;
    unsafe_set m 0 s pivot0;
    unsafe_set c 0 s (if n > 1 then unsafe_get sup 0 s /. pivot0 else 0.)
  done;
  for i = 1 to n - 1 do
    for s = 0 to ns - 1 do
      let mi =
        unsafe_get diag i s
        -. (unsafe_get sub (i - 1) s *. unsafe_get c (i - 1) s)
      in
      if Float.abs mi < 1e-300 then raise Mat.Singular;
      unsafe_set m i s mi;
      if i < n - 1 then unsafe_set c i s (unsafe_get sup i s /. mi)
    done
  done

let solve_factored_batch ~(sub : panel) ~(c : panel) ~(m : panel)
    ~(src : panel) ~(dst : panel) =
  let n = Bigarray.Array2.dim1 m in
  let ns = Bigarray.Array2.dim2 m in
  check_offdiag "solve_factored_batch" sub ~rows:(n - 1) ~stories:ns;
  check_panel "solve_factored_batch" c ~rows:n ~stories:ns;
  check_panel "solve_factored_batch" src ~rows:n ~stories:ns;
  check_panel "solve_factored_batch" dst ~rows:n ~stories:ns;
  let open Bigarray.Array2 in
  (* Same aliasing contract as [solve_factored]: [src == dst] is
     allowed — row [i] of [src] is read before row [i] of [dst] is
     written, and earlier rows already hold d'. *)
  for s = 0 to ns - 1 do
    unsafe_set dst 0 s (unsafe_get src 0 s /. unsafe_get m 0 s)
  done;
  for i = 1 to n - 1 do
    for s = 0 to ns - 1 do
      unsafe_set dst i s
        ((unsafe_get src i s
         -. (unsafe_get sub (i - 1) s *. unsafe_get dst (i - 1) s))
        /. unsafe_get m i s)
    done
  done;
  for i = n - 2 downto 0 do
    for s = 0 to ns - 1 do
      unsafe_set dst i s
        (unsafe_get dst i s -. (unsafe_get c i s *. unsafe_get dst (i + 1) s))
    done
  done

let mv_batch ~(sub : panel) ~(diag : panel) ~(sup : panel) ~(src : panel)
    ~(dst : panel) =
  let n = Bigarray.Array2.dim1 diag in
  let ns = Bigarray.Array2.dim2 diag in
  check_offdiag "mv_batch" sub ~rows:(n - 1) ~stories:ns;
  check_offdiag "mv_batch" sup ~rows:(n - 1) ~stories:ns;
  check_panel "mv_batch" src ~rows:n ~stories:ns;
  check_panel "mv_batch" dst ~rows:n ~stories:ns;
  if src == dst then invalid_arg "Tridiag.mv_batch: src must not alias dst";
  let open Bigarray.Array2 in
  for i = 0 to n - 1 do
    for s = 0 to ns - 1 do
      (* accumulation order matches [mv_into]: diag, then sub, then sup *)
      let acc = ref (unsafe_get diag i s *. unsafe_get src i s) in
      if i > 0 then
        acc := !acc +. (unsafe_get sub (i - 1) s *. unsafe_get src (i - 1) s);
      if i < n - 1 then
        acc := !acc +. (unsafe_get sup i s *. unsafe_get src (i + 1) s);
      unsafe_set dst i s !acc
    done
  done

let mv t x =
  let n = dim t in
  assert (Array.length x = n);
  Array.init n (fun i ->
      let acc = ref (t.diag.(i) *. x.(i)) in
      if i > 0 then acc := !acc +. (t.sub.(i - 1) *. x.(i - 1));
      if i < n - 1 then acc := !acc +. (t.sup.(i) *. x.(i + 1));
      !acc)

let mv_into t x ~dst =
  let n = dim t in
  assert (Array.length x = n && Array.length dst = n);
  assert (not (x == dst));
  for i = 0 to n - 1 do
    let acc = ref (t.diag.(i) *. x.(i)) in
    if i > 0 then acc := !acc +. (t.sub.(i - 1) *. x.(i - 1));
    if i < n - 1 then acc := !acc +. (t.sup.(i) *. x.(i + 1));
    dst.(i) <- !acc
  done

let to_dense t =
  let n = dim t in
  Mat.init n n (fun i j ->
      if i = j then t.diag.(i)
      else if j = i + 1 then t.sup.(i)
      else if j = i - 1 then t.sub.(j)
      else 0.)

let is_diagonally_dominant t =
  let n = dim t in
  let ok = ref true in
  for i = 0 to n - 1 do
    let off =
      (if i > 0 then Float.abs t.sub.(i - 1) else 0.)
      +. if i < n - 1 then Float.abs t.sup.(i) else 0.
    in
    if Float.abs t.diag.(i) < off then ok := false
  done;
  !ok
