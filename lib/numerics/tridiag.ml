type t = { sub : float array; diag : float array; sup : float array }

let make ~sub ~diag ~sup =
  let n = Array.length diag in
  assert (n >= 1);
  assert (Array.length sub = n - 1);
  assert (Array.length sup = n - 1);
  { sub; diag; sup }

let dim t = Array.length t.diag

let solve t b =
  let n = dim t in
  assert (Array.length b = n);
  (* Forward sweep with scratch copies; the classic Thomas algorithm. *)
  let c' = Array.make n 0. and d' = Array.make n 0. in
  let pivot0 = t.diag.(0) in
  if Float.abs pivot0 < 1e-300 then raise Mat.Singular;
  c'.(0) <- (if n > 1 then t.sup.(0) /. pivot0 else 0.);
  d'.(0) <- b.(0) /. pivot0;
  for i = 1 to n - 1 do
    let m = t.diag.(i) -. (t.sub.(i - 1) *. c'.(i - 1)) in
    if Float.abs m < 1e-300 then raise Mat.Singular;
    if i < n - 1 then c'.(i) <- t.sup.(i) /. m;
    d'.(i) <- (b.(i) -. (t.sub.(i - 1) *. d'.(i - 1))) /. m
  done;
  let x = Array.make n 0. in
  x.(n - 1) <- d'.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
  done;
  x

(* A precomputed Thomas factorization: [c] is the forward-swept
   super-diagonal c' and [m] the pivots, exactly the values the direct
   [solve] computes on every call.  [sub] aliases the source matrix's
   sub-diagonal (the matrix must not be mutated while the factorization
   is live).  [solve_factored] then performs only the O(n) d'-sweep and
   back-substitution, with the same floating-point operations in the
   same order as [solve] — outputs are bit-identical. *)
type factored = { f_sub : float array; f_c : float array; f_m : float array }

let factorize t =
  let n = dim t in
  let c = Array.make n 0. and m = Array.make n 0. in
  let pivot0 = t.diag.(0) in
  if Float.abs pivot0 < 1e-300 then raise Mat.Singular;
  m.(0) <- pivot0;
  c.(0) <- (if n > 1 then t.sup.(0) /. pivot0 else 0.);
  for i = 1 to n - 1 do
    let mi = t.diag.(i) -. (t.sub.(i - 1) *. c.(i - 1)) in
    if Float.abs mi < 1e-300 then raise Mat.Singular;
    m.(i) <- mi;
    if i < n - 1 then c.(i) <- t.sup.(i) /. mi
  done;
  { f_sub = t.sub; f_c = c; f_m = m }

let factored_dim f = Array.length f.f_m

let solve_factored f ~src ~dst =
  let n = factored_dim f in
  assert (Array.length src = n && Array.length dst = n);
  (* d'-sweep into dst (safe when src == dst: src.(i) is read before
     dst.(i) is written and earlier cells already hold d'), then
     back-substitution in place. *)
  dst.(0) <- src.(0) /. f.f_m.(0);
  for i = 1 to n - 1 do
    dst.(i) <- (src.(i) -. (f.f_sub.(i - 1) *. dst.(i - 1))) /. f.f_m.(i)
  done;
  for i = n - 2 downto 0 do
    dst.(i) <- dst.(i) -. (f.f_c.(i) *. dst.(i + 1))
  done

let mv t x =
  let n = dim t in
  assert (Array.length x = n);
  Array.init n (fun i ->
      let acc = ref (t.diag.(i) *. x.(i)) in
      if i > 0 then acc := !acc +. (t.sub.(i - 1) *. x.(i - 1));
      if i < n - 1 then acc := !acc +. (t.sup.(i) *. x.(i + 1));
      !acc)

let mv_into t x ~dst =
  let n = dim t in
  assert (Array.length x = n && Array.length dst = n);
  assert (not (x == dst));
  for i = 0 to n - 1 do
    let acc = ref (t.diag.(i) *. x.(i)) in
    if i > 0 then acc := !acc +. (t.sub.(i - 1) *. x.(i - 1));
    if i < n - 1 then acc := !acc +. (t.sup.(i) *. x.(i + 1));
    dst.(i) <- !acc
  done

let to_dense t =
  let n = dim t in
  Mat.init n n (fun i j ->
      if i = j then t.diag.(i)
      else if j = i + 1 then t.sup.(i)
      else if j = i - 1 then t.sub.(j)
      else 0.)

let is_diagonally_dominant t =
  let n = dim t in
  let ok = ref true in
  for i = 0 to n - 1 do
    let off =
      (if i > 0 then Float.abs t.sub.(i - 1) else 0.)
      +. if i < n - 1 then Float.abs t.sup.(i) else 0.
    in
    if Float.abs t.diag.(i) < off then ok := false
  done;
  !ok
