(** Initial-value ODE solvers.

    The right-hand side acts on vectors ([Vec.t]); scalar convenience
    wrappers are provided.  The closed-form logistic solutions
    ([logistic], [logistic_varying_r]) serve both as oracles for the
    integrators in tests and as the exact reaction sub-step of the
    Strang-split PDE scheme in {!Pde}. *)

type rhs = t:float -> y:Vec.t -> Vec.t
(** Vector field [dy/dt = f(t, y)]. *)

val euler_step : rhs -> t:float -> dt:float -> y:Vec.t -> Vec.t
val rk4_step : rhs -> t:float -> dt:float -> y:Vec.t -> Vec.t

val integrate :
  ?step:[ `Euler | `Rk4 ] -> rhs -> y0:Vec.t -> t0:float ->
  times:float array -> (float * Vec.t) array
(** [integrate rhs ~y0 ~t0 ~times] advances from [t0] through the
    (increasing) [times] with fixed sub-steps ([`Rk4] default, 32
    sub-steps per unit time) and returns the state at each requested
    time. *)

val rkf45 :
  ?tol:float -> ?dt0:float -> ?dt_min:float -> rhs ->
  y0:Vec.t -> t0:float -> t1:float -> Vec.t
(** Adaptive Runge--Kutta--Fehlberg 4(5); steps are chosen so the
    embedded error estimate stays under [tol] (default [1e-8]) per
    step. *)

val scalar_rhs : (t:float -> y:float -> float) -> rhs
(** Lift a scalar field to a 1-vector field. *)

val logistic : r:float -> k:float -> n0:float -> float -> float
(** Closed-form logistic [N(t)] with [N(0) = n0]:
    [K / (1 + (K/n0 - 1) e^{-r t})].  [n0 = 0] stays [0]. *)

val logistic_varying_r :
  r_integral:(float -> float) -> k:float -> n0:float -> float -> float
(** Logistic growth with a time-varying rate: the same closed form with
    [r*t] replaced by [r_integral t] = integral of [r] from the initial
    time to [t]. *)
