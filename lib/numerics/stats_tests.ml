(* Asymptotic Kolmogorov distribution tail:
   Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} e^{-2 k^2 lambda^2}. *)
let kolmogorov_q lambda =
  if lambda <= 0. then 1.
  else begin
    let acc = ref 0. in
    let k = ref 1 in
    let continue = ref true in
    while !continue && !k <= 100 do
      let kf = float_of_int !k in
      let term =
        (if !k mod 2 = 1 then 1. else -1.)
        *. exp (-2. *. kf *. kf *. lambda *. lambda)
      in
      acc := !acc +. term;
      if Float.abs term < 1e-12 then continue := false;
      incr k
    done;
    Float.max 0. (Float.min 1. (2. *. !acc))
  end

let empirical_cdf sorted x =
  (* fraction of samples <= x, by binary search *)
  let n = Array.length sorted in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sorted.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  float_of_int !lo /. float_of_int n

let ks_two_sample xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 || ny = 0 then invalid_arg "Stats_tests.ks_two_sample: empty sample";
  let sx = Array.copy xs and sy = Array.copy ys in
  Array.sort Float.compare sx;
  Array.sort Float.compare sy;
  let d = ref 0. in
  let check v =
    let diff = Float.abs (empirical_cdf sx v -. empirical_cdf sy v) in
    if diff > !d then d := diff
  in
  Array.iter check sx;
  Array.iter check sy;
  let nxf = float_of_int nx and nyf = float_of_int ny in
  let effective = sqrt (nxf *. nyf /. (nxf +. nyf)) in
  let lambda = (effective +. 0.12 +. (0.11 /. effective)) *. !d in
  (!d, kolmogorov_q lambda)

let ks_statistic xs ~cdf =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats_tests.ks_statistic: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let lo = float_of_int i /. float_of_int n in
      let hi = float_of_int (i + 1) /. float_of_int n in
      d := Float.max !d (Float.max (Float.abs (f -. lo)) (Float.abs (hi -. f))))
    sorted;
  !d

let chi_square_statistic ~observed ~expected =
  let n = Array.length observed in
  if Array.length expected <> n then
    invalid_arg "Stats_tests.chi_square_statistic: length mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    if expected.(i) <= 0. then
      invalid_arg "Stats_tests.chi_square_statistic: expected must be positive";
    let diff = float_of_int observed.(i) -. expected.(i) in
    acc := !acc +. (diff *. diff /. expected.(i))
  done;
  !acc

let bootstrap_ci ?(confidence = 0.95) ?(resamples = 1000) rng sample statistic =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Stats_tests.bootstrap_ci: empty sample";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Stats_tests.bootstrap_ci: confidence in (0, 1)";
  let stats =
    Array.init resamples (fun _ ->
        let resample = Array.init n (fun _ -> sample.(Rng.int rng n)) in
        statistic resample)
  in
  let alpha = (1. -. confidence) /. 2. in
  (Stats.quantile stats alpha, Stats.quantile stats (1. -. alpha))

let bootstrap_mean_ci ?confidence ?resamples rng sample =
  bootstrap_ci ?confidence ?resamples rng sample Stats.mean
