type problem = {
  xl : float;
  xr : float;
  nx : int;
  yl : float;
  yr : float;
  ny : int;
  dx_coef : float;
  dy_coef : float;
  reaction : x:float -> y:float -> t:float -> u:float -> float;
  initial : float -> float -> float;
  t0 : float;
}

type solution = {
  xs : float array;
  ys : float array;
  ts : float array;
  values : float array array array;
}

(* 1-D finite-volume Neumann Laplacian along an axis with n nodes and
   spacing h; boundary cells have half volume.  Returned as the three
   diagonals of L (so that row i of L u reads
   sub.(i-1) u_{i-1} + diag.(i) u_i + sup.(i) u_{i+1}). *)
let axis_operator n h =
  let h2 = h *. h in
  let weight i = if i = 0 || i = n - 1 then 0.5 else 1. in
  let sub = Array.make (n - 1) 0.
  and diag = Array.make n 0.
  and sup = Array.make (n - 1) 0. in
  for i = 0 to n - 1 do
    let h2i = h2 *. weight i in
    let right = if i = n - 1 then 0. else 1. /. h2i in
    let left = if i = 0 then 0. else 1. /. h2i in
    diag.(i) <- -.(right +. left);
    if i < n - 1 then sup.(i) <- right;
    if i > 0 then sub.(i - 1) <- left
  done;
  Tridiag.make ~sub ~diag ~sup

(* (I + c L) as a tridiagonal system. *)
let shifted c (l : Tridiag.t) =
  let n = Array.length l.Tridiag.diag in
  Tridiag.make
    ~sub:(Array.map (fun v -> c *. v) l.Tridiag.sub)
    ~diag:(Array.init n (fun i -> 1. +. (c *. l.Tridiag.diag.(i))))
    ~sup:(Array.map (fun v -> c *. v) l.Tridiag.sup)

let validate p =
  if p.nx < 3 || p.ny < 3 then invalid_arg "Pde2d.solve: need nx, ny >= 3";
  if p.xr <= p.xl || p.yr <= p.yl then invalid_arg "Pde2d.solve: empty domain";
  if p.dx_coef < 0. || p.dy_coef < 0. then
    invalid_arg "Pde2d.solve: negative diffusion"

let solve ?(dt = 0.02) p ~times =
  validate p;
  if dt <= 0. then invalid_arg "Pde2d.solve: dt > 0";
  let xs = Vec.linspace p.xl p.xr p.nx in
  let ys = Vec.linspace p.yl p.yr p.ny in
  let hx = (p.xr -. p.xl) /. float_of_int (p.nx - 1) in
  let hy = (p.yr -. p.yl) /. float_of_int (p.ny - 1) in
  let lx = axis_operator p.nx hx and ly = axis_operator p.ny hy in
  let u = Array.init p.nx (fun i -> Array.init p.ny (fun j -> p.initial xs.(i) ys.(j))) in
  let t = ref p.t0 in
  (* scratch for x-sweeps *)
  let row = Array.make p.nx 0. in
  let apply_ly u_i =
    (* dy * Ly applied to one x-row (contiguous in j) *)
    Vec.scale p.dy_coef (Tridiag.mv ly u_i)
  in
  let half_reaction dt_eff =
    let t_now = !t and t_next = !t +. dt_eff in
    for i = 0 to p.nx - 1 do
      let x = xs.(i) in
      let ui = u.(i) in
      for j = 0 to p.ny - 1 do
        let y = ys.(j) in
        let v = ui.(j) in
        let k1 = p.reaction ~x ~y ~t:t_now ~u:v in
        let k2 = p.reaction ~x ~y ~t:t_next ~u:(v +. (dt_eff *. k1)) in
        ui.(j) <- v +. (dt_eff *. (k1 +. k2) /. 2.)
      done
    done
  in
  let adi_diffusion dt_eff =
    let ax = dt_eff /. 2. *. p.dx_coef and ay = dt_eff /. 2. *. p.dy_coef in
    let solve_x = shifted (-.ax) lx and solve_y = shifted (-.ay) ly in
    (* sweep 1: rhs = (I + ay Ly) u, implicit in x *)
    let rhs_cols = Array.init p.nx (fun i ->
        let lyu = apply_ly u.(i) in
        Array.init p.ny (fun j -> u.(i).(j) +. (dt_eff /. 2. *. lyu.(j))))
    in
    let ustar = Array.init p.nx (fun _ -> Array.make p.ny 0.) in
    for j = 0 to p.ny - 1 do
      let b = Array.init p.nx (fun i -> rhs_cols.(i).(j)) in
      let sol = Tridiag.solve solve_x b in
      for i = 0 to p.nx - 1 do
        ustar.(i).(j) <- sol.(i)
      done
    done;
    (* sweep 2: rhs = (I + ax Lx) u*, implicit in y *)
    let rhs2 = Array.init p.nx (fun _ -> Array.make p.ny 0.) in
    for j = 0 to p.ny - 1 do
      for i = 0 to p.nx - 1 do
        row.(i) <- ustar.(i).(j)
      done;
      let lv = Tridiag.mv lx row in
      for i = 0 to p.nx - 1 do
        rhs2.(i).(j) <- ustar.(i).(j) +. (dt_eff /. 2. *. p.dx_coef *. lv.(i))
      done
    done;
    for i = 0 to p.nx - 1 do
      let sol = Tridiag.solve solve_y rhs2.(i) in
      Array.blit sol 0 u.(i) 0 p.ny
    done
  in
  let step dt_eff =
    half_reaction (dt_eff /. 2.);
    adi_diffusion dt_eff;
    t := !t +. (dt_eff /. 2.);
    half_reaction (dt_eff /. 2.);
    t := !t +. (dt_eff /. 2.)
  in
  let copy_u () = Array.map Array.copy u in
  let snapshots = ref [ (p.t0, copy_u ()) ] in
  Array.iter
    (fun target ->
      if target < !t -. 1e-12 then
        invalid_arg "Pde2d.solve: times must be increasing and >= t0";
      while target -. !t > 1e-12 do
        step (Float.min dt (target -. !t))
      done;
      t := target;
      snapshots := (target, copy_u ()) :: !snapshots)
    times;
  let snaps = Array.of_list (List.rev !snapshots) in
  { xs; ys; ts = Array.map fst snaps; values = Array.map snd snaps }

let value_at sol ~x ~y ~t =
  let nt = Array.length sol.ts in
  let it = ref 0 in
  for k = 1 to nt - 1 do
    if Float.abs (sol.ts.(k) -. t) < Float.abs (sol.ts.(!it) -. t) then it := k
  done;
  Interp.bilinear ~xs:sol.xs ~ts:sol.ys ~values:sol.values.(!it) x y

let mass sol ~it =
  let nx = Array.length sol.xs and ny = Array.length sol.ys in
  let hx = (sol.xs.(nx - 1) -. sol.xs.(0)) /. float_of_int (nx - 1) in
  let hy = (sol.ys.(ny - 1) -. sol.ys.(0)) /. float_of_int (ny - 1) in
  let w n i = if i = 0 || i = n - 1 then 0.5 else 1. in
  let acc = ref 0. in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      acc := !acc +. (w nx i *. w ny j *. sol.values.(it).(i).(j))
    done
  done;
  !acc *. hx *. hy
