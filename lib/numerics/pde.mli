(** One-dimensional reaction--diffusion initial-boundary-value problems
    with no-flux (Neumann) boundaries:

    {v
      u_t = (d(x) u_x)_x + f(x, t, u),   xl <= x <= xr,  t >= t0
      u_x(xl, t) = u_x(xr, t) = 0
      u(x, t0)  = initial x
    v}

    This is the solver behind the paper's diffusive logistic model
    (Equation 4), where [f(x,t,u) = r(t) u (1 - u/K)] and [d] is
    constant.  The formulation is kept slightly more general (variable
    [d(x)], arbitrary [f]) to support the paper's stated future work.

    Three schemes are provided:
    - {b FTCS}: explicit forward-time centred-space; sub-steps
      automatically to respect the CFL limit [dt <= dx^2 / (2 max d)].
    - {b IMEX theta}: diffusion handled implicitly by a theta-scheme
      (Crank--Nicolson at [theta = 0.5]) via a tridiagonal solve;
      reaction explicit.
    - {b Strang}: symmetric operator splitting — half reaction step,
      full Crank--Nicolson diffusion step, half reaction step — where
      the reaction sub-step is user-supplied and may be exact (see
      [logistic_reaction_step]). *)

(** The reaction term [f(x, t, u)], specialised by shape.  [Logistic]
    and [Linear] name the paper's two models so the solver's hot loops
    can dispatch once and run unboxed float arithmetic per cell;
    [Custom] keeps the fully general closure (with its per-call float
    boxing).  All solve paths evaluate the named shapes as exactly
    [r t *. u *. (1. -. (u /. k))] and [r t *. u] — building a
    [Custom] closure with the same body produces the same bits, just
    slower.  [r] must be a pure function of [t] (it is hoisted out of
    cell loops). *)
type reaction =
  | Logistic of { r : float -> float; k : float }
      (** [f = r(t) u (1 - u/K)] — the paper's Eq. 4. *)
  | Linear of { r : float -> float }
      (** [f = r(t) u] — the authors' follow-up linear model. *)
  | Custom of (x:float -> t:float -> u:float -> float)

val reaction_eval : reaction -> x:float -> t:float -> u:float -> float
(** The single evaluation semantics shared by every solve path. *)

type problem = {
  xl : float;
  xr : float;
  nx : int;  (** number of grid points, at least 3 *)
  diffusion : float -> float;  (** [d(x)], non-negative *)
  reaction : reaction;
  initial : float -> float;
  t0 : float;
}

type reaction_step = x:float -> t:float -> dt:float -> u:float -> float
(** Exact or approximate flow of [du/dt = f(x, t, u)] over [\[t, t+dt\]]. *)

type scheme =
  | Ftcs
  | Imex of float  (** theta in [\[0.5, 1\]]; 0.5 = Crank--Nicolson *)
  | Strang of reaction_step

type solution = {
  xs : float array;  (** grid, length [nx] *)
  ts : float array;  (** snapshot times, [t0] first *)
  values : float array array;  (** [values.(it).(ix)] *)
}

val grid : problem -> float array

val cfl_limit : problem -> float
(** Largest stable explicit time step for the diffusion term. *)

val solve :
  ?scheme:scheme -> ?dt:float -> ?reference:bool ->
  problem -> times:float array -> solution
(** [solve problem ~times] marches from [t0] and records a snapshot at
    [t0] and at each requested (strictly increasing, [>= t0]) time.
    Default scheme [Imex 0.5], default [dt = 1e-3] time units (FTCS
    additionally sub-steps to stay within the CFL limit).

    By default the solver runs its allocation-free workspace path:
    state is double-buffered, rhs/stage scratch is reused, and the
    implicit schemes build the shifted operators and their Thomas
    factorization once per macro step size (ragged final partial steps
    before a snapshot target rebuild throwaway operators).  The output
    is {e bit-identical} to the retained per-step-allocating reference
    stepper — same floating-point operations in the same order —
    enforced by [test/test_pde_perf.ml].  Pass [~reference:true] (or
    flip {!set_use_reference_stepper}) to run the reference stepper
    instead, e.g. for before/after benchmarking. *)

val reference_env_var : string
(** ["DLOSN_BENCH_REFERENCE_SOLVER"] — setting it to [1]/[true]/[yes]
    makes every [solve] default to the reference stepper (read once at
    module init). *)

val use_reference_stepper : unit -> bool
val set_use_reference_stepper : bool -> unit
(** Process-wide default for [solve]'s [?reference] argument; the CLI
    [--no-solver-cache] escape hatch sets it.  Flip it before spawning
    worker domains, not concurrently with solves. *)

val logistic_reaction_step : r:(float -> float) -> k:float -> reaction_step
(** Exact flow of the logistic reaction [u' = r(t) u (1 - u/K)], using
    the closed form with the integral of [r] evaluated by Simpson's
    rule on the sub-step.  Intended for [Strang].  The returned closure
    memoizes the (x-independent) integral per [(t, dt)], so it is
    stateful: build one per solve and do not share it across domains. *)

val linear_reaction_step : r:(float -> float) -> reaction_step
(** Exact flow of the {e linear} reaction [u' = r(t) u] (the authors'
    follow-up linear diffusive model, arXiv:1310.0505):
    [u e^{int_t^{t+dt} r}], with the integral evaluated by Simpson's
    rule on the sub-step.  Intended for [Strang].  Like
    {!logistic_reaction_step} the closure memoizes the x-independent
    integral per [(t, dt)], so it is stateful: build one per solve and
    do not share it across domains. *)

(** {2 Fused panel solves}

    A panel steps S problems sharing (domain, grid, [t0], [dt],
    scheme) through the time loop in lockstep: per-story state and
    operators live in structure-of-arrays {!Tridiag.panel}s, one
    batched Thomas sweep per step services every story with the
    innermost loop walking contiguous memory, the x-independent
    per-step scalars (r(t), Simpson [∫r], their exponentials) are
    hoisted out of the cell loops, and [Logistic]/[Linear] reactions
    run unboxed.  Story [s] of the result is {e bit-identical} to
    {!solve} on that story alone (enforced by test_pde_perf and the CI
    bench gate): batching reorders loops across independent stories
    but never changes any story's floating-point operations. *)

type panel_story = {
  ps_diffusion : float -> float;
  ps_reaction : reaction;
  ps_initial : float -> float;
}

type panel_problem = {
  pp_xl : float;
  pp_xr : float;
  pp_nx : int;
  pp_t0 : float;
  pp_stories : panel_story array;
}

type panel_scheme =
  | Panel_imex of float  (** theta in [\[0.5, 1\]]; 0.5 = Crank--Nicolson *)
  | Panel_strang
      (** Strang splitting with the {e exact} reaction flow derived
          from each story's reaction shape ([Logistic] -> closed-form
          logistic flow, [Linear] -> [u e^{∫r}]).  [Custom] reactions
          are rejected ([Invalid_argument]): no flow is derivable from
          a closure — use [Panel_imex] or the scalar {!solve}. *)

(** FTCS is deliberately absent: its CFL-bounded macro step depends on
    each story's diffusion, so stories cannot march in lockstep. *)

type panel_workspace
(** Reusable panel buffer block (state, operators, factorization,
    per-story scratch), reallocated only when the [(nx, stories)]
    shape changes.  Keep one per fit restart / pool worker: a
    workspace must not be used from two domains concurrently.
    Buffer reuse is counted in the [pde.panel_reuses] /
    [pde.panel_rebuilds] metrics (visible on [/metrics]). *)

val panel_workspace : unit -> panel_workspace

val panel_workspace_stats : panel_workspace -> int * int
(** [(reuses, rebuilds)] over the workspace's lifetime. *)

val solve_panel :
  ?scheme:panel_scheme ->
  ?dt:float ->
  ?reference:bool ->
  ?workspace:panel_workspace ->
  panel_problem ->
  times:float array ->
  solution array
(** [solve_panel pp ~times] solves every story of the panel over the
    shared snapshot [times] (semantics per story exactly as {!solve};
    defaults [Panel_imex 0.5], [dt = 1e-3]).  With [~reference:true]
    (or the global reference default) each story runs the scalar
    reference stepper instead — the definitional oracle for the
    bit-identity gates.  An empty panel returns [[||]]. *)

val eval : solution -> x:float -> t:float -> float
(** Bilinear interpolation in the snapshot table (clamped at the
    borders).
    @raise Invalid_argument if [x] or [t] is NaN (a NaN would silently
    clamp to garbage). *)

val evaluator : solution -> x:float -> t:float -> float
(** Like {!eval} with the table bounds and lengths hoisted out: build
    the closure once, then each call is allocation-free.  Intended for
    prediction loops that query one solution many times. *)

val snapshot : solution -> t:float -> float array
(** Solution profile at the recorded time nearest to [t]. *)

val mass : solution -> it:int -> float
(** Trapezoid integral of the profile at snapshot index [it]; constant
    in time for pure diffusion with Neumann boundaries (used by
    tests). *)
