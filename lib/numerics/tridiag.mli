(** Tridiagonal linear systems (Thomas algorithm).

    Used by the cubic-spline moment system and the Crank--Nicolson
    diffusion step, both of which are diagonally dominant, so the
    pivot-free Thomas algorithm is stable. *)

type t = {
  sub : float array;  (** sub-diagonal, length [n-1]; [sub.(i)] is row [i+1]. *)
  diag : float array; (** main diagonal, length [n]. *)
  sup : float array;  (** super-diagonal, length [n-1]; [sup.(i)] is row [i]. *)
}

val make : sub:float array -> diag:float array -> sup:float array -> t
(** Validates the three lengths. *)

val dim : t -> int

val solve : t -> Vec.t -> Vec.t
(** [solve sys b] solves the tridiagonal system in [O(n)].
    @raise Mat.Singular on a (numerically) zero pivot. *)

type factored
(** A precomputed Thomas factorization (the c'-sweep of {!solve}):
    amortises the forward elimination over many right-hand sides with
    the same matrix, as in a time-stepping loop.  Shares the matrix's
    sub-diagonal — do not mutate the matrix while the factorization is
    in use. *)

val factorize : t -> factored
(** Runs the pivot sweep once.
    @raise Mat.Singular on a (numerically) zero pivot. *)

val factored_dim : factored -> int

val solve_factored : factored -> src:Vec.t -> dst:Vec.t -> unit
(** [solve_factored f ~src ~dst] solves into [dst] without allocating,
    using only the d'-sweep and back-substitution.  [src == dst] is
    allowed (in-place solve).  The result is bit-identical to
    [solve t src] for the matrix [f] was built from: the remaining
    floating-point operations are the same, in the same order. *)

val mv : t -> Vec.t -> Vec.t
(** Product of the tridiagonal matrix with a vector, in [O(n)]. *)

val mv_into : t -> Vec.t -> dst:Vec.t -> unit
(** Allocation-free {!mv} into [dst] (which must not alias the input;
    asserted).  Bit-identical to [mv]. *)

val to_dense : t -> Mat.t
(** Expansion to a dense matrix; intended for tests. *)

val is_diagonally_dominant : t -> bool
(** Weak row-wise diagonal dominance; a sufficient condition for the
    Thomas algorithm to be stable. *)
