(** Tridiagonal linear systems (Thomas algorithm).

    Used by the cubic-spline moment system and the Crank--Nicolson
    diffusion step, both of which are diagonally dominant, so the
    pivot-free Thomas algorithm is stable. *)

type t = {
  sub : float array;  (** sub-diagonal, length [n-1]; [sub.(i)] is row [i+1]. *)
  diag : float array; (** main diagonal, length [n]. *)
  sup : float array;  (** super-diagonal, length [n-1]; [sup.(i)] is row [i]. *)
}

val make : sub:float array -> diag:float array -> sup:float array -> t
(** Validates the three lengths. *)

val dim : t -> int

val solve : t -> Vec.t -> Vec.t
(** [solve sys b] solves the tridiagonal system in [O(n)].
    @raise Mat.Singular on a (numerically) zero pivot. *)

type factored
(** A precomputed Thomas factorization (the c'-sweep of {!solve}):
    amortises the forward elimination over many right-hand sides with
    the same matrix, as in a time-stepping loop.  Shares the matrix's
    sub-diagonal — do not mutate the matrix while the factorization is
    in use. *)

val factorize : t -> factored
(** Runs the pivot sweep once.
    @raise Mat.Singular on a (numerically) zero pivot. *)

val factored_dim : factored -> int

val solve_factored : factored -> src:Vec.t -> dst:Vec.t -> unit
(** [solve_factored f ~src ~dst] solves into [dst] without allocating,
    using only the d'-sweep and back-substitution.

    {b Aliasing contract:} [src == dst] is explicitly {e allowed} (full
    in-place solve) and produces the same bits as the out-of-place
    call.  The d'-sweep reads [src.(i)] before writing [dst.(i)], and
    once cell [i] is written the sweep only ever reads cells [< i],
    which already hold d' under either aliasing; the back-substitution
    then runs entirely in [dst].  {e Partial} overlap is impossible for
    [float array]s (two arrays either alias fully or not at all), so
    the two cases above are exhaustive.  This contract is locked in by
    tests ("solve_factored in place" and "batch solve in place" in
    test_pde_perf) and by {!solve_factored_batch}, which inherits it.

    The result is bit-identical to [solve t src] for the matrix [f]
    was built from: the remaining floating-point operations are the
    same, in the same order. *)

(** {2 Batched panels}

    S independent tridiagonal systems advanced in lockstep.  A panel
    is a structure-of-arrays [Bigarray.Array2.t] ([float64],
    [c_layout]) of dims [(n, stories)]: element [(i, s)] is row [i] of
    story [s], so the innermost story loop walks contiguous memory.
    Column [s] of every output is bit-identical to running the scalar
    routine on story [s] alone.  Off-diagonal panels ([sub]/[sup]) use
    rows [0 .. n-2]; they may be allocated with [n] rows (the last row
    is ignored). *)

type panel = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

val panel_create : n:int -> stories:int -> panel
(** Uninitialised [(n, stories)] panel. *)

val panel_dims : panel -> int * int
(** [(rows, stories)]. *)

val factorize_batch :
  sub:panel -> diag:panel -> sup:panel -> c:panel -> m:panel -> unit
(** Batched c'-sweep: one pass computes the {!factorize} outputs for
    every story, writing pivots into [m] and the swept super-diagonal
    into [c].  Dimensions are taken from [diag].
    @raise Mat.Singular on a (numerically) zero pivot in any story.
    @raise Invalid_argument on panel dimension mismatch. *)

val solve_factored_batch :
  sub:panel -> c:panel -> m:panel -> src:panel -> dst:panel -> unit
(** Batched d'-sweep + back-substitution against a factorization from
    {!factorize_batch}.  [src == dst] is allowed, with the same
    in-place contract as {!solve_factored}.
    @raise Invalid_argument on panel dimension mismatch. *)

val mv_batch :
  sub:panel -> diag:panel -> sup:panel -> src:panel -> dst:panel -> unit
(** Batched {!mv_into}: [dst.(i,s) <- (A_s src_s).(i)] with the same
    per-row accumulation order (diag, sub, sup).  [src] must not alias
    [dst].
    @raise Invalid_argument on dimension mismatch or aliasing. *)

val mv : t -> Vec.t -> Vec.t
(** Product of the tridiagonal matrix with a vector, in [O(n)]. *)

val mv_into : t -> Vec.t -> dst:Vec.t -> unit
(** Allocation-free {!mv} into [dst] (which must not alias the input;
    asserted).  Bit-identical to [mv]. *)

val to_dense : t -> Mat.t
(** Expansion to a dense matrix; intended for tests. *)

val is_diagonally_dominant : t -> bool
(** Weak row-wise diagonal dominance; a sufficient condition for the
    Thomas algorithm to be stable. *)
