(** Tridiagonal linear systems (Thomas algorithm).

    Used by the cubic-spline moment system and the Crank--Nicolson
    diffusion step, both of which are diagonally dominant, so the
    pivot-free Thomas algorithm is stable. *)

type t = {
  sub : float array;  (** sub-diagonal, length [n-1]; [sub.(i)] is row [i+1]. *)
  diag : float array; (** main diagonal, length [n]. *)
  sup : float array;  (** super-diagonal, length [n-1]; [sup.(i)] is row [i]. *)
}

val make : sub:float array -> diag:float array -> sup:float array -> t
(** Validates the three lengths. *)

val dim : t -> int

val solve : t -> Vec.t -> Vec.t
(** [solve sys b] solves the tridiagonal system in [O(n)].
    @raise Mat.Singular on a (numerically) zero pivot. *)

val mv : t -> Vec.t -> Vec.t
(** Product of the tridiagonal matrix with a vector, in [O(n)]. *)

val to_dense : t -> Mat.t
(** Expansion to a dense matrix; intended for tests. *)

val is_diagonally_dominant : t -> bool
(** Weak row-wise diagonal dominance; a sufficient condition for the
    Thomas algorithm to be stable. *)
