let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then
    invalid_arg "Optimize.bisect: no sign change on the interval"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol && !iter < max_iter do
      incr iter;
      let mid = (!lo +. !hi) /. 2. in
      let fmid = f mid in
      if fmid = 0. then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0. then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    (!lo +. !hi) /. 2.
  end

let invphi = (sqrt 5. -. 1.) /. 2.

let golden_section ?(tol = 1e-10) ?(max_iter = 500) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    incr iter;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := f !d
    end
  done;
  (!a +. !b) /. 2.

let brent ?(tol = 1e-10) ?(max_iter = 200) f ~lo ~hi =
  (* Brent's minimisation, after Numerical Recipes. *)
  let cgold = 0.3819660 in
  let a = ref (Float.min lo hi) and b = ref (Float.max lo hi) in
  let x = ref (!a +. (cgold *. (!b -. !a))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0. and e = ref 0. in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    let xm = (!a +. !b) /. 2. in
    let tol1 = (tol *. Float.abs !x) +. 1e-15 in
    let tol2 = 2. *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. ((!b -. !a) /. 2.) then
      result := Some !x
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2. *. (q -. r) in
        let p = if q > 0. then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (q *. etemp /. 2.)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm >= !x then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0. then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        fv := !fw;
        w := !x;
        fw := !fx;
        x := u;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  match !result with Some x -> x | None -> !x

type result = {
  x : float array;
  f : float;
  iterations : int;
  converged : bool;
  evaluations : int;
  spread : float;
}

let m_nm_runs = Obs.Metrics.counter "optimize.nm_runs"
let m_nm_iterations = Obs.Metrics.counter "optimize.nm_iterations"
let m_nm_evals = Obs.Metrics.counter "optimize.nm_evals"

let nelder_mead ?(tol = 1e-9) ?(max_iter = 2000) ?(step = 0.) ?simplex f ~x0 =
  let n = Array.length x0 in
  assert (n >= 1);
  (match simplex with
  | None -> ()
  | Some vs ->
      if Array.length vs <> n + 1 then
        invalid_arg "Optimize.nelder_mead: simplex needs n+1 vertices";
      Array.iter
        (fun v ->
          if Array.length v <> n then
            invalid_arg "Optimize.nelder_mead: simplex vertex dimension")
        vs);
  let evals = ref 0 in
  let f v =
    incr evals;
    f v
  in
  let alpha = 1. and gamma = 2. and rho = 0.5 and sigma = 0.5 in
  let initial_step i =
    if step > 0. then step
    else Float.max 0.05 (0.1 *. Float.abs x0.(i))
  in
  (* simplex: n+1 vertices with objective values, kept sorted.  An
     explicit [simplex] (e.g. a warm start carried over from a prior
     fit) replaces the default axis-aligned one built around [x0]. *)
  let vertices =
    match simplex with
    | Some vs -> Array.map (fun v -> (Array.copy v, f v)) vs
    | None ->
        Array.init (n + 1) (fun k ->
            let v = Array.copy x0 in
            if k > 0 then v.(k - 1) <- v.(k - 1) +. initial_step (k - 1);
            (v, f v))
  in
  let sort () =
    Array.sort (fun (_, fa) (_, fb) -> Float.compare fa fb) vertices
  in
  sort ();
  let centroid () =
    let c = Array.make n 0. in
    for k = 0 to n - 1 do
      let v, _ = vertices.(k) in
      for i = 0 to n - 1 do
        c.(i) <- c.(i) +. (v.(i) /. float_of_int n)
      done
    done;
    c
  in
  let combine c v coef =
    Array.init n (fun i -> c.(i) +. (coef *. (v.(i) -. c.(i))))
  in
  (* Convergence needs both a small objective spread and a small
     simplex: an f-spread test alone stops early on simplices that
     straddle the minimum symmetrically. *)
  let diameter () =
    let best, _ = vertices.(0) in
    Array.fold_left
      (fun acc (v, _) -> Float.max acc (Vec.dist2 v best))
      0. vertices
  in
  let x_tol = Float.max 1e-8 (sqrt tol) in
  let iter = ref 0 and converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let _, f_best = vertices.(0) and _, f_worst = vertices.(n) in
    if Float.abs (f_worst -. f_best) <= tol && diameter () <= x_tol then
      converged := true
    else begin
      let c = centroid () in
      let worst, fw = vertices.(n) in
      let _, f_second = vertices.(n - 1) in
      let reflected = combine c worst (-.alpha) in
      let fr = f reflected in
      if fr < f_best then begin
        let expanded = combine c worst (-.gamma) in
        let fe = f expanded in
        vertices.(n) <- (if fe < fr then (expanded, fe) else (reflected, fr))
      end
      else if fr < f_second then vertices.(n) <- (reflected, fr)
      else begin
        let contracted =
          if fr < fw then combine c reflected rho else combine c worst rho
        in
        let fc = f contracted in
        if fc < Float.min fr fw then vertices.(n) <- (contracted, fc)
        else begin
          (* Shrink towards the best vertex. *)
          let best, _ = vertices.(0) in
          for k = 1 to n do
            let v, _ = vertices.(k) in
            let shrunk =
              Array.init n (fun i -> best.(i) +. (sigma *. (v.(i) -. best.(i))))
            in
            vertices.(k) <- (shrunk, f shrunk)
          done
        end
      end;
      sort ()
    end
  done;
  let best, fbest = vertices.(0) in
  Obs.Metrics.incr m_nm_runs;
  Obs.Metrics.incr ~by:!iter m_nm_iterations;
  Obs.Metrics.incr ~by:!evals m_nm_evals;
  {
    x = best;
    f = fbest;
    iterations = !iter;
    converged = !converged;
    evaluations = !evals;
    spread = diameter ();
  }

let grid_search f ~ranges =
  let n = Array.length ranges in
  assert (n >= 1);
  let axis (lo, hi, count) =
    assert (count >= 1);
    if count = 1 then [| (lo +. hi) /. 2. |] else Vec.linspace lo hi count
  in
  let axes = Array.map axis ranges in
  let best_x = ref None and best_f = ref infinity in
  let point = Array.make n 0. in
  let rec walk dim =
    if dim = n then begin
      let v = f point in
      if v < !best_f then begin
        best_f := v;
        best_x := Some (Array.copy point)
      end
    end
    else
      Array.iter
        (fun x ->
          point.(dim) <- x;
          walk (dim + 1))
        axes.(dim)
  in
  walk 0;
  match !best_x with
  | Some x -> (x, !best_f)
  | None -> assert false

let multi_start_nelder_mead ?tol ?max_iter ~rng ~starts f ~lo ~hi =
  let n = Array.length lo in
  assert (Array.length hi = n && starts >= 1);
  let run x0 = nelder_mead ?tol ?max_iter f ~x0 in
  let best = ref (run (Array.init n (fun i -> (lo.(i) +. hi.(i)) /. 2.))) in
  for _ = 2 to starts do
    let x0 = Array.init n (fun i -> Rng.uniform rng lo.(i) hi.(i)) in
    let r = run x0 in
    if r.f < !best.f then best := r
  done;
  !best
