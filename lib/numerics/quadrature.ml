let trapezoid f ~a ~b ~n =
  assert (n >= 1);
  let h = (b -. a) /. float_of_int n in
  let acc = ref ((f a +. f b) /. 2.) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (h *. float_of_int i))
  done;
  !acc *. h

let simpson f ~a ~b ~n =
  let n = if n mod 2 = 0 then n else n + 1 in
  let n = Stdlib.max 2 n in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (a +. (h *. float_of_int i)))
  done;
  !acc *. h /. 3.

let simpson_memo f ~n =
  (* One-slot memo: time-stepping loops integrate the same x-independent
     interval once per grid cell; remembering the last (a, b) collapses
     that to once per step.  NaN sentinels never compare equal, so the
     first call always computes. *)
  let last_a = ref nan and last_b = ref nan and last_v = ref 0. in
  fun ~a ~b ->
    if !last_a = a && !last_b = b then !last_v
    else begin
      let v = simpson f ~a ~b ~n in
      last_a := a;
      last_b := b;
      last_v := v;
      v
    end

let trapezoid_sampled ~xs ~ys =
  let n = Array.length xs in
  assert (Array.length ys = n);
  let acc = ref 0. in
  for i = 0 to n - 2 do
    acc := !acc +. ((xs.(i + 1) -. xs.(i)) *. (ys.(i) +. ys.(i + 1)) /. 2.)
  done;
  !acc

let cumulative_trapezoid ~xs ~ys =
  let n = Array.length xs in
  assert (Array.length ys = n);
  let out = Array.make n 0. in
  for i = 1 to n - 1 do
    out.(i) <-
      out.(i - 1) +. ((xs.(i) -. xs.(i - 1)) *. (ys.(i) +. ys.(i - 1)) /. 2.)
  done;
  out

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) f ~a ~b =
  let simpson_3 fa fm fb a b = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = (a +. b) /. 2. in
    let lm = (a +. m) /. 2. and rm = (m +. b) /. 2. in
    let flm = f lm and frm = f rm in
    let left = simpson_3 fa flm fm a m in
    let right = simpson_3 fm frm fb m b in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15. *. tol then
      left +. right +. (delta /. 15.)
    else
      go a m fa flm fm left (tol /. 2.) (depth - 1)
      +. go m b fm frm fb right (tol /. 2.) (depth - 1)
  in
  let m = (a +. b) /. 2. in
  let fa = f a and fm = f m and fb = f b in
  go a b fa fm fb (simpson_3 fa fm fb a b) tol max_depth
