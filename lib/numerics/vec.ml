type t = float array

let create n x = Array.make n x
let init = Array.init
let copy = Array.copy
let dim = Array.length
let of_list = Array.of_list
let to_list = Array.to_list

let linspace a b n =
  assert (n >= 2);
  let h = (b -. a) /. Stdlib.float_of_int (n - 1) in
  Array.init n (fun i -> a +. (h *. Stdlib.float_of_int i))

let map = Array.map
let mapi = Array.mapi

let map2 f x y =
  let n = dim x in
  assert (dim y = n);
  Array.init n (fun i -> f x.(i) y.(i))

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let scale a = map (fun x -> a *. x)
let axpy a x y = map2 (fun xi yi -> (a *. xi) +. yi) x y

let axpy_inplace a x y =
  assert (dim x = dim y);
  for i = 0 to dim x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  let n = dim x in
  assert (dim y = n);
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let sum = Array.fold_left ( +. ) 0.
let mean x = sum x /. Stdlib.float_of_int (dim x)
let norm1 x = Array.fold_left (fun acc v -> acc +. Float.abs v) 0. x
let norm2 x = sqrt (dot x x)
let norm_inf x = Array.fold_left (fun acc v -> Stdlib.max acc (Float.abs v)) 0. x

let dist2 x y =
  let n = dim x in
  assert (dim y = n);
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let max x = Array.fold_left Stdlib.max neg_infinity x
let min x = Array.fold_left Stdlib.min infinity x

let arg_by better x =
  assert (dim x > 0);
  let best = ref 0 in
  for i = 1 to dim x - 1 do
    if better x.(i) x.(!best) then best := i
  done;
  !best

let argmax x = arg_by ( > ) x
let argmin x = arg_by ( < ) x
let clamp ~lo ~hi x = map (fun v -> Stdlib.max lo (Stdlib.min hi v)) x
let fold_left = Array.fold_left

let approx_equal ?(tol = 1e-9) x y =
  dim x = dim y
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= tol) x y

let pp ppf x =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    (Array.to_seq x)
