(** Piecewise interpolation over sampled grids.

    Lightweight companions to {!Spline} for reading values out of
    discretised solutions (e.g. sampling a PDE solution at integer
    distances). *)

val linear : xs:float array -> ys:float array -> float -> float
(** Piecewise-linear interpolation; clamps outside the range.
    [xs] strictly increasing, at least one point. *)

val nearest : xs:float array -> ys:float array -> float -> float
(** Value of the nearest sample point. *)

val bilinear :
  xs:float array -> ts:float array -> values:float array array ->
  float -> float -> float
(** [bilinear ~xs ~ts ~values x t] interpolates a surface sampled as
    [values.(i).(j)] at [(xs.(i), ts.(j))]; clamps outside the
    rectangle.  Used to read [I(x, t)] between grid nodes. *)

val bracket : float array -> float -> int
(** [bracket xs x] is the index [i] such that
    [xs.(i) <= x <= xs.(i+1)], clamped to the valid interval range;
    [0] when there is a single point. *)
