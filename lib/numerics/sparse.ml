type t = {
  nr : int;
  nc : int;
  row_ptr : int array;   (* length nr + 1 *)
  col_idx : int array;   (* length nnz, sorted within each row *)
  values : float array;  (* length nnz *)
}

let rows m = m.nr
let cols m = m.nc
let nnz m = Array.length m.values

let of_triplets ~rows:nr ~cols:nc triplets =
  assert (nr >= 0 && nc >= 0);
  (* bucket by row, then sort and merge duplicates within each row *)
  let buckets = Array.make nr [] in
  List.iter
    (fun (r, c, v) ->
      if r < 0 || r >= nr || c < 0 || c >= nc then
        invalid_arg "Sparse.of_triplets: index out of range";
      if v <> 0. then buckets.(r) <- (c, v) :: buckets.(r))
    triplets;
  let merged =
    Array.map
      (fun entries ->
        let sorted = List.sort (fun (a, _) (b, _) -> compare a b) entries in
        let rec merge = function
          | (c1, v1) :: (c2, v2) :: rest when c1 = c2 ->
            merge ((c1, v1 +. v2) :: rest)
          | pair :: rest -> pair :: merge rest
          | [] -> []
        in
        List.filter (fun (_, v) -> v <> 0.) (merge sorted))
      buckets
  in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 merged in
  let row_ptr = Array.make (nr + 1) 0 in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  let k = ref 0 in
  Array.iteri
    (fun r entries ->
      row_ptr.(r) <- !k;
      List.iter
        (fun (c, v) ->
          col_idx.(!k) <- c;
          values.(!k) <- v;
          incr k)
        entries)
    merged;
  row_ptr.(nr) <- !k;
  { nr; nc; row_ptr; col_idx; values }

let get m r c =
  assert (r >= 0 && r < m.nr && c >= 0 && c < m.nc);
  let lo = ref m.row_ptr.(r) and hi = ref (m.row_ptr.(r + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if m.col_idx.(mid) = c then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if m.col_idx.(mid) < c then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mv_into m x y =
  assert (Array.length x = m.nc && Array.length y = m.nr);
  for r = 0 to m.nr - 1 do
    let acc = ref 0. in
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(r) <- !acc
  done

let mv m x =
  let y = Array.make m.nr 0. in
  mv_into m x y;
  y

let scale s m = { m with values = Array.map (fun v -> s *. v) m.values }

let add_identity c m =
  if m.nr <> m.nc then invalid_arg "Sparse.add_identity: matrix not square";
  (* rebuild via triplets: simple and safe; diagonal may be absent *)
  let triplets = ref [] in
  for r = 0 to m.nr - 1 do
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      triplets := (r, m.col_idx.(k), m.values.(k)) :: !triplets
    done;
    triplets := (r, r, c) :: !triplets
  done;
  of_triplets ~rows:m.nr ~cols:m.nc !triplets

let transpose m =
  let triplets = ref [] in
  for r = 0 to m.nr - 1 do
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      triplets := (m.col_idx.(k), r, m.values.(k)) :: !triplets
    done
  done;
  of_triplets ~rows:m.nc ~cols:m.nr !triplets

let to_dense m = Mat.init m.nr m.nc (fun r c -> get m r c)

let conjugate_gradient ?(tol = 1e-10) ?max_iter ?x0 a b =
  if a.nr <> a.nc then invalid_arg "Sparse.conjugate_gradient: not square";
  let n = a.nr in
  assert (Array.length b = n);
  let max_iter = Option.value max_iter ~default:(2 * n) in
  let x = match x0 with Some v -> Array.copy v | None -> Array.make n 0. in
  let r = Array.make n 0. in
  mv_into a x r;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. r.(i)
  done;
  let p = Array.copy r in
  let ap = Array.make n 0. in
  let rs_old = ref (Vec.dot r r) in
  let b_norm = Float.max 1e-300 (Vec.norm2 b) in
  let iter = ref 0 in
  while sqrt !rs_old > tol *. b_norm && !iter < max_iter do
    incr iter;
    mv_into a p ap;
    let denom = Vec.dot p ap in
    if denom = 0. then iter := max_iter
    else begin
      let alpha = !rs_old /. denom in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. p.(i));
        r.(i) <- r.(i) -. (alpha *. ap.(i))
      done;
      let rs_new = Vec.dot r r in
      let beta = rs_new /. !rs_old in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done;
      rs_old := rs_new
    end
  done;
  x
