(** Two-space-dimensional reaction--diffusion with no-flux boundaries:

    {v
      u_t = dx u_xx + dy u_yy + f(x, y, t, u)   on [xl,xr] x [yl,yr]
      zero normal derivative on the boundary
      u(x, y, t0) = initial x y
    v}

    Time stepping is Strang-split: half reaction step (Heun), one full
    diffusion step by the Peaceman--Rachford ADI scheme (each
    half-sweep solves tridiagonal systems along one axis), half
    reaction step.  The per-axis operators use the same half-volume
    boundary cells as {!Pde}, so the tensor trapezoid mass of a pure
    diffusion solution is conserved exactly.

    This powers the joint hop x interest variant of the DL model —
    the natural generalisation of the paper's single spatial
    dimension. *)

type problem = {
  xl : float;
  xr : float;
  nx : int;  (** >= 3 *)
  yl : float;
  yr : float;
  ny : int;  (** >= 3 *)
  dx_coef : float;  (** diffusion along x, >= 0 *)
  dy_coef : float;  (** diffusion along y, >= 0 *)
  reaction : x:float -> y:float -> t:float -> u:float -> float;
  initial : float -> float -> float;
  t0 : float;
}

type solution = {
  xs : float array;
  ys : float array;
  ts : float array;
  values : float array array array;  (** [values.(it).(ix).(iy)] *)
}

val solve : ?dt:float -> problem -> times:float array -> solution
(** Default [dt = 0.02].  Snapshot at [t0] and each requested
    (increasing) time. *)

val value_at : solution -> x:float -> y:float -> t:float -> float
(** Bilinear in space at the recorded time nearest to [t]; clamped at
    the borders. *)

val mass : solution -> it:int -> float
(** Tensor trapezoid integral of the snapshot (exactly conserved for
    pure diffusion; used by tests). *)
