(** Derivative-free optimisation and root finding.

    These back the DL parameter calibration ([Dl.Fit]): a coarse grid
    scan to localise, then Nelder--Mead to polish.  Nothing here needs
    gradients, which matters because the objective evaluates a PDE
    solve. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Root of a continuous function with a sign change on [\[lo, hi\]].
    @raise Invalid_argument when [f lo] and [f hi] have the same sign. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Minimiser of a unimodal function on [\[lo, hi\]]. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Brent's method (golden section + successive parabolic
    interpolation); faster than [golden_section] on smooth
    objectives. *)

type result = {
  x : float array;   (** best point found *)
  f : float;         (** objective value at [x] *)
  iterations : int;
  converged : bool;  (** simplex/tolerance criterion met before the
                         iteration cap *)
  evaluations : int; (** objective evaluations performed *)
  spread : float;    (** final simplex diameter (max distance from the
                         best vertex) *)
}

val nelder_mead :
  ?tol:float -> ?max_iter:int -> ?step:float ->
  ?simplex:float array array ->
  (float array -> float) -> x0:float array -> result
(** Nelder--Mead downhill simplex from [x0] with initial edge [step]
    (default [0.1] of each coordinate's magnitude, min 0.05).
    Convergence when the simplex's objective spread falls under [tol]
    (default [1e-9]).  An explicit [simplex] — [n+1] vertices of
    dimension [n = Array.length x0] — replaces the default
    axis-aligned initial simplex, enabling warm starts from a prior
    run's final simplex; [x0] is then only used for its dimension.
    @raise Invalid_argument when [simplex] has the wrong shape. *)

val grid_search :
  (float array -> float) -> ranges:(float * float * int) array ->
  float array * float
(** Exhaustive scan of the Cartesian product of [ranges]
    ([lo, hi, count] per axis, [count >= 1]); returns the best point
    and its value. *)

val multi_start_nelder_mead :
  ?tol:float -> ?max_iter:int -> rng:Rng.t -> starts:int ->
  (float array -> float) -> lo:float array -> hi:float array -> result
(** Nelder--Mead from [starts] random points in the box; best result
    wins. *)
