(** Cubic Hermite interpolation with shape-preserving (PCHIP) slopes.

    The Fritsch--Carlson construction limits knot slopes so the
    interpolant is monotone wherever the data is, and never overshoots
    the local data range — unlike a C2 cubic spline, which can dip
    below zero between steeply decreasing density observations.  The
    price is C1 instead of C2 continuity; {!Dl.Initial} exposes both so
    the trade-off is an explicit modelling choice. *)

type t

val pchip : clamp_ends:bool -> xs:float array -> ys:float array -> t
(** Fritsch--Carlson slopes; [clamp_ends = true] forces zero end slopes
    (the paper's Neumann-compatible construction), [false] uses
    one-sided shape-preserving end slopes.  [xs] strictly increasing,
    at least two points. *)

val of_slopes : xs:float array -> ys:float array -> ms:float array -> t
(** Hermite interpolant with explicitly supplied knot slopes. *)

val eval : t -> float -> float
(** Constant extension outside the knot range. *)

val deriv : t -> float -> float
(** First derivative ([0.] outside the range). *)

val second_deriv : t -> float -> float
(** Second derivative (piecewise linear; discontinuous at knots —
    PCHIP is only C1).  [0.] outside the range. *)

val domain : t -> float * float
