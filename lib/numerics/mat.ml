type t = { nr : int; nc : int; data : float array }

exception Singular

let create nr nc x = { nr; nc; data = Array.make (nr * nc) x }

let init nr nc f =
  { nr; nc; data = Array.init (nr * nc) (fun k -> f (k / nc) (k mod nc)) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays rows =
  let nr = Array.length rows in
  assert (nr > 0);
  let nc = Array.length rows.(0) in
  assert (Array.for_all (fun r -> Array.length r = nc) rows);
  init nr nc (fun i j -> rows.(i).(j))

let rows m = m.nr
let cols m = m.nc
let get m i j = m.data.((i * m.nc) + j)
let set m i j x = m.data.((i * m.nc) + j) <- x
let to_arrays m = Array.init m.nr (fun i -> Array.init m.nc (get m i))
let copy m = { m with data = Array.copy m.data }
let transpose m = init m.nc m.nr (fun i j -> get m j i)

let map2 f a b =
  assert (a.nr = b.nr && a.nc = b.nc);
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add = map2 ( +. )
let sub = map2 ( -. )
let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  assert (a.nc = b.nr);
  let c = create a.nr b.nc 0. in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.nc - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let mv m x =
  assert (m.nc = Array.length x);
  Array.init m.nr (fun i ->
      let acc = ref 0. in
      for j = 0 to m.nc - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

type lu = { lu_mat : t; perm : int array; sign : float }

let lu_decompose a =
  assert (a.nr = a.nc);
  let n = a.nr in
  let m = copy a in
  let perm = Array.init n Fun.id in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !pivot k) then pivot := i
    done;
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let pkk = get m k k in
    if Float.abs pkk < 1e-300 then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = get m i k /. pkk in
      set m i k factor;
      for j = k + 1 to n - 1 do
        set m i j (get m i j -. (factor *. get m k j))
      done
    done
  done;
  { lu_mat = m; perm; sign = !sign }

let lu_solve { lu_mat = m; perm; _ } b =
  let n = m.nr in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (get m i j *. x.(j))
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (get m i j *. x.(j))
    done;
    x.(i) <- x.(i) /. get m i i
  done;
  x

let solve a b = lu_solve (lu_decompose a) b

let inverse a =
  let n = a.nr in
  let f = lu_decompose a in
  let out = create n n 0. in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let col = lu_solve f e in
    for i = 0 to n - 1 do
      set out i j col.(i)
    done
  done;
  out

let determinant a =
  match lu_decompose a with
  | { lu_mat = m; sign; _ } ->
    let n = m.nr in
    let acc = ref sign in
    for i = 0 to n - 1 do
      acc := !acc *. get m i i
    done;
    !acc
  | exception Singular -> 0.

let solve_least_squares a b =
  let at = transpose a in
  solve (mul at a) (mv at b)

let approx_equal ?(tol = 1e-9) a b =
  a.nr = b.nr && a.nc = b.nc
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp ppf m =
  for i = 0 to m.nr - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.nc - 1 do
      Format.fprintf ppf "%10.4g " (get m i j)
    done;
    Format.fprintf ppf "@]@\n"
  done
