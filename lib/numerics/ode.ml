type rhs = t:float -> y:Vec.t -> Vec.t

let euler_step f ~t ~dt ~y = Vec.axpy dt (f ~t ~y) y

let rk4_step f ~t ~dt ~y =
  let k1 = f ~t ~y in
  let k2 = f ~t:(t +. (dt /. 2.)) ~y:(Vec.axpy (dt /. 2.) k1 y) in
  let k3 = f ~t:(t +. (dt /. 2.)) ~y:(Vec.axpy (dt /. 2.) k2 y) in
  let k4 = f ~t:(t +. dt) ~y:(Vec.axpy dt k3 y) in
  Vec.init (Vec.dim y) (fun i ->
      y.(i) +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let integrate ?(step = `Rk4) f ~y0 ~t0 ~times =
  let stepper =
    match step with `Euler -> euler_step f | `Rk4 -> rk4_step f
  in
  let substeps_per_unit = 32. in
  let y = ref (Vec.copy y0) and t = ref t0 in
  Array.map
    (fun target ->
      assert (target >= !t);
      let span = target -. !t in
      if span > 0. then begin
        let n = Stdlib.max 1 (int_of_float (ceil (span *. substeps_per_unit))) in
        let dt = span /. float_of_int n in
        for _ = 1 to n do
          y := stepper ~t:!t ~dt ~y:!y;
          t := !t +. dt
        done;
        t := target
      end;
      (target, Vec.copy !y))
    times

(* Fehlberg 4(5) tableau. *)
let rkf45 ?(tol = 1e-8) ?(dt0 = 1e-2) ?(dt_min = 1e-12) f ~y0 ~t0 ~t1 =
  assert (t1 >= t0);
  let y = ref (Vec.copy y0) and t = ref t0 and dt = ref dt0 in
  while !t < t1 do
    let dt_eff = Float.min !dt (t1 -. !t) in
    let yv = !y in
    let at c coeffs ks =
      let acc = Vec.copy yv in
      List.iter2 (fun a k -> Vec.axpy_inplace (a *. dt_eff) k acc) coeffs ks;
      f ~t:(!t +. (c *. dt_eff)) ~y:acc
    in
    let k1 = f ~t:!t ~y:yv in
    let k2 = at 0.25 [ 0.25 ] [ k1 ] in
    let k3 = at 0.375 [ 3. /. 32.; 9. /. 32. ] [ k1; k2 ] in
    let k4 =
      at (12. /. 13.)
        [ 1932. /. 2197.; -7200. /. 2197.; 7296. /. 2197. ]
        [ k1; k2; k3 ]
    in
    let k5 =
      at 1.
        [ 439. /. 216.; -8.; 3680. /. 513.; -845. /. 4104. ]
        [ k1; k2; k3; k4 ]
    in
    let k6 =
      at 0.5
        [ -8. /. 27.; 2.; -3544. /. 2565.; 1859. /. 4104.; -11. /. 40. ]
        [ k1; k2; k3; k4; k5 ]
    in
    let n = Vec.dim yv in
    let y4 =
      Vec.init n (fun i ->
          yv.(i)
          +. (dt_eff
              *. ((25. /. 216. *. k1.(i))
                  +. (1408. /. 2565. *. k3.(i))
                  +. (2197. /. 4104. *. k4.(i))
                  -. (k5.(i) /. 5.))))
    in
    let y5 =
      Vec.init n (fun i ->
          yv.(i)
          +. (dt_eff
              *. ((16. /. 135. *. k1.(i))
                  +. (6656. /. 12825. *. k3.(i))
                  +. (28561. /. 56430. *. k4.(i))
                  -. (9. /. 50. *. k5.(i))
                  +. (2. /. 55. *. k6.(i)))))
    in
    let err = Vec.norm_inf (Vec.sub y5 y4) in
    if err <= tol || dt_eff <= dt_min then begin
      y := y5;
      t := !t +. dt_eff
    end;
    (* Standard step-size controller with safety factor. *)
    let scale =
      if err = 0. then 2.
      else Float.min 2. (Float.max 0.1 (0.9 *. ((tol /. err) ** 0.2)))
    in
    dt := Float.max dt_min (dt_eff *. scale)
  done;
  !y

let scalar_rhs f : rhs = fun ~t ~y -> [| f ~t ~y:y.(0) |]

let logistic ~r ~k ~n0 t =
  assert (k > 0.);
  if n0 = 0. then 0.
  else k /. (1. +. (((k /. n0) -. 1.) *. exp (-.r *. t)))

let logistic_varying_r ~r_integral ~k ~n0 t =
  assert (k > 0.);
  if n0 = 0. then 0.
  else k /. (1. +. (((k /. n0) -. 1.) *. exp (-.r_integral t)))
