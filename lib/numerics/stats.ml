let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let quantile xs q =
  assert (Array.length xs > 0 && q >= 0. && q <= 1.);
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let w = pos -. float_of_int lo in
  ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median xs = quantile xs 0.5
let min xs = Array.fold_left Stdlib.min infinity xs
let max xs = Array.fold_left Stdlib.max neg_infinity xs

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

let summarize xs =
  {
    n = Array.length xs;
    mean = mean xs;
    std = std xs;
    min = min xs;
    q25 = quantile xs 0.25;
    median = median xs;
    q75 = quantile xs 0.75;
    max = max xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g std=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g"
    s.n s.mean s.std s.min s.q25 s.median s.q75 s.max

let histogram ?(bins = 10) xs =
  assert (bins > 0 && Array.length xs > 0);
  let lo = min xs and hi = max xs in
  let hi = if hi = lo then lo +. 1. else hi in
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.init bins (fun b ->
      (lo +. (width *. float_of_int b), lo +. (width *. float_of_int (b + 1)), counts.(b)))

let paired f pred actual =
  let n = Array.length pred in
  assert (Array.length actual = n && n > 0);
  f n

let rmse pred actual =
  paired
    (fun n ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let d = pred.(i) -. actual.(i) in
        acc := !acc +. (d *. d)
      done;
      sqrt (!acc /. float_of_int n))
    pred actual

let mae pred actual =
  paired
    (fun n ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. Float.abs (pred.(i) -. actual.(i))
      done;
      !acc /. float_of_int n)
    pred actual

let mape pred actual =
  paired
    (fun n ->
      let acc = ref 0. and used = ref 0 in
      for i = 0 to n - 1 do
        if actual.(i) <> 0. then begin
          acc := !acc +. Float.abs ((pred.(i) -. actual.(i)) /. actual.(i));
          incr used
        end
      done;
      if !used = 0 then 0. else !acc /. float_of_int !used)
    pred actual

let pearson xs ys =
  let n = Array.length xs in
  assert (Array.length ys = n && n > 0);
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  !sxy /. sqrt (!sxx *. !syy)

let linear_regression xs ys =
  let n = Array.length xs in
  assert (Array.length ys = n && n >= 2);
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  (slope, intercept, r2)
