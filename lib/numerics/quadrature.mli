(** Numerical integration.

    Used for the exact time-varying-rate logistic solution (which needs
    the integral of [r]), for mass-conservation checks of the pure
    diffusion operator, and in tests. *)

val trapezoid : (float -> float) -> a:float -> b:float -> n:int -> float
(** Composite trapezoid rule with [n >= 1] sub-intervals. *)

val simpson : (float -> float) -> a:float -> b:float -> n:int -> float
(** Composite Simpson rule; [n] is rounded up to an even count. *)

val simpson_memo : (float -> float) -> n:int -> (a:float -> b:float -> float)
(** [simpson_memo f ~n] is {!simpson} behind a one-slot memo on
    [(a, b)]: a repeat of the previous interval returns the cached
    value (bit-identical — it {e is} the previous value).  Built for
    per-time-step integrals that are re-requested once per grid cell.
    The returned closure is stateful: create one per solve and do not
    share it across domains. *)

val trapezoid_sampled : xs:float array -> ys:float array -> float
(** Trapezoid rule over an already-sampled (possibly non-uniform)
    grid. *)

val cumulative_trapezoid : xs:float array -> ys:float array -> float array
(** [cumulative_trapezoid ~xs ~ys] is the running integral; element 0
    is [0.]. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> a:float -> b:float -> float
(** Recursive adaptive Simpson integration (default [tol = 1e-10],
    [max_depth = 50]). *)
