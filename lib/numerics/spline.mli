(** Cubic spline interpolation.

    Classic moment (second-derivative) formulation: the moments solve a
    diagonally dominant tridiagonal system, and each interval is a cubic
    with C2 continuity at the knots.  This mirrors the Matlab
    cubic-spline package the paper relies on for constructing the
    initial density function [phi].

    The paper's construction (Section II.D) needs clamped boundary
    conditions with zero end slopes plus constant ("flat") extension
    outside the data range; [flat_ends] builds exactly that. *)

type boundary =
  | Natural  (** zero second derivative at both ends *)
  | Clamped of float * float
      (** prescribed first derivatives at the left and right ends *)

type extrapolation =
  | Flat     (** constant boundary value outside the knot range *)
  | Linear   (** continue with the boundary slope *)
  | Error    (** raise [Invalid_argument] outside the knot range *)

type t

val make : ?boundary:boundary -> ?extrapolation:extrapolation ->
  xs:float array -> ys:float array -> unit -> t
(** [make ~xs ~ys ()] interpolates the points [(xs.(i), ys.(i))].
    [xs] must be strictly increasing with at least two points.
    Defaults: [Natural], [Flat]. *)

val flat_ends : xs:float array -> ys:float array -> t
(** The paper's initial-density construction: clamped spline with
    [phi'(l) = phi'(L) = 0] and flat extension, so the Neumann
    boundary requirement holds exactly. *)

val eval : t -> float -> float
val deriv : t -> float -> float
(** First derivative.  Outside the knot range the [Flat] mode reports
    [0.] and [Linear] the boundary slope. *)

val second_deriv : t -> float -> float
(** Second derivative (piecewise linear in x; [0.] outside the range
    under [Flat]/[Linear]). *)

val knots : t -> (float * float) array
val domain : t -> float * float

val to_function : t -> float -> float
(** [to_function s] is [eval s] as a plain function. *)
