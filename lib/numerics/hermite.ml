type t = {
  xs : float array;
  ys : float array;
  ms : float array; (* knot slopes *)
}

let of_slopes ~xs ~ys ~ms =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Hermite.of_slopes: need at least two points";
  if Array.length ys <> n || Array.length ms <> n then
    invalid_arg "Hermite.of_slopes: length mismatch";
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then
      invalid_arg "Hermite.of_slopes: xs must be strictly increasing"
  done;
  { xs = Array.copy xs; ys = Array.copy ys; ms = Array.copy ms }

(* Fritsch–Carlson shape-preserving slopes. *)
let pchip ~clamp_ends ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Hermite.pchip: need at least two points";
  if Array.length ys <> n then invalid_arg "Hermite.pchip: length mismatch";
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  Array.iter (fun dx -> if dx <= 0. then invalid_arg "Hermite.pchip: xs order") h;
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let ms = Array.make n 0. in
  (* interior: weighted harmonic mean when secants share a sign *)
  for i = 1 to n - 2 do
    if delta.(i - 1) *. delta.(i) > 0. then begin
      let w1 = (2. *. h.(i)) +. h.(i - 1) in
      let w2 = h.(i) +. (2. *. h.(i - 1)) in
      ms.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
    end
  done;
  (* ends: one-sided three-point estimate, limited to preserve shape *)
  let end_slope h0 h1 d0 d1 =
    let m = (((2. *. h0) +. h1) *. d0 -. (h0 *. d1)) /. (h0 +. h1) in
    if m *. d0 <= 0. then 0.
    else if d0 *. d1 <= 0. && Float.abs m > 3. *. Float.abs d0 then 3. *. d0
    else m
  in
  if not clamp_ends then begin
    if n = 2 then begin
      ms.(0) <- delta.(0);
      ms.(1) <- delta.(0)
    end
    else begin
      ms.(0) <- end_slope h.(0) h.(1) delta.(0) delta.(1);
      ms.(n - 1) <- end_slope h.(n - 2) h.(n - 3) delta.(n - 2) delta.(n - 3)
    end
  end;
  (* clamp_ends: slopes stay 0 at both ends, which is shape-safe *)
  { xs = Array.copy xs; ys = Array.copy ys; ms }

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let interval t x =
  let n = Array.length t.xs in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) <= x then lo := mid else hi := mid
  done;
  !lo

let eval t x =
  let l, r = domain t in
  if x <= l then t.ys.(0)
  else if x >= r then t.ys.(Array.length t.xs - 1)
  else begin
    let i = interval t x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let s = (x -. t.xs.(i)) /. h in
    let s2 = s *. s in
    let s3 = s2 *. s in
    let h00 = (2. *. s3) -. (3. *. s2) +. 1. in
    let h10 = s3 -. (2. *. s2) +. s in
    let h01 = (-2. *. s3) +. (3. *. s2) in
    let h11 = s3 -. s2 in
    (h00 *. t.ys.(i))
    +. (h10 *. h *. t.ms.(i))
    +. (h01 *. t.ys.(i + 1))
    +. (h11 *. h *. t.ms.(i + 1))
  end

let deriv t x =
  let l, r = domain t in
  if x < l || x > r then 0.
  else begin
    let i = if x = r then Array.length t.xs - 2 else interval t x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let s = (x -. t.xs.(i)) /. h in
    let s2 = s *. s in
    let h00' = (6. *. s2) -. (6. *. s) in
    let h10' = (3. *. s2) -. (4. *. s) +. 1. in
    let h01' = (-6. *. s2) +. (6. *. s) in
    let h11' = (3. *. s2) -. (2. *. s) in
    ((h00' *. t.ys.(i)) /. h)
    +. (h10' *. t.ms.(i))
    +. ((h01' *. t.ys.(i + 1)) /. h)
    +. (h11' *. t.ms.(i + 1))
  end

let second_deriv t x =
  let l, r = domain t in
  if x < l || x > r then 0.
  else begin
    let i = if x = r then Array.length t.xs - 2 else interval t x in
    let h = t.xs.(i + 1) -. t.xs.(i) in
    let s = (x -. t.xs.(i)) /. h in
    let h00'' = (12. *. s) -. 6. in
    let h10'' = (6. *. s) -. 4. in
    let h01'' = (-12. *. s) +. 6. in
    let h11'' = (6. *. s) -. 2. in
    ((h00'' *. t.ys.(i)) /. (h *. h))
    +. ((h10'' *. t.ms.(i)) /. h)
    +. ((h01'' *. t.ys.(i + 1)) /. (h *. h))
    +. ((h11'' *. t.ms.(i + 1)) /. h)
  end
