(* Sequential backend for compilers without Domains (OCaml 4.x).  Same
   observable behaviour as the Domains backend for pool size 1, which is
   all {!Pool} ever requests from it. *)

let domains_available = false

let recommended_jobs () = 1

let run thunks = Array.iter (fun thunk -> thunk ()) thunks
