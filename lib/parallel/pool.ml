type t = { jobs : int }

let env_var = "DLOSN_NUM_DOMAINS"

let default_jobs () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

let domains_available = Pool_scheduler.domains_available

let recommended_jobs () = Pool_scheduler.recommended_jobs ()

let sequential = { jobs = 1 }

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.Pool.create: jobs must be >= 1";
  { jobs = (if domains_available then jobs else 1) }

let jobs t = t.jobs

(* Contiguous static partition: worker [k] of [w] owns indices
   [k*n/w .. (k+1)*n/w - 1].  Independent of timing, so the work an
   index runs next to never changes between runs. *)
let block ~n ~workers k =
  let lo = k * n / workers and hi = (k + 1) * n / workers in
  (lo, hi)

let m_parallel_calls = Obs.Metrics.counter "pool.parallel_calls"
let m_imbalance = Obs.Metrics.gauge "pool.imbalance"

(* Per-domain accounting, folded into the merged context after the
   workers join.  Registration is idempotent, so looking the handles up
   per call is fine (it is far off the hot path). *)
let record_domain_stats ~workers ~n ~busy_ns =
  let total = ref 0 and max_busy = ref 0 in
  for k = 0 to workers - 1 do
    let lo, hi = block ~n ~workers k in
    let label = string_of_int k in
    Obs.Metrics.incr ~by:(hi - lo)
      (Obs.Metrics.counter ~label "pool.tasks_per_domain");
    Obs.Metrics.incr ~by:busy_ns.(k) (Obs.Metrics.counter ~label "pool.busy_ns");
    total := !total + busy_ns.(k);
    if busy_ns.(k) > !max_busy then max_busy := busy_ns.(k)
  done;
  let mean = float_of_int !total /. float_of_int workers in
  let imbalance =
    if mean > 0. then float_of_int !max_busy /. mean else 1.
  in
  Obs.Metrics.set m_imbalance imbalance;
  Obs.Log.debug "pool.summary" ~fields:(fun () ->
      let busy_ms =
        String.concat ","
          (List.init workers (fun k ->
               Printf.sprintf "%.1f" (float_of_int busy_ns.(k) /. 1e6)))
      in
      [
        Obs.Log.int "workers" workers;
        Obs.Log.int "tasks" n;
        Obs.Log.str "busy_ms" busy_ms;
        Obs.Log.float "imbalance" imbalance;
      ])

let parallel_for t ~n body =
  if n <= 0 then ()
  else if t.jobs = 1 || n = 1 then
    for i = 0 to n - 1 do
      body i
    done
  else begin
    let workers = min t.jobs n in
    (* One error slot per worker, written only by its owner: no locks
       needed, and the post-join scan below is deterministic. *)
    let errors = Array.make workers None in
    let obs_on = Obs.enabled () in
    (* Each worker records metrics and spans into a private shard; the
       shards are merged below, in worker-index order, so instrumented
       totals are exact and deterministic. *)
    let shards =
      if obs_on then Array.init workers (fun _ -> Obs.Shard.create ())
      else [||]
    in
    let busy_ns = Array.make (if obs_on then workers else 1) 0 in
    let run_block k () =
      let lo, hi = block ~n ~workers k in
      let i = ref lo in
      while !i < hi && errors.(k) = None do
        (match body !i with
        | () -> ()
        | exception e ->
          errors.(k) <- Some (!i, e, Printexc.get_raw_backtrace ()));
        incr i
      done
    in
    let worker k () =
      if obs_on then
        (* with_shard also saves/restores the calling domain's context,
           which matters because worker 0 runs on the calling domain. *)
        Obs.Shard.with_shard shards.(k) (fun () ->
            let t0 = Obs.now_ns () in
            Fun.protect
              ~finally:(fun () -> busy_ns.(k) <- Obs.now_ns () - t0)
              (run_block k))
      else run_block k ()
    in
    Pool_scheduler.run (Array.init workers worker);
    if obs_on then begin
      Array.iter Obs.Shard.merge shards;
      Obs.Metrics.incr m_parallel_calls;
      record_domain_stats ~workers ~n ~busy_ns
    end;
    (* Blocks are index-ordered, so the first recorded error is the one
       with the smallest failing item index. *)
    Array.iter
      (function
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce t ~map ~fold ~init xs =
  Array.fold_left fold init (parallel_map t map xs)

let run_workers ~jobs body =
  if jobs < 1 then invalid_arg "Parallel.Pool.run_workers: jobs must be >= 1";
  Pool_scheduler.run (Array.init jobs (fun k () -> body k))
