type t = { jobs : int }

let env_var = "DLOSN_NUM_DOMAINS"

let default_jobs () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

let domains_available = Pool_scheduler.domains_available

let recommended_jobs () = Pool_scheduler.recommended_jobs ()

let sequential = { jobs = 1 }

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.Pool.create: jobs must be >= 1";
  { jobs = (if domains_available then jobs else 1) }

let jobs t = t.jobs

(* Contiguous static partition: worker [k] of [w] owns indices
   [k*n/w .. (k+1)*n/w - 1].  Independent of timing, so the work an
   index runs next to never changes between runs. *)
let block ~n ~workers k =
  let lo = k * n / workers and hi = (k + 1) * n / workers in
  (lo, hi)

let parallel_for t ~n body =
  if n <= 0 then ()
  else if t.jobs = 1 || n = 1 then
    for i = 0 to n - 1 do
      body i
    done
  else begin
    let workers = min t.jobs n in
    (* One error slot per worker, written only by its owner: no locks
       needed, and the post-join scan below is deterministic. *)
    let errors = Array.make workers None in
    let worker k () =
      let lo, hi = block ~n ~workers k in
      let i = ref lo in
      while !i < hi && errors.(k) = None do
        (match body !i with
        | () -> ()
        | exception e ->
          errors.(k) <- Some (!i, e, Printexc.get_raw_backtrace ()));
        incr i
      done
    in
    Pool_scheduler.run (Array.init workers worker);
    (* Blocks are index-ordered, so the first recorded error is the one
       with the smallest failing item index. *)
    Array.iter
      (function
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce t ~map ~fold ~init xs =
  Array.fold_left fold init (parallel_map t map xs)
