(** Work pool for domain-parallel loops with deterministic results.

    Every automatic calibration in the DL pipeline is a multi-start
    optimisation where each objective evaluation is a full PDE solve,
    and batch evaluation repeats that per story.  Those loops are
    embarrassingly parallel — each item owns an independent
    [Numerics.Rng] stream — so this module provides the one primitive
    they need: run [n] independent index-addressed tasks on up to
    [jobs] worker domains and collect the results {e in index order}.

    {2 Determinism contract}

    For a fixed seed, a parallel run is bit-identical to a sequential
    run provided the per-item work is itself deterministic and shares
    no mutable state across items (the library's fit/batch/sensitivity
    loops satisfy this by construction):

    - items are partitioned into contiguous index blocks, statically,
      so the assignment of items to workers never depends on timing;
    - results are written into per-index slots and reduced in index
      order after all workers have joined — no racy accumulation;
    - when workers raise, the exception re-raised to the caller is the
      one from the {e smallest failing item index} (with its original
      backtrace), matching what a sequential left-to-right loop would
      have reported first.

    On OCaml 4.x (no Domains) every pool degrades to [jobs = 1] and the
    loops run sequentially on the calling thread; results are identical
    by the same contract.

    {2 Observability}

    When {!Obs.enabled} is on, each worker domain records metrics and
    spans into a private [Obs.Shard], merged on the calling domain in
    worker-index order after the join — so instrumented parallel runs
    report exact totals and stay bit-identical in their numeric
    results.  Each parallel call additionally records
    [pool.tasks_per_domain] and [pool.busy_ns] counters (labelled by
    worker index), a [pool.imbalance] gauge (max busy time over mean),
    and a debug-level [pool.summary] log line at teardown. *)

type t
(** A pool is just a worker-count policy; workers are spawned per call
    and joined before the call returns, so a [t] is cheap, immutable
    and safe to share. *)

val env_var : string
(** ["DLOSN_NUM_DOMAINS"] — the environment variable consulted by
    {!default_jobs}. *)

val default_jobs : unit -> int
(** Value of [DLOSN_NUM_DOMAINS] when set to a positive integer, [1]
    otherwise (parallelism is strictly opt-in). *)

val domains_available : bool
(** Whether this build can run workers concurrently (OCaml >= 5.0). *)

val recommended_jobs : unit -> int
(** The runtime's recommended domain count ([1] without Domains). *)

val sequential : t
(** The one-worker pool: all loops run inline on the caller. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] makes a pool of [jobs] workers ([jobs] defaults
    to {!default_jobs}[ ()]).  Clamped to [1] when Domains are
    unavailable.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Effective worker count of the pool. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n body] runs [body i] for every
    [i] in [0 .. n - 1], partitioned into [jobs pool] contiguous
    blocks.  [body] must not share unsynchronised mutable state across
    indices (writing to slot [i] of a result array is fine).  A raising
    index aborts the remainder of its own block; the smallest failing
    index's exception is re-raised after all workers join. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] with the applications
    distributed over the pool; the result order is the input order. *)

val map_reduce :
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc ->
  'a array -> 'acc
(** [map_reduce pool ~map ~fold ~init xs] maps in parallel, then folds
    the mapped values {e sequentially in index order} — deterministic
    even for non-commutative [fold]. *)

val run_workers : jobs:int -> (int -> unit) -> unit
(** [run_workers ~jobs body] runs [body 0 .. body (jobs - 1)] as
    long-lived cooperating workers and returns once every body has
    finished.  Unlike {!parallel_for} this makes no determinism or
    independence promises: it is the raw scheduler hook for components
    that coordinate through their own synchronisation — e.g. a server's
    accept loop feeding connection handlers.  [body 0] runs on the
    calling domain.  On OCaml 4.x (or [jobs = 1]) the bodies run
    {e sequentially in order}, so they must be written to terminate
    without relying on each other running concurrently.
    @raise Invalid_argument if [jobs < 1]. *)
