(* Domains backend (OCaml >= 5.0).  The first thunk runs on the calling
   domain so a batch of [w] workers costs [w - 1] spawns. *)

let domains_available = true

let recommended_jobs () = Domain.recommended_domain_count ()

let run thunks =
  match Array.length thunks with
  | 0 -> ()
  | 1 -> thunks.(0) ()
  | n ->
    let spawned =
      Array.init (n - 1) (fun i -> Domain.spawn thunks.(i + 1))
    in
    thunks.(0) ();
    Array.iter Domain.join spawned
