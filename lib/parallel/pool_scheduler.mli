(** Backend behind {!Pool}: how a batch of worker thunks is executed.

    Two interchangeable implementations exist; dune copies the right one
    to [pool_scheduler.ml] based on the compiler version:

    - [pool_scheduler_domains.ml] (OCaml >= 5.0) spawns one Domain per
      thunk beyond the first and runs the first on the calling domain;
    - [pool_scheduler_seq.ml] (OCaml 4.x) runs the thunks in order on
      the calling thread.

    Thunks must not raise: {!Pool} wraps every worker so that exceptions
    are recorded and re-raised deterministically after the batch. *)

val domains_available : bool
(** [true] iff this build can actually run workers concurrently. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5, [1] otherwise. *)

val run : (unit -> unit) array -> unit
(** Run every thunk to completion and return once all have finished.
    Concurrent on OCaml 5 (one domain per extra thunk), sequential
    otherwise.  The array length is expected to be small (it is the
    number of workers, not the number of items). *)
