(** Node centrality measures.

    Used to study which initiators produce large cascades (the
    influence question raised by the paper's related work, Kempe et
    al.): follower counts, PageRank and k-core give three views of an
    initiator's network position. *)

val in_degree_ranking : Digraph.t -> int array
(** Node ids sorted by in-degree, descending (in a follower graph
    where [u -> v] means "u follows v", in-degree = follower count). *)

val pagerank :
  ?damping:float -> ?iterations:int -> ?tol:float -> Digraph.t -> float array
(** Power-iteration PageRank over {e reversed} influence (the standard
    convention: a node is important when important nodes link to it;
    here, when important users follow it).  Dangling mass is
    redistributed uniformly.  Scores sum to 1.
    Defaults: [damping = 0.85], [iterations = 100], [tol = 1e-10]. *)

val k_core : Digraph.t -> int array
(** Core number of each node in the {e undirected} version of the
    graph (Batagelj--Zaversnik peeling). *)

val top : float array -> n:int -> (int * float) array
(** Indices of the [n] largest scores, descending. *)
