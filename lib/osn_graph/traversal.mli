(** Graph traversals: BFS distances, components.

    [bfs_distances] is what defines the paper's "friendship hops"
    distance metric: the shortest-path hop count from a story's
    initiator to every other user. *)

val bfs_distances : Digraph.t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src]
    following out-edges; unreachable nodes get [-1]. *)

val bfs_distances_multi : Digraph.t -> int list -> int array
(** Distances from the nearest of several sources. *)

val shortest_path : Digraph.t -> int -> int -> int list option
(** [shortest_path g src dst] is a node list from [src] to [dst]
    inclusive, or [None] if unreachable. *)

val weakly_connected_components : Digraph.t -> int array * int
(** [(comp, count)]: [comp.(v)] is the component label of [v] in
    [0 .. count-1], ignoring edge direction. *)

val strongly_connected_components : Digraph.t -> int array * int
(** Tarjan's algorithm, iterative (safe on deep graphs).  Labels are
    in reverse topological order of the condensation. *)

val is_reachable : Digraph.t -> int -> int -> bool

val reachable_count : Digraph.t -> int -> int
(** Number of nodes reachable from [src], including [src]. *)
