(** Random and deterministic graph generators.

    The synthetic Digg follower graph uses [barabasi_albert] (measured
    Digg follower graphs are heavy-tailed) with a reciprocity pass, as
    built by [Socialnet.Digg].  The remaining generators serve tests,
    examples and the ablation benches. *)

val erdos_renyi : Numerics.Rng.t -> n:int -> p:float -> Digraph.t
(** G(n, p): each ordered pair (u, v), u <> v, is an edge with
    probability [p]. *)

val barabasi_albert :
  Numerics.Rng.t -> n:int -> m:int -> ?reciprocity:float -> unit -> Digraph.t
(** Preferential attachment: nodes arrive one at a time and follow [m]
    existing nodes chosen proportionally to in-degree + 1 (the new
    node's edges point at the chosen targets, "new user follows
    popular users").  With probability [reciprocity] (default 0.3,
    roughly the reciprocity reported for Digg) the followed user
    follows back.  Requires [n > m >= 1]. *)

val watts_strogatz : Numerics.Rng.t -> n:int -> k:int -> beta:float -> Digraph.t
(** Small-world ring: each node connects to its [k] nearest neighbours
    ([k] even), each edge rewired with probability [beta]; edges are
    added in both directions. *)

val configuration_model : Numerics.Rng.t -> out_degrees:int array -> Digraph.t
(** Directed configuration model: out-stubs as prescribed, targets
    uniform; multi-edges and self-loops are dropped, so realised
    degrees can fall slightly short. *)

val star : int -> Digraph.t
(** Node 0 points at every other node. *)

val ring : int -> Digraph.t
(** Directed cycle 0 -> 1 -> ... -> n-1 -> 0. *)

val line : int -> Digraph.t
(** Directed path 0 -> 1 -> ... -> n-1. *)

val complete : int -> Digraph.t
(** All ordered pairs. *)
