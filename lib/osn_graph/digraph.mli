(** Compact directed graphs over integer node ids [0 .. n-1].

    The representation targets the scale of the synthetic Digg corpus
    (10^5 nodes, 10^6 edges): append-friendly adjacency vectors and an
    in-adjacency index maintained incrementally, so both follower and
    followee traversals are O(degree). *)

type t

val create : int -> t
(** [create n] is an edgeless graph with nodes [0 .. n-1]. *)

val n_nodes : t -> int
val n_edges : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds the directed edge [u -> v].  Duplicate edges
    and self-loops are ignored (the social graph is simple). *)

val has_edge : t -> int -> int -> bool

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph with [n] nodes and the given
    directed edges. *)

val out_neighbors : t -> int -> int array
(** Successors of a node (fresh array). *)

val in_neighbors : t -> int -> int array
(** Predecessors of a node (fresh array). *)

val iter_out : t -> int -> (int -> unit) -> unit
(** Iterate successors without allocating. *)

val iter_in : t -> int -> (int -> unit) -> unit

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate all edges [(u, v)] in unspecified order. *)

val edges : t -> (int * int) list

val reverse : t -> t
(** Graph with every edge flipped. *)

val pp : Format.formatter -> t -> unit
(** Summary line (node/edge counts), not the full edge list. *)
