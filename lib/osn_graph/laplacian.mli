(** Graph Laplacians as sparse matrices.

    The network variant of the DL model replaces the 1-D operator
    [d2/dx2] with the (negated) graph Laplacian of the undirected social
    graph, so diffusion acts along actual social ties.  Both the
    combinatorial Laplacian [L = D - A] and the degree-normalised
    random-walk form are provided. *)

val undirected_laplacian : Digraph.t -> Numerics.Sparse.t
(** Combinatorial Laplacian [D - A] of the underlying undirected simple
    graph (symmetric positive semi-definite; row sums are zero). *)

val normalized_laplacian : Digraph.t -> Numerics.Sparse.t
(** Symmetric normalised Laplacian [I - D^{-1/2} A D^{-1/2}] (isolated
    nodes get an all-zero row). *)

val degrees : Digraph.t -> int array
(** Undirected degrees (used by both constructions). *)
