open Numerics

let erdos_renyi rng ~n ~p =
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.bernoulli rng p then Digraph.add_edge g u v
    done
  done;
  g

(* Preferential attachment via the repeated-targets trick: sampling
   uniformly from the endpoint multiset weights nodes by degree.  We
   seed every node with one "virtual" stub so degree-0 nodes stay
   reachable (degree + 1 weighting). *)
let barabasi_albert rng ~n ~m ?(reciprocity = 0.3) () =
  if not (n > m && m >= 1) then
    invalid_arg "Generators.barabasi_albert: need n > m >= 1";
  let g = Digraph.create n in
  (* endpoint multiset: a uniform pick from this bag weights nodes by
     the number of times they were followed (in-degree) *)
  let bag = ref (Array.make 1024 0) and bag_size = ref 0 in
  let push v =
    if !bag_size = Array.length !bag then begin
      let bigger = Array.make (2 * !bag_size) 0 in
      Array.blit !bag 0 bigger 0 !bag_size;
      bag := bigger
    end;
    !bag.(!bag_size) <- v;
    incr bag_size
  in
  let pick_target limit =
    (* mostly preferential over nodes < limit, with a uniform escape
       hatch so low-degree nodes remain reachable *)
    let rec draw attempts =
      if attempts > 64 then Rng.int rng limit
      else begin
        let candidate =
          if Rng.bernoulli rng 0.9 then !bag.(Rng.int rng !bag_size)
          else Rng.int rng limit
        in
        if candidate < limit then candidate else draw (attempts + 1)
      end
    in
    draw 0
  in
  (* fully connect the first m+1 nodes *)
  for u = 0 to m do
    for v = 0 to m do
      if u <> v then begin
        Digraph.add_edge g u v;
        push v
      end
    done
  done;
  for u = m + 1 to n - 1 do
    let added = ref 0 and attempts = ref 0 in
    while !added < m && !attempts < 50 * m do
      incr attempts;
      let v = pick_target u in
      if v <> u && not (Digraph.has_edge g u v) then begin
        Digraph.add_edge g u v;
        push v;
        if Rng.bernoulli rng reciprocity then begin
          Digraph.add_edge g v u;
          push u
        end;
        incr added
      end
    done
  done;
  g

let watts_strogatz rng ~n ~k ~beta =
  if k mod 2 <> 0 || k <= 0 || k >= n then
    invalid_arg "Generators.watts_strogatz: need even 0 < k < n";
  let g = Digraph.create n in
  let add_both u v =
    Digraph.add_edge g u v;
    Digraph.add_edge g v u
  in
  for u = 0 to n - 1 do
    for j = 1 to k / 2 do
      let v = (u + j) mod n in
      if Rng.bernoulli rng beta then begin
        (* rewire to a uniform non-neighbour *)
        let rec pick attempts =
          let w = Rng.int rng n in
          if attempts > 32 then v
          else if w = u || Digraph.has_edge g u w then pick (attempts + 1)
          else w
        in
        add_both u (pick 0)
      end
      else add_both u v
    done
  done;
  g

let configuration_model rng ~out_degrees =
  let n = Array.length out_degrees in
  let g = Digraph.create n in
  Array.iteri
    (fun u d ->
      for _ = 1 to d do
        let v = Rng.int rng n in
        Digraph.add_edge g u v
      done)
    out_degrees;
  g

let star n =
  let g = Digraph.create n in
  for v = 1 to n - 1 do
    Digraph.add_edge g 0 v
  done;
  g

let ring n =
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    Digraph.add_edge g u ((u + 1) mod n)
  done;
  g

let line n =
  let g = Digraph.create n in
  for u = 0 to n - 2 do
    Digraph.add_edge g u (u + 1)
  done;
  g

let complete n =
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then Digraph.add_edge g u v
    done
  done;
  g
