(* Adjacency stored in growable int arrays per node.  A hash set of
   packed (u, v) keys backs O(1) has_edge and duplicate suppression. *)

type adj = { mutable data : int array; mutable len : int }

type t = {
  n : int;
  out_adj : adj array;
  in_adj : adj array;
  edge_set : (int, unit) Hashtbl.t;
  mutable m : int;
}

let adj_create () = { data = [||]; len = 0 }

let adj_push a x =
  if a.len = Array.length a.data then begin
    let cap = Stdlib.max 4 (2 * Array.length a.data) in
    let bigger = Array.make cap 0 in
    Array.blit a.data 0 bigger 0 a.len;
    a.data <- bigger
  end;
  a.data.(a.len) <- x;
  a.len <- a.len + 1

let adj_to_array a = Array.sub a.data 0 a.len

let adj_iter a f =
  for i = 0 to a.len - 1 do
    f a.data.(i)
  done

let create n =
  assert (n >= 0);
  {
    n;
    out_adj = Array.init n (fun _ -> adj_create ());
    in_adj = Array.init n (fun _ -> adj_create ());
    edge_set = Hashtbl.create 1024;
    m = 0;
  }

let n_nodes g = g.n
let n_edges g = g.m

let key g u v = (u * g.n) + v

let in_bounds g u = u >= 0 && u < g.n

let has_edge g u v =
  assert (in_bounds g u && in_bounds g v);
  Hashtbl.mem g.edge_set (key g u v)

let add_edge g u v =
  assert (in_bounds g u && in_bounds g v);
  if u <> v && not (has_edge g u v) then begin
    Hashtbl.add g.edge_set (key g u v) ();
    adj_push g.out_adj.(u) v;
    adj_push g.in_adj.(v) u;
    g.m <- g.m + 1
  end

let of_edges n edges =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let out_neighbors g u =
  assert (in_bounds g u);
  adj_to_array g.out_adj.(u)

let in_neighbors g u =
  assert (in_bounds g u);
  adj_to_array g.in_adj.(u)

let iter_out g u f =
  assert (in_bounds g u);
  adj_iter g.out_adj.(u) f

let iter_in g u f =
  assert (in_bounds g u);
  adj_iter g.in_adj.(u) f

let out_degree g u =
  assert (in_bounds g u);
  g.out_adj.(u).len

let in_degree g u =
  assert (in_bounds g u);
  g.in_adj.(u).len

let iter_edges g f =
  for u = 0 to g.n - 1 do
    adj_iter g.out_adj.(u) (fun v -> f u v)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let reverse g =
  let r = create g.n in
  iter_edges g (fun u v -> add_edge r v u);
  r

let pp ppf g = Format.fprintf ppf "digraph(%d nodes, %d edges)" g.n g.m
