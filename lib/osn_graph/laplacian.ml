(* Undirected simple edges of the digraph, each returned once. *)
let undirected_edges g =
  let seen = Hashtbl.create 1024 in
  let edges = ref [] in
  let n = Digraph.n_nodes g in
  Digraph.iter_edges g (fun u v ->
      let a = Stdlib.min u v and b = Stdlib.max u v in
      let key = (a * n) + b in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := (a, b) :: !edges
      end);
  !edges

let degrees g =
  let n = Digraph.n_nodes g in
  let deg = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    (undirected_edges g);
  deg

let undirected_laplacian g =
  let n = Digraph.n_nodes g in
  let edges = undirected_edges g in
  let triplets = ref [] in
  List.iter
    (fun (a, b) ->
      triplets :=
        (a, b, -1.) :: (b, a, -1.) :: (a, a, 1.) :: (b, b, 1.) :: !triplets)
    edges;
  Numerics.Sparse.of_triplets ~rows:n ~cols:n !triplets

let normalized_laplacian g =
  let n = Digraph.n_nodes g in
  let edges = undirected_edges g in
  let deg = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    edges;
  let inv_sqrt = Array.map (fun d -> if d = 0 then 0. else 1. /. sqrt (float_of_int d)) deg in
  let triplets = ref [] in
  for v = 0 to n - 1 do
    if deg.(v) > 0 then triplets := (v, v, 1.) :: !triplets
  done;
  List.iter
    (fun (a, b) ->
      let w = -.(inv_sqrt.(a) *. inv_sqrt.(b)) in
      triplets := (a, b, w) :: (b, a, w) :: !triplets)
    edges;
  Numerics.Sparse.of_triplets ~rows:n ~cols:n !triplets
