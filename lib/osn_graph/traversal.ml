let bfs_from g sources =
  let n = Digraph.n_nodes g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s q
      end)
    sources;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Digraph.iter_out g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
  done;
  dist

let bfs_distances g src = bfs_from g [ src ]
let bfs_distances_multi g sources = bfs_from g sources

let shortest_path g src dst =
  let n = Digraph.n_nodes g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    Digraph.iter_out g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          if v = dst then found := true else Queue.add v q
        end)
  done;
  if not !found then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end

(* Union-find with path compression and union by rank. *)
let weakly_connected_components g =
  let n = Digraph.n_nodes g in
  let parent = Array.init n Fun.id and rank = Array.make n 0 in
  let rec find x = if parent.(x) = x then x else begin
      parent.(x) <- find parent.(x);
      parent.(x)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then
      if rank.(ra) < rank.(rb) then parent.(ra) <- rb
      else if rank.(ra) > rank.(rb) then parent.(rb) <- ra
      else begin
        parent.(rb) <- ra;
        rank.(ra) <- rank.(ra) + 1
      end
  in
  Digraph.iter_edges g union;
  let label = Hashtbl.create 64 in
  let comp = Array.make n 0 and next = ref 0 in
  for v = 0 to n - 1 do
    let r = find v in
    let c =
      match Hashtbl.find_opt label r with
      | Some c -> c
      | None ->
        let c = !next in
        incr next;
        Hashtbl.add label r c;
        c
    in
    comp.(v) <- c
  done;
  (comp, !next)

(* Iterative Tarjan SCC.  The explicit stack holds (node, neighbour
   cursor) frames so 10^5-node chains cannot overflow the call stack. *)
let strongly_connected_components g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let scc_stack = Stack.create () in
  let next_index = ref 0 and next_comp = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let frames = Stack.create () in
      let open_node v =
        index.(v) <- !next_index;
        lowlink.(v) <- !next_index;
        incr next_index;
        Stack.push v scc_stack;
        on_stack.(v) <- true;
        Stack.push (v, Digraph.out_neighbors g v, ref 0) frames
      in
      open_node root;
      while not (Stack.is_empty frames) do
        let v, succ, cursor = Stack.top frames in
        if !cursor < Array.length succ then begin
          let w = succ.(!cursor) in
          incr cursor;
          if index.(w) < 0 then open_node w
          else if on_stack.(w) then lowlink.(v) <- Stdlib.min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          (match Stack.top_opt frames with
          | Some (parent, _, _) ->
            lowlink.(parent) <- Stdlib.min lowlink.(parent) lowlink.(v)
          | None -> ());
          if lowlink.(v) = index.(v) then begin
            (* v is the root of an SCC: pop it off. *)
            let continue = ref true in
            while !continue do
              let w = Stack.pop scc_stack in
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end
        end
      done
    end
  done;
  (comp, !next_comp)

let is_reachable g src dst = (bfs_distances g src).(dst) >= 0

let reachable_count g src =
  Array.fold_left
    (fun acc d -> if d >= 0 then acc + 1 else acc)
    0 (bfs_distances g src)
