let in_degree_ranking g =
  let nodes = Array.init (Digraph.n_nodes g) Fun.id in
  Array.sort
    (fun a b -> compare (Digraph.in_degree g b) (Digraph.in_degree g a))
    nodes;
  nodes

let pagerank ?(damping = 0.85) ?(iterations = 100) ?(tol = 1e-10) g =
  let n = Digraph.n_nodes g in
  if n = 0 then [||]
  else begin
    let uniform = 1. /. float_of_int n in
    let rank = Array.make n uniform in
    let next = Array.make n 0. in
    let iter = ref 0 and converged = ref false in
    while (not !converged) && !iter < iterations do
      incr iter;
      Array.fill next 0 n 0.;
      (* distribute rank along out-edges; collect dangling mass *)
      let dangling = ref 0. in
      for u = 0 to n - 1 do
        let deg = Digraph.out_degree g u in
        if deg = 0 then dangling := !dangling +. rank.(u)
        else begin
          let share = rank.(u) /. float_of_int deg in
          Digraph.iter_out g u (fun v -> next.(v) <- next.(v) +. share)
        end
      done;
      let base = ((1. -. damping) +. (damping *. !dangling)) *. uniform in
      let delta = ref 0. in
      for v = 0 to n - 1 do
        let updated = base +. (damping *. next.(v)) in
        delta := !delta +. Float.abs (updated -. rank.(v));
        rank.(v) <- updated
      done;
      if !delta < tol then converged := true
    done;
    rank
  end

(* Batagelj–Zaversnik O(V + E) core decomposition via bucket sort over
   undirected degrees. *)
let k_core g =
  let n = Digraph.n_nodes g in
  if n = 0 then [||]
  else begin
    (* undirected adjacency (deduplicated) *)
    let neighbor_sets = Array.init n (fun _ -> Hashtbl.create 8) in
    Digraph.iter_edges g (fun u v ->
        Hashtbl.replace neighbor_sets.(u) v ();
        Hashtbl.replace neighbor_sets.(v) u ());
    let degree = Array.map Hashtbl.length neighbor_sets in
    let max_degree = Array.fold_left Stdlib.max 0 degree in
    (* bucket-sorted vertices by current degree *)
    let bin = Array.make (max_degree + 2) 0 in
    Array.iter (fun d -> bin.(d) <- bin.(d) + 1) degree;
    let start = ref 0 in
    for d = 0 to max_degree do
      let count = bin.(d) in
      bin.(d) <- !start;
      start := !start + count
    done;
    let pos = Array.make n 0 and vert = Array.make n 0 in
    Array.iteri
      (fun v d ->
        pos.(v) <- bin.(d);
        vert.(pos.(v)) <- v;
        bin.(d) <- bin.(d) + 1)
      degree;
    for d = max_degree downto 1 do
      bin.(d) <- bin.(d - 1)
    done;
    bin.(0) <- 0;
    let core = Array.copy degree in
    for i = 0 to n - 1 do
      let v = vert.(i) in
      Hashtbl.iter
        (fun u () ->
          if core.(u) > core.(v) then begin
            (* lower u's effective degree: swap it to the front of its
               bucket, advance the bucket boundary *)
            let du = core.(u) in
            let pu = pos.(u) in
            let pw = bin.(du) in
            let w = vert.(pw) in
            if u <> w then begin
              pos.(u) <- pw;
              pos.(w) <- pu;
              vert.(pu) <- w;
              vert.(pw) <- u
            end;
            bin.(du) <- bin.(du) + 1;
            core.(u) <- du - 1
          end)
        neighbor_sets.(v)
    done;
    core
  end

let top scores ~n =
  let indexed = Array.mapi (fun i s -> (i, s)) scores in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) indexed;
  Array.sub indexed 0 (Stdlib.min n (Array.length indexed))
