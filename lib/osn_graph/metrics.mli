(** Structural graph metrics.

    Used to validate that the synthetic Digg follower graph has the
    qualitative properties the paper's observations rely on: a
    heavy-tailed degree distribution, high clustering (the "social
    triangles" behind the growth process) and short paths (the Fig. 2
    hop distribution concentrated at 2-5). *)

val degree_histogram : [ `In | `Out ] -> Digraph.t -> (int * int) array
(** [(degree, node-count)] pairs, ascending in degree. *)

val mean_degree : Digraph.t -> float
(** Mean out-degree = edges / nodes. *)

val reciprocity : Digraph.t -> float
(** Fraction of edges (u, v) whose reverse edge also exists; [0.] on an
    edgeless graph. *)

val clustering_coefficient : ?samples:int -> Numerics.Rng.t -> Digraph.t -> float
(** Sampled local clustering of the underlying undirected graph:
    average over up to [samples] (default 2000) random nodes of
    (closed wedges / wedges) at that node; nodes with fewer than two
    neighbours contribute 0. *)

val mean_shortest_path : ?samples:int -> Numerics.Rng.t -> Digraph.t -> float
(** Average finite BFS distance over up to [samples] (default 100)
    random source nodes; [nan] if no finite pairs exist. *)

val power_law_exponent : (int * int) array -> float
(** Log-log OLS slope of a degree histogram (zero-degree and
    zero-count bins are skipped); the returned exponent is the
    negated slope, so heavy-tailed graphs report a value around
    2--3. *)
