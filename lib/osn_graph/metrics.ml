open Numerics

let degree_histogram dir g =
  let n = Digraph.n_nodes g in
  let deg =
    match dir with `In -> Digraph.in_degree g | `Out -> Digraph.out_degree g
  in
  let counts = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let d = deg v in
    Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
  done;
  let pairs = Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts [] in
  let arr = Array.of_list pairs in
  Array.sort compare arr;
  arr

let mean_degree g =
  if Digraph.n_nodes g = 0 then 0.
  else float_of_int (Digraph.n_edges g) /. float_of_int (Digraph.n_nodes g)

let reciprocity g =
  let m = Digraph.n_edges g in
  if m = 0 then 0.
  else begin
    let mutual = ref 0 in
    Digraph.iter_edges g (fun u v -> if Digraph.has_edge g v u then incr mutual);
    float_of_int !mutual /. float_of_int m
  end

(* Undirected neighbourhood of v (union of in- and out-neighbours). *)
let undirected_neighbors g v =
  let seen = Hashtbl.create 16 in
  Digraph.iter_out g v (fun w -> Hashtbl.replace seen w ());
  Digraph.iter_in g v (fun w -> Hashtbl.replace seen w ());
  Hashtbl.fold (fun w () acc -> w :: acc) seen []

let undirected_connected g u v = Digraph.has_edge g u v || Digraph.has_edge g v u

let clustering_coefficient ?(samples = 2000) rng g =
  let n = Digraph.n_nodes g in
  if n = 0 then 0.
  else begin
    let sample_count = Stdlib.min samples n in
    let nodes =
      if sample_count = n then Array.init n Fun.id
      else Rng.sample_without_replacement rng sample_count n
    in
    let total = ref 0. in
    Array.iter
      (fun v ->
        let nbrs = Array.of_list (undirected_neighbors g v) in
        let k = Array.length nbrs in
        if k >= 2 then begin
          let closed = ref 0 in
          for i = 0 to k - 1 do
            for j = i + 1 to k - 1 do
              if undirected_connected g nbrs.(i) nbrs.(j) then incr closed
            done
          done;
          total := !total +. (float_of_int !closed /. float_of_int (k * (k - 1) / 2))
        end)
      nodes;
    !total /. float_of_int sample_count
  end

let mean_shortest_path ?(samples = 100) rng g =
  let n = Digraph.n_nodes g in
  if n = 0 then nan
  else begin
    let sample_count = Stdlib.min samples n in
    let sources =
      if sample_count = n then Array.init n Fun.id
      else Rng.sample_without_replacement rng sample_count n
    in
    let sum = ref 0. and count = ref 0 in
    Array.iter
      (fun s ->
        let dist = Traversal.bfs_distances g s in
        Array.iter
          (fun d ->
            if d > 0 then begin
              sum := !sum +. float_of_int d;
              incr count
            end)
          dist)
      sources;
    if !count = 0 then nan else !sum /. float_of_int !count
  end

let power_law_exponent hist =
  let points =
    Array.to_list hist
    |> List.filter (fun (d, c) -> d > 0 && c > 0)
    |> List.map (fun (d, c) -> (log (float_of_int d), log (float_of_int c)))
  in
  match points with
  | [] | [ _ ] -> nan
  | _ ->
    let xs = Array.of_list (List.map fst points) in
    let ys = Array.of_list (List.map snd points) in
    let slope, _, _ = Stats.linear_regression xs ys in
    -.slope
