(** Observability substrate: structured logging, a metrics registry and
    span tracing, shared by every layer of the DL pipeline.

    Everything is disabled by default and gated on a single atomic flag,
    so the instrumented hot paths cost one load + branch when off; log
    field lists and span attributes are closures that are never
    evaluated unless a record is actually emitted.  Observability is
    purely additive: numeric results are bit-identical with it on or
    off (see [test/test_obs.ml]).

    Metric recording is domain-safe without locks: each worker domain
    records into a private {!Shard} installed by [Parallel.Pool], and
    shards are merged on the calling domain, in worker-index order, at
    pool teardown — totals are exact, deterministic, and never racy. *)

val enabled : unit -> bool
(** Global observability switch (a single atomic load). *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Clear the calling domain's metric values and recorded spans.
    Metric {e definitions} (names, kinds) are global and persist. *)

val now_ns : unit -> int
(** Wall-clock in integer nanoseconds (from [Unix.gettimeofday]).

    {b Clock caveat}: this is wall time, not a monotonic clock — NTP
    adjustments can step it backwards (or forwards) between two reads.
    Span durations are therefore clamped at 0 rather than ever going
    negative, and epoch timestamps on spans are best-effort. *)

val json_escape_into : Buffer.t -> string -> unit
(** Append [s] with JSON string escaping (shared codec, used by the
    log sink, the metrics dump and the OTLP exporter). *)

val json_float : float -> string
(** Render a float as a JSON literal; non-finite values become
    ["null"] (JSON has no NaN/Infinity). [%.17g] round-trips. *)

val env_var : string
(** ["DLOSN_LOG"] — comma-separated tokens read at module init: a level
    name enables logging at that level, ["json"]/["human"] select the
    sink, and setting the variable at all flips {!enabled} on.
    Example: [DLOSN_LOG=debug,json]. *)

(** Severity levels, ordered [Debug < Info < Warn < Error]. *)
module Level : sig
  type t = Debug | Info | Warn | Error

  val to_int : t -> int
  val to_string : t -> string

  val of_string : string -> (t, string) result
  (** Case-insensitive; accepts ["warning"] for [Warn].  The error
      message lists the valid names. *)

  val valid_names : string
  (** ["debug|info|warn|error"], for usage errors. *)
end

(** Structured, line-oriented logging with typed key/value fields. *)
module Log : sig
  type value = String of string | Int of int | Float of float | Bool of bool
  type field = string * value

  val str : string -> string -> field
  val int : string -> int -> field
  val float : string -> float -> field
  val bool : string -> bool -> field

  (** [Human] is [[level] msg k=v ...]; [Json] is one JSON object per
      line: [{"ts":…,"level":…,"msg":…,<fields>}] (non-finite floats
      become [null]). *)
  type sink = Human | Json

  val set_sink : sink -> unit
  val sink : unit -> sink

  val set_level : Level.t option -> unit
  (** Minimum level to emit; [None] (the default) silences all logs
      even when {!Obs.enabled} is on. *)

  val level : unit -> Level.t option

  val set_out : (string -> unit) -> unit
  (** Redirect emitted lines (default: [prerr_endline]).  Each record
      is a single call, so concurrent emitters cannot interleave
      within a line.  Used by tests and [--log-*] plumbing. *)

  val would_log : Level.t -> bool
  (** True iff a record at this level would be emitted now. *)

  val log : Level.t -> ?fields:(unit -> field list) -> string -> unit
  (** [fields] is only evaluated when the record is emitted. *)

  val debug : ?fields:(unit -> field list) -> string -> unit
  val info : ?fields:(unit -> field list) -> string -> unit
  val warn : ?fields:(unit -> field list) -> string -> unit
  val error : ?fields:(unit -> field list) -> string -> unit

  (** A fully-evaluated log record, as handed to the tee hook.
      [r_trace_id] is the current context's trace id (see
      {!Span.set_trace_id}); emitted records also carry it as a
      [trace_id] JSON field / [trace=] human token. *)
  type record = {
    r_ts : float;  (** epoch seconds *)
    r_level : Level.t;
    r_msg : string;
    r_fields : field list;
    r_trace_id : string option;
  }

  val set_tee : (record -> unit) option -> unit
  (** Install (or clear) a structured tap called after the textual sink
      for every emitted record.  Only records that pass the level
      filter reach the tee.  Exceptions it raises are swallowed.  Used
      by the OTLP exporter. *)
end

(** Named counters, gauges and fixed-bucket histograms.

    Definitions are global and append-only; registering the same
    [(name, label)] twice returns the existing handle (and raises
    [Invalid_argument] on a kind mismatch).  Values live in the calling
    domain's context; readers see the merged totals after pool
    teardown.  The catalogue of names used by the pipeline is in
    [docs/OBSERVABILITY.md]. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : ?label:string -> string -> counter
  val gauge : ?label:string -> string -> gauge

  val histogram : ?label:string -> ?buckets:float array -> string -> histogram
  (** [buckets] are upper bounds, strictly increasing; an implicit
      overflow bucket is appended.  Default: exponential nanosecond
      buckets 1 µs … 10 s. *)

  val default_buckets : float array

  val incr : ?by:int -> counter -> unit
  val set : gauge -> float -> unit
  val observe : histogram -> float -> unit

  val counter_value : counter -> int
  val gauge_value : gauge -> float option
  val histogram_count : histogram -> int
  val histogram_sum : histogram -> float

  val schema_version : string
  (** ["dlosn-metrics/1"]. *)

  val to_json_string : unit -> string
  (** Dump every registered metric, in registration order, as a JSON
      document with [schema], [counters], [gauges] and [histograms]
      arrays (schema {!schema_version}). *)

  val write_json : path:string -> unit

  (** {2 Exposition}

      A read-only snapshot of every registered metric as seen from the
      calling domain's context, for exporters (the [/metrics] endpoint
      in [lib/serve] renders it as Prometheus text format). *)

  type histogram_snapshot = {
    h_count : int;
    h_sum : float;
    h_cumulative : (float * int) array;
        (** [(upper bound, cumulative count)] pairs, Prometheus-style:
            each count includes every observation [<=] the bound; the
            final bound is [infinity] (the overflow bucket), so its
            count equals [h_count]. *)
  }

  type sample =
    | Counter_sample of int
    | Gauge_sample of float option  (** [None] when never set *)
    | Histogram_sample of histogram_snapshot

  type exposition_row = {
    row_name : string;
    row_label : string option;
    row_sample : sample;
  }

  val expose : unit -> exposition_row list
  (** Every registered metric, in registration order, with the calling
      domain's current values (zero / [None] / empty when never
      recorded here). *)

  val to_prometheus_string : ?namespace:string -> unit -> string
  (** Render {!expose} in the Prometheus text exposition format
      (version 0.0.4).  Metric names are prefixed with
      [namespace ^ "_"] (default ["dlosn"]) and sanitised to
      [[a-zA-Z0-9_]]; counters gain the conventional [_total] suffix;
      registry labels are emitted as a [label="..."] Prometheus label;
      histograms expand to [_bucket{le=...}] series plus [_sum] and
      [_count].  Families sharing a name emit one [# TYPE] line;
      never-set gauges are omitted. *)

  val reset : unit -> unit
  (** Clear values on the calling domain; definitions persist. *)
end

(** Nested timed scopes forming a duration tree.

    Every span carries epoch timestamps, a unique span id, and the
    trace id that was current when it opened, so completed spans can be
    exported (OTLP), rendered as flame graphs, or streamed to live
    subscribers.  Timestamps come from {!now_ns} — see the clock caveat
    there: durations are clamped at 0 if the wall clock steps
    backwards mid-span. *)
module Span : sig
  type t = {
    name : string;
    attrs : Log.field list;
    dur_ns : int;  (** [end_ns - start_ns], clamped at 0 *)
    children : t list;
    span_id : string;  (** 16 lowercase hex chars, unique per process *)
    trace_id : string;  (** 32 hex chars; [""] outside a trace *)
    start_ns : int;  (** epoch nanoseconds at open *)
    end_ns : int;  (** epoch nanoseconds at close; [>= start_ns] *)
  }

  val with_span : string -> ?attrs:(unit -> Log.field list) -> (unit -> 'a) -> 'a
  (** Run the thunk inside a timed span (exceptions still close it).
      When {!Obs.enabled} is off this is exactly the thunk — no
      timing, no allocation.  [attrs] is evaluated at span open. *)

  val add_attr : string -> Log.value -> unit
  (** Attach a field to the innermost open span (no-op outside one). *)

  val roots : unit -> t list
  (** Completed top-level spans on this domain, oldest first. *)

  val reset : unit -> unit
  (** Drop this context's recorded spans and clear its trace id. *)

  (** {2 Trace ids}

      A trace id is request-scoped: it lives on the recording context,
      is stamped into every span opened (and every log record emitted)
      while set, and is managed explicitly by the request boundary
      ([lib/serve] sets one per connection). *)

  val gen_trace_id : unit -> string
  (** Fresh 32-hex-char trace id, unique within the process. *)

  val gen_span_id : unit -> string
  (** Fresh 16-hex-char span id (exporters needing synthetic parents). *)

  val set_trace_id : string option -> unit
  (** Set or clear the calling context's trace id. *)

  val trace_id : unit -> string option

  val with_trace_id : string -> (unit -> 'a) -> 'a
  (** Run the thunk with the given trace id, restoring the previous
      one afterwards (exception-safe). *)

  (** {2 Streaming observer}

      Span closes become events: subscribers fire synchronously on the
      recording domain, children strictly before their parents (close
      order).  [root] is true when the closing span has no parent in
      its context.  Subscriber exceptions are swallowed; with no
      subscribers the cost is one atomic load per close. *)

  type event = { span : t; root : bool }
  type subscription

  val subscribe : (event -> unit) -> subscription
  (** Register a global observer for every span close (on any domain —
      the callback must be thread-safe). *)

  val unsubscribe : subscription -> unit

  (** {2 Folded stacks (flame output)}

      The folded format consumed by flamegraph.pl and speedscope:
      one [frame;frame;frame weight] line per distinct stack, weight =
      self time in nanoseconds (duration minus children, clamped at 0).
      Frames named [story]/[model]/[route] attrs are decorated as
      [name[story=17]] so per-story batch fits stay distinguishable. *)

  val fold_stacks : t list -> (string * int) list
  (** [(stack, self_ns)] rows in pre-order of first visit; repeated
      stacks merge by summing. *)

  val to_folded : t list -> string
  (** Render {!fold_stacks} as folded-stack text, one line per row. *)

  (** One row per distinct slash-joined span path, parents before
      children (pre-order of first visit). *)
  type agg = { path : string; count : int; total_ns : int }

  val summary : unit -> agg list
  val pp_summary : Format.formatter -> unit -> unit

  val log_summary : unit -> unit
  (** Emit the summary as info-level ["span.summary"] log records. *)
end

(** Worker-domain recording contexts for [Parallel.Pool].  Not part of
    the instrumentation API — pool internals only. *)
module Shard : sig
  type t

  val create : unit -> t

  val with_shard : t -> (unit -> 'a) -> 'a
  (** Make [t] the calling domain's recording context for the thunk,
      restoring the previous context afterwards (exception-safe). *)

  val merge : t -> unit
  (** Fold [t]'s metric values and completed spans into the calling
      domain's current context (counters and histograms add; gauges
      last-merged-wins; spans attach under the innermost open span),
      then empty [t].  Call once per shard, in worker-index order, for
      deterministic totals. *)

  val span_roots : t -> Span.t list
  (** Completed top-level spans recorded in [t], oldest first. *)

  val take_span_roots : t -> Span.t list
  (** {!span_roots}, then drop them from [t] — so a later {!merge}
      carries only metric values.  [lib/serve] uses this to capture
      each request's trace into its ring buffer without growing the
      server aggregate's span list unboundedly. *)
end
