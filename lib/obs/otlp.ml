(* Dependency-free OTLP/HTTP JSON exporter.

   Maps the Obs registry onto OpenTelemetry's HTTP/JSON protocol
   (opentelemetry-proto, JSON mapping): completed span trees go to
   /v1/traces, Metrics.expose rows to /v1/metrics, and teed log
   records to /v1/logs.  Everything is hand-rolled on Unix sockets and
   the shared JSON codec in Obs — no outside dependencies.

   A background thread batches and flushes on a timer; sends retry
   with exponential backoff and drop (counted) on final failure, so a
   dead collector can never wedge or grow the instrumented process
   unboundedly. *)

(* --- configuration --- *)

type config = {
  endpoint : string; (* http://host:port[/base] *)
  service_name : string;
  flush_interval : float; (* seconds between background flushes *)
  max_batch : int; (* spans per POST *)
  max_buffer : int; (* queued spans/logs cap; overflow is dropped *)
  max_retries : int; (* additional attempts after the first *)
  backoff : float; (* initial retry delay, doubled per retry *)
  timeout : float; (* per-socket send/receive timeout *)
  sample_rate : float; (* head-sampling keep fraction, keyed on trace id *)
}

let default_config =
  {
    endpoint = "";
    service_name = "dlosn";
    flush_interval = 2.0;
    max_batch = 512;
    max_buffer = 4096;
    max_retries = 2;
    backoff = 0.1;
    timeout = 5.0;
    sample_rate = 1.0;
  }

let env_var = "DLOSN_OTLP"
let sample_env_var = "DLOSN_OTLP_SAMPLE"

(* --- trace-id-keyed head sampling --- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

(* Deterministic all-in-or-all-out decision per trace: the last (up
   to) 12 hex chars of the trace id map to a point u in [0, 1), kept
   iff u < rate — so the keep set at a lower rate is a subset of the
   keep set at any higher rate (monotone), and every process looking
   at the same trace id reaches the same verdict.  Non-hex ids fall
   back to a [Hashtbl.hash]-derived point with the same properties. *)
let sampled ~rate trace_id =
  if rate >= 1.0 then true
  else if not (rate > 0.0) then false (* 0, negative or NaN: drop all *)
  else begin
    let n = String.length trace_id in
    let take = Stdlib.min 12 n in
    let rec hex_tail i acc =
      if i >= n then Some acc
      else
        let v = hex_val trace_id.[i] in
        if v < 0 then None else hex_tail (i + 1) ((acc lsl 4) lor v)
    in
    let u =
      match if take = 0 then None else hex_tail (n - take) 0 with
      | Some key -> float_of_int key /. float_of_int (1 lsl (4 * take))
      | None ->
        float_of_int (Hashtbl.hash trace_id land 0x3FFFFFFF)
        /. 1073741824.
    in
    u < rate
  end

(* --- endpoint parsing --- *)

type target = { host : string; port : int; base : string }

let parse_endpoint endpoint =
  let fail msg =
    invalid_arg (Printf.sprintf "Otlp: bad endpoint %S: %s" endpoint msg)
  in
  let rest =
    let prefix = "http://" in
    let plen = String.length prefix in
    if
      String.length endpoint > plen
      && String.lowercase_ascii (String.sub endpoint 0 plen) = prefix
    then String.sub endpoint plen (String.length endpoint - plen)
    else if String.length endpoint >= 8
            && String.lowercase_ascii (String.sub endpoint 0 8) = "https://"
    then fail "TLS is not supported (use a local collector over http)"
    else endpoint
  in
  let hostport, base =
    match String.index_opt rest '/' with
    | None -> (rest, "")
    | Some i ->
      let b = String.sub rest i (String.length rest - i) in
      ( String.sub rest 0 i,
        if b = "/" then "" else if b.[String.length b - 1] = '/' then
          String.sub b 0 (String.length b - 1)
        else b )
  in
  match String.index_opt hostport ':' with
  | None -> if hostport = "" then fail "empty host" else
      { host = hostport; port = 4318; base }
  | Some i ->
    let host = String.sub hostport 0 i in
    let port_s = String.sub hostport (i + 1) (String.length hostport - i - 1) in
    (match int_of_string_opt port_s with
    | Some p when p > 0 && p < 65536 ->
      if host = "" then fail "empty host" else { host; port = p; base }
    | _ -> fail "invalid port")

(* --- OTLP JSON payload builders (pure; golden-tested) --- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  Obs.json_escape_into buf s;
  Buffer.add_char buf '"'

(* OTLP AnyValue. Int64 values are JSON strings per the proto3 JSON
   mapping; doubles use the shared codec (non-finite -> null). *)
let add_any_value buf (v : Obs.Log.value) =
  match v with
  | Obs.Log.String s ->
    Buffer.add_string buf "{\"stringValue\":";
    add_json_string buf s;
    Buffer.add_char buf '}'
  | Obs.Log.Int i ->
    Buffer.add_string buf "{\"intValue\":\"";
    Buffer.add_string buf (string_of_int i);
    Buffer.add_string buf "\"}"
  | Obs.Log.Float f ->
    Buffer.add_string buf "{\"doubleValue\":";
    Buffer.add_string buf (Obs.json_float f);
    Buffer.add_char buf '}'
  | Obs.Log.Bool b ->
    Buffer.add_string buf "{\"boolValue\":";
    Buffer.add_string buf (string_of_bool b);
    Buffer.add_char buf '}'

let add_attributes buf (fields : Obs.Log.field list) =
  Buffer.add_char buf '[';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"key\":";
      add_json_string buf k;
      Buffer.add_string buf ",\"value\":";
      add_any_value buf v;
      Buffer.add_char buf '}')
    fields;
  Buffer.add_char buf ']'

(* uint64 nanosecond timestamps are JSON strings per the proto3 JSON
   mapping ("timeUnixNano":"1544712660000000000"). *)
let add_time buf key ns =
  Buffer.add_char buf '"';
  Buffer.add_string buf key;
  Buffer.add_string buf "\":\"";
  Buffer.add_string buf (string_of_int ns);
  Buffer.add_char buf '"'

let add_resource buf ~service =
  Buffer.add_string buf
    "\"resource\":{\"attributes\":[{\"key\":\"service.name\",\"value\":{\"stringValue\":";
  add_json_string buf service;
  Buffer.add_string buf "}}]}"

let scope_json = "\"scope\":{\"name\":\"dlosn.obs\",\"version\":\"1\"}"

(* OTLP spans are a flat list linked by parentSpanId; flatten each Obs
   tree in pre-order. A root with no trace id gets a fresh one so the
   export is always well-formed. *)
let rec add_span_flat buf ~first ~trace_id ~parent (s : Obs.Span.t) =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf "{\"traceId\":";
  add_json_string buf trace_id;
  Buffer.add_string buf ",\"spanId\":";
  add_json_string buf s.Obs.Span.span_id;
  if parent <> "" then begin
    Buffer.add_string buf ",\"parentSpanId\":";
    add_json_string buf parent
  end;
  Buffer.add_string buf ",\"name\":";
  add_json_string buf s.Obs.Span.name;
  Buffer.add_string buf ",\"kind\":1,";
  add_time buf "startTimeUnixNano" s.Obs.Span.start_ns;
  Buffer.add_char buf ',';
  add_time buf "endTimeUnixNano" s.Obs.Span.end_ns;
  Buffer.add_string buf ",\"attributes\":";
  add_attributes buf s.Obs.Span.attrs;
  Buffer.add_string buf ",\"status\":{}}";
  List.iter
    (add_span_flat buf ~first ~trace_id ~parent:s.Obs.Span.span_id)
    s.Obs.Span.children

let spans_body ?(service = "dlosn") (spans : Obs.Span.t list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"resourceSpans\":[{";
  add_resource buf ~service;
  Buffer.add_string buf ",\"scopeSpans\":[{";
  Buffer.add_string buf scope_json;
  Buffer.add_string buf ",\"spans\":[";
  let first = ref true in
  List.iter
    (fun (s : Obs.Span.t) ->
      let trace_id =
        if s.Obs.Span.trace_id <> "" then s.Obs.Span.trace_id
        else Obs.Span.gen_trace_id ()
      in
      add_span_flat buf ~first ~trace_id ~parent:"" s)
    spans;
  Buffer.add_string buf "]}]}]}";
  Buffer.contents buf

let metrics_body ?(service = "dlosn") ~now_ns
    (rows : Obs.Metrics.exposition_row list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"resourceMetrics\":[{";
  add_resource buf ~service;
  Buffer.add_string buf ",\"scopeMetrics\":[{";
  Buffer.add_string buf scope_json;
  Buffer.add_string buf ",\"metrics\":[";
  let first = ref true in
  let label_attrs = function
    | None -> []
    | Some l -> [ Obs.Log.str "label" l ]
  in
  List.iter
    (fun (row : Obs.Metrics.exposition_row) ->
      let open Obs.Metrics in
      let emit_header () =
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf "{\"name\":";
        add_json_string buf row.row_name
      in
      let datapoint_prefix () =
        add_time buf "timeUnixNano" now_ns;
        Buffer.add_string buf ",\"attributes\":";
        add_attributes buf (label_attrs row.row_label)
      in
      match row.row_sample with
      | Counter_sample v ->
        emit_header ();
        Buffer.add_string buf
          ",\"sum\":{\"aggregationTemporality\":2,\"isMonotonic\":true,\"dataPoints\":[{";
        datapoint_prefix ();
        Buffer.add_string buf ",\"asInt\":\"";
        Buffer.add_string buf (string_of_int v);
        Buffer.add_string buf "\"}]}}"
      | Gauge_sample None -> () (* never set: nothing to export *)
      | Gauge_sample (Some v) ->
        emit_header ();
        Buffer.add_string buf ",\"gauge\":{\"dataPoints\":[{";
        datapoint_prefix ();
        Buffer.add_string buf ",\"asDouble\":";
        Buffer.add_string buf (Obs.json_float v);
        Buffer.add_string buf "}]}}"
      | Histogram_sample h ->
        emit_header ();
        Buffer.add_string buf
          ",\"histogram\":{\"aggregationTemporality\":2,\"dataPoints\":[{";
        datapoint_prefix ();
        Buffer.add_string buf ",\"count\":\"";
        Buffer.add_string buf (string_of_int h.h_count);
        Buffer.add_string buf "\",\"sum\":";
        Buffer.add_string buf (Obs.json_float h.h_sum);
        (* h_cumulative is Prometheus-style cumulative with a final
           +inf bound; OTLP wants per-bucket counts and explicit
           finite bounds only. *)
        Buffer.add_string buf ",\"bucketCounts\":[";
        let prev = ref 0 in
        Array.iteri
          (fun i (_, c) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (string_of_int (c - !prev));
            Buffer.add_char buf '"';
            prev := c)
          h.h_cumulative;
        Buffer.add_string buf "],\"explicitBounds\":[";
        let nfinite = ref 0 in
        Array.iter
          (fun (le, _) ->
            if Float.is_finite le then begin
              if !nfinite > 0 then Buffer.add_char buf ',';
              nfinite := !nfinite + 1;
              Buffer.add_string buf (Obs.json_float le)
            end)
          h.h_cumulative;
        Buffer.add_string buf "]}]}}")
    rows;
  Buffer.add_string buf "]}]}]}";
  Buffer.contents buf

let severity_number (l : Obs.Level.t) =
  (* OTLP severity numbers: DEBUG=5, INFO=9, WARN=13, ERROR=17 *)
  match l with
  | Obs.Level.Debug -> 5
  | Obs.Level.Info -> 9
  | Obs.Level.Warn -> 13
  | Obs.Level.Error -> 17

let logs_body ?(service = "dlosn") (records : Obs.Log.record list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"resourceLogs\":[{";
  add_resource buf ~service;
  Buffer.add_string buf ",\"scopeLogs\":[{";
  Buffer.add_string buf scope_json;
  Buffer.add_string buf ",\"logRecords\":[";
  List.iteri
    (fun i (r : Obs.Log.record) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '{';
      add_time buf "timeUnixNano" (int_of_float (r.Obs.Log.r_ts *. 1e9));
      Buffer.add_string buf ",\"severityNumber\":";
      Buffer.add_string buf (string_of_int (severity_number r.Obs.Log.r_level));
      Buffer.add_string buf ",\"severityText\":";
      add_json_string buf
        (String.uppercase_ascii (Obs.Level.to_string r.Obs.Log.r_level));
      Buffer.add_string buf ",\"body\":{\"stringValue\":";
      add_json_string buf r.Obs.Log.r_msg;
      Buffer.add_string buf "},\"attributes\":";
      add_attributes buf r.Obs.Log.r_fields;
      (match r.Obs.Log.r_trace_id with
      | Some tid when String.length tid = 32 ->
        Buffer.add_string buf ",\"traceId\":";
        add_json_string buf tid
      | _ -> ());
      Buffer.add_char buf '}')
    records;
  Buffer.add_string buf "]}]}]}";
  Buffer.contents buf

(* --- minimal HTTP/1.1 POST over a Unix socket --- *)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | h -> h.Unix.h_addr_list.(0))

let post ~(target : target) ~timeout ~path ~body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
      Unix.connect fd (Unix.ADDR_INET (resolve target.host, target.port));
      let payload =
        Printf.sprintf
          "POST %s%s HTTP/1.1\r\n\
           Host: %s:%d\r\n\
           Content-Type: application/json\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          target.base path target.host target.port (String.length body) body
      in
      let n = String.length payload in
      let written = ref 0 in
      while !written < n do
        written :=
          !written
          + Unix.write_substring fd payload !written (n - !written)
      done;
      (* Read just enough of the status line to learn the code. *)
      let buf = Bytes.create 512 in
      let got = Unix.read fd buf 0 512 in
      if got < 12 then Error "short response"
      else
        let line = Bytes.sub_string buf 0 got in
        match String.index_opt line ' ' with
        | None -> Error "malformed status line"
        | Some i -> (
          let code_s =
            String.sub line (i + 1) (Stdlib.min 3 (got - i - 1))
          in
          match int_of_string_opt code_s with
          | Some code when code >= 200 && code < 300 -> Ok code
          | Some code -> Error (Printf.sprintf "HTTP %d" code)
          | None -> Error "malformed status code"))

(* --- exporter state --- *)

type stats = {
  sent_posts : int;
  failed_posts : int;
  dropped : int; (* spans + log records lost to buffer overflow *)
}

type t = {
  cfg : config;
  target : target;
  mutex : Mutex.t; (* guards the queues and counters below *)
  send_mutex : Mutex.t; (* serialises drain_and_send callers *)
  mutable q_spans : Obs.Span.t list; (* newest first *)
  mutable n_spans : int;
  mutable q_logs : Obs.Log.record list; (* newest first *)
  mutable n_logs : int;
  mutable st : stats;
  mutable stop : bool;
  metrics_provider : (unit -> Obs.Metrics.exposition_row list) option;
  mutable span_sub : Obs.Span.subscription option;
  mutable log_tee : bool;
  mutable thread : Thread.t option;
}

let create ?(config = default_config) ?metrics_provider ?endpoint () =
  let endpoint =
    match endpoint with Some e -> e | None -> config.endpoint
  in
  if not (config.sample_rate >= 0. && config.sample_rate <= 1.) then
    invalid_arg
      (Printf.sprintf "Otlp: sample rate %g outside [0, 1]"
         config.sample_rate);
  let target = parse_endpoint endpoint in
  let t =
    {
      cfg = { config with endpoint };
      target;
      mutex = Mutex.create ();
      send_mutex = Mutex.create ();
      q_spans = [];
      n_spans = 0;
      q_logs = [];
      n_logs = 0;
      st = { sent_posts = 0; failed_posts = 0; dropped = 0 };
      stop = false;
      metrics_provider;
      span_sub = None;
      log_tee = false;
      thread = None;
    }
  in
  t

let stats t =
  Mutex.lock t.mutex;
  let s = t.st in
  Mutex.unlock t.mutex;
  s

let enqueue_span t span =
  Mutex.lock t.mutex;
  if t.n_spans >= t.cfg.max_buffer then
    t.st <- { t.st with dropped = t.st.dropped + 1 }
  else begin
    t.q_spans <- span :: t.q_spans;
    t.n_spans <- t.n_spans + 1
  end;
  Mutex.unlock t.mutex

let enqueue_log t record =
  Mutex.lock t.mutex;
  if t.n_logs >= t.cfg.max_buffer then
    t.st <- { t.st with dropped = t.st.dropped + 1 }
  else begin
    t.q_logs <- record :: t.q_logs;
    t.n_logs <- t.n_logs + 1
  end;
  Mutex.unlock t.mutex

(* Export failures are logged at warn with an "otlp." prefix; the log
   tee skips them so a dead collector cannot feed the exporter its own
   error reports forever. *)
let own_record (r : Obs.Log.record) =
  String.length r.Obs.Log.r_msg >= 5
  && String.sub r.Obs.Log.r_msg 0 5 = "otlp."

let post_with_retry t ~path ~body =
  let attempt_once () =
    match post ~target:t.target ~timeout:t.cfg.timeout ~path ~body with
    | Ok _ -> true
    | Error _ -> false
    | exception _ -> false
  in
  let rec go attempt delay =
    if attempt_once () then begin
      Mutex.lock t.mutex;
      t.st <- { t.st with sent_posts = t.st.sent_posts + 1 };
      Mutex.unlock t.mutex;
      true
    end
    else if attempt >= t.cfg.max_retries then begin
      Mutex.lock t.mutex;
      t.st <- { t.st with failed_posts = t.st.failed_posts + 1 };
      Mutex.unlock t.mutex;
      Obs.Log.warn "otlp.post_failed"
        ~fields:(fun () ->
          [
            Obs.Log.str "endpoint" t.cfg.endpoint;
            Obs.Log.str "path" path;
            Obs.Log.int "attempts" (attempt + 1);
          ]);
      false
    end
    else begin
      Thread.delay delay;
      go (attempt + 1) (delay *. 2.)
    end
  in
  go 0 t.cfg.backoff

let rec take n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: rest ->
    let taken, left = take (n - 1) rest in
    (x :: taken, left)

(* Drain the queues and POST everything; runs on the caller's thread,
   serialised so the background flusher and explicit flush () never
   interleave sends. *)
let drain_and_send t =
  Mutex.lock t.send_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.send_mutex)
    (fun () ->
      let spans, logs =
        Mutex.lock t.mutex;
        let spans = List.rev t.q_spans and logs = List.rev t.q_logs in
        t.q_spans <- [];
        t.n_spans <- 0;
        t.q_logs <- [];
        t.n_logs <- 0;
        Mutex.unlock t.mutex;
        (spans, logs)
      in
      let rec send_span_batches = function
        | [] -> ()
        | spans ->
          let batch, rest = take t.cfg.max_batch spans in
          ignore
            (post_with_retry t ~path:"/v1/traces"
               ~body:(spans_body ~service:t.cfg.service_name batch));
          send_span_batches rest
      in
      send_span_batches spans;
      if logs <> [] then
        ignore
          (post_with_retry t ~path:"/v1/logs"
             ~body:(logs_body ~service:t.cfg.service_name logs));
      match t.metrics_provider with
      | None -> ()
      | Some provider -> (
        match provider () with
        | [] -> ()
        | rows ->
          ignore
            (post_with_retry t ~path:"/v1/metrics"
               ~body:
                 (metrics_body ~service:t.cfg.service_name
                    ~now_ns:(Obs.now_ns ()) rows))
        | exception _ -> ()))

let flush t = drain_and_send t

let flusher_loop t =
  let tick = 0.05 in
  let rec wait remaining =
    if t.stop || remaining <= 0. then ()
    else begin
      Thread.delay (Stdlib.min tick remaining);
      wait (remaining -. tick)
    end
  in
  while not t.stop do
    wait t.cfg.flush_interval;
    if not t.stop then drain_and_send t
  done

(* --- wiring into Obs --- *)

(* The head-sampling filter: spans and log records that carry a trace
   id are kept iff their trace is sampled, so a trace exports either
   completely or not at all across both signals.  Traceless telemetry
   (spans recorded outside any trace context, plain log records) is
   always kept — there is no key to decide by, and dropping it would
   hide process-level events like startup and shutdown. *)
let keep_trace t trace_id =
  trace_id = "" || sampled ~rate:t.cfg.sample_rate trace_id

let observe_spans t =
  match t.span_sub with
  | Some _ -> ()
  | None ->
    t.span_sub <-
      Some
        (Obs.Span.subscribe (fun ev ->
             if
               ev.Obs.Span.root
               && keep_trace t ev.Obs.Span.span.Obs.Span.trace_id
             then enqueue_span t ev.Obs.Span.span))

let tee_logs t =
  if not t.log_tee then begin
    t.log_tee <- true;
    Obs.Log.set_tee
      (Some
         (fun r ->
           let kept =
             match r.Obs.Log.r_trace_id with
             | None -> true
             | Some tid -> keep_trace t tid
           in
           if kept && not (own_record r) then enqueue_log t r))
  end

let start t =
  match t.thread with
  | Some _ -> ()
  | None -> t.thread <- Some (Thread.create flusher_loop t)

let shutdown t =
  (match t.span_sub with
  | Some sub ->
    Obs.Span.unsubscribe sub;
    t.span_sub <- None
  | None -> ());
  if t.log_tee then begin
    Obs.Log.set_tee None;
    t.log_tee <- false
  end;
  t.stop <- true;
  (match t.thread with
  | Some th ->
    Thread.join th;
    t.thread <- None
  | None -> ());
  drain_and_send t
