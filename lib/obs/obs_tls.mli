(** Per-domain storage behind {!Obs}'s current-context lookup.

    Two interchangeable implementations exist; dune copies the right one
    to [obs_tls.ml] based on the compiler version (the same scheme as
    [lib/parallel]'s [pool_scheduler]):

    - [obs_tls_domains.ml] (OCaml >= 5.0) wraps [Domain.DLS], so each
      domain sees its own slot;
    - [obs_tls_seq.ml] (OCaml 4.x) is a single mutable slot, which is
      exactly right when only one domain can ever run.

    Keys must be created on the main domain before any worker domain
    that uses them is spawned. *)

type 'a key

val new_key : (unit -> 'a) -> 'a key
(** [new_key init] makes a key whose per-domain initial value is
    [init ()] (computed lazily, per domain). *)

val get : 'a key -> 'a
(** Value of the key on the calling domain. *)

val set : 'a key -> 'a -> unit
(** Replace the value of the key on the calling domain. *)
