(* TTY-aware live progress bars driven by the Obs span stream.

   A bar subscribes to span-close events and counts closes of one
   named span ("batch.story", "tournament.item", ...), redrawing a
   single \r-overwritten line.  It only activates when the output is a
   TTY, so redirected/CI runs stay byte-clean; and because spans are
   purely observational, enabling Obs for the duration cannot change
   numeric results. *)

type bar = {
  label : string;
  total : int;
  fd : Unix.file_descr;
  mutex : Mutex.t; (* events fire on worker domains *)
  start_ns : int;
  mutable count : int;
  mutable last_len : int;
}

let write_str fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  (try
     while !written < n do
       written := !written + Unix.write fd b !written (n - !written)
     done
   with Unix.Unix_error _ -> ())

let bar_width = 30

(* Must be called with [b.mutex] held. *)
let draw b =
  let count = Stdlib.min b.count b.total in
  let filled =
    if b.total = 0 then bar_width else bar_width * count / b.total
  in
  let elapsed = float_of_int (Obs.now_ns () - b.start_ns) /. 1e9 in
  let line =
    Printf.sprintf "\r%s [%s%s] %d/%d %.1fs" b.label
      (String.make filled '#')
      (String.make (bar_width - filled) '.')
      count b.total elapsed
  in
  (* pad over any longer previous frame *)
  let pad = Stdlib.max 0 (b.last_len - (String.length line - 1)) in
  b.last_len <- String.length line - 1;
  write_str b.fd (line ^ String.make pad ' ')

let clear b =
  write_str b.fd ("\r" ^ String.make b.last_len ' ' ^ "\r")

let with_bar ?(out = Unix.stderr) ?enabled ~label ~total ~span f =
  let active =
    (match enabled with
    | Some b -> b
    | None -> ( try Unix.isatty out with Unix.Unix_error _ -> false))
    && total > 0
  in
  if not active then f ()
  else begin
    let was_enabled = Obs.enabled () in
    Obs.set_enabled true;
    let b =
      {
        label;
        total;
        fd = out;
        mutex = Mutex.create ();
        start_ns = Obs.now_ns ();
        count = 0;
        last_len = 0;
      }
    in
    Mutex.lock b.mutex;
    draw b;
    Mutex.unlock b.mutex;
    let sub =
      Obs.Span.subscribe (fun ev ->
          if ev.Obs.Span.span.Obs.Span.name = span then begin
            Mutex.lock b.mutex;
            b.count <- b.count + 1;
            draw b;
            Mutex.unlock b.mutex
          end)
    in
    Fun.protect
      ~finally:(fun () ->
        Obs.Span.unsubscribe sub;
        Mutex.lock b.mutex;
        clear b;
        Mutex.unlock b.mutex;
        if not was_enabled then Obs.set_enabled false)
      f
  end
