(** Dependency-free OTLP/HTTP JSON exporter for the [Obs] registry.

    Maps completed span trees, {!Obs.Metrics.expose} rows and teed log
    records onto OpenTelemetry's HTTP/JSON protocol ([/v1/traces],
    [/v1/metrics], [/v1/logs]) using only [Unix] sockets and the shared
    JSON codec in [Obs] — no outside dependencies, so it can be
    pointed at any OTLP collector ([otelcol], Jaeger, Tempo, a test
    sink) without adding libraries.

    A background thread batches and flushes queued telemetry on a
    timer; each POST retries with exponential backoff and finally
    drops (counted in {!stats}) so a dead collector can never wedge or
    grow the instrumented process unboundedly. *)

type config = {
  endpoint : string;  (** [http://host:port[/base]]; no TLS *)
  service_name : string;  (** OTLP [service.name] resource attribute *)
  flush_interval : float;  (** seconds between background flushes *)
  max_batch : int;  (** spans per POST *)
  max_buffer : int;  (** queued spans/logs cap; overflow is dropped *)
  max_retries : int;  (** additional attempts after the first *)
  backoff : float;  (** initial retry delay, doubled per retry *)
  timeout : float;  (** per-socket send/receive timeout, seconds *)
  sample_rate : float;
      (** head-sampling keep fraction in [0, 1], keyed on the trace id
          (see {!sampled}); 1 exports everything *)
}

val default_config : config
(** Service ["dlosn"], 2 s flushes, 512-span batches, 4096-item
    buffers, 2 retries from 0.1 s, 5 s socket timeouts, sample rate 1
    (no sampling). *)

val env_var : string
(** ["DLOSN_OTLP"] — the endpoint environment variable honoured by the
    CLI and server when no [--otlp-endpoint] flag is given. *)

val sample_env_var : string
(** ["DLOSN_OTLP_SAMPLE"] — the sample-rate environment variable
    honoured by the CLI and server when no [--otlp-sample-rate] flag
    is given. *)

val sampled : rate:float -> string -> bool
(** [sampled ~rate trace_id] is the pure head-sampling decision: the
    last (up to) 12 hex chars of [trace_id] map to a deterministic
    point [u] in [0, 1), kept iff [u < rate].  All-in-or-all-out per
    trace: every span and log record of a trace shares the id and so
    the verdict.  Monotone in [rate] (the keep set at a lower rate is
    a subset of the keep set at any higher rate); [rate >= 1] keeps
    everything, [rate <= 0] (or NaN) keeps nothing.  Non-hex ids fall
    back to a hash-derived point with the same properties. *)

type t

val create :
  ?config:config ->
  ?metrics_provider:(unit -> Obs.Metrics.exposition_row list) ->
  ?endpoint:string ->
  unit ->
  t
(** Build an exporter for [endpoint] (overrides [config.endpoint]).
    Raises [Invalid_argument] on a malformed or [https://] endpoint,
    or on a [sample_rate] outside [0, 1].
    [metrics_provider], when given, is sampled at every flush and
    posted to [/v1/metrics] — it runs on the flusher thread, so it
    must be safe to call concurrently (the server wraps it in its
    aggregate lock; the CLI relies on the systhreads runtime lock). *)

val observe_spans : t -> unit
(** Subscribe to the {!Obs.Span} close stream and queue every root
    span (with its full subtree) for export.  Roots whose trace fails
    the {!sampled} check are dropped at enqueue time (head sampling);
    traceless roots are always kept. *)

val tee_logs : t -> unit
(** Install the {!Obs.Log.set_tee} hook and queue every emitted log
    record for export.  The exporter's own ["otlp.*"] warn records are
    skipped so a dead collector cannot feed the exporter its own
    error reports.  Records linked to a trace follow the trace's
    {!sampled} verdict, so a sampled trace exports with all its logs
    and a dropped one exports neither; untraced records are always
    kept. *)

val start : t -> unit
(** Start the background flusher thread (idempotent). *)

val flush : t -> unit
(** Synchronously drain and POST everything queued right now,
    including a metrics snapshot when a provider is set. *)

val shutdown : t -> unit
(** Unhook from [Obs], stop the flusher thread, and run one final
    {!flush}.  Safe to call more than once. *)

type stats = { sent_posts : int; failed_posts : int; dropped : int }

val stats : t -> stats

(** {2 Pure payload builders}

    Exposed for golden-fixture tests and for callers that want the
    OTLP JSON without the sender (e.g. writing it to a file). *)

val spans_body : ?service:string -> Obs.Span.t list -> string
(** OTLP [resourceSpans] JSON for the given root spans; each tree is
    flattened with [parentSpanId] links, and a root without a trace id
    gets a fresh one. *)

val metrics_body :
  ?service:string -> now_ns:int -> Obs.Metrics.exposition_row list -> string
(** OTLP [resourceMetrics] JSON: counters become monotonic cumulative
    sums, gauges become gauges (never-set ones are skipped), and
    histograms become cumulative histogram data points with explicit
    bounds.  [now_ns] stamps every data point. *)

val logs_body : ?service:string -> Obs.Log.record list -> string
(** OTLP [resourceLogs] JSON; records carrying a 32-hex trace id are
    linked to their trace. *)
