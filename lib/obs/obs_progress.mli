(** TTY-aware live progress bars driven by the [Obs] span stream.

    A bar counts closes of one named span (e.g. ["batch.story"]) via
    {!Obs.Span.subscribe} and redraws a single carriage-return
    overwritten line.  Inert unless the output is a TTY (or [enabled]
    forces it), so redirected and CI runs stay byte-clean. *)

val with_bar :
  ?out:Unix.file_descr ->
  ?enabled:bool ->
  label:string ->
  total:int ->
  span:string ->
  (unit -> 'a) ->
  'a
(** [with_bar ~label ~total ~span f] runs [f] with a live progress bar
    on [out] (default [Unix.stderr]) that advances each time a span
    named [span] closes on any domain, up to [total].

    When inactive ([out] not a TTY and [enabled] unset, [enabled =
    Some false], or [total = 0]) this is exactly [f ()].  When active
    it turns {!Obs.enabled} on for the duration (restoring it after) —
    spans are purely observational, so numeric results are unchanged.
    The bar line is cleared on exit, including on exceptions. *)
