(* Observability substrate: structured logging, a metrics registry and
   span tracing, shared by every layer of the DL pipeline.

   Design constraints (see docs/OBSERVABILITY.md):
   - zero-cost when disabled: one atomic load + branch per site, log
     field closures never evaluated, no timing syscalls;
   - domain-safe and deterministic: worker domains record into private
     shards (installed by Parallel.Pool) that are merged on the calling
     domain in worker-index order at pool teardown, so counter totals
     are exact and never racy;
   - purely observational: nothing here feeds back into the numeric
     path, so results are bit-identical with observability on or off. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* --- unique ids (spans and traces) ---

   splitmix64 over a per-process seed xor a shared counter: unique
   within a process run, overwhelmingly unique across processes, and
   cheap (no syscall after init).  Only generated while enabled. *)

let id_seed =
  Int64.logxor
    (Int64.bits_of_float (Unix.gettimeofday ()))
    (Int64.mul (Int64.of_int (Unix.getpid ())) 0x9E3779B97F4A7C15L)

let id_counter = Atomic.make 1

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_id64 () =
  let n = Atomic.fetch_and_add id_counter 1 in
  let v =
    mix64 (Int64.add id_seed (Int64.mul (Int64.of_int n) 0x9E3779B97F4A7C15L))
  in
  (* OTLP forbids all-zero ids; the guard costs nothing *)
  if v = 0L then 1L else v

(* --- global switch --- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- severity levels --- *)

module Level = struct
  type t = Debug | Info | Warn | Error

  let to_int = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  let to_string = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let valid_names = "debug|info|warn|error"

  let of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "debug" -> Ok Debug
    | "info" -> Ok Info
    | "warn" | "warning" -> Ok Warn
    | "error" -> Ok Error
    | other ->
      Error (Printf.sprintf "unknown log level %S (%s)" other valid_names)
end

(* --- JSON helpers (shared by the log sink and the metrics dump) --- *)

let json_escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_float v =
  (* JSON has no NaN/Infinity; map them to null. %.17g round-trips. *)
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

(* --- structured logger --- *)

(* Forward reference to the per-context trace id (the context type is
   defined below, after Log, because span nodes carry Log.field lists). *)
let current_trace : (unit -> string option) ref = ref (fun () -> None)

module Log = struct
  type value = String of string | Int of int | Float of float | Bool of bool
  type field = string * value

  let str k v = (k, String v)
  let int k v = (k, Int v)
  let float k v = (k, Float v)
  let bool k v = (k, Bool v)

  type sink = Human | Json

  let cur_sink = Atomic.make Human
  let set_sink s = Atomic.set cur_sink s
  let sink () = Atomic.get cur_sink

  (* -1 = logging off; otherwise the minimum Level.to_int to emit. *)
  let filter = Atomic.make (-1)

  let set_level = function
    | None -> Atomic.set filter (-1)
    | Some l -> Atomic.set filter (Level.to_int l)

  let level () =
    match Atomic.get filter with
    | 0 -> Some Level.Debug
    | 1 -> Some Level.Info
    | 2 -> Some Level.Warn
    | 3 -> Some Level.Error
    | _ -> None

  let out = ref (fun line -> prerr_endline line)
  let set_out f = out := f

  let would_log l =
    Atomic.get enabled_flag
    &&
    let min_level = Atomic.get filter in
    min_level >= 0 && Level.to_int l >= min_level

  let add_value_json buf = function
    | String s ->
      Buffer.add_char buf '"';
      json_escape_into buf s;
      Buffer.add_char buf '"'
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (json_float f)
    | Bool b -> Buffer.add_string buf (string_of_bool b)

  let add_value_human buf = function
    | String s -> Buffer.add_string buf s
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
    | Bool b -> Buffer.add_string buf (string_of_bool b)

  (* A fully-evaluated log record, as handed to the tee hook. *)
  type record = {
    r_ts : float; (* epoch seconds *)
    r_level : Level.t;
    r_msg : string;
    r_fields : field list;
    r_trace_id : string option;
  }

  (* Optional structured tap fed after the textual sink (used by the
     OTLP exporter). Exceptions from the tee are swallowed: telemetry
     must never break the instrumented program. *)
  let tee : (record -> unit) option Atomic.t = Atomic.make None
  let set_tee f = Atomic.set tee f

  (* The whole record becomes one [!out] call, so concurrent emitters
     cannot interleave within a line. *)
  let emit l msg fields =
    let ts = Unix.gettimeofday () in
    let trace = !current_trace () in
    let buf = Buffer.create 128 in
    (match Atomic.get cur_sink with
    | Json ->
      Buffer.add_string buf "{\"ts\":";
      Buffer.add_string buf (Printf.sprintf "%.6f" ts);
      Buffer.add_string buf ",\"level\":\"";
      Buffer.add_string buf (Level.to_string l);
      Buffer.add_string buf "\",\"msg\":\"";
      json_escape_into buf msg;
      Buffer.add_char buf '"';
      (match trace with
      | None -> ()
      | Some tid ->
        Buffer.add_string buf ",\"trace_id\":\"";
        json_escape_into buf tid;
        Buffer.add_char buf '"');
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf ",\"";
          json_escape_into buf k;
          Buffer.add_string buf "\":";
          add_value_json buf v)
        fields;
      Buffer.add_char buf '}'
    | Human ->
      Buffer.add_string buf (Printf.sprintf "[%-5s] " (Level.to_string l));
      Buffer.add_string buf msg;
      (match trace with
      | None -> ()
      | Some tid ->
        Buffer.add_string buf " trace=";
        Buffer.add_string buf tid);
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          add_value_human buf v)
        fields);
    !out (Buffer.contents buf);
    match Atomic.get tee with
    | None -> ()
    | Some f -> (
      try
        f
          {
            r_ts = ts;
            r_level = l;
            r_msg = msg;
            r_fields = fields;
            r_trace_id = trace;
          }
      with _ -> ())

  let log l ?fields msg =
    if would_log l then
      emit l msg (match fields with None -> [] | Some f -> f ())

  let debug ?fields msg = log Level.Debug ?fields msg
  let info ?fields msg = log Level.Info ?fields msg
  let warn ?fields msg = log Level.Warn ?fields msg
  let error ?fields msg = log Level.Error ?fields msg
end

(* --- metric registry (definitions are global and append-only) --- *)

type kind = Kcounter | Kgauge | Khist of float array

type def = { id : int; name : string; label : string option; kind : kind }

let registry : def array ref = ref [||]
let reg_index : (string * string option, int) Hashtbl.t = Hashtbl.create 64

(* Registration is rare (module init, pool setup); a tiny spin lock
   keeps it safe if it ever happens off the main domain. *)
let reg_lock = Atomic.make false

let with_reg_lock f =
  while not (Atomic.compare_and_set reg_lock false true) do
    ()
  done;
  Fun.protect ~finally:(fun () -> Atomic.set reg_lock false) f

(* --- per-domain context: metric cells + span stack --- *)

type cell =
  | Ccounter of { mutable c : int }
  | Cgauge of { mutable gset : bool; mutable g : float }
  | Chist of {
      bounds : float array;
      counts : int array; (* length = Array.length bounds + 1 (overflow) *)
      mutable total : int;
      mutable sum : float;
    }

type span_node = {
  sname : string;
  sid : string; (* 16-hex span id *)
  strace : string; (* 32-hex trace id; "" when recorded outside a trace *)
  mutable sattrs : Log.field list; (* newest first *)
  sstart : int;
  mutable send : int;
  mutable sdur : int;
  mutable schildren : span_node list; (* newest first *)
}

type context = {
  mutable cells : cell option array; (* indexed by def.id, grown on demand *)
  mutable open_spans : span_node list; (* innermost first *)
  mutable done_spans : span_node list; (* completed roots, newest first *)
  mutable trace : string option; (* request-scoped trace id, if any *)
}

let new_context () =
  { cells = [||]; open_spans = []; done_spans = []; trace = None }

let ctx_key = Obs_tls.new_key new_context
let current () = Obs_tls.get ctx_key
let () = current_trace := fun () -> (current ()).trace

let cell_of_def ctx (d : def) =
  if d.id >= Array.length ctx.cells then begin
    let n = Array.length ctx.cells in
    let grown = Array.make (Stdlib.max (d.id + 1) (Stdlib.max 16 (2 * n))) None in
    Array.blit ctx.cells 0 grown 0 n;
    ctx.cells <- grown
  end;
  match ctx.cells.(d.id) with
  | Some c -> c
  | None ->
    let c =
      match d.kind with
      | Kcounter -> Ccounter { c = 0 }
      | Kgauge -> Cgauge { gset = false; g = 0. }
      | Khist bounds ->
        Chist
          {
            bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            total = 0;
            sum = 0.;
          }
    in
    ctx.cells.(d.id) <- Some c;
    c

module Metrics = struct
  type counter = def
  type gauge = def
  type histogram = def

  (* exponential nanosecond buckets: 1 us .. 10 s, then overflow *)
  let default_buckets = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 |]

  let same_kind a b =
    match (a, b) with
    | Kcounter, Kcounter | Kgauge, Kgauge | Khist _, Khist _ -> true
    | _ -> false

  let register ~name ~label kind =
    with_reg_lock (fun () ->
        match Hashtbl.find_opt reg_index (name, label) with
        | Some id ->
          let d = !registry.(id) in
          if not (same_kind d.kind kind) then
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics: %S re-registered with a different kind" name);
          d
        | None ->
          let id = Array.length !registry in
          let d = { id; name; label; kind } in
          registry := Array.append !registry [| d |];
          Hashtbl.add reg_index (name, label) id;
          d)

  let counter ?label name = register ~name ~label Kcounter
  let gauge ?label name = register ~name ~label Kgauge

  let histogram ?label ?(buckets = default_buckets) name =
    register ~name ~label (Khist buckets)

  let incr ?(by = 1) (d : counter) =
    if enabled () then
      match cell_of_def (current ()) d with
      | Ccounter c -> c.c <- c.c + by
      | _ -> assert false

  let set (d : gauge) v =
    if enabled () then
      match cell_of_def (current ()) d with
      | Cgauge g ->
        g.g <- v;
        g.gset <- true
      | _ -> assert false

  let observe (d : histogram) v =
    if enabled () then
      match cell_of_def (current ()) d with
      | Chist h ->
        let i = ref 0 in
        while !i < Array.length h.bounds && v > h.bounds.(!i) do
          i := !i + 1
        done;
        h.counts.(!i) <- h.counts.(!i) + 1;
        h.total <- h.total + 1;
        h.sum <- h.sum +. v
      | _ -> assert false

  (* readers: values from the calling domain's context (after pool
     teardown that is the merged view) *)

  let counter_value (d : counter) =
    match cell_of_def (current ()) d with Ccounter c -> c.c | _ -> assert false

  let gauge_value (d : gauge) =
    match cell_of_def (current ()) d with
    | Cgauge g -> if g.gset then Some g.g else None
    | _ -> assert false

  let histogram_count (d : histogram) =
    match cell_of_def (current ()) d with
    | Chist h -> h.total
    | _ -> assert false

  let histogram_sum (d : histogram) =
    match cell_of_def (current ()) d with
    | Chist h -> h.sum
    | _ -> assert false

  let reset () = (current ()).cells <- [||]

  (* --- JSON dump: schema dlosn-metrics/1 --- *)

  let schema_version = "dlosn-metrics/1"

  let to_json_string () =
    let ctx = current () in
    let defs = with_reg_lock (fun () -> !registry) in
    let buf = Buffer.create 1024 in
    let add = Buffer.add_string buf in
    let add_name_label (d : def) =
      add "{\"name\":\"";
      json_escape_into buf d.name;
      add "\",\"label\":";
      (match d.label with
      | None -> add "null"
      | Some l ->
        add "\"";
        json_escape_into buf l;
        add "\"")
    in
    let rows keep render =
      let first = ref true in
      Array.iter
        (fun (d : def) ->
          if keep d.kind then begin
            if not !first then add ",";
            first := false;
            add "\n    ";
            render d
          end)
        defs;
      if not !first then add "\n  "
    in
    add "{\n";
    add (Printf.sprintf "  \"schema\": %S,\n" schema_version);
    add "  \"counters\": [";
    rows
      (function Kcounter -> true | _ -> false)
      (fun d ->
        add_name_label d;
        add (Printf.sprintf ",\"value\":%d}" (counter_value d)));
    add "],\n";
    add "  \"gauges\": [";
    rows
      (function Kgauge -> true | _ -> false)
      (fun d ->
        add_name_label d;
        add ",\"value\":";
        (match gauge_value d with
        | None -> add "null"
        | Some v -> add (json_float v));
        add "}");
    add "],\n";
    add "  \"histograms\": [";
    rows
      (function Khist _ -> true | _ -> false)
      (fun d ->
        match cell_of_def ctx d with
        | Chist h ->
          add_name_label d;
          add
            (Printf.sprintf ",\"count\":%d,\"sum\":%s,\"buckets\":[" h.total
               (json_float h.sum));
          Array.iteri
            (fun i c ->
              if i > 0 then add ",";
              let le =
                if i < Array.length h.bounds then json_float h.bounds.(i)
                else "null" (* overflow bucket: le = +inf *)
              in
              add (Printf.sprintf "{\"le\":%s,\"count\":%d}" le c))
            h.counts;
          add "]}"
        | _ -> assert false);
    add "]\n}\n";
    Buffer.contents buf

  let write_json ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_json_string ()))

  (* --- exposition: registry snapshot + Prometheus text rendering --- *)

  type histogram_snapshot = {
    h_count : int;
    h_sum : float;
    h_cumulative : (float * int) array;
  }

  type sample =
    | Counter_sample of int
    | Gauge_sample of float option
    | Histogram_sample of histogram_snapshot

  type exposition_row = {
    row_name : string;
    row_label : string option;
    row_sample : sample;
  }

  let expose () =
    let ctx = current () in
    let defs = with_reg_lock (fun () -> !registry) in
    Array.to_list defs
    |> List.map (fun (d : def) ->
           let row_sample =
             match cell_of_def ctx d with
             | Ccounter c -> Counter_sample c.c
             | Cgauge g -> Gauge_sample (if g.gset then Some g.g else None)
             | Chist h ->
               let acc = ref 0 in
               let cumulative =
                 Array.mapi
                   (fun i c ->
                     acc := !acc + c;
                     let le =
                       if i < Array.length h.bounds then h.bounds.(i)
                       else infinity
                     in
                     (le, !acc))
                   h.counts
               in
               Histogram_sample
                 { h_count = h.total; h_sum = h.sum; h_cumulative = cumulative }
           in
           { row_name = d.name; row_label = d.label; row_sample })

  let prom_sanitize buf s =
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
        | _ -> Buffer.add_char buf '_')
      s

  let prom_label_escape buf s =
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s

  (* Prometheus floats allow the non-finite spellings JSON forbids. *)
  let prom_float v =
    if Float.is_nan v then "NaN"
    else if v = infinity then "+Inf"
    else if v = neg_infinity then "-Inf"
    else Printf.sprintf "%.17g" v

  let prom_le v = if v = infinity then "+Inf" else Printf.sprintf "%g" v

  let to_prometheus_string ?(namespace = "dlosn") () =
    let rows = expose () in
    (* group rows by metric name, preserving first-registration order,
       so each family gets exactly one TYPE line *)
    let order = ref [] in
    let families = Hashtbl.create 32 in
    List.iter
      (fun row ->
        match Hashtbl.find_opt families row.row_name with
        | None ->
          Hashtbl.add families row.row_name (ref [ row ]);
          order := row.row_name :: !order
        | Some rs -> rs := row :: !rs)
      rows;
    let buf = Buffer.create 4096 in
    let family_name name ~suffix =
      let b = Buffer.create 48 in
      prom_sanitize b namespace;
      Buffer.add_char b '_';
      prom_sanitize b name;
      Buffer.add_string b suffix;
      Buffer.contents b
    in
    let add_labels = function
      | [] -> ()
      | kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf k;
            Buffer.add_string buf "=\"";
            prom_label_escape buf v;
            Buffer.add_char buf '"')
          kvs;
        Buffer.add_char buf '}'
    in
    let sample_line name labels value =
      Buffer.add_string buf name;
      add_labels labels;
      Buffer.add_char buf ' ';
      Buffer.add_string buf value;
      Buffer.add_char buf '\n'
    in
    let base_labels row =
      match row.row_label with None -> [] | Some l -> [ ("label", l) ]
    in
    List.iter
      (fun name ->
        let rows = List.rev !(Hashtbl.find families name) in
        match rows with
        | [] -> ()
        | first :: _ -> (
          match first.row_sample with
          | Counter_sample _ ->
            let n = family_name name ~suffix:"_total" in
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
            List.iter
              (fun row ->
                match row.row_sample with
                | Counter_sample v ->
                  sample_line n (base_labels row) (string_of_int v)
                | _ -> ())
              rows
          | Gauge_sample _ ->
            let set =
              List.filter
                (function
                  | { row_sample = Gauge_sample (Some _); _ } -> true
                  | _ -> false)
                rows
            in
            if set <> [] then begin
              let n = family_name name ~suffix:"" in
              Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
              List.iter
                (fun row ->
                  match row.row_sample with
                  | Gauge_sample (Some v) ->
                    sample_line n (base_labels row) (prom_float v)
                  | _ -> ())
                set
            end
          | Histogram_sample _ ->
            let n = family_name name ~suffix:"" in
            Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
            List.iter
              (fun row ->
                match row.row_sample with
                | Histogram_sample h ->
                  let labels = base_labels row in
                  Array.iter
                    (fun (le, c) ->
                      sample_line (n ^ "_bucket")
                        (labels @ [ ("le", prom_le le) ])
                        (string_of_int c))
                    h.h_cumulative;
                  sample_line (n ^ "_sum") labels (prom_float h.h_sum);
                  sample_line (n ^ "_count") labels (string_of_int h.h_count)
                | _ -> ())
              rows))
      (List.rev !order);
    Buffer.contents buf
end

(* --- span tracing --- *)

module Span = struct
  type t = {
    name : string;
    attrs : Log.field list;
    dur_ns : int;
    children : t list;
    span_id : string; (* 16 hex chars, unique within the process *)
    trace_id : string; (* 32 hex chars; "" when recorded outside a trace *)
    start_ns : int; (* epoch nanoseconds at open (wall clock) *)
    end_ns : int; (* epoch nanoseconds at close; always >= start_ns *)
  }

  let gen_span_id () = Printf.sprintf "%016Lx" (next_id64 ())

  let gen_trace_id () =
    Printf.sprintf "%016Lx%016Lx" (next_id64 ()) (next_id64 ())

  let set_trace_id tid = (current ()).trace <- tid
  let trace_id () = (current ()).trace

  let with_trace_id tid f =
    let ctx = current () in
    let saved = ctx.trace in
    ctx.trace <- Some tid;
    Fun.protect ~finally:(fun () -> ctx.trace <- saved) f

  (* --- streaming observer: every span close becomes an event --- *)

  type event = { span : t; root : bool }
  type subscription = int

  let subscribers : (int * (event -> unit)) list Atomic.t = Atomic.make []
  let sub_counter = Atomic.make 0

  let subscribe f =
    let id = Atomic.fetch_and_add sub_counter 1 in
    let rec add () =
      let cur = Atomic.get subscribers in
      if not (Atomic.compare_and_set subscribers cur ((id, f) :: cur)) then
        add ()
    in
    add ();
    id

  let unsubscribe id =
    let rec remove () =
      let cur = Atomic.get subscribers in
      let next = List.filter (fun (i, _) -> i <> id) cur in
      if not (Atomic.compare_and_set subscribers cur next) then remove ()
    in
    remove ()

  let rec view (n : span_node) =
    {
      name = n.sname;
      attrs = List.rev n.sattrs;
      dur_ns = n.sdur;
      children = List.rev_map view n.schildren;
      span_id = n.sid;
      trace_id = n.strace;
      start_ns = n.sstart;
      end_ns = n.send;
    }

  let with_span name ?attrs f =
    if not (enabled ()) then f ()
    else begin
      let ctx = current () in
      let node =
        {
          sname = name;
          sid = gen_span_id ();
          strace = (match ctx.trace with Some tid -> tid | None -> "");
          sattrs =
            (match attrs with None -> [] | Some g -> List.rev (g ()));
          sstart = now_ns ();
          send = 0;
          sdur = 0;
          schildren = [];
        }
      in
      ctx.open_spans <- node :: ctx.open_spans;
      let finish () =
        (* now_ns is wall-clock (gettimeofday): NTP can step it
           backwards mid-span, so clamp the end at the start. *)
        let e = now_ns () in
        let e = if e < node.sstart then node.sstart else e in
        node.send <- e;
        node.sdur <- e - node.sstart;
        (* Pop up to and including [node]; defensive against a body
           that leaked opens (it cannot happen via with_span itself). *)
        let rec pop = function
          | n :: rest when n == node -> rest
          | _ :: rest -> pop rest
          | [] -> []
        in
        ctx.open_spans <- pop ctx.open_spans;
        (match ctx.open_spans with
        | parent :: _ -> parent.schildren <- node :: parent.schildren
        | [] -> ctx.done_spans <- node :: ctx.done_spans);
        match Atomic.get subscribers with
        | [] -> ()
        | subs ->
          (* Fired on the recording domain, children before parents.
             Subscriber exceptions are swallowed: observers must never
             break the instrumented program. *)
          let ev = { span = view node; root = ctx.open_spans = [] } in
          List.iter (fun (_, f) -> try f ev with _ -> ()) subs
      in
      Fun.protect ~finally:finish f
    end

  let add_attr k v =
    if enabled () then
      match (current ()).open_spans with
      | node :: _ -> node.sattrs <- (k, v) :: node.sattrs
      | [] -> ()

  let roots () = List.rev_map view (current ()).done_spans

  let reset () =
    let ctx = current () in
    ctx.open_spans <- [];
    ctx.done_spans <- [];
    ctx.trace <- None

  type agg = { path : string; count : int; total_ns : int }

  (* Aggregated by slash-joined path, in first-visit (pre-order) order,
     so parents always precede their children — a deterministic,
     tree-shaped profile. *)
  let summary () =
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    let rec walk prefix (s : t) =
      let path = if prefix = "" then s.name else prefix ^ "/" ^ s.name in
      (match Hashtbl.find_opt tbl path with
      | None ->
        Hashtbl.add tbl path (1, s.dur_ns);
        order := path :: !order
      | Some (c, tot) -> Hashtbl.replace tbl path (c + 1, tot + s.dur_ns));
      List.iter (walk path) s.children
    in
    List.iter (walk "") (roots ());
    List.rev_map
      (fun path ->
        let count, total_ns = Hashtbl.find tbl path in
        { path; count; total_ns })
      !order

  let pp_summary ppf () =
    let rows = summary () in
    Format.fprintf ppf "@[<v>%-48s %8s %12s %12s@," "span" "count" "total ms"
      "mean ms";
    List.iter
      (fun { path; count; total_ns } ->
        let total_ms = float_of_int total_ns /. 1e6 in
        Format.fprintf ppf "%-48s %8d %12.2f %12.3f@," path count total_ms
          (total_ms /. float_of_int count))
      rows;
    Format.fprintf ppf "@]"

  let log_summary () =
    List.iter
      (fun { path; count; total_ns } ->
        let total_ms = float_of_int total_ns /. 1e6 in
        Log.info "span.summary"
          ~fields:(fun () ->
            [
              Log.str "span" path;
              Log.int "count" count;
              Log.float "total_ms" total_ms;
              Log.float "mean_ms" (total_ms /. float_of_int count);
            ]))
      (summary ())

  (* --- folded stacks (flamegraph.pl / speedscope "folded" format) --- *)

  (* Frame names must avoid ';' (stack separator) and ' ' (weight
     separator). A small attr allowlist decorates frames so per-story
     and per-model work stays distinguishable in the flame graph. *)
  let flame_attrs = [ "story"; "model"; "route" ]

  let folded_frame buf (s : t) =
    let sanitized str =
      String.iter
        (fun c ->
          Buffer.add_char buf
            (match c with ';' | ' ' | '\n' | '\r' | '\t' -> '_' | c -> c))
        str
    in
    sanitized s.name;
    List.iter
      (fun (k, v) ->
        if List.mem k flame_attrs then begin
          Buffer.add_char buf '[';
          sanitized k;
          Buffer.add_char buf '=';
          (match v with
          | Log.String sv -> sanitized sv
          | Log.Int i -> Buffer.add_string buf (string_of_int i)
          | Log.Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
          | Log.Bool b -> Buffer.add_string buf (string_of_bool b));
          Buffer.add_char buf ']'
        end)
      s.attrs

  (* (stack, self-time ns) rows in first-visit pre-order; repeated
     stacks merge by summing self time. Self time is the span duration
     minus its children's, clamped at 0 (children can overlap the
     parent's clock reading). *)
  let fold_stacks spans =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    let rec walk prefix (s : t) =
      let buf = Buffer.create 64 in
      if prefix <> "" then begin
        Buffer.add_string buf prefix;
        Buffer.add_char buf ';'
      end;
      folded_frame buf s;
      let path = Buffer.contents buf in
      let child_ns =
        List.fold_left (fun acc c -> acc + c.dur_ns) 0 s.children
      in
      let self = Stdlib.max 0 (s.dur_ns - child_ns) in
      (match Hashtbl.find_opt tbl path with
      | None ->
        Hashtbl.add tbl path self;
        order := path :: !order
      | Some v -> Hashtbl.replace tbl path (v + self));
      List.iter (walk path) s.children
    in
    List.iter (walk "") spans;
    List.rev_map (fun path -> (path, Hashtbl.find tbl path)) !order

  let to_folded spans =
    let buf = Buffer.create 256 in
    List.iter
      (fun (path, self_ns) ->
        Buffer.add_string buf path;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int self_ns);
        Buffer.add_char buf '\n')
      (fold_stacks spans);
    Buffer.contents buf
end

(* --- shards: how Parallel.Pool gives each worker domain its own
   recording context, merged deterministically at teardown --- *)

module Shard = struct
  type t = context

  let create () = new_context ()

  let with_shard (t : t) f =
    let saved = Obs_tls.get ctx_key in
    Obs_tls.set ctx_key t;
    Fun.protect ~finally:(fun () -> Obs_tls.set ctx_key saved) f

  let merge (src : t) =
    let dst = current () in
    let defs = with_reg_lock (fun () -> !registry) in
    Array.iteri
      (fun id copt ->
        match copt with
        | None -> ()
        | Some src_cell -> (
          match (src_cell, cell_of_def dst defs.(id)) with
          | Ccounter a, Ccounter b -> b.c <- b.c + a.c
          | Cgauge a, Cgauge b ->
            if a.gset then begin
              b.g <- a.g;
              b.gset <- true
            end
          | Chist a, Chist b ->
            Array.iteri
              (fun i v -> b.counts.(i) <- b.counts.(i) + v)
              a.counts;
            b.total <- b.total + a.total;
            b.sum <- b.sum +. a.sum
          | _ -> assert false))
      src.cells;
    src.cells <- [||];
    (* Completed span roots attach, in their original order, under the
       destination's innermost open span (or become roots). *)
    let spans = List.rev src.done_spans in
    (match dst.open_spans with
    | parent :: _ ->
      List.iter (fun s -> parent.schildren <- s :: parent.schildren) spans
    | [] ->
      List.iter (fun s -> dst.done_spans <- s :: dst.done_spans) spans);
    src.done_spans <- [];
    src.open_spans <- []

  let span_roots (t : t) = List.rev_map Span.view t.done_spans

  let take_span_roots (t : t) =
    let roots = span_roots t in
    t.done_spans <- [];
    roots
end

let reset () =
  Metrics.reset ();
  Span.reset ()

(* --- environment hook: DLSON_LOG comma-separated tokens --- *)

let env_var = "DLOSN_LOG"

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s ->
    set_enabled true;
    List.iter
      (fun tok ->
        match String.lowercase_ascii (String.trim tok) with
        | "" -> ()
        | "json" -> Log.set_sink Log.Json
        | "human" -> Log.set_sink Log.Human
        | tok -> (
          match Level.of_string tok with
          | Ok l -> Log.set_level (Some l)
          | Error _ -> () (* unknown tokens are ignored, by design *)))
      (String.split_on_char ',' s)

let () = init_from_env ()
