(* Domain-local storage backend (OCaml >= 5.0): each domain gets its
   own slot, so worker domains can carry their own metric shard and
   span stack without synchronisation. *)

type 'a key = 'a Domain.DLS.key

let new_key init = Domain.DLS.new_key init
let get k = Domain.DLS.get k
let set k v = Domain.DLS.set k v
