(* Sequential backend for compilers without Domains (OCaml 4.x): a
   single mutable slot per key.  Only one "domain" ever runs, so this
   has the same observable behaviour as domain-local storage. *)

type 'a key = { mutable v : 'a }

let new_key init = { v = init () }
let get k = k.v
let set k v = k.v <- v
