open Numerics

type graph_ctx = {
  laplacian : Sparse.t;
  assignment : int array;
  i0 : Vec.t;
}

type spec = {
  obs : Socialnet.Density.t;
  fit_times : float array;
  seed : int;
  pool : Parallel.Pool.t;
  graph : graph_ctx option;
}

let spec ?(fit_times = [| 2.; 3.; 4. |]) ?(seed = 42)
    ?(pool = Parallel.Pool.sequential) ?graph obs =
  { obs; fit_times; seed; pool; graph }

type fitted = {
  model : string;
  predict : x:float -> t:float -> float;
  params : (string * float) list;
  training_error : float;
  evaluations : int;
}

type t = {
  name : string;
  description : string;
  fit : spec -> fitted;
}

(* --- registry --- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg
      (Printf.sprintf "Predictor.register: duplicate model %S" p.name);
  Hashtbl.replace registry p.name p;
  order := p.name :: !order

let find name = Hashtbl.find_opt registry name
let names () = List.sort String.compare (List.rev !order)
let all () = List.rev_map (fun n -> Hashtbl.find registry n) !order

let fit name spec =
  match find name with
  | Some p -> p.fit spec
  | None ->
    invalid_arg
      (Printf.sprintf "Predictor.fit: unknown model %S (registered: %s)" name
         (String.concat ", " (names ())))

(* --- shared helpers --- *)

let growth_params = function
  | Growth.Constant r -> [ ("r", r) ]
  | Growth.Exp_decay { a; b; c } -> [ ("a", a); ("b", b); ("c", c) ]

(* Mean relative error of [predict] over the cells at [times] with a
   positive observed density — the same accuracy measure every fitter
   in the repo optimises. *)
let mean_rel_err ~(obs : Socialnet.Density.t) ~times predict =
  let err = ref 0. and count = ref 0 in
  Array.iter
    (fun x ->
      Array.iter
        (fun t ->
          let actual = Socialnet.Density.at obs ~distance:x ~time:t in
          if actual > 0. then begin
            let predicted = predict ~x:(float_of_int x) ~t in
            err := !err +. (Float.abs (predicted -. actual) /. actual);
            incr count
          end)
        times)
      obs.Socialnet.Density.distances;
  if !count = 0 then Float.nan else !err /. float_of_int !count

(* Baseline predictors take integer distance labels; the common
   interface is float-valued, so round to the nearest label. *)
let of_baseline (p : Baselines.predictor) ~x ~t =
  p ~x:(int_of_float (Float.round x)) ~t

let baseline name build =
  {
    name;
    description =
      (match name with
      | "logistic" -> "per-distance logistic (DL with d = 0)"
      | "gompertz" -> "per-distance Gompertz sigmoid"
      | "linear-trend" -> "per-distance OLS line, clamped at 0"
      | _ -> "density frozen at the t = 1 snapshot");
    fit =
      (fun spec ->
        let p = build spec in
        let predict = of_baseline p in
        {
          model = name;
          predict;
          params = [];
          training_error =
            mean_rel_err ~obs:spec.obs ~times:spec.fit_times predict;
          evaluations = 0;
        });
  }

(* --- built-ins --- *)

let dl =
  {
    name = "dl";
    description = "diffusive logistic PDE (the paper's Eq. 4)";
    fit =
      (fun spec ->
        let config = { Fit.default_config with Fit.fit_times = spec.fit_times } in
        let rng = Rng.create spec.seed in
        let r = Fit.fit ~config ~pool:spec.pool rng spec.obs in
        let phi = Fit.phi_of_obs spec.obs in
        let sol =
          Model.solve r.Fit.params ~phi ~times:spec.obs.Socialnet.Density.times
        in
        let p = r.Fit.params in
        {
          model = "dl";
          predict = Model.predictor sol;
          params =
            ("d", p.Params.d) :: ("k", p.Params.k)
            :: growth_params p.Params.r;
          training_error = r.Fit.training_error;
          evaluations = r.Fit.evaluations;
        });
  }

let dl_linear =
  {
    name = "dl-linear";
    description = "linear diffusive PDE (arXiv:1310.0505; no saturation)";
    fit =
      (fun spec ->
        let config =
          { Linear_model.default_fit_config with
            Linear_model.fit_times = spec.fit_times }
        in
        let rng = Rng.create spec.seed in
        let r = Linear_model.fit ~config ~pool:spec.pool rng spec.obs in
        let phi = Linear_model.phi_of_obs spec.obs in
        let sol =
          Linear_model.solve r.Linear_model.params ~phi
            ~times:spec.obs.Socialnet.Density.times
        in
        let p = r.Linear_model.params in
        {
          model = "dl-linear";
          predict = Linear_model.predictor sol;
          params = ("d", p.Linear_model.d) :: growth_params p.Linear_model.r;
          training_error = r.Linear_model.training_error;
          evaluations = r.Linear_model.evaluations;
        });
  }

let epidemic =
  {
    name = "epidemic";
    description = "networked SI metapopulation over distance groups";
    fit =
      (fun spec ->
        let rng = Rng.create spec.seed in
        let r = Epidemic.fit ~fit_times:spec.fit_times rng spec.obs in
        let p = r.Epidemic.params in
        {
          model = "epidemic";
          predict = of_baseline (Epidemic.predictor p ~obs:spec.obs);
          params =
            [
              ("beta_local", p.Epidemic.beta_local);
              ("beta_cross", p.Epidemic.beta_cross);
              ("mixing_decay", p.Epidemic.mixing_decay);
            ];
          training_error = r.Epidemic.training_error;
          evaluations = 0;
        });
  }

let network =
  let d_grid = [| 0.005; 0.02; 0.08 |] in
  let r_grid = [| 0.3; 0.6; 1.2 |] in
  {
    name = "network";
    description = "node-level DL on the social graph (needs graph context)";
    fit =
      (fun spec ->
        let g =
          match spec.graph with
          | Some g -> g
          | None ->
            invalid_arg
              "Predictor.fit: model \"network\" requires graph context \
               (laplacian, assignment, i0)"
        in
        let obs = spec.obs in
        let r =
          Network_model.fit_grid ~laplacian:g.laplacian
            ~assignment:g.assignment ~obs ~i0:g.i0 ~d_grid ~r_grid ~k:100. ()
        in
        let p = r.Network_model.params in
        let distances = obs.Socialnet.Density.distances in
        let max_distance = distances.(Array.length distances - 1) in
        let times = obs.Socialnet.Density.times in
        let snapshots =
          Network_model.solve ~laplacian:g.laplacian p ~i0:g.i0 ~times
        in
        let profiles =
          Array.map
            (fun (_, v) ->
              Network_model.group_average ~assignment:g.assignment
                ~max_distance v)
            snapshots
        in
        let predict ~x ~t =
          (* nearest recorded snapshot and distance group *)
          let it = ref 0 in
          Array.iteri
            (fun i ti ->
              if Float.abs (ti -. t) < Float.abs (times.(!it) -. t) then
                it := i)
            times;
          let ix = int_of_float (Float.round x) - 1 in
          let ix = Stdlib.max 0 (Stdlib.min (max_distance - 1) ix) in
          profiles.(!it).(ix)
        in
        {
          model = "network";
          predict;
          params =
            ("d", p.Network_model.d) :: ("k", p.Network_model.k)
            :: growth_params p.Network_model.r;
          training_error = r.Network_model.training_error;
          evaluations = Array.length d_grid * Array.length r_grid;
        });
  }

let () =
  register dl;
  register dl_linear;
  register
    (baseline "logistic" (fun spec ->
         Baselines.logistic_per_distance spec.obs ~fit_times:spec.fit_times));
  register
    (baseline "gompertz" (fun spec ->
         Baselines.gompertz_per_distance spec.obs ~fit_times:spec.fit_times));
  register
    (baseline "linear-trend" (fun spec ->
         Baselines.linear_trend spec.obs ~fit_times:spec.fit_times));
  register (baseline "persistence" (fun spec -> Baselines.persistence spec.obs));
  register epidemic;
  register network
