(** Joint two-metric DL model (ours): density over friendship hops AND
    shared-interest distance simultaneously,

    {v dI/dt = dh I_hh + di I_ii + r(t) I (1 - I/K) v}

    on the (hop, interest-group) rectangle with no-flux boundaries.
    The paper treats the two metrics as alternative 1-D projections of
    the same diffusion; this model keeps both axes, with independent
    diffusion rates along each.  Solved with {!Numerics.Pde2d}'s ADI
    scheme. *)

type obs = {
  hops : int array;       (** hop labels, 1..hop_max *)
  groups : int array;     (** interest-group labels, 1..group_max *)
  times : float array;    (** first entry 1. *)
  density : float array array array;
      (** [density.(it).(ih).(ig)] percent *)
  population : int array array;  (** [population.(ih).(ig)] *)
}

val observe :
  Socialnet.Types.story ->
  hop_assignment:int array ->
  interest_assignment:int array ->
  hop_max:int -> group_max:int -> times:float array -> obs
(** Joint density surface: a user contributes to cell (hop, group) when
    both labels are in range.  Cells with zero population report 0. *)

type params = {
  dh : float;       (** diffusion along the hop axis *)
  di : float;       (** diffusion along the interest axis *)
  k : float;
  r : Growth.t;
}

val solve :
  ?dt:float -> params -> obs -> times:float array -> Numerics.Pde2d.solution
(** Initial condition: bilinear interpolation of the observed t = 1
    cell densities (constant beyond cell centres).  Times must be
    >= 1. *)

val accuracy : Numerics.Pde2d.solution -> obs -> float
(** The paper's accuracy metric averaged over all populated cells with
    positive actual density at times > 1; [nan] if none. *)

val fit_grid :
  ?dt:float -> obs ->
  dh_grid:float array -> di_grid:float array ->
  r_grid:Growth.t array -> k:float -> params * float
(** Coarse grid calibration against all observed cells; returns the
    best parameters and their mean relative error.  [r_grid] may mix
    constant and exponential-decay growth rates. *)
