(** The linear diffusive model — the authors' follow-up PDE
    (arXiv:1310.0505, "Modeling Information Diffusion in Online Social
    Networks with Partial Differential Equations"):

    {v dI/dt = d d2I/dx2 + r(t) I v}

    on [\[l, L\]] with Neumann boundaries and [I(x, 1) = phi(x)].
    Dropping the logistic saturation term makes the equation linear:
    the solution separates as [I(x, t) = e^{int_1^t r} w(x, t)] where
    [w] solves the pure heat equation, so early-stage growth is
    exponential and the model has no carrying capacity.  It is the
    natural member of the model zoo between the per-distance growth
    baselines and the full DL equation: diffusion coupling without
    saturation.

    Solving reuses the cached-factorization {!Numerics.Pde} machinery
    (Strang splitting with the {e exact} linear reaction flow, or
    Crank--Nicolson IMEX), so the hot path is the same allocation-free
    Thomas sweep the DL model runs on. *)

type params = {
  d : float;      (** diffusion rate *)
  r : Growth.t;   (** growth rate r(t) *)
  l : float;      (** lower distance bound *)
  big_l : float;  (** upper distance bound *)
}

val make : d:float -> r:Growth.t -> l:float -> big_l:float -> params
(** @raise Invalid_argument unless [d >= 0] and [l < big_l] (message
    in [Linear_model.make: reason] form). *)

val of_dl : Params.t -> params
(** Forget the carrying capacity of a DL parameter set. *)

val to_dl : ?k:float -> params -> Params.t
(** Embed into a DL parameter record ([k] defaults to 1 — the linear
    model has no carrying capacity, so the value is a placeholder;
    the persistent store uses this embedding to reuse the DL record
    layout). *)

type scheme = Crank_nicolson | Strang

type solution = {
  params : params;
  pde : Numerics.Pde.solution;
}

val solve :
  ?scheme:scheme -> ?nx:int -> ?dt:float ->
  params -> phi:Initial.t -> times:float array -> solution
(** [solve params ~phi ~times] integrates from t = 1 and records a
    snapshot at each requested time (all must be [>= 1]).  Defaults:
    [Strang] with the exact linear reaction flow
    ({!Numerics.Pde.linear_reaction_step}), [nx = 101], [dt = 0.01]
    hours. *)

val predict : solution -> x:float -> t:float -> float
(** Interpolated I(x, t) from the recorded snapshots.
    @raise Invalid_argument on NaN [x] or [t]. *)

val predictor : solution -> x:float -> t:float -> float
(** {!predict} with the snapshot-table bounds hoisted into the
    closure (see {!Model.predictor}). *)

type fit_config = {
  fit_times : float array;   (** calibration hours (default [2; 3; 4]) *)
  d_bounds : float * float;  (** default (1e-4, 0.6), as for DL *)
  a_bounds : float * float;  (** default (0., 3.) *)
  b_bounds : float * float;  (** default (0.05, 3.) *)
  c_bounds : float * float;  (** default (0., 1.) *)
  starts : int;              (** Nelder--Mead restarts (default 4) *)
  solver_nx : int;           (** fitting grid (default 41) *)
  solver_dt : float;         (** fitting time step (default 0.05) *)
}

val default_fit_config : fit_config

type fit_result = {
  params : params;
  training_error : float;
      (** mean relative error over the fitting cells *)
  evaluations : int;  (** PDE solves spent *)
}

val phi_of_obs : Socialnet.Density.t -> Initial.t
(** The t = 1 snapshot of an observation as an initial density (same
    construction as {!Fit.phi_of_obs}).
    @raise Invalid_argument if the first recorded time is not 1
    ([Linear_model.fit: …] form). *)

val fit :
  ?config:fit_config -> ?pool:Parallel.Pool.t ->
  Numerics.Rng.t -> Socialnet.Density.t -> fit_result
(** Calibrate (d, a, b, c) with [r(t) = a e^{-b(t-1)} + c] by
    multi-start Nelder--Mead against the densities observed at the
    configured fitting hours, exactly like {!Fit.fit} for the DL model
    but without the carrying-capacity dimension.  [pool] (default
    sequential) distributes the restarts; results are bit-identical
    for any pool size.
    @raise Invalid_argument if [obs] lacks a t = 1 snapshot or has
    fewer than two distances (message in
    [Linear_model.fit: reason] form). *)
