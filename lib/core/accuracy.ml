let accuracy ~predicted ~actual =
  (* densities are non-negative; the relative error is meaningless for
     actual <= 0, so such cells are undefined *)
  if actual <= 0. then nan
  else Float.max 0. (1. -. (Float.abs (predicted -. actual) /. actual))

type table = {
  distances : int array;
  times : float array;
  cells : float array array;
  row_average : float array;
  overall_average : float;
}

let mean_defined values =
  let sum = ref 0. and count = ref 0 in
  Array.iter
    (fun v ->
      if not (Float.is_nan v) then begin
        sum := !sum +. v;
        incr count
      end)
    values;
  if !count = 0 then nan else !sum /. float_of_int !count

let table ~predict ~actual ~distances ~times =
  let cells =
    Array.map
      (fun x ->
        Array.map
          (fun t -> accuracy ~predicted:(predict ~x ~t) ~actual:(actual ~x ~t))
          times)
      distances
  in
  {
    distances;
    times;
    cells;
    row_average = Array.map mean_defined cells;
    overall_average = mean_defined (Array.concat (Array.to_list cells));
  }

let pp_cell ppf v =
  if Float.is_nan v then Format.fprintf ppf "%8s" "-"
  else Format.fprintf ppf "%7.2f%%" (100. *. v)

let pp_table ppf t =
  Format.fprintf ppf "@[<v>Distance  Average";
  Array.iter (fun tm -> Format.fprintf ppf "   t = %g" tm) t.times;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun ix x ->
      Format.fprintf ppf "%-9d%a" x pp_cell t.row_average.(ix);
      Array.iter (fun v -> Format.fprintf ppf "%a" pp_cell v) t.cells.(ix);
      Format.fprintf ppf "@,")
    t.distances;
  Format.fprintf ppf "overall  %a@]" pp_cell t.overall_average
