(** Parameters of the diffusive logistic model (Equation 4):

    {v dI/dt = d d2I/dx2 + r(t) I (1 - I/K) v}

    on the distance interval [\[l, L\]] with Neumann boundaries. *)

type t = {
  d : float;          (** diffusion rate *)
  k : float;          (** carrying capacity (max density, percent) *)
  r : Growth.t;       (** growth rate *)
  l : float;          (** lower distance bound *)
  big_l : float;      (** upper distance bound *)
}

val make : d:float -> k:float -> r:Growth.t -> l:float -> big_l:float -> t
(** @raise Invalid_argument unless [d >= 0], [k > 0] and [l < big_l]. *)

val paper_hops : t
(** The published friendship-hop configuration for story s1:
    d = 0.01, K = 25, r as Eq. 7, x in [1, 6]. *)

val paper_interest : t
(** The published shared-interest configuration for story s1:
    d = 0.05, K = 60, r = 1.6 e^{-(t-1)} + 0.1, x in [1, 5]. *)

val with_domain : t -> l:float -> big_l:float -> t
(** Same coefficients on a different distance interval. *)

val pp : Format.formatter -> t -> unit
