open Numerics

type construction = [ `Cubic_spline | `Pchip ]

(* The cubic spline can undershoot below zero between knots when the
   observed densities drop steeply (densities are non-negative but a C2
   interpolant need not be): it is floored at zero, with zero slope and
   curvature reported in the floored region.  PCHIP never undershoots
   by construction. *)
type t =
  | Spline of Spline.t
  | Pchip of { knots : (float * float) array; h : Hermite.t }

let validate ~xs ~densities =
  let nx = Array.length xs and nd = Array.length densities in
  if nx <> nd then
    invalid_arg
      (Printf.sprintf
         "Initial.of_observations: %d distances but %d densities" nx nd);
  if nx < 2 then
    invalid_arg "Initial.of_observations: need at least two observation points";
  for i = 0 to nx - 2 do
    (* the negated comparison also rejects NaN coordinates *)
    if not (xs.(i) < xs.(i + 1)) then
      invalid_arg
        (Printf.sprintf
           "Initial.of_observations: xs must be strictly increasing \
            (xs.(%d) = %g, xs.(%d) = %g)"
           i xs.(i) (i + 1)
           xs.(i + 1))
  done;
  if Array.exists (fun v -> v < 0.) densities then
    invalid_arg "Initial.of_observations: densities must be non-negative";
  if Array.for_all (fun v -> v = 0.) densities then
    invalid_arg "Initial.of_observations: phi must not be identically zero"

let of_observations_with ~construction ~xs ~densities =
  validate ~xs ~densities;
  match construction with
  | `Cubic_spline -> Spline (Spline.flat_ends ~xs ~ys:densities)
  | `Pchip ->
    Pchip
      {
        knots = Array.map2 (fun x y -> (x, y)) xs densities;
        h = Hermite.pchip ~clamp_ends:true ~xs ~ys:densities;
      }

let of_observations ~xs ~densities =
  of_observations_with ~construction:`Cubic_spline ~xs ~densities

let construction = function Spline _ -> `Cubic_spline | Pchip _ -> `Pchip

let eval t x =
  match t with
  | Spline s -> Float.max 0. (Spline.eval s x)
  | Pchip { h; _ } -> Float.max 0. (Hermite.eval h x)

let deriv t x =
  match t with
  | Spline s -> if Spline.eval s x < 0. then 0. else Spline.deriv s x
  | Pchip { h; _ } -> if Hermite.eval h x < 0. then 0. else Hermite.deriv h x

let second_deriv t x =
  match t with
  | Spline s -> if Spline.eval s x < 0. then 0. else Spline.second_deriv s x
  | Pchip { h; _ } ->
    if Hermite.eval h x < 0. then 0. else Hermite.second_deriv h x

let to_function t x = eval t x

let knots = function
  | Spline s -> Spline.knots s
  | Pchip { knots; _ } -> Array.copy knots

type report = {
  end_slopes_zero : bool;
  non_negative : bool;
  lower_solution : bool;
  min_inequality_slack : float;
}

let check ?(samples = 512) phi ~params =
  let { Params.d; k; r; l; big_l } = params in
  let r1 = Growth.eval r 1. in
  let xs = Vec.linspace l big_l samples in
  let slack = ref infinity and non_negative = ref true in
  Array.iter
    (fun x ->
      let v = eval phi x in
      if v < 0. then non_negative := false;
      let lhs = (d *. second_deriv phi x) +. (r1 *. v *. (1. -. (v /. k))) in
      if lhs < !slack then slack := lhs)
    xs;
  let tol = 1e-7 in
  {
    end_slopes_zero =
      Float.abs (deriv phi l) < tol && Float.abs (deriv phi big_l) < tol;
    non_negative = !non_negative;
    lower_solution = !slack >= -.tol;
    min_inequality_slack = !slack;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "end slopes zero: %b; non-negative: %b; lower solution: %b (min slack %.4g)"
    r.end_slopes_zero r.non_negative r.lower_solution r.min_inequality_slack
