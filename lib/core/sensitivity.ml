type objective = Params.t -> float

let accuracy_objective ~phi ~obs ~times params =
  match Model.solve params ~phi ~times with
  | sol ->
    let table =
      Accuracy.table
        ~predict:(fun ~x ~t -> Model.predict sol ~x:(float_of_int x) ~t)
        ~actual:(fun ~x ~t -> Socialnet.Density.at obs ~distance:x ~time:t)
        ~distances:obs.Socialnet.Density.distances ~times
    in
    table.Accuracy.overall_average
  | exception _ -> nan

type axis = D | K | R_a | R_b | R_c

let axis_name = function
  | D -> "d"
  | K -> "K"
  | R_a -> "r.a"
  | R_b -> "r.b"
  | R_c -> "r.c"

let perturb (p : Params.t) axis factor =
  match (axis, p.Params.r) with
  | D, _ -> { p with Params.d = p.Params.d *. factor }
  | K, _ -> { p with Params.k = p.Params.k *. factor }
  | R_a, Growth.Exp_decay { a; b; c } ->
    { p with Params.r = Growth.Exp_decay { a = a *. factor; b; c } }
  | R_b, Growth.Exp_decay { a; b; c } ->
    { p with Params.r = Growth.Exp_decay { a; b = b *. factor; c } }
  | R_c, Growth.Exp_decay { a; b; c } ->
    { p with Params.r = Growth.Exp_decay { a; b; c = c *. factor } }
  | (R_a | R_b | R_c), Growth.Constant _ ->
    invalid_arg "Sensitivity.perturb: growth-rate axis needs Exp_decay"

type row = { axis : axis; factor : float; value : float; delta : float }

let all_axes (p : Params.t) =
  match p.Params.r with
  | Growth.Exp_decay _ -> [ D; K; R_a; R_b; R_c ]
  | Growth.Constant _ -> [ D; K ]

let m_cells = Obs.Metrics.counter "sensitivity.cells"

let one_at_a_time ?(pool = Parallel.Pool.sequential)
    ?(factors = [| 0.5; 0.8; 1.25; 2.0 |]) f p =
 Obs.Span.with_span "sensitivity.one_at_a_time" @@ fun () ->
  let reference = f p in
  (* Cells in the same (axis-major) order the sequential sweep used;
     each evaluation is independent, so the rows come back identical
     for any pool size. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun axis ->
           Array.to_list (Array.map (fun factor -> (axis, factor)) factors))
         (all_axes p))
  in
  let values =
    Parallel.Pool.parallel_map pool
      (fun (axis, factor) ->
        Obs.Metrics.incr m_cells;
        f (perturb p axis factor))
      cells
  in
  Array.mapi
    (fun i (axis, factor) ->
      { axis; factor; value = values.(i); delta = values.(i) -. reference })
    cells

let axis_value (p : Params.t) = function
  | D -> p.Params.d
  | K -> p.Params.k
  | R_a -> (
    match p.Params.r with
    | Growth.Exp_decay { a; _ } -> a
    | Growth.Constant _ -> invalid_arg "Sensitivity: Exp_decay required")
  | R_b -> (
    match p.Params.r with
    | Growth.Exp_decay { b; _ } -> b
    | Growth.Constant _ -> invalid_arg "Sensitivity: Exp_decay required")
  | R_c -> (
    match p.Params.r with
    | Growth.Exp_decay { c; _ } -> c
    | Growth.Constant _ -> invalid_arg "Sensitivity: Exp_decay required")

let elasticity ?(eps = 0.05) f p axis =
  let base = f p in
  let x = axis_value p axis in
  if base = 0. || x = 0. then nan
  else begin
    let up = f (perturb p axis (1. +. eps)) in
    let down = f (perturb p axis (1. -. eps)) in
    (up -. down) /. (2. *. eps) /. base
  end

let pp_rows ~reference ppf rows =
  Format.fprintf ppf "@[<v>reference objective: %.4f@," reference;
  Array.iter
    (fun r ->
      Format.fprintf ppf "%-4s x %-5g -> %.4f (%+.4f)@," (axis_name r.axis)
        r.factor r.value r.delta)
    rows;
  Format.fprintf ppf "@]"
