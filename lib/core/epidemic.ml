open Numerics

type params = {
  beta_local : float;
  beta_cross : float;
  mixing_decay : float;
}

let validate p =
  if p.beta_local < 0. || p.beta_cross < 0. then
    invalid_arg "Epidemic.validate: transmission rates must be non-negative";
  if p.mixing_decay <= 0. || p.mixing_decay > 1. then
    invalid_arg "Epidemic.validate: mixing_decay must be in (0, 1]"

(* Right-hand side over infected fractions (0..1). *)
let rhs p : Ode.rhs =
 fun ~t:_ ~y ->
  let m = Vec.dim y in
  Array.init m (fun x ->
      let force = ref (p.beta_local *. y.(x)) in
      for o = 0 to m - 1 do
        if o <> x then begin
          let w = p.mixing_decay ** float_of_int (abs (x - o)) in
          force := !force +. (p.beta_cross *. w *. y.(o))
        end
      done;
      !force *. (1. -. y.(x)))

let simulate p ~i0 ~times =
  validate p;
  if Array.exists (fun t -> t < 1.) times then
    invalid_arg "Epidemic.simulate: times start at t = 1";
  let y0 = Array.map (fun v -> Float.max 0. (Float.min 1. (v /. 100.))) i0 in
  let snapshots = Ode.integrate (rhs p) ~y0 ~t0:1. ~times in
  let m = Array.length i0 in
  Array.init m (fun ix ->
      Array.map (fun (_, y) -> 100. *. y.(ix)) snapshots)

type fit_result = { params : params; training_error : float }

let error_against (obs : Socialnet.Density.t) ~fit_times p =
  let i0 = Array.map (fun row -> row.(0)) obs.Socialnet.Density.density in
  match simulate p ~i0 ~times:fit_times with
  | result ->
    let err = ref 0. and count = ref 0 in
    Array.iteri
      (fun ix _ ->
        Array.iteri
          (fun it t ->
            let actual =
              Socialnet.Density.at obs
                ~distance:obs.Socialnet.Density.distances.(ix) ~time:t
            in
            if actual > 0. then begin
              err := !err +. (Float.abs (result.(ix).(it) -. actual) /. actual);
              incr count
            end)
          fit_times)
      obs.Socialnet.Density.distances;
    if !count = 0 then infinity else !err /. float_of_int !count
  | exception _ -> infinity

let fit ?(fit_times = [| 2.; 3.; 4. |]) rng (obs : Socialnet.Density.t) =
  if Float.abs (obs.Socialnet.Density.times.(0) -. 1.) > 1e-9 then
    invalid_arg "Epidemic.fit: observations must start at t = 1";
  let clamp lo hi v = Float.max lo (Float.min hi v) in
  let of_vector v =
    {
      beta_local = clamp 0. 10. v.(0);
      beta_cross = clamp 0. 10. v.(1);
      mixing_decay = clamp 0.05 1. v.(2);
    }
  in
  let objective v = error_against obs ~fit_times (of_vector v) in
  let best =
    Optimize.multi_start_nelder_mead ~rng ~starts:6 ~tol:1e-8 ~max_iter:400
      objective
      ~lo:[| 0.; 0.; 0.05 |]
      ~hi:[| 3.; 1.; 1. |]
  in
  let params = of_vector best.Optimize.x in
  { params; training_error = error_against obs ~fit_times params }

let predictor p ~(obs : Socialnet.Density.t) =
  let distances = obs.Socialnet.Density.distances in
  let i0 = Array.map (fun row -> row.(0)) obs.Socialnet.Density.density in
  (* Hourly snapshots up to a generous horizon, interpolated on query. *)
  let horizon = 72 in
  let times = Array.init horizon (fun i -> 1. +. float_of_int i) in
  let table = simulate p ~i0 ~times in
  let index_of x =
    let found = ref (-1) in
    Array.iteri (fun i d -> if d = x then found := i) distances;
    if !found < 0 then invalid_arg "Epidemic.predictor: unknown distance"
    else !found
  in
  fun ~x ~t ->
    let ix = index_of x in
    Interp.linear ~xs:times ~ys:table.(ix) t
