type t = {
  d : float;
  k : float;
  r : Growth.t;
  l : float;
  big_l : float;
}

let make ~d ~k ~r ~l ~big_l =
  if d < 0. then invalid_arg "Params.make: d must be non-negative";
  if k <= 0. then invalid_arg "Params.make: K must be positive";
  if l >= big_l then invalid_arg "Params.make: need l < L";
  { d; k; r; l; big_l }

let paper_hops =
  make ~d:0.01 ~k:25. ~r:Growth.paper_hops ~l:1. ~big_l:6.

let paper_interest =
  make ~d:0.05 ~k:60. ~r:Growth.paper_interest ~l:1. ~big_l:5.

let with_domain t ~l ~big_l = make ~d:t.d ~k:t.k ~r:t.r ~l ~big_l

let pp ppf t =
  Format.fprintf ppf "@[d = %g, K = %g, %a, x in [%g, %g]@]" t.d t.k Growth.pp
    t.r t.l t.big_l
