(** A common fit/predict interface over every diffusion model in the
    repo, behind a name-keyed registry.

    The paper's headline claim — the diffusive logistic PDE beats
    simpler growth models on Digg cascades — needs a harness that fits
    {e every} model on the {e same} observations and queries them
    through the {e same} prediction function.  This module is that
    harness's vocabulary: a {!t} knows how to calibrate itself from a
    {!spec} (observations + calibration window + rng seed + worker
    pool) and returns a {!fitted} carrying the prediction closure and
    its provenance (named parameters, training error, solver-evaluation
    count).

    Built-in models are registered at module-initialisation time, so
    any program that links this module sees the full zoo (the names are
    listed in [docs/MODELS.md]):

    - ["dl"] — the paper's diffusive logistic PDE ({!Fit}/{!Model});
    - ["dl-linear"] — the authors' follow-up linear diffusive model
      ({!Linear_model}, arXiv:1310.0505);
    - ["logistic"] — per-distance logistic, i.e. DL with d = 0
      ({!Baselines.logistic_per_distance});
    - ["gompertz"] — per-distance Gompertz sigmoid
      ({!Baselines.gompertz_per_distance});
    - ["linear-trend"] — per-distance OLS line
      ({!Baselines.linear_trend});
    - ["persistence"] — density frozen at the t = 1 snapshot
      ({!Baselines.persistence});
    - ["epidemic"] — networked SI metapopulation model ({!Epidemic});
    - ["network"] — node-level DL on the social graph
      ({!Network_model}; requires {!graph_ctx}). *)

type graph_ctx = {
  laplacian : Numerics.Sparse.t;  (** graph Laplacian of the follower graph *)
  assignment : int array;         (** per-user distance labels *)
  i0 : Numerics.Vec.t;            (** node field at t = 1, percent *)
}
(** Graph-level context needed by the ["network"] model (the 1-D
    observation layout of {!Socialnet.Density} is not enough to run a
    PDE on the graph itself). *)

type spec = {
  obs : Socialnet.Density.t;  (** observations; t = 1 snapshot required *)
  fit_times : float array;    (** calibration hours (beyond t = 1) *)
  seed : int;                 (** rng seed for stochastic fitters *)
  pool : Parallel.Pool.t;     (** distributes multi-start restarts *)
  graph : graph_ctx option;   (** only the ["network"] model needs it *)
}

val spec :
  ?fit_times:float array -> ?seed:int -> ?pool:Parallel.Pool.t ->
  ?graph:graph_ctx -> Socialnet.Density.t -> spec
(** Spec with defaults: [fit_times = [2; 3; 4]], [seed = 42],
    [pool = Parallel.Pool.sequential], no graph context. *)

type fitted = {
  model : string;  (** registry name of the model that produced this *)
  predict : x:float -> t:float -> float;
      (** predicted density (percent) at distance [x], hour [t >= 1] *)
  params : (string * float) list;
      (** named scalar parameters, in a stable documented order —
          empty for non-parametric models *)
  training_error : float;
      (** mean relative error over the calibration cells ([nan] when
          the model defines none) *)
  evaluations : int;
      (** objective/solver evaluations spent fitting (0 if untracked) *)
}

type t = {
  name : string;         (** registry key, e.g. ["dl"] *)
  description : string;  (** one-line human description *)
  fit : spec -> fitted;
      (** calibrate on [spec.obs]; deterministic given the spec
          (including pool size — see {!Parallel.Pool}).
          @raise Invalid_argument on specs the model cannot accept
          (e.g. ["network"] without [graph]) *)
}

val register : t -> unit
(** Add a model to the process-wide registry.
    @raise Invalid_argument on a duplicate name
    ([Predictor.register: …]). *)

val find : string -> t option
val names : unit -> string list
(** Registered names, sorted. *)

val all : unit -> t list
(** Registered models in registration order (built-ins first). *)

val fit : string -> spec -> fitted
(** [fit name spec] looks up and runs the named model.
    @raise Invalid_argument if [name] is not registered; the message
    lists the registered names. *)
