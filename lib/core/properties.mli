(** Numerical verification of the DL model's two theorems (paper
    Section II.C).

    - {b Unique Property}: the solution satisfies [0 <= I(x,t) <= K].
    - {b Strictly Increasing Property}: if phi is a lower
      time-independent solution, I is strictly increasing in t.

    These are checked on computed solutions; they double as sanity
    checks that the discretisation preserves the continuous theory. *)

type verdict = {
  holds : bool;
  worst_violation : float;  (** 0. when [holds] *)
  witness : (float * float) option;
      (** an (x, t) where the worst violation occurs *)
}

val bounds : Model.solution -> verdict
(** Checks [0 <= I <= K] at every recorded grid point. *)

val monotone_in_time : ?strict:bool -> Model.solution -> verdict
(** Checks [I(x, t2) >= I(x, t1)] for consecutive recorded snapshots
    ([> ] when [strict], with a small tolerance). *)

val is_lower_solution : Initial.t -> params:Params.t -> bool
(** Whether phi satisfies the lower-solution inequality (Eq. 5/6) —
    the hypothesis of the strictly-increasing theorem. *)

val pp_verdict : Format.formatter -> verdict -> unit
