open Numerics

type entry = {
  e_model : string;
  e_ok : bool;
  e_error : string option;
  e_mean_rel_err : float;
  e_training_error : float;
  e_per_story : float array;
  e_fit_ms : float;
  e_predict_ms : float;
  e_evaluations : int;
}

type leaderboard = {
  lb_models : string array;
  lb_stories : string array;
  lb_fit_times : float array;
  lb_seed : int;
  lb_jobs : int;
  lb_entries : entry array;
}

let default_models =
  [ "dl"; "dl-linear"; "logistic"; "gompertz"; "linear-trend";
    "persistence"; "epidemic" ]

(* Per-item seed: deterministic in (tournament seed, model name, story
   index) and independent of the pool size or item order. *)
let item_seed ~seed ~model ~story_ix =
  let h = ref ((seed * 1000003) + story_ix) in
  String.iter
    (fun c -> h := ((!h * 31) + Char.code c) land 0x3FFFFFFF)
    model;
  !h

type item_result = {
  ir_ok : bool;
  ir_error : string option;
  ir_rel_err : float;       (* held-out; nan when no cells or failed *)
  ir_training : float;
  ir_evals : int;
  ir_fit_ns : int;
  ir_predict_ns : int;
}

let eval_times_of ~(obs : Socialnet.Density.t) ~fit_times =
  let cutoff = Array.fold_left Float.max 1. fit_times in
  Array.of_list
    (List.filter
       (fun t -> t > cutoff +. 1e-9)
       (Array.to_list obs.Socialnet.Density.times))

let held_out_error ~(obs : Socialnet.Density.t) ~eval_times predict =
  let err = ref 0. and count = ref 0 in
  Array.iter
    (fun x ->
      Array.iter
        (fun t ->
          let actual = Socialnet.Density.at obs ~distance:x ~time:t in
          if actual > 0. then begin
            let predicted = predict ~x:(float_of_int x) ~t in
            err := !err +. (Float.abs (predicted -. actual) /. actual);
            incr count
          end)
        eval_times)
    obs.Socialnet.Density.distances;
  if !count = 0 then Float.nan else !err /. float_of_int !count

let run_item ~seed ~fit_times ~model ~story_ix ~(obs : Socialnet.Density.t) =
  let spec =
    Predictor.spec ~fit_times
      ~seed:(item_seed ~seed ~model ~story_ix)
      ~pool:Parallel.Pool.sequential obs
  in
  let t0 = Obs.now_ns () in
  match Predictor.fit model spec with
  | fitted ->
    let t1 = Obs.now_ns () in
    let eval_times = eval_times_of ~obs ~fit_times in
    let rel = held_out_error ~obs ~eval_times fitted.Predictor.predict in
    let t2 = Obs.now_ns () in
    {
      ir_ok = true;
      ir_error = None;
      ir_rel_err = rel;
      ir_training = fitted.Predictor.training_error;
      ir_evals = fitted.Predictor.evaluations;
      ir_fit_ns = t1 - t0;
      ir_predict_ns = t2 - t1;
    }
  | exception e ->
    let t1 = Obs.now_ns () in
    Obs.Log.warn "tournament.item_failed" ~fields:(fun () ->
        [
          Obs.Log.str "model" model;
          Obs.Log.int "story" story_ix;
          Obs.Log.str "exn" (Printexc.to_string e);
        ]);
    {
      ir_ok = false;
      ir_error = Some (Printexc.to_string e);
      ir_rel_err = Float.nan;
      ir_training = Float.nan;
      ir_evals = 0;
      ir_fit_ns = t1 - t0;
      ir_predict_ns = 0;
    }

let mean_finite values =
  let sum = ref 0. and count = ref 0 in
  Array.iter
    (fun v ->
      if Float.is_finite v then begin
        sum := !sum +. v;
        incr count
      end)
    values;
  if !count = 0 then Float.nan else !sum /. float_of_int !count

let m_items = Obs.Metrics.counter "tournament.items"
let m_runs = Obs.Metrics.counter "tournament.runs"

let run ?(pool = Parallel.Pool.sequential) ?(fit_times = [| 2.; 3. |])
    ?(seed = 42) ?(models = default_models) stories =
 Obs.Span.with_span "tournament.run" @@ fun () ->
  if stories = [] then invalid_arg "Tournament.run: empty story list";
  List.iter
    (fun m ->
      if Predictor.find m = None then
        invalid_arg
          (Printf.sprintf "Tournament.run: unknown model %S (registered: %s)"
             m
             (String.concat ", " (Predictor.names ()))))
    models;
  let models_a = Array.of_list models in
  let stories_a = Array.of_list stories in
  let n_models = Array.length models_a in
  let n_stories = Array.length stories_a in
  (* model-major flattening: item i = (model i / n_stories, story i mod
     n_stories); static, so the partitioning never depends on timing *)
  let items = Array.init (n_models * n_stories) Fun.id in
  let results =
    Parallel.Pool.parallel_map pool
      (fun i ->
        let model = models_a.(i / n_stories) in
        let story_ix = i mod n_stories in
        let _, obs = stories_a.(story_ix) in
        Obs.Metrics.incr m_items;
        Obs.Span.with_span "tournament.item"
          ~attrs:(fun () ->
            [ Obs.Log.str "model" model; Obs.Log.int "story" story_ix ])
          (fun () -> run_item ~seed ~fit_times ~model ~story_ix ~obs))
      items
  in
  let entries =
    Array.mapi
      (fun mi model ->
        let of_story si = results.((mi * n_stories) + si) in
        let per_story = Array.init n_stories (fun si -> (of_story si).ir_rel_err) in
        let any_ok = ref false and first_error = ref None in
        let fit_ns = ref 0 and predict_ns = ref 0 and evals = ref 0 in
        let trainings = Array.make n_stories Float.nan in
        for si = 0 to n_stories - 1 do
          let r = of_story si in
          if r.ir_ok then any_ok := true;
          (if !first_error = None then
             match r.ir_error with Some _ as e -> first_error := e | None -> ());
          fit_ns := !fit_ns + r.ir_fit_ns;
          predict_ns := !predict_ns + r.ir_predict_ns;
          evals := !evals + r.ir_evals;
          trainings.(si) <- r.ir_training
        done;
        let mean = mean_finite per_story in
        (* labelled metric handles register on first use per model *)
        Obs.Metrics.set
          (Obs.Metrics.gauge ~label:model "tournament.mean_rel_err")
          mean;
        Obs.Metrics.incr ~by:n_stories
          (Obs.Metrics.counter ~label:model "tournament.fits");
        {
          e_model = model;
          e_ok = !any_ok;
          e_error = !first_error;
          e_mean_rel_err = mean;
          e_training_error = mean_finite trainings;
          e_per_story = per_story;
          e_fit_ms = float_of_int !fit_ns /. 1e6;
          e_predict_ms = float_of_int !predict_ns /. 1e6;
          e_evaluations = !evals;
        })
      models_a
  in
  (* rank: successful models by ascending held-out error (nan last),
     failed models after; ties keep input order (stable sort) *)
  let rank e =
    if not e.e_ok then 2 else if Float.is_finite e.e_mean_rel_err then 0 else 1
  in
  let sorted = Array.copy entries in
  let cmp a b =
    match compare (rank a) (rank b) with
    | 0 ->
      if rank a = 0 then compare a.e_mean_rel_err b.e_mean_rel_err else 0
    | c -> c
  in
  Array.stable_sort cmp sorted;
  Obs.Metrics.incr m_runs;
  Obs.Log.info "tournament.done" ~fields:(fun () ->
      [
        Obs.Log.int "models" n_models;
        Obs.Log.int "stories" n_stories;
        Obs.Log.str "best"
          (if Array.length sorted > 0 then sorted.(0).e_model else "");
      ]);
  {
    lb_models = models_a;
    lb_stories = Array.map fst stories_a;
    lb_fit_times = fit_times;
    lb_seed = seed;
    lb_jobs = Parallel.Pool.jobs pool;
    lb_entries = sorted;
  }

(* --- synthetic story set --- *)

let synthetic_stories ?(n = 4) ?(seed = 7) () =
  let rng = Rng.create seed in
  List.init n (fun i ->
      let d = Rng.uniform rng 0.01 0.1 in
      let k = Rng.uniform rng 20. 60. in
      let a = Rng.uniform rng 0.5 1.5 in
      let b = Rng.uniform rng 0.5 1.5 in
      let c = Rng.uniform rng 0.05 0.3 in
      let base = Rng.uniform rng 1. 5. in
      let decay = Rng.uniform rng 0.3 0.8 in
      let params =
        Params.make ~d ~k ~r:(Growth.Exp_decay { a; b; c }) ~l:1. ~big_l:5.
      in
      let xs = Array.init 5 (fun j -> float_of_int (j + 1)) in
      let phi =
        Initial.of_observations ~xs
          ~densities:
            (Array.map (fun x -> base *. exp (-.decay *. (x -. 1.))) xs)
      in
      let times = Array.init 6 (fun j -> float_of_int (j + 1)) in
      let sol = Model.solve ~nx:41 ~dt:0.05 params ~phi ~times in
      let predict = Model.predictor sol in
      let density =
        Array.map
          (fun x ->
            Array.map
              (fun t ->
                let v = predict ~x ~t in
                let noisy = v *. (1. +. (0.05 *. Rng.normal rng ())) in
                Float.max 1e-3 noisy)
              times)
          xs
      in
      ( Printf.sprintf "synth-%d" (i + 1),
        {
          Socialnet.Density.distances = Array.init 5 (fun j -> j + 1);
          times;
          density;
          population = Array.make 5 1000;
        } ))

(* --- JSON (hand-rolled: Tiny_json lives above this library) --- *)

let schema_version = "dlosn-tournament/1"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let json_string lb =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"schema\": \"%s\",\n" schema_version;
  out "  \"seed\": %d,\n" lb.lb_seed;
  out "  \"jobs\": %d,\n" lb.lb_jobs;
  out "  \"fit_times\": [%s],\n"
    (String.concat ", "
       (Array.to_list (Array.map json_float lb.lb_fit_times)));
  out "  \"stories\": [%s],\n"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun s -> Printf.sprintf "\"%s\"" (json_escape s))
             lb.lb_stories)));
  out "  \"leaderboard\": [\n";
  Array.iteri
    (fun i e ->
      out "    {\"model\": \"%s\", \"ok\": %b, \"error\": %s, "
        (json_escape e.e_model) e.e_ok
        (match e.e_error with
        | None -> "null"
        | Some m -> Printf.sprintf "\"%s\"" (json_escape m));
      out "\"mean_rel_err\": %s, \"training_error\": %s, "
        (json_float e.e_mean_rel_err)
        (json_float e.e_training_error);
      out "\"per_story\": [%s], "
        (String.concat ", "
           (Array.to_list (Array.map json_float e.e_per_story)));
      out "\"fit_ms\": %s, \"predict_ms\": %s, \"evaluations\": %d}%s\n"
        (json_float e.e_fit_ms) (json_float e.e_predict_ms) e.e_evaluations
        (if i < Array.length lb.lb_entries - 1 then "," else "");
      ())
    lb.lb_entries;
  out "  ]\n";
  out "}\n";
  Buffer.contents buf

let pp ppf lb =
  Format.fprintf ppf "%-4s %-14s %12s %12s %10s %8s@." "rank" "model"
    "holdout_err" "train_err" "fit_ms" "evals";
  Array.iteri
    (fun i e ->
      if e.e_ok then
        Format.fprintf ppf "%-4d %-14s %12.4f %12.4f %10.1f %8d@." (i + 1)
          e.e_model e.e_mean_rel_err e.e_training_error e.e_fit_ms
          e.e_evaluations
      else
        Format.fprintf ppf "%-4d %-14s %12s %12s %10.1f %8s  (%s)@." (i + 1)
          e.e_model "-" "-" e.e_fit_ms "-"
          (match e.e_error with Some m -> m | None -> "failed"))
    lb.lb_entries
