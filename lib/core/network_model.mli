(** Node-level DL model on the social graph — the "don't collapse to
    1-D" ablation.

    The paper's key abstraction flattens the network onto a 1-D
    distance axis.  This module solves the same reaction--diffusion
    dynamics {e directly on the graph}:

    {v dI_v/dt = -d (L I)_v + r(t) I_v (1 - I_v / K) v}

    where [L] is the (combinatorial) graph Laplacian, [I_v] is the
    probability (in percent) that user [v] is influenced, seeded with
    the users actually influenced in the first hour.  Aggregating the
    node field by distance group makes it directly comparable with the
    1-D model and the observations.

    Time stepping is IMEX backward Euler: the diffusion step solves the
    SPD system [(I + dt d L) u' = u + dt f(u)] by conjugate
    gradient. *)

type params = {
  d : float;       (** diffusion rate along social ties *)
  k : float;       (** per-node carrying capacity, percent (usually 100) *)
  r : Growth.t;
}

val indicator_initial :
  Socialnet.Types.story -> n_users:int -> at:float -> Numerics.Vec.t
(** 100 for users who voted by time [at], 0 otherwise. *)

val solve :
  ?dt:float ->
  laplacian:Numerics.Sparse.t ->
  params -> i0:Numerics.Vec.t -> times:float array ->
  (float * Numerics.Vec.t) array
(** Integrates from t = 1 (default [dt = 0.1] h) and returns the node
    field at each requested time (increasing, >= 1). *)

val group_average :
  assignment:int array -> max_distance:int -> Numerics.Vec.t -> float array
(** Mean node value per distance group 1..max_distance (0 for empty
    groups) — the quantity comparable to {!Socialnet.Density}. *)

type fit_result = {
  params : params;
  training_error : float;
}

val fit_grid :
  ?dt:float ->
  laplacian:Numerics.Sparse.t ->
  assignment:int array ->
  obs:Socialnet.Density.t ->
  i0:Numerics.Vec.t ->
  d_grid:float array -> r_grid:float array -> k:float -> unit ->
  fit_result
(** Coarse grid calibration of (d, constant r) against the observed
    group densities over the observation's recorded times after t = 1;
    each candidate costs a full network solve, so keep the grids
    small. *)
