(** Networked SI epidemic model over distance groups — the related-work
    comparator.

    The paper positions the DL model against epidemic-style models of
    diffusion (SIS in Saito et al., SI-like cascade models).  This
    module implements the natural member of that family on the same
    observation layout the DL model uses: each distance group is a
    metapopulation compartment, and the infected fraction follows

    {v dI_x/dt = (beta_local I_x + beta_cross sum_{y<>x} w(x,y) I_y) (1 - I_x) v}

    with distance-decaying mixing [w(x, y) = mixing_decay^|x-y|].
    Unlike DL it saturates at 100 % (no carrying capacity) and couples
    groups through mass action rather than a diffusion flux.

    Densities are in percent, like {!Socialnet.Density}. *)

type params = {
  beta_local : float;   (** within-group transmission rate, 1/h *)
  beta_cross : float;   (** cross-group transmission scale, 1/h *)
  mixing_decay : float; (** per-hop attenuation of cross-group mixing, in (0, 1] *)
}

val validate : params -> unit
(** @raise Invalid_argument on negative rates or decay outside (0, 1]. *)

val simulate :
  params -> i0:float array -> times:float array -> float array array
(** [simulate p ~i0 ~times] integrates from t = 1 with initial percent
    densities [i0] (one per group) and returns [result.(ix).(it)].
    Times must be increasing and >= 1. *)

type fit_result = {
  params : params;
  training_error : float;  (** mean relative error over the fit cells *)
}

val fit :
  ?fit_times:float array -> Numerics.Rng.t -> Socialnet.Density.t -> fit_result
(** Calibrates the three rates against an observation (t = 1 snapshot
    required, default fit window [2; 3; 4]) by multi-start
    Nelder--Mead. *)

val predictor :
  params -> obs:Socialnet.Density.t -> Baselines.predictor
(** Prediction function on the observation's distance labels (solves
    once up to the largest requested time, caching snapshots hourly and
    interpolating). *)
