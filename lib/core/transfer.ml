type matrix = {
  story_ids : int array;
  accuracy : float array array;
}

let cross_apply ?(metric = Pipeline.hops) ?(fit_times = [| 2.; 3.; 4.; 5.; 6. |])
    rng ds ~stories =
  let n = Array.length stories in
  (* fit once per story *)
  let fitted =
    Array.map
      (fun story ->
        match
          Pipeline.run
            ~params:
              (Pipeline.Auto
                 {
                   rng = Numerics.Rng.split rng;
                   config = { Fit.default_config with Fit.fit_times };
                 })
            ds ~story ~metric
        with
        | exp -> Some exp.Pipeline.params
        | exception _ -> None)
      stories
  in
  let accuracy =
    Array.init n (fun i ->
        Array.init n (fun j ->
            match fitted.(i) with
            | None -> nan
            | Some params -> (
              match
                Pipeline.run ~params:(Pipeline.Given params) ds
                  ~story:stories.(j) ~metric
              with
              | exp -> exp.Pipeline.table.Accuracy.overall_average
              | exception _ -> nan)))
  in
  {
    story_ids = Array.map (fun (s : Socialnet.Types.story) -> s.Socialnet.Types.id) stories;
    accuracy;
  }

let diagonal_advantage m =
  let n = Array.length m.story_ids in
  let deltas = ref [] in
  for j = 0 to n - 1 do
    let own = m.accuracy.(j).(j) in
    if not (Float.is_nan own) then begin
      let others = ref [] in
      for i = 0 to n - 1 do
        if i <> j && not (Float.is_nan m.accuracy.(i).(j)) then
          others := m.accuracy.(i).(j) :: !others
      done;
      match !others with
      | [] -> ()
      | l ->
        let mean = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
        deltas := (own -. mean) :: !deltas
    end
  done;
  match !deltas with
  | [] -> nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let pp ppf m =
  let n = Array.length m.story_ids in
  Format.fprintf ppf "@[<v>params\\story ";
  Array.iter (fun id -> Format.fprintf ppf "%8d" id) m.story_ids;
  for i = 0 to n - 1 do
    Format.fprintf ppf "@,#%-11d " m.story_ids.(i);
    for j = 0 to n - 1 do
      if Float.is_nan m.accuracy.(i).(j) then Format.fprintf ppf "%8s" "-"
      else Format.fprintf ppf "%7.1f%%" (100. *. m.accuracy.(i).(j))
    done
  done;
  Format.fprintf ppf "@]"
