(** Forecast-horizon analysis: how far ahead can the DL model predict?

    The paper evaluates predictions up to five hours past the initial
    observation.  This module measures accuracy as a function of {e how
    much} early data the model was calibrated on and {e how far ahead}
    it is asked to look — the operating curve a practitioner needs. *)

type point = {
  train_until : float;   (** calibration used observations in [2, train_until] *)
  horizon : float;       (** hours past [train_until] *)
  accuracy : float;      (** overall accuracy at [train_until + horizon]; nan if undefined *)
}

val fit_hours : train_until:float -> float array
(** The integer fitting hours implied by a training window:
    [2 .. round train_until].  A fractional window rounds to the
    nearest hour ([9.9] trains through t = 10).
    @raise Invalid_argument if [train_until] rounds below 2 (t = 1 is
    reserved for the initial condition, so no fitting hour remains). *)

val curve :
  ?config:Fit.config ->
  Numerics.Rng.t ->
  Socialnet.Density.t ->
  train_untils:float array ->
  horizons:float array ->
  point array
(** [curve rng obs ~train_untils ~horizons] fits once per training
    window (overriding [config]'s [fit_times] with
    {!fit_hours}[ ~train_until]) and evaluates each horizon against the
    observed densities.  [obs] must start at t = 1 and contain every
    needed hour.  A point whose evaluation fails for an expected reason
    (solver blow-up, domain error, or an evaluation time that was never
    recorded) gets [accuracy = nan] and a warn-level
    ["horizon.point_undefined"] log record; unexpected exceptions
    ([Out_of_memory], [Stack_overflow], ...) propagate.
    @raise Invalid_argument if any training window rounds below 2. *)

val pp : Format.formatter -> point array -> unit
