(** Forecast-horizon analysis: how far ahead can the DL model predict?

    The paper evaluates predictions up to five hours past the initial
    observation.  This module measures accuracy as a function of {e how
    much} early data the model was calibrated on and {e how far ahead}
    it is asked to look — the operating curve a practitioner needs. *)

type point = {
  train_until : float;   (** calibration used observations in [2, train_until] *)
  horizon : float;       (** hours past [train_until] *)
  accuracy : float;      (** overall accuracy at [train_until + horizon]; nan if undefined *)
}

val curve :
  ?config:Fit.config ->
  Numerics.Rng.t ->
  Socialnet.Density.t ->
  train_untils:float array ->
  horizons:float array ->
  point array
(** [curve rng obs ~train_untils ~horizons] fits once per training
    window (overriding [config]'s [fit_times] with the integer hours 2
    .. train_until) and evaluates each horizon against the observed
    densities.  [obs] must start at t = 1 and contain every needed
    hour. *)

val pp : Format.formatter -> point array -> unit
