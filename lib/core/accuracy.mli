(** The paper's prediction-accuracy metric and its tables.

    Equation 8 as printed defines
    [|predicted - actual| / actual] — the relative error — but the
    values the paper reports (e.g. 98.27%) are clearly its complement;
    we therefore define

    {v accuracy = 1 - |predicted - actual| / actual v}

    clamped below at 0 so a wildly wrong prediction cannot produce
    negative "accuracy".  Accuracy is undefined when [actual <= 0]
    (densities are non-negative); such cells are skipped in averages
    and reported as [nan]. *)

val accuracy : predicted:float -> actual:float -> float

type table = {
  distances : int array;
  times : float array;          (** prediction times, e.g. 2..6 *)
  cells : float array array;    (** [cells.(ix).(it)], [nan] = undefined *)
  row_average : float array;    (** per-distance mean over defined cells *)
  overall_average : float;      (** mean over all defined cells *)
}

val table :
  predict:(x:int -> t:float -> float) ->
  actual:(x:int -> t:float -> float) ->
  distances:int array -> times:float array -> table
(** Builds the paper's Table I / Table II layout. *)

val pp_table : Format.formatter -> table -> unit
(** Renders rows like the paper: distance, average, then one column per
    prediction time. *)
