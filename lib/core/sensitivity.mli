(** One-at-a-time parameter sensitivity of the DL model.

    Complements {!Fit}: rather than finding the best parameters, this
    quantifies how much the prediction quality depends on each of them
    around a reference point — the robustness question a practitioner
    asks before trusting hand-picked constants like the paper's. *)

type objective = Params.t -> float
(** Anything to minimise/maximise over parameters; the pipeline's
    overall accuracy is the usual choice. *)

val accuracy_objective :
  phi:Initial.t -> obs:Socialnet.Density.t -> times:float array -> objective
(** Overall Table-I-style accuracy of the model against [obs] at
    [times] (to be {e maximised}). *)

type axis = D | K | R_a | R_b | R_c

val axis_name : axis -> string

val perturb : Params.t -> axis -> float -> Params.t
(** Multiplies the chosen coefficient by [factor] (axes [R_*] require
    an [Exp_decay] growth rate;
    @raise Invalid_argument otherwise). *)

type row = {
  axis : axis;
  factor : float;
  value : float;          (** objective after perturbation *)
  delta : float;          (** [value - reference] *)
}

val one_at_a_time :
  ?pool:Parallel.Pool.t ->
  ?factors:float array -> objective -> Params.t -> row array
(** Evaluates the objective with each axis scaled by each factor
    (default factors 0.5, 0.8, 1.25, 2.0), holding the others at the
    reference.  [pool] (default sequential) distributes the
    axis-times-factor evaluations over worker domains; the row order
    and values are identical for any pool size. *)

val elasticity : ?eps:float -> objective -> Params.t -> axis -> float
(** Local elasticity [(dF / F) / (dp / p)] by central differences with
    relative step [eps] (default 0.05); [nan] when the reference value
    is 0. *)

val pp_rows : reference:float -> Format.formatter -> row array -> unit
