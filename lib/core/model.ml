open Numerics

type scheme = Ftcs | Crank_nicolson | Strang

type solution = {
  params : Params.t;
  pde : Pde.solution;
}

let problem_of params ~phi ~diffusion ~growth =
  {
    Pde.xl = params.Params.l;
    xr = params.Params.big_l;
    nx = 101;
    diffusion;
    reaction =
      Pde.Custom
        (fun ~x ~t ~u -> growth ~x ~t *. u *. (1. -. (u /. params.Params.k)));
    initial = Initial.to_function phi;
    t0 = 1.;
  }

let check_times times =
  if Array.exists (fun t -> t < 1.) times then
    invalid_arg "Model.solve: observation times start at t = 1"

(* The DL reaction as the solver's specialised shape: evaluates as
   exactly [r(t) u (1 - u/K)], same bits as the closure [problem_of]
   builds, but unboxed on the panel path. *)
let dl_reaction params =
  Pde.Logistic
    { r = Growth.eval params.Params.r; k = params.Params.k }

let panel_story_of params ~phi =
  {
    Pde.ps_diffusion = (fun _ -> params.Params.d);
    ps_reaction = dl_reaction params;
    ps_initial = Initial.to_function phi;
  }

let panel_scheme_of = function
  | Ftcs -> None
  | Crank_nicolson -> Some (Pde.Panel_imex 0.5)
  | Strang -> Some Pde.Panel_strang

let solve ?(scheme = Strang) ?(nx = 101) ?(dt = 0.01) ?workspace params ~phi
    ~times =
  check_times times;
  let fused =
    match workspace with
    | None -> None
    | Some ws -> (
      match panel_scheme_of scheme with
      | None -> None (* FTCS sub-steps per-story; no lockstep panel *)
      | Some ps -> Some (ws, ps))
  in
  match fused with
  | Some (ws, ps) ->
    (* Width-1 panel through the fused path: bit-identical to the
       scalar solve below, but the workspace's buffers survive across
       calls (one factorization block per fit restart instead of per
       objective evaluation). *)
    let pp =
      {
        Pde.pp_xl = params.Params.l;
        pp_xr = params.Params.big_l;
        pp_nx = nx;
        pp_t0 = 1.;
        pp_stories = [| panel_story_of params ~phi |];
      }
    in
    let sols = Pde.solve_panel ~scheme:ps ~dt ~workspace:ws pp ~times in
    { params; pde = sols.(0) }
  | None ->
    let p =
      {
        Pde.xl = params.Params.l;
        xr = params.Params.big_l;
        nx;
        diffusion = (fun _ -> params.Params.d);
        reaction = dl_reaction params;
        initial = Initial.to_function phi;
        t0 = 1.;
      }
    in
    let pde_scheme =
      match scheme with
      | Ftcs -> Pde.Ftcs
      | Crank_nicolson -> Pde.Imex 0.5
      | Strang ->
        Pde.Strang
          (Pde.logistic_reaction_step
             ~r:(Growth.eval params.Params.r)
             ~k:params.Params.k)
    in
    { params; pde = Pde.solve ~scheme:pde_scheme ~dt p ~times }

let solve_panel ?(scheme = Strang) ?(nx = 101) ?(dt = 0.01) ?workspace stories
    ~times =
  check_times times;
  if Array.length stories = 0 then [||]
  else begin
    let p0, _ = stories.(0) in
    let l0 = p0.Params.l and bl0 = p0.Params.big_l in
    Array.iter
      (fun (p, _) ->
        if p.Params.l <> l0 || p.Params.big_l <> bl0 then
          invalid_arg "Model.solve_panel: stories must share the domain (l, L)")
      stories;
    match panel_scheme_of scheme with
    | None ->
      (* FTCS: per-story CFL forbids lockstep; fall back story by story. *)
      Array.map (fun (p, phi) -> solve ~scheme ~nx ~dt p ~phi ~times) stories
    | Some ps ->
      let pp =
        {
          Pde.pp_xl = l0;
          pp_xr = bl0;
          pp_nx = nx;
          pp_t0 = 1.;
          pp_stories =
            Array.map (fun (p, phi) -> panel_story_of p ~phi) stories;
        }
      in
      let sols = Pde.solve_panel ~scheme:ps ~dt ?workspace pp ~times in
      Array.mapi (fun i (p, _) -> { params = p; pde = sols.(i) }) stories
  end

let solve_extended ?(scheme = Crank_nicolson) ?(nx = 101) ?(dt = 0.01) params
    ~diffusion ~growth ~phi ~times =
  check_times times;
  let p = { (problem_of params ~phi ~diffusion ~growth) with Pde.nx } in
  let pde_scheme =
    match scheme with
    | Ftcs -> Pde.Ftcs
    | Crank_nicolson | Strang -> Pde.Imex 0.5
  in
  { params; pde = Pde.solve ~scheme:pde_scheme ~dt p ~times }

let predict sol ~x ~t = Pde.eval sol.pde ~x ~t
let predictor sol = Pde.evaluator sol.pde

let predict_profile sol ~t =
  let snap = Pde.snapshot sol.pde ~t in
  Array.mapi (fun i x -> (x, snap.(i))) sol.pde.Pde.xs

let predict_at_distances sol ~distances ~t =
  Array.map (fun x -> predict sol ~x:(float_of_int x) ~t) distances
