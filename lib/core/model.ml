open Numerics

type scheme = Ftcs | Crank_nicolson | Strang

type solution = {
  params : Params.t;
  pde : Pde.solution;
}

let problem_of params ~phi ~diffusion ~growth =
  {
    Pde.xl = params.Params.l;
    xr = params.Params.big_l;
    nx = 101;
    diffusion;
    reaction =
      (fun ~x ~t ~u -> growth ~x ~t *. u *. (1. -. (u /. params.Params.k)));
    initial = Initial.to_function phi;
    t0 = 1.;
  }

let check_times times =
  if Array.exists (fun t -> t < 1.) times then
    invalid_arg "Model.solve: observation times start at t = 1"

let solve ?(scheme = Strang) ?(nx = 101) ?(dt = 0.01) params ~phi ~times =
  check_times times;
  let p =
    {
      (problem_of params ~phi
         ~diffusion:(fun _ -> params.Params.d)
         ~growth:(fun ~x:_ ~t -> Growth.eval params.Params.r t))
      with
      Pde.nx;
    }
  in
  let pde_scheme =
    match scheme with
    | Ftcs -> Pde.Ftcs
    | Crank_nicolson -> Pde.Imex 0.5
    | Strang ->
      Pde.Strang
        (Pde.logistic_reaction_step
           ~r:(Growth.eval params.Params.r)
           ~k:params.Params.k)
  in
  { params; pde = Pde.solve ~scheme:pde_scheme ~dt p ~times }

let solve_extended ?(scheme = Crank_nicolson) ?(nx = 101) ?(dt = 0.01) params
    ~diffusion ~growth ~phi ~times =
  check_times times;
  let p = { (problem_of params ~phi ~diffusion ~growth) with Pde.nx } in
  let pde_scheme =
    match scheme with
    | Ftcs -> Pde.Ftcs
    | Crank_nicolson | Strang -> Pde.Imex 0.5
  in
  { params; pde = Pde.solve ~scheme:pde_scheme ~dt p ~times }

let predict sol ~x ~t = Pde.eval sol.pde ~x ~t
let predictor sol = Pde.evaluator sol.pde

let predict_profile sol ~t =
  let snap = Pde.snapshot sol.pde ~t in
  Array.mapi (fun i x -> (x, snap.(i))) sol.pde.Pde.xs

let predict_at_distances sol ~distances ~t =
  Array.map (fun x -> predict sol ~x:(float_of_int x) ~t) distances
