(** Solving the diffusive logistic model (Equation 4).

    Wraps {!Numerics.Pde} with the DL-specific right-hand side and
    exposes predictions at the (distance, time) points the paper
    reports.  The default scheme is Strang splitting with the exact
    logistic reaction flow, which is both unconditionally stable and
    second-order for this equation. *)

type scheme = Ftcs | Crank_nicolson | Strang

type solution = {
  params : Params.t;
  pde : Numerics.Pde.solution;
}

val solve :
  ?scheme:scheme -> ?nx:int -> ?dt:float ->
  ?workspace:Numerics.Pde.panel_workspace ->
  Params.t -> phi:Initial.t -> times:float array -> solution
(** [solve params ~phi ~times] integrates from t = 1 (the paper's
    initial observation hour) and records a snapshot at each requested
    time (all must be [>= 1]).  Defaults: [Strang], [nx = 101] grid
    points, [dt = 0.01] hours.

    With [?workspace] (and a non-FTCS scheme) the solve runs as a
    width-1 panel through {!Numerics.Pde.solve_panel} — bit-identical
    output, but the solver buffers are reused across calls sharing the
    workspace instead of being reallocated per solve.  Pass one
    workspace per fit restart / pool worker; never share one across
    domains concurrently. *)

val solve_panel :
  ?scheme:scheme -> ?nx:int -> ?dt:float ->
  ?workspace:Numerics.Pde.panel_workspace ->
  (Params.t * Initial.t) array -> times:float array -> solution array
(** Fused multi-story solve: every story (params, initial profile)
    must share the domain [(l, L)] ([Invalid_argument] otherwise); all
    stories advance in lockstep through one batched Thomas sweep per
    step.  Each element of the result is bit-identical to {!solve} on
    that story alone.  FTCS falls back to per-story solves (its CFL
    sub-stepping is per-story). *)

val solve_extended :
  ?scheme:scheme -> ?nx:int -> ?dt:float ->
  Params.t -> diffusion:(float -> float) ->
  growth:(x:float -> t:float -> float) ->
  phi:Initial.t -> times:float array -> solution
(** The paper's future-work generalisation: diffusion [d(x)] varying
    with distance and growth [r(x, t)] varying with both distance and
    time.  Uses Crank--Nicolson IMEX (the exact-logistic split no
    longer applies).  The [params] argument supplies K and the
    domain. *)

val predict : solution -> x:float -> t:float -> float
(** Interpolated I(x, t) from the recorded snapshots.
    @raise Invalid_argument on NaN [x] or [t]. *)

val predictor : solution -> x:float -> t:float -> float
(** {!predict} with the snapshot-table bounds hoisted into the
    closure: build once, query many times without allocating.  The
    fitting objective evaluates it at every observed (distance, time)
    cell per solve. *)

val predict_profile : solution -> t:float -> (float * float) array
(** [(x, I(x, t))] at every grid point, at the recorded time nearest
    to [t]. *)

val predict_at_distances : solution -> distances:int array -> t:float -> float array
(** Predictions at integer distances (the only physically meaningful
    points, as the paper notes). *)
