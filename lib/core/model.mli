(** Solving the diffusive logistic model (Equation 4).

    Wraps {!Numerics.Pde} with the DL-specific right-hand side and
    exposes predictions at the (distance, time) points the paper
    reports.  The default scheme is Strang splitting with the exact
    logistic reaction flow, which is both unconditionally stable and
    second-order for this equation. *)

type scheme = Ftcs | Crank_nicolson | Strang

type solution = {
  params : Params.t;
  pde : Numerics.Pde.solution;
}

val solve :
  ?scheme:scheme -> ?nx:int -> ?dt:float ->
  Params.t -> phi:Initial.t -> times:float array -> solution
(** [solve params ~phi ~times] integrates from t = 1 (the paper's
    initial observation hour) and records a snapshot at each requested
    time (all must be [>= 1]).  Defaults: [Strang], [nx = 101] grid
    points, [dt = 0.01] hours. *)

val solve_extended :
  ?scheme:scheme -> ?nx:int -> ?dt:float ->
  Params.t -> diffusion:(float -> float) ->
  growth:(x:float -> t:float -> float) ->
  phi:Initial.t -> times:float array -> solution
(** The paper's future-work generalisation: diffusion [d(x)] varying
    with distance and growth [r(x, t)] varying with both distance and
    time.  Uses Crank--Nicolson IMEX (the exact-logistic split no
    longer applies).  The [params] argument supplies K and the
    domain. *)

val predict : solution -> x:float -> t:float -> float
(** Interpolated I(x, t) from the recorded snapshots.
    @raise Invalid_argument on NaN [x] or [t]. *)

val predictor : solution -> x:float -> t:float -> float
(** {!predict} with the snapshot-table bounds hoisted into the
    closure: build once, query many times without allocating.  The
    fitting objective evaluates it at every observed (distance, time)
    cell per solve. *)

val predict_profile : solution -> t:float -> (float * float) array
(** [(x, I(x, t))] at every grid point, at the recorded time nearest
    to [t]. *)

val predict_at_distances : solution -> distances:int array -> t:float -> float array
(** Predictions at integer distances (the only physically meaningful
    points, as the paper notes). *)
