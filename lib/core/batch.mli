(** Multi-story evaluation.

    The paper validates the DL model on representative stories from one
    dataset; this module runs the same pipeline across a whole corpus
    so the prediction quality can be reported as a distribution rather
    than a per-story anecdote (the kind of evaluation a practitioner
    would demand before adopting the model). *)

type mode =
  | Paper_params          (** published constants for the metric *)
  | In_sample of int      (** calibrate on t = 2..6 (seed) — the paper's protocol *)
  | Out_of_sample of int  (** calibrate on t = 2..4 only (seed) *)

type story_result = {
  story_id : int;
  votes : int;
  overall : float;        (** overall accuracy of the Table-I-style table *)
  params : Params.t;
  skipped : string option;
      (** reason when the story could not be evaluated (e.g. too few
          populated distance groups); other fields are dummies then *)
}

type summary = {
  results : story_result array;
  evaluated : int;
  skipped : int;
  mean_overall : float;
  median_overall : float;
  worst : float;
  best : float;
}

val top_stories : Socialnet.Dataset.t -> n:int -> Socialnet.Types.story array
(** The [n] most-voted stories of the corpus, descending; equal vote
    counts are ordered by ascending story id so the selection is
    deterministic across sort implementations. *)

val evaluate :
  ?pool:Parallel.Pool.t -> ?mode:mode -> ?metric:Pipeline.metric ->
  Socialnet.Dataset.t -> stories:Socialnet.Types.story array -> summary
(** Runs the pipeline on each story (default [In_sample 1],
    [Pipeline.hops]) and aggregates.  Aggregates ignore skipped
    stories; [summary.results] keeps them for inspection.

    [pool] (default sequential) evaluates stories on worker domains.
    Each story seeds its own rng from its id, so the summary is
    bit-identical for any pool size; per-story calibration stays
    sequential inside the story to avoid oversubscription. *)

val mean_accuracy_ci :
  ?confidence:float -> Numerics.Rng.t -> summary -> (float * float) option
(** Bootstrap confidence interval (default 95 %) on the mean overall
    accuracy; [None] when fewer than two stories were evaluated. *)

val pp_summary : Format.formatter -> summary -> unit
