open Socialnet

type mode = Paper_params | In_sample of int | Out_of_sample of int

type story_result = {
  story_id : int;
  votes : int;
  overall : float;
  params : Params.t;
  skipped : string option;
}

type summary = {
  results : story_result array;
  evaluated : int;
  skipped : int;
  mean_overall : float;
  median_overall : float;
  worst : float;
  best : float;
}

let top_stories ds ~n =
  let all = Array.copy (Dataset.stories ds) in
  (* Tie-break equal vote counts by story id: Array.sort is not stable,
     so without it the selection (and everything downstream) would
     depend on the compiler's sort implementation. *)
  Array.sort
    (fun a b ->
      let c = compare (Types.story_vote_count b) (Types.story_vote_count a) in
      if c <> 0 then c else compare a.Types.id b.Types.id)
    all;
  Array.sub all 0 (Stdlib.min n (Array.length all))

let param_choice_of_mode story mode =
  match mode with
  | Paper_params -> Pipeline.Paper
  | In_sample seed ->
    Pipeline.Auto
      {
        rng = Numerics.Rng.create (seed + story.Types.id);
        config =
          { Fit.default_config with fit_times = [| 2.; 3.; 4.; 5.; 6. |] };
      }
  | Out_of_sample seed ->
    Pipeline.Auto
      {
        rng = Numerics.Rng.create (seed + story.Types.id);
        config = Fit.default_config;
      }

let m_stories = Obs.Metrics.counter "batch.stories"
let m_story_wall_ns = Obs.Metrics.histogram "batch.story_wall_ns"

let base_result story =
  {
    story_id = story.Types.id;
    votes = Types.story_vote_count story;
    overall = nan;
    params = Params.paper_hops;
    skipped = None;
  }

let finish_story_result (base : story_result) (exp : Pipeline.experiment) =
  let overall = exp.Pipeline.table.Accuracy.overall_average in
  if Float.is_nan overall then
    { base with skipped = Some "no defined accuracy cells" }
  else { base with overall; params = exp.Pipeline.params }

let log_story_result r =
  Obs.Metrics.incr m_stories;
  Obs.Log.info "batch.story" ~fields:(fun () ->
      [
        Obs.Log.int "story" r.story_id;
        Obs.Log.int "votes" r.votes;
        Obs.Log.float "overall" r.overall;
        Obs.Log.str "skipped" (match r.skipped with None -> "" | Some m -> m);
      ])

(* Paper-parameter batches involve no calibration, so every story whose
   observations share a domain (l, L) can advance through one fused
   panel solve — the grid and CFL bookkeeping are built once per group
   and each time step runs one batched Thomas sweep across the whole
   group.  Scores are bit-identical to the per-story path: the panel
   solver is bit-identity-gated against the scalar stepper. *)
let evaluate_paper ~pool ~metric ds ~stories =
  let n = Array.length stories in
  (* front half per story: observation, trimming, phi, domain (cheap
     next to the solve) *)
  let pres =
    Array.map
      (fun story ->
        match Pipeline.prepare ds ~story ~metric with
        | pre -> Ok pre
        | exception Invalid_argument msg -> Error msg)
      stories
  in
  (* group indices by shared domain; groups appear in first-story
     order, stories keep their input order inside a group *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i -> function
      | Error _ -> ()
      | Ok pre ->
        let key = (pre.Pipeline.pr_l, pre.Pipeline.pr_big_l) in
        (match Hashtbl.find_opt tbl key with
        | Some members -> members := i :: !members
        | None ->
          Hashtbl.add tbl key (ref [ i ]);
          order := key :: !order))
    pres;
  let groups =
    Array.of_list
      (List.rev_map
         (fun key -> Array.of_list (List.rev !(Hashtbl.find tbl key)))
         !order)
  in
  let pre_exn i =
    match pres.(i) with Ok pre -> pre | Error _ -> assert false
  in
  let solve_group idxs =
    let members =
      Array.map
        (fun i ->
          let pre = pre_exn i in
          (Pipeline.paper_params pre, pre.Pipeline.pr_phi))
        idxs
    in
    let times = (pre_exn idxs.(0)).Pipeline.pr_times in
    Obs.Span.with_span "batch.panel"
      ~attrs:(fun () -> [ Obs.Log.int "stories" (Array.length idxs) ])
      (fun () ->
        match Model.solve_panel members ~times with
        | sols -> Array.map (fun s -> Ok s) sols
        | exception (Invalid_argument _ | Numerics.Mat.Singular) ->
          (* a pathological story poisons the fused sweep; retry story
             by story so the rest of the group still scores *)
          Array.map
            (fun (p, phi) ->
              match Model.solve p ~phi ~times with
              | s -> Ok s
              | exception Invalid_argument msg -> Error msg
              | exception Numerics.Mat.Singular ->
                Error "singular system during solve")
            members)
  in
  let solved = Parallel.Pool.parallel_map pool solve_group groups in
  let solutions = Array.make n None in
  Array.iteri
    (fun g idxs ->
      Array.iteri (fun j i -> solutions.(i) <- Some solved.(g).(j)) idxs)
    groups;
  (* back half per story: accuracy table and result record (one
     batch.story span each, as on the calibrated path) *)
  Array.mapi
    (fun i story ->
      Obs.Span.with_span "batch.story"
        ~attrs:(fun () -> [ Obs.Log.int "story" story.Types.id ])
        (fun () ->
          let wall_start = if Obs.enabled () then Obs.now_ns () else 0 in
          let base = base_result story in
          let r =
            match (pres.(i), solutions.(i)) with
            | Error msg, _ -> { base with skipped = Some msg }
            | Ok _, (None | Some (Error _)) ->
              let msg =
                match solutions.(i) with
                | Some (Error msg) -> msg
                | _ -> "no defined accuracy cells"
              in
              { base with skipped = Some msg }
            | Ok pre, Some (Ok solution) -> (
              match
                Pipeline.finish pre ~params:(Pipeline.paper_params pre)
                  ~fit_error:None ~solution
              with
              | exp -> finish_story_result base exp
              | exception Invalid_argument msg ->
                { base with skipped = Some msg })
          in
          if Obs.enabled () then
            Obs.Metrics.observe m_story_wall_ns
              (float_of_int (Obs.now_ns () - wall_start));
          log_story_result r;
          r))
    stories

let evaluate ?(pool = Parallel.Pool.sequential) ?(mode = In_sample 1)
    ?(metric = Pipeline.hops) ds ~stories =
 Obs.Span.with_span "batch.evaluate"
   ~attrs:(fun () -> [ Obs.Log.int "stories" (Array.length stories) ])
 @@ fun () ->
  (* Parallelism lives at the story level: each story owns an
     independent rng (seeded from its id), so the per-story results are
     identical for any pool size.  The fit inside each story stays
     sequential — parallelising both levels would oversubscribe. *)
  let eval_story story =
    Obs.Span.with_span "batch.story"
      ~attrs:(fun () -> [ Obs.Log.int "story" story.Types.id ])
      (fun () ->
        let wall_start = if Obs.enabled () then Obs.now_ns () else 0 in
        let base = base_result story in
        let r =
          match
            Pipeline.run ~params:(param_choice_of_mode story mode) ds ~story
              ~metric
          with
          | exp -> finish_story_result base exp
          | exception Invalid_argument msg -> { base with skipped = Some msg }
          | exception Numerics.Mat.Singular ->
            { base with skipped = Some "singular system during solve" }
        in
        if Obs.enabled () then
          Obs.Metrics.observe m_story_wall_ns
            (float_of_int (Obs.now_ns () - wall_start));
        log_story_result r;
        r)
  in
  let results =
    match mode with
    | Paper_params -> evaluate_paper ~pool ~metric ds ~stories
    | In_sample _ | Out_of_sample _ ->
      Parallel.Pool.parallel_map pool eval_story stories
  in
  let scores =
    Array.of_list
      (List.filter_map
         (fun (r : story_result) ->
           if r.skipped = None then Some r.overall else None)
         (Array.to_list results))
  in
  let evaluated = Array.length scores in
  let summary =
    if evaluated = 0 then
      {
        results;
        evaluated;
        skipped = Array.length results;
        mean_overall = nan;
        median_overall = nan;
        worst = nan;
        best = nan;
      }
    else
      {
        results;
        evaluated;
        skipped = Array.length results - evaluated;
        mean_overall = Numerics.Stats.mean scores;
        median_overall = Numerics.Stats.median scores;
        worst = Numerics.Stats.min scores;
        best = Numerics.Stats.max scores;
      }
  in
  Obs.Log.info "batch.summary" ~fields:(fun () ->
      [
        Obs.Log.int "evaluated" summary.evaluated;
        Obs.Log.int "skipped" summary.skipped;
        Obs.Log.float "mean_overall" summary.mean_overall;
        Obs.Log.float "median_overall" summary.median_overall;
      ]);
  summary

let mean_accuracy_ci ?confidence rng s =
  let scores =
    Array.of_list
      (List.filter_map
         (fun (r : story_result) ->
           if r.skipped = None then Some r.overall else None)
         (Array.to_list s.results))
  in
  if Array.length scores < 2 then None
  else Some (Numerics.Stats_tests.bootstrap_mean_ci ?confidence rng scores)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d stories evaluated (%d skipped)@,\
     overall accuracy: mean %.2f%%, median %.2f%%, range [%.2f%%, %.2f%%]@]"
    s.evaluated s.skipped (100. *. s.mean_overall) (100. *. s.median_overall)
    (100. *. s.worst) (100. *. s.best)
