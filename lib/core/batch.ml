open Socialnet

type mode = Paper_params | In_sample of int | Out_of_sample of int

type story_result = {
  story_id : int;
  votes : int;
  overall : float;
  params : Params.t;
  skipped : string option;
}

type summary = {
  results : story_result array;
  evaluated : int;
  skipped : int;
  mean_overall : float;
  median_overall : float;
  worst : float;
  best : float;
}

let top_stories ds ~n =
  let all = Array.copy (Dataset.stories ds) in
  (* Tie-break equal vote counts by story id: Array.sort is not stable,
     so without it the selection (and everything downstream) would
     depend on the compiler's sort implementation. *)
  Array.sort
    (fun a b ->
      let c = compare (Types.story_vote_count b) (Types.story_vote_count a) in
      if c <> 0 then c else compare a.Types.id b.Types.id)
    all;
  Array.sub all 0 (Stdlib.min n (Array.length all))

let param_choice_of_mode story mode =
  match mode with
  | Paper_params -> Pipeline.Paper
  | In_sample seed ->
    Pipeline.Auto
      {
        rng = Numerics.Rng.create (seed + story.Types.id);
        config =
          { Fit.default_config with fit_times = [| 2.; 3.; 4.; 5.; 6. |] };
      }
  | Out_of_sample seed ->
    Pipeline.Auto
      {
        rng = Numerics.Rng.create (seed + story.Types.id);
        config = Fit.default_config;
      }

let m_stories = Obs.Metrics.counter "batch.stories"
let m_story_wall_ns = Obs.Metrics.histogram "batch.story_wall_ns"

let evaluate ?(pool = Parallel.Pool.sequential) ?(mode = In_sample 1)
    ?(metric = Pipeline.hops) ds ~stories =
 Obs.Span.with_span "batch.evaluate"
   ~attrs:(fun () -> [ Obs.Log.int "stories" (Array.length stories) ])
 @@ fun () ->
  (* Parallelism lives at the story level: each story owns an
     independent rng (seeded from its id), so the per-story results are
     identical for any pool size.  The fit inside each story stays
     sequential — parallelising both levels would oversubscribe. *)
  let eval_story story =
    Obs.Span.with_span "batch.story"
      ~attrs:(fun () -> [ Obs.Log.int "story" story.Types.id ])
      (fun () ->
        let wall_start = if Obs.enabled () then Obs.now_ns () else 0 in
        let base =
          {
            story_id = story.Types.id;
            votes = Types.story_vote_count story;
            overall = nan;
            params = Params.paper_hops;
            skipped = None;
          }
        in
        let r =
          match
            Pipeline.run ~params:(param_choice_of_mode story mode) ds ~story
              ~metric
          with
          | exp ->
            let overall = exp.Pipeline.table.Accuracy.overall_average in
            if Float.is_nan overall then
              { base with skipped = Some "no defined accuracy cells" }
            else
              { base with overall; params = exp.Pipeline.params }
          | exception Invalid_argument msg -> { base with skipped = Some msg }
          | exception Numerics.Mat.Singular ->
            { base with skipped = Some "singular system during solve" }
        in
        Obs.Metrics.incr m_stories;
        if Obs.enabled () then
          Obs.Metrics.observe m_story_wall_ns
            (float_of_int (Obs.now_ns () - wall_start));
        Obs.Log.info "batch.story" ~fields:(fun () ->
            [
              Obs.Log.int "story" r.story_id;
              Obs.Log.int "votes" r.votes;
              Obs.Log.float "overall" r.overall;
              Obs.Log.str "skipped"
                (match r.skipped with None -> "" | Some m -> m);
            ]);
        r)
  in
  let results = Parallel.Pool.parallel_map pool eval_story stories in
  let scores =
    Array.of_list
      (List.filter_map
         (fun (r : story_result) ->
           if r.skipped = None then Some r.overall else None)
         (Array.to_list results))
  in
  let evaluated = Array.length scores in
  let summary =
    if evaluated = 0 then
      {
        results;
        evaluated;
        skipped = Array.length results;
        mean_overall = nan;
        median_overall = nan;
        worst = nan;
        best = nan;
      }
    else
      {
        results;
        evaluated;
        skipped = Array.length results - evaluated;
        mean_overall = Numerics.Stats.mean scores;
        median_overall = Numerics.Stats.median scores;
        worst = Numerics.Stats.min scores;
        best = Numerics.Stats.max scores;
      }
  in
  Obs.Log.info "batch.summary" ~fields:(fun () ->
      [
        Obs.Log.int "evaluated" summary.evaluated;
        Obs.Log.int "skipped" summary.skipped;
        Obs.Log.float "mean_overall" summary.mean_overall;
        Obs.Log.float "median_overall" summary.median_overall;
      ]);
  summary

let mean_accuracy_ci ?confidence rng s =
  let scores =
    Array.of_list
      (List.filter_map
         (fun (r : story_result) ->
           if r.skipped = None then Some r.overall else None)
         (Array.to_list s.results))
  in
  if Array.length scores < 2 then None
  else Some (Numerics.Stats_tests.bootstrap_mean_ci ?confidence rng scores)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d stories evaluated (%d skipped)@,\
     overall accuracy: mean %.2f%%, median %.2f%%, range [%.2f%%, %.2f%%]@]"
    s.evaluated s.skipped (100. *. s.mean_overall) (100. *. s.median_overall)
    (100. *. s.worst) (100. *. s.best)
