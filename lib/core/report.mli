(** Markdown experiment reports.

    Renders a {!Pipeline.experiment} into a self-contained markdown
    document: setup, parameters, φ admissibility, theorem verdicts,
    the accuracy table and (optionally) baseline comparisons — the
    artefact to attach to an issue or lab notebook. *)

val render : ?title:string -> Pipeline.experiment -> string
(** Markdown text for one experiment. *)

val render_with_baselines :
  ?title:string ->
  Pipeline.experiment ->
  baselines:(string * Baselines.predictor) list ->
  string
(** Adds an overall-accuracy comparison table for the named
    baselines. *)

val save : path:string -> string -> unit
(** Write rendered markdown to a file. *)
