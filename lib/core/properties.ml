open Numerics

type verdict = {
  holds : bool;
  worst_violation : float;
  witness : (float * float) option;
}

let ok = { holds = true; worst_violation = 0.; witness = None }

let scan_solution sol violation =
  let { Pde.xs; ts; values } = sol.Model.pde in
  let worst = ref 0. and witness = ref None in
  Array.iteri
    (fun it t ->
      Array.iteri
        (fun ix x ->
          let v = violation it ix values in
          if v > !worst then begin
            worst := v;
            witness := Some (x, t)
          end)
        xs)
    ts;
  if !worst <= 1e-9 then ok
  else { holds = false; worst_violation = !worst; witness = !witness }

let bounds sol =
  let k = sol.Model.params.Params.k in
  scan_solution sol (fun it ix values ->
      let v = values.(it).(ix) in
      Float.max (-.v) (v -. k))

let monotone_in_time ?(strict = false) sol =
  let margin = if strict then 1e-12 else 0. in
  scan_solution sol (fun it ix values ->
      if it = 0 then 0.
      else values.(it - 1).(ix) +. margin -. values.(it).(ix))

let is_lower_solution phi ~params =
  (Initial.check phi ~params).Initial.lower_solution

let pp_verdict ppf v =
  if v.holds then Format.fprintf ppf "holds"
  else
    match v.witness with
    | Some (x, t) ->
      Format.fprintf ppf "violated by %.3g at (x = %g, t = %g)"
        v.worst_violation x t
    | None -> Format.fprintf ppf "violated by %.3g" v.worst_violation
