open Numerics

type predictor = x:int -> t:float -> float

let check_t1 ~fn (obs : Socialnet.Density.t) =
  if Float.abs (obs.Socialnet.Density.times.(0) -. 1.) > 1e-9 then
    invalid_arg
      (Printf.sprintf "Baselines.%s: observations must start at t = 1" fn)

let index_of_distance (obs : Socialnet.Density.t) x =
  let found = ref (-1) in
  Array.iteri
    (fun i d -> if d = x then found := i)
    obs.Socialnet.Density.distances;
  if !found < 0 then
    invalid_arg (Printf.sprintf "Baselines.predict: unknown distance %d" x)
  else !found

let persistence obs =
  check_t1 ~fn:"persistence" obs;
  fun ~x ~t:_ ->
    let ix = index_of_distance obs x in
    obs.Socialnet.Density.density.(ix).(0)

let row_points obs ~fit_times ix =
  let ts = ref [ 1. ] and vs = ref [ obs.Socialnet.Density.density.(ix).(0) ] in
  Array.iter
    (fun t ->
      ts := t :: !ts;
      vs := Socialnet.Density.at obs
              ~distance:obs.Socialnet.Density.distances.(ix) ~time:t
            :: !vs)
    fit_times;
  (Array.of_list (List.rev !ts), Array.of_list (List.rev !vs))

let linear_trend obs ~fit_times =
  check_t1 ~fn:"linear_trend" obs;
  let coeffs =
    Array.mapi
      (fun ix _ ->
        let ts, vs = row_points obs ~fit_times ix in
        Stats.linear_regression ts vs)
      obs.Socialnet.Density.distances
  in
  fun ~x ~t ->
    let ix = index_of_distance obs x in
    let slope, intercept, _ = coeffs.(ix) in
    Float.max 0. ((slope *. t) +. intercept)

let logistic_per_distance obs ~fit_times =
  check_t1 ~fn:"logistic_per_distance" obs;
  let fallback = linear_trend obs ~fit_times in
  let max_density =
    Array.fold_left
      (fun acc row -> Array.fold_left Float.max acc row)
      0. obs.Socialnet.Density.density
  in
  let fits =
    Array.mapi
      (fun ix _ ->
        let n0 = obs.Socialnet.Density.density.(ix).(0) in
        if n0 <= 0. then None
        else begin
          let ts, vs = row_points obs ~fit_times ix in
          let f v =
            let r = Float.max 0. v.(0) in
            let k = Float.max (n0 +. 1e-6) v.(1) in
            let err = ref 0. and count = ref 0 in
            Array.iteri
              (fun i t ->
                if vs.(i) > 0. then begin
                  let p = Ode.logistic ~r ~k ~n0 (t -. 1.) in
                  err := !err +. (Float.abs (p -. vs.(i)) /. vs.(i));
                  incr count
                end)
              ts;
            if !count = 0 then 0. else !err /. float_of_int !count
          in
          let res =
            Optimize.nelder_mead ~max_iter:500 f
              ~x0:[| 0.5; Float.max (2. *. n0) max_density |]
          in
          let r = Float.max 0. res.Optimize.x.(0) in
          let k = Float.max (n0 +. 1e-6) res.Optimize.x.(1) in
          Some (n0, r, k)
        end)
      obs.Socialnet.Density.distances
  in
  fun ~x ~t ->
    let ix = index_of_distance obs x in
    match fits.(ix) with
    | Some (n0, r, k) -> Ode.logistic ~r ~k ~n0 (t -. 1.)
    | None -> fallback ~x ~t

(* Closed-form Gompertz curve from n0 at dt = 0:
   N(dt) = K exp(ln(n0/K) e^{-r dt}).  Same saturating-sigmoid family
   as the logistic but with an asymmetric inflection (at K/e rather
   than K/2), which fits the long slow tails of deep distance groups
   better. *)
let gompertz ~r ~k ~n0 dt = k *. exp (log (n0 /. k) *. exp (-.r *. dt))

let gompertz_per_distance obs ~fit_times =
  check_t1 ~fn:"gompertz_per_distance" obs;
  let fallback = linear_trend obs ~fit_times in
  let max_density =
    Array.fold_left
      (fun acc row -> Array.fold_left Float.max acc row)
      0. obs.Socialnet.Density.density
  in
  let fits =
    Array.mapi
      (fun ix _ ->
        let n0 = obs.Socialnet.Density.density.(ix).(0) in
        if n0 <= 0. then None
        else begin
          let ts, vs = row_points obs ~fit_times ix in
          let f v =
            let r = Float.max 1e-6 v.(0) in
            let k = Float.max (n0 +. 1e-6) v.(1) in
            let err = ref 0. and count = ref 0 in
            Array.iteri
              (fun i t ->
                if vs.(i) > 0. then begin
                  let p = gompertz ~r ~k ~n0 (t -. 1.) in
                  err := !err +. (Float.abs (p -. vs.(i)) /. vs.(i));
                  incr count
                end)
              ts;
            if !count = 0 then 0. else !err /. float_of_int !count
          in
          let res =
            Optimize.nelder_mead ~max_iter:500 f
              ~x0:[| 0.5; Float.max (2. *. n0) max_density |]
          in
          let r = Float.max 1e-6 res.Optimize.x.(0) in
          let k = Float.max (n0 +. 1e-6) res.Optimize.x.(1) in
          Some (n0, r, k)
        end)
      obs.Socialnet.Density.distances
  in
  fun ~x ~t ->
    let ix = index_of_distance obs x in
    match fits.(ix) with
    | Some (n0, r, k) -> gompertz ~r ~k ~n0 (t -. 1.)
    | None -> fallback ~x ~t
