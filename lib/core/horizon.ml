type point = { train_until : float; horizon : float; accuracy : float }

(* Round, not truncate: a training window of 9.9 h means "trained
   through t = 10", not silently through t = 9.  Windows that round
   below 2 cannot provide a single fitting hour (t = 1 is reserved for
   phi), so they are a caller error, not an empty curve. *)
let fit_hours ~train_until =
  let last = int_of_float (Float.round train_until) in
  if last < 2 then
    invalid_arg
      (Printf.sprintf
         "Horizon.fit_hours: train_until = %g is too small (need at least \
          2 observed hours; t = 1 provides the initial condition)"
         train_until);
  Array.init (last - 1) (fun i -> float_of_int (i + 2))

let curve ?(config = Fit.default_config) rng (obs : Socialnet.Density.t)
    ~train_untils ~horizons =
  let phi =
    Initial.of_observations
      ~xs:(Array.map float_of_int obs.Socialnet.Density.distances)
      ~densities:(Array.map (fun row -> row.(0)) obs.Socialnet.Density.density)
  in
  let points = ref [] in
  Array.iter
    (fun train_until ->
      let fit_times = fit_hours ~train_until in
      let result = Fit.fit ~config:{ config with Fit.fit_times } rng obs in
      Array.iter
        (fun horizon ->
          let t = train_until +. horizon in
          let accuracy =
            (* Only the failures a point can legitimately produce are
               mapped to nan: a solver blow-up (Failure), a domain error
               (Invalid_argument) or an unrecorded evaluation time
               (Not_found from Density.at).  Anything else — notably
               Out_of_memory or Stack_overflow — propagates. *)
            match
              let sol = Model.solve result.Fit.params ~phi ~times:[| t |] in
              let table =
                Accuracy.table
                  ~predict:(fun ~x ~t ->
                    Model.predict sol ~x:(float_of_int x) ~t)
                  ~actual:(fun ~x ~t ->
                    Socialnet.Density.at obs ~distance:x ~time:t)
                  ~distances:obs.Socialnet.Density.distances ~times:[| t |]
              in
              table.Accuracy.overall_average
            with
            | v -> v
            | exception ((Failure _ | Invalid_argument _ | Not_found) as e) ->
              Obs.Log.warn "horizon.point_undefined" ~fields:(fun () ->
                  [
                    Obs.Log.float "train_until" train_until;
                    Obs.Log.float "horizon" horizon;
                    Obs.Log.float "t" t;
                    Obs.Log.str "exn" (Printexc.to_string e);
                  ]);
              nan
          in
          points := { train_until; horizon; accuracy } :: !points)
        horizons)
    train_untils;
  Array.of_list (List.rev !points)

let pp ppf points =
  Format.fprintf ppf "@[<v>train\\horizon";
  Array.iter
    (fun p ->
      Format.fprintf ppf "@,  train<=%g h, +%g h ahead: %s" p.train_until
        p.horizon
        (if Float.is_nan p.accuracy then "-"
         else Printf.sprintf "%.2f%%" (100. *. p.accuracy)))
    points;
  Format.fprintf ppf "@]"
