type point = { train_until : float; horizon : float; accuracy : float }

let hours_from_2 upto =
  let n = int_of_float upto - 1 in
  Array.init n (fun i -> float_of_int (i + 2))

let curve ?(config = Fit.default_config) rng (obs : Socialnet.Density.t)
    ~train_untils ~horizons =
  let phi =
    Initial.of_observations
      ~xs:(Array.map float_of_int obs.Socialnet.Density.distances)
      ~densities:(Array.map (fun row -> row.(0)) obs.Socialnet.Density.density)
  in
  let points = ref [] in
  Array.iter
    (fun train_until ->
      let fit_times = hours_from_2 train_until in
      let result = Fit.fit ~config:{ config with Fit.fit_times } rng obs in
      Array.iter
        (fun horizon ->
          let t = train_until +. horizon in
          let accuracy =
            try
              let sol = Model.solve result.Fit.params ~phi ~times:[| t |] in
              let table =
                Accuracy.table
                  ~predict:(fun ~x ~t ->
                    Model.predict sol ~x:(float_of_int x) ~t)
                  ~actual:(fun ~x ~t ->
                    Socialnet.Density.at obs ~distance:x ~time:t)
                  ~distances:obs.Socialnet.Density.distances ~times:[| t |]
              in
              table.Accuracy.overall_average
            with _ -> nan
          in
          points := { train_until; horizon; accuracy } :: !points)
        horizons)
    train_untils;
  Array.of_list (List.rev !points)

let pp ppf points =
  Format.fprintf ppf "@[<v>train\\horizon";
  Array.iter
    (fun p ->
      Format.fprintf ppf "@,  train<=%g h, +%g h ahead: %s" p.train_until
        p.horizon
        (if Float.is_nan p.accuracy then "-"
         else Printf.sprintf "%.2f%%" (100. *. p.accuracy)))
    points;
  Format.fprintf ppf "@]"
