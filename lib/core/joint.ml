open Numerics

type obs = {
  hops : int array;
  groups : int array;
  times : float array;
  density : float array array array;
  population : int array array;
}

let observe (story : Socialnet.Types.story) ~hop_assignment
    ~interest_assignment ~hop_max ~group_max ~times =
  if hop_max < 2 || group_max < 2 then
    invalid_arg "Joint.observe: need at least 2 labels per axis";
  let population = Array.make_matrix hop_max group_max 0 in
  let in_range h g = h >= 1 && h <= hop_max && g >= 1 && g <= group_max in
  Array.iteri
    (fun u h ->
      let g = interest_assignment.(u) in
      if in_range h g then
        population.(h - 1).(g - 1) <- population.(h - 1).(g - 1) + 1)
    hop_assignment;
  let nt = Array.length times in
  let counts = Array.init nt (fun _ -> Array.make_matrix hop_max group_max 0) in
  Array.iter
    (fun (v : Socialnet.Types.vote) ->
      let u = v.Socialnet.Types.user in
      if u < Array.length hop_assignment then begin
        let h = hop_assignment.(u) and g = interest_assignment.(u) in
        if in_range h g then
          Array.iteri
            (fun it t ->
              if v.Socialnet.Types.time <= t then
                counts.(it).(h - 1).(g - 1) <- counts.(it).(h - 1).(g - 1) + 1)
            times
      end)
    story.Socialnet.Types.votes;
  let density =
    Array.map
      (fun per_t ->
        Array.mapi
          (fun ih row ->
            Array.mapi
              (fun ig c ->
                let pop = population.(ih).(ig) in
                if pop = 0 then 0.
                else 100. *. float_of_int c /. float_of_int pop)
              row)
          per_t)
      counts
  in
  {
    hops = Array.init hop_max (fun i -> i + 1);
    groups = Array.init group_max (fun i -> i + 1);
    times = Array.copy times;
    density;
    population;
  }

type params = {
  dh : float;
  di : float;
  k : float;
  r : Growth.t;
}

let solve ?(dt = 0.02) p (obs : obs) ~times =
  if p.k <= 0. then invalid_arg "Joint.solve: K > 0";
  let hop_max = Array.length obs.hops and group_max = Array.length obs.groups in
  let xs = Array.map float_of_int obs.hops in
  let ys = Array.map float_of_int obs.groups in
  let phi0 = obs.density.(0) in
  let initial x y = Interp.bilinear ~xs ~ts:ys ~values:phi0 x y in
  let problem =
    {
      Pde2d.xl = 1.;
      xr = float_of_int hop_max;
      nx = 4 * (hop_max - 1) + 1;
      yl = 1.;
      yr = float_of_int group_max;
      ny = 4 * (group_max - 1) + 1;
      dx_coef = p.dh;
      dy_coef = p.di;
      reaction =
        (fun ~x:_ ~y:_ ~t ~u -> Growth.eval p.r t *. u *. (1. -. (u /. p.k)));
      initial;
      t0 = 1.;
    }
  in
  Pde2d.solve ~dt problem ~times

let accuracy sol (obs : obs) =
  let total = ref 0. and count = ref 0 in
  Array.iteri
    (fun it t ->
      if it > 0 then
        Array.iteri
          (fun ih h ->
            Array.iteri
              (fun ig g ->
                if obs.population.(ih).(ig) > 0 then begin
                  let actual = obs.density.(it).(ih).(ig) in
                  if actual > 0. then begin
                    let predicted =
                      Pde2d.value_at sol ~x:(float_of_int h)
                        ~y:(float_of_int g) ~t
                    in
                    total :=
                      !total
                      +. Accuracy.accuracy ~predicted ~actual;
                    incr count
                  end
                end)
              obs.groups)
          obs.hops)
    obs.times;
  if !count = 0 then nan else !total /. float_of_int !count

let fit_grid ?(dt = 0.05) (obs : obs) ~dh_grid ~di_grid ~r_grid ~k =
  if Float.abs (obs.times.(0) -. 1.) > 1e-9 then
    invalid_arg "Joint.fit_grid: observations must start at t = 1";
  let times =
    Array.of_seq (Seq.filter (fun t -> t > 1.) (Array.to_seq obs.times))
  in
  if Array.length times = 0 then invalid_arg "Joint.fit_grid: no times > 1";
  let error p =
    match solve ~dt p obs ~times with
    | sol ->
      (* mean relative error over populated, positive cells *)
      let err = ref 0. and count = ref 0 in
      Array.iteri
        (fun k_t t ->
          Array.iteri
            (fun ih h ->
              Array.iteri
                (fun ig g ->
                  if obs.population.(ih).(ig) > 0 then begin
                    (* times array here skips t = 1, so offset by 1 in obs *)
                    let actual = obs.density.(k_t + 1).(ih).(ig) in
                    if actual > 0. then begin
                      let predicted =
                        Pde2d.value_at sol ~x:(float_of_int h)
                          ~y:(float_of_int g) ~t
                      in
                      err := !err +. (Float.abs (predicted -. actual) /. actual);
                      incr count
                    end
                  end)
                obs.groups)
            obs.hops)
        times;
      if !count = 0 then infinity else !err /. float_of_int !count
    | exception _ -> infinity
  in
  let best = ref None in
  Array.iter
    (fun dh ->
      Array.iter
        (fun di ->
          Array.iter
            (fun r ->
              let p = { dh; di; k; r } in
              let e = error p in
              match !best with
              | Some (_, e') when e' <= e -> ()
              | _ -> best := Some (p, e))
            r_grid)
        di_grid)
    dh_grid;
  match !best with
  | Some result -> result
  | None -> invalid_arg "Joint.fit_grid: empty grids"
