open Numerics

type params = { d : float; k : float; r : Growth.t }

let indicator_initial (story : Socialnet.Types.story) ~n_users ~at =
  let field = Array.make n_users 0. in
  Array.iter
    (fun (v : Socialnet.Types.vote) ->
      if v.Socialnet.Types.time <= at then field.(v.Socialnet.Types.user) <- 100.)
    story.Socialnet.Types.votes;
  field

let solve ?(dt = 0.1) ~laplacian p ~i0 ~times =
  if p.d < 0. || p.k <= 0. then invalid_arg "Network_model.solve: bad params";
  if Array.exists (fun t -> t < 1.) times then
    invalid_arg "Network_model.solve: times start at t = 1";
  let n = Vec.dim i0 in
  if Sparse.rows laplacian <> n then
    invalid_arg "Network_model.solve: laplacian/initial size mismatch";
  let system dt_eff = Sparse.add_identity 1. (Sparse.scale (dt_eff *. p.d) laplacian) in
  (* cache the CG system for the common full step *)
  let full_system = system dt in
  let u = ref (Array.copy i0) and t = ref 1. in
  let step dt_eff =
    (* Heun (RK2) reaction increment, then implicit diffusion *)
    let r_now = Growth.eval p.r !t in
    let r_next = Growth.eval p.r (!t +. dt_eff) in
    let rhs =
      Array.map
        (fun v ->
          let k1 = r_now *. v *. (1. -. (v /. p.k)) in
          let v1 = v +. (dt_eff *. k1) in
          let k2 = r_next *. v1 *. (1. -. (v1 /. p.k)) in
          v +. (dt_eff *. (k1 +. k2) /. 2.))
        !u
    in
    let a = if dt_eff = dt then full_system else system dt_eff in
    u := Sparse.conjugate_gradient ~tol:1e-8 ~x0:!u a rhs;
    (* clamp numerical noise *)
    Array.iteri (fun i v -> !u.(i) <- Float.max 0. (Float.min p.k v)) !u;
    t := !t +. dt_eff
  in
  Array.map
    (fun target ->
      if target < !t -. 1e-12 then
        invalid_arg "Network_model.solve: times must be increasing";
      while target -. !t > 1e-12 do
        step (Float.min dt (target -. !t))
      done;
      t := target;
      (target, Array.copy !u))
    times

let group_average ~assignment ~max_distance field =
  let sums = Array.make max_distance 0. and counts = Array.make max_distance 0 in
  Array.iteri
    (fun v x ->
      if x >= 1 && x <= max_distance && v < Array.length field then begin
        sums.(x - 1) <- sums.(x - 1) +. field.(v);
        counts.(x - 1) <- counts.(x - 1) + 1
      end)
    assignment;
  Array.mapi
    (fun i s -> if counts.(i) = 0 then 0. else s /. float_of_int counts.(i))
    sums

type fit_result = { params : params; training_error : float }

let fit_grid ?(dt = 0.1) ~laplacian ~assignment ~obs ~i0 ~d_grid ~r_grid ~k () =
  let distances = obs.Socialnet.Density.distances in
  let max_distance = distances.(Array.length distances - 1) in
  let times =
    Array.of_seq
      (Seq.filter (fun t -> t > 1.) (Array.to_seq obs.Socialnet.Density.times))
  in
  if Array.length times = 0 then
    invalid_arg "Network_model.fit_grid: no times after t = 1";
  let error p =
    match solve ~dt ~laplacian p ~i0 ~times with
    | snapshots ->
      let err = ref 0. and count = ref 0 in
      Array.iter
        (fun (t, field) ->
          let groups = group_average ~assignment ~max_distance field in
          Array.iter
            (fun x ->
              let actual = Socialnet.Density.at obs ~distance:x ~time:t in
              if actual > 0. then begin
                err := !err +. (Float.abs (groups.(x - 1) -. actual) /. actual);
                incr count
              end)
            distances)
        snapshots;
      if !count = 0 then infinity else !err /. float_of_int !count
    | exception _ -> infinity
  in
  let best = ref None in
  Array.iter
    (fun d ->
      Array.iter
        (fun r ->
          let p = { d; k; r = Growth.Constant r } in
          let e = error p in
          match !best with
          | Some (_, e') when e' <= e -> ()
          | _ -> best := Some (p, e))
        r_grid)
    d_grid;
  match !best with
  | Some (params, training_error) -> { params; training_error }
  | None -> invalid_arg "Network_model.fit_grid: empty grids"
