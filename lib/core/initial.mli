(** Construction and validation of the initial density function phi
    (paper Section II.D).

    phi is built from the densities observed at the first hour by
    interpolation with flattened ends, so that it satisfies the model's
    three admissibility requirements:

    + twice continuously differentiable (cubic spline);
    + zero slope at both ends, matching the Neumann boundaries
      (clamped spline with zero end derivatives);
    + the lower-solution inequality
      [d phi'' + r phi (1 - phi/K) >= 0] (Eq. 6), which the paper
      guarantees by taking K large and d << r; [check] verifies it
      numerically on a fine grid.

    Two constructions are offered.  [`Cubic_spline] is the paper's (C2,
    matching requirement (i) exactly) but can undershoot below zero
    between steeply decreasing observations, in which case phi is
    floored at 0 (C2 a.e.).  [`Pchip] is shape-preserving cubic Hermite
    (never undershoots, monotone where the data is) at the price of C1
    instead of C2 — a documented trade-off, not the paper's choice. *)

type construction = [ `Cubic_spline | `Pchip ]

type t

val of_observations : xs:float array -> densities:float array -> t
(** [xs] are the (strictly increasing) distance values, [densities]
    the observed I(x, 1) (non-negative, not all zero).  Uses the
    paper's [`Cubic_spline] construction.
    @raise Invalid_argument (with a message naming
    [Initial.of_observations]) if the arrays differ in length, have
    fewer than two points, [xs] is not strictly increasing (or contains
    NaN), a density is negative, or every density is zero. *)

val of_observations_with :
  construction:construction ->
  xs:float array -> densities:float array -> t
(** Like {!of_observations} with an explicit construction choice. *)

val construction : t -> construction

val eval : t -> float -> float
val deriv : t -> float -> float
val second_deriv : t -> float -> float

val to_function : t -> float -> float

val knots : t -> (float * float) array

type report = {
  end_slopes_zero : bool;
  non_negative : bool;
  lower_solution : bool;
      (** Eq. 6 holds at every checked point (at the initial time) *)
  min_inequality_slack : float;
      (** smallest observed value of [d phi'' + r phi (1 - phi/K)];
          negative iff [lower_solution] is false *)
}

val check : ?samples:int -> t -> params:Params.t -> report
(** Samples the three requirements on a uniform grid over the params'
    domain (default 512 points, r evaluated at t = 1). *)

val pp_report : Format.formatter -> report -> unit
