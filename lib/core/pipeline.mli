(** End-to-end prediction pipeline: dataset -> observations -> phi ->
    parameters -> forecast -> accuracy table.

    This is the code path behind the paper's Section III.C evaluation
    (Fig. 7 and Tables I-II) and the library's main entry point for
    downstream users. *)

type metric =
  | Hops of { max_distance : int }
  | Interest of { n_groups : int; grouping : Socialnet.Distance.grouping }

val hops : metric
(** Friendship hops, distances 1..6 (the paper's Table I range). *)

val interest : metric
(** Shared interests, 5 equal-width groups (the paper's setup). *)

type param_choice =
  | Paper       (** the published s1 parameter sets, matched to the metric *)
  | Auto of { rng : Numerics.Rng.t; config : Fit.config }
  | Given of Params.t

type experiment = {
  story : Socialnet.Types.story;
  metric : metric;
  assignment : int array;          (** per-user distance labels *)
  observation : Socialnet.Density.t;
      (** densities at t = 1 and every requested time *)
  phi : Initial.t;
  params : Params.t;
  fit_error : float option;        (** training error when [Auto] *)
  solution : Model.solution;
  table : Accuracy.table;
}

val observe :
  Socialnet.Dataset.t -> story:Socialnet.Types.story -> metric:metric ->
  times:float array -> int array * Socialnet.Density.t
(** Distance assignment and observed densities (prepends t = 1 to
    [times] if absent). *)

val run :
  ?params:param_choice ->
  ?pool:Parallel.Pool.t ->
  ?predict_times:float array ->
  ?construction:Initial.construction ->
  ?fit_id:string ->
  ?fit_init:Fit.init ->
  ?on_fit:(Fit.event -> unit) ->
  Socialnet.Dataset.t ->
  story:Socialnet.Types.story ->
  metric:metric ->
  experiment
(** Full pipeline.  Defaults: [Paper] parameters,
    [predict_times = 2..6] as in Tables I-II, phi built with the
    paper's [`Cubic_spline].  The model is solved from the t = 1
    observation and compared against the actual densities at each
    prediction time.  [pool] (default sequential) parallelises the
    calibration restarts when [params] is [Auto]; results are
    bit-identical for any pool size.

    When [params] is [Auto], the completed fit is reported to the
    {!Fit.set_on_fit} observer (or [on_fit] when given) under
    [fit_id], which defaults to ["story-<id>"] — so a run with a
    store hook attached checkpoints its calibration durably.
    [fit_init] warm-starts the [Auto] calibration from a prior
    optimum or simplex (see {!Fit.fit}); ignored for [Paper]/[Given]. *)

(** {2 Split pipeline}

    {!run} decomposed into its pure-observation front half and its
    scoring back half, so callers holding many stories can batch the
    PDE solves in between ({!Batch.evaluate} fuses every story sharing
    a domain into one {!Model.solve_panel} call). *)

type prepared = {
  pr_story : Socialnet.Types.story;
  pr_metric : metric;
  pr_assignment : int array;
  pr_observation : Socialnet.Density.t;
  pr_phi : Initial.t;
  pr_l : float;      (** first observed distance group *)
  pr_big_l : float;  (** last observed distance group *)
  pr_times : float array;
}

val prepare :
  ?predict_times:float array ->
  ?construction:Initial.construction ->
  Socialnet.Dataset.t ->
  story:Socialnet.Types.story ->
  metric:metric ->
  prepared
(** Observation half of {!run}: distance assignment, densities,
    trimming, phi and the story's domain [(pr_l, pr_big_l)].
    @raise Invalid_argument when fewer than two distance groups remain
    (same message as {!run}). *)

val paper_params : prepared -> Params.t
(** The published parameter set for the prepared story's metric,
    clamped to its observed domain — what {!run} uses under [Paper]. *)

val finish :
  prepared -> params:Params.t -> fit_error:float option ->
  solution:Model.solution -> experiment
(** Scoring half of {!run}: accuracy table and the experiment record.
    Increments the [pipeline.runs] counter (so fused batch paths count
    the same as {!run}). *)

val baseline_table :
  experiment -> baseline:Baselines.predictor -> Accuracy.table
(** Accuracy of a baseline predictor on the same observations and
    prediction times (for the ablation bench). *)
