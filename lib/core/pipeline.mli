(** End-to-end prediction pipeline: dataset -> observations -> phi ->
    parameters -> forecast -> accuracy table.

    This is the code path behind the paper's Section III.C evaluation
    (Fig. 7 and Tables I-II) and the library's main entry point for
    downstream users. *)

type metric =
  | Hops of { max_distance : int }
  | Interest of { n_groups : int; grouping : Socialnet.Distance.grouping }

val hops : metric
(** Friendship hops, distances 1..6 (the paper's Table I range). *)

val interest : metric
(** Shared interests, 5 equal-width groups (the paper's setup). *)

type param_choice =
  | Paper       (** the published s1 parameter sets, matched to the metric *)
  | Auto of { rng : Numerics.Rng.t; config : Fit.config }
  | Given of Params.t

type experiment = {
  story : Socialnet.Types.story;
  metric : metric;
  assignment : int array;          (** per-user distance labels *)
  observation : Socialnet.Density.t;
      (** densities at t = 1 and every requested time *)
  phi : Initial.t;
  params : Params.t;
  fit_error : float option;        (** training error when [Auto] *)
  solution : Model.solution;
  table : Accuracy.table;
}

val observe :
  Socialnet.Dataset.t -> story:Socialnet.Types.story -> metric:metric ->
  times:float array -> int array * Socialnet.Density.t
(** Distance assignment and observed densities (prepends t = 1 to
    [times] if absent). *)

val run :
  ?params:param_choice ->
  ?pool:Parallel.Pool.t ->
  ?predict_times:float array ->
  ?construction:Initial.construction ->
  ?fit_id:string ->
  ?on_fit:(Fit.event -> unit) ->
  Socialnet.Dataset.t ->
  story:Socialnet.Types.story ->
  metric:metric ->
  experiment
(** Full pipeline.  Defaults: [Paper] parameters,
    [predict_times = 2..6] as in Tables I-II, phi built with the
    paper's [`Cubic_spline].  The model is solved from the t = 1
    observation and compared against the actual densities at each
    prediction time.  [pool] (default sequential) parallelises the
    calibration restarts when [params] is [Auto]; results are
    bit-identical for any pool size.

    When [params] is [Auto], the completed fit is reported to the
    {!Fit.set_on_fit} observer (or [on_fit] when given) under
    [fit_id], which defaults to ["story-<id>"] — so a run with a
    store hook attached checkpoints its calibration durably. *)

val baseline_table :
  experiment -> baseline:Baselines.predictor -> Accuracy.table
(** Accuracy of a baseline predictor on the same observations and
    prediction times (for the ablation bench). *)
