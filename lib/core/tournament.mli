(** Tournament-scale model comparison: fit every requested registry
    model on the same story set and rank them on held-out accuracy.

    The paper's claim that the diffusive logistic PDE beats simpler
    growth models is only demonstrable head-to-head; this module is the
    harness.  Each (model, story) pair is an independent work item —
    fit on the calibration hours, evaluate on the later observed cells
    — distributed over a {!Parallel.Pool}.  The per-item rng seed is
    derived deterministically from the tournament seed, the model name
    and the story index, and accuracy aggregation runs in index order,
    so {e every accuracy field of the leaderboard is bit-identical for
    any pool size} (only the wall-clock latency fields vary run to
    run).

    Results also land in [Obs] metrics ([tournament.*], labelled by
    model name) and serialise to the versioned leaderboard JSON
    embedded by the bench harness ({!json_string},
    schema {!schema_version}). *)

type entry = {
  e_model : string;
  e_ok : bool;  (** at least one story fitted successfully *)
  e_error : string option;  (** first failure message, if any story failed *)
  e_mean_rel_err : float;
      (** mean relative error over held-out cells, averaged over the
          successfully fitted stories ([nan] if none) *)
  e_training_error : float;
      (** mean training error over the successfully fitted stories *)
  e_per_story : float array;
      (** held-out error per story, input order ([nan] on failure) *)
  e_fit_ms : float;      (** total fitting wall time, milliseconds *)
  e_predict_ms : float;  (** total held-out evaluation wall time *)
  e_evaluations : int;   (** total solver/objective evaluations *)
}

type leaderboard = {
  lb_models : string array;      (** requested models, input order *)
  lb_stories : string array;     (** story labels, input order *)
  lb_fit_times : float array;
  lb_seed : int;
  lb_jobs : int;                 (** pool size the run used *)
  lb_entries : entry array;
      (** sorted: successful models by ascending held-out error, then
          failed models *)
}

val default_models : string list
(** The registry models a tournament runs when none are named: every
    built-in except ["network"], which needs graph context
    ({!Predictor.graph_ctx}) that plain density observations cannot
    provide. *)

val run :
  ?pool:Parallel.Pool.t -> ?fit_times:float array -> ?seed:int ->
  ?models:string list ->
  (string * Socialnet.Density.t) list -> leaderboard
(** [run stories] fits each model of [models] (default
    {!default_models}) on every labelled observation.  Held-out cells
    are the observed times strictly later than the last calibration
    hour; stories without such cells contribute [nan].  Defaults:
    sequential pool, [fit_times = [2; 3]], [seed = 42].
    @raise Invalid_argument on an unregistered model name or an empty
    story list ([Tournament.run: …] form). *)

val synthetic_stories :
  ?n:int -> ?seed:int -> unit -> (string * Socialnet.Density.t) list
(** [n] (default 4) synthetic cascades, deterministic in [seed]
    (default 7): each is a DL-model solve under randomly drawn
    parameters sampled at distances 1..5 and hours 1..6, with small
    multiplicative observation noise — a shared ground-truth story set
    cheap enough for tests and CI smoke runs. *)

val schema_version : string
(** ["dlosn-tournament/1"]. *)

val json_string : leaderboard -> string
(** The leaderboard as a JSON document: [{"schema": …, "seed": …,
    "jobs": …, "fit_times": […], "stories": […], "leaderboard":
    [{"model": …, "ok": …, "error": …, "mean_rel_err": …,
    "training_error": …, "per_story": […], "fit_ms": …,
    "predict_ms": …, "evaluations": …}, …]}].  Non-finite floats
    render as [null]. *)

val pp : Format.formatter -> leaderboard -> unit
(** Fixed-width leaderboard table (rank, model, held-out error,
    training error, fit time, evaluations). *)
