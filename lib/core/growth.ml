type t =
  | Constant of float
  | Exp_decay of { a : float; b : float; c : float }

let eval r t =
  match r with
  | Constant c -> c
  | Exp_decay { a; b; c } -> (a *. exp (-.b *. (t -. 1.))) +. c

let integral r ~t0 ~t1 =
  match r with
  | Constant c -> c *. (t1 -. t0)
  | Exp_decay { a; b; c } ->
    if b = 0. then (a +. c) *. (t1 -. t0)
    else
      (a /. b *. (exp (-.b *. (t0 -. 1.)) -. exp (-.b *. (t1 -. 1.))))
      +. (c *. (t1 -. t0))

let paper_hops = Exp_decay { a = 1.4; b = 1.5; c = 0.25 }
let paper_interest = Exp_decay { a = 1.6; b = 1.0; c = 0.1 }

let is_decreasing = function
  | Constant _ -> true
  | Exp_decay { a; b; _ } -> a *. b >= 0.

let pp ppf = function
  | Constant c -> Format.fprintf ppf "r(t) = %g" c
  | Exp_decay { a; b; c } ->
    Format.fprintf ppf "r(t) = %g e^{-%g (t-1)} + %g" a b c
