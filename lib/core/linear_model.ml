open Numerics

type params = {
  d : float;
  r : Growth.t;
  l : float;
  big_l : float;
}

let make ~d ~r ~l ~big_l =
  if d < 0. then invalid_arg "Linear_model.make: diffusion rate d must be >= 0";
  if l >= big_l then invalid_arg "Linear_model.make: need l < big_l";
  { d; r; l; big_l }

let of_dl (p : Params.t) =
  { d = p.Params.d; r = p.Params.r; l = p.Params.l; big_l = p.Params.big_l }

let to_dl ?(k = 1.) p = Params.make ~d:p.d ~k ~r:p.r ~l:p.l ~big_l:p.big_l

type scheme = Crank_nicolson | Strang

type solution = {
  params : params;
  pde : Pde.solution;
}

let check_times times =
  if Array.exists (fun t -> t < 1.) times then
    invalid_arg "Linear_model.solve: observation times start at t = 1"

let solve ?(scheme = Strang) ?(nx = 101) ?(dt = 0.01) params ~phi ~times =
  check_times times;
  let r_fn = Growth.eval params.r in
  let p =
    {
      Pde.xl = params.l;
      xr = params.big_l;
      nx;
      diffusion = (fun _ -> params.d);
      reaction = Pde.Linear { r = r_fn };
      initial = Initial.to_function phi;
      t0 = 1.;
    }
  in
  let pde_scheme =
    match scheme with
    | Crank_nicolson -> Pde.Imex 0.5
    | Strang -> Pde.Strang (Pde.linear_reaction_step ~r:r_fn)
  in
  { params; pde = Pde.solve ~scheme:pde_scheme ~dt p ~times }

let predict sol ~x ~t = Pde.eval sol.pde ~x ~t
let predictor sol = Pde.evaluator sol.pde

type fit_config = {
  fit_times : float array;
  d_bounds : float * float;
  a_bounds : float * float;
  b_bounds : float * float;
  c_bounds : float * float;
  starts : int;
  solver_nx : int;
  solver_dt : float;
}

let default_fit_config =
  {
    fit_times = [| 2.; 3.; 4. |];
    d_bounds = (1e-4, 0.6);
    a_bounds = (0., 3.);
    b_bounds = (0.05, 3.);
    c_bounds = (0., 1.);
    starts = 4;
    solver_nx = 41;
    solver_dt = 0.05;
  }

type fit_result = {
  params : params;
  training_error : float;
  evaluations : int;
}

let phi_of_obs (obs : Socialnet.Density.t) =
  let t1 = obs.Socialnet.Density.times.(0) in
  if Float.abs (t1 -. 1.) > 1e-9 then
    invalid_arg "Linear_model.fit: observations must start at t = 1 (they define phi)";
  let xs = Array.map float_of_int obs.Socialnet.Density.distances in
  let densities = Array.map (fun row -> row.(0)) obs.Socialnet.Density.density in
  Initial.of_observations ~xs ~densities

let objective ~nx ~dt ~phi ~obs ~fit_times params =
  try
    let sol = solve ~nx ~dt params ~phi ~times:fit_times in
    let predict = predictor sol in
    let err = ref 0. and count = ref 0 in
    Array.iter
      (fun x ->
        Array.iter
          (fun t ->
            let actual = Socialnet.Density.at obs ~distance:x ~time:t in
            if actual > 0. then begin
              let predicted = predict ~x:(float_of_int x) ~t in
              err := !err +. (Float.abs (predicted -. actual) /. actual);
              incr count
            end)
          fit_times)
      obs.Socialnet.Density.distances;
    if !count = 0 then infinity else !err /. float_of_int !count
  with
  | (Failure _ | Invalid_argument _ | Mat.Singular | Not_found) as e ->
    (* same blow-up policy as [Fit.objective]: bad trial points are
       penalised, genuine bugs propagate *)
    Obs.Log.warn "linear_model.objective_failed" ~fields:(fun () ->
        [ Obs.Log.str "exn" (Printexc.to_string e) ]);
    infinity

let m_fits = Obs.Metrics.counter "linear_model.fits"
let m_restarts = Obs.Metrics.counter "linear_model.restarts"
let m_objective_evals = Obs.Metrics.counter "linear_model.objective_evals"

let fit ?(config = default_fit_config) ?(pool = Parallel.Pool.sequential) rng
    (obs : Socialnet.Density.t) =
 Obs.Span.with_span "linear_model.fit" @@ fun () ->
  let distances = obs.Socialnet.Density.distances in
  if Array.length distances < 2 then
    invalid_arg "Linear_model.fit: need at least two distance groups";
  let phi = phi_of_obs obs in
  let l = float_of_int distances.(0) in
  let big_l = float_of_int distances.(Array.length distances - 1) in
  let lo = [| fst config.d_bounds; fst config.a_bounds;
              fst config.b_bounds; fst config.c_bounds |] in
  let hi = [| snd config.d_bounds; snd config.a_bounds;
              snd config.b_bounds; snd config.c_bounds |] in
  let clamp i v = Float.max lo.(i) (Float.min hi.(i) v) in
  let of_vector v =
    let d = clamp 0 v.(0) in
    let a = clamp 1 v.(1) and b = clamp 2 v.(2) and c = clamp 3 v.(3) in
    make ~d ~r:(Growth.Exp_decay { a; b; c }) ~l ~big_l
  in
  let starts = Stdlib.max 1 config.starts in
  let penalty_of v =
    let penalty = ref 0. in
    Array.iteri
      (fun i x ->
        let excess = Float.max 0. (Float.max (lo.(i) -. x) (x -. hi.(i))) in
        penalty := !penalty +. (excess *. excess))
      v;
    !penalty
  in
  let f v =
    objective ~nx:config.solver_nx ~dt:config.solver_dt ~phi ~obs
      ~fit_times:config.fit_times (of_vector v)
    +. penalty_of v
  in
  (* starting points drawn sequentially up front so the rng stream (and
     the result) is independent of the pool size, as in [Fit.fit] *)
  let n = Array.length lo in
  let x0s = Array.make starts [||] in
  x0s.(0) <- Array.init n (fun i -> (lo.(i) +. hi.(i)) /. 2.);
  for k = 1 to starts - 1 do
    x0s.(k) <- Array.init n (fun i -> Rng.uniform rng lo.(i) hi.(i))
  done;
  let run_restart k =
    Obs.Span.with_span "linear_model.restart"
      ~attrs:(fun () -> [ Obs.Log.int "restart" k ])
      (fun () ->
        let r = Optimize.nelder_mead ~tol:1e-6 ~max_iter:250 f ~x0:x0s.(k) in
        Obs.Metrics.incr m_restarts;
        Obs.Metrics.incr ~by:r.Optimize.evaluations m_objective_evals;
        r)
  in
  let runs =
    Parallel.Pool.parallel_map pool run_restart (Array.init starts Fun.id)
  in
  let best = ref runs.(0) in
  Array.iter (fun r -> if r.Optimize.f < !best.Optimize.f then best := r) runs;
  let params = of_vector !best.Optimize.x in
  let evaluations =
    Array.fold_left (fun acc r -> acc + r.Optimize.evaluations) 0 runs
  in
  let training_error =
    objective ~nx:config.solver_nx ~dt:config.solver_dt ~phi ~obs
      ~fit_times:config.fit_times params
  in
  Obs.Metrics.incr m_fits;
  Obs.Log.debug "linear_model.fit_done" ~fields:(fun () ->
      [
        Obs.Log.int "starts" starts;
        Obs.Log.int "evaluations" evaluations;
        Obs.Log.float "training_error" training_error;
      ]);
  { params; training_error; evaluations }
