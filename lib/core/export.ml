let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_density_series (obs : Socialnet.Density.t) ~path =
  with_out path (fun oc ->
      output_string oc "time\tdistance\tdensity\tpopulation\n";
      Array.iteri
        (fun it t ->
          Array.iteri
            (fun ix x ->
              Printf.fprintf oc "%g\t%d\t%.6f\t%d\n" t x
                obs.Socialnet.Density.density.(ix).(it)
                obs.Socialnet.Density.population.(ix))
            obs.Socialnet.Density.distances)
        obs.Socialnet.Density.times)

let write_profiles (obs : Socialnet.Density.t) ~path =
  with_out path (fun oc ->
      output_string oc "time";
      Array.iter (fun x -> Printf.fprintf oc "\tx%d" x) obs.Socialnet.Density.distances;
      output_string oc "\n";
      Array.iteri
        (fun it t ->
          Printf.fprintf oc "%g" t;
          Array.iter
            (fun row -> Printf.fprintf oc "\t%.6f" row.(it))
            obs.Socialnet.Density.density;
          output_string oc "\n")
        obs.Socialnet.Density.times)

let write_distance_distribution dist ~path =
  with_out path (fun oc ->
      output_string oc "distance\tfraction\n";
      Array.iter (fun (d, f) -> Printf.fprintf oc "%d\t%.6f\n" d f) dist)

let write_growth_rate r ~t0 ~t1 ~samples ~path =
  if samples < 2 then invalid_arg "Export.write_growth_rate: samples >= 2";
  with_out path (fun oc ->
      output_string oc "t\tr\n";
      for i = 0 to samples - 1 do
        let t = t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (samples - 1)) in
        Printf.fprintf oc "%.6f\t%.6f\n" t (Growth.eval r t)
      done)

let write_predicted_vs_actual (exp : Pipeline.experiment) ~path =
  let obs = exp.Pipeline.observation in
  with_out path (fun oc ->
      output_string oc "time\tdistance\tactual\tpredicted\n";
      Array.iteri
        (fun it t ->
          Array.iteri
            (fun ix x ->
              let actual = obs.Socialnet.Density.density.(ix).(it) in
              let predicted =
                if it = 0 then Initial.eval exp.Pipeline.phi (float_of_int x)
                else Model.predict exp.Pipeline.solution ~x:(float_of_int x) ~t
              in
              Printf.fprintf oc "%g\t%d\t%.6f\t%.6f\n" t x actual predicted)
            obs.Socialnet.Density.distances)
        obs.Socialnet.Density.times)

let write_accuracy_table (table : Accuracy.table) ~path =
  with_out path (fun oc ->
      output_string oc "distance\taverage";
      Array.iter (fun t -> Printf.fprintf oc "\tt%g" t) table.Accuracy.times;
      output_string oc "\n";
      let cell oc v =
        if Float.is_nan v then output_string oc "\tNA"
        else Printf.fprintf oc "\t%.4f" (100. *. v)
      in
      Array.iteri
        (fun ix x ->
          Printf.fprintf oc "%d" x;
          cell oc table.Accuracy.row_average.(ix);
          Array.iter (cell oc) table.Accuracy.cells.(ix);
          output_string oc "\n")
        table.Accuracy.distances)

let write_solution_surface ?(samples_x = 101) (sol : Model.solution) ~path =
  let { Numerics.Pde.xs; ts; _ } = sol.Model.pde in
  let l = xs.(0) and r = xs.(Array.length xs - 1) in
  with_out path (fun oc ->
      output_string oc "x\tt\tdensity\n";
      Array.iter
        (fun t ->
          for i = 0 to samples_x - 1 do
            let x =
              l +. ((r -. l) *. float_of_int i /. float_of_int (samples_x - 1))
            in
            Printf.fprintf oc "%.6f\t%g\t%.6f\n" x t
              (Model.predict sol ~x ~t)
          done)
        ts)

let export_experiment (exp : Pipeline.experiment) ~dir ~prefix =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file name = Filename.concat dir (prefix ^ "_" ^ name) in
  let written = ref [] in
  let emit name writer =
    let path = file name in
    writer ~path;
    written := path :: !written
  in
  emit "density.tsv" (write_density_series exp.Pipeline.observation);
  emit "profiles.tsv" (write_profiles exp.Pipeline.observation);
  emit "predicted_vs_actual.tsv" (write_predicted_vs_actual exp);
  emit "accuracy.tsv" (write_accuracy_table exp.Pipeline.table);
  emit "surface.tsv" (write_solution_surface exp.Pipeline.solution);
  List.rev !written
