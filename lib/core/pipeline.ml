open Socialnet

type metric =
  | Hops of { max_distance : int }
  | Interest of { n_groups : int; grouping : Distance.grouping }

let hops = Hops { max_distance = 6 }
let interest = Interest { n_groups = 5; grouping = Distance.Equal_width }

type param_choice =
  | Paper
  | Auto of { rng : Numerics.Rng.t; config : Fit.config }
  | Given of Params.t

type experiment = {
  story : Types.story;
  metric : metric;
  assignment : int array;
  observation : Density.t;
  phi : Initial.t;
  params : Params.t;
  fit_error : float option;
  solution : Model.solution;
  table : Accuracy.table;
}

let with_t1 times =
  if Array.length times > 0 && Float.abs (times.(0) -. 1.) < 1e-9 then times
  else Array.append [| 1. |] times

let observe ds ~story ~metric ~times =
  let assignment, max_distance =
    match metric with
    | Hops { max_distance } ->
      (Distance.friendship_hops ds ~story, max_distance)
    | Interest { n_groups; grouping } ->
      (Distance.interest_groups ~n_groups ~grouping ds ~story, n_groups)
  in
  let obs =
    Density.observe story ~assignment ~max_distance ~times:(with_t1 times)
  in
  (assignment, obs)

(* Drop trailing empty distance groups (e.g. a story that never reaches
   hop 6): phi and the PDE domain should span observed groups only. *)
let trim_empty_groups (obs : Density.t) =
  let last = ref (Array.length obs.Density.distances - 1) in
  while !last > 0 && obs.Density.population.(!last) = 0 do
    decr last
  done;
  let keep = !last + 1 in
  {
    Density.distances = Array.sub obs.Density.distances 0 keep;
    times = obs.Density.times;
    density = Array.sub obs.Density.density 0 keep;
    population = Array.sub obs.Density.population 0 keep;
  }

let default_predict_times = [| 2.; 3.; 4.; 5.; 6. |]

let m_runs = Obs.Metrics.counter "pipeline.runs"

type prepared = {
  pr_story : Types.story;
  pr_metric : metric;
  pr_assignment : int array;
  pr_observation : Density.t;
  pr_phi : Initial.t;
  pr_l : float;
  pr_big_l : float;
  pr_times : float array;
}

let prepare ?(predict_times = default_predict_times)
    ?(construction = `Cubic_spline) ds ~story ~metric =
  let assignment, obs_raw = observe ds ~story ~metric ~times:predict_times in
  let obs = trim_empty_groups obs_raw in
  let distances = obs.Density.distances in
  if Array.length distances < 2 then
    invalid_arg "Pipeline.run: need at least two non-empty distance groups";
  let xs = Array.map float_of_int distances in
  let densities = Array.map (fun row -> row.(0)) obs.Density.density in
  let phi = Initial.of_observations_with ~construction ~xs ~densities in
  {
    pr_story = story;
    pr_metric = metric;
    pr_assignment = assignment;
    pr_observation = obs;
    pr_phi = phi;
    pr_l = xs.(0);
    pr_big_l = xs.(Array.length xs - 1);
    pr_times = predict_times;
  }

let paper_params pre =
  let base =
    match pre.pr_metric with
    | Hops _ -> Params.paper_hops
    | Interest _ -> Params.paper_interest
  in
  Params.with_domain base ~l:pre.pr_l ~big_l:pre.pr_big_l

let finish pre ~params ~fit_error ~solution =
  Obs.Metrics.incr m_runs;
  let obs = pre.pr_observation in
  let table =
    Accuracy.table
      ~predict:(fun ~x ~t -> Model.predict solution ~x:(float_of_int x) ~t)
      ~actual:(fun ~x ~t -> Density.at obs ~distance:x ~time:t)
      ~distances:obs.Density.distances ~times:pre.pr_times
  in
  Obs.Log.debug "pipeline.run" ~fields:(fun () ->
      [
        Obs.Log.int "story" pre.pr_story.Types.id;
        Obs.Log.float "overall" table.Accuracy.overall_average;
        Obs.Log.float "fit_error"
          (match fit_error with None -> nan | Some e -> e);
      ]);
  {
    story = pre.pr_story;
    metric = pre.pr_metric;
    assignment = pre.pr_assignment;
    observation = obs;
    phi = pre.pr_phi;
    params;
    fit_error;
    solution;
    table;
  }

let run ?(params = Paper) ?(pool = Parallel.Pool.sequential)
    ?(predict_times = default_predict_times)
    ?(construction = `Cubic_spline) ?fit_id ?fit_init ?on_fit ds ~story
    ~metric =
 Obs.Span.with_span "pipeline.run"
   ~attrs:(fun () -> [ Obs.Log.int "story" story.Types.id ])
 @@ fun () ->
  let pre = prepare ~predict_times ~construction ds ~story ~metric in
  let chosen, fit_error =
    match params with
    | Given p -> (Params.with_domain p ~l:pre.pr_l ~big_l:pre.pr_big_l, None)
    | Paper -> (paper_params pre, None)
    | Auto { rng; config } ->
      (* label the fit with the story so store checkpoints are
         self-describing (overridable via [fit_id]) *)
      let id =
        match fit_id with
        | Some i -> i
        | None -> "story-" ^ string_of_int story.Types.id
      in
      let r =
        Fit.fit ~config ~pool ~id ?init:fit_init ?on_fit rng
          pre.pr_observation
      in
      (r.Fit.params, Some r.Fit.training_error)
  in
  let solution = Model.solve chosen ~phi:pre.pr_phi ~times:predict_times in
  finish pre ~params:chosen ~fit_error ~solution

let baseline_table exp ~baseline =
  Accuracy.table
    ~predict:(fun ~x ~t -> baseline ~x ~t)
    ~actual:(fun ~x ~t ->
      Density.at exp.observation ~distance:x ~time:t)
    ~distances:exp.observation.Density.distances
    ~times:exp.table.Accuracy.times
