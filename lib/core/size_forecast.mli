(** Final cascade-size forecasting via the DL model.

    A practical payoff of a calibrated density model: integrate the
    predicted density surface over the distance-group populations to
    forecast how many votes a story will eventually collect — the
    "popularity prediction" task of the cascade literature — from its
    first hours only. *)

type forecast = {
  story_id : int;
  predicted_votes : float;  (** at the forecast time *)
  actual_votes : int;       (** cast by the forecast time *)
  covered_fraction : float;
      (** share of the story's actual votes that fall inside the
          modelled distance groups (the model cannot see the rest) *)
}

val predict_votes :
  Pipeline.experiment -> at:float -> float
(** [predict_votes exp ~at] solves the experiment's model to [at] and
    returns [sum_x I(x, at)/100 * |U_x|]. *)

val evaluate :
  ?mode:Batch.mode -> ?config:Fit.config -> ?at:float ->
  Socialnet.Dataset.t -> stories:Socialnet.Types.story array -> forecast array
(** One forecast per story (stories whose pipeline fails are skipped);
    default [at = 50.] h and [In_sample 7] calibration.  Actual counts
    are votes cast by [at].  [config] overrides the fit configuration
    of the [In_sample]/[Out_of_sample] modes — long-horizon forecasts
    should constrain the growth floor (c near 0), because a persistent
    growth term saturates every group at K long before 50 h. *)

val correlation : forecast array -> float
(** Pearson correlation of predicted vs actual votes. *)

val mean_relative_error : forecast array -> float
(** Mean of |predicted - actual| / actual (actual counts restricted to
    the modelled groups' coverage is NOT applied; see
    [covered_fraction] to interpret bias). *)

val pp : Format.formatter -> forecast array -> unit
