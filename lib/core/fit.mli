(** Automatic calibration of DL-model parameters.

    The paper selects d, K and r(t) by hand (Section III.C); this
    module adds an automatic alternative so the pipeline can run on any
    story: multi-start Nelder--Mead over (d, K, a, b, c) with
    [r(t) = a e^{-b(t-1)} + c], minimising the mean relative error of
    the PDE prediction against the densities observed during an early
    fitting window.  Every objective evaluation is a full PDE solve;
    defaults keep a fit under a second. *)

type config = {
  fit_times : float array;
      (** observation times used for calibration (default [2; 3; 4] —
          strictly earlier than the t = 5, 6 cells it will be judged
          on) *)
  d_bounds : float * float;    (** default (1e-4, 0.6) *)
  k_headroom : float * float;
      (** K search range as multiples of the max observed density
          (default (1.02, 3.0)) *)
  a_bounds : float * float;    (** default (0., 3.) *)
  b_bounds : float * float;    (** default (0.05, 3.) *)
  c_bounds : float * float;    (** default (0., 1.) *)
  starts : int;                (** Nelder--Mead restarts (default 4) *)
  solver_nx : int;
      (** grid resolution used {e during} fitting (default 41 — final
          predictions still use the full-resolution solver) *)
  solver_dt : float;           (** fitting time step (default 0.05) *)
  solver_scheme : Model.scheme;
      (** PDE scheme used for the fitting solves {e and} the reported
          training error (default [Strang]).  Part of a fit's solver
          signature: the serving layer keys its fit cache on it, and
          the persistent store records it with every checkpoint. *)
}

val default_config : config

type result = {
  params : Params.t;
  training_error : float;
      (** mean relative error over the fitting cells *)
  evaluations : int;  (** number of PDE solves spent *)
}

(** Warm-start input for {!fit}: a prior optimum (e.g. a persisted
    checkpoint's parameters) or an explicit Nelder--Mead simplex of
    [n+1 = 6] vertices over [(d, K, a, b, c)]. *)
type init =
  | Init_params of Params.t
  | Init_simplex of float array array

(** A completed calibration, as seen by the {!set_on_fit} observer:
    everything a persistence layer needs to checkpoint the fit. *)
type event = {
  ev_id : string option;  (** caller-supplied label ([fit]'s [?id]) *)
  ev_phi : Initial.t;  (** the initial density the fit solved from *)
  ev_obs : Socialnet.Density.t;
  ev_config : config;
  ev_result : result;
}

val set_on_fit : (event -> unit) option -> unit
(** Install (or clear) the process-wide completed-fit observer.  It
    runs on the calling domain after each successful {!fit} — including
    the refits inside {!bootstrap} and fits triggered through
    [Pipeline.run] — and its exceptions are logged
    ([fit.on_fit_failed], warn) and swallowed: persistence trouble
    must not fail a fit that already succeeded.  [lib/store] installs
    its WAL appender here ([Store.attach_fit_hook]). *)

val on_fit_installed : unit -> bool

val fit :
  ?config:config -> ?pool:Parallel.Pool.t ->
  ?id:string -> ?init:init -> ?on_fit:(event -> unit) ->
  Numerics.Rng.t -> Socialnet.Density.t -> result
(** [fit rng obs] calibrates against [obs], whose first recorded time
    must be 1 (it provides phi).  The domain [\[l, L\]] is taken from
    the observed distance labels.

    [pool] (default sequential) distributes the Nelder--Mead restarts
    over worker domains.  Starting points are drawn from [rng] up
    front in the sequential order, and each restart is deterministic
    given its start, so the result is bit-identical for any pool size.

    [init] warm-starts restart 0 from a prior optimum
    ([Init_params], polished with a small local simplex) or an
    explicit simplex ([Init_simplex]) instead of the box-midpoint
    start.  Only restart 0 changes — the remaining starts still come
    from [rng] in the cold order, so a warm fit with [config.starts=1]
    is the cheapest online refit and larger [starts] values keep
    their exploration.  Warm fits typically spend far fewer objective
    [evaluations]; counted by the [fit.warm_starts] metric.

    [id] labels the completed-fit {!event}; [on_fit] overrides the
    global {!set_on_fit} observer for this call only.
    @raise Invalid_argument if [obs] lacks a t = 1 snapshot or has
    fewer than two distances, or if an [Init_simplex] has the wrong
    shape. *)

type uncertainty = {
  d_ci : float * float;
  k_ci : float * float;
  r1_ci : float * float;  (** CI on the initial growth rate r(1) *)
  fits : result array;    (** the individual bootstrap refits *)
}

val bootstrap :
  ?config:config -> ?pool:Parallel.Pool.t ->
  ?resamples:int -> ?confidence:float ->
  Numerics.Rng.t -> Socialnet.Density.t -> uncertainty
(** Residual-bootstrap parameter uncertainty: fit once, resample the
    per-cell residuals onto the fitted surface, refit (default 20
    resamples, 90 % percentile intervals).  Each resample costs a full
    {!fit}, so budget accordingly.  [pool] parallelises the restarts
    {e inside} each refit (the resamples themselves draw from the
    shared [rng] and stay sequential so the stream is unchanged). *)

val phi_of_obs : Socialnet.Density.t -> Initial.t
(** The initial density phi an observation defines: its t = 1 snapshot,
    interpolated over the distance axis (exposed for the {!Predictor}
    registry and tests).
    @raise Invalid_argument if the first recorded time is not 1. *)

val objective :
  ?scheme:Model.scheme -> ?nx:int -> ?dt:float ->
  ?workspace:Numerics.Pde.panel_workspace ->
  phi:Initial.t -> obs:Socialnet.Density.t -> fit_times:float array ->
  Params.t -> float
(** The raw fitting objective (exposed for tests and ablations): mean
    relative error of the model under the given parameters, [infinity]
    if the solve blows up on an expected failure ([Failure],
    [Invalid_argument], [Mat.Singular], [Not_found] — logged at warn
    level as [fit.objective_failed]).  Unexpected exceptions
    propagate.  [?workspace] threads a reusable panel workspace into
    {!Model.solve} (bit-identical results; {!fit} keeps one per
    restart so every Nelder--Mead evaluation reuses the solver
    buffers). *)

val set_objective_memo : bool -> unit
val objective_memo_enabled : unit -> bool
(** Process-wide default for the per-restart objective memo inside
    {!fit}: Nelder--Mead trial points that clamp onto an
    already-solved parameter vector reuse the cached objective value
    (bit-identical — it {e is} the previous float; counted by the
    [fit.objective_cache_hits] metric).  On by default; the CLI
    [--no-solver-cache] escape hatch turns it off.  Flip before
    fitting, not concurrently with one. *)
