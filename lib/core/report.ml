let metric_name = function
  | Pipeline.Hops _ -> "friendship hops"
  | Pipeline.Interest { grouping = Socialnet.Distance.Equal_width; _ } ->
    "shared interests (equal-width groups)"
  | Pipeline.Interest { grouping = Socialnet.Distance.Quantile; _ } ->
    "shared interests (quantile groups)"

let pct v =
  if Float.is_nan v then "–" else Printf.sprintf "%.2f%%" (100. *. v)

let buffer_add_table buf (table : Accuracy.table) =
  Buffer.add_string buf "| distance | average |";
  Array.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf " t = %g |" t))
    table.Accuracy.times;
  Buffer.add_string buf "\n|---|---|";
  Array.iter (fun _ -> Buffer.add_string buf "---|") table.Accuracy.times;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun ix x ->
      Buffer.add_string buf
        (Printf.sprintf "| %d | %s |" x (pct table.Accuracy.row_average.(ix)));
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf " %s |" (pct v)))
        table.Accuracy.cells.(ix);
      Buffer.add_char buf '\n')
    table.Accuracy.distances;
  Buffer.add_string buf
    (Printf.sprintf "| **overall** | **%s** |\n"
       (pct table.Accuracy.overall_average))

let render_core buf ?(title = "Diffusive logistic prediction report")
    (exp : Pipeline.experiment) =
  let story = exp.Pipeline.story in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  Buffer.add_string buf "## Setup\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "- story: id %d, initiator %d, topic %d, %d votes\n- distance \
        metric: %s\n- distance groups: %s (populations %s)\n\n"
       story.Socialnet.Types.id story.Socialnet.Types.initiator
       story.Socialnet.Types.topic
       (Socialnet.Types.story_vote_count story)
       (metric_name exp.Pipeline.metric)
       (String.concat ", "
          (Array.to_list
             (Array.map string_of_int
                exp.Pipeline.observation.Socialnet.Density.distances)))
       (String.concat ", "
          (Array.to_list
             (Array.map string_of_int
                exp.Pipeline.observation.Socialnet.Density.population))));
  Buffer.add_string buf "## Model\n\n";
  Buffer.add_string buf
    (Format.asprintf "- parameters: %a\n" Params.pp exp.Pipeline.params);
  (match exp.Pipeline.fit_error with
  | Some e ->
    Buffer.add_string buf
      (Printf.sprintf "- calibration training error: %.4f\n" e)
  | None -> Buffer.add_string buf "- parameters taken as given (no fit)\n");
  let phi_report = Initial.check exp.Pipeline.phi ~params:exp.Pipeline.params in
  Buffer.add_string buf
    (Format.asprintf "- phi admissibility: %a\n" Initial.pp_report phi_report);
  Buffer.add_string buf
    (Format.asprintf "- unique property (0 <= I <= K): %a\n"
       Properties.pp_verdict
       (Properties.bounds exp.Pipeline.solution));
  Buffer.add_string buf
    (Format.asprintf "- strictly increasing property: %a\n\n"
       Properties.pp_verdict
       (Properties.monotone_in_time exp.Pipeline.solution));
  Buffer.add_string buf "## Prediction accuracy\n\n";
  buffer_add_table buf exp.Pipeline.table

let render ?title exp =
  let buf = Buffer.create 2048 in
  render_core buf ?title exp;
  Buffer.contents buf

let render_with_baselines ?title exp ~baselines =
  let buf = Buffer.create 4096 in
  render_core buf ?title exp;
  Buffer.add_string buf "\n## Baseline comparison\n\n";
  Buffer.add_string buf "| model | overall accuracy |\n|---|---|\n";
  Buffer.add_string buf
    (Printf.sprintf "| DL | %s |\n"
       (pct exp.Pipeline.table.Accuracy.overall_average));
  List.iter
    (fun (name, predictor) ->
      let table = Pipeline.baseline_table exp ~baseline:predictor in
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s |\n" name
           (pct table.Accuracy.overall_average)))
    baselines;
  Buffer.contents buf

let save ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)
