(** Plot-ready exports of experiment data.

    Writes tab-separated files (one header line, then rows) that load
    directly into gnuplot / pandas / R, so the figures the bench prints
    as text can be re-drawn graphically.  All writers create or
    truncate their target file. *)

val write_density_series : Socialnet.Density.t -> path:string -> unit
(** Long format: [time  distance  density  population] — Figs 3/5. *)

val write_profiles : Socialnet.Density.t -> path:string -> unit
(** Wide format: one row per time, one column per distance — Fig 4. *)

val write_distance_distribution :
  (int * float) array -> path:string -> unit
(** [distance  fraction] — Fig 2. *)

val write_growth_rate :
  Growth.t -> t0:float -> t1:float -> samples:int -> path:string -> unit
(** [t  r] — Fig 6. *)

val write_predicted_vs_actual :
  Pipeline.experiment -> path:string -> unit
(** Long format: [time  distance  actual  predicted] — Fig 7. *)

val write_accuracy_table : Accuracy.table -> path:string -> unit
(** [distance  average  t2 ... tn] with accuracies in percent and [NA]
    for undefined cells — Tables I/II. *)

val write_solution_surface :
  ?samples_x:int -> Model.solution -> path:string -> unit
(** Dense [x  t  density] triplets of the solved surface (default 101
    x-samples at each recorded time) — for heatmaps. *)

val export_experiment :
  Pipeline.experiment -> dir:string -> prefix:string -> string list
(** Writes the standard bundle (density series, profiles,
    predicted-vs-actual, accuracy table, surface) into [dir] (created
    if missing) and returns the written paths. *)
