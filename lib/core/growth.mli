(** Growth-rate functions r(t) for the diffusive logistic model.

    The paper observes (Fig. 4) that density increments shrink as a
    story ages and therefore makes r a decreasing function of time; its
    two published instances are exponential-decay forms (Eq. 7 for the
    friendship-hop experiment, and [1.6 e^{-(t-1)} + 0.1] for shared
    interests). *)

type t =
  | Constant of float
  | Exp_decay of { a : float; b : float; c : float }
      (** [r(t) = a e^{-b (t - 1)} + c]; time is measured from the
          paper's initial observation hour t = 1 *)

val eval : t -> float -> float

val integral : t -> t0:float -> t1:float -> float
(** Exact integral of [r] over [\[t0, t1\]] (closed form in both
    cases). *)

val paper_hops : t
(** Eq. 7: [1.4 e^{-1.5 (t-1)} + 0.25] (Fig. 6). *)

val paper_interest : t
(** The shared-interest experiment's rate: [1.6 e^{-(t-1)} + 0.1]. *)

val is_decreasing : t -> bool
(** True when [r] is (weakly) decreasing in time, the paper's modeling
    assumption. *)

val pp : Format.formatter -> t -> unit
