(** Cross-story parameter transfer.

    The paper motivates the DL model with "help predict the spreading
    patterns of similar information in the future" — i.e. parameters
    learned on one story should carry over to another.  This module
    tests exactly that: calibrate on story i, predict story j (with j's
    own initial profile), for every ordered pair. *)

type matrix = {
  story_ids : int array;
  accuracy : float array array;
      (** [accuracy.(i).(j)]: params fitted on story i, applied to
          story j; [nan] when either pipeline run failed *)
}

val cross_apply :
  ?metric:Pipeline.metric ->
  ?fit_times:float array ->
  Numerics.Rng.t ->
  Socialnet.Dataset.t ->
  stories:Socialnet.Types.story array ->
  matrix
(** Default metric [Pipeline.hops], default fit window t = 2..6.  Each
    story is fitted once; each (i, j) cell is one pipeline run with
    [Given] parameters. *)

val diagonal_advantage : matrix -> float
(** Mean of (own-story accuracy - mean accuracy of other stories'
    parameters on that story) over stories where both are defined —
    how much story-specific tuning buys over transfer. *)

val pp : Format.formatter -> matrix -> unit
