open Socialnet

type forecast = {
  story_id : int;
  predicted_votes : float;
  actual_votes : int;
  covered_fraction : float;
}

let predict_votes (exp : Pipeline.experiment) ~at =
  let obs = exp.Pipeline.observation in
  let sol =
    Model.solve exp.Pipeline.params ~phi:exp.Pipeline.phi ~times:[| at |]
  in
  let total = ref 0. in
  Array.iteri
    (fun ix x ->
      (* a density is a percentage of the group: cap at 100 *)
      let density =
        Float.min 100. (Model.predict sol ~x:(float_of_int x) ~t:at)
      in
      total :=
        !total
        +. (density /. 100. *. float_of_int obs.Density.population.(ix)))
    obs.Density.distances;
  !total

let coverage (exp : Pipeline.experiment) ~at =
  let story = exp.Pipeline.story in
  let assignment = exp.Pipeline.assignment in
  let distances = exp.Pipeline.observation.Density.distances in
  let max_distance = distances.(Array.length distances - 1) in
  let votes = Types.votes_before story at in
  if Array.length votes = 0 then 0.
  else begin
    let covered =
      Array.fold_left
        (fun acc (v : Types.vote) ->
          let x = assignment.(v.Types.user) in
          if x >= 1 && x <= max_distance then acc + 1 else acc)
        0 votes
    in
    float_of_int covered /. float_of_int (Array.length votes)
  end

let evaluate ?(mode = Batch.In_sample 7) ?config ?(at = 50.) ds ~stories =
  let results = ref [] in
  Array.iter
    (fun story ->
      let params =
        match mode with
        | Batch.Paper_params -> Pipeline.Paper
        | Batch.In_sample seed ->
          let base =
            { Fit.default_config with Fit.fit_times = [| 2.; 3.; 4.; 5.; 6. |] }
          in
          Pipeline.Auto
            {
              rng = Numerics.Rng.create (seed + story.Types.id);
              config = Option.value config ~default:base;
            }
        | Batch.Out_of_sample seed ->
          Pipeline.Auto
            {
              rng = Numerics.Rng.create (seed + story.Types.id);
              config = Option.value config ~default:Fit.default_config;
            }
      in
      match Pipeline.run ~params ds ~story ~metric:Pipeline.hops with
      | exp ->
        let predicted = predict_votes exp ~at in
        let actual = Array.length (Types.votes_before story at) in
        results :=
          {
            story_id = story.Types.id;
            predicted_votes = predicted;
            actual_votes = actual;
            covered_fraction = coverage exp ~at;
          }
          :: !results
      | exception _ -> ())
    stories;
  Array.of_list (List.rev !results)

let correlation forecasts =
  let predicted = Array.map (fun f -> f.predicted_votes) forecasts in
  let actual = Array.map (fun f -> float_of_int f.actual_votes) forecasts in
  Numerics.Stats.pearson predicted actual

let mean_relative_error forecasts =
  let predicted = Array.map (fun f -> f.predicted_votes) forecasts in
  let actual = Array.map (fun f -> float_of_int f.actual_votes) forecasts in
  Numerics.Stats.mape predicted actual

let pp ppf forecasts =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun f ->
      Format.fprintf ppf
        "story %-5d predicted %8.0f votes, actual %6d (coverage %.0f%%)@,"
        f.story_id f.predicted_votes f.actual_votes
        (100. *. f.covered_fraction))
    forecasts;
  Format.fprintf ppf "@]"
