open Numerics

let fisher_speed ~d ~r =
  if d < 0. || r < 0. then invalid_arg "Wavefront.fisher_speed: negative input";
  2. *. sqrt (r *. d)

let instantaneous_speed params ~t =
  fisher_speed ~d:params.Params.d ~r:(Growth.eval params.Params.r t)

let expected_position params ~x0 ~t =
  if t < 1. then invalid_arg "Wavefront.expected_position: t >= 1";
  (* integral of 2 sqrt(d r(s)) ds over [1, t], by Simpson *)
  let speed s = instantaneous_speed params ~t:s in
  let travelled =
    if t = 1. then 0. else Quadrature.simpson speed ~a:1. ~b:t ~n:64
  in
  Float.min params.Params.big_l (x0 +. travelled)

type crossing = { time : float; position : float option }

(* Largest x where the (assumed eventually-decaying) profile crosses the
   threshold from above. *)
let crossing_position xs profile threshold =
  let n = Array.length xs in
  let found = ref None in
  for i = n - 2 downto 0 do
    if !found = None && profile.(i) >= threshold && profile.(i + 1) < threshold
    then begin
      let w = (profile.(i) -. threshold) /. (profile.(i) -. profile.(i + 1)) in
      found := Some (xs.(i) +. (w *. (xs.(i + 1) -. xs.(i))))
    end
  done;
  match !found with
  | Some _ as p -> p
  | None ->
    (* whole profile above the threshold: the front has exited right *)
    if Array.for_all (fun v -> v >= threshold) profile then
      Some xs.(n - 1)
    else None

let track sol ~threshold =
  let { Pde.xs; ts; values } = sol.Model.pde in
  Array.mapi
    (fun it t ->
      { time = t; position = crossing_position xs values.(it) threshold })
    ts

let empirical_speed crossings =
  let defined =
    Array.to_list crossings
    |> List.filter_map (fun c ->
           match c.position with Some p -> Some (c.time, p) | None -> None)
  in
  match defined with
  | [] | [ _ ] -> None
  | points ->
    let ts = Array.of_list (List.map fst points) in
    let ps = Array.of_list (List.map snd points) in
    if Stats.variance ts = 0. then None
    else begin
      let slope, _, _ = Stats.linear_regression ts ps in
      Some slope
    end
