(** Comparison baselines for the DL model.

    The paper evaluates the DL model in isolation; these baselines
    (used by the ablation bench) quantify what the diffusion term
    actually buys:

    - {b per-distance logistic} — the DL model with d = 0: each
      distance group evolves by an independent logistic fitted to its
      own early observations.  If diffusion mattered not at all, this
      would match DL.
    - {b persistence} — density never changes after the first hour.
    - {b linear trend} — straight-line extrapolation of the first two
      observations, clamped at 0. *)

type predictor = x:int -> t:float -> float

val persistence : Socialnet.Density.t -> predictor
(** Requires a t = 1 snapshot. *)

val linear_trend : Socialnet.Density.t -> fit_times:float array -> predictor
(** OLS line per distance through the observations at t = 1 and the
    [fit_times]; clamped below at 0. *)

val logistic_per_distance :
  Socialnet.Density.t -> fit_times:float array -> predictor
(** Fits (r, K) per distance by Nelder--Mead on the closed-form
    logistic (initial value = density at t = 1) against the densities
    at [fit_times].  Groups with zero initial density predict the
    linear trend instead (a logistic from 0 stays 0). *)

val gompertz_per_distance :
  Socialnet.Density.t -> fit_times:float array -> predictor
(** Like {!logistic_per_distance} with the Gompertz sigmoid
    [N(t) = K exp(ln(n0/K) e^{-r (t-1)})] — the same saturating family
    but with an asymmetric inflection at [K/e], often a better match
    for slowly-saturating deep distance groups.  Groups with zero
    initial density fall back to the linear trend. *)
