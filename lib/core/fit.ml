open Numerics

type config = {
  fit_times : float array;
  d_bounds : float * float;
  k_headroom : float * float;
  a_bounds : float * float;
  b_bounds : float * float;
  c_bounds : float * float;
  starts : int;
  solver_nx : int;
  solver_dt : float;
  solver_scheme : Model.scheme;
}

let default_config =
  {
    fit_times = [| 2.; 3.; 4. |];
    d_bounds = (1e-4, 0.6);
    k_headroom = (1.02, 3.0);
    a_bounds = (0., 3.);
    b_bounds = (0.05, 3.);
    c_bounds = (0., 1.);
    starts = 4;
    solver_nx = 41;
    solver_dt = 0.05;
    solver_scheme = Model.Strang;
  }

type result = {
  params : Params.t;
  training_error : float;
  evaluations : int;
}

type init =
  | Init_params of Params.t
  | Init_simplex of float array array

let phi_of_obs (obs : Socialnet.Density.t) =
  let t1 = obs.Socialnet.Density.times.(0) in
  if Float.abs (t1 -. 1.) > 1e-9 then
    invalid_arg "Fit: observations must start at t = 1 (they define phi)";
  let xs = Array.map float_of_int obs.Socialnet.Density.distances in
  let densities = Array.map (fun row -> row.(0)) obs.Socialnet.Density.density in
  Initial.of_observations ~xs ~densities

let objective ?(scheme = Model.Strang) ?(nx = 101) ?(dt = 0.01) ?workspace
    ~phi ~obs ~fit_times params =
  try
    let sol =
      Model.solve ~scheme ~nx ~dt ?workspace params ~phi ~times:fit_times
    in
    let predict = Model.predictor sol in
    let err = ref 0. and count = ref 0 in
    Array.iter
      (fun x ->
        Array.iter
          (fun t ->
            let actual = Socialnet.Density.at obs ~distance:x ~time:t in
            if actual > 0. then begin
              let predicted = predict ~x:(float_of_int x) ~t in
              err := !err +. (Float.abs (predicted -. actual) /. actual);
              incr count
            end)
          fit_times)
      obs.Socialnet.Density.distances;
    if !count = 0 then infinity else !err /. float_of_int !count
  with
  | (Failure _ | Invalid_argument _ | Mat.Singular | Not_found) as e ->
    (* expected blow-ups of a bad trial point (diverged solve, singular
       operator, out-of-range query); anything else is a bug and must
       propagate *)
    Obs.Log.warn "fit.objective_failed" ~fields:(fun () ->
        [ Obs.Log.str "exn" (Printexc.to_string e) ]);
    infinity

(* Nelder--Mead re-evaluates clamped boundary points often (every
   vertex pushed past the box collapses onto its projection), so the
   objective part of the penalised function is memoized per restart.
   Process-wide toggle for the CLI [--no-solver-cache] hatch. *)
let memo_enabled = ref true
let set_objective_memo b = memo_enabled := b
let objective_memo_enabled () = !memo_enabled
let memo_capacity = 512

(* --- completed-fit hook (persistence integration) ---

   The store layer (lib/store) installs a process-wide observer here so
   every completed fit can be made durable without this module knowing
   anything about disks.  A per-call [?on_fit] overrides the global
   hook; hook failures are logged and swallowed — persistence troubles
   must not fail a fit that already succeeded. *)

type event = {
  ev_id : string option;
  ev_phi : Initial.t;
  ev_obs : Socialnet.Density.t;
  ev_config : config;
  ev_result : result;
}

let global_on_fit : (event -> unit) option ref = ref None
let set_on_fit h = global_on_fit := h
let on_fit_installed () = Option.is_some !global_on_fit

let notify_fit ?on_fit ev =
  match (match on_fit with Some _ -> on_fit | None -> !global_on_fit) with
  | None -> ()
  | Some h -> (
    try h ev
    with e ->
      Obs.Log.warn "fit.on_fit_failed" ~fields:(fun () ->
          [ Obs.Log.str "exn" (Printexc.to_string e) ]))

let m_objective_cache_hits = Obs.Metrics.counter "fit.objective_cache_hits"
let m_fits = Obs.Metrics.counter "fit.fits"
let m_warm_starts = Obs.Metrics.counter "fit.warm_starts"
let m_restarts = Obs.Metrics.counter "fit.restarts"
let m_nm_iterations = Obs.Metrics.counter "fit.nm_iterations"
let m_objective_evals = Obs.Metrics.counter "fit.objective_evals"
let m_bootstrap_resamples = Obs.Metrics.counter "fit.bootstrap_resamples"

let fit ?(config = default_config) ?(pool = Parallel.Pool.sequential) ?id
    ?init ?on_fit rng (obs : Socialnet.Density.t) =
 Obs.Span.with_span "fit.fit" @@ fun () ->
  let distances = obs.Socialnet.Density.distances in
  if Array.length distances < 2 then
    invalid_arg "Fit: need at least two distance groups";
  let phi = phi_of_obs obs in
  let max_density =
    Array.fold_left
      (fun acc row -> Array.fold_left Float.max acc row)
      0. obs.Socialnet.Density.density
  in
  let l = float_of_int distances.(0) in
  let big_l = float_of_int distances.(Array.length distances - 1) in
  (* densities are percentages: K above ~100 is unphysical, whatever
     the headroom multiplier says *)
  let k_lo = Float.min 100. (fst config.k_headroom *. max_density) in
  let k_hi = Float.max (k_lo +. 1e-6)
      (Float.min 105. (snd config.k_headroom *. max_density))
  in
  let lo = [| fst config.d_bounds; k_lo; fst config.a_bounds;
              fst config.b_bounds; fst config.c_bounds |] in
  let hi = [| snd config.d_bounds; k_hi; snd config.a_bounds;
              snd config.b_bounds; snd config.c_bounds |] in
  let clamp i v = Float.max lo.(i) (Float.min hi.(i) v) in
  let of_vector v =
    let d = clamp 0 v.(0) and k = clamp 1 v.(1) in
    let a = clamp 2 v.(2) and b = clamp 3 v.(3) and c = clamp 4 v.(4) in
    Params.make ~d ~k ~r:(Growth.Exp_decay { a; b; c }) ~l ~big_l
  in
  let starts = Stdlib.max 1 config.starts in
  let penalty_of v =
    (* quadratic penalty keeps the simplex near the box; the params
       themselves are always clamped into it *)
    let penalty = ref 0. in
    Array.iteri
      (fun i x ->
        let excess = Float.max 0. (Float.max (lo.(i) -. x) (x -. hi.(i))) in
        penalty := !penalty +. (excess *. excess))
      v;
    !penalty
  in
  let objective_at ?workspace ~d ~k ~a ~b ~c () =
    objective ~scheme:config.solver_scheme ~nx:config.solver_nx
      ~dt:config.solver_dt ?workspace ~phi ~obs ~fit_times:config.fit_times
      (Params.make ~d ~k ~r:(Growth.Exp_decay { a; b; c }) ~l ~big_l)
  in
  (* The PDE-solve part of the penalised function depends only on the
     clamped parameter vector, so each restart keeps a private bounded
     memo keyed on it (private per restart: worker domains share no
     mutable state).  A hit returns the previously computed float, so
     the optimisation path is bit-identical with the memo on or off —
     only the solve is skipped.  The penalty is recomputed every call
     because it depends on the unclamped vector. *)
  let make_f () =
    let tbl = if !memo_enabled then Some (Hashtbl.create 64) else None in
    (* One panel workspace per restart, captured by the closure: the
       pool hands a restart to exactly one worker domain, so the
       workspace is domain-private, and every objective evaluation of
       the restart's Nelder--Mead loop reuses the same solver buffers
       (counted by pde.panel_reuses).  Reuse is bit-invisible: the
       panel path is bit-identical to the scalar solve. *)
    let workspace = Pde.panel_workspace () in
    fun v ->
      let d = clamp 0 v.(0) and k = clamp 1 v.(1) in
      let a = clamp 2 v.(2) and b = clamp 3 v.(3) and c = clamp 4 v.(4) in
      let base =
        match tbl with
        | None -> objective_at ~workspace ~d ~k ~a ~b ~c ()
        | Some tbl -> (
          let key = (d, k, a, b, c) in
          match Hashtbl.find_opt tbl key with
          | Some cached ->
            Obs.Metrics.incr m_objective_cache_hits;
            cached
          | None ->
            let value = objective_at ~workspace ~d ~k ~a ~b ~c () in
            if Hashtbl.length tbl < memo_capacity then
              Hashtbl.add tbl key value;
            value)
      in
      base +. penalty_of v
  in
  (* Starting points are drawn sequentially up front, in the same order
     the sequential multi-start used, so the rng stream (and therefore
     the result) is independent of the pool size. *)
  let n = Array.length lo in
  let x0s = Array.make starts [||] in
  x0s.(0) <- Array.init n (fun i -> (lo.(i) +. hi.(i)) /. 2.);
  for k = 1 to starts - 1 do
    x0s.(k) <- Array.init n (fun i -> Rng.uniform rng lo.(i) hi.(i))
  done;
  (* A warm start replaces restart 0's midpoint x0 (the only start not
     drawn from [rng]), so the rng stream — and every other restart —
     is bit-identical to a cold fit with the same seed. *)
  let vector_of_params (p : Params.t) =
    let a, b, c =
      match p.Params.r with
      | Growth.Exp_decay { a; b; c } -> (a, b, c)
      | Growth.Constant v ->
        (0., (fst config.b_bounds +. snd config.b_bounds) /. 2., v)
    in
    Array.mapi (fun i x -> clamp i x) [| p.Params.d; p.Params.k; a; b; c |]
  in
  let warm_simplex =
    match init with
    | None -> None
    | Some (Init_simplex vs) ->
      if Array.length vs <> n + 1
         || Array.exists (fun v -> Array.length v <> n) vs
      then
        invalid_arg
          (Printf.sprintf "Fit: init simplex must be %d vertices of length %d"
             (n + 1) n);
      x0s.(0) <- Array.copy vs.(0);
      Some (Array.map Array.copy vs)
    | Some (Init_params p) ->
      (* a local simplex around the prior optimum: small edges so the
         polish stays near the checkpoint and converges in few solves *)
      let v0 = vector_of_params p in
      x0s.(0) <- v0;
      let edge i = Float.max 0.02 (0.02 *. Float.abs v0.(i)) in
      Some
        (Array.init (n + 1) (fun k ->
             let v = Array.copy v0 in
             if k > 0 then v.(k - 1) <- v.(k - 1) +. edge (k - 1);
             v))
  in
  if warm_simplex <> None then Obs.Metrics.incr m_warm_starts;
  (* Restarts may run on separate domains; each reports its own
     evaluation count through [Optimize.result], so the sum below is
     exact and race-free.  Each restart is deterministic given its x0,
     so the counts are too. *)
  let run_restart k =
    Obs.Span.with_span "fit.restart"
      ~attrs:(fun () -> [ Obs.Log.int "restart" k ])
      (fun () ->
        let f = make_f () in
        let simplex = if k = 0 then warm_simplex else None in
        let r =
          Optimize.nelder_mead ~tol:1e-6 ~max_iter:250 ?simplex f ~x0:x0s.(k)
        in
        if simplex <> None then
          Obs.Span.add_attr "warm" (Obs.Log.Bool true);
        Obs.Span.add_attr "iterations" (Obs.Log.Int r.Optimize.iterations);
        Obs.Span.add_attr "objective" (Obs.Log.Float r.Optimize.f);
        Obs.Span.add_attr "spread" (Obs.Log.Float r.Optimize.spread);
        Obs.Metrics.incr m_restarts;
        Obs.Metrics.incr ~by:r.Optimize.iterations m_nm_iterations;
        Obs.Metrics.incr ~by:r.Optimize.evaluations m_objective_evals;
        Obs.Log.debug "fit.restart" ~fields:(fun () ->
            [
              Obs.Log.int "restart" k;
              Obs.Log.int "iterations" r.Optimize.iterations;
              Obs.Log.int "evaluations" r.Optimize.evaluations;
              Obs.Log.float "objective" r.Optimize.f;
              Obs.Log.float "spread" r.Optimize.spread;
              Obs.Log.bool "converged" r.Optimize.converged;
            ]);
        r)
  in
  let runs =
    Parallel.Pool.parallel_map pool run_restart (Array.init starts Fun.id)
  in
  let best = ref runs.(0) in
  Array.iter (fun r -> if r.Optimize.f < !best.Optimize.f then best := r) runs;
  let params = of_vector !best.Optimize.x in
  let evaluations =
    Array.fold_left (fun acc r -> acc + r.Optimize.evaluations) 0 runs
  in
  let training_error =
    objective ~scheme:config.solver_scheme ~phi ~obs
      ~fit_times:config.fit_times params
  in
  Obs.Metrics.incr m_fits;
  Obs.Log.debug "fit.done" ~fields:(fun () ->
      [
        Obs.Log.int "starts" starts;
        Obs.Log.bool "warm" (warm_simplex <> None);
        Obs.Log.int "evaluations" evaluations;
        Obs.Log.float "best_objective" !best.Optimize.f;
        Obs.Log.float "training_error" training_error;
      ]);
  let result = { params; training_error; evaluations } in
  notify_fit ?on_fit
    { ev_id = id; ev_phi = phi; ev_obs = obs; ev_config = config;
      ev_result = result };
  result

type uncertainty = {
  d_ci : float * float;
  k_ci : float * float;
  r1_ci : float * float;
  fits : result array;
}

let bootstrap ?(config = default_config) ?(pool = Parallel.Pool.sequential)
    ?(resamples = 20) ?(confidence = 0.9) rng (obs : Socialnet.Density.t) =
 Obs.Span.with_span "fit.bootstrap"
   ~attrs:(fun () -> [ Obs.Log.int "resamples" resamples ])
 @@ fun () ->
  let base = fit ~config ~pool rng obs in
  let phi = phi_of_obs obs in
  let times = obs.Socialnet.Density.times in
  let sol = Model.solve base.params ~phi ~times in
  (* residuals of the base fit at every observed cell (t > 1) *)
  let fitted ix it =
    Model.predict sol
      ~x:(float_of_int obs.Socialnet.Density.distances.(ix))
      ~t:times.(it)
  in
  let residuals = ref [] in
  Array.iteri
    (fun ix row ->
      Array.iteri
        (fun it v -> if it > 0 then residuals := (v -. fitted ix it) :: !residuals)
        row)
    obs.Socialnet.Density.density;
  let residuals = Array.of_list !residuals in
  let n_res = Array.length residuals in
  if n_res = 0 then invalid_arg "Fit.bootstrap: no cells beyond t = 1";
  let refits =
    Array.init resamples (fun _ ->
        Obs.Metrics.incr m_bootstrap_resamples;
        let density =
          Array.mapi
            (fun ix row ->
              Array.mapi
                (fun it v ->
                  if it = 0 then v
                  else
                    Float.max 0.
                      (fitted ix it +. residuals.(Rng.int rng n_res)))
                row)
            obs.Socialnet.Density.density
        in
        fit ~config ~pool rng { obs with Socialnet.Density.density })
  in
  let ci of_params =
    let values = Array.map (fun r -> of_params r.params) refits in
    let alpha = (1. -. confidence) /. 2. in
    (Stats.quantile values alpha, Stats.quantile values (1. -. alpha))
  in
  {
    d_ci = ci (fun p -> p.Params.d);
    k_ci = ci (fun p -> p.Params.k);
    r1_ci = ci (fun p -> Growth.eval p.Params.r 1.);
    fits = refits;
  }
