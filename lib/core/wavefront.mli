(** Travelling-wave analysis of the diffusive logistic equation.

    With constant growth rate r the DL equation is exactly Fisher's
    equation (Fisher--KPP), whose fronts travel at the minimum speed
    [c* = 2 sqrt(r d)].  Information spreading then has an intrinsic
    "speed" in distance-per-hour, which is how the PDE literature (and
    the authors' follow-up work) quantifies how fast influence expands
    outward from the source.

    For the time-varying rates used in this paper the instantaneous
    Fisher speed is [2 sqrt(r(t) d)]; [expected_position] integrates
    it.  [track] measures the empirical front in a computed solution as
    the level-crossing position of a density threshold. *)

val fisher_speed : d:float -> r:float -> float
(** [2 sqrt (r d)], the asymptotic front speed of Fisher's equation.
    Requires [d >= 0] and [r >= 0]. *)

val instantaneous_speed : Params.t -> t:float -> float
(** Fisher speed with the growth rate evaluated at [t]. *)

val expected_position :
  Params.t -> x0:float -> t:float -> float
(** Front position predicted by integrating the instantaneous speed
    from the initial time (t = 1) starting at [x0]; clamped at the
    domain's right edge. *)

type crossing = {
  time : float;
  position : float option;
      (** level-crossing location, [None] when the whole profile is
          above ([Some big_l] conceptually) or below the threshold *)
}

val track : Model.solution -> threshold:float -> crossing array
(** [track sol ~threshold] finds, for each recorded snapshot, the
    largest x where the density profile crosses [threshold] (linear
    interpolation between grid nodes), assuming a profile that decays
    towards the far boundary.  [position = None] when the profile never
    reaches the threshold. *)

val empirical_speed : crossing array -> float option
(** OLS slope of position against time over the snapshots where the
    front is defined; [None] when fewer than two crossings exist. *)
