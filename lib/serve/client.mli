(** A minimal blocking HTTP/1.1 client for loopback use — the test
    suite and the serve bench talk to {!Server} with it.  One request
    per connection, matching the server's [Connection: close]
    discipline. *)

type response = {
  status : int;
  headers : (string * string) list;  (** names lower-cased *)
  body : string;
}

val request :
  ?body:string ->
  ?headers:(string * string) list ->
  ?timeout:float ->
  port:int ->
  string ->
  string ->
  (response, string) result
(** [request ~port meth target] connects to [127.0.0.1:port], sends
    one request (with [Content-Length] when [body] is given, plus any
    extra [headers]) and reads the response to EOF.  [timeout]
    (default 10 s) bounds each socket read and write.  Errors (refused
    connection, timeout, malformed status line) come back as
    [Error msg] — never an exception. *)

val request_raw :
  ?timeout:float -> port:int -> string -> (response, string) result
(** Send [bytes] verbatim and read the response — for exercising the
    server's handling of malformed or oversized requests. *)
