(** A minimal blocking HTTP/1.1 client for loopback use — the test
    suite and the serve bench talk to {!Server} with it.

    Two modes: one-shot {!request} (sends [Connection: close], reads to
    EOF) and persistent connections ({!connect} / {!request_on}) that
    ride the server's HTTP/1.1 keep-alive, framing each response by its
    [Content-Length] so many requests share one socket.  {!send_request}
    and {!recv_response} are exposed separately so a caller can
    pipeline: write several requests back-to-back, then collect the
    responses in order. *)

type response = {
  status : int;
  headers : (string * string) list;  (** names lower-cased *)
  body : string;
}

(** {2 Persistent connections} *)

type conn
(** One open keep-alive connection.  Not thread-safe; one user at a
    time. *)

val connect : ?timeout:float -> port:int -> unit -> (conn, string) result
(** Open a connection to [127.0.0.1:port].  [timeout] (default 10 s)
    bounds each subsequent socket read and write. *)

val request_on :
  conn ->
  ?body:string ->
  ?headers:(string * string) list ->
  string ->
  string ->
  (response, string) result
(** [request_on conn meth target] sends one request on the open
    connection (no [Connection: close] — the server keeps it alive)
    and reads its response.  Bytes past the response stay buffered for
    the next call. *)

val send_request :
  conn ->
  ?body:string ->
  ?headers:(string * string) list ->
  string ->
  string ->
  (unit, string) result
(** Write one request without waiting for its response — pair with
    {!recv_response} to pipeline. *)

val recv_response : conn -> (response, string) result
(** Read the next response in order.  [EINTR]-safe (a stray signal
    never truncates a read). *)

val close : conn -> unit
(** Close the socket.  Idempotent. *)

(** {2 One-shot requests} *)

val request :
  ?body:string ->
  ?headers:(string * string) list ->
  ?timeout:float ->
  port:int ->
  string ->
  string ->
  (response, string) result
(** [request ~port meth target] connects, sends one request (with
    [Content-Length] when [body] is given, plus any extra [headers]
    and [Connection: close]) and reads the response to EOF.  Errors
    (refused connection, timeout, malformed status line) come back as
    [Error msg] — never an exception. *)

val request_raw :
  ?timeout:float -> port:int -> string -> (response, string) result
(** Send [bytes] verbatim and read the response to EOF — for
    exercising the server's handling of malformed or oversized
    requests. *)
