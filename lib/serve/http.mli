(** HTTP/1.1 wire protocol over a Unix file descriptor.

    Just enough of RFC 9112 for the serving layer: one request per
    connection (every response carries [Connection: close]), bounded
    header and body sizes, and socket-level read/write timeouts set by
    the server via [SO_RCVTIMEO]/[SO_SNDTIMEO].  No TLS, no chunked
    transfer encoding, no keep-alive — the load balancer's job, not
    the model server's. *)

type request = {
  meth : string;  (** verb, upper-case as received (["GET"], ["POST"]) *)
  path : string;  (** decoded path without the query string *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  headers : (string * string) list;  (** names lower-cased *)
  body : string;
}

type read_error =
  | Closed  (** peer vanished before a full request arrived *)
  | Timeout  (** the socket read timeout expired mid-request *)
  | Too_large of string  (** header block or body over its bound *)
  | Bad of string  (** malformed request line, header or length *)

val read_request :
  Unix.file_descr -> max_header:int -> max_body:int ->
  (request, read_error) result
(** Read one request.  The header block (request line + headers) is
    bounded by [max_header] bytes and the body by [max_body]; a
    [Content-Length] over the bound fails fast with [Too_large]
    without reading the body. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

val response :
  ?content_type:string -> ?extra_headers:(string * string) list ->
  int -> string -> response
(** [response status body] with the standard reason phrase for
    [status] and content type [text/plain] unless overridden. *)

val json_response : int -> Tiny_json.t -> response

val write_response : Unix.file_descr -> response -> bool
(** Serialise and send (adds [Content-Length] and
    [Connection: close]).  Returns [false] if the peer closed or the
    write timeout expired — the caller just closes the socket either
    way. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val status_reason : int -> string
