(** HTTP/1.1 wire protocol for the serving layer.

    Just enough of RFC 9112 for the model server: an {e incremental}
    request parser that the event loop feeds raw socket bytes (complete
    requests come out one at a time; bytes past a request's end are
    preserved as the start of the next pipelined request), bounded
    header and body sizes, [Connection:]-header keep-alive semantics on
    both 1.0 and 1.1, and response serialization.  No TLS, no chunked
    transfer encoding — the load balancer's job, not the model
    server's. *)

type request = {
  meth : string;  (** verb, upper-case as received (["GET"], ["POST"]) *)
  path : string;
      (** decoded path without the query string ([+] is {e not} a space
          here — that rule is query-string-only) *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  headers : (string * string) list;  (** names lower-cased *)
  body : string;
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] as received *)
}

type read_error =
  | Closed  (** peer vanished before a full request arrived *)
  | Timeout  (** a blocking-socket read timeout expired *)
  | Too_large of string  (** header block or body over its bound *)
  | Bad of string  (** malformed request line, header or length *)

val keep_alive : request -> bool
(** Whether the connection should persist after this request:
    [Connection: close] forces false and [Connection: keep-alive]
    forces true on either version (comma-separated token lists are
    honoured, [close] winning); absent both, HTTP/1.1 persists and
    HTTP/1.0 does not. *)

(** {2 Incremental parsing} *)

type parser
(** Accumulates raw bytes from one connection and yields complete
    requests.  The header-terminator scan resumes where the previous
    chunk's scan stopped, so a header block arriving in many small
    chunks costs O(bytes), not O(bytes²). *)

val parser : max_header:int -> max_body:int -> parser
(** A fresh parser.  The header block (request line + headers) is
    bounded by [max_header] bytes and the body by [max_body]; a
    [Content-Length] over the bound fails with [Too_large] without
    waiting for the body. *)

val parser_feed : parser -> Bytes.t -> int -> int -> unit
(** [parser_feed p buf off len] appends [len] bytes of fresh socket
    input. *)

val parser_next :
  parser -> [ `Request of request | `More | `Error of read_error ]
(** The next complete request, [`More] if the buffered bytes do not yet
    finish one, or [`Error] ([Bad] / [Too_large]) if they can never
    parse — the connection should answer and close.  After a
    [`Request], call again: pipelined followers may already be
    buffered.  Duplicate [Content-Length] headers are rejected as
    [Bad] (request-smuggling bait), as are unknown HTTP versions and
    malformed request lines. *)

val parser_partial : parser -> bool
(** Whether a partially received request sits in the buffer — i.e. the
    peer owes us bytes.  Used to distinguish an idle keep-alive
    connection (close silently) from one that stalled mid-request
    (answer 408). *)

val parser_buffered : parser -> int
(** Unconsumed bytes currently buffered. *)

(** {2 Blocking-socket helper} *)

val read_some :
  Unix.file_descr -> Bytes.t -> int -> int -> (int, read_error) result
(** One [Unix.read] for blocking sockets with [SO_RCVTIMEO] set (the
    client side): [EINTR] retries — a signal must never masquerade as
    a peer close — [EAGAIN]/[ETIMEDOUT] is [Timeout], reset/pipe
    errors are [Closed]. *)

(** {2 Responses} *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

val response :
  ?content_type:string -> ?extra_headers:(string * string) list ->
  int -> string -> response
(** [response status body] with the standard reason phrase for
    [status] and content type [text/plain] unless overridden. *)

val json_response : int -> Tiny_json.t -> response

val serialize_response : ?keep_alive:bool -> response -> string
(** Wire bytes for [resp], with [Content-Length] and a [Connection:]
    header matching [keep_alive] (default [false], i.e.
    [Connection: close]). *)

val write_response : ?keep_alive:bool -> Unix.file_descr -> response -> bool
(** Serialise and send over a blocking socket.  Returns [false] if the
    peer closed or the write timeout expired — the caller just closes
    the socket either way. *)

(** {2 Decoding helpers} *)

val percent_decode : string -> string
(** Path-style decoding: [%XX] escapes only.  ['+'] is preserved — it
    means space only in query strings. *)

val parse_query : string -> (string * string) list
(** Form-urlencoded query decoding: [%XX] escapes and ['+'] as
    space. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val status_reason : int -> string
