(** Minimal JSON codec for the serving layer.

    The repository is dependency-free by policy, so [/fit] request
    bodies and response payloads are handled by this small
    recursive-descent parser / printer instead of an external JSON
    library.  It supports the full JSON grammar except that numbers
    are always represented as [float] (fine for densities, hours and
    the handful of integer knobs the API accepts). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an
    error.  The error string carries a byte offset. *)

val to_string : t -> string
(** Compact rendering.  Non-finite numbers render as [null] (JSON has
    no NaN/Infinity). *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] when the value is not an object or lacks the
    field (a [Null] field is returned as [Some Null]). *)

val to_float : t -> float option
val to_int : t -> int option
(** [to_int] accepts only numbers that are exactly integral. *)

val to_list : t -> t list option
val to_string_opt : t -> string option
