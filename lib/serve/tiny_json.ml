type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

exception Err of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = raise (Err (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> err (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else err (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then err "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then err "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          loop ()
        | 'n' ->
          Buffer.add_char buf '\n';
          loop ()
        | 't' ->
          Buffer.add_char buf '\t';
          loop ()
        | 'r' ->
          Buffer.add_char buf '\r';
          loop ()
        | 'b' ->
          Buffer.add_char buf '\b';
          loop ()
        | 'f' ->
          Buffer.add_char buf '\012';
          loop ()
        | 'u' ->
          if !pos + 4 > n then err "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> err "bad \\u escape"
          in
          (* UTF-8 encode the BMP code point (surrogate pairs are left
             as two encoded halves — good enough for an internal API) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          loop ()
        | _ -> err "bad escape")
      | c when Char.code c < 0x20 -> err "control character in string"
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Number v
    | None -> err "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Object []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> err "expected ',' or '}'"
        in
        members ();
        Object (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> err "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then err "trailing content";
    v
  with
  | v -> Ok v
  | exception Err (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number v ->
      Buffer.add_string buf
        (if Float.is_finite v then
           (* integral values print without a fraction, like JSON ints *)
           if Float.is_integer v && Float.abs v < 1e15 then
             Printf.sprintf "%.0f" v
           else Printf.sprintf "%.17g" v
         else "null")
    | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Number v -> Some v | _ -> None

let to_int = function
  | Number v when Float.is_integer v && Float.abs v <= 1e9 ->
    Some (int_of_float v)
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
