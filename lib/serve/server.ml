(* The dlosn prediction-serving layer.  See server.mli for the design
   contract (endpoints, concurrency model, shard-based metrics
   aggregation, graceful drain). *)

type config = {
  host : string;
  port : int;
  jobs : int;
  max_conns : int;
  read_timeout : float;
  write_timeout : float;
  idle_timeout : float;
  max_body : int;
  fit_starts_cap : int;
  store_dir : string option;
  slow_request_ms : float;
  trace_capacity : int;
  otlp_endpoint : string option;
  otlp_sample_rate : float;
  live_lateness : float;  (* out-of-order window for /observe, hours *)
  drift_threshold : float;  (* mean relative error that triggers a refit *)
  refit_min_votes : int;
  refit_min_new_votes : int;
  live_seed : int;  (* rng seed for daemon fits (deterministic refits) *)
  graph : Socialnet.Dataset.t option;
      (* influence graph for resolving distance-less votes *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    jobs = 1;
    max_conns = 1000;
    read_timeout = 10.;
    write_timeout = 10.;
    idle_timeout = 30.;
    max_body = 2 * 1024 * 1024;
    fit_starts_cap = 16;
    store_dir = None;
    slow_request_ms = 1000.;
    trace_capacity = 128;
    otlp_endpoint = None;
    otlp_sample_rate = 1.0;
    live_lateness = 2.;
    drift_threshold = Live.Drift.default.Live.Drift.threshold;
    refit_min_votes = Live.Drift.default.Live.Drift.min_votes;
    refit_min_new_votes = Live.Drift.default.Live.Drift.min_new_votes;
    live_seed = 7;
    graph = None;
  }

let max_header = 16 * 1024
let max_cached_solutions = 64

(* Parsed requests a connection may queue ahead of the one in flight
   (HTTP/1.1 pipelining); past this the event loop stops reading the
   socket until responses drain — backpressure, not disconnection. *)
let max_pipeline = 8

(* How long a connection the server decided to close lingers in a
   read-and-discard state after its final response is flushed.  Closing
   with unread request bytes pending would RST away the response; the
   linger sends our FIN first and waits (briefly) for the peer's. *)
let linger_timeout = 1.0

(* Unix.select cannot take fds >= FD_SETSIZE; an accepted fd past this
   is shed with a blocking 503 instead of entering the event loop. *)
let fd_select_limit = 1024

let fd_int (fd : Unix.file_descr) : int = Obj.magic fd (* Unix: fds are ints *)

(* What a cached fit can serve predictions from.  The two PDE backends
   keep their parameters and phi so solutions can be (re)computed per
   requested t and the entry can round-trip through the store; other
   registry models (baselines, epidemic) are closures fitted in memory
   — cacheable, not persistable. *)
type backend =
  | Be_dl of { params : Dl.Params.t; phi : Dl.Initial.t }
  | Be_linear of { params : Dl.Linear_model.params; phi : Dl.Initial.t }
  | Be_fn of { domain : float * float; predict : x:float -> t:float -> float }

type fit_entry = {
  fe_id : string;
  fe_model : string;  (* Predictor registry name *)
  fe_backend : backend;
  fe_params_json : (string * Tiny_json.t) list;  (* rendered for /fit *)
  fe_training_error : float;
  fe_evaluations : int;
  fe_link_trace : string;
      (* for store-recovered entries: the trace id of the run that
         produced the fit, stamped onto serving spans as a span link *)
  mutable fe_sols : (int64 * (x:float -> t:float -> float)) list;
      (* memoized per-t evaluators, newest first (PDE backends only) *)
}

(* One completed request trace, held in the server's bounded ring. *)
type trace_entry = {
  te_trace_id : string;
  te_meth : string;
  te_path : string;
  te_status : int;
  te_dur_ns : int;
  te_root : Obs.Span.t;
}

(* A fully parsed request handed to the worker pool, tagged with the
   connection it came from (by id, not fd — fds are recycled). *)
type request_job = {
  jb_conn : int;
  jb_req : Http.request;
  jb_keep_alive : bool;  (* what the response's Connection: header says *)
}

(* A background refit scheduled by the live-ingestion path.  The task
   carries only the story key and a generation stamp; the worker reads
   the live profile fresh when it runs, so a stale task (the story was
   re-scheduled or removed) is detected and dropped. *)
type refit_task = { rf_story : string; rf_gen : int }

type job = Jb_request of request_job | Jb_refit of refit_task

(* A serialized response travelling back to the event loop. *)
type done_msg = {
  dn_conn : int;
  dn_bytes : string;
  dn_keep_alive : bool;
}

(* Per-story live-ingestion state.  The profile itself is only touched
   under [live_mutex]; the refit daemon snapshots what it needs and
   works outside the lock. *)
type live_story = {
  ls_key : string;
  ls_profile : Live.Profile.t;
  mutable ls_assignment : int array option;
      (* per-user hop labels for resolving distance-less votes *)
  mutable ls_fit : string option;  (* serving fit id for this story *)
  mutable ls_fits : int;  (* daemon fits completed (incl. the initial) *)
  mutable ls_refits : int;  (* drift-triggered warm refits completed *)
  mutable ls_inflight : bool;  (* a refit task is queued or running *)
  mutable ls_votes_at_fit : int;  (* profile votes when ls_fit was made *)
  mutable ls_drift : float;  (* last computed drift (nan = never) *)
  mutable ls_gen : int;  (* bumped per scheduled fit; stales old tasks *)
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  queue : job Queue.t;  (* parsed requests awaiting a worker *)
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable qclosed : bool;
  done_q : done_msg Queue.t;  (* responses awaiting the event loop *)
  done_mutex : Mutex.t;
  inflight : int Atomic.t;
  handled : int Atomic.t;
  agg : Obs.Shard.t;
  agg_mutex : Mutex.t;
  cache : (string, fit_entry) Hashtbl.t;
  cache_mutex : Mutex.t;
  mutable last_fit : string option;
  store : Store.t option;
  traces : trace_entry option array; (* ring, trace_capacity slots *)
  mutable trace_next : int; (* monotonic write position *)
  trace_mutex : Mutex.t;
  mutable otlp : Otlp.t option;
  live : (string, live_story) Hashtbl.t;
  live_mutex : Mutex.t;
  live_cursors : (string, string * float) Hashtbl.t;
      (* story -> (record id, obs cursor) recovered from the store:
         where live ingestion left off before the restart *)
  mutable live_workers : bool;  (* refit tasks may go to the queue *)
}

(* --- serve.* metrics (handles are idempotent to register) --- *)

let m_request_ns = Obs.Metrics.histogram "serve.request_ns"
let m_shed = Obs.Metrics.counter "serve.shed"
let m_inflight = Obs.Metrics.gauge "serve.inflight"
let m_cache_hits = Obs.Metrics.counter "serve.fit_cache_hits"
let m_cache_misses = Obs.Metrics.counter "serve.fit_cache_misses"
let m_batch_points = Obs.Metrics.counter "serve.predict_batch_points"
let m_requests label = Obs.Metrics.counter ~label "serve.requests"
let m_responses status = Obs.Metrics.counter ~label:(string_of_int status) "serve.responses"

(* RED-style per-route series: request latency labelled by route, and
   a route:status-class counter so /fit latency and error rates are
   distinguishable from /predict's on /metrics. *)
let m_route_ns route = Obs.Metrics.histogram ~label:route "serve.request_ns"

let status_class status =
  if status < 200 then "1xx"
  else if status < 300 then "2xx"
  else if status < 400 then "3xx"
  else if status < 500 then "4xx"
  else "5xx"

let m_route_status route status =
  Obs.Metrics.counter ~label:(route ^ ":" ^ status_class status)
    "serve.route_responses"

let m_slow = Obs.Metrics.counter "serve.slow_requests"

(* live.* series: the streaming-ingestion loop (POST /observe + refit
   daemon).  Counters follow the Profile outcome taxonomy; drift and
   refit wall-time are histograms so /metrics shows their spread. *)
let m_live_votes = Obs.Metrics.counter "live.votes_ingested"
let m_live_late = Obs.Metrics.counter "live.dropped_late"
let m_live_range = Obs.Metrics.counter "live.dropped_range"
let m_live_beyond = Obs.Metrics.counter "live.beyond_horizon"
let m_live_batches = Obs.Metrics.counter "live.batches"
let m_live_stories = Obs.Metrics.gauge "live.stories"
let m_live_fits = Obs.Metrics.counter "live.fits"
let m_live_refits = Obs.Metrics.counter "live.refits"
let m_live_drift = Obs.Metrics.histogram "live.drift"
let m_live_refit_ns = Obs.Metrics.histogram "live.refit_ns"

(* connection-lifecycle series for the event loop: opened/closed totals,
   a live-connection gauge (the shedding quantity), and reuse — a
   request served on a connection that already served one.  Reuse is
   the keep-alive win: reused/opened is the per-connection fan-in. *)
let m_conn_opened = Obs.Metrics.counter "serve.connections_opened"
let m_conn_closed = Obs.Metrics.counter "serve.connections_closed"
let m_conn_reused = Obs.Metrics.counter "serve.connections_reused"
let m_conn_live = Obs.Metrics.gauge "serve.live_connections"

(* Run [f] with the server-wide aggregate context installed, under its
   lock.  Used to fold request shards in, to record accept-loop events,
   and to render /metrics — never concurrently, so never racily. *)
let with_agg t f =
  Mutex.lock t.agg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.agg_mutex) (fun () ->
      Obs.Shard.with_shard t.agg f)

(* --- lifecycle --- *)

let growth_json = function
  | Dl.Growth.Constant v ->
    Tiny_json.Object
      [ ("kind", Tiny_json.String "constant"); ("value", Tiny_json.Number v) ]
  | Dl.Growth.Exp_decay { a; b; c } ->
    Tiny_json.Object
      [
        ("kind", Tiny_json.String "exp_decay");
        ("a", Tiny_json.Number a);
        ("b", Tiny_json.Number b);
        ("c", Tiny_json.Number c);
      ]

let dl_params_json (p : Dl.Params.t) =
  [
    ("d", Tiny_json.Number p.Dl.Params.d);
    ("k", Tiny_json.Number p.Dl.Params.k);
    ("r", growth_json p.Dl.Params.r);
    ("l", Tiny_json.Number p.Dl.Params.l);
    ("L", Tiny_json.Number p.Dl.Params.big_l);
  ]

let linear_params_json (p : Dl.Linear_model.params) =
  [
    ("d", Tiny_json.Number p.Dl.Linear_model.d);
    ("r", growth_json p.Dl.Linear_model.r);
    ("l", Tiny_json.Number p.Dl.Linear_model.l);
    ("L", Tiny_json.Number p.Dl.Linear_model.big_l);
  ]

(* A recovered checkpoint becomes a warm cache entry: params and phi
   (rebuilt bit-exactly from the stored knots) are all /predict needs,
   so a restart serves previously fitted stories without refitting.
   The record's model name picks the backend; only the two PDE models
   ever persist (closure-backed fits cannot). *)
let warm_entry (r : Store.Format.record) =
  let reject msg =
    Obs.Log.warn "store.record_rejected" ~fields:(fun () ->
        [ Obs.Log.str "id" r.Store.Format.id; Obs.Log.str "error" msg ]);
    None
  in
  match Store.Format.phi r with
  | phi -> (
    let entry ~backend ~params_json =
      Some
        {
          fe_id = r.Store.Format.id;
          fe_model = r.Store.Format.model;
          fe_backend = backend;
          fe_params_json = params_json;
          fe_training_error = r.Store.Format.training_error;
          fe_evaluations = r.Store.Format.evaluations;
          fe_link_trace = r.Store.Format.trace_id;
          fe_sols = [];
        }
    in
    match r.Store.Format.model with
    | "dl" ->
      entry
        ~backend:(Be_dl { params = r.Store.Format.params; phi })
        ~params_json:(dl_params_json r.Store.Format.params)
    | "dl-linear" ->
      let params = Dl.Linear_model.of_dl r.Store.Format.params in
      entry
        ~backend:(Be_linear { params; phi })
        ~params_json:(linear_params_json params)
    | m -> reject (Printf.sprintf "unservable stored model %S" m))
  | exception Invalid_argument msg ->
    (* CRC-valid but semantically broken knots (hand-edited store);
       serve what can be served and say why the rest was skipped *)
    reject msg

let create ?(config = default_config) () =
  if config.jobs < 1 then invalid_arg "Serve.Server.create: jobs must be >= 1";
  (* a metrics endpoint over a disabled registry would only serve zeros *)
  Obs.set_enabled true;
  let addr = Unix.inet_addr_of_string config.host in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd (Unix.ADDR_INET (addr, config.port));
     Unix.listen lfd 128;
     Unix.set_nonblock lfd
   with e ->
     Unix.close lfd;
     raise e);
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  (* workers write the wake byte; a full pipe means a wake-up is
     already pending, so the write may simply fail with EAGAIN *)
  Unix.set_nonblock wake_w;
  let agg = Obs.Shard.create () in
  (* Recovery runs inside the aggregate shard so the store.* counters
     (replayed/dropped records, partial recoveries) show up on
     /metrics, which renders that shard. *)
  let store, warm, last_fit =
    match config.store_dir with
    | None -> (None, [], None)
    | Some dir ->
      Obs.Shard.with_shard agg @@ fun () ->
      (try
         let store = Store.open_ ~source:"serve" dir in
         let warm = List.filter_map warm_entry (Store.records store) in
         let last =
           (* default /predict target: the most recently fitted story,
              as before the restart — but only if it warmed cleanly *)
           match Store.last_id store with
           | Some id when List.exists (fun e -> e.fe_id = id) warm -> Some id
           | _ -> None
         in
         (Some store, warm, last)
       with e ->
         Unix.close lfd;
         Unix.close wake_r;
         Unix.close wake_w;
         raise e)
  in
  let cache = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace cache e.fe_id e) warm;
  (* Observation cursors: for each story the live daemon checkpointed,
     remember where ingestion left off (records are oldest-first, so a
     plain fold keeps the latest).  Handed back on the first /observe
     for the story so replay can resume past already-folded votes. *)
  let live_cursors = Hashtbl.create 8 in
  (match store with
  | None -> ()
  | Some store ->
    List.iter
      (fun (r : Store.Format.record) ->
        if r.Store.Format.story <> "" && r.Store.Format.obs_cursor > 0. then
          Hashtbl.replace live_cursors r.Store.Format.story
            (r.Store.Format.id, r.Store.Format.obs_cursor))
      (Store.records store));
  let t =
    {
      cfg = config;
      lfd;
      bound_port;
      stop_flag = Atomic.make false;
      wake_r;
      wake_w;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      qclosed = false;
      done_q = Queue.create ();
      done_mutex = Mutex.create ();
      inflight = Atomic.make 0;
      handled = Atomic.make 0;
      agg;
      agg_mutex = Mutex.create ();
      cache;
      cache_mutex = Mutex.create ();
      last_fit;
      store;
      traces = Array.make (Stdlib.max 1 config.trace_capacity) None;
      trace_next = 0;
      trace_mutex = Mutex.create ();
      otlp = None;
      live = Hashtbl.create 8;
      live_mutex = Mutex.create ();
      live_cursors;
      live_workers = false;
    }
  in
  (match config.otlp_endpoint with
  | None -> ()
  | Some endpoint ->
    let exporter =
      Otlp.create
        ~config:
          { Otlp.default_config with
            Otlp.sample_rate = config.otlp_sample_rate }
        ~endpoint
        ~metrics_provider:(fun () ->
          Mutex.lock t.agg_mutex;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.agg_mutex)
            (fun () -> Obs.Shard.with_shard t.agg Obs.Metrics.expose))
        ()
    in
    Otlp.observe_spans exporter;
    Otlp.tee_logs exporter;
    Otlp.start exporter;
    t.otlp <- Some exporter);
  t

let port t = t.bound_port
let requests_handled t = Atomic.get t.handled

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    try ignore (Unix.write t.wake_w (Bytes.of_string "!") 0 1)
    with Unix.Unix_error _ -> ()

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

(* --- /fit: request parsing and calibration --- *)

type fit_spec = {
  fs_obs : Socialnet.Density.t;
  fs_model : string;  (** Predictor registry name (default ["dl"]) *)
  fs_fit_times : float array;
  fs_starts : int;
  fs_seed : int;
  fs_story : string;  (** optional human label, lands in store records *)
  fs_scheme : Dl.Model.scheme;
  fs_nx : int;
  fs_dt : float;
  fs_init : bool;
      (** ["init": "store"] — warm-start the fit from the latest
          matching store checkpoint (dl model only) *)
}

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let json_field_list obj name conv =
  match Tiny_json.member name obj with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
    match Tiny_json.to_list v with
    | None -> Error (Printf.sprintf "field %S must be an array" name)
    | Some items -> (
      let rec map acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | item :: rest -> (
          match conv item with
          | Some x -> map (x :: acc) rest
          | None -> Error (Printf.sprintf "field %S has a non-numeric element" name))
      in
      map [] items))

let parse_fit_spec body =
  let* json =
    match Tiny_json.parse body with Ok j -> Ok j | Error e -> Error e
  in
  let* distances = json_field_list json "distances" Tiny_json.to_int in
  let* times = json_field_list json "times" Tiny_json.to_float in
  let* () =
    if Array.length times = 0 || times.(0) <> 1. then
      Error "times must start at 1 (the initial observation hour provides phi)"
    else Ok ()
  in
  let* density =
    match Tiny_json.member "density" json with
    | None -> Error "missing field \"density\""
    | Some v -> (
      match Tiny_json.to_list v with
      | None -> Error "field \"density\" must be an array of per-distance rows"
      | Some rows ->
        let rec map acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | row :: rest -> (
            match
              Tiny_json.to_list row
              |> Option.map (List.map Tiny_json.to_float)
            with
            | Some cells when List.for_all Option.is_some cells ->
              map (Array.of_list (List.map Option.get cells) :: acc) rest
            | _ -> Error "field \"density\" rows must be arrays of numbers")
        in
        map [] rows)
  in
  let* () =
    if Array.length density <> Array.length distances then
      Error
        (Printf.sprintf "density has %d rows but there are %d distances"
           (Array.length density) (Array.length distances))
    else if
      Array.exists (fun row -> Array.length row <> Array.length times) density
    then Error "every density row must have one value per time"
    else Ok ()
  in
  let* population =
    match Tiny_json.member "population" json with
    | None -> Ok (Array.make (Array.length distances) 100)
    | Some _ -> json_field_list json "population" Tiny_json.to_int
  in
  let* () =
    if Array.length population <> Array.length distances then
      Error "population must have one entry per distance"
    else Ok ()
  in
  let* fit_times =
    match Tiny_json.member "fit_times" json with
    | None ->
      (* default: calibrate on every posted hour past the initial one *)
      Ok
        (Array.of_list
           (List.filter (fun tm -> tm > 1.) (Array.to_list times)))
    | Some _ -> json_field_list json "fit_times" Tiny_json.to_float
  in
  let* () =
    if Array.length fit_times = 0 then
      Error "fit_times is empty (post at least one observation hour past t = 1)"
    else if
      Array.exists
        (fun ft -> not (Array.exists (fun tm -> tm = ft) times))
        fit_times
    then Error "every fit_times entry must be one of the posted times"
    else Ok ()
  in
  let int_field name default =
    match Tiny_json.member name json with
    | None -> Ok default
    | Some v -> (
      match Tiny_json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" name))
  in
  let* model =
    match Tiny_json.member "model" json with
    | None -> Ok "dl"
    | Some v -> (
      match Tiny_json.to_string_opt v with
      | None -> Error "field \"model\" must be a string"
      | Some m -> (
        match Dl.Predictor.find m with
        | None ->
          Error
            (Printf.sprintf "unknown model %S (registered: %s)" m
               (String.concat ", " (Dl.Predictor.names ())))
        | Some _ when m = "network" ->
          Error
            "model \"network\" is not servable over /fit (it needs graph \
             context; use the CLI)"
        | Some _ -> Ok m))
  in
  let* starts = int_field "starts" 0 in
  let* seed = int_field "seed" 7 in
  let* story =
    match Tiny_json.member "story" json with
    | None -> Ok ""
    | Some v -> (
      match Tiny_json.to_string_opt v with
      | Some s -> Ok s
      | None -> Error "field \"story\" must be a string")
  in
  (* solver options: part of the fit's identity, so requests differing
     only here must never alias to the same cached fit *)
  let* scheme =
    match Tiny_json.member "scheme" json with
    | None -> Ok Dl.Fit.default_config.Dl.Fit.solver_scheme
    | Some v -> (
      match Tiny_json.to_string_opt v with
      | None -> Error "field \"scheme\" must be a string"
      | Some s -> (
        match Store.Format.scheme_of_name s with
        | Ok sc -> Ok sc
        | Error msg -> Error msg))
  in
  let* nx = int_field "nx" Dl.Fit.default_config.Dl.Fit.solver_nx in
  let* () =
    if nx < 5 || nx > 2001 then Error "field \"nx\" must lie in 5..2001"
    else Ok ()
  in
  let* dt =
    match Tiny_json.member "dt" json with
    | None -> Ok Dl.Fit.default_config.Dl.Fit.solver_dt
    | Some v -> (
      match Tiny_json.to_float v with
      | Some d when d > 0. && d <= 1. -> Ok d
      | Some _ -> Error "field \"dt\" must lie in (0, 1]"
      | None -> Error "field \"dt\" must be a number")
  in
  let* init =
    match Tiny_json.member "init" json with
    | None -> Ok false
    | Some v -> (
      match Tiny_json.to_string_opt v with
      | Some "store" ->
        if model <> "dl" then
          Error "\"init\": \"store\" warm starts are only supported for model \"dl\""
        else Ok true
      | Some other ->
        Error (Printf.sprintf "unknown init source %S (only \"store\")" other)
      | None -> Error "field \"init\" must be a string")
  in
  Ok
    {
      fs_obs =
        { Socialnet.Density.distances; times; density; population };
      fs_model = model;
      fs_fit_times = fit_times;
      fs_starts = starts;
      fs_seed = seed;
      fs_story = story;
      fs_scheme = scheme;
      fs_nx = nx;
      fs_dt = dt;
      fs_init = init;
    }

let fit_config t spec =
  let starts =
    if spec.fs_starts <= 0 then Dl.Fit.default_config.Dl.Fit.starts
    else min spec.fs_starts t.cfg.fit_starts_cap
  in
  {
    Dl.Fit.default_config with
    Dl.Fit.fit_times = spec.fs_fit_times;
    starts;
    solver_scheme = spec.fs_scheme;
    solver_nx = spec.fs_nx;
    solver_dt = spec.fs_dt;
  }

(* The cache key covers the full request body AND the resolved solver
   configuration (scheme, grid, dt, reference-stepper flag) AND the
   resolved model name: two requests — or a request and a recovered
   checkpoint — that differ only in solver config or model must never
   alias to the same fit.  (The model is keyed explicitly because an
   omitted field and an explicit ["model": "dl"] resolve to the same
   fit but differ in the raw body.) *)
let fit_key ?(init_id = "") spec body =
  let solver_sig =
    Store.Format.solver_signature ~scheme:spec.fs_scheme ~nx:spec.fs_nx
      ~dt:spec.fs_dt
      ~reference:(Numerics.Pde.use_reference_stepper ())
  in
  (* the resolved warm-init record id is part of the fit's identity:
     the same body warm-started from a different (newer) checkpoint
     must not alias to the stale cached result *)
  Digest.to_hex
    (Digest.string
       (body ^ "\x00" ^ solver_sig ^ "\x00" ^ spec.fs_model ^ "\x00" ^ init_id))

(* What persist_fit needs to write a checkpoint — only the two PDE
   backends produce one. *)
type persistable = {
  ps_phi : Dl.Initial.t;
  ps_config : Dl.Fit.config;
  ps_result : Dl.Fit.result;
}

let phi_of_spec spec =
  let obs = spec.fs_obs in
  Dl.Initial.of_observations
    ~xs:(Array.map float_of_int obs.Socialnet.Density.distances)
    ~densities:(Array.map (fun row -> row.(0)) obs.Socialnet.Density.density)

let run_fit ?init ~id ~config spec =
  let obs = spec.fs_obs in
  match spec.fs_model with
  | "dl" ->
    let phi = phi_of_spec spec in
    let rng = Numerics.Rng.create spec.fs_seed in
    let result = Dl.Fit.fit ~config ~id ?init rng obs in
    ( {
        fe_id = id;
        fe_model = "dl";
        fe_backend = Be_dl { params = result.Dl.Fit.params; phi };
        fe_params_json = dl_params_json result.Dl.Fit.params;
        fe_training_error = result.Dl.Fit.training_error;
        fe_evaluations = result.Dl.Fit.evaluations;
        fe_link_trace = "";
        fe_sols = [];
      },
      Some { ps_phi = phi; ps_config = config; ps_result = result } )
  | "dl-linear" ->
    let phi = phi_of_spec spec in
    let rng = Numerics.Rng.create spec.fs_seed in
    let lconfig =
      {
        Dl.Linear_model.default_fit_config with
        Dl.Linear_model.fit_times = config.Dl.Fit.fit_times;
        starts = config.Dl.Fit.starts;
        solver_nx = config.Dl.Fit.solver_nx;
        solver_dt = config.Dl.Fit.solver_dt;
      }
    in
    let r = Dl.Linear_model.fit ~config:lconfig rng obs in
    let params = r.Dl.Linear_model.params in
    (* checkpoint via the DL record layout (k is the to_dl placeholder);
       the stored scheme is Strang, the only scheme the linear fitter
       runs under *)
    let result =
      {
        Dl.Fit.params = Dl.Linear_model.to_dl params;
        training_error = r.Dl.Linear_model.training_error;
        evaluations = r.Dl.Linear_model.evaluations;
      }
    in
    let pconfig = { config with Dl.Fit.solver_scheme = Dl.Model.Strang } in
    ( {
        fe_id = id;
        fe_model = "dl-linear";
        fe_backend = Be_linear { params; phi };
        fe_params_json = linear_params_json params;
        fe_training_error = r.Dl.Linear_model.training_error;
        fe_evaluations = r.Dl.Linear_model.evaluations;
        fe_link_trace = "";
        fe_sols = [];
      },
      Some { ps_phi = phi; ps_config = pconfig; ps_result = result } )
  | model ->
    (* closure-backed registry models (baselines, epidemic): fit via the
       common Predictor interface; cacheable in memory, not persistable *)
    let pspec =
      Dl.Predictor.spec ~fit_times:spec.fs_fit_times ~seed:spec.fs_seed obs
    in
    let fitted = Dl.Predictor.fit model pspec in
    let distances = obs.Socialnet.Density.distances in
    let domain =
      ( float_of_int distances.(0),
        float_of_int distances.(Array.length distances - 1) )
    in
    ( {
        fe_id = id;
        fe_model = model;
        fe_backend = Be_fn { domain; predict = fitted.Dl.Predictor.predict };
        fe_params_json =
          List.map
            (fun (k, v) -> (k, Tiny_json.Number v))
            fitted.Dl.Predictor.params;
        fe_training_error = fitted.Dl.Predictor.training_error;
        fe_evaluations = fitted.Dl.Predictor.evaluations;
        fe_link_trace = "";
        fe_sols = [];
      },
      None )

let fit_json ?init_from entry ~cached =
  Tiny_json.Object
    ([
       ("fit", Tiny_json.String entry.fe_id);
       ("model", Tiny_json.String entry.fe_model);
       ("cached", Tiny_json.Bool cached);
       ("training_error", Tiny_json.Number entry.fe_training_error);
       ("evaluations", Tiny_json.Number (float_of_int entry.fe_evaluations));
       ("params", Tiny_json.Object entry.fe_params_json);
     ]
    @
    match init_from with
    | None -> []
    | Some id ->
      [
        ("init", Tiny_json.String "store");
        ("init_from", Tiny_json.String id);
      ])

let error_json status msg =
  Http.json_response status
    (Tiny_json.Object [ ("error", Tiny_json.String msg) ])

(* Persist a freshly won fit so a restarted server can warm-start it.
   A store failure must not fail the request — the fit result is
   already in memory and correct; durability degrades with a warn.
   Closure-backed models produce no [persistable] and are skipped. *)
let persist_fit ?(source = "serve") ?obs_cursor t ~id ~story ~model p =
  match t.store with
  | None -> ()
  | Some store -> (
    try
      Store.append store
        (Store.record_of_fit ~id ~story ~source ~model
           ?trace_id:(Obs.Span.trace_id ()) ?obs_cursor ~phi:p.ps_phi
           ~config:p.ps_config ~result:p.ps_result ())
    with e ->
      Obs.Log.warn "store.append_failed" ~fields:(fun () ->
          [ Obs.Log.str "id" id; Obs.Log.str "error" (Printexc.to_string e) ]))

(* Resolve an ["init": "store"] warm start: the newest store record
   for the requested model that matches the request's story label (any
   story when the request carries none).  None = cold fallback. *)
let resolve_init t spec =
  if not spec.fs_init then None
  else
    match t.store with
    | None ->
      Obs.Log.info "serve.fit_init_cold" ~fields:(fun () ->
          [ Obs.Log.str "reason" "no store configured" ]);
      None
    | Some store ->
      let pick (r : Store.Format.record) =
        r.Store.Format.model = spec.fs_model
        && (spec.fs_story = "" || r.Store.Format.story = spec.fs_story)
      in
      let chosen =
        List.fold_left
          (fun acc r -> if pick r then Some r else acc)
          None (Store.records store)
      in
      (match chosen with
      | None ->
        Obs.Log.info "serve.fit_init_cold" ~fields:(fun () ->
            [
              Obs.Log.str "reason" "no matching checkpoint";
              Obs.Log.str "story" spec.fs_story;
            ])
      | Some _ -> ());
      chosen

(* Stamp the serving span with a link back to the trace that produced
   the fit (only meaningful for store-recovered entries, whose
   originating trace lived in a previous process). *)
let link_entry entry =
  if entry.fe_link_trace <> "" then
    Obs.Span.add_attr "link.trace_id" (Obs.Log.String entry.fe_link_trace)

let handle_fit t (req : Http.request) =
  match parse_fit_spec req.Http.body with
  | Error msg -> error_json 400 msg
  | Ok spec -> (
    let init_record = resolve_init t spec in
    let init_id =
      match init_record with
      | Some r -> Some r.Store.Format.id
      | None -> None
    in
    let init =
      Option.map
        (fun (r : Store.Format.record) ->
          Dl.Fit.Init_params r.Store.Format.params)
        init_record
    in
    let id = fit_key ?init_id spec req.Http.body in
    let config = fit_config t spec in
    let cached =
      Mutex.lock t.cache_mutex;
      let entry = Hashtbl.find_opt t.cache id in
      Mutex.unlock t.cache_mutex;
      entry
    in
    match cached with
    | Some entry ->
      Obs.Metrics.incr m_cache_hits;
      link_entry entry;
      Http.json_response 200 (fit_json ?init_from:init_id entry ~cached:true)
    | None -> (
      Obs.Metrics.incr m_cache_misses;
      match run_fit ?init ~id ~config spec with
      | exception Invalid_argument msg -> error_json 422 msg
      | exception Failure msg -> error_json 422 msg
      | fresh, persistable ->
        Mutex.lock t.cache_mutex;
        (* a concurrent identical fit may have won the race; keep one *)
        let entry, won =
          match Hashtbl.find_opt t.cache id with
          | Some existing -> (existing, false)
          | None ->
            Hashtbl.replace t.cache id fresh;
            (fresh, true)
        in
        t.last_fit <- Some id;
        Mutex.unlock t.cache_mutex;
        (if won then
           match persistable with
           | Some p ->
             persist_fit t ~id ~story:spec.fs_story ~model:entry.fe_model p
           | None -> ());
        Obs.Log.info "serve.fit" ~fields:(fun () ->
            [
              Obs.Log.str "fit" id;
              Obs.Log.str "model" entry.fe_model;
              Obs.Log.float "training_error" entry.fe_training_error;
              Obs.Log.int "evaluations" entry.fe_evaluations;
              Obs.Log.bool "warm" (init <> None);
            ]);
        Http.json_response 200 (fit_json ?init_from:init_id entry ~cached:false)))

(* --- /predict --- *)

(* Fresh per-t evaluator for a PDE backend (one solve, then
   allocation-free point queries). *)
let solve_backend backend ~at =
  match backend with
  | Be_dl { params; phi } ->
    Dl.Model.predictor (Dl.Model.solve params ~phi ~times:[| at |])
  | Be_linear { params; phi } ->
    Dl.Linear_model.predictor
      (Dl.Linear_model.solve params ~phi ~times:[| at |])
  | Be_fn { predict; _ } -> predict

let solution_for t entry ~at =
  let key = Int64.bits_of_float at in
  let hit =
    Mutex.lock t.cache_mutex;
    let s = List.assoc_opt key entry.fe_sols in
    Mutex.unlock t.cache_mutex;
    s
  in
  match hit with
  | Some sol -> sol
  | None ->
    let sol = solve_backend entry.fe_backend ~at in
    Mutex.lock t.cache_mutex;
    if not (List.mem_assoc key entry.fe_sols) then begin
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      entry.fe_sols <-
        (key, sol) :: take (max_cached_solutions - 1) entry.fe_sols
    end;
    Mutex.unlock t.cache_mutex;
    sol

let domain_of entry =
  match entry.fe_backend with
  | Be_dl { params; _ } -> (params.Dl.Params.l, params.Dl.Params.big_l)
  | Be_linear { params; _ } ->
    (params.Dl.Linear_model.l, params.Dl.Linear_model.big_l)
  | Be_fn { domain; _ } -> domain

(* One validated point evaluation, shared by GET /predict and the
   POST /predict batch endpoint. *)
let predict_point t entry ~x ~tq =
  let l, big_l = domain_of entry in
  if tq < 1. then
    Error "t must be >= 1 (the model starts at the t = 1 snapshot)"
  else if x < l || x > big_l then
    Error
      (Printf.sprintf "x must lie in the fitted domain [%g, %g]" l big_l)
  else
    match entry.fe_backend with
    | Be_fn { predict; _ } -> Ok (predict ~x ~t:tq)
    | Be_dl { phi; _ } | Be_linear { phi; _ } ->
      Ok
        (if tq <= 1. +. 1e-9 then Dl.Initial.eval phi x
         else (solution_for t entry ~at:tq) ~x ~t:tq)

let lookup_entry t fit =
  Mutex.lock t.cache_mutex;
  let id = match fit with Some id -> Some id | None -> t.last_fit in
  let e = Option.bind id (Hashtbl.find_opt t.cache) in
  Mutex.unlock t.cache_mutex;
  e

let handle_predict t (req : Http.request) =
  let float_param name =
    match Http.query_param req name with
    | None -> Error (Printf.sprintf "missing query parameter %S" name)
    | Some raw -> (
      match float_of_string_opt raw with
      | Some v when Float.is_finite v -> Ok v
      | _ -> Error (Printf.sprintf "query parameter %S is not a finite number" name))
  in
  match
    let* x = float_param "x" in
    let* tq = float_param "t" in
    Ok (x, tq)
  with
  | Error msg -> error_json 400 msg
  | Ok (x, tq) -> (
    match lookup_entry t (Http.query_param req "fit") with
    | None ->
      error_json 404
        "no such fit (POST /fit first, or pass a valid fit= parameter)"
    | Some entry -> (
      link_entry entry;
      match predict_point t entry ~x ~tq with
      | Error msg -> error_json 400 msg
      | Ok density ->
        Http.json_response 200
          (Tiny_json.Object
             [
               ("fit", Tiny_json.String entry.fe_id);
               ("x", Tiny_json.Number x);
               ("t", Tiny_json.Number tq);
               ("density", Tiny_json.Number density);
             ])))

(* POST /predict: evaluate a whole batch of (x, t) points against one
   fit in a single round-trip, reusing the per-fit solution memo (one
   PDE solve per distinct t, not per point). *)
let max_batch_points = 10_000

let handle_predict_batch t (req : Http.request) =
  match
    let* json =
      match Tiny_json.parse req.Http.body with Ok j -> Ok j | Error e -> Error e
    in
    let* fit =
      match Tiny_json.member "fit" json with
      | None -> Ok None
      | Some v -> (
        match Tiny_json.to_string_opt v with
        | Some s -> Ok (Some s)
        | None -> Error "field \"fit\" must be a string")
    in
    let* points =
      match Tiny_json.member "points" json with
      | None -> Error "missing field \"points\" (an array of [x, t] pairs)"
      | Some v -> (
        match Tiny_json.to_list v with
        | None -> Error "field \"points\" must be an array of [x, t] pairs"
        | Some items ->
          let rec map acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
              match
                Option.map (List.map Tiny_json.to_float)
                  (Tiny_json.to_list item)
              with
              | Some [ Some x; Some tq ]
                when Float.is_finite x && Float.is_finite tq ->
                map ((x, tq) :: acc) rest
              | _ -> Error "every point must be an [x, t] pair of finite numbers")
          in
          map [] items)
    in
    let* () =
      if points = [] then Error "field \"points\" is empty"
      else if List.length points > max_batch_points then
        Error (Printf.sprintf "at most %d points per request" max_batch_points)
      else Ok ()
    in
    Ok (fit, points)
  with
  | Error msg -> error_json 400 msg
  | Ok (fit, points) -> (
    match lookup_entry t fit with
    | None ->
      error_json 404
        "no such fit (POST /fit first, or pass a valid \"fit\" field)"
    | Some entry -> (
      link_entry entry;
      let rec eval acc = function
        | [] -> Ok (List.rev acc)
        | (x, tq) :: rest -> (
          match predict_point t entry ~x ~tq with
          | Error msg ->
            Error (Printf.sprintf "point [%g, %g]: %s" x tq msg)
          | Ok density ->
            eval
              (Tiny_json.Object
                 [
                   ("x", Tiny_json.Number x);
                   ("t", Tiny_json.Number tq);
                   ("density", Tiny_json.Number density);
                 ]
              :: acc)
              rest)
      in
      match eval [] points with
      | Error msg -> error_json 400 msg
      | Ok results ->
        Obs.Metrics.incr ~by:(List.length results) m_batch_points;
        Http.json_response 200
          (Tiny_json.Object
             [
               ("fit", Tiny_json.String entry.fe_id);
               ("count", Tiny_json.Number (float_of_int (List.length results)));
               ("results", Tiny_json.List results);
             ])))

(* --- request traces: ring buffer + /debug endpoints --- *)

(* Accept a caller-supplied X-Trace-Id only if it is a sane token;
   anything else gets a fresh id (never echo arbitrary bytes back). *)
let valid_trace_token s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
         | _ -> false)
       s

let push_trace t entry =
  Mutex.lock t.trace_mutex;
  let cap = Array.length t.traces in
  t.traces.(t.trace_next mod cap) <- Some entry;
  t.trace_next <- t.trace_next + 1;
  Mutex.unlock t.trace_mutex

(* Most recent completed traces, newest first, at most [n]. *)
let recent_traces t n =
  Mutex.lock t.trace_mutex;
  let cap = Array.length t.traces in
  let available = Stdlib.min t.trace_next cap in
  let take = Stdlib.min n available in
  let out = ref [] in
  for i = t.trace_next - take to t.trace_next - 1 do
    match t.traces.(i mod cap) with
    | Some e -> out := e :: !out (* newest ends up first *)
    | None -> ()
  done;
  Mutex.unlock t.trace_mutex;
  !out

let rec span_json (s : Obs.Span.t) =
  let value_json = function
    | Obs.Log.String v -> Tiny_json.String v
    | Obs.Log.Int i -> Tiny_json.Number (float_of_int i)
    | Obs.Log.Float f -> Tiny_json.Number f
    | Obs.Log.Bool b -> Tiny_json.Bool b
  in
  Tiny_json.Object
    [
      ("name", Tiny_json.String s.Obs.Span.name);
      ("span_id", Tiny_json.String s.Obs.Span.span_id);
      (* epoch ns exceed double precision; strings keep them exact *)
      ("start_unix_ns", Tiny_json.String (string_of_int s.Obs.Span.start_ns));
      ("end_unix_ns", Tiny_json.String (string_of_int s.Obs.Span.end_ns));
      ("dur_ns", Tiny_json.Number (float_of_int s.Obs.Span.dur_ns));
      ( "attrs",
        Tiny_json.Object
          (List.map (fun (k, v) -> (k, value_json v)) s.Obs.Span.attrs) );
      ("children", Tiny_json.List (List.map span_json s.Obs.Span.children));
    ]

let handle_debug_traces t (req : Http.request) =
  match
    match Http.query_param req "n" with
    | None -> Ok 32
    | Some raw -> (
      match int_of_string_opt raw with
      | Some v when v >= 0 -> Ok v
      | _ -> Error "query parameter \"n\" must be a non-negative integer")
  with
  | Error msg -> error_json 400 msg
  | Ok n ->
    let entries = recent_traces t n in
    Http.json_response 200
      (Tiny_json.Object
         [
           ("schema", Tiny_json.String "dlosn-traces/1");
           ("count", Tiny_json.Number (float_of_int (List.length entries)));
           ( "traces",
             Tiny_json.List
               (List.map
                  (fun e ->
                    Tiny_json.Object
                      [
                        ("trace_id", Tiny_json.String e.te_trace_id);
                        ("method", Tiny_json.String e.te_meth);
                        ("path", Tiny_json.String e.te_path);
                        ("status", Tiny_json.Number (float_of_int e.te_status));
                        ("dur_ns", Tiny_json.Number (float_of_int e.te_dur_ns));
                        ("root", span_json e.te_root);
                      ])
                  entries) );
         ])

let handle_debug_flame t =
  let roots = List.rev_map (fun e -> e.te_root) (recent_traces t max_int) in
  Http.response ~content_type:"text/plain; charset=utf-8" 200
    (Obs.Span.to_folded roots)

(* --- live ingestion: POST /observe, GET /live, the refit daemon --- *)

(* One parsed /observe batch.  The grid fields are only consulted on
   the first batch for a story (they define its profile); later batches
   may omit them. *)
type observe_spec = {
  ob_story : string;
  ob_votes : (int * float * int option) list;  (* voter, time, distance *)
  ob_times : float array option;
  ob_population : int array option;
  ob_max_distance : int option;
  ob_lateness : float option;
  ob_initiator : int option;
}

let parse_observe_spec body =
  let* json =
    match Tiny_json.parse body with Ok j -> Ok j | Error e -> Error e
  in
  let* story =
    match Tiny_json.member "story" json with
    | Some (Tiny_json.String s) when s <> "" -> Ok s
    | Some _ -> Error "field \"story\" must be a non-empty string"
    | None -> Error "missing field \"story\""
  in
  let* votes =
    match Tiny_json.member "votes" json with
    | None -> Error "missing field \"votes\" (an array of vote objects)"
    | Some v -> (
      match Tiny_json.to_list v with
      | None -> Error "field \"votes\" must be an array"
      | Some items ->
        let rec map acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest -> (
            let time =
              Option.bind (Tiny_json.member "time" item) Tiny_json.to_float
            in
            let voter =
              Option.bind (Tiny_json.member "voter" item) Tiny_json.to_int
            in
            let distance =
              Option.bind (Tiny_json.member "distance" item) Tiny_json.to_int
            in
            match time with
            | Some tm when Float.is_finite tm && tm >= 0. ->
              map ((Option.value ~default:(-1) voter, tm, distance) :: acc) rest
            | _ ->
              Error
                "every vote needs a finite non-negative \"time\" (hours since \
                 submission)")
        in
        map [] items)
  in
  let opt_field name conv err =
    match Tiny_json.member name json with
    | None -> Ok None
    | Some v -> (
      match conv v with Some x -> Ok (Some x) | None -> Error err)
  in
  let* times =
    match Tiny_json.member "times" json with
    | None -> Ok None
    | Some _ ->
      let* ts = json_field_list json "times" Tiny_json.to_float in
      Ok (Some ts)
  in
  let* population =
    match Tiny_json.member "population" json with
    | None -> Ok None
    | Some _ ->
      let* ps = json_field_list json "population" Tiny_json.to_int in
      Ok (Some ps)
  in
  let* max_distance =
    opt_field "max_distance" Tiny_json.to_int
      "field \"max_distance\" must be an integer"
  in
  let* lateness =
    opt_field "lateness" Tiny_json.to_float
      "field \"lateness\" must be a number"
  in
  let* () =
    match lateness with
    | Some l when l < 0. -> Error "field \"lateness\" must be non-negative"
    | _ -> Ok ()
  in
  let* initiator =
    opt_field "initiator" Tiny_json.to_int
      "field \"initiator\" must be an integer (a graph user id)"
  in
  Ok
    {
      ob_story = story;
      ob_votes = votes;
      ob_times = times;
      ob_population = population;
      ob_max_distance = max_distance;
      ob_lateness = lateness;
      ob_initiator = initiator;
    }

(* First batch for a story: build its live profile (resuming from a
   persisted observation cursor when the store carries one) and, when
   the server has graph context and the batch names the initiator,
   the hop-distance resolver for distance-less votes.  Caller holds
   [live_mutex]. *)
let create_live_story t spec =
  match (spec.ob_times, spec.ob_population) with
  | None, _ | _, None ->
    Error
      (Printf.sprintf
         "unknown story %S: the first batch must carry \"times\" and \
          \"population\""
         spec.ob_story)
  | Some times, Some population -> (
    let max_distance =
      match spec.ob_max_distance with
      | Some d -> d
      | None -> Array.length population
    in
    let lateness =
      match spec.ob_lateness with
      | Some l -> l
      | None -> t.cfg.live_lateness
    in
    let recovered = Hashtbl.find_opt t.live_cursors spec.ob_story in
    let watermark = match recovered with Some (_, c) -> c | None -> 0. in
    match
      Live.Profile.create ~lateness ~watermark ~max_distance ~times
        ~population ()
    with
    | exception Invalid_argument msg -> Error msg
    | profile ->
      let assignment =
        match (spec.ob_initiator, t.cfg.graph) with
        | Some initiator, Some graph ->
          Some
            (Socialnet.Distance.friendship_hops graph
               ~story:
                 {
                   Socialnet.Types.id = 0;
                   initiator;
                   topic = 0;
                   votes = [||];
                 })
        | _ -> None
      in
      (* a recovered checkpoint keeps serving until drift re-triggers *)
      let recovered_fit =
        match recovered with
        | Some (id, _) ->
          Mutex.lock t.cache_mutex;
          let known = Hashtbl.mem t.cache id in
          Mutex.unlock t.cache_mutex;
          if known then Some id else None
        | None -> None
      in
      let ls =
        {
          ls_key = spec.ob_story;
          ls_profile = profile;
          ls_assignment = assignment;
          ls_fit = recovered_fit;
          ls_fits = (if recovered_fit <> None then 1 else 0);
          ls_refits = 0;
          ls_inflight = false;
          ls_votes_at_fit = 0;
          ls_drift = Float.nan;
          ls_gen = 0;
        }
      in
      Hashtbl.replace t.live ls.ls_key ls;
      Obs.Metrics.set m_live_stories (float_of_int (Hashtbl.length t.live));
      (match recovered with
      | Some (id, cursor) ->
        Obs.Log.info "live.resumed" ~fields:(fun () ->
            [
              Obs.Log.str "story" ls.ls_key;
              Obs.Log.str "fit" id;
              Obs.Log.float "cursor" cursor;
              Obs.Log.bool "fit_recovered" (recovered_fit <> None);
            ])
      | None -> ());
      Ok ls)

(* The refit itself: runs on a worker domain (or inline when the pool
   is unavailable), under its own metrics shard and a daemon-minted
   trace id.  Reads the live profile fresh — a task whose generation no
   longer matches the story's is stale and dropped. *)
let run_refit t task =
  let shard = Obs.Shard.create () in
  let trace_id = Obs.Span.gen_trace_id () in
  let status = ref 200 in
  let t0 = Obs.now_ns () in
  let finish () =
    (* capture the daemon trace into the ring before merging, so the
       aggregate's span list cannot grow without bound *)
    (match Obs.Shard.take_span_roots shard with
    | [] -> ()
    | roots ->
      let root = List.nth roots (List.length roots - 1) in
      push_trace t
        {
          te_trace_id = trace_id;
          te_meth = "DAEMON";
          te_path = "/live/refit";
          te_status = !status;
          te_dur_ns = Stdlib.max 0 (Obs.now_ns () - t0);
          te_root = root;
        });
    with_agg t (fun () -> Obs.Shard.merge shard)
  in
  Fun.protect ~finally:finish @@ fun () ->
  Obs.Shard.with_shard shard @@ fun () ->
  Obs.Span.set_trace_id (Some trace_id);
  Fun.protect ~finally:(fun () -> Obs.Span.set_trace_id None) @@ fun () ->
  (* snapshot everything the fit needs under the lock, then work free *)
  Mutex.lock t.live_mutex;
  let snap =
    match Hashtbl.find_opt t.live task.rf_story with
    | Some ls when ls.ls_gen = task.rf_gen ->
      Some
        ( ls,
          Live.Profile.density ls.ls_profile,
          Live.Profile.observed_times ls.ls_profile,
          Live.Profile.votes ls.ls_profile,
          Live.Profile.watermark ls.ls_profile,
          ls.ls_fit )
    | Some ls ->
      ls.ls_inflight <- false;
      None
    | None -> None
  in
  Mutex.unlock t.live_mutex;
  match snap with
  | None -> status := 410
  | Some (ls, full_obs, observed, votes, watermark, serving_fit) -> (
    let clear_inflight () =
      Mutex.lock t.live_mutex;
      if ls.ls_gen = task.rf_gen then ls.ls_inflight <- false;
      Mutex.unlock t.live_mutex
    in
    (* restrict the batch table to the hours the stream has reached *)
    let n = Array.length observed in
    let obs =
      {
        full_obs with
        Socialnet.Density.times = observed;
        density =
          Array.map
            (fun row -> Array.sub row 0 n)
            full_obs.Socialnet.Density.density;
      }
    in
    let fit_times =
      Array.of_list (List.filter (fun tm -> tm > 1.) (Array.to_list observed))
    in
    if
      n = 0
      || observed.(0) <> 1.
      || Array.length fit_times = 0
      || not
           (Array.exists
              (fun row -> row.(0) > 0.)
              obs.Socialnet.Density.density)
    then begin
      status := 422;
      clear_inflight ()
    end
    else begin
      (* warm start from the currently-serving entry when it is a PDE
         fit; the very first daemon fit for a story runs cold *)
      let init =
        match serving_fit with
        | None -> None
        | Some id -> (
          Mutex.lock t.cache_mutex;
          let e = Hashtbl.find_opt t.cache id in
          Mutex.unlock t.cache_mutex;
          match e with
          | Some { fe_backend = Be_dl { params; _ }; _ } ->
            Some (Dl.Fit.Init_params params)
          | _ -> None)
      in
      let warm = init <> None in
      let config =
        {
          Dl.Fit.default_config with
          Dl.Fit.fit_times;
          starts = (if warm then 1 else Dl.Fit.default_config.Dl.Fit.starts);
        }
      in
      let id = Printf.sprintf "live-%s-g%d" task.rf_story task.rf_gen in
      match
        Obs.Span.with_span "live.refit"
          ~attrs:(fun () ->
            [
              Obs.Log.str "story" task.rf_story;
              Obs.Log.bool "warm" warm;
              Obs.Log.int "votes" votes;
            ])
          (fun () ->
            let phi =
              Dl.Initial.of_observations
                ~xs:
                  (Array.map float_of_int obs.Socialnet.Density.distances)
                ~densities:
                  (Array.map
                     (fun row -> row.(0))
                     obs.Socialnet.Density.density)
            in
            let rng = Numerics.Rng.create t.cfg.live_seed in
            let result = Dl.Fit.fit ~config ~id ?init rng obs in
            (phi, result))
      with
      | exception e ->
        status := 500;
        Obs.Log.error "live.refit_failed" ~fields:(fun () ->
            [
              Obs.Log.str "story" task.rf_story;
              Obs.Log.str "exn" (Printexc.to_string e);
            ]);
        clear_inflight ()
      | phi, result ->
        let entry =
          {
            fe_id = id;
            fe_model = "dl";
            fe_backend = Be_dl { params = result.Dl.Fit.params; phi };
            fe_params_json = dl_params_json result.Dl.Fit.params;
            fe_training_error = result.Dl.Fit.training_error;
            fe_evaluations = result.Dl.Fit.evaluations;
            fe_link_trace = "";
            fe_sols = [];
          }
        in
        Mutex.lock t.cache_mutex;
        Hashtbl.replace t.cache id entry;
        t.last_fit <- Some id;
        Mutex.unlock t.cache_mutex;
        Mutex.lock t.live_mutex;
        if ls.ls_gen = task.rf_gen then begin
          ls.ls_fit <- Some id;
          ls.ls_fits <- ls.ls_fits + 1;
          if warm then ls.ls_refits <- ls.ls_refits + 1;
          ls.ls_votes_at_fit <- votes;
          ls.ls_inflight <- false
        end;
        Mutex.unlock t.live_mutex;
        persist_fit ~source:"live" ~obs_cursor:watermark t ~id
          ~story:task.rf_story ~model:"dl"
          { ps_phi = phi; ps_config = config; ps_result = result };
        Obs.Metrics.incr m_live_fits;
        if warm then Obs.Metrics.incr m_live_refits;
        Obs.Metrics.observe m_live_refit_ns
          (float_of_int (Stdlib.max 0 (Obs.now_ns () - t0)));
        Obs.Log.info "live.refit" ~fields:(fun () ->
            [
              Obs.Log.str "story" task.rf_story;
              Obs.Log.str "fit" id;
              Obs.Log.bool "warm" warm;
              Obs.Log.int "votes" votes;
              Obs.Log.float "watermark" watermark;
              Obs.Log.float "training_error" result.Dl.Fit.training_error;
              Obs.Log.int "evaluations" result.Dl.Fit.evaluations;
            ])
    end)

(* Hand a refit task to the worker pool, or run it right here when the
   server is single-threaded (jobs = 0 fallback). *)
let schedule_refit t task =
  if t.live_workers then begin
    Mutex.lock t.qmutex;
    Queue.push (Jb_refit task) t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex
  end
  else run_refit t task

let drift_config t =
  {
    Live.Drift.threshold = t.cfg.drift_threshold;
    min_votes = t.cfg.refit_min_votes;
    min_new_votes = t.cfg.refit_min_new_votes;
  }

let handle_observe t (req : Http.request) =
  match parse_observe_spec req.Http.body with
  | Error msg -> error_json 400 msg
  | Ok spec -> (
    Mutex.lock t.live_mutex;
    let ls_or_err =
      match Hashtbl.find_opt t.live spec.ob_story with
      | Some ls -> Ok ls
      | None -> create_live_story t spec
    in
    match ls_or_err with
    | Error msg ->
      Mutex.unlock t.live_mutex;
      error_json 400 msg
    | Ok ls -> (
      (* fold the batch in: O(1) per vote, still under the lock *)
      let added = ref 0
      and late = ref 0
      and range = ref 0
      and beyond = ref 0 in
      let fold_result =
        List.fold_left
          (fun acc (voter, time, distance) ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
              let resolved =
                match distance with
                | Some d -> Ok d
                | None -> (
                  match ls.ls_assignment with
                  | Some a when voter >= 0 && voter < Array.length a ->
                    Ok a.(voter)
                  | Some _ ->
                    Error
                      (Printf.sprintf
                         "voter %d is outside the configured graph" voter)
                  | None ->
                    Error
                      (Printf.sprintf
                         "vote for voter %d carries no \"distance\" and the \
                          story has no graph context (pass \"initiator\" on \
                          the first batch of a server started with a graph)"
                         voter))
              in
              match resolved with
              | Error msg -> Error msg
              | Ok d ->
                (match Live.Profile.add ls.ls_profile ~distance:d ~time with
                | Live.Profile.Added -> incr added
                | Live.Profile.Late -> incr late
                | Live.Profile.Out_of_range -> incr range
                | Live.Profile.Beyond_horizon -> incr beyond);
                Ok ()))
          (Ok ()) spec.ob_votes
      in
      match fold_result with
      | Error msg ->
        Mutex.unlock t.live_mutex;
        error_json 400 msg
      | Ok () ->
        (* snapshot what the drift check needs, then leave the lock *)
        let density = Live.Profile.density ls.ls_profile in
        let observed = Live.Profile.observed_times ls.ls_profile in
        let votes = Live.Profile.votes ls.ls_profile in
        let watermark = Live.Profile.watermark ls.ls_profile in
        let votes_at_fit = ls.ls_votes_at_fit in
        let serving_fit = ls.ls_fit in
        let inflight = ls.ls_inflight in
        Mutex.unlock t.live_mutex;
        Obs.Metrics.incr ~by:!added m_live_votes;
        Obs.Metrics.incr ~by:!late m_live_late;
        Obs.Metrics.incr ~by:!range m_live_range;
        Obs.Metrics.incr ~by:!beyond m_live_beyond;
        Obs.Metrics.incr m_live_batches;
        let fit_times_ready =
          Array.length observed > 0
          && observed.(0) = 1.
          && Array.exists (fun tm -> tm > 1.) observed
          (* phi is built from the t = 1 column; a profile resumed from
             a persisted cursor past t = 1 never sees those votes (they
             live only in the checkpointed fit), so it keeps serving
             the recovered fit rather than refitting on a hollow
             profile *)
          && Array.exists
               (fun row -> row.(0) > 0.)
               density.Socialnet.Density.density
        in
        (* drift: the serving fit's error against the cells the stream
           has fully reached (PDE solves run outside any lock) *)
        let drift =
          match serving_fit with
          | None -> None
          | Some id -> (
            Mutex.lock t.cache_mutex;
            let entry = Hashtbl.find_opt t.cache id in
            Mutex.unlock t.cache_mutex;
            match entry with
            | None -> None
            | Some entry ->
              let predict ~x ~t:tq =
                match predict_point t entry ~x ~tq with
                | Ok v -> v
                | Error _ -> Float.nan
              in
              Some
                (Live.Drift.relative_error ~predict ~obs:density
                   ~times:observed))
        in
        (match drift with
        | Some (d, cells) when cells > 0 -> Obs.Metrics.observe m_live_drift d
        | _ -> ());
        let want_refit =
          fit_times_ready && not inflight
          &&
          match drift with
          | None ->
            (* no serving fit yet: the initial (cold) daemon fit *)
            votes >= t.cfg.refit_min_votes
          | Some (d, cells) ->
            Live.Drift.should_refit (drift_config t) ~drift:d ~cells ~votes
              ~votes_at_fit
        in
        let scheduled =
          if not want_refit then false
          else begin
            Mutex.lock t.live_mutex;
            let task =
              if ls.ls_inflight then None
              else begin
                ls.ls_inflight <- true;
                ls.ls_gen <- ls.ls_gen + 1;
                Some { rf_story = ls.ls_key; rf_gen = ls.ls_gen }
              end
            in
            (match drift with
            | Some (d, cells) when cells > 0 -> ls.ls_drift <- d
            | _ -> ());
            Mutex.unlock t.live_mutex;
            match task with
            | Some task ->
              schedule_refit t task;
              true
            | None -> false
          end
        in
        if not scheduled then begin
          Mutex.lock t.live_mutex;
          (match drift with
          | Some (d, cells) when cells > 0 -> ls.ls_drift <- d
          | _ -> ());
          Mutex.unlock t.live_mutex
        end;
        Http.json_response 200
          (Tiny_json.Object
             [
               ("story", Tiny_json.String spec.ob_story);
               ("ingested", Tiny_json.Number (float_of_int !added));
               ("late", Tiny_json.Number (float_of_int !late));
               ("out_of_range", Tiny_json.Number (float_of_int !range));
               ("beyond_horizon", Tiny_json.Number (float_of_int !beyond));
               ("votes", Tiny_json.Number (float_of_int votes));
               ("watermark", Tiny_json.Number watermark);
               ( "drift",
                 match drift with
                 | Some (d, cells) when cells > 0 && Float.is_finite d ->
                   Tiny_json.Number d
                 | _ -> Tiny_json.Null );
               ("refit_scheduled", Tiny_json.Bool scheduled);
               ( "fit",
                 match serving_fit with
                 | Some id -> Tiny_json.String id
                 | None -> Tiny_json.Null );
             ])))

let handle_live t (req : Http.request) =
  let wanted = Http.query_param req "story" in
  Mutex.lock t.live_mutex;
  let stories =
    Hashtbl.fold
      (fun key ls acc ->
        if match wanted with Some w -> w <> key | None -> false then acc
        else
          Tiny_json.Object
            [
              ("story", Tiny_json.String key);
              ( "votes",
                Tiny_json.Number
                  (float_of_int (Live.Profile.votes ls.ls_profile)) );
              ( "watermark",
                Tiny_json.Number (Live.Profile.watermark ls.ls_profile) );
              ( "dropped_late",
                Tiny_json.Number
                  (float_of_int (Live.Profile.dropped_late ls.ls_profile)) );
              ( "dropped_range",
                Tiny_json.Number
                  (float_of_int (Live.Profile.dropped_range ls.ls_profile)) );
              ( "beyond_horizon",
                Tiny_json.Number
                  (float_of_int (Live.Profile.beyond_horizon ls.ls_profile)) );
              ("fits", Tiny_json.Number (float_of_int ls.ls_fits));
              ("refits", Tiny_json.Number (float_of_int ls.ls_refits));
              ( "drift",
                if Float.is_finite ls.ls_drift then Tiny_json.Number ls.ls_drift
                else Tiny_json.Null );
              ( "fit",
                match ls.ls_fit with
                | Some id -> Tiny_json.String id
                | None -> Tiny_json.Null );
              ("refit_inflight", Tiny_json.Bool ls.ls_inflight);
            ]
          :: acc)
      t.live []
  in
  Mutex.unlock t.live_mutex;
  Http.json_response 200
    (Tiny_json.Object
       [
         ("schema", Tiny_json.String "dlosn-live/1");
         ("count", Tiny_json.Number (float_of_int (List.length stories)));
         ("stories", Tiny_json.List stories);
       ])

(* --- routing --- *)

let handle_metrics t =
  let body = with_agg t (fun () -> Obs.Metrics.to_prometheus_string ()) in
  Http.response ~content_type:"text/plain; version=0.0.4; charset=utf-8" 200
    body

let route_label (req : Http.request) =
  match req.Http.path with
  | "/healthz" -> "healthz"
  | "/metrics" -> "metrics"
  | "/fit" -> "fit"
  | "/predict" -> "predict"
  | "/observe" -> "observe"
  | "/live" -> "live"
  | "/debug/traces" -> "debug_traces"
  | "/debug/flame" -> "debug_flame"
  | _ -> "other"

let route t (req : Http.request) =
  Obs.Metrics.incr (m_requests (route_label req));
  Obs.Metrics.set m_inflight (float_of_int (Atomic.get t.inflight));
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> Http.response 200 "ok\n"
  | "GET", "/metrics" -> handle_metrics t
  | "POST", "/fit" -> handle_fit t req
  | "GET", "/predict" -> handle_predict t req
  | "POST", "/predict" -> handle_predict_batch t req
  | "POST", "/observe" -> handle_observe t req
  | "GET", "/live" -> handle_live t req
  | "GET", "/debug/traces" -> handle_debug_traces t req
  | "GET", "/debug/flame" -> handle_debug_flame t
  | ( _,
      ( "/healthz" | "/metrics" | "/fit" | "/predict" | "/observe" | "/live"
      | "/debug/traces" | "/debug/flame" ) ) ->
    error_json 405 (Printf.sprintf "method %s not allowed here" req.Http.meth)
  | _ -> error_json 404 (Printf.sprintf "no such endpoint %s" req.Http.path)

(* --- request processing (worker side) --- *)

(* Everything between "a parsed request" and "serialized response
   bytes": routing, tracing, per-request metrics, the trace ring.  Runs
   on a worker domain, or inline on the event-loop thread when no
   workers are available.  Socket I/O happens elsewhere — this function
   never blocks on the network. *)
let process_request t (job : request_job) =
  let req = job.jb_req in
  let shard = Obs.Shard.create () in
  let resp =
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr t.inflight;
        (* request spans were captured into the trace ring below, so the
           merge folds in metric values only — the server aggregate's
           span list cannot grow without bound *)
        with_agg t (fun () -> Obs.Shard.merge shard))
    @@ fun () ->
    Obs.Shard.with_shard shard
    @@ fun () ->
    let t0 = Obs.now_ns () in
    (* request-scoped trace id: accept a sane X-Trace-Id, else mint
       one; stamped into every log record and span from here on *)
    let trace_id =
      match Http.header req "x-trace-id" with
      | Some v when valid_trace_token v -> v
      | _ -> Obs.Span.gen_trace_id ()
    in
    Obs.Span.set_trace_id (Some trace_id);
    Fun.protect ~finally:(fun () -> Obs.Span.set_trace_id None)
    @@ fun () ->
    let resp =
      Obs.Span.with_span "serve.request"
        ~attrs:(fun () ->
          [
            Obs.Log.str "method" req.Http.meth;
            Obs.Log.str "route" (route_label req);
          ])
        (fun () ->
          match route t req with
          | resp -> resp
          | exception e ->
            Obs.Log.error "serve.handler_crashed" ~fields:(fun () ->
                [
                  Obs.Log.str "path" req.Http.path;
                  Obs.Log.str "exn" (Printexc.to_string e);
                ]);
            error_json 500 "internal error")
    in
    let resp =
      {
        resp with
        Http.extra_headers = ("X-Trace-Id", trace_id) :: resp.Http.extra_headers;
      }
    in
    Obs.Metrics.incr (m_responses resp.Http.status);
    let dur_ns = Stdlib.max 0 (Obs.now_ns () - t0) in
    Obs.Metrics.observe m_request_ns (float_of_int dur_ns);
    let rl = route_label req in
    Obs.Metrics.observe (m_route_ns rl) (float_of_int dur_ns);
    Obs.Metrics.incr (m_route_status rl resp.Http.status);
    let dur_ms = float_of_int dur_ns /. 1e6 in
    if dur_ms > t.cfg.slow_request_ms then begin
      Obs.Metrics.incr m_slow;
      Obs.Log.warn "serve.slow_request" ~fields:(fun () ->
          [
            Obs.Log.str "trace_id" trace_id;
            Obs.Log.str "route" rl;
            Obs.Log.int "status" resp.Http.status;
            Obs.Log.float "ms" dur_ms;
          ])
    end;
    (* capture the completed request trace into the ring *)
    (match Obs.Shard.take_span_roots shard with
    | [] -> ()
    | roots ->
      let root =
        match
          List.filter
            (fun (s : Obs.Span.t) -> s.Obs.Span.name = "serve.request")
            roots
        with
        | [ r ] -> r
        | _ -> List.nth roots (List.length roots - 1)
      in
      push_trace t
        {
          te_trace_id = trace_id;
          te_meth = req.Http.meth;
          te_path = req.Http.path;
          te_status = resp.Http.status;
          te_dur_ns = dur_ns;
          te_root = root;
        });
    resp
  in
  {
    dn_conn = job.jb_conn;
    dn_bytes = Http.serialize_response ~keep_alive:job.jb_keep_alive resp;
    dn_keep_alive = job.jb_keep_alive;
  }

(* --- worker pool --- *)

let wake t =
  (* EAGAIN (pipe full) means a wake-up is already pending — fine *)
  try ignore (Unix.write t.wake_w (Bytes.of_string "!") 0 1 : int)
  with Unix.Unix_error _ -> ()

let rec worker_loop t =
  Mutex.lock t.qmutex;
  while Queue.is_empty t.queue && not t.qclosed do
    Condition.wait t.qcond t.qmutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.qmutex (* closed + drained *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.qmutex;
    (match job with
    | Jb_request rj ->
      let msg = process_request t rj in
      Mutex.lock t.done_mutex;
      Queue.push msg t.done_q;
      Mutex.unlock t.done_mutex;
      wake t
    | Jb_refit task ->
      (* daemon work: no connection is waiting on a response *)
      run_refit t task);
    worker_loop t
  end

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  go ()

(* --- the event loop --- *)

(* Per-connection state.  Only the event-loop thread ever touches a
   conn, so none of this needs locking; workers refer to connections by
   id and the loop rechecks liveness when a response comes back. *)
type conn = {
  cn_fd : Unix.file_descr;
  cn_id : int;
  cn_parser : Http.parser;
  cn_pending : Http.request Queue.t;  (* parsed, awaiting dispatch *)
  mutable cn_out : Bytes.t;  (* unsent response bytes *)
  mutable cn_out_off : int;
  mutable cn_busy : bool;  (* a request is with a worker *)
  mutable cn_close_after : bool;  (* close once current work is flushed *)
  mutable cn_lingering : bool;  (* FIN sent; reading until the peer's *)
  mutable cn_peer_eof : bool;
  mutable cn_error : Http.response option;
      (* parse error waiting for in-flight responses to go out first *)
  mutable cn_deadline : float;  (* absolute; infinity while busy *)
  mutable cn_served : int;  (* responses completed on this connection *)
}

let shed_response () =
  Http.response 503 "connection limit reached, try again\n"

(* The heart of the server: one thread multiplexing the listener, the
   worker wake pipe and every live connection with Unix.select.  All
   sockets are non-blocking; reads feed per-connection incremental
   parsers, fully parsed requests go to the worker queue, responses
   come back over [done_q] and are flushed through per-connection
   output buffers.  Worker domains never see a socket. *)
let event_loop t ~inline =
  let conns_by_id : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  let conns_by_fd : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let draining = ref false in
  let chunk = Bytes.create 16384 in
  let now () = Unix.gettimeofday () in
  let record f = with_agg t f in
  let alive c = Hashtbl.mem conns_by_id c.cn_id in

  let close_conn c =
    if alive c then begin
      Hashtbl.remove conns_by_id c.cn_id;
      Hashtbl.remove conns_by_fd c.cn_fd;
      (try Unix.close c.cn_fd with Unix.Unix_error _ -> ());
      record (fun () ->
          Obs.Metrics.incr m_conn_closed;
          Obs.Metrics.set m_conn_live
            (float_of_int (Hashtbl.length conns_by_id)))
    end
  in

  let out_pending c = c.cn_out_off < Bytes.length c.cn_out in

  let enqueue_out c s =
    if not (out_pending c) then begin
      c.cn_out <- Bytes.of_string s;
      c.cn_out_off <- 0
    end
    else begin
      (* a pipelined response lands before the previous one flushed *)
      let rem = Bytes.length c.cn_out - c.cn_out_off in
      let nb = Bytes.create (rem + String.length s) in
      Bytes.blit c.cn_out c.cn_out_off nb 0 rem;
      Bytes.blit_string s 0 nb rem (String.length s);
      c.cn_out <- nb;
      c.cn_out_off <- 0
    end
  in

  (* best-effort non-blocking write; false = the connection died *)
  let flush c =
    let total = Bytes.length c.cn_out in
    let rec go () =
      if c.cn_out_off >= total then true
      else
        match
          Unix.write c.cn_fd c.cn_out c.cn_out_off (total - c.cn_out_off)
        with
        | n ->
          c.cn_out_off <- c.cn_out_off + n;
          go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> false
    in
    go ()
  in

  let update_deadline c =
    let n = now () in
    c.cn_deadline <-
      (if c.cn_lingering then c.cn_deadline
       (* an unflushed earlier response keeps the write deadline armed
          even while a long handler (e.g. /fit) runs *)
       else if out_pending c then n +. t.cfg.write_timeout
       else if c.cn_busy then infinity (* a /fit may legitimately take long *)
       else if Http.parser_partial c.cn_parser then n +. t.cfg.read_timeout
       else n +. t.cfg.idle_timeout)
  in

  (* server-initiated close: FIN first, then read-and-discard until the
     peer's FIN (or a short deadline), so unread request bytes in the
     kernel buffer cannot RST away a response already in flight *)
  let start_linger c =
    if c.cn_peer_eof then close_conn c
    else begin
      c.cn_lingering <- true;
      (try Unix.shutdown c.cn_fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ());
      c.cn_deadline <- now () +. linger_timeout
    end
  in

  (* send a final response (error or shed) and close the connection *)
  let emit_final c resp =
    c.cn_close_after <- true;
    c.cn_error <- None;
    Queue.clear c.cn_pending;
    Atomic.incr t.handled;
    record (fun () -> Obs.Metrics.incr (m_responses resp.Http.status));
    enqueue_out c (Http.serialize_response ~keep_alive:false resp);
    if not (flush c) then close_conn c
    else if not (out_pending c) then start_linger c
    else update_deadline c
  in

  let rec dispatch c =
    if (not c.cn_busy) && not (Queue.is_empty c.cn_pending) then begin
      let req = Queue.pop c.cn_pending in
      let keep_alive =
        Http.keep_alive req && (not !draining) && not c.cn_close_after
      in
      if not keep_alive then c.cn_close_after <- true;
      if c.cn_served > 0 then
        record (fun () -> Obs.Metrics.incr m_conn_reused);
      c.cn_busy <- true;
      update_deadline c;
      Atomic.incr t.inflight;
      let job =
        { jb_conn = c.cn_id; jb_req = req; jb_keep_alive = keep_alive }
      in
      if inline then complete c (process_request t job)
      else begin
        Mutex.lock t.qmutex;
        Queue.push (Jb_request job) t.queue;
        Condition.signal t.qcond;
        Mutex.unlock t.qmutex
      end
    end

  (* a worker's response arrives for this connection *)
  and complete c msg =
    c.cn_busy <- false;
    c.cn_served <- c.cn_served + 1;
    Atomic.incr t.handled;
    if (not msg.dn_keep_alive) || !draining then c.cn_close_after <- true;
    enqueue_out c msg.dn_bytes;
    on_writable c

  (* flush progress; when the buffer empties, move the connection on *)
  and on_writable c =
    if not (flush c) then close_conn c
    else if out_pending c then update_deadline c
    else if c.cn_close_after then begin
      Queue.clear c.cn_pending;
      if not c.cn_busy then start_linger c else update_deadline c
    end
    else begin
      (* the pipeline window may have freed: drain any requests already
         buffered in the parser before dispatching, so a burst larger
         than max_pipeline cannot strand its tail until the read
         deadline (the peer owes no more bytes, so the socket never
         turns readable again) *)
      parse_new c;
      if alive c then
        if
          c.cn_peer_eof && (not c.cn_busy)
          && Queue.is_empty c.cn_pending
          && not (out_pending c)
        then close_conn c (* peer hung up and nothing is owed *)
        else update_deadline c
    end

  (* a deferred parse error goes out only after the responses that
     precede it, keeping pipelined responses in order *)
  and maybe_emit_error c =
    if
      alive c && (not c.cn_busy)
      && Queue.is_empty c.cn_pending
      && not (out_pending c)
    then
      match c.cn_error with
      | Some resp -> emit_final c resp
      | None -> ()

  and parse_new c =
    let rec go () =
      if
        c.cn_error = None && (not c.cn_close_after)
        && Queue.length c.cn_pending < max_pipeline
      then
        match Http.parser_next c.cn_parser with
        | `Request req ->
          Queue.push req c.cn_pending;
          (* nothing may follow a Connection: close request *)
          if Http.keep_alive req then go ()
        | `More -> ()
        | `Error err ->
          let resp =
            match err with
            | Http.Too_large msg -> Http.response 413 (msg ^ "\n")
            | Http.Bad msg -> Http.response 400 (msg ^ "\n")
            | Http.Timeout | Http.Closed -> Http.response 400 "bad request\n"
          in
          c.cn_error <- Some resp
    in
    go ();
    dispatch c;
    maybe_emit_error c
  in

  let want_read c =
    if c.cn_lingering then true
    else
      (not c.cn_peer_eof) && c.cn_error = None && (not c.cn_close_after)
      && Queue.length c.cn_pending < max_pipeline
  in

  let on_readable c =
    let rec rd budget =
      (* bounded per wake-up so one fat connection cannot starve the rest *)
      if budget = 0 then `Progress
      else
        match Unix.read c.cn_fd chunk 0 (Bytes.length chunk) with
        | 0 -> `Eof
        | n ->
          if not c.cn_lingering then Http.parser_feed c.cn_parser chunk 0 n;
          rd (budget - 1)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Progress
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd budget
        | exception Unix.Unix_error _ -> `Dead
    in
    match rd 16 with
    | `Dead -> close_conn c
    | `Eof ->
      c.cn_peer_eof <- true;
      if c.cn_lingering then close_conn c
      else begin
        parse_new c;
        if
          alive c && (not c.cn_busy)
          && Queue.is_empty c.cn_pending
          && (not (out_pending c))
          && c.cn_error = None
        then
          (* nothing owed — including a dangling half request that can
             never complete now *)
          close_conn c
      end
    | `Progress ->
      if not c.cn_lingering then parse_new c;
      if alive c then update_deadline c
  in

  let accept_one fd =
    (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    if fd_int fd >= fd_select_limit then begin
      (* beyond what select can multiplex: blocking 503, then close.
         The send timeout bounds the write so a peer that never reads
         cannot stall the event loop *)
      (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
       with Unix.Unix_error _ -> ());
      ignore (Http.write_response fd (shed_response ()) : bool);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.incr t.handled;
      record (fun () ->
          Obs.Metrics.incr m_shed;
          Obs.Metrics.incr (m_responses 503))
    end
    else begin
      incr next_id;
      let c =
        {
          cn_fd = fd;
          cn_id = !next_id;
          cn_parser =
            Http.parser ~max_header ~max_body:t.cfg.max_body;
          cn_pending = Queue.create ();
          cn_out = Bytes.empty;
          cn_out_off = 0;
          cn_busy = false;
          cn_close_after = false;
          cn_lingering = false;
          cn_peer_eof = false;
          cn_error = None;
          cn_deadline = now () +. t.cfg.idle_timeout;
          cn_served = 0;
        }
      in
      Hashtbl.replace conns_by_id c.cn_id c;
      Hashtbl.replace conns_by_fd c.cn_fd c;
      record (fun () ->
          Obs.Metrics.incr m_conn_opened;
          Obs.Metrics.set m_conn_live
            (float_of_int (Hashtbl.length conns_by_id)));
      if Hashtbl.length conns_by_id > t.cfg.max_conns then begin
        record (fun () -> Obs.Metrics.incr m_shed);
        emit_final c (shed_response ())
      end
    end
  in

  let rec accept_all () =
    match Unix.accept t.lfd with
    | fd, _ ->
      accept_one fd;
      accept_all ()
    | exception
        Unix.Unix_error
          ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
            _,
            _ ) ->
      ()
    | exception Unix.Unix_error (Unix.EMFILE, _, _) ->
      (* out of fds: back off; pending connections stay in the backlog *)
      ()
  in

  let drain_done () =
    let msgs = Queue.create () in
    Mutex.lock t.done_mutex;
    Queue.transfer t.done_q msgs;
    Mutex.unlock t.done_mutex;
    Queue.iter
      (fun msg ->
        match Hashtbl.find_opt conns_by_id msg.dn_conn with
        | Some c -> complete c msg
        | None -> () (* connection died while the worker was busy *))
      msgs
  in

  let begin_drain () =
    if not !draining then begin
      draining := true;
      (try Unix.close t.lfd with Unix.Unix_error _ -> ());
      let all = Hashtbl.fold (fun _ c acc -> c :: acc) conns_by_id [] in
      (* pick up bytes already in the kernel first: a request fully sent
         before the signal landed must be served, not dropped with its
         connection *)
      List.iter (fun c -> if alive c then on_readable c) all;
      (* idle connections close now; ones with a request in flight —
         busy, queued, or still being read — finish it first (dispatch
         marks their response Connection: close) *)
      List.iter
        (fun c ->
          if
            (not c.cn_busy)
            && Queue.is_empty c.cn_pending
            && (not (out_pending c))
            && (not (Http.parser_partial c.cn_parser))
            && c.cn_error = None && not c.cn_lingering
          then close_conn c)
        all
    end
  in

  let sweep tnow =
    let expired =
      Hashtbl.fold
        (fun _ c acc -> if tnow > c.cn_deadline then c :: acc else acc)
        conns_by_id []
    in
    List.iter
      (fun c ->
        if c.cn_lingering || out_pending c then close_conn c
        else if
          Http.parser_partial c.cn_parser
          && (not c.cn_busy)
          && Queue.is_empty c.cn_pending
        then emit_final c (Http.response 408 "request read timed out\n")
        else close_conn c (* idle keep-alive connection *))
      expired
  in

  let rec loop () =
    if Atomic.get t.stop_flag then begin_drain ();
    if !draining && Hashtbl.length conns_by_id = 0 then ()
    else begin
      let tnow = now () in
      sweep tnow;
      if !draining && Hashtbl.length conns_by_id = 0 then ()
      else begin
        let reads = ref [ t.wake_r ] in
        if not !draining then reads := t.lfd :: !reads;
        let writes = ref [] in
        let nearest = ref (tnow +. 0.5) in
        Hashtbl.iter
          (fun _ c ->
            if c.cn_deadline < !nearest then nearest := c.cn_deadline;
            if want_read c then reads := c.cn_fd :: !reads;
            if out_pending c then writes := c.cn_fd :: !writes)
          conns_by_id;
        let timeout = Float.max 0.01 (Float.min 0.5 (!nearest -. tnow)) in
        match Unix.select !reads !writes [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | rs, ws, _ ->
          if List.memq t.wake_r rs then begin
            drain_wake t;
            drain_done ()
          end;
          (* existing connections first: accepting earlier could recycle
             an fd closed by drain_done/on_readable into a fresh
             connection that a stale entry in rs/ws would then resolve
             to, running its handler spuriously *)
          List.iter
            (fun fd ->
              if fd != t.wake_r && fd != t.lfd then
                match Hashtbl.find_opt conns_by_fd fd with
                | Some c -> on_readable c
                | None -> ())
            rs;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt conns_by_fd fd with
              | Some c -> if out_pending c then on_writable c
              | None -> ())
            ws;
          if (not !draining) && List.memq t.lfd rs then accept_all ();
          loop ()
      end
    end
  in
  loop ();
  (* all connections drained: close the job queue so workers exit *)
  Mutex.lock t.qmutex;
  t.qclosed <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex

let run t =
  (* a peer closing mid-write must not kill the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let jobs =
    if Parallel.Pool.domains_available then Stdlib.max 1 t.cfg.jobs else 0
  in
  t.live_workers <- jobs > 0;
  Obs.Log.info "serve.listening" ~fields:(fun () ->
      [
        Obs.Log.str "host" t.cfg.host;
        Obs.Log.int "port" t.bound_port;
        Obs.Log.int "jobs" (Stdlib.max 1 jobs);
      ]);
  if jobs = 0 then event_loop t ~inline:true
  else
    Parallel.Pool.run_workers ~jobs:(jobs + 1) (fun k ->
        if k = 0 then event_loop t ~inline:false else worker_loop t);
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Option.iter Store.close t.store;
  (* final flush so short-lived servers still deliver their telemetry *)
  Option.iter Otlp.shutdown t.otlp;
  (* fold the server's aggregate into the caller's context so a final
     metrics dump (--metrics-out, bench) sees every serve.* series *)
  Mutex.lock t.agg_mutex;
  Obs.Shard.merge t.agg;
  Mutex.unlock t.agg_mutex;
  Obs.Log.info "serve.stopped" ~fields:(fun () ->
      [ Obs.Log.int "requests_handled" (Atomic.get t.handled) ])
