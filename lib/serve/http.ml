type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
  version : string;
}

type read_error =
  | Closed
  | Timeout
  | Too_large of string
  | Bad of string

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

(* --- target decoding --- *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* '+' means space only inside query strings (the form-urlencoded rule);
   in a path segment it is a literal plus, so the path decoder must not
   touch it. *)
let decode ~plus_is_space s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex_value s.[!i + 1], hex_value s.[!i + 2]) with
      | Some hi, Some lo ->
        Buffer.add_char buf (Char.chr ((hi * 16) + lo));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | '+' when plus_is_space -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let percent_decode s = decode ~plus_is_space:false s

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             let dec = decode ~plus_is_space:true in
             match String.index_opt kv '=' with
             | None -> Some (dec kv, "")
             | Some eq ->
               Some
                 ( dec (String.sub kv 0 eq),
                   dec (String.sub kv (eq + 1) (String.length kv - eq - 1)) ))

(* --- blocking-socket read helper (client side, SO_RCVTIMEO sockets) --- *)

let rec read_some fd buf off len =
  match Unix.read fd buf off len with
  | n -> Ok n
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    (* a signal (e.g. SIGTERM starting a drain) must not masquerade as a
       peer close: retry the read *)
    read_some fd buf off len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Error Timeout
  | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> Error Timeout
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    Error Closed

(* --- header parsing --- *)

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None
      | Some colon ->
        let name =
          String.lowercase_ascii (String.trim (String.sub line 0 colon))
        in
        let value =
          String.trim
            (String.sub line (colon + 1) (String.length line - colon - 1))
        in
        Some (name, value))
    lines

let split_crlf s =
  (* String.split_on_char '\n' then strip the trailing '\r' *)
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
         else line)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* A repeated Content-Length is request smuggling bait: two conflicting
   values frame the body two different ways, and even two identical
   copies signal a mangled or hostile intermediary.  Reject outright
   rather than quietly trusting whichever List.assoc_opt finds first. *)
let content_length_of headers =
  match List.filter (fun (name, _) -> name = "content-length") headers with
  | [] -> Ok 0
  | [ (_, v) ] -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Bad (Printf.sprintf "bad Content-Length %S" v)))
  | _ :: _ :: _ -> Error (Bad "duplicate Content-Length headers")

let header_of req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let keep_alive req =
  (* Connection: is a comma-separated token list on both versions;
     "close" wins over "keep-alive", and the absence of either falls
     back to the version default (persistent on 1.1, one-shot on 1.0) *)
  let tokens =
    match header_of req "connection" with
    | None -> []
    | Some v ->
      String.split_on_char ',' v
      |> List.map (fun tok -> String.lowercase_ascii (String.trim tok))
  in
  if List.mem "close" tokens then false
  else if List.mem "keep-alive" tokens then true
  else req.version = "HTTP/1.1"

(* --- incremental request parser --- *)

(* Bytes arrive in arbitrary chunks from a non-blocking socket; the
   parser accumulates them and yields complete requests one at a time.
   Bytes past the end of a request (the start of a pipelined next
   request) stay buffered for the next [next] call instead of being
   discarded. *)

type head = {
  h_meth : string;
  h_target : string;
  h_version : string;
  h_headers : (string * string) list;
  h_content_length : int;
}

type parser = {
  p_max_header : int;
  p_max_body : int;
  mutable p_data : Bytes.t;
  mutable p_start : int;  (* consumed prefix *)
  mutable p_len : int;  (* live bytes at p_data[p_start ..] *)
  mutable p_scanned : int;
      (* bytes of the current head already scanned for the terminator,
         relative to p_start — makes the CRLFCRLF scan O(total bytes)
         instead of O(n^2) across chunks *)
  mutable p_head : head option;  (* parsed head awaiting its body *)
}

let parser ~max_header ~max_body =
  {
    p_max_header = max_header;
    p_max_body = max_body;
    p_data = Bytes.create 4096;
    p_start = 0;
    p_len = 0;
    p_scanned = 0;
    p_head = None;
  }

let parser_feed p src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Http.parser_feed";
  let cap = Bytes.length p.p_data in
  if p.p_start + p.p_len + len > cap then begin
    (* compact the consumed prefix away, growing if still too small *)
    let need = p.p_len + len in
    let dst = if need <= cap then p.p_data else Bytes.create (max need (cap * 2)) in
    Bytes.blit p.p_data p.p_start dst 0 p.p_len;
    p.p_data <- dst;
    p.p_start <- 0
  end;
  Bytes.blit src off p.p_data (p.p_start + p.p_len) len;
  p.p_len <- p.p_len + len

let parser_buffered p = p.p_len
let parser_partial p = p.p_head <> None || p.p_len > 0

(* index just past "\r\n\r\n" relative to p_start, scanning only bytes
   not covered by a previous scan *)
let find_header_end p =
  let data = p.p_data and base = p.p_start in
  let rec go i =
    if i + 3 >= p.p_len then begin
      p.p_scanned <- max 0 (p.p_len - 3);
      None
    end
    else if
      Bytes.get data (base + i) = '\r'
      && Bytes.get data (base + i + 1) = '\n'
      && Bytes.get data (base + i + 2) = '\r'
      && Bytes.get data (base + i + 3) = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go p.p_scanned

let parse_head p head_end =
  let head = Bytes.sub_string p.p_data p.p_start (head_end - 4) in
  let* meth, target, version, lines =
    match split_crlf head with
    | request_line :: rest -> (
      match String.split_on_char ' ' request_line with
      | [ meth; target; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
        Ok (meth, target, version, rest)
      | _ ->
        Error (Bad (Printf.sprintf "malformed request line %S" request_line)))
    | [] -> Error (Bad "empty request")
  in
  let headers = parse_headers lines in
  let* content_length = content_length_of headers in
  let* () =
    if content_length > p.p_max_body then
      Error
        (Too_large
           (Printf.sprintf "body of %d bytes over the %d limit" content_length
              p.p_max_body))
    else Ok ()
  in
  Ok
    {
      h_meth = meth;
      h_target = target;
      h_version = version;
      h_headers = headers;
      h_content_length = content_length;
    }

let request_of_head h body =
  let path, query =
    match String.index_opt h.h_target '?' with
    | None -> (percent_decode h.h_target, [])
    | Some q ->
      ( percent_decode (String.sub h.h_target 0 q),
        parse_query
          (String.sub h.h_target (q + 1) (String.length h.h_target - q - 1)) )
  in
  {
    meth = h.h_meth;
    path;
    query;
    headers = h.h_headers;
    body;
    version = h.h_version;
  }

let rec parser_next p =
  match p.p_head with
  | Some h ->
    if p.p_len >= h.h_content_length then begin
      let body = Bytes.sub_string p.p_data p.p_start h.h_content_length in
      p.p_start <- p.p_start + h.h_content_length;
      p.p_len <- p.p_len - h.h_content_length;
      p.p_head <- None;
      `Request (request_of_head h body)
    end
    else `More
  | None -> (
    match find_header_end p with
    | None ->
      if p.p_len > p.p_max_header then
        `Error
          (Too_large
             (Printf.sprintf "header block over %d bytes" p.p_max_header))
      else `More
    | Some head_end -> (
      match parse_head p head_end with
      | Error e -> `Error e
      | Ok h ->
        p.p_start <- p.p_start + head_end;
        p.p_len <- p.p_len - head_end;
        p.p_scanned <- 0;
        p.p_head <- Some h;
        parser_next p))

(* --- writing --- *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

let response ?(content_type = "text/plain; charset=utf-8")
    ?(extra_headers = []) status body =
  { status; reason = status_reason status; content_type; extra_headers; body }

let json_response status json =
  response ~content_type:"application/json" status (Tiny_json.to_string json)

let serialize_response ?(keep_alive = false) resp =
  let buf = Buffer.create (String.length resp.body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status resp.reason);
  Buffer.add_string buf
    (Printf.sprintf "Content-Type: %s\r\n" resp.content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length resp.body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    resp.extra_headers;
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n\r\n"
     else "Connection: close\r\n\r\n");
  Buffer.add_string buf resp.body;
  Buffer.contents buf

let write_response ?(keep_alive = false) fd resp =
  let payload = Bytes.of_string (serialize_response ~keep_alive resp) in
  let total = Bytes.length payload in
  let rec write_all off =
    if off >= total then true
    else
      match Unix.write fd payload off (total - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error _ -> false
  in
  write_all 0

let header = header_of
let query_param req name = List.assoc_opt name req.query
