type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type read_error =
  | Closed
  | Timeout
  | Too_large of string
  | Bad of string

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

(* --- reading --- *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex_value s.[!i + 1], hex_value s.[!i + 2]) with
      | Some hi, Some lo ->
        Buffer.add_char buf (Char.chr ((hi * 16) + lo));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (percent_decode kv, "")
             | Some eq ->
               Some
                 ( percent_decode (String.sub kv 0 eq),
                   percent_decode
                     (String.sub kv (eq + 1) (String.length kv - eq - 1)) ))

(* A read that maps the socket-level failure modes the server arranges
   for (SO_RCVTIMEO, peer reset) onto read_error. *)
let read_some fd buf off len =
  match Unix.read fd buf off len with
  | n -> Ok n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Error Timeout
  | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> Error Timeout
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    Error Closed
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok 0

let find_header_end s len =
  (* index just past "\r\n\r\n", scanning only the new tail *)
  let rec go i =
    if i + 3 >= len then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None
      | Some colon ->
        let name =
          String.lowercase_ascii (String.trim (String.sub line 0 colon))
        in
        let value =
          String.trim
            (String.sub line (colon + 1) (String.length line - colon - 1))
        in
        Some (name, value))
    lines

let split_crlf s =
  (* String.split_on_char '\n' then strip the trailing '\r' *)
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
         else line)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let read_request fd ~max_header ~max_body =
  let chunk = Bytes.create 4096 in
  let acc = Buffer.create 1024 in
  (* 1. accumulate until the blank line ending the header block *)
  let rec read_head () =
    let contents = Buffer.contents acc in
    match find_header_end contents (String.length contents) with
    | Some head_end -> Ok (contents, head_end)
    | None ->
      if Buffer.length acc > max_header then
        Error (Too_large (Printf.sprintf "header block over %d bytes" max_header))
      else
        let* n = read_some fd chunk 0 (Bytes.length chunk) in
        if n = 0 && Buffer.length acc = 0 then Error Closed
        else if n = 0 then Error (Bad "connection closed mid-header")
        else begin
          Buffer.add_subbytes acc chunk 0 n;
          read_head ()
        end
  in
  let* contents, head_end = read_head () in
  let head = String.sub contents 0 (head_end - 4) in
  let* meth, target, lines =
    match split_crlf head with
    | request_line :: rest -> (
      match String.split_on_char ' ' request_line with
      | [ meth; target; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
        Ok (meth, target, rest)
      | _ -> Error (Bad (Printf.sprintf "malformed request line %S" request_line)))
    | [] -> Error (Bad "empty request")
  in
  let headers = parse_headers lines in
  let header name = List.assoc_opt name headers in
  (* 2. body, bounded by Content-Length which is bounded by max_body *)
  let* content_length =
    match header "content-length" with
    | None -> Ok 0
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Bad (Printf.sprintf "bad Content-Length %S" v)))
  in
  let* () =
    if content_length > max_body then
      Error (Too_large (Printf.sprintf "body of %d bytes over the %d limit"
                          content_length max_body))
    else Ok ()
  in
  let already = String.length contents - head_end in
  let body_buf = Buffer.create content_length in
  Buffer.add_string body_buf
    (String.sub contents head_end (min already content_length));
  let rec read_body () =
    if Buffer.length body_buf >= content_length then
      Ok (Buffer.sub body_buf 0 content_length)
    else
      let* n = read_some fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Error (Bad "connection closed mid-body")
      else begin
        Buffer.add_subbytes body_buf chunk 0 n;
        read_body ()
      end
  in
  let* body = read_body () in
  let path, query =
    match String.index_opt target '?' with
    | None -> (percent_decode target, [])
    | Some q ->
      ( percent_decode (String.sub target 0 q),
        parse_query (String.sub target (q + 1) (String.length target - q - 1))
      )
  in
  Ok { meth; path; query; headers; body }

(* --- writing --- *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

let response ?(content_type = "text/plain; charset=utf-8")
    ?(extra_headers = []) status body =
  { status; reason = status_reason status; content_type; extra_headers; body }

let json_response status json =
  response ~content_type:"application/json" status (Tiny_json.to_string json)

let write_response fd resp =
  let buf = Buffer.create (String.length resp.body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status resp.reason);
  Buffer.add_string buf
    (Printf.sprintf "Content-Type: %s\r\n" resp.content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length resp.body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    resp.extra_headers;
  Buffer.add_string buf "Connection: close\r\n\r\n";
  Buffer.add_string buf resp.body;
  let payload = Buffer.to_bytes buf in
  let total = Bytes.length payload in
  let rec write_all off =
    if off >= total then true
    else
      match Unix.write fd payload off (total - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error _ -> false
  in
  write_all 0

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers
let query_param req name = List.assoc_opt name req.query
