type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let parse_head head =
  match String.split_on_char '\r' head with
  | status_line :: _ -> (
    match String.split_on_char ' ' status_line with
    | _ :: code :: _ -> (
      match int_of_string_opt code with
      | Some status ->
        let headers =
          String.split_on_char '\n' head
          |> List.filter_map (fun line ->
                 let line = String.trim line in
                 match String.index_opt line ':' with
                 | None -> None
                 | Some colon ->
                   Some
                     ( String.lowercase_ascii
                         (String.trim (String.sub line 0 colon)),
                       String.trim
                         (String.sub line (colon + 1)
                            (String.length line - colon - 1)) ))
        in
        Ok (status, headers)
      | None -> Error (Printf.sprintf "bad status line %S" status_line))
    | _ -> Error (Printf.sprintf "bad status line %S" status_line))
  | [] -> Error "empty response"

let find_separator ?(from = 0) raw =
  let n = String.length raw in
  let rec go i =
    if i + 3 >= n then None
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go from

let parse_response raw =
  match
    Option.map
      (fun i ->
        ( String.sub raw 0 i,
          String.sub raw (i + 4) (String.length raw - i - 4) ))
      (find_separator raw)
  with
  | Some (head, body) -> (
    match parse_head head with
    | Ok (status, headers) -> Ok { status; headers; body }
    | Error _ as e -> e)
  | None -> Error "no header/body separator in response"

let write_all fd payload =
  let total = Bytes.length payload in
  let rec go off =
    if off >= total then Ok ()
    else
      match Unix.write fd payload off (total - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "write failed: %s" (Unix.error_message e))
  in
  go 0

(* --- persistent (keep-alive) connections --- *)

type conn = {
  c_fd : Unix.file_descr;
  mutable c_left : string;  (* bytes read past the previous response *)
  mutable c_closed : bool;
}

let connect ?(timeout = 10.) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port))
  with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect failed: %s" (Unix.error_message e))
  | () ->
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    Ok { c_fd = fd; c_left = ""; c_closed = false }

let close conn =
  if not conn.c_closed then begin
    conn.c_closed <- true;
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end

let build_request ?body ?(headers = []) ?(close = false) meth target =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  Buffer.add_string buf "Host: 127.0.0.1\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  (match body with
  | None -> ()
  | Some b ->
    Buffer.add_string buf "Content-Type: application/json\r\n";
    Buffer.add_string buf
      (Printf.sprintf "Content-Length: %d\r\n" (String.length b)));
  if close then Buffer.add_string buf "Connection: close\r\n";
  Buffer.add_string buf "\r\n";
  Option.iter (Buffer.add_string buf) body;
  Buffer.contents buf

let send_request conn ?body ?headers meth target =
  if conn.c_closed then Error "connection already closed"
  else
    write_all conn.c_fd (Bytes.of_string (build_request ?body ?headers meth target))

(* One read via the shared EINTR-safe helper; [Ok 0] is a genuine peer
   close here. *)
let recv conn chunk =
  match Http.read_some conn.c_fd chunk 0 (Bytes.length chunk) with
  | Ok n -> Ok n
  | Error Http.Timeout -> Error "read timed out"
  | Error Http.Closed -> Error "connection reset"
  | Error (Http.Too_large m) | Error (Http.Bad m) -> Error m

(* Read exactly one response, framed by its Content-Length; bytes past
   it (a pipelined follower) are kept for the next call. *)
let recv_response conn =
  if conn.c_closed then Error "connection already closed"
  else begin
    let chunk = Bytes.create 4096 in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf conn.c_left;
    conn.c_left <- "";
    let rec read_head scanned =
      let raw = Buffer.contents buf in
      match find_separator ~from:scanned raw with
      | Some i -> Ok (raw, i)
      | None -> (
        match recv conn chunk with
        | Error _ as e -> e
        | Ok 0 -> Error "connection closed mid-response"
        | Ok n ->
          Buffer.add_subbytes buf chunk 0 n;
          read_head (max 0 (String.length raw - 3)))
    in
    match read_head 0 with
    | Error _ as e -> e
    | Ok (raw, i) -> (
      match parse_head (String.sub raw 0 i) with
      | Error _ as e -> e
      | Ok (status, headers) -> (
        match
          Option.bind (List.assoc_opt "content-length" headers)
            int_of_string_opt
        with
        | None -> Error "response without Content-Length on a reused connection"
        | Some cl ->
          let body_start = i + 4 in
          let rec read_body () =
            let have = Buffer.length buf - body_start in
            if have >= cl then begin
              let raw = Buffer.contents buf in
              conn.c_left <-
                String.sub raw (body_start + cl)
                  (String.length raw - body_start - cl);
              Ok { status; headers; body = String.sub raw body_start cl }
            end
            else
              match recv conn chunk with
              | Error _ as e -> e
              | Ok 0 -> Error "connection closed mid-body"
              | Ok n ->
                Buffer.add_subbytes buf chunk 0 n;
                read_body ()
          in
          read_body ()))
  end

let request_on conn ?body ?headers meth target =
  match send_request conn ?body ?headers meth target with
  | Error _ as e -> e
  | Ok () -> recv_response conn

(* --- one-shot requests (Connection: close, read to EOF) --- *)

let recv_all fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 1024 in
  let rec go () =
    match Http.read_some fd chunk 0 (Bytes.length chunk) with
    | Ok 0 -> Ok (Buffer.contents buf)
    | Ok n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | Error Http.Timeout -> Error "read timed out"
    | Error Http.Closed -> Error "connection reset"
    | Error (Http.Too_large m) | Error (Http.Bad m) -> Error m
  in
  go ()

let send_and_receive ?(timeout = 10.) ~port payload =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  match
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port))
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "connect failed: %s" (Unix.error_message e))
  | () -> (
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
    match write_all fd (Bytes.of_string payload) with
    | Error _ as e -> e
    | Ok () -> (
      match recv_all fd with
      | Error _ as e -> e
      | Ok raw -> parse_response raw))

let request ?body ?headers ?timeout ~port meth target =
  send_and_receive ?timeout ~port
    (build_request ?body ?headers ~close:true meth target)

let request_raw ?timeout ~port bytes = send_and_receive ?timeout ~port bytes
