type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let recv_all fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Ok (Buffer.contents buf)
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "read timed out"
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "read failed: %s" (Unix.error_message e))
  in
  go ()

let find_separator raw =
  let n = String.length raw in
  let rec go i =
    if i + 3 >= n then None
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let parse_response raw =
  match
    Option.map
      (fun i ->
        ( String.sub raw 0 i,
          String.sub raw (i + 4) (String.length raw - i - 4) ))
      (find_separator raw)
  with
  | Some (head, body) -> (
    match String.split_on_char '\r' head with
    | status_line :: _ -> (
      match String.split_on_char ' ' status_line with
      | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some status ->
          let headers =
            String.split_on_char '\n' head
            |> List.filter_map (fun line ->
                   let line = String.trim line in
                   match String.index_opt line ':' with
                   | None -> None
                   | Some colon ->
                     Some
                       ( String.lowercase_ascii
                           (String.trim (String.sub line 0 colon)),
                         String.trim
                           (String.sub line (colon + 1)
                              (String.length line - colon - 1)) ))
          in
          Ok { status; headers; body }
        | None -> Error (Printf.sprintf "bad status line %S" status_line))
      | _ -> Error (Printf.sprintf "bad status line %S" status_line))
    | [] -> Error "empty response")
  | None -> Error "no header/body separator in response"

let send_and_receive ?(timeout = 10.) ~port payload =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  match
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port))
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "connect failed: %s" (Unix.error_message e))
  | () -> (
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
    let payload = Bytes.of_string payload in
    let total = Bytes.length payload in
    let rec write_all off =
      if off >= total then Ok ()
      else
        match Unix.write fd payload off (total - off) with
        | n -> write_all (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "write failed: %s" (Unix.error_message e))
    in
    match write_all 0 with
    | Error _ as e -> e
    | Ok () -> (
      match recv_all fd with
      | Error _ as e -> e
      | Ok raw -> parse_response raw))

let request ?body ?(headers = []) ?timeout ~port meth target =
  let payload =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
    Buffer.add_string buf "Host: 127.0.0.1\r\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
      headers;
    (match body with
    | None -> ()
    | Some b ->
      Buffer.add_string buf "Content-Type: application/json\r\n";
      Buffer.add_string buf
        (Printf.sprintf "Content-Length: %d\r\n" (String.length b)));
    Buffer.add_string buf "Connection: close\r\n\r\n";
    Option.iter (Buffer.add_string buf) body;
    Buffer.contents buf
  in
  send_and_receive ?timeout ~port payload

let request_raw ?timeout ~port bytes = send_and_receive ?timeout ~port bytes
