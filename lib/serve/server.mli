(** The dlosn prediction-serving layer: a dependency-free HTTP/1.1
    server on Unix sockets exposing fitted DL-model predictions and the
    {!Obs} metrics registry.

    {2 Endpoints}

    - [GET /healthz] — liveness: [200 ok].
    - [GET /metrics] — the {!Obs.Metrics} registry in Prometheus text
      exposition format (all [fit.*]/[pde.*]/[pool.*]/[serve.*] series
      recorded by this process).
    - [POST /fit] — calibrate a registry model against a posted density
      observation (JSON; see [docs/SERVING.md]).  The optional ["model"]
      field picks any {!Dl.Predictor} registry entry except ["network"]
      (default ["dl"]); an unknown name is a structured 400 listing the
      registered names.  The result is cached keyed by the MD5 of the
      request body {e and} the resolved solver configuration (scheme,
      grid size, time step, reference-stepper flag) {e and} the
      resolved model name, so re-posting identical input is a cache hit
      while requests differing only in solver options or model never
      alias.
    - [GET /predict?x=&t=[&fit=]] — density I(x, t) under a cached fit
      ([fit] defaults to the most recently completed one).
    - [POST /predict] — batch evaluation: a JSON body
      [{"fit": id?, "points": [[x, t], ...]}] evaluates up to 10k
      points against one cached fit in a single round-trip, reusing
      the per-fit solution memo (one PDE solve per distinct [t]).
    - [POST /observe] — streaming vote ingestion: a JSON batch of
      timestamped votes for a story folds into an incremental
      {!Live.Profile} (O(1) per vote), and drift of the currently
      serving fit against the accumulated profile may schedule a
      warm-started background refit on the worker pool.  See
      [docs/STREAMING.md].
    - [GET /live[?story=]] — live-ingestion status per story: votes,
      watermark, drop counters, fits/refits completed, last drift.
    - [GET /debug/traces?n=] — the most recent completed request
      traces (default 32, newest first) as JSON: trace id, method,
      path, status, duration and the full [serve.request] span tree.
      Spans served from a store-recovered fit carry a
      [link.trace_id] attribute pointing at the originating fit's
      trace (across process restarts).
    - [GET /debug/flame] — every trace in the ring rendered as
      folded-stack text ({!Obs.Span.to_folded}), ready for
      flamegraph.pl or speedscope.

    {2 Tracing}

    Every parsed request gets a trace id — the [X-Trace-Id] header
    when it is a sane token (1–64 chars of [[A-Za-z0-9_-]]), otherwise
    a fresh 32-hex id.  The id is stamped into every log record the
    request emits, returned as an [X-Trace-Id] response header, and
    attached to the request's [serve.request] span tree, which lands
    in a bounded ring of [config.trace_capacity] recent traces served
    by the [/debug] endpoints.  Requests slower than
    [config.slow_request_ms] emit a ["serve.slow_request"] warn log
    carrying the trace id.  With [config.otlp_endpoint] set, spans,
    logs and a periodic metrics snapshot are exported to that OTLP/
    HTTP collector via {!Otlp} (batched, retried, dropped on final
    failure — a dead collector never wedges the server).

    {2 Persistence}

    With [config.store_dir] set, the server opens a {!Store} there on
    boot: recovered checkpoints warm-start the fit cache (a restart
    serves previously fitted stories from [GET /predict] without
    refitting, and re-posting a pre-restart [/fit] body is a cache
    hit), and every freshly computed ["dl"] / ["dl-linear"] fit is
    appended durably to the store's WAL before the response is written
    (records carry the model name; closure-backed models — baselines,
    epidemic — are cached in memory only).  Store recovery
    counters ([store.replayed_records], [store.recovered_partial], …)
    are recorded into the server aggregate, so they appear on
    [GET /metrics].  A store failure during a request degrades to a
    warn log; the fit response itself still succeeds.

    {2 Concurrency and robustness}

    A single event-loop thread multiplexes the listener and every live
    connection with [Unix.select]: sockets are non-blocking, each
    connection owns an incremental {!Http.parser} and a buffered output
    queue, and only {e fully parsed} requests are handed to the worker
    pool (run via {!Parallel.Pool.run_workers}; handled inline on the
    event loop when Domains are unavailable).  Serialized responses
    travel back over a wake pipe, so worker domains never touch a
    socket and a slow or stalled peer can never block a worker.

    Connections are HTTP/1.1 keep-alive by default ([Connection:]
    headers honoured on both 1.0 and 1.1; see {!Http.keep_alive}), with
    pipelining: bytes past one request's body are preserved as the
    start of the next, and up to a small window of parsed requests may
    queue per connection — responses always return in request order.

    Per-connection deadlines replace socket timeouts: a connection
    mid-request has [read_timeout] to finish it (then [408]); one with
    a stalled response write has [write_timeout] (then close); an idle
    keep-alive connection is closed silently after [idle_timeout]; a
    connection whose request is with a worker has no deadline (a /fit
    may legitimately take long).  The header block and body are
    bounded, and once more than [max_conns] connections are live, new
    ones are answered [503] and closed.  {!stop} (wired to
    SIGINT/SIGTERM by {!install_signal_handlers}) closes the listener,
    lets every in-flight request — queued, running, or still being
    read — finish with a [Connection: close] response, and returns
    from {!run}.

    Connection-lifecycle series on [/metrics]:
    [serve.connections_opened], [serve.connections_closed],
    [serve.connections_reused] (requests served on a connection that
    had already served one — the keep-alive win) and the
    [serve.live_connections] gauge (the shedding quantity).

    {2 Observability}

    Each request records into a private {!Obs.Shard} merged under a
    lock into a server-wide aggregate context after the response is
    written — [GET /metrics] renders that aggregate, so worker-domain
    metrics are never read racily.  When {!run} returns, the aggregate
    is merged into the calling domain's context so a final
    [--metrics-out] dump sees everything the server recorded. *)

type config = {
  host : string;  (** bind address (default ["127.0.0.1"]) *)
  port : int;  (** 0 picks an ephemeral port, see {!port} *)
  jobs : int;
      (** request-handling workers; clamped to 1 without Domains *)
  max_conns : int;
      (** live-connection cap before 503 shedding (default 1000; the
          event loop's [Unix.select] cannot watch fds ≥ 1024, so caps
          above that shed on the fd value instead) *)
  read_timeout : float;
      (** seconds a partially read request may stall before [408]
          (default 10) *)
  write_timeout : float;
      (** seconds a response write may stall before close (default 10) *)
  idle_timeout : float;
      (** seconds an idle keep-alive connection is held open
          (default 30) *)
  max_body : int;  (** request body cap in bytes (default 2 MiB) *)
  fit_starts_cap : int;
      (** upper bound on the Nelder--Mead restarts a [/fit] request may
          ask for (default 16) *)
  store_dir : string option;
      (** persistent model store directory; [None] (the default) keeps
          the fit cache purely in-memory *)
  slow_request_ms : float;
      (** requests slower than this warn with their trace id
          (default 1000) *)
  trace_capacity : int;
      (** ring-buffer slots for completed request traces served by
          [/debug/traces] and [/debug/flame] (default 128) *)
  otlp_endpoint : string option;
      (** OTLP/HTTP collector ([http://host:port]) for span, log and
          metric export; [None] (the default) exports nothing *)
  otlp_sample_rate : float;
      (** head-sampling keep fraction for exported traces and their
          logs, keyed on the trace id ([Otlp.sampled]);
          1.0 (the default) exports everything *)
  live_lateness : float;
      (** default out-of-order window for [POST /observe] streams, in
          event-time hours (default 2; a story's first batch may
          override it with a ["lateness"] field) *)
  drift_threshold : float;
      (** mean relative error of the serving fit against the live
          profile beyond which a refit is scheduled (default
          {!Live.Drift.default}) *)
  refit_min_votes : int;
      (** profile votes required before the daemon fits at all *)
  refit_min_new_votes : int;
      (** votes that must have arrived since the serving fit *)
  live_seed : int;
      (** rng seed for daemon fits — fixed, so a refit on the same
          profile state is exactly reproducible offline (default 7) *)
  graph : Socialnet.Dataset.t option;
      (** influence graph used to resolve hop distances for votes that
          arrive without a ["distance"] label (the first batch must
          then name the story's ["initiator"]); [None] (the default)
          makes distance labels mandatory *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
(** Bind and listen (the port is ready once [create] returns, so a
    caller may start issuing requests as soon as {!run} is entered in
    another thread).  Forces {!Obs.set_enabled}[ true]: a metrics
    endpoint on a disabled registry would serve only zeros.
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The actual bound port (useful with [config.port = 0]). *)

val run : t -> unit
(** Serve until {!stop}.  Blocks the calling domain; spawns
    [config.jobs] worker domains when available. *)

val stop : t -> unit
(** Request shutdown: stop accepting, drain in-flight requests, make
    {!run} return.  Safe to call from a signal handler or another
    thread/domain; idempotent. *)

val install_signal_handlers : t -> unit
(** Route SIGINT and SIGTERM to {!stop} (graceful drain). *)

val requests_handled : t -> int
(** Connections fully handled so far (shed connections included). *)
