(** Versioned point-in-time snapshot of every live fit record.

    A snapshot is written to a temporary file, fsynced, and renamed
    over [snapshot.bin] (with a directory fsync), so readers only ever
    see either the old complete snapshot or the new complete one —
    never a torn mixture.  Records are CRC-framed individually, like
    WAL entries; a reader that hits a corrupt frame keeps the valid
    prefix and reports the corruption instead of failing. *)

val file_name : string
(** ["snapshot.bin"], relative to the store directory. *)

type read = {
  records : Format.record list;  (** valid prefix, write order *)
  declared : int;  (** record count the header promised *)
  corruption : string option;
      (** set when the file was cut short or a frame failed its CRC *)
}

val read : dir:string -> read option
(** [None] when no snapshot exists. *)

val write : ?fsync:bool -> dir:string -> Format.record list -> int
(** Atomically replace the snapshot with these records; returns the
    file size in bytes.  [fsync] (default true) syncs the file and
    directory around the rename. *)
