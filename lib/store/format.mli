(** On-disk representation of a fit record.

    One record captures everything needed to warm-start prediction
    serving without re-running calibration: the fitted parameters, the
    t = 1 observation knots phi was built from, the solver
    configuration the fit ran under, the training horizon, accuracy
    metrics and provenance.  Floats are stored as their IEEE-754 bit
    patterns (little-endian), so a decoded record is bit-equal to the
    encoded one — reloading a fit never perturbs its predictions.

    The payload encoding is versioned ({!version}); framing (length +
    CRC32 header) is shared by the WAL and the snapshot file, see
    {!frame} / {!read_frame}. *)

type record = {
  id : string;  (** cache / lookup key (stable across restarts) *)
  story : string;  (** human label, e.g. ["story-123"]; may be empty *)
  source : string;  (** provenance: ["serve"], ["cli"], ["hook"], ... *)
  model : string;
      (** registry name of the model that produced the fit (["dl"] or
          ["dl-linear"]; v1 records decode as ["dl"]).  For
          ["dl-linear"] the carrying capacity in [params] is the
          placeholder 1 from [Linear_model.to_dl]. *)
  created_ns : int;  (** wall-clock creation time, integer ns *)
  params : Dl.Params.t;  (** fitted (d, K, r, l, L) *)
  phi_xs : float array;  (** phi knot abscissae (observed distances) *)
  phi_densities : float array;  (** observed t = 1 densities *)
  phi_construction : Dl.Initial.construction;
  scheme : Dl.Model.scheme;  (** solver scheme the fit ran under *)
  nx : int;  (** fitting grid resolution *)
  dt : float;  (** fitting time step *)
  reference_stepper : bool;
      (** true when the fit ran on the reference (non-workspace) PDE
          stepper — part of the solver signature, so fits made under
          different solver configs never alias *)
  fit_times : float array;  (** training horizon (observation hours) *)
  training_error : float;
  evaluations : int;  (** PDE solves spent by the fit *)
  starts : int;  (** Nelder--Mead restarts *)
  trace_id : string;
      (** trace id of the request/daemon run that produced the fit
          (empty when tracing was off or for pre-v3 records) — lets a
          restarted server link its serving spans back to the
          originating fit's trace *)
  obs_cursor : float;
      (** live-ingestion watermark (event-time hours) when the fit was
          checkpointed; 0 for batch fits and pre-v3 records.  A
          restarted server hands it back to the replay driver so
          ingestion resumes where the stream left off. *)
}

val version : int
(** Payload encoding version written by {!encode} (currently 3, which
    added the [trace_id] and [obs_cursor] fields; v2 added [model]). *)

val min_version : int
(** Oldest payload version {!decode} still accepts (1; such records
    carry no model name and decode with [model = "dl"]).  File headers
    in the same range are accepted too, so a pre-v2 store opens
    unchanged. *)

val phi : record -> Dl.Initial.t
(** Rebuild the initial-density function from the stored knots.  The
    construction is deterministic, so the rebuilt phi evaluates
    bit-identically to the one the fit used.
    @raise Invalid_argument if the stored knots are not a valid
    observation set (possible only for hand-corrupted records — CRC
    framing rejects bit rot). *)

val solver_signature :
  scheme:Dl.Model.scheme -> nx:int -> dt:float -> reference:bool -> string
(** Canonical string describing a solver configuration, used in fit
    cache keys (and derived record ids) so that requests differing
    only in solver config hash differently. *)

val scheme_name : Dl.Model.scheme -> string
(** ["ftcs"], ["crank-nicolson"] or ["strang"]. *)

val scheme_of_name : string -> (Dl.Model.scheme, string) result

val equal : record -> record -> bool
(** Structural equality with floats compared by bit pattern (NaN-safe,
    distinguishes [-0.] from [0.]). *)

(** {2 Payload encoding} *)

val encode : record -> string
(** Versioned binary payload (no framing). *)

val decode : string -> (record, string) result
(** Inverse of {!encode}; also accepts any older payload version down
    to {!min_version}.  Rejects unknown versions, truncated payloads
    and trailing garbage. *)

(** {2 Framing}

    A frame is [[u32 payload-length][u32 CRC32(payload)][payload]],
    little-endian.  Both store files are sequences of frames after
    their 12-byte header ([8-byte magic + u32 format version]). *)

val crc32 : ?crc:int -> string -> int
(** CRC-32 (IEEE 802.3, the zlib polynomial).  [crc] chains a running
    checksum (default 0). *)

val frame : string -> string
(** Wrap a payload in its frame. *)

val max_payload : int
(** Upper bound on a frame's payload length (16 MiB); longer frames
    are treated as corruption by {!read_frame}. *)

type frame_result =
  | Frame of string * int  (** payload, offset just past the frame *)
  | End  (** clean end of data *)
  | Corrupt of string  (** truncated tail, bad length or CRC mismatch *)

val read_frame : string -> pos:int -> frame_result
(** Scan one frame from [buf] at [pos].  Anything short, over-long or
    failing its CRC is [Corrupt] — the caller stops there and treats
    the remainder as a torn tail. *)

val header : magic:string -> string
(** 12-byte file header: [magic] (8 bytes) + u32 {!version}. *)

val check_header : magic:string -> string -> (int, string) result
(** Validate a file's header; returns the offset of the first frame. *)
