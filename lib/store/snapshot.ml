let file_name = "snapshot.bin"
let magic = "DLOSNSN1"

let path ~dir = Filename.concat dir file_name

type read = {
  records : Format.record list;
  declared : int;
  corruption : string option;
}

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let read ~dir =
  match read_file (path ~dir) with
  | None -> None
  | Some buf -> (
    match Format.check_header ~magic buf with
    | Error msg ->
      Some { records = []; declared = 0; corruption = Some ("bad snapshot header: " ^ msg) }
    | Ok pos ->
      if String.length buf < pos + 4 then
        Some { records = []; declared = 0; corruption = Some "snapshot count missing" }
      else begin
        let declared =
          Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string buf) pos)
          land 0xffff_ffff
        in
        let rec scan acc n pos =
          if n = declared then
            if pos = String.length buf then
              { records = List.rev acc; declared; corruption = None }
            else
              { records = List.rev acc; declared;
                corruption = Some "trailing bytes after the declared records" }
          else
            match Format.read_frame buf ~pos with
            | Format.End ->
              { records = List.rev acc; declared;
                corruption =
                  Some (Printf.sprintf "snapshot ends after %d of %d records" n declared) }
            | Format.Corrupt msg ->
              { records = List.rev acc; declared; corruption = Some msg }
            | Format.Frame (payload, next) -> (
              match Format.decode payload with
              | Ok r -> scan (r :: acc) (n + 1) next
              | Error msg ->
                { records = List.rev acc; declared;
                  corruption = Some ("undecodable record: " ^ msg) })
        in
        Some (scan [] 0 (pos + 4))
      end)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write ?(fsync = true) ~dir records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Format.header ~magic);
  let count = Bytes.create 4 in
  Bytes.set_int32_le count 0 (Int32.of_int (List.length records));
  Buffer.add_bytes buf count;
  List.iter
    (fun r -> Buffer.add_string buf (Format.frame (Format.encode r)))
    records;
  let contents = Buffer.contents buf in
  let tmp = path ~dir ^ Printf.sprintf ".tmp.%d" (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.unsafe_of_string contents in
      let rec go off =
        if off < Bytes.length b then
          go (off + Unix.write fd b off (Bytes.length b - off))
      in
      go 0;
      if fsync then Unix.fsync fd);
  Unix.rename tmp (path ~dir);
  if fsync then fsync_dir dir;
  String.length contents
