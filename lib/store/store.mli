(** Persistent model store: durable fit checkpoints on disk.

    A store directory holds two files — an atomically-replaced
    {!Snapshot} ([snapshot.bin]) and an append-only {!Wal} ([wal.log]).
    Opening a store loads the snapshot, replays the WAL over it
    (last-wins per record id), truncates any torn WAL tail, and keeps
    the whole record set in memory; {!append} makes a new fit durable
    immediately (framed, CRC'd, fsynced); {!gc} folds the WAL into a
    fresh snapshot.  Recovery never fails on bit rot or a torn tail:
    the valid prefix is kept and a [store.recovered_partial] warning is
    logged (with the [store.recovered_partial] counter bumped).

    All operations on a {!t} are thread-safe (a single internal lock);
    the serving layer appends from worker domains.

    Format spec and recovery semantics: [docs/PERSISTENCE.md]. *)

module Format = Format
module Wal = Wal
module Snapshot = Snapshot

type t

type info = {
  snapshot_records : int;  (** records loaded from the snapshot *)
  wal_records : int;  (** records replayed from the WAL *)
  dropped_bytes : int;  (** torn / corrupt bytes discarded on open *)
  corruption : string option;  (** first corruption encountered, if any *)
}

val open_ : ?fsync:bool -> ?source:string -> string -> t
(** Open (creating the directory and files as needed) and recover.
    [fsync] (default true) makes every append and compaction sync;
    turn it off only for benchmarking.  [source] (default ["store"])
    labels records appended through {!record_of_fit} defaults.
    @raise Unix.Unix_error when the directory cannot be created or the
    files cannot be opened — {e not} on corrupt contents, which
    degrade to partial recovery. *)

val load : string -> Format.record list * info
(** Read-only recovery: the records a fresh {!open_} would see,
    without holding the WAL open or truncating its tail.  Safe to run
    against a store another process is writing.  A missing directory
    loads as empty. *)

val dir : t -> string
val info : t -> info
(** Recovery statistics from open time. *)

val records : t -> Format.record list
(** Live records, oldest first (duplicate ids collapsed onto their
    first position, holding the latest record). *)

val record_count : t -> int
val find : t -> string -> Format.record option

val last_id : t -> string option
(** Id of the most recently appended (or, after recovery, last
    replayed) record — what a restarted server treats as the default
    fit for [GET /predict]. *)

val append : t -> Format.record -> unit
(** Durably append (WAL write + fsync); replaces any live record with
    the same id. *)

val wal_bytes : t -> int

val gc : ?keep_last:int -> ?max_age_ns:int -> t -> unit
(** Compaction with optional retention: drop all but the newest
    [keep_last] records (by append/replay order) and any record whose
    [created_ns] is older than [max_age_ns] before now, then write the
    surviving records into a new snapshot (atomically replacing the
    old one) and truncate the WAL.  With neither option this is pure
    compaction — every live record survives.  Dropped records count
    into [store.gc_dropped_records]; if the latest record is dropped,
    {!last_id} moves to the newest survivor.  A crash between the two
    steps only means the next open replays records already present in
    the snapshot — recovery is idempotent because replay is last-wins
    by id. *)

val close : t -> unit

(** {2 Building records from fits} *)

val record_of_fit :
  ?id:string ->
  ?story:string ->
  ?source:string ->
  ?model:string ->
  ?trace_id:string ->
  ?obs_cursor:float ->
  phi:Dl.Initial.t ->
  config:Dl.Fit.config ->
  result:Dl.Fit.result ->
  unit ->
  Format.record
(** Capture a completed {!Dl.Fit.fit} as a store record.  The phi
    knots, solver configuration (scheme, grid, dt, reference-stepper
    flag), training horizon and accuracy metrics all come along.
    [model] (default ["dl"]) names the registry model the parameters
    belong to — the serving layer passes ["dl-linear"] for linear
    diffusive fits it embedded via [Linear_model.to_dl].  When [id] is
    omitted it is derived from a digest of the record content (same
    fit, same id — appends deduplicate). *)

val attach_fit_hook : t -> ?source:string -> unit -> unit
(** Install the process-wide {!Dl.Fit.set_on_fit} hook so every
    completed [Fit.fit] (pipeline runs, batch evaluation, bootstrap
    refits) is appended to [t] the moment it finishes. *)

val detach_fit_hook : unit -> unit
