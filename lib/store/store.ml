module Format = Format
module Wal = Wal
module Snapshot = Snapshot

(* --- store.* metrics (handles are idempotent to register) --- *)

let m_appends = Obs.Metrics.counter "store.appends"
let m_append_bytes = Obs.Metrics.counter "store.append_bytes"
let m_replayed = Obs.Metrics.counter "store.replayed_records"
let m_dropped_bytes = Obs.Metrics.counter "store.dropped_bytes"
let m_recovered_partial = Obs.Metrics.counter "store.recovered_partial"
let m_compactions = Obs.Metrics.counter "store.compactions"
let m_snapshot_bytes = Obs.Metrics.counter "store.snapshot_bytes"
let m_records = Obs.Metrics.gauge "store.records"

type info = {
  snapshot_records : int;
  wal_records : int;
  dropped_bytes : int;
  corruption : string option;
}

type t = {
  dir : string;
  fsync : bool;
  source : string;
  mutex : Mutex.t;
  table : (string, Format.record) Hashtbl.t;
  mutable order : string list;  (* ids, newest first *)
  mutable last : string option;
  mutable wal : Wal.t;
  info : info;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Fold one record into the live table: last write wins per id, the
   record keeps its first position in the ordering. *)
let absorb t r =
  if not (Hashtbl.mem t.table r.Format.id) then t.order <- r.Format.id :: t.order;
  Hashtbl.replace t.table r.Format.id r;
  t.last <- Some r.Format.id

let warn_partial ~dir ~file ~dropped_bytes msg =
  Obs.Metrics.incr m_recovered_partial;
  Obs.Metrics.incr ~by:dropped_bytes m_dropped_bytes;
  Obs.Log.warn "store.recovered_partial" ~fields:(fun () ->
      [
        Obs.Log.str "dir" dir;
        Obs.Log.str "file" file;
        Obs.Log.int "dropped_bytes" dropped_bytes;
        Obs.Log.str "error" msg;
      ])

let recover dir =
  let snap_records, snap_corruption =
    match Snapshot.read ~dir with
    | None -> ([], None)
    | Some { Snapshot.records; corruption; _ } -> (records, corruption)
  in
  (match snap_corruption with
  | Some msg -> warn_partial ~dir ~file:Snapshot.file_name ~dropped_bytes:0 msg
  | None -> ());
  let wal = Wal.replay ~dir in
  (match wal.Wal.corruption with
  | Some msg ->
    warn_partial ~dir ~file:Wal.file_name ~dropped_bytes:wal.Wal.dropped_bytes
      msg
  | None -> ());
  let corruption =
    match (snap_corruption, wal.Wal.corruption) with
    | Some m, _ | None, Some m -> Some m
    | None, None -> None
  in
  ( snap_records,
    wal,
    {
      snapshot_records = List.length snap_records;
      wal_records = List.length wal.Wal.records;
      dropped_bytes = wal.Wal.dropped_bytes;
      corruption;
    } )

let open_ ?(fsync = true) ?(source = "store") dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let snap_records, wal_replay, info = recover dir in
  let t =
    {
      dir;
      fsync;
      source;
      mutex = Mutex.create ();
      table = Hashtbl.create 64;
      order = [];
      last = None;
      wal = Wal.open_for_append ~fsync ~valid_bytes:wal_replay.Wal.valid_bytes dir;
      info;
    }
  in
  List.iter (absorb t) snap_records;
  List.iter (absorb t) wal_replay.Wal.records;
  Obs.Metrics.incr ~by:(info.snapshot_records + info.wal_records) m_replayed;
  Obs.Metrics.set m_records (float_of_int (Hashtbl.length t.table));
  Obs.Log.info "store.opened" ~fields:(fun () ->
      [
        Obs.Log.str "dir" dir;
        Obs.Log.int "records" (Hashtbl.length t.table);
        Obs.Log.int "snapshot_records" info.snapshot_records;
        Obs.Log.int "wal_records" info.wal_records;
        Obs.Log.int "dropped_bytes" info.dropped_bytes;
      ]);
  t

let load dir =
  if not (Sys.file_exists dir) then
    ([], { snapshot_records = 0; wal_records = 0; dropped_bytes = 0; corruption = None })
  else begin
    let snap_records, wal_replay, info = recover dir in
    (* same last-wins fold as open_, without touching the files *)
    let table = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun r ->
        if not (Hashtbl.mem table r.Format.id) then order := r.Format.id :: !order;
        Hashtbl.replace table r.Format.id r)
      (snap_records @ wal_replay.Wal.records);
    (List.rev_map (Hashtbl.find table) !order, info)
  end

let dir t = t.dir
let info t = t.info

let records t =
  locked t (fun () -> List.rev_map (Hashtbl.find t.table) t.order)

let record_count t = locked t (fun () -> Hashtbl.length t.table)
let find t id = locked t (fun () -> Hashtbl.find_opt t.table id)
let last_id t = locked t (fun () -> t.last)
let wal_bytes t = locked t (fun () -> Wal.size t.wal)

let append t record =
  locked t @@ fun () ->
  let bytes = Wal.append t.wal record in
  absorb t record;
  Obs.Metrics.incr m_appends;
  Obs.Metrics.incr ~by:bytes m_append_bytes;
  Obs.Metrics.set m_records (float_of_int (Hashtbl.length t.table));
  Obs.Log.debug "store.appended" ~fields:(fun () ->
      [
        Obs.Log.str "id" record.Format.id;
        Obs.Log.str "story" record.Format.story;
        Obs.Log.int "bytes" bytes;
      ])

let m_gc_dropped = Obs.Metrics.counter "store.gc_dropped_records"

let gc ?keep_last ?max_age_ns t =
  locked t @@ fun () ->
  (* Retention first: walk ids newest-first, keeping at most
     [keep_last] records and none older than [max_age_ns]. *)
  let cutoff =
    match max_age_ns with
    | None -> None
    | Some age -> Some (Obs.now_ns () - Stdlib.max 0 age)
  in
  let _, keep_newest_last, dropped =
    List.fold_left
      (fun (rank, keep, dropped) id ->
        let r = Hashtbl.find t.table id in
        let over_cap =
          match keep_last with Some k -> rank >= k | None -> false
        in
        let too_old =
          match cutoff with
          | Some c -> r.Format.created_ns < c
          | None -> false
        in
        if over_cap || too_old then (rank + 1, keep, id :: dropped)
        else (rank + 1, id :: keep, dropped))
      (0, [], []) t.order
  in
  List.iter (Hashtbl.remove t.table) dropped;
  t.order <- List.rev keep_newest_last;
  (match t.last with
  | Some id when not (Hashtbl.mem t.table id) ->
    t.last <- (match t.order with id :: _ -> Some id | [] -> None)
  | _ -> ());
  let live = List.rev_map (Hashtbl.find t.table) t.order in
  let bytes = Snapshot.write ~fsync:t.fsync ~dir:t.dir live in
  Wal.reset t.wal;
  Obs.Metrics.incr m_compactions;
  Obs.Metrics.incr ~by:(List.length dropped) m_gc_dropped;
  Obs.Metrics.incr ~by:bytes m_snapshot_bytes;
  Obs.Metrics.set m_records (float_of_int (Hashtbl.length t.table));
  Obs.Log.info "store.compacted" ~fields:(fun () ->
      [
        Obs.Log.str "dir" t.dir;
        Obs.Log.int "records" (List.length live);
        Obs.Log.int "dropped" (List.length dropped);
        Obs.Log.int "snapshot_bytes" bytes;
      ])

let close t = locked t (fun () -> Wal.close t.wal)

(* --- capturing fits --- *)

let record_of_fit ?id ?(story = "") ?(source = "store") ?(model = "dl")
    ?(trace_id = "") ?(obs_cursor = 0.) ~phi ~config ~result () =
  let knots = Dl.Initial.knots phi in
  let r =
    {
      Format.id = (match id with Some i -> i | None -> "");
      story;
      source;
      model;
      created_ns = Obs.now_ns ();
      params = result.Dl.Fit.params;
      phi_xs = Array.map fst knots;
      phi_densities = Array.map snd knots;
      phi_construction = Dl.Initial.construction phi;
      scheme = config.Dl.Fit.solver_scheme;
      nx = config.Dl.Fit.solver_nx;
      dt = config.Dl.Fit.solver_dt;
      reference_stepper = Numerics.Pde.use_reference_stepper ();
      fit_times = config.Dl.Fit.fit_times;
      training_error = result.Dl.Fit.training_error;
      evaluations = result.Dl.Fit.evaluations;
      starts = config.Dl.Fit.starts;
      trace_id;
      obs_cursor;
    }
  in
  match id with
  | Some _ -> r
  | None ->
    (* content-derived id: identical fits deduplicate on append *)
    { r with Format.id = "fit-" ^ Digest.to_hex (Digest.string (Format.encode r)) }

let attach_fit_hook t ?source () =
  let source = match source with Some s -> s | None -> t.source in
  Dl.Fit.set_on_fit
    (Some
       (fun ev ->
         let record =
           record_of_fit ?id:ev.Dl.Fit.ev_id
             ?story:ev.Dl.Fit.ev_id ~source
             ?trace_id:(Obs.Span.trace_id ()) ~phi:ev.Dl.Fit.ev_phi
             ~config:ev.Dl.Fit.ev_config ~result:ev.Dl.Fit.ev_result ()
         in
         append t record))

let detach_fit_hook () = Dl.Fit.set_on_fit None
