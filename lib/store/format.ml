(* Binary record encoding + CRC32 framing shared by the WAL and the
   snapshot writer.  Floats travel as their IEEE-754 bit patterns so a
   round-trip is exact; everything is little-endian. *)

type record = {
  id : string;
  story : string;
  source : string;
  model : string;
  created_ns : int;
  params : Dl.Params.t;
  phi_xs : float array;
  phi_densities : float array;
  phi_construction : Dl.Initial.construction;
  scheme : Dl.Model.scheme;
  nx : int;
  dt : float;
  reference_stepper : bool;
  fit_times : float array;
  training_error : float;
  evaluations : int;
  starts : int;
  trace_id : string;
  obs_cursor : float;
}

(* v1: no model field (implicitly "dl").  v2: model name after
   [source].  v3: trailing [trace_id] (the trace that produced the
   fit, for span links across warm restarts; may be empty) and
   [obs_cursor] (the live-ingestion watermark at checkpoint time; 0
   for batch fits).  [decode] accepts all three; [encode] always
   writes the current version. *)
let version = 3
let min_version = 1

let phi r =
  Dl.Initial.of_observations_with ~construction:r.phi_construction
    ~xs:r.phi_xs ~densities:r.phi_densities

let scheme_name = function
  | Dl.Model.Ftcs -> "ftcs"
  | Dl.Model.Crank_nicolson -> "crank-nicolson"
  | Dl.Model.Strang -> "strang"

let scheme_of_name = function
  | "ftcs" -> Ok Dl.Model.Ftcs
  | "crank-nicolson" | "imex" | "cn" -> Ok Dl.Model.Crank_nicolson
  | "strang" -> Ok Dl.Model.Strang
  | s ->
    Error (Printf.sprintf "unknown scheme %S (ftcs|crank-nicolson|strang)" s)

let solver_signature ~scheme ~nx ~dt ~reference =
  Printf.sprintf "scheme=%s;nx=%d;dt=%Lx;ref=%b" (scheme_name scheme) nx
    (Int64.bits_of_float dt) reference

let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
let farray_eq a b = Array.length a = Array.length b && Array.for_all2 float_eq a b

let growth_eq a b =
  match (a, b) with
  | Dl.Growth.Constant x, Dl.Growth.Constant y -> float_eq x y
  | ( Dl.Growth.Exp_decay { a; b; c },
      Dl.Growth.Exp_decay { a = a'; b = b'; c = c' } ) ->
    float_eq a a' && float_eq b b' && float_eq c c'
  | _ -> false

let params_eq (p : Dl.Params.t) (q : Dl.Params.t) =
  float_eq p.Dl.Params.d q.Dl.Params.d
  && float_eq p.Dl.Params.k q.Dl.Params.k
  && growth_eq p.Dl.Params.r q.Dl.Params.r
  && float_eq p.Dl.Params.l q.Dl.Params.l
  && float_eq p.Dl.Params.big_l q.Dl.Params.big_l

let equal a b =
  String.equal a.id b.id && String.equal a.story b.story
  && String.equal a.source b.source
  && String.equal a.model b.model
  && a.created_ns = b.created_ns
  && params_eq a.params b.params
  && farray_eq a.phi_xs b.phi_xs
  && farray_eq a.phi_densities b.phi_densities
  && a.phi_construction = b.phi_construction
  && a.scheme = b.scheme && a.nx = b.nx && float_eq a.dt b.dt
  && a.reference_stepper = b.reference_stepper
  && farray_eq a.fit_times b.fit_times
  && float_eq a.training_error b.training_error
  && a.evaluations = b.evaluations && a.starts = b.starts
  && String.equal a.trace_id b.trace_id
  && float_eq a.obs_cursor b.obs_cursor

(* --- primitive writers --- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Format.put_u32: out of range";
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let put_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let put_float buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  Buffer.add_bytes buf b

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_farray buf a =
  put_u32 buf (Array.length a);
  Array.iter (put_float buf) a

let put_growth buf = function
  | Dl.Growth.Constant v ->
    put_u8 buf 0;
    put_float buf v
  | Dl.Growth.Exp_decay { a; b; c } ->
    put_u8 buf 1;
    put_float buf a;
    put_float buf b;
    put_float buf c

(* --- primitive readers: a cursor over an immutable string --- *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let need cur n what =
  if cur.pos + n > String.length cur.src then
    raise (Bad (Printf.sprintf "truncated payload reading %s" what))

let get_u8 cur what =
  need cur 1 what;
  let v = Char.code cur.src.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let get_u32 cur what =
  need cur 4 what;
  let v =
    Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string cur.src) cur.pos)
    land 0xffff_ffff
  in
  cur.pos <- cur.pos + 4;
  v

let get_i64 cur what =
  need cur 8 what;
  let v = Bytes.get_int64_le (Bytes.unsafe_of_string cur.src) cur.pos in
  cur.pos <- cur.pos + 8;
  Int64.to_int v

let get_float cur what =
  need cur 8 what;
  let v =
    Int64.float_of_bits
      (Bytes.get_int64_le (Bytes.unsafe_of_string cur.src) cur.pos)
  in
  cur.pos <- cur.pos + 8;
  v

let max_array = 1 lsl 20

let get_string cur what =
  let n = get_u32 cur what in
  if n > 16 * 1024 * 1024 then
    raise (Bad (Printf.sprintf "oversized string for %s" what));
  need cur n what;
  let s = String.sub cur.src cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_farray cur what =
  let n = get_u32 cur what in
  if n > max_array then
    raise (Bad (Printf.sprintf "oversized array for %s" what));
  Array.init n (fun _ -> get_float cur what)

let get_growth cur =
  match get_u8 cur "growth tag" with
  | 0 -> Dl.Growth.Constant (get_float cur "growth value")
  | 1 ->
    let a = get_float cur "growth a" in
    let b = get_float cur "growth b" in
    let c = get_float cur "growth c" in
    Dl.Growth.Exp_decay { a; b; c }
  | t -> raise (Bad (Printf.sprintf "unknown growth tag %d" t))

(* --- record payload --- *)

let encode r =
  let buf = Buffer.create 256 in
  put_u8 buf version;
  put_string buf r.id;
  put_string buf r.story;
  put_string buf r.source;
  put_string buf r.model;
  put_i64 buf r.created_ns;
  put_float buf r.params.Dl.Params.d;
  put_float buf r.params.Dl.Params.k;
  put_growth buf r.params.Dl.Params.r;
  put_float buf r.params.Dl.Params.l;
  put_float buf r.params.Dl.Params.big_l;
  put_farray buf r.phi_xs;
  put_farray buf r.phi_densities;
  put_u8 buf (match r.phi_construction with `Cubic_spline -> 0 | `Pchip -> 1);
  put_u8 buf
    (match r.scheme with
    | Dl.Model.Ftcs -> 0
    | Dl.Model.Crank_nicolson -> 1
    | Dl.Model.Strang -> 2);
  put_u32 buf r.nx;
  put_float buf r.dt;
  put_u8 buf (if r.reference_stepper then 1 else 0);
  put_farray buf r.fit_times;
  put_float buf r.training_error;
  put_u32 buf r.evaluations;
  put_u32 buf r.starts;
  put_string buf r.trace_id;
  put_float buf r.obs_cursor;
  Buffer.contents buf

let decode s =
  let cur = { src = s; pos = 0 } in
  try
    let v = get_u8 cur "version" in
    if v < min_version || v > version then
      Error
        (Printf.sprintf "unsupported record version %d (want %d..%d)" v
           min_version version)
    else begin
      let id = get_string cur "id" in
      let story = get_string cur "story" in
      let source = get_string cur "source" in
      let model = if v >= 2 then get_string cur "model" else "dl" in
      let created_ns = get_i64 cur "created_ns" in
      let d = get_float cur "d" in
      let k = get_float cur "k" in
      let r = get_growth cur in
      let l = get_float cur "l" in
      let big_l = get_float cur "big_l" in
      let phi_xs = get_farray cur "phi_xs" in
      let phi_densities = get_farray cur "phi_densities" in
      let phi_construction =
        match get_u8 cur "phi construction" with
        | 0 -> `Cubic_spline
        | 1 -> `Pchip
        | t -> raise (Bad (Printf.sprintf "unknown phi construction tag %d" t))
      in
      let scheme =
        match get_u8 cur "scheme" with
        | 0 -> Dl.Model.Ftcs
        | 1 -> Dl.Model.Crank_nicolson
        | 2 -> Dl.Model.Strang
        | t -> raise (Bad (Printf.sprintf "unknown scheme tag %d" t))
      in
      let nx = get_u32 cur "nx" in
      let dt = get_float cur "dt" in
      let reference_stepper = get_u8 cur "reference flag" <> 0 in
      let fit_times = get_farray cur "fit_times" in
      let training_error = get_float cur "training_error" in
      let evaluations = get_u32 cur "evaluations" in
      let starts = get_u32 cur "starts" in
      let trace_id = if v >= 3 then get_string cur "trace_id" else "" in
      let obs_cursor = if v >= 3 then get_float cur "obs_cursor" else 0. in
      if cur.pos <> String.length s then
        Error
          (Printf.sprintf "trailing garbage: %d bytes past the record"
             (String.length s - cur.pos))
      else
        Ok
          {
            id;
            story;
            source;
            model;
            created_ns;
            params = Dl.Params.make ~d ~k ~r ~l ~big_l;
            phi_xs;
            phi_densities;
            phi_construction;
            scheme;
            nx;
            dt;
            reference_stepper;
            fit_times;
            training_error;
            evaluations;
            starts;
            trace_id;
            obs_cursor;
          }
    end
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg (* Params.make on nonsense values *)

(* --- CRC32 (IEEE 802.3 polynomial, as in zlib) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) s =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xffff_ffff) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffff_ffff

(* --- framing --- *)

let max_payload = 16 * 1024 * 1024

let frame payload =
  if String.length payload > max_payload then
    invalid_arg "Format.frame: payload too large";
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (String.length payload);
  put_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

type frame_result = Frame of string * int | End | Corrupt of string

let read_frame buf ~pos =
  let len = String.length buf in
  if pos = len then End
  else if pos + 8 > len then
    Corrupt (Printf.sprintf "torn frame header at byte %d" pos)
  else begin
    let b = Bytes.unsafe_of_string buf in
    let plen = Int32.to_int (Bytes.get_int32_le b pos) land 0xffff_ffff in
    let crc = Int32.to_int (Bytes.get_int32_le b (pos + 4)) land 0xffff_ffff in
    if plen > max_payload then
      Corrupt (Printf.sprintf "implausible frame length %d at byte %d" plen pos)
    else if pos + 8 + plen > len then
      Corrupt (Printf.sprintf "torn frame at byte %d (%d of %d payload bytes)"
                 pos (len - pos - 8) plen)
    else
      let payload = String.sub buf (pos + 8) plen in
      if crc32 payload <> crc then
        Corrupt (Printf.sprintf "CRC mismatch at byte %d" pos)
      else Frame (payload, pos + 8 + plen)
  end

let header ~magic =
  if String.length magic <> 8 then invalid_arg "Format.header: magic must be 8 bytes";
  let buf = Buffer.create 12 in
  Buffer.add_string buf magic;
  put_u32 buf version;
  Buffer.contents buf

let check_header ~magic buf =
  if String.length buf < 12 then Error "file shorter than its header"
  else if not (String.equal (String.sub buf 0 8) magic) then
    Error (Printf.sprintf "bad magic (want %S)" magic)
  else
    let v =
      Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string buf) 8)
      land 0xffff_ffff
    in
    if v < min_version || v > version then
      Error (Printf.sprintf "unsupported format version %d" v)
    else Ok 12
