(** Append-only write-ahead log of fit records.

    Every append writes one CRC-framed record with a single [write]
    and (by default) an [fsync], so a completed fit is durable the
    moment {!append} returns.  On open the log is replayed from the
    start; the first torn or corrupt frame ends the replay — the
    records before it are recovered, the tail is dropped, and the file
    is truncated back to the last good frame before new appends (the
    crash-recovery semantics in [docs/PERSISTENCE.md]). *)

type replay = {
  records : Format.record list;  (** good records, oldest first *)
  valid_bytes : int;  (** offset just past the last good frame *)
  dropped_bytes : int;  (** torn / corrupt tail length *)
  corruption : string option;  (** why the replay stopped early *)
}

val file_name : string
(** ["wal.log"], relative to the store directory. *)

val replay : dir:string -> replay
(** Read and validate the log.  A missing file replays as empty; a
    file with a mangled header replays as empty with the whole file
    counted as dropped. *)

type t

val open_for_append : ?fsync:bool -> valid_bytes:int -> string -> t
(** Open (creating the file and its header if needed) and truncate to
    [valid_bytes] — the offset {!replay} reported — discarding any
    torn tail.  [fsync] (default true) syncs every append. *)

val append : t -> Format.record -> int
(** Durably append one record; returns the frame's size in bytes.
    Safe under a caller-held lock only — the WAL itself does not
    synchronise. *)

val reset : t -> unit
(** Truncate back to an empty log (header only), fsync.  Used by
    compaction after the snapshot has been atomically replaced. *)

val size : t -> int
(** Current file size in bytes (header included). *)

val close : t -> unit
