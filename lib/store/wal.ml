let file_name = "wal.log"
let magic = "DLOSNWA1"

let path ~dir = Filename.concat dir file_name

type replay = {
  records : Format.record list;
  valid_bytes : int;
  dropped_bytes : int;
  corruption : string option;
}

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let replay ~dir =
  match read_file (path ~dir) with
  | None -> { records = []; valid_bytes = 0; dropped_bytes = 0; corruption = None }
  | Some buf -> (
    let len = String.length buf in
    match Format.check_header ~magic buf with
    | Error msg ->
      (* an unreadable header means nothing after it can be trusted *)
      { records = []; valid_bytes = 0; dropped_bytes = len;
        corruption = Some ("bad WAL header: " ^ msg) }
    | Ok start ->
      let rec scan acc pos =
        match Format.read_frame buf ~pos with
        | Format.End ->
          { records = List.rev acc; valid_bytes = pos; dropped_bytes = 0;
            corruption = None }
        | Format.Corrupt msg ->
          { records = List.rev acc; valid_bytes = pos;
            dropped_bytes = len - pos; corruption = Some msg }
        | Format.Frame (payload, next) -> (
          match Format.decode payload with
          | Ok r -> scan (r :: acc) next
          | Error msg ->
            (* CRC-valid but undecodable: written by a future version
               or corrupted before framing — stop, keep the prefix *)
            { records = List.rev acc; valid_bytes = pos;
              dropped_bytes = len - pos;
              corruption = Some ("undecodable record: " ^ msg) })
      in
      scan [] start)

type t = { fd : Unix.file_descr; fsync : bool; mutable bytes : int }

let header_bytes = String.length (Format.header ~magic)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let open_for_append ?(fsync = true) ~valid_bytes dir =
  let fd =
    Unix.openfile (path ~dir) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  let size = (Unix.fstat fd).Unix.st_size in
  let valid = max valid_bytes 0 in
  if size = 0 || valid < header_bytes then begin
    (* fresh file, or one whose very header was bad: start clean *)
    Unix.ftruncate fd 0;
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    write_all fd (Format.header ~magic);
    if fsync then Unix.fsync fd;
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    { fd; fsync; bytes = header_bytes }
  end
  else begin
    if valid < size then Unix.ftruncate fd valid;
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    { fd; fsync; bytes = min valid size }
  end

let append t record =
  let framed = Format.frame (Format.encode record) in
  write_all t.fd framed;
  if t.fsync then Unix.fsync t.fd;
  t.bytes <- t.bytes + String.length framed;
  String.length framed

let reset t =
  Unix.ftruncate t.fd header_bytes;
  ignore (Unix.lseek t.fd header_bytes Unix.SEEK_SET);
  t.bytes <- header_bytes;
  if t.fsync then Unix.fsync t.fd

let size t = t.bytes

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
