# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-small bench-full examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# full reproduction harness (default medium corpus, ~4 min)
bench:
	dune exec bench/main.exe

bench-small:
	DLOSN_BENCH_SCALE=small dune exec bench/main.exe

bench-full:
	DLOSN_BENCH_SCALE=full dune exec bench/main.exe

# API docs (requires odoc: opam install odoc)
doc:
	dune build @doc

examples:
	dune exec examples/quickstart.exe
	dune exec examples/model_properties.exe
	dune exec examples/wavefront_speed.exe
	dune exec examples/interest_vs_hops.exe
	dune exec examples/digg_prediction.exe
	dune exec examples/forecasting.exe
	dune exec examples/network_ablation.exe

clean:
	dune clean
