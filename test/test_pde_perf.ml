(* The allocation-free PDE fast path is only allowed to exist because
   it is bit-identical to the retained reference stepper: same
   floating-point operations in the same order, only the array churn
   and re-factorizations removed.  These tests enforce that contract
   (per-cell Int64 bit equality, not approximate checks), plus the
   workspace-reuse counters, the factored-solve algebra, and the
   fitting-objective memo. *)

open Numerics

(* --- Tridiag: factorized Thomas vs one-shot solve --- *)

let random_dominant_system rng n =
  let sub = Array.init (n - 1) (fun _ -> Rng.uniform rng (-1.) 1.) in
  let sup = Array.init (n - 1) (fun _ -> Rng.uniform rng (-1.) 1.) in
  let diag =
    Array.init n (fun i ->
        let row =
          (if i > 0 then Float.abs sub.(i - 1) else 0.)
          +. if i < n - 1 then Float.abs sup.(i) else 0.
        in
        row +. Rng.uniform rng 0.5 2.)
  in
  (Tridiag.make ~sub ~diag ~sup, Array.init n (fun _ -> Rng.uniform rng (-5.) 5.))

let test_factorize_matches_solve () =
  let rng = Rng.create 42 in
  List.iter
    (fun n ->
      let t, b = random_dominant_system rng n in
      let expect = Tridiag.solve t b in
      let f = Tridiag.factorize t in
      Alcotest.(check int) "factored dim" n (Tridiag.factored_dim f);
      let dst = Array.make n 0. in
      Tridiag.solve_factored f ~src:b ~dst;
      Array.iteri
        (fun i v ->
          if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float dst.(i)))
          then Alcotest.failf "n=%d cell %d: %.17g vs %.17g" n i v dst.(i))
        expect)
    [ 1; 2; 3; 7; 41 ]

let test_factored_reused_across_rhs () =
  (* one c'-sweep, many right-hand sides: each must still match the
     one-shot solve bit for bit *)
  let rng = Rng.create 7 in
  let t, _ = random_dominant_system rng 31 in
  let f = Tridiag.factorize t in
  let dst = Array.make 31 0. in
  for _ = 1 to 5 do
    let b = Array.init 31 (fun _ -> Rng.uniform rng (-3.) 3.) in
    Tridiag.solve_factored f ~src:b ~dst;
    let expect = Tridiag.solve t b in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "bit equal" true
          (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float dst.(i))))
      expect
  done

let test_solve_factored_in_place () =
  (* src == dst aliasing is part of the contract *)
  let rng = Rng.create 11 in
  let t, b = random_dominant_system rng 17 in
  let expect = Tridiag.solve t b in
  let buf = Array.copy b in
  let f = Tridiag.factorize t in
  Tridiag.solve_factored f ~src:buf ~dst:buf;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "in-place bit equal" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float buf.(i))))
    expect

let test_mv_into_matches_mv () =
  let rng = Rng.create 13 in
  let t, x = random_dominant_system rng 23 in
  let expect = Tridiag.mv t x in
  let dst = Array.make 23 nan in
  Tridiag.mv_into t x ~dst;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "mv bit equal" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float dst.(i))))
    expect

let test_factorize_singular_raises () =
  let t = Tridiag.make ~sub:[| 1. |] ~diag:[| 0.; 1. |] ~sup:[| 1. |] in
  try
    ignore (Tridiag.factorize t);
    Alcotest.fail "expected Mat.Singular"
  with Mat.Singular -> ()

(* --- workspace stepper vs reference stepper: bit identity --- *)

let dl_problem () =
  let r t = (1.4 *. exp (-1.5 *. (t -. 1.))) +. 0.25 in
  let k = 25. in
  ( {
      Pde.xl = 1.;
      xr = 6.;
      nx = 41;
      diffusion = (fun _ -> 0.05);
      reaction = Pde.Custom (fun ~x:_ ~t ~u -> r t *. u *. (1. -. (u /. k)));
      initial = (fun x -> 8. *. exp (-0.5 *. (x -. 1.)));
      t0 = 1.;
    },
    r,
    k )

(* snapshot times that are not multiples of dt, so the loop hits the
   ragged-final-partial-step path (throwaway operator builds) as well
   as the cached macro-step path *)
let ragged_times = [| 1.303; 2.5; 3.017 |]

let check_solutions_bit_identical name (a : Pde.solution) (b : Pde.solution) =
  Alcotest.(check int) (name ^ ": snapshot count") (Array.length a.Pde.values)
    (Array.length b.Pde.values);
  Array.iteri
    (fun it row ->
      Array.iteri
        (fun ix v ->
          let w = b.Pde.values.(it).(ix) in
          if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float w))
          then
            Alcotest.failf "%s: cell (it=%d, ix=%d) differs: %.17g vs %.17g"
              name it ix v w)
        row)
    a.Pde.values

let schemes_under_test () =
  let _, r, k = dl_problem () in
  [
    ("ftcs", Pde.Ftcs);
    ("imex-cn", Pde.Imex 0.5);
    ("imex-implicit", Pde.Imex 1.);
    ("strang", Pde.Strang (Pde.logistic_reaction_step ~r ~k));
  ]

let test_workspace_bit_identical () =
  let p, _, _ = dl_problem () in
  List.iter
    (fun (name, scheme) ->
      (* fresh reaction closures per solve: logistic_reaction_step is
         stateful (memoized integral) *)
      let fast =
        Pde.solve ~scheme ~dt:0.01 ~reference:false p ~times:ragged_times
      in
      let slow =
        Pde.solve ~scheme ~dt:0.01 ~reference:true p ~times:ragged_times
      in
      check_solutions_bit_identical name fast slow)
    (schemes_under_test ())

let test_workspace_no_state_leak () =
  (* repeated fast solves of the same problem must be bit-identical to
     each other and to the reference: nothing carries over *)
  let p, _, _ = dl_problem () in
  List.iter
    (fun (name, scheme) ->
      let run () =
        Pde.solve ~scheme ~dt:0.01 ~reference:false p ~times:ragged_times
      in
      let first = run () in
      let second = run () in
      check_solutions_bit_identical (name ^ " repeat") first second;
      check_solutions_bit_identical (name ^ " vs ref") first
        (Pde.solve ~scheme ~dt:0.01 ~reference:true p ~times:ragged_times))
    (schemes_under_test ())

let test_global_reference_toggle () =
  let p, _, _ = dl_problem () in
  Alcotest.(check bool) "default is fast" false (Pde.use_reference_stepper ());
  Pde.set_use_reference_stepper true;
  Fun.protect
    ~finally:(fun () -> Pde.set_use_reference_stepper false)
    (fun () ->
      (* ?reference defaults to the global toggle; result is still
         bit-identical because the two paths are *)
      let toggled = Pde.solve ~dt:0.01 p ~times:ragged_times in
      let fast = Pde.solve ~dt:0.01 ~reference:false p ~times:ragged_times in
      check_solutions_bit_identical "toggle" toggled fast)

(* --- workspace counters --- *)

let with_obs_enabled f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let test_workspace_counters () =
  with_obs_enabled (fun () ->
      let reuses = Obs.Metrics.counter "pde.workspace_reuses" in
      let rebuilds = Obs.Metrics.counter "pde.factor_rebuilds" in
      let r0 = Obs.Metrics.counter_value reuses in
      let b0 = Obs.Metrics.counter_value rebuilds in
      let p, _, _ = dl_problem () in
      (* 1.303 needs a ragged step, so: 1 initial build + ragged
         throwaway builds, and many macro steps served by the cache *)
      ignore
        (Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:0.01 ~reference:false p
           ~times:ragged_times);
      let dr = Obs.Metrics.counter_value reuses - r0 in
      let db = Obs.Metrics.counter_value rebuilds - b0 in
      Alcotest.(check bool) "many cached steps" true (dr > 100);
      Alcotest.(check bool) "initial + ragged rebuilds" true (db >= 2);
      (* the reference path must not touch workspace counters *)
      let r1 = Obs.Metrics.counter_value reuses in
      ignore
        (Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:0.01 ~reference:true p
           ~times:ragged_times);
      Alcotest.(check int) "reference adds no reuses" r1
        (Obs.Metrics.counter_value reuses))

(* --- batched Thomas panels vs scalar, column by column --- *)

let pack_panel ~n ~ns get =
  let p = Tridiag.panel_create ~n ~stories:ns in
  for i = 0 to n - 1 do
    for s = 0 to ns - 1 do
      Bigarray.Array2.set p i s (get s i)
    done
  done;
  p

let col (p : Tridiag.panel) ~n s = Array.init n (fun i -> Bigarray.Array2.get p i s)

let test_batch_thomas_matches_scalar () =
  let rng = Rng.create 19 in
  let n = 23 and ns = 5 in
  let systems = Array.init ns (fun _ -> random_dominant_system rng n) in
  (* off-diagonal panels allocated with n rows on purpose: the extra
     row is part of the documented layout and must be ignored *)
  let sub = pack_panel ~n ~ns (fun s i ->
      if i < n - 1 then (fst systems.(s)).Tridiag.sub.(i) else nan)
  and diag = pack_panel ~n ~ns (fun s i -> (fst systems.(s)).Tridiag.diag.(i))
  and sup = pack_panel ~n ~ns (fun s i ->
      if i < n - 1 then (fst systems.(s)).Tridiag.sup.(i) else nan) in
  let c = Tridiag.panel_create ~n ~stories:ns
  and m = Tridiag.panel_create ~n ~stories:ns in
  Tridiag.factorize_batch ~sub ~diag ~sup ~c ~m;
  let src = pack_panel ~n ~ns (fun s i -> (snd systems.(s)).(i)) in
  let dst = Tridiag.panel_create ~n ~stories:ns in
  Tridiag.solve_factored_batch ~sub ~c ~m ~src ~dst;
  Array.iteri
    (fun s (t, b) ->
      let expect = Tridiag.solve t b in
      let got = col dst ~n s in
      Array.iteri
        (fun i v ->
          if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float got.(i)))
          then Alcotest.failf "story %d cell %d: %.17g vs %.17g" s i v got.(i))
        expect)
    systems;
  (* mv_batch column s must match the scalar mv bit for bit *)
  let mv_dst = Tridiag.panel_create ~n ~stories:ns in
  Tridiag.mv_batch ~sub ~diag ~sup ~src ~dst:mv_dst;
  Array.iteri
    (fun s (t, b) ->
      let expect = Tridiag.mv t b in
      let got = col mv_dst ~n s in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) "mv_batch bit equal" true
            (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float got.(i))))
        expect)
    systems

let test_batch_solve_in_place () =
  (* the batched solve inherits solve_factored's aliasing contract:
     src == dst is an in-place solve with identical bits *)
  let rng = Rng.create 23 in
  let n = 17 and ns = 3 in
  let systems = Array.init ns (fun _ -> random_dominant_system rng n) in
  let sub = pack_panel ~n ~ns (fun s i ->
      if i < n - 1 then (fst systems.(s)).Tridiag.sub.(i) else nan)
  and diag = pack_panel ~n ~ns (fun s i -> (fst systems.(s)).Tridiag.diag.(i))
  and sup = pack_panel ~n ~ns (fun s i ->
      if i < n - 1 then (fst systems.(s)).Tridiag.sup.(i) else nan) in
  let c = Tridiag.panel_create ~n ~stories:ns
  and m = Tridiag.panel_create ~n ~stories:ns in
  Tridiag.factorize_batch ~sub ~diag ~sup ~c ~m;
  let buf = pack_panel ~n ~ns (fun s i -> (snd systems.(s)).(i)) in
  Tridiag.solve_factored_batch ~sub ~c ~m ~src:buf ~dst:buf;
  Array.iteri
    (fun s (t, b) ->
      let expect = Tridiag.solve t b in
      let got = col buf ~n s in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) "batch in-place bit equal" true
            (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float got.(i))))
        expect)
    systems

let test_batch_singular_raises () =
  let sub = pack_panel ~n:2 ~ns:2 (fun _ i -> if i = 0 then 1. else nan) in
  let sup = pack_panel ~n:2 ~ns:2 (fun _ i -> if i = 0 then 1. else nan) in
  (* story 1 has a zero leading pivot *)
  let diag = pack_panel ~n:2 ~ns:2 (fun s _ -> if s = 1 then 0. else 2.) in
  let c = Tridiag.panel_create ~n:2 ~stories:2
  and m = Tridiag.panel_create ~n:2 ~stories:2 in
  try
    Tridiag.factorize_batch ~sub ~diag ~sup ~c ~m;
    Alcotest.fail "expected Mat.Singular"
  with Mat.Singular -> ()

(* --- fused panel solves vs per-story scalar solves --- *)

(* A pseudo-random story: paper-shaped r(t), per-story (d, k,
   amplitude).  [kind] selects the reaction representation; the
   [Custom] closure computes the same logistic formula through the
   boxed path. *)
let panel_story_of_rng rng kind =
  let d = Rng.uniform rng 0.01 0.3 in
  let a = Rng.uniform rng 0.3 1.8 in
  let b = Rng.uniform rng 0.5 2.0 in
  let c = Rng.uniform rng 0.1 0.5 in
  let r t = (a *. exp (-.b *. (t -. 1.))) +. c in
  let k = Rng.uniform rng 5. 40. in
  let amp = Rng.uniform rng 2. 10. in
  let reaction =
    match kind with
    | 0 -> Pde.Logistic { r; k }
    | 1 -> Pde.Linear { r }
    | _ -> Pde.Custom (fun ~x:_ ~t ~u -> r t *. u *. (1. -. (u /. k)))
  in
  ( {
      Pde.ps_diffusion = (fun _ -> d);
      ps_reaction = reaction;
      ps_initial = (fun x -> amp *. exp (-0.5 *. (x -. 1.)));
    },
    r,
    k )

let scalar_scheme_for st r k =
  function
  | Pde.Panel_imex theta -> Pde.Imex theta
  | Pde.Panel_strang -> (
    match st.Pde.ps_reaction with
    | Pde.Logistic _ -> Pde.Strang (Pde.logistic_reaction_step ~r ~k)
    | Pde.Linear _ -> Pde.Strang (Pde.linear_reaction_step ~r)
    | Pde.Custom _ -> assert false)

let check_panel_matches_scalar ?workspace ~scheme ~kinds seed ns =
  let rng = Rng.create seed in
  let stories = Array.init ns (fun s -> panel_story_of_rng rng (kinds s)) in
  let pp =
    {
      Pde.pp_xl = 1.;
      pp_xr = 6.;
      pp_nx = 25;
      pp_t0 = 1.;
      pp_stories = Array.map (fun (st, _, _) -> st) stories;
    }
  in
  let sols = Pde.solve_panel ~scheme ~dt:0.01 ?workspace pp ~times:ragged_times in
  Alcotest.(check int) "panel story count" ns (Array.length sols);
  Array.iteri
    (fun s (st, r, k) ->
      let p =
        {
          Pde.xl = 1.;
          xr = 6.;
          nx = 25;
          diffusion = st.Pde.ps_diffusion;
          reaction = st.Pde.ps_reaction;
          initial = st.Pde.ps_initial;
          t0 = 1.;
        }
      in
      let expect =
        Pde.solve ~scheme:(scalar_scheme_for st r k scheme) ~dt:0.01
          ~reference:false p ~times:ragged_times
      in
      check_solutions_bit_identical (Printf.sprintf "panel story %d" s) sols.(s)
        expect)
    stories

let prop_panel_bit_identity =
  (* panel sizes 1/2/17, both panel schemes, ragged snapshot times and
     mixed reaction shapes — including a Custom story exercising the
     closure fallback under IMEX.  Every column must reproduce the
     per-story scalar solve bit for bit. *)
  QCheck.Test.make ~count:10 ~name:"solve_panel bit-identical per story"
    QCheck.(triple (oneofl [ 1; 2; 17 ]) bool small_nat)
    (fun (ns, strang, seed) ->
      let scheme = if strang then Pde.Panel_strang else Pde.Panel_imex 0.5 in
      (* Strang panels cannot carry Custom; IMEX panels cycle all three *)
      let kinds s = if strang then s mod 2 else s mod 3 in
      check_panel_matches_scalar ~scheme ~kinds (seed + (7 * ns)) ns;
      true)

let test_panel_reference_fallback () =
  (* ~reference:true must route every story through the reference
     stepper — still bit-identical, by the existing scalar contract *)
  let rng = Rng.create 5 in
  let stories = Array.init 3 (fun s -> panel_story_of_rng rng (s mod 2)) in
  let pp =
    {
      Pde.pp_xl = 1.;
      pp_xr = 6.;
      pp_nx = 25;
      pp_t0 = 1.;
      pp_stories = Array.map (fun (st, _, _) -> st) stories;
    }
  in
  let fast =
    Pde.solve_panel ~scheme:(Pde.Panel_imex 0.5) ~dt:0.01 ~reference:false pp
      ~times:ragged_times
  in
  let slow =
    Pde.solve_panel ~scheme:(Pde.Panel_imex 0.5) ~dt:0.01 ~reference:true pp
      ~times:ragged_times
  in
  Array.iteri
    (fun s f ->
      check_solutions_bit_identical
        (Printf.sprintf "reference story %d" s)
        f slow.(s))
    fast

let test_panel_strang_rejects_custom () =
  let st =
    {
      Pde.ps_diffusion = (fun _ -> 0.05);
      ps_reaction = Pde.Custom (fun ~x:_ ~t:_ ~u -> u);
      ps_initial = (fun _ -> 1.);
    }
  in
  let pp =
    { Pde.pp_xl = 1.; pp_xr = 6.; pp_nx = 11; pp_t0 = 1.; pp_stories = [| st |] }
  in
  try
    ignore (Pde.solve_panel ~scheme:Pde.Panel_strang ~dt:0.01 pp ~times:[| 2. |]);
    Alcotest.fail "expected Invalid_argument for Custom under Strang"
  with Invalid_argument _ -> ()

let test_panel_workspace_reuse () =
  with_obs_enabled (fun () ->
      let reuses = Obs.Metrics.counter "pde.panel_reuses" in
      let rebuilds = Obs.Metrics.counter "pde.panel_rebuilds" in
      let r0 = Obs.Metrics.counter_value reuses in
      let b0 = Obs.Metrics.counter_value rebuilds in
      let ws = Pde.panel_workspace () in
      (* same shape twice: one rebuild then one reuse, results
         unchanged by the recycled buffers *)
      check_panel_matches_scalar ~workspace:ws ~scheme:(Pde.Panel_imex 0.5)
        ~kinds:(fun s -> s mod 3) 11 4;
      check_panel_matches_scalar ~workspace:ws ~scheme:Pde.Panel_strang
        ~kinds:(fun s -> s mod 2) 13 4;
      Alcotest.(check (pair int int)) "workspace stats" (1, 1)
        (Pde.panel_workspace_stats ws);
      (* shape change reallocates *)
      check_panel_matches_scalar ~workspace:ws ~scheme:(Pde.Panel_imex 0.5)
        ~kinds:(fun s -> s mod 3) 17 2;
      Alcotest.(check (pair int int)) "workspace stats after reshape" (1, 2)
        (Pde.panel_workspace_stats ws);
      Alcotest.(check int) "pde.panel_reuses counter" 1
        (Obs.Metrics.counter_value reuses - r0);
      Alcotest.(check int) "pde.panel_rebuilds counter" 2
        (Obs.Metrics.counter_value rebuilds - b0))

let model_phi () =
  Dl.Initial.of_observations ~xs:[| 1.; 2.; 3.; 4.; 5.; 6. |]
    ~densities:[| 6.0; 3.1; 2.3; 1.2; 0.7; 0.4 |]

let test_model_solve_workspace_bit_identical () =
  (* Model.solve ?workspace routes through a width-1 panel: outputs
     must not move by a bit for either implicit scheme *)
  let phi = model_phi () in
  let times = [| 2.; 3.5; 4.017 |] in
  let ws = Pde.panel_workspace () in
  List.iter
    (fun scheme ->
      let plain = Dl.Model.solve ~scheme Dl.Params.paper_hops ~phi ~times in
      let panel =
        Dl.Model.solve ~scheme ~workspace:ws Dl.Params.paper_hops ~phi ~times
      in
      check_solutions_bit_identical "model workspace" plain.Dl.Model.pde
        panel.Dl.Model.pde)
    [ Dl.Model.Crank_nicolson; Dl.Model.Strang ]

let test_model_solve_panel_shared_domain () =
  let phi = model_phi () in
  let times = [| 2.; 3.; 4. |] in
  let p1 = Dl.Params.paper_hops in
  let p2 = { p1 with Dl.Params.d = p1.Dl.Params.d *. 1.5; k = 30. } in
  let sols = Dl.Model.solve_panel [| (p1, phi); (p2, phi) |] ~times in
  Array.iteri
    (fun i (p, _) ->
      let expect = Dl.Model.solve p ~phi ~times in
      check_solutions_bit_identical
        (Printf.sprintf "model panel story %d" i)
        sols.(i).Dl.Model.pde expect.Dl.Model.pde)
    [| (p1, phi); (p2, phi) |];
  (* mismatched domains are rejected *)
  let p3 = { p1 with Dl.Params.big_l = p1.Dl.Params.big_l +. 1. } in
  try
    ignore (Dl.Model.solve_panel [| (p1, phi); (p3, phi) |] ~times);
    Alcotest.fail "expected Invalid_argument for mixed domains"
  with Invalid_argument _ -> ()

(* --- eval hardening --- *)

let test_eval_rejects_nan () =
  let p, _, _ = dl_problem () in
  let sol = Pde.solve ~dt:0.01 p ~times:[| 2. |] in
  let expect_invalid x t =
    try
      ignore (Pde.eval sol ~x ~t);
      Alcotest.fail "expected Invalid_argument on NaN"
    with Invalid_argument _ -> ()
  in
  expect_invalid Float.nan 2.;
  expect_invalid 3. Float.nan;
  (* the hoisted evaluator must agree with eval on normal queries *)
  let ev = Pde.evaluator sol in
  List.iter
    (fun (x, t) ->
      Alcotest.(check bool) "evaluator = eval" true
        (Float.equal (ev ~x ~t) (Pde.eval sol ~x ~t)))
    [ (1.0, 1.0); (3.25, 1.7); (6.0, 2.0); (0.0, 0.0); (99., 99.) ]

(* --- mass conservation on the factored diffusion path (qcheck) --- *)

let prop_factored_diffusion_mass =
  QCheck.Test.make ~count:30
    ~name:"factored Imex diffusion conserves mass"
    QCheck.(pair (float_range 0.05 0.8) (int_range 31 81))
    (fun (d, nx) ->
      let p =
        {
          Pde.xl = 0.;
          xr = 10.;
          nx;
          diffusion = (fun _ -> d);
          reaction = Pde.Custom (fun ~x:_ ~t:_ ~u:_ -> 0.);
          initial = (fun x -> exp (-.((x -. 5.) ** 2.)));
          t0 = 0.;
        }
      in
      let sol =
        Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:5e-3 ~reference:false p
          ~times:[| 0.7; 1.9 |]
      in
      let m0 = Pde.mass sol ~it:0 in
      let ok = ref true in
      for it = 1 to Array.length sol.Pde.ts - 1 do
        if Float.abs (Pde.mass sol ~it -. m0) > 1e-6 *. Float.max 1. m0 then
          ok := false
      done;
      !ok)

(* --- fitting-objective memo --- *)

let paper_like_phi () =
  Dl.Initial.of_observations ~xs:[| 1.; 2.; 3.; 4.; 5.; 6. |]
    ~densities:[| 6.0; 3.1; 2.3; 1.2; 0.7; 0.4 |]

let synthetic_obs params =
  let phi = paper_like_phi () in
  let times = [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let sol = Dl.Model.solve params ~phi ~times in
  let distances = [| 1; 2; 3; 4; 5; 6 |] in
  {
    Socialnet.Density.distances;
    times;
    density =
      Array.map
        (fun x ->
          Array.map (fun t -> Dl.Model.predict sol ~x:(float_of_int x) ~t) times)
        distances;
    population = Array.map (fun _ -> 100) distances;
  }

(* near-degenerate bounds: every Nelder--Mead trial point clamps onto
   (essentially) a corner of the tiny box, so the clamped-vector memo
   must serve a large share of the evaluations *)
let tight_config () =
  let eps = 1e-9 in
  {
    Dl.Fit.default_config with
    starts = 2;
    d_bounds = (0.01, 0.01 +. eps);
    k_headroom = (1.05, 1.05 +. eps);
    a_bounds = (1.4, 1.4 +. eps);
    b_bounds = (1.5, 1.5 +. eps);
    c_bounds = (0.25, 0.25 +. eps);
  }

let test_objective_memo_hit_rate () =
  with_obs_enabled (fun () ->
      let hits = Obs.Metrics.counter "fit.objective_cache_hits" in
      let h0 = Obs.Metrics.counter_value hits in
      let obs = synthetic_obs Dl.Params.paper_hops in
      let r = Dl.Fit.fit ~config:(tight_config ()) (Rng.create 3) obs in
      let dh = Obs.Metrics.counter_value hits - h0 in
      Alcotest.(check bool) "memo serves a majority of evaluations" true
        (dh * 2 > r.Dl.Fit.evaluations);
      (* memo off: same seed, zero additional hits *)
      Dl.Fit.set_objective_memo false;
      Fun.protect
        ~finally:(fun () -> Dl.Fit.set_objective_memo true)
        (fun () ->
          let h1 = Obs.Metrics.counter_value hits in
          ignore (Dl.Fit.fit ~config:(tight_config ()) (Rng.create 3) obs);
          Alcotest.(check int) "no hits with memo off" h1
            (Obs.Metrics.counter_value hits)))

let test_fit_identical_with_and_without_caches () =
  (* the acceptance contract: a seeded fit lands on bit-identical
     parameters with every cache enabled vs the --no-solver-cache
     configuration (reference stepper + no memo) *)
  let obs = synthetic_obs Dl.Params.paper_hops in
  let config = { Dl.Fit.default_config with starts = 2 } in
  let run () = Dl.Fit.fit ~config (Rng.create 3) obs in
  let cached = run () in
  Pde.set_use_reference_stepper true;
  Dl.Fit.set_objective_memo false;
  let plain =
    Fun.protect
      ~finally:(fun () ->
        Pde.set_use_reference_stepper false;
        Dl.Fit.set_objective_memo true)
      run
  in
  let p1 = cached.Dl.Fit.params and p2 = plain.Dl.Fit.params in
  let checkbit name a b =
    if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
      Alcotest.failf "%s differs: %.17g vs %.17g" name a b
  in
  checkbit "d" p1.Dl.Params.d p2.Dl.Params.d;
  checkbit "k" p1.Dl.Params.k p2.Dl.Params.k;
  checkbit "training error" cached.Dl.Fit.training_error
    plain.Dl.Fit.training_error;
  Alcotest.(check int) "same evaluation count" cached.Dl.Fit.evaluations
    plain.Dl.Fit.evaluations

(* --- objective failure handling --- *)

let test_objective_expected_failure_is_infinite () =
  (* a fit_times set that starts before t0 = 1 makes Model.solve raise
     Invalid_argument: objective must absorb it as +inf, not crash *)
  let obs = synthetic_obs Dl.Params.paper_hops in
  let phi = paper_like_phi () in
  let v =
    Dl.Fit.objective ~phi ~obs ~fit_times:[| 0.5 |] Dl.Params.paper_hops
  in
  Alcotest.(check bool) "expected failure maps to infinity" true
    (v = infinity)

let suite =
  [
    Alcotest.test_case "tridiag factorize = solve" `Quick
      test_factorize_matches_solve;
    Alcotest.test_case "factored reuse across rhs" `Quick
      test_factored_reused_across_rhs;
    Alcotest.test_case "solve_factored in place" `Quick
      test_solve_factored_in_place;
    Alcotest.test_case "mv_into = mv" `Quick test_mv_into_matches_mv;
    Alcotest.test_case "factorize singular" `Quick
      test_factorize_singular_raises;
    Alcotest.test_case "workspace bit-identical" `Quick
      test_workspace_bit_identical;
    Alcotest.test_case "workspace no state leak" `Quick
      test_workspace_no_state_leak;
    Alcotest.test_case "global reference toggle" `Quick
      test_global_reference_toggle;
    Alcotest.test_case "workspace counters" `Quick test_workspace_counters;
    Alcotest.test_case "batch thomas = scalar" `Quick
      test_batch_thomas_matches_scalar;
    Alcotest.test_case "batch solve in place" `Quick test_batch_solve_in_place;
    Alcotest.test_case "batch singular" `Quick test_batch_singular_raises;
    QCheck_alcotest.to_alcotest prop_panel_bit_identity;
    Alcotest.test_case "panel reference fallback" `Quick
      test_panel_reference_fallback;
    Alcotest.test_case "panel strang rejects custom" `Quick
      test_panel_strang_rejects_custom;
    Alcotest.test_case "panel workspace reuse" `Quick
      test_panel_workspace_reuse;
    Alcotest.test_case "model solve workspace bit-identical" `Quick
      test_model_solve_workspace_bit_identical;
    Alcotest.test_case "model solve_panel shared domain" `Quick
      test_model_solve_panel_shared_domain;
    Alcotest.test_case "eval rejects NaN" `Quick test_eval_rejects_nan;
    QCheck_alcotest.to_alcotest prop_factored_diffusion_mass;
    Alcotest.test_case "objective memo hit rate" `Quick
      test_objective_memo_hit_rate;
    Alcotest.test_case "fit identical with/without caches" `Slow
      test_fit_identical_with_and_without_caches;
    Alcotest.test_case "objective expected failure" `Quick
      test_objective_expected_failure_is_infinite;
  ]
