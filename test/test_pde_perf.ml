(* The allocation-free PDE fast path is only allowed to exist because
   it is bit-identical to the retained reference stepper: same
   floating-point operations in the same order, only the array churn
   and re-factorizations removed.  These tests enforce that contract
   (per-cell Int64 bit equality, not approximate checks), plus the
   workspace-reuse counters, the factored-solve algebra, and the
   fitting-objective memo. *)

open Numerics

(* --- Tridiag: factorized Thomas vs one-shot solve --- *)

let random_dominant_system rng n =
  let sub = Array.init (n - 1) (fun _ -> Rng.uniform rng (-1.) 1.) in
  let sup = Array.init (n - 1) (fun _ -> Rng.uniform rng (-1.) 1.) in
  let diag =
    Array.init n (fun i ->
        let row =
          (if i > 0 then Float.abs sub.(i - 1) else 0.)
          +. if i < n - 1 then Float.abs sup.(i) else 0.
        in
        row +. Rng.uniform rng 0.5 2.)
  in
  (Tridiag.make ~sub ~diag ~sup, Array.init n (fun _ -> Rng.uniform rng (-5.) 5.))

let test_factorize_matches_solve () =
  let rng = Rng.create 42 in
  List.iter
    (fun n ->
      let t, b = random_dominant_system rng n in
      let expect = Tridiag.solve t b in
      let f = Tridiag.factorize t in
      Alcotest.(check int) "factored dim" n (Tridiag.factored_dim f);
      let dst = Array.make n 0. in
      Tridiag.solve_factored f ~src:b ~dst;
      Array.iteri
        (fun i v ->
          if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float dst.(i)))
          then Alcotest.failf "n=%d cell %d: %.17g vs %.17g" n i v dst.(i))
        expect)
    [ 1; 2; 3; 7; 41 ]

let test_factored_reused_across_rhs () =
  (* one c'-sweep, many right-hand sides: each must still match the
     one-shot solve bit for bit *)
  let rng = Rng.create 7 in
  let t, _ = random_dominant_system rng 31 in
  let f = Tridiag.factorize t in
  let dst = Array.make 31 0. in
  for _ = 1 to 5 do
    let b = Array.init 31 (fun _ -> Rng.uniform rng (-3.) 3.) in
    Tridiag.solve_factored f ~src:b ~dst;
    let expect = Tridiag.solve t b in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "bit equal" true
          (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float dst.(i))))
      expect
  done

let test_solve_factored_in_place () =
  (* src == dst aliasing is part of the contract *)
  let rng = Rng.create 11 in
  let t, b = random_dominant_system rng 17 in
  let expect = Tridiag.solve t b in
  let buf = Array.copy b in
  let f = Tridiag.factorize t in
  Tridiag.solve_factored f ~src:buf ~dst:buf;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "in-place bit equal" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float buf.(i))))
    expect

let test_mv_into_matches_mv () =
  let rng = Rng.create 13 in
  let t, x = random_dominant_system rng 23 in
  let expect = Tridiag.mv t x in
  let dst = Array.make 23 nan in
  Tridiag.mv_into t x ~dst;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "mv bit equal" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float dst.(i))))
    expect

let test_factorize_singular_raises () =
  let t = Tridiag.make ~sub:[| 1. |] ~diag:[| 0.; 1. |] ~sup:[| 1. |] in
  try
    ignore (Tridiag.factorize t);
    Alcotest.fail "expected Mat.Singular"
  with Mat.Singular -> ()

(* --- workspace stepper vs reference stepper: bit identity --- *)

let dl_problem () =
  let r t = (1.4 *. exp (-1.5 *. (t -. 1.))) +. 0.25 in
  let k = 25. in
  ( {
      Pde.xl = 1.;
      xr = 6.;
      nx = 41;
      diffusion = (fun _ -> 0.05);
      reaction = (fun ~x:_ ~t ~u -> r t *. u *. (1. -. (u /. k)));
      initial = (fun x -> 8. *. exp (-0.5 *. (x -. 1.)));
      t0 = 1.;
    },
    r,
    k )

(* snapshot times that are not multiples of dt, so the loop hits the
   ragged-final-partial-step path (throwaway operator builds) as well
   as the cached macro-step path *)
let ragged_times = [| 1.303; 2.5; 3.017 |]

let check_solutions_bit_identical name (a : Pde.solution) (b : Pde.solution) =
  Alcotest.(check int) (name ^ ": snapshot count") (Array.length a.Pde.values)
    (Array.length b.Pde.values);
  Array.iteri
    (fun it row ->
      Array.iteri
        (fun ix v ->
          let w = b.Pde.values.(it).(ix) in
          if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float w))
          then
            Alcotest.failf "%s: cell (it=%d, ix=%d) differs: %.17g vs %.17g"
              name it ix v w)
        row)
    a.Pde.values

let schemes_under_test () =
  let _, r, k = dl_problem () in
  [
    ("ftcs", Pde.Ftcs);
    ("imex-cn", Pde.Imex 0.5);
    ("imex-implicit", Pde.Imex 1.);
    ("strang", Pde.Strang (Pde.logistic_reaction_step ~r ~k));
  ]

let test_workspace_bit_identical () =
  let p, _, _ = dl_problem () in
  List.iter
    (fun (name, scheme) ->
      (* fresh reaction closures per solve: logistic_reaction_step is
         stateful (memoized integral) *)
      let fast =
        Pde.solve ~scheme ~dt:0.01 ~reference:false p ~times:ragged_times
      in
      let slow =
        Pde.solve ~scheme ~dt:0.01 ~reference:true p ~times:ragged_times
      in
      check_solutions_bit_identical name fast slow)
    (schemes_under_test ())

let test_workspace_no_state_leak () =
  (* repeated fast solves of the same problem must be bit-identical to
     each other and to the reference: nothing carries over *)
  let p, _, _ = dl_problem () in
  List.iter
    (fun (name, scheme) ->
      let run () =
        Pde.solve ~scheme ~dt:0.01 ~reference:false p ~times:ragged_times
      in
      let first = run () in
      let second = run () in
      check_solutions_bit_identical (name ^ " repeat") first second;
      check_solutions_bit_identical (name ^ " vs ref") first
        (Pde.solve ~scheme ~dt:0.01 ~reference:true p ~times:ragged_times))
    (schemes_under_test ())

let test_global_reference_toggle () =
  let p, _, _ = dl_problem () in
  Alcotest.(check bool) "default is fast" false (Pde.use_reference_stepper ());
  Pde.set_use_reference_stepper true;
  Fun.protect
    ~finally:(fun () -> Pde.set_use_reference_stepper false)
    (fun () ->
      (* ?reference defaults to the global toggle; result is still
         bit-identical because the two paths are *)
      let toggled = Pde.solve ~dt:0.01 p ~times:ragged_times in
      let fast = Pde.solve ~dt:0.01 ~reference:false p ~times:ragged_times in
      check_solutions_bit_identical "toggle" toggled fast)

(* --- workspace counters --- *)

let with_obs_enabled f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let test_workspace_counters () =
  with_obs_enabled (fun () ->
      let reuses = Obs.Metrics.counter "pde.workspace_reuses" in
      let rebuilds = Obs.Metrics.counter "pde.factor_rebuilds" in
      let r0 = Obs.Metrics.counter_value reuses in
      let b0 = Obs.Metrics.counter_value rebuilds in
      let p, _, _ = dl_problem () in
      (* 1.303 needs a ragged step, so: 1 initial build + ragged
         throwaway builds, and many macro steps served by the cache *)
      ignore
        (Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:0.01 ~reference:false p
           ~times:ragged_times);
      let dr = Obs.Metrics.counter_value reuses - r0 in
      let db = Obs.Metrics.counter_value rebuilds - b0 in
      Alcotest.(check bool) "many cached steps" true (dr > 100);
      Alcotest.(check bool) "initial + ragged rebuilds" true (db >= 2);
      (* the reference path must not touch workspace counters *)
      let r1 = Obs.Metrics.counter_value reuses in
      ignore
        (Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:0.01 ~reference:true p
           ~times:ragged_times);
      Alcotest.(check int) "reference adds no reuses" r1
        (Obs.Metrics.counter_value reuses))

(* --- eval hardening --- *)

let test_eval_rejects_nan () =
  let p, _, _ = dl_problem () in
  let sol = Pde.solve ~dt:0.01 p ~times:[| 2. |] in
  let expect_invalid x t =
    try
      ignore (Pde.eval sol ~x ~t);
      Alcotest.fail "expected Invalid_argument on NaN"
    with Invalid_argument _ -> ()
  in
  expect_invalid Float.nan 2.;
  expect_invalid 3. Float.nan;
  (* the hoisted evaluator must agree with eval on normal queries *)
  let ev = Pde.evaluator sol in
  List.iter
    (fun (x, t) ->
      Alcotest.(check bool) "evaluator = eval" true
        (Float.equal (ev ~x ~t) (Pde.eval sol ~x ~t)))
    [ (1.0, 1.0); (3.25, 1.7); (6.0, 2.0); (0.0, 0.0); (99., 99.) ]

(* --- mass conservation on the factored diffusion path (qcheck) --- *)

let prop_factored_diffusion_mass =
  QCheck.Test.make ~count:30
    ~name:"factored Imex diffusion conserves mass"
    QCheck.(pair (float_range 0.05 0.8) (int_range 31 81))
    (fun (d, nx) ->
      let p =
        {
          Pde.xl = 0.;
          xr = 10.;
          nx;
          diffusion = (fun _ -> d);
          reaction = (fun ~x:_ ~t:_ ~u:_ -> 0.);
          initial = (fun x -> exp (-.((x -. 5.) ** 2.)));
          t0 = 0.;
        }
      in
      let sol =
        Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:5e-3 ~reference:false p
          ~times:[| 0.7; 1.9 |]
      in
      let m0 = Pde.mass sol ~it:0 in
      let ok = ref true in
      for it = 1 to Array.length sol.Pde.ts - 1 do
        if Float.abs (Pde.mass sol ~it -. m0) > 1e-6 *. Float.max 1. m0 then
          ok := false
      done;
      !ok)

(* --- fitting-objective memo --- *)

let paper_like_phi () =
  Dl.Initial.of_observations ~xs:[| 1.; 2.; 3.; 4.; 5.; 6. |]
    ~densities:[| 6.0; 3.1; 2.3; 1.2; 0.7; 0.4 |]

let synthetic_obs params =
  let phi = paper_like_phi () in
  let times = [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let sol = Dl.Model.solve params ~phi ~times in
  let distances = [| 1; 2; 3; 4; 5; 6 |] in
  {
    Socialnet.Density.distances;
    times;
    density =
      Array.map
        (fun x ->
          Array.map (fun t -> Dl.Model.predict sol ~x:(float_of_int x) ~t) times)
        distances;
    population = Array.map (fun _ -> 100) distances;
  }

(* near-degenerate bounds: every Nelder--Mead trial point clamps onto
   (essentially) a corner of the tiny box, so the clamped-vector memo
   must serve a large share of the evaluations *)
let tight_config () =
  let eps = 1e-9 in
  {
    Dl.Fit.default_config with
    starts = 2;
    d_bounds = (0.01, 0.01 +. eps);
    k_headroom = (1.05, 1.05 +. eps);
    a_bounds = (1.4, 1.4 +. eps);
    b_bounds = (1.5, 1.5 +. eps);
    c_bounds = (0.25, 0.25 +. eps);
  }

let test_objective_memo_hit_rate () =
  with_obs_enabled (fun () ->
      let hits = Obs.Metrics.counter "fit.objective_cache_hits" in
      let h0 = Obs.Metrics.counter_value hits in
      let obs = synthetic_obs Dl.Params.paper_hops in
      let r = Dl.Fit.fit ~config:(tight_config ()) (Rng.create 3) obs in
      let dh = Obs.Metrics.counter_value hits - h0 in
      Alcotest.(check bool) "memo serves a majority of evaluations" true
        (dh * 2 > r.Dl.Fit.evaluations);
      (* memo off: same seed, zero additional hits *)
      Dl.Fit.set_objective_memo false;
      Fun.protect
        ~finally:(fun () -> Dl.Fit.set_objective_memo true)
        (fun () ->
          let h1 = Obs.Metrics.counter_value hits in
          ignore (Dl.Fit.fit ~config:(tight_config ()) (Rng.create 3) obs);
          Alcotest.(check int) "no hits with memo off" h1
            (Obs.Metrics.counter_value hits)))

let test_fit_identical_with_and_without_caches () =
  (* the acceptance contract: a seeded fit lands on bit-identical
     parameters with every cache enabled vs the --no-solver-cache
     configuration (reference stepper + no memo) *)
  let obs = synthetic_obs Dl.Params.paper_hops in
  let config = { Dl.Fit.default_config with starts = 2 } in
  let run () = Dl.Fit.fit ~config (Rng.create 3) obs in
  let cached = run () in
  Pde.set_use_reference_stepper true;
  Dl.Fit.set_objective_memo false;
  let plain =
    Fun.protect
      ~finally:(fun () ->
        Pde.set_use_reference_stepper false;
        Dl.Fit.set_objective_memo true)
      run
  in
  let p1 = cached.Dl.Fit.params and p2 = plain.Dl.Fit.params in
  let checkbit name a b =
    if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
      Alcotest.failf "%s differs: %.17g vs %.17g" name a b
  in
  checkbit "d" p1.Dl.Params.d p2.Dl.Params.d;
  checkbit "k" p1.Dl.Params.k p2.Dl.Params.k;
  checkbit "training error" cached.Dl.Fit.training_error
    plain.Dl.Fit.training_error;
  Alcotest.(check int) "same evaluation count" cached.Dl.Fit.evaluations
    plain.Dl.Fit.evaluations

(* --- objective failure handling --- *)

let test_objective_expected_failure_is_infinite () =
  (* a fit_times set that starts before t0 = 1 makes Model.solve raise
     Invalid_argument: objective must absorb it as +inf, not crash *)
  let obs = synthetic_obs Dl.Params.paper_hops in
  let phi = paper_like_phi () in
  let v =
    Dl.Fit.objective ~phi ~obs ~fit_times:[| 0.5 |] Dl.Params.paper_hops
  in
  Alcotest.(check bool) "expected failure maps to infinity" true
    (v = infinity)

let suite =
  [
    Alcotest.test_case "tridiag factorize = solve" `Quick
      test_factorize_matches_solve;
    Alcotest.test_case "factored reuse across rhs" `Quick
      test_factored_reused_across_rhs;
    Alcotest.test_case "solve_factored in place" `Quick
      test_solve_factored_in_place;
    Alcotest.test_case "mv_into = mv" `Quick test_mv_into_matches_mv;
    Alcotest.test_case "factorize singular" `Quick
      test_factorize_singular_raises;
    Alcotest.test_case "workspace bit-identical" `Quick
      test_workspace_bit_identical;
    Alcotest.test_case "workspace no state leak" `Quick
      test_workspace_no_state_leak;
    Alcotest.test_case "global reference toggle" `Quick
      test_global_reference_toggle;
    Alcotest.test_case "workspace counters" `Quick test_workspace_counters;
    Alcotest.test_case "eval rejects NaN" `Quick test_eval_rejects_nan;
    QCheck_alcotest.to_alcotest prop_factored_diffusion_mass;
    Alcotest.test_case "objective memo hit rate" `Quick
      test_objective_memo_hit_rate;
    Alcotest.test_case "fit identical with/without caches" `Slow
      test_fit_identical_with_and_without_caches;
    Alcotest.test_case "objective expected failure" `Quick
      test_objective_expected_failure_is_infinite;
  ]
