(* Tests for the original-format Digg 2009 CSV loader, using synthetic
   fixture files written to temp paths. *)

open Socialnet

let checkf tol = Alcotest.(check (float tol))

let write_temp name contents =
  let path = Filename.temp_file "dlosn_csv" name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let with_fixture votes friends f =
  let vp = write_temp "votes.csv" votes in
  let fp = write_temp "friends.csv" friends in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove vp;
      Sys.remove fp)
    (fun () -> f vp fp)

(* two stories; raw ids are sparse on purpose *)
let votes_csv =
  {|"1246000000","700","90"
"1246003600","701","90"
"1246007200","702","90"
"1246010000","703","91"
"1246010600","700","91"
"1246011000","703","91"
|}

(* 700 follows 701 (mutual), 702 follows 700 (one-way) *)
let friends_csv =
  {|"1","1245000000","700","701"
"0","1245000001","702","700"
|}

let test_load_basic () =
  with_fixture votes_csv friends_csv (fun vp fp ->
      let ds, maps = Digg_csv.load ~votes:vp ~friends:fp () in
      Alcotest.(check int) "users interned" 4 (Dataset.n_users ds);
      Alcotest.(check int) "stories" 2 (Dataset.n_stories ds);
      (* story 90: 3 votes, initiator raw 700 *)
      let u700 = Hashtbl.find maps.Digg_csv.user_of_raw 700 in
      let s90 = Hashtbl.find maps.Digg_csv.story_of_raw 90 in
      let story = Dataset.story ds s90 in
      Alcotest.(check int) "initiator" u700 story.Types.initiator;
      Alcotest.(check int) "votes" 3 (Types.story_vote_count story);
      (* times re-based to hours *)
      checkf 1e-9 "first at 0" 0. story.Types.votes.(0).Types.time;
      checkf 1e-9 "second at 1h" 1. story.Types.votes.(1).Types.time;
      checkf 1e-9 "third at 2h" 2. story.Types.votes.(2).Types.time)

let test_load_friendships () =
  with_fixture votes_csv friends_csv (fun vp fp ->
      let ds, maps = Digg_csv.load ~votes:vp ~friends:fp () in
      let u = Hashtbl.find maps.Digg_csv.user_of_raw in
      let g = Dataset.follows ds in
      Alcotest.(check bool) "700 follows 701" true
        (Osn_graph.Digraph.has_edge g (u 700) (u 701));
      Alcotest.(check bool) "mutual back-edge" true
        (Osn_graph.Digraph.has_edge g (u 701) (u 700));
      Alcotest.(check bool) "702 follows 700" true
        (Osn_graph.Digraph.has_edge g (u 702) (u 700));
      Alcotest.(check bool) "one-way has no back-edge" false
        (Osn_graph.Digraph.has_edge g (u 700) (u 702)))

let test_duplicate_votes_first_wins () =
  (* user 703 votes story 91 twice: only the first is kept *)
  with_fixture votes_csv friends_csv (fun vp fp ->
      let ds, maps = Digg_csv.load ~votes:vp ~friends:fp () in
      let s91 = Hashtbl.find maps.Digg_csv.story_of_raw 91 in
      let story = Dataset.story ds s91 in
      Alcotest.(check int) "deduplicated" 2 (Types.story_vote_count story);
      Types.check_story story)

let test_min_votes_filter () =
  with_fixture votes_csv friends_csv (fun vp fp ->
      let ds, _ = Digg_csv.load ~min_votes:3 ~votes:vp ~friends:fp () in
      (* story 91 has only 2 distinct voters -> dropped *)
      Alcotest.(check int) "filtered" 1 (Dataset.n_stories ds))

let test_header_tolerated () =
  let with_header = "timestamp,voter,story\n" ^ votes_csv in
  with_fixture with_header friends_csv (fun vp fp ->
      let ds, _ = Digg_csv.load ~votes:vp ~friends:fp () in
      Alcotest.(check int) "stories parsed past header" 2 (Dataset.n_stories ds))

let test_malformed_row_rejected () =
  let bad = votes_csv ^ "oops,not,\"numbers\"x\n" in
  with_fixture bad friends_csv (fun vp fp ->
      try
        ignore (Digg_csv.load ~votes:vp ~friends:fp ());
        Alcotest.fail "expected Failure"
      with Failure msg ->
        Alcotest.(check bool) "names the line" true
          (String.length msg > 0
           && String.contains msg 'l' (* "line" *)))

let test_parse_helpers () =
  (match Digg_csv.parse_vote_line {|"123","4","5"|} with
  | Some (ts, v, s) ->
    checkf 1e-9 "ts" 123. ts;
    Alcotest.(check int) "voter" 4 v;
    Alcotest.(check int) "story" 5 s
  | None -> Alcotest.fail "expected parse");
  (match Digg_csv.parse_vote_line "123,4,5" with
  | Some _ -> ()
  | None -> Alcotest.fail "unquoted fields accepted");
  Alcotest.(check bool) "header row is None" true
    (Digg_csv.parse_vote_line "timestamp,voter,story" = None);
  match Digg_csv.parse_friend_line {|"1","99","7","8"|} with
  | Some (mutual, ts, u, f) ->
    Alcotest.(check bool) "mutual" true mutual;
    checkf 1e-9 "ts" 99. ts;
    Alcotest.(check int) "user" 7 u;
    Alcotest.(check int) "friend" 8 f
  | None -> Alcotest.fail "expected parse"

let test_pipeline_runs_on_csv_data () =
  (* a slightly larger fixture where the pipeline has >= 2 hop groups *)
  let votes =
    Buffer.create 256
  in
  (* star-ish cascade: initiator 1000, direct followers 1001-1005 vote,
     then their followers 1006-1011 *)
  Buffer.add_string votes "\"0\",\"1000\",\"5\"\n";
  for i = 1 to 5 do
    Buffer.add_string votes
      (Printf.sprintf "\"%d\",\"%d\",\"5\"\n" (i * 1800) (1000 + i))
  done;
  for i = 6 to 11 do
    Buffer.add_string votes
      (Printf.sprintf "\"%d\",\"%d\",\"5\"\n" (i * 3600) (1000 + i))
  done;
  let friends = Buffer.create 256 in
  for i = 1 to 5 do
    Buffer.add_string friends (Printf.sprintf "\"0\",\"0\",\"%d\",\"1000\"\n" (1000 + i))
  done;
  for i = 6 to 11 do
    Buffer.add_string friends
      (Printf.sprintf "\"0\",\"0\",\"%d\",\"%d\"\n" (1000 + i) (1000 + i - 5))
  done;
  with_fixture (Buffer.contents votes) (Buffer.contents friends) (fun vp fp ->
      let ds, maps = Digg_csv.load ~votes:vp ~friends:fp () in
      let sid = Hashtbl.find maps.Digg_csv.story_of_raw 5 in
      let story = Dataset.story ds sid in
      let exp =
        Dl.Pipeline.run ds ~story
          ~metric:(Dl.Pipeline.Hops { max_distance = 3 })
      in
      Alcotest.(check bool) "pipeline produces a table" true
        (Array.length exp.Dl.Pipeline.table.Dl.Accuracy.distances >= 2))

let suite =
  [
    Alcotest.test_case "load basic" `Quick test_load_basic;
    Alcotest.test_case "friendships" `Quick test_load_friendships;
    Alcotest.test_case "duplicate votes" `Quick test_duplicate_votes_first_wins;
    Alcotest.test_case "min_votes filter" `Quick test_min_votes_filter;
    Alcotest.test_case "header tolerated" `Quick test_header_tolerated;
    Alcotest.test_case "malformed rejected" `Quick test_malformed_row_rejected;
    Alcotest.test_case "parse helpers" `Quick test_parse_helpers;
    Alcotest.test_case "pipeline on CSV data" `Quick test_pipeline_runs_on_csv_data;
  ]
