(* Tests for the persistent model store: the binary record codec and
   CRC framing, WAL crash recovery (torn tails, bit rot), snapshot
   compaction, bit-exact fit round-trips through the fit hook, and the
   serving layer's warm restart over a store directory. *)

module F = Store.Format
module J = Serve.Tiny_json

(* --- scratch directories --- *)

let tmp_counter = ref 0

let tmp_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlosn-test-store-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- fixtures --- *)

let sample_record ?(id = "r1") ?(training_error = 0.25) ?(model = "dl") () =
  {
    F.id;
    story = "story-7";
    source = "test";
    model;
    created_ns = 1_234_567_890;
    params =
      Dl.Params.make ~d:0.01 ~k:25.
        ~r:(Dl.Growth.Exp_decay { a = 1.4; b = 1.5; c = 0.25 })
        ~l:1. ~big_l:6.;
    phi_xs = [| 1.; 2.; 3.; 4. |];
    phi_densities = [| 2.0; 1.2; 0.7; 0.4 |];
    phi_construction = `Pchip;
    scheme = Dl.Model.Strang;
    nx = 41;
    dt = 0.05;
    reference_stepper = false;
    fit_times = [| 2.; 3. |];
    training_error;
    evaluations = 321;
    starts = 2;
    trace_id = "";
    obs_cursor = 0.;
  }

let small_obs () =
  {
    Socialnet.Density.distances = [| 1; 2; 3; 4 |];
    times = [| 1.; 2.; 3.; 4.; 5. |];
    density =
      [|
        [| 2.0; 3.0; 4.0; 4.8; 5.4 |];
        [| 1.2; 1.9; 2.7; 3.4; 4.0 |];
        [| 0.7; 1.1; 1.6; 2.1; 2.5 |];
        [| 0.4; 0.6; 0.9; 1.2; 1.5 |];
      |];
    population = [| 100; 100; 100; 100 |];
  }

let bits = Int64.bits_of_float

let check_bits name a b =
  Alcotest.(check int64) name (bits a) (bits b)

(* --- codec --- *)

let test_crc32_vector () =
  (* the standard IEEE 802.3 check value for "123456789" *)
  Alcotest.(check int) "crc32 check vector" 0xCBF43926 (F.crc32 "123456789");
  (* incremental = one-shot *)
  Alcotest.(check int) "incremental crc"
    (F.crc32 "123456789")
    (F.crc32 ~crc:(F.crc32 "12345") "6789")

let test_encode_decode_roundtrip () =
  let weird =
    {
      (sample_record ()) with
      F.training_error = -0.0;
      phi_densities = [| 1e-300; Float.max_float; 0.1 +. 0.2 |];
      phi_xs = [| 0.1; 0.2; 0.3 |];
      params =
        Dl.Params.make ~d:1e-17 ~k:1.0000000000000002
          ~r:(Dl.Growth.Constant 0.30000000000000004)
          ~l:0. ~big_l:5.;
    }
  in
  List.iter
    (fun r ->
      match F.decode (F.encode r) with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok r' ->
        Alcotest.(check bool) "bit-exact round-trip" true (F.equal r r'))
    [ sample_record (); weird ]

(* The exact bytes [encode] produced for [sample_record ()] while the
   codec was still at payload version 1 (no model field), captured
   before the v2 bump.  Decoding must keep working forever and default
   the model name to "dl". *)
let v1_sample_hex =
  "010200000072310700000073746f72792d370400000074657374d2029649000000007b14ae\
   47e17a843f000000000000394001666666666666f63f000000000000f83f000000000000d0\
   3f000000000000f03f000000000000184004000000000000000000f03f0000000000000040\
   00000000000008400000000000001040040000000000000000000040333333333333f33f66\
   6666666666e63f9a9999999999d93f0102290000009a9999999999a93f0002000000000000\
   00000000400000000000000840000000000000d03f4101000002000000"

let of_hex s =
  let n = String.length s / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let test_decode_v1_record () =
  match F.decode (of_hex v1_sample_hex) with
  | Error e -> Alcotest.failf "v1 payload must decode: %s" e
  | Ok r ->
    Alcotest.(check string) "v1 model defaults to dl" "dl" r.F.model;
    Alcotest.(check bool) "v1 fields survive" true
      (F.equal r (sample_record ()))

let test_decode_rejects_garbage () =
  let enc = F.encode (sample_record ()) in
  (match F.decode (enc ^ "x") with
  | Ok _ -> Alcotest.fail "trailing garbage must not decode"
  | Error _ -> ());
  match F.decode (String.sub enc 0 (String.length enc - 3)) with
  | Ok _ -> Alcotest.fail "truncated payload must not decode"
  | Error _ -> ()

let test_frame_corruption_detected () =
  let framed = F.frame (F.encode (sample_record ())) in
  (match F.read_frame framed ~pos:0 with
  | F.Frame (payload, next) ->
    Alcotest.(check int) "frame consumes everything" (String.length framed) next;
    Alcotest.(check bool) "payload decodes" true
      (Result.is_ok (F.decode payload))
  | _ -> Alcotest.fail "clean frame must read back");
  (* flip one payload byte: the CRC must catch it *)
  let b = Bytes.of_string framed in
  let mid = String.length framed - 4 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
  match F.read_frame (Bytes.to_string b) ~pos:0 with
  | F.Corrupt _ -> ()
  | F.Frame _ -> Alcotest.fail "bit flip must not read back as a frame"
  | F.End -> Alcotest.fail "bit flip must not read back as End"

(* --- store recovery --- *)

let test_empty_dir () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  Alcotest.(check int) "no records" 0 (Store.record_count store);
  Alcotest.(check bool) "no corruption" true
    ((Store.info store).Store.corruption = None);
  Alcotest.(check bool) "no last id" true (Store.last_id store = None);
  Store.close store;
  (* a second open over the now-initialised files is also clean *)
  let store = Store.open_ dir in
  Alcotest.(check int) "still empty" 0 (Store.record_count store);
  Store.close store

let test_append_reload () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  Store.append store (sample_record ~id:"a" ());
  Store.append store (sample_record ~id:"b" ~training_error:0.5 ());
  Store.close store;
  let store = Store.open_ dir in
  Alcotest.(check int) "both back" 2 (Store.record_count store);
  Alcotest.(check (option string)) "last id" (Some "b") (Store.last_id store);
  Alcotest.(check bool) "record a bit-equal" true
    (F.equal (sample_record ~id:"a" ()) (Option.get (Store.find store "a")));
  Store.close store

let test_duplicate_id_last_wins () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  Store.append store (sample_record ~id:"a" ~training_error:0.9 ());
  Store.append store (sample_record ~id:"b" ());
  Store.append store (sample_record ~id:"a" ~training_error:0.1 ());
  Alcotest.(check int) "two live records" 2 (Store.record_count store);
  Store.close store;
  let store = Store.open_ dir in
  Alcotest.(check int) "two after replay" 2 (Store.record_count store);
  check_bits "latest wins" 0.1
    (Option.get (Store.find store "a")).F.training_error;
  (* order keeps the first position: a, then b *)
  (match Store.records store with
  | [ ra; rb ] ->
    Alcotest.(check string) "first is a" "a" ra.F.id;
    Alcotest.(check string) "second is b" "b" rb.F.id
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  Store.close store

let test_truncated_wal_tail () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  Store.append store (sample_record ~id:"a" ());
  Store.append store (sample_record ~id:"b" ());
  Store.append store (sample_record ~id:"c" ());
  Store.close store;
  (* tear the last frame, as a crash mid-write would *)
  let wal = Filename.concat dir Store.Wal.file_name in
  let size = (Unix.stat wal).Unix.st_size in
  Unix.truncate wal (size - 7);
  let store = Store.open_ dir in
  Alcotest.(check int) "valid prefix recovered" 2 (Store.record_count store);
  Alcotest.(check bool) "corruption reported" true
    ((Store.info store).Store.corruption <> None);
  Alcotest.(check bool) "dropped bytes counted" true
    ((Store.info store).Store.dropped_bytes > 0);
  (* the torn tail was truncated away: appends go to a clean log *)
  Store.append store (sample_record ~id:"d" ());
  Store.close store;
  let store = Store.open_ dir in
  Alcotest.(check int) "clean after re-append" 3 (Store.record_count store);
  Alcotest.(check bool) "no corruption now" true
    ((Store.info store).Store.corruption = None);
  Store.close store

let test_bitflip_wal_record () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  Store.append store (sample_record ~id:"a" ());
  Store.append store (sample_record ~id:"b" ());
  Store.close store;
  let wal = Filename.concat dir Store.Wal.file_name in
  let contents = read_file wal in
  (* flip a byte inside the last record's payload *)
  let b = Bytes.of_string contents in
  let mid = Bytes.length b - 16 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x01));
  write_file wal (Bytes.to_string b);
  let store = Store.open_ dir in
  Alcotest.(check int) "only the intact record" 1 (Store.record_count store);
  Alcotest.(check bool) "record a survives" true
    (Store.find store "a" <> None);
  Alcotest.(check bool) "corruption reported" true
    ((Store.info store).Store.corruption <> None);
  Store.close store

let test_mangled_wal_header () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  Store.append store (sample_record ~id:"a" ());
  Store.close store;
  let wal = Filename.concat dir Store.Wal.file_name in
  let contents = read_file wal in
  write_file wal ("XXXX" ^ String.sub contents 4 (String.length contents - 4));
  let store = Store.open_ dir in
  Alcotest.(check int) "nothing recovered" 0 (Store.record_count store);
  Alcotest.(check bool) "corruption reported" true
    ((Store.info store).Store.corruption <> None);
  (* the store still works for new appends *)
  Store.append store (sample_record ~id:"fresh" ());
  Store.close store;
  let store = Store.open_ dir in
  Alcotest.(check int) "fresh record durable" 1 (Store.record_count store);
  Store.close store

let test_gc_roundtrip () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  let ids = [ "a"; "b"; "c"; "d" ] in
  List.iter (fun id -> Store.append store (sample_record ~id ())) ids;
  let wal_before = Store.wal_bytes store in
  Store.gc store;
  Alcotest.(check bool) "wal shrank" true (Store.wal_bytes store < wal_before);
  Store.close store;
  let store = Store.open_ dir in
  Alcotest.(check int) "snapshot carries all" 4 (Store.record_count store);
  Alcotest.(check int) "from the snapshot" 4
    (Store.info store).Store.snapshot_records;
  Alcotest.(check int) "wal is empty" 0 (Store.info store).Store.wal_records;
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " bit-equal") true
        (F.equal (sample_record ~id ()) (Option.get (Store.find store id))))
    ids;
  Store.close store

let test_gc_retention () =
  with_dir @@ fun dir ->
  let fresh_record ~id ~age_s =
    { (sample_record ~id ()) with
      F.created_ns = Obs.now_ns () - (age_s * 1_000_000_000) }
  in
  let store = Store.open_ dir in
  List.iter
    (fun (id, age_s) -> Store.append store (fresh_record ~id ~age_s))
    [ ("old1", 5000); ("old2", 4000); ("new1", 10); ("new2", 5) ];
  (* rank-based retention: keep the two newest by append order *)
  Store.gc ~keep_last:2 store;
  Alcotest.(check int) "keep_last keeps 2" 2 (Store.record_count store);
  Alcotest.(check bool) "oldest dropped" true (Store.find store "old1" = None);
  Alcotest.(check bool) "newest kept" true (Store.find store "new2" <> None);
  Alcotest.(check (option string)) "last_id unchanged" (Some "new2")
    (Store.last_id store);
  (* age-based retention: a 1-hour cutoff drops nothing that's left *)
  Store.gc ~max_age_ns:(3600 * 1_000_000_000) store;
  Alcotest.(check int) "young records survive max_age" 2
    (Store.record_count store);
  (* retention survives reopen (snapshot rewritten) *)
  Store.close store;
  let store = Store.open_ dir in
  Alcotest.(check int) "reopen sees survivors" 2 (Store.record_count store);
  (* keep_last:0 empties the store and clears last_id *)
  Store.gc ~keep_last:0 store;
  Alcotest.(check int) "keep_last:0 empties" 0 (Store.record_count store);
  Alcotest.(check (option string)) "last_id cleared" None (Store.last_id store);
  Store.close store;
  (* the ancient fixture timestamp always falls past a real cutoff *)
  let store = Store.open_ dir in
  Store.append store (sample_record ~id:"ancient" ());
  Store.append store (fresh_record ~id:"young" ~age_s:1);
  Store.gc ~max_age_ns:(86_400 * 1_000_000_000) store;
  Alcotest.(check bool) "ancient dropped by max_age" true
    (Store.find store "ancient" = None);
  Alcotest.(check bool) "young survives max_age" true
    (Store.find store "young" <> None);
  Alcotest.(check (option string)) "last_id repointed" (Some "young")
    (Store.last_id store);
  Store.close store

let test_load_read_only () =
  with_dir @@ fun dir ->
  let store = Store.open_ dir in
  Store.append store (sample_record ~id:"a" ());
  Store.close store;
  let wal = Filename.concat dir Store.Wal.file_name in
  let size_before = (Unix.stat wal).Unix.st_size in
  Unix.truncate wal (size_before - 3);
  (* load must report the torn tail without truncating the file *)
  let records, info = Store.load dir in
  Alcotest.(check int) "tail dropped from view" 0 (List.length records);
  Alcotest.(check bool) "corruption reported" true (info.Store.corruption <> None);
  Alcotest.(check int) "file untouched" (size_before - 3)
    (Unix.stat wal).Unix.st_size

(* --- bit-exact fit round-trip through the hook --- *)

let fit_config =
  {
    Dl.Fit.default_config with
    Dl.Fit.fit_times = [| 2.; 3. |];
    starts = 1;
  }

let test_fit_hook_roundtrip () =
  with_dir @@ fun dir ->
  let obs = small_obs () in
  let store = Store.open_ ~source:"test" dir in
  Store.attach_fit_hook store ();
  let result =
    Fun.protect
      ~finally:Store.detach_fit_hook
      (fun () ->
        Dl.Fit.fit ~config:fit_config ~id:"fit-t1" (Numerics.Rng.create 3) obs)
  in
  Alcotest.(check int) "hook captured the fit" 1 (Store.record_count store);
  Store.close store;
  let store = Store.open_ dir in
  let r = Option.get (Store.find store "fit-t1") in
  let p = r.F.params and q = result.Dl.Fit.params in
  check_bits "d" q.Dl.Params.d p.Dl.Params.d;
  check_bits "k" q.Dl.Params.k p.Dl.Params.k;
  check_bits "l" q.Dl.Params.l p.Dl.Params.l;
  check_bits "L" q.Dl.Params.big_l p.Dl.Params.big_l;
  check_bits "training error" result.Dl.Fit.training_error r.F.training_error;
  Alcotest.(check int) "evaluations" result.Dl.Fit.evaluations r.F.evaluations;
  Alcotest.(check string) "solver scheme" "strang" (F.scheme_name r.F.scheme);
  (* phi rebuilt from stored knots evaluates bit-identically *)
  let phi =
    Dl.Initial.of_observations
      ~xs:(Array.map float_of_int obs.Socialnet.Density.distances)
      ~densities:(Array.map (fun row -> row.(0)) obs.Socialnet.Density.density)
  in
  let phi' = F.phi r in
  Array.iter
    (fun x ->
      check_bits
        (Printf.sprintf "phi(%g)" x)
        (Dl.Initial.eval phi x) (Dl.Initial.eval phi' x))
    [| 1.; 1.3; 2.; 2.71; 3.5; 4. |];
  Store.close store

(* --- serving over a store: warm restart, batch predict, cache keys --- *)

let fit_body =
  {|{"distances":[1,2,3,4],"times":[1,2,3,4,5],
     "density":[[2.0,3.0,4.0,4.8,5.4],[1.2,1.9,2.7,3.4,4.0],
                [0.7,1.1,1.6,2.1,2.5],[0.4,0.6,0.9,1.2,1.5]],
     "starts":1,"seed":3}|}

let with_server ~store_dir f =
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.port = 0;
      store_dir = Some store_dir;
    }
  in
  let server = Serve.Server.create ~config () in
  let th = Thread.create Serve.Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Thread.join th;
      Obs.set_enabled false)
    (fun () -> f (Serve.Server.port server))

let ok = function
  | Ok (r : Serve.Client.response) -> r
  | Error msg -> Alcotest.failf "request failed: %s" msg

let json_of (r : Serve.Client.response) =
  match J.parse r.Serve.Client.body with
  | Ok v -> v
  | Error e -> Alcotest.failf "bad JSON body %S: %s" r.Serve.Client.body e

let field name v =
  match J.member name v with
  | Some f -> f
  | None -> Alcotest.failf "response lacks field %S" name

let test_serve_warm_restart () =
  with_dir @@ fun dir ->
  (* first server: fit once, answer a prediction *)
  let fit_id, density =
    with_server ~store_dir:dir @@ fun port ->
    let r = ok (Serve.Client.request ~port ~body:fit_body "POST" "/fit") in
    Alcotest.(check int) "fit status" 200 r.Serve.Client.status;
    let v = json_of r in
    Alcotest.(check bool) "fresh fit" true (field "cached" v = J.Bool false);
    let id = Option.get (J.to_string_opt (field "fit" v)) in
    let p = ok (Serve.Client.request ~port "GET" "/predict?x=2&t=3") in
    Alcotest.(check int) "predict status" 200 p.Serve.Client.status;
    (id, Option.get (J.to_float (field "density" (json_of p))))
  in
  (* the record is on disk even though the server was stopped *)
  let records, _ = Store.load dir in
  Alcotest.(check int) "one durable record" 1 (List.length records);
  (* second server over the same dir: warm cache, no refit *)
  with_server ~store_dir:dir @@ fun port ->
  let p =
    ok (Serve.Client.request ~port "GET" ("/predict?x=2&t=3&fit=" ^ fit_id))
  in
  Alcotest.(check int) "warm predict status" 200 p.Serve.Client.status;
  check_bits "same density after restart" density
    (Option.get (J.to_float (field "density" (json_of p))));
  (* the default fit survives the restart too (last_fit from the store) *)
  let p0 = ok (Serve.Client.request ~port "GET" "/predict?x=2&t=3") in
  Alcotest.(check int) "default fit after restart" 200 p0.Serve.Client.status;
  (* re-posting the identical body is a cache hit — no refit ran *)
  let r = ok (Serve.Client.request ~port ~body:fit_body "POST" "/fit") in
  let v = json_of r in
  Alcotest.(check bool) "cache hit" true (field "cached" v = J.Bool true);
  Alcotest.(check (option string)) "same fit id" (Some fit_id)
    (J.to_string_opt (field "fit" v));
  (* and the metrics confirm records were replayed, not refitted *)
  let m = ok (Serve.Client.request ~port "GET" "/metrics") in
  let has needle =
    let nl = String.length needle and body = m.Serve.Client.body in
    let hl = String.length body in
    let rec go i =
      i + nl <= hl && (String.sub body i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "replayed counter on /metrics" true
    (has "dlosn_store_replayed_records_total 1")

let test_solver_config_cache_key () =
  with_dir @@ fun dir ->
  with_server ~store_dir:dir @@ fun port ->
  let r1 = ok (Serve.Client.request ~port ~body:fit_body "POST" "/fit") in
  let id1 = Option.get (J.to_string_opt (field "fit" (json_of r1))) in
  (* same observation, different grid: must be a different fit, not a
     cache hit aliased onto the default-solver one *)
  let body_nx =
    String.sub fit_body 0 (String.length fit_body - 1) ^ {|,"nx":61}|}
  in
  let r2 = ok (Serve.Client.request ~port ~body:body_nx "POST" "/fit") in
  Alcotest.(check int) "nx fit status" 200 r2.Serve.Client.status;
  let v2 = json_of r2 in
  Alcotest.(check bool) "not served from cache" true
    (field "cached" v2 = J.Bool false);
  let id2 = Option.get (J.to_string_opt (field "fit" v2)) in
  Alcotest.(check bool) "distinct fit ids" true (id1 <> id2);
  (* both are durable, under their own ids *)
  let records, _ = Store.load dir in
  Alcotest.(check int) "two records" 2 (List.length records);
  (* invalid solver options are rejected up front *)
  let bad =
    String.sub fit_body 0 (String.length fit_body - 1) ^ {|,"nx":2}|}
  in
  Alcotest.(check int) "bad nx is a 400" 400
    (ok (Serve.Client.request ~port ~body:bad "POST" "/fit")).Serve.Client.status

let test_predict_batch () =
  with_dir @@ fun dir ->
  with_server ~store_dir:dir @@ fun port ->
  ignore (ok (Serve.Client.request ~port ~body:fit_body "POST" "/fit"));
  let r =
    ok
      (Serve.Client.request ~port
         ~body:{|{"points":[[2,3],[1,2],[3.5,4.5],[2,3]]}|} "POST" "/predict")
  in
  Alcotest.(check int) "batch status" 200 r.Serve.Client.status;
  let v = json_of r in
  let results = Option.get (J.to_list (field "results" v)) in
  Alcotest.(check int) "one result per point" 4 (List.length results);
  Alcotest.(check (option int)) "count field" (Some 4)
    (J.to_int (field "count" v));
  (* the batch path and the single-point path agree bit-for-bit *)
  let single = ok (Serve.Client.request ~port "GET" "/predict?x=2&t=3") in
  let d_single = Option.get (J.to_float (field "density" (json_of single))) in
  let d_batch =
    Option.get (J.to_float (field "density" (List.hd results)))
  in
  check_bits "batch = single" d_single d_batch;
  (* malformed and out-of-domain batches are 400s *)
  List.iter
    (fun body ->
      Alcotest.(check int)
        (Printf.sprintf "reject %s" body)
        400
        (ok (Serve.Client.request ~port ~body "POST" "/predict"))
          .Serve.Client.status)
    [
      {|{"points":[]}|};
      {|{"points":[[1]]}|};
      {|{"points":[[2,0.5]]}|};
      {|{"points":[[99,3]]}|};
      {|{"points":"nope"}|};
      {|{oops|};
    ];
  (* unknown fit id is a 404 *)
  Alcotest.(check int) "unknown fit" 404
    (ok
       (Serve.Client.request ~port ~body:{|{"fit":"zzz","points":[[2,3]]}|}
          "POST" "/predict"))
      .Serve.Client.status

let suite =
  [
    Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
    Alcotest.test_case "codec round-trip is bit-exact" `Quick
      test_encode_decode_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick test_decode_rejects_garbage;
    Alcotest.test_case "v1 payload decodes with model=dl" `Quick
      test_decode_v1_record;
    Alcotest.test_case "frame CRC catches bit flips" `Quick
      test_frame_corruption_detected;
    Alcotest.test_case "empty dir opens clean" `Quick test_empty_dir;
    Alcotest.test_case "append survives reopen" `Quick test_append_reload;
    Alcotest.test_case "duplicate id: last wins" `Quick
      test_duplicate_id_last_wins;
    Alcotest.test_case "torn WAL tail recovers prefix" `Quick
      test_truncated_wal_tail;
    Alcotest.test_case "bit-flipped record is dropped" `Quick
      test_bitflip_wal_record;
    Alcotest.test_case "mangled WAL header degrades" `Quick
      test_mangled_wal_header;
    Alcotest.test_case "gc round-trip" `Quick test_gc_roundtrip;
    Alcotest.test_case "gc retention" `Quick test_gc_retention;
    Alcotest.test_case "load is read-only" `Quick test_load_read_only;
    Alcotest.test_case "fit hook round-trips bit-exactly" `Slow
      test_fit_hook_roundtrip;
    Alcotest.test_case "serve warm restart over a store" `Slow
      test_serve_warm_restart;
    Alcotest.test_case "solver config is part of the cache key" `Slow
      test_solver_config_cache_key;
    Alcotest.test_case "POST /predict batch" `Slow test_predict_batch;
  ]
