(* Tests for Socialnet: story invariants, dataset round-trips, the
   event queue, the cascade simulator's mechanics, distance metrics and
   density observation. *)

open Socialnet
open Numerics

let checkf tol = Alcotest.(check (float tol))

let vote user time = { Types.user; time }

let story_of id initiator votes =
  { Types.id; initiator; topic = 0; votes = Array.of_list votes }

(* --- Types --- *)

let test_vote_count_and_voters () =
  let s = story_of 0 3 [ vote 3 0.; vote 1 1.5; vote 2 2.5 ] in
  Alcotest.(check int) "count" 3 (Types.story_vote_count s);
  Alcotest.(check (array int)) "voters" [| 3; 1; 2 |] (Types.voters s)

let test_votes_before () =
  let s = story_of 0 3 [ vote 3 0.; vote 1 1.5; vote 2 2.5 ] in
  Alcotest.(check int) "none after 0.5 except initiator" 1
    (Array.length (Types.votes_before s 0.5));
  Alcotest.(check int) "two by 1.5" 2 (Array.length (Types.votes_before s 1.5));
  Alcotest.(check int) "all by 10" 3 (Array.length (Types.votes_before s 10.))

let test_check_story_valid () =
  Types.check_story (story_of 0 3 [ vote 3 0.; vote 1 1.5 ])

let expect_invalid f =
  try
    f ();
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_check_story_invalid () =
  expect_invalid (fun () ->
      Types.check_story (story_of 0 3 [ vote 1 0.; vote 3 1. ]));
  expect_invalid (fun () ->
      Types.check_story (story_of 0 3 [ vote 3 1.; vote 1 2. ]));
  expect_invalid (fun () ->
      Types.check_story (story_of 0 3 [ vote 3 0.; vote 2 3.; vote 1 1. ]));
  expect_invalid (fun () ->
      Types.check_story (story_of 0 3 [ vote 3 0.; vote 3 1. ]));
  expect_invalid (fun () -> Types.check_story (story_of 0 3 []))

(* --- Event_queue --- *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.push q t v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  Alcotest.(check int) "size" 4 (Event_queue.size q);
  let popped = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "z"; "a"; "b"; "c" ]
    (List.rev !popped);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_event_queue_peek () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "no peek when empty" true (Event_queue.peek_time q = None);
  Event_queue.push q 5. ();
  Event_queue.push q 2. ();
  Alcotest.(check (option (float 1e-12))) "peek min" (Some 2.)
    (Event_queue.peek_time q)

let test_event_queue_random_order () =
  (* heap pops sorted, cross-checked against explicit sorting *)
  let rng = Rng.create 99 in
  let q = Event_queue.create () in
  let times = Array.init 500 (fun _ -> Rng.float rng) in
  Array.iter (fun t -> Event_queue.push q t ()) times;
  let sorted = Array.copy times in
  Array.sort Float.compare sorted;
  Array.iter
    (fun expected ->
      match Event_queue.pop q with
      | Some (t, ()) -> checkf 1e-12 "sorted pop" expected t
      | None -> Alcotest.fail "queue exhausted early")
    sorted

(* --- Dataset --- *)

let sample_dataset () =
  let g = Osn_graph.Digraph.of_edges 5 [ (1, 0); (2, 0); (3, 1); (4, 2) ] in
  (* edges: u follows v; so 0's followers are 1 and 2 *)
  let s0 = story_of 0 0 [ vote 0 0.; vote 1 0.5; vote 3 2. ] in
  let s1 = story_of 1 2 [ vote 2 0.; vote 0 1. ] in
  Dataset.make ~follows:g ~stories:[| s0; s1 |]

let test_dataset_basics () =
  let ds = sample_dataset () in
  Alcotest.(check int) "users" 5 (Dataset.n_users ds);
  Alcotest.(check int) "stories" 2 (Dataset.n_stories ds);
  Alcotest.(check int) "total votes" 5 (Dataset.total_votes ds)

let test_dataset_influence_orientation () =
  let ds = sample_dataset () in
  (* 1 follows 0, so influence must flow 0 -> 1 *)
  Alcotest.(check bool) "influence 0->1" true
    (Osn_graph.Digraph.has_edge (Dataset.influence ds) 0 1);
  Alcotest.(check bool) "no influence 1->0" false
    (Osn_graph.Digraph.has_edge (Dataset.influence ds) 1 0)

let test_dataset_vote_index () =
  let ds = sample_dataset () in
  Alcotest.(check (array int)) "user 0 voted both" [| 0; 1 |]
    (Dataset.stories_voted_by ds 0);
  Alcotest.(check (array int)) "user 3 voted s0" [| 0 |]
    (Dataset.stories_voted_by ds 3);
  Alcotest.(check (array int)) "user 4 voted none" [||]
    (Dataset.stories_voted_by ds 4)

let test_dataset_rejects_bad_voter () =
  let g = Osn_graph.Digraph.create 2 in
  let bad = story_of 0 0 [ vote 0 0.; vote 7 1. ] in
  expect_invalid (fun () -> ignore (Dataset.make ~follows:g ~stories:[| bad |]))

let test_dataset_tsv_roundtrip () =
  let ds = sample_dataset () in
  let path = Filename.temp_file "dlosn" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.save_tsv ds path;
      let ds' = Dataset.load_tsv path in
      Alcotest.(check int) "users" (Dataset.n_users ds) (Dataset.n_users ds');
      Alcotest.(check int) "stories" (Dataset.n_stories ds) (Dataset.n_stories ds');
      Alcotest.(check int) "votes" (Dataset.total_votes ds) (Dataset.total_votes ds');
      Alcotest.(check int) "edges"
        (Osn_graph.Digraph.n_edges (Dataset.follows ds))
        (Osn_graph.Digraph.n_edges (Dataset.follows ds'));
      let s = Dataset.story ds 0 and s' = Dataset.story ds' 0 in
      Alcotest.(check int) "initiator" s.Types.initiator s'.Types.initiator;
      checkf 1e-6 "vote time" s.Types.votes.(2).Types.time
        s'.Types.votes.(2).Types.time)

(* --- Cascade --- *)

let line_influence n =
  (* influence edges 0 -> 1 -> 2 ... : follower chains *)
  Osn_graph.Generators.line n

let test_cascade_initiator_always_votes () =
  let rng = Rng.create 1 in
  let params = { Cascade.default with front_page_rate = 0. } in
  let s =
    Cascade.simulate rng ~influence:(line_influence 5)
      ~affinity:(fun _ -> 0.) ~params ~initiator:2 ~story_id:0 ~topic:1 ()
  in
  Alcotest.(check int) "only initiator" 1 (Types.story_vote_count s);
  Alcotest.(check int) "initiator id" 2 s.Types.votes.(0).Types.user;
  checkf 1e-12 "at time zero" 0. s.Types.votes.(0).Types.time;
  Alcotest.(check int) "topic preserved" 1 s.Types.topic;
  Types.check_story s

let test_cascade_follower_chain () =
  (* p_follow = affinity = 1 on a line: the cascade must sweep the whole
     chain (duration permitting) *)
  let rng = Rng.create 2 in
  let params =
    {
      Cascade.default with
      p_follow = 1.;
      follow_delay_mean = 0.01;
      front_page_rate = 0.;
      promote_threshold = max_int;
    }
  in
  let s =
    Cascade.simulate rng ~influence:(line_influence 20)
      ~affinity:(fun _ -> 1.) ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  Alcotest.(check int) "everyone votes" 20 (Types.story_vote_count s);
  Types.check_story s

let test_cascade_zero_affinity_blocks () =
  let rng = Rng.create 3 in
  let params =
    { Cascade.default with p_follow = 1.; promote_threshold = max_int }
  in
  let s =
    Cascade.simulate rng ~influence:(line_influence 10)
      ~affinity:(fun u -> if u = 1 then 0. else 1.)
      ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  (* user 1 never votes, and the chain cannot route around it *)
  Alcotest.(check int) "blocked" 1 (Types.story_vote_count s)

let test_cascade_front_page_reaches_disconnected () =
  let rng = Rng.create 4 in
  let isolated = Osn_graph.Digraph.create 50 in
  let params =
    {
      Cascade.default with
      promote_threshold = 1;
      front_page_rate = 30.;
      front_page_decay = 0.3;
      duration = 20.;
    }
  in
  let s =
    Cascade.simulate rng ~influence:isolated
      ~affinity:(fun _ -> 1.) ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  Alcotest.(check bool) "front page recruits non-friends" true
    (Types.story_vote_count s > 10);
  Types.check_story s

let test_cascade_max_votes_cap () =
  let rng = Rng.create 5 in
  let params =
    {
      Cascade.default with
      promote_threshold = 1;
      front_page_rate = 1000.;
      max_votes = 7;
      duration = 50.;
    }
  in
  let s =
    Cascade.simulate rng ~influence:(Osn_graph.Digraph.create 100)
      ~affinity:(fun _ -> 1.) ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  Alcotest.(check int) "capped" 7 (Types.story_vote_count s)

let test_cascade_votes_sorted_and_unique () =
  let rng = Rng.create 6 in
  let g = Osn_graph.Generators.barabasi_albert (Rng.create 7) ~n:300 ~m:3 () in
  let params =
    { Cascade.default with promote_threshold = 5; front_page_rate = 20. }
  in
  let s =
    Cascade.simulate rng ~influence:(Osn_graph.Digraph.reverse g)
      ~affinity:(fun _ -> 0.5) ~params ~initiator:0 ~story_id:9 ~topic:2 ()
  in
  Types.check_story s;
  Alcotest.(check bool) "has spread" true (Types.story_vote_count s > 5)

let test_cascade_deterministic () =
  let run seed =
    let rng = Rng.create seed in
    let g = Osn_graph.Generators.barabasi_albert (Rng.create 7) ~n:200 ~m:3 () in
    let params =
      { Cascade.default with promote_threshold = 3; front_page_rate = 10. }
    in
    Cascade.simulate rng ~influence:(Osn_graph.Digraph.reverse g)
      ~affinity:(fun _ -> 0.5) ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  Alcotest.(check bool) "same seed same cascade" true (run 42 = run 42);
  Alcotest.(check bool) "different seed differs" true (run 42 <> run 43)

let test_cascade_burst_front_loads () =
  let rng = Rng.create 8 in
  let make burst =
    let params =
      {
        Cascade.default with
        promote_threshold = 1;
        front_page_rate = 200.;
        front_page_decay = 0.05;
        front_page_burst = burst;
        duration = 50.;
      }
    in
    Cascade.simulate rng ~influence:(Osn_graph.Digraph.create 20000)
      ~affinity:(fun _ -> 1.) ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  let early s =
    float_of_int (Array.length (Types.votes_before s 1.))
    /. float_of_int (Types.story_vote_count s)
  in
  let no_burst = early (make 0.) and with_burst = early (make 0.5) in
  Alcotest.(check bool) "burst increases first-hour share" true
    (with_burst > 2. *. no_burst)

(* --- Distance --- *)

let test_friendship_hops () =
  let ds = sample_dataset () in
  let s = Dataset.story ds 0 in
  (* initiator 0; influence: 0->1, 0->2, 1->3, 2->4 *)
  let hops = Distance.friendship_hops ds ~story:s in
  Alcotest.(check (array int)) "hops" [| -1; 1; 1; 2; 2 |] hops

let test_shared_interest_values () =
  let ds = sample_dataset () in
  (* C0 = {0, 1}, C2 = {1}; jaccard distance = 1 - 1/2 *)
  checkf 1e-12 "half overlap" 0.5 (Distance.shared_interest ds ~exclude:(-1) 0 2);
  (* identical singleton sets *)
  checkf 1e-12 "same set" 0.
    (Distance.shared_interest ds ~exclude:(-1) 2 2);
  (* no votes vs no votes *)
  checkf 1e-12 "both empty" 1. (Distance.shared_interest ds ~exclude:(-1) 4 4);
  (* exclusion removes story 1 from both sides: C0\{1} = {0}, C2\{1} = {} *)
  checkf 1e-12 "after exclusion" 1. (Distance.shared_interest ds ~exclude:1 0 2)

let test_shared_interest_symmetry () =
  let ds = sample_dataset () in
  for a = 0 to 4 do
    for b = 0 to 4 do
      checkf 1e-12 "symmetric"
        (Distance.shared_interest ds ~exclude:(-1) a b)
        (Distance.shared_interest ds ~exclude:(-1) b a)
    done
  done

let test_interest_groups_basics () =
  let ds = sample_dataset () in
  let s = Dataset.story ds 0 in
  let groups = Distance.interest_groups ~n_groups:3 ds ~story:s in
  Alcotest.(check int) "initiator excluded" (-1) groups.(0);
  (* user 4 has no history at all -> excluded *)
  Alcotest.(check int) "empty history excluded" (-1) groups.(4);
  (* users 1 and 3 voted only the story under study: once it is
     excluded their histories are empty too *)
  Alcotest.(check int) "story-only history excluded" (-1) groups.(1);
  Alcotest.(check int) "story-only history excluded" (-1) groups.(3);
  (* user 2 voted story 1 as well, so it gets a group label *)
  Alcotest.(check bool) "measurable user in range" true
    (groups.(2) >= 1 && groups.(2) <= 3)

(* --- Density --- *)

let test_density_observe () =
  let assignment = [| -1; 1; 1; 2; 2 |] in
  let s = story_of 0 0 [ vote 0 0.; vote 1 0.5; vote 3 2.5 ] in
  let obs =
    Density.observe s ~assignment ~max_distance:2 ~times:[| 1.; 3. |]
  in
  Alcotest.(check (array int)) "populations" [| 2; 2 |] obs.Density.population;
  (* distance 1: user 1 voted at 0.5 -> 50% at both times *)
  checkf 1e-9 "d1 t1" 50. (Density.at obs ~distance:1 ~time:1.);
  checkf 1e-9 "d1 t3" 50. (Density.at obs ~distance:1 ~time:3.);
  (* distance 2: user 3 voted at 2.5 -> 0 then 50 *)
  checkf 1e-9 "d2 t1" 0. (Density.at obs ~distance:2 ~time:1.);
  checkf 1e-9 "d2 t3" 50. (Density.at obs ~distance:2 ~time:3.)

let test_density_monotone_in_time () =
  let assignment = [| -1; 1; 1; 1; 1 |] in
  let s = story_of 0 0 [ vote 0 0.; vote 1 1.; vote 2 2.; vote 3 3. ] in
  let obs =
    Density.observe s ~assignment ~max_distance:1
      ~times:(Array.init 5 (fun i -> float_of_int i +. 0.5))
  in
  let series = Density.series_at_distance obs ~distance:1 in
  for i = 1 to Array.length series - 1 do
    Alcotest.(check bool) "non-decreasing" true (series.(i) >= series.(i - 1))
  done

let test_density_empty_group () =
  let assignment = [| 1; 1; -1; -1; -1 |] in
  let s = story_of 0 0 [ vote 0 0. ] in
  let obs = Density.observe s ~assignment ~max_distance:3 ~times:[| 1. |] in
  checkf 1e-9 "empty group density 0" 0. (Density.at obs ~distance:3 ~time:1.)

let test_density_distribution () =
  let assignment = [| -1; 1; 2; 2; 3 |] in
  let dist = Density.distance_distribution ~assignment ~max_distance:3 in
  let total = Array.fold_left (fun acc (_, f) -> acc +. f) 0. dist in
  checkf 1e-9 "fractions sum to 1" 1. total;
  let _, f2 = dist.(1) in
  checkf 1e-9 "distance 2 fraction" 0.5 f2

let test_density_profile_and_errors () =
  let assignment = [| -1; 1; 2; 2; 1 |] in
  let s = story_of 0 0 [ vote 0 0.; vote 1 0.5 ] in
  let obs = Density.observe s ~assignment ~max_distance:2 ~times:[| 1.; 2. |] in
  let profile = Density.profile_at_time obs ~time:1. in
  Alcotest.(check int) "profile length" 2 (Array.length profile);
  (try
     ignore (Density.at obs ~distance:9 ~time:1.);
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  try
    ignore (Density.at obs ~distance:1 ~time:9.);
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

(* --- Digg corpus (small scale) --- *)

let corpus = lazy (Digg.build ~scale:Digg.small ~seed:5 ())

let test_digg_shape () =
  let c = Lazy.force corpus in
  let ds = c.Digg.dataset in
  Alcotest.(check int) "users" 2000 (Dataset.n_users ds);
  Alcotest.(check int) "stories" 84 (Dataset.n_stories ds);
  Alcotest.(check int) "four rep stories" 4 (Array.length c.Digg.rep_ids);
  Alcotest.(check bool) "votes exist" true (Dataset.total_votes ds > 1000)

let test_digg_rep_ordering () =
  let c = Lazy.force corpus in
  let ds = c.Digg.dataset in
  let counts =
    Array.map
      (fun id -> Types.story_vote_count (Dataset.story ds id))
      c.Digg.rep_ids
  in
  (* s1 is the biggest story; s4 the smallest of the four *)
  Alcotest.(check bool) "s1 > s2" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "s2 > s4" true (counts.(1) > counts.(3))

let test_digg_determinism () =
  let a = Digg.build ~scale:Digg.small ~seed:77 () in
  let b = Digg.build ~scale:Digg.small ~seed:77 () in
  Alcotest.(check int) "same votes" (Dataset.total_votes a.Digg.dataset)
    (Dataset.total_votes b.Digg.dataset);
  let sa = Dataset.story a.Digg.dataset a.Digg.rep_ids.(0) in
  let sb = Dataset.story b.Digg.dataset b.Digg.rep_ids.(0) in
  Alcotest.(check bool) "same rep story" true (sa = sb)

let test_digg_affinity_range () =
  let c = Lazy.force corpus in
  for u = 0 to 199 do
    for topic = 0 to c.Digg.n_topics - 1 do
      let a = Digg.affinity c ~topic u in
      Alcotest.(check bool) "affinity in [0,1]" true (a >= 0. && a <= 1.)
    done
  done

let test_digg_hop_distribution_peaks_in_middle () =
  let c = Lazy.force corpus in
  let ds = c.Digg.dataset in
  let s1 = Dataset.story ds c.Digg.rep_ids.(0) in
  let hops = Distance.friendship_hops ds ~story:s1 in
  let dist = Density.distance_distribution ~assignment:hops ~max_distance:10 in
  (* paper Fig 2: the mass concentrates at hops 2-5, not at hop 1 *)
  let frac d = snd dist.(d - 1) in
  let middle = frac 2 +. frac 3 +. frac 4 +. frac 5 in
  Alcotest.(check bool) "middle hops dominate" true (middle > 0.8);
  Alcotest.(check bool) "hop 1 is small" true (frac 1 < 0.2)

let suite =
  [
    Alcotest.test_case "vote count/voters" `Quick test_vote_count_and_voters;
    Alcotest.test_case "votes_before" `Quick test_votes_before;
    Alcotest.test_case "check_story ok" `Quick test_check_story_valid;
    Alcotest.test_case "check_story bad" `Quick test_check_story_invalid;
    Alcotest.test_case "event queue order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue peek" `Quick test_event_queue_peek;
    Alcotest.test_case "event queue random" `Quick test_event_queue_random_order;
    Alcotest.test_case "dataset basics" `Quick test_dataset_basics;
    Alcotest.test_case "influence orientation" `Quick test_dataset_influence_orientation;
    Alcotest.test_case "vote index" `Quick test_dataset_vote_index;
    Alcotest.test_case "rejects bad voter" `Quick test_dataset_rejects_bad_voter;
    Alcotest.test_case "tsv round-trip" `Quick test_dataset_tsv_roundtrip;
    Alcotest.test_case "cascade initiator" `Quick test_cascade_initiator_always_votes;
    Alcotest.test_case "cascade chain" `Quick test_cascade_follower_chain;
    Alcotest.test_case "cascade blocked" `Quick test_cascade_zero_affinity_blocks;
    Alcotest.test_case "cascade front page" `Quick test_cascade_front_page_reaches_disconnected;
    Alcotest.test_case "cascade cap" `Quick test_cascade_max_votes_cap;
    Alcotest.test_case "cascade invariants" `Quick test_cascade_votes_sorted_and_unique;
    Alcotest.test_case "cascade determinism" `Quick test_cascade_deterministic;
    Alcotest.test_case "cascade burst" `Quick test_cascade_burst_front_loads;
    Alcotest.test_case "friendship hops" `Quick test_friendship_hops;
    Alcotest.test_case "shared interest" `Quick test_shared_interest_values;
    Alcotest.test_case "interest symmetry" `Quick test_shared_interest_symmetry;
    Alcotest.test_case "interest groups" `Quick test_interest_groups_basics;
    Alcotest.test_case "density observe" `Quick test_density_observe;
    Alcotest.test_case "density monotone" `Quick test_density_monotone_in_time;
    Alcotest.test_case "density empty group" `Quick test_density_empty_group;
    Alcotest.test_case "distance distribution" `Quick test_density_distribution;
    Alcotest.test_case "profile and errors" `Quick test_density_profile_and_errors;
    Alcotest.test_case "digg shape" `Slow test_digg_shape;
    Alcotest.test_case "digg rep ordering" `Slow test_digg_rep_ordering;
    Alcotest.test_case "digg determinism" `Slow test_digg_determinism;
    Alcotest.test_case "digg affinity range" `Slow test_digg_affinity_range;
    Alcotest.test_case "digg hop distribution" `Slow test_digg_hop_distribution_peaks_in_middle;
  ]
