(* Tests for Numerics.Stats_tests: KS tests, chi-square, bootstrap. *)

open Numerics

let checkf tol = Alcotest.(check (float tol))

let uniform_sample rng n = Array.init n (fun _ -> Rng.float rng)

let test_ks_same_distribution_high_p () =
  let rng = Rng.create 1 in
  let xs = uniform_sample rng 400 and ys = uniform_sample rng 400 in
  let d, p = Stats_tests.ks_two_sample xs ys in
  Alcotest.(check bool) "small statistic" true (d < 0.12);
  Alcotest.(check bool) "p not significant" true (p > 0.05)

let test_ks_different_distributions_low_p () =
  let rng = Rng.create 2 in
  let xs = uniform_sample rng 400 in
  let ys = Array.init 400 (fun _ -> Rng.float rng ** 3.) in
  let d, p = Stats_tests.ks_two_sample xs ys in
  Alcotest.(check bool) "large statistic" true (d > 0.2);
  Alcotest.(check bool) "significant" true (p < 0.001)

let test_ks_identical_samples () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let d, p = Stats_tests.ks_two_sample xs xs in
  checkf 1e-12 "zero distance" 0. d;
  Alcotest.(check bool) "p = 1" true (p > 0.999)

let test_ks_one_sample_against_true_cdf () =
  let rng = Rng.create 3 in
  let xs = uniform_sample rng 500 in
  let d = Stats_tests.ks_statistic xs ~cdf:(fun x -> Float.max 0. (Float.min 1. x)) in
  (* expected magnitude ~ 1/sqrt(n) *)
  Alcotest.(check bool) "consistent with uniform" true (d < 0.08)

let test_ks_one_sample_against_wrong_cdf () =
  let rng = Rng.create 4 in
  let xs = uniform_sample rng 500 in
  let d = Stats_tests.ks_statistic xs ~cdf:(fun x -> Float.max 0. (Float.min 1. (x ** 3.))) in
  Alcotest.(check bool) "detects mismatch" true (d > 0.3)

let test_chi_square_perfect_fit () =
  checkf 1e-12 "zero statistic" 0.
    (Stats_tests.chi_square_statistic ~observed:[| 10; 20; 30 |]
       ~expected:[| 10.; 20.; 30. |])

let test_chi_square_known_value () =
  (* ((12-10)^2/10) + ((8-10)^2/10) = 0.8 *)
  checkf 1e-12 "hand computed" 0.8
    (Stats_tests.chi_square_statistic ~observed:[| 12; 8 |]
       ~expected:[| 10.; 10. |])

let test_chi_square_rejects_bad_expected () =
  try
    ignore
      (Stats_tests.chi_square_statistic ~observed:[| 1 |] ~expected:[| 0. |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_bootstrap_mean_ci_covers_truth () =
  let rng = Rng.create 5 in
  let sample = Array.init 200 (fun _ -> Rng.normal rng ~mu:7. ~sigma:2. ()) in
  let lo, hi = Stats_tests.bootstrap_mean_ci rng sample in
  Alcotest.(check bool) "covers true mean" true (lo < 7.2 && hi > 6.8);
  Alcotest.(check bool) "nontrivial width" true (hi -. lo > 0.1 && hi -. lo < 2.)

let test_bootstrap_ci_ordering_and_width () =
  let rng = Rng.create 6 in
  let sample = Array.init 100 (fun i -> float_of_int i) in
  let lo50, hi50 = Stats_tests.bootstrap_ci ~confidence:0.5 rng sample Stats.mean in
  let lo99, hi99 = Stats_tests.bootstrap_ci ~confidence:0.99 rng sample Stats.mean in
  Alcotest.(check bool) "lo <= hi" true (lo50 <= hi50 && lo99 <= hi99);
  Alcotest.(check bool) "wider at higher confidence" true
    (hi99 -. lo99 > hi50 -. lo50)

let test_bootstrap_custom_statistic () =
  let rng = Rng.create 7 in
  let sample = Array.init 200 (fun _ -> Rng.exponential rng 1.) in
  let lo, hi = Stats_tests.bootstrap_ci rng sample Stats.median in
  (* true median of Exp(1) = ln 2 *)
  Alcotest.(check bool) "covers ln 2" true (lo < log 2. && hi > log 2. *. 0.8)

let prop_ks_statistic_bounds =
  QCheck.Test.make ~count:100 ~name:"KS statistic lies in [0, 1]"
    QCheck.(pair (int_range 1 50) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let xs = Array.init n (fun _ -> Rng.normal rng ()) in
      let ys = Array.init (1 + Rng.int rng 50) (fun _ -> Rng.normal rng ()) in
      let d, p = Stats_tests.ks_two_sample xs ys in
      d >= 0. && d <= 1. && p >= 0. && p <= 1.)

let suite =
  [
    Alcotest.test_case "ks same dist" `Quick test_ks_same_distribution_high_p;
    Alcotest.test_case "ks different dist" `Quick test_ks_different_distributions_low_p;
    Alcotest.test_case "ks identical" `Quick test_ks_identical_samples;
    Alcotest.test_case "ks one-sample good" `Quick test_ks_one_sample_against_true_cdf;
    Alcotest.test_case "ks one-sample bad" `Quick test_ks_one_sample_against_wrong_cdf;
    Alcotest.test_case "chi2 perfect" `Quick test_chi_square_perfect_fit;
    Alcotest.test_case "chi2 known" `Quick test_chi_square_known_value;
    Alcotest.test_case "chi2 bad expected" `Quick test_chi_square_rejects_bad_expected;
    Alcotest.test_case "bootstrap mean CI" `Quick test_bootstrap_mean_ci_covers_truth;
    Alcotest.test_case "bootstrap widths" `Quick test_bootstrap_ci_ordering_and_width;
    Alcotest.test_case "bootstrap median" `Quick test_bootstrap_custom_statistic;
    QCheck_alcotest.to_alcotest prop_ks_statistic_bounds;
  ]
