(* Tests for Numerics.Ode, Numerics.Quadrature and Numerics.Pde —
   integrators against closed forms, and the reaction-diffusion solver
   against the invariants the paper's theory requires (bounds,
   monotonicity, mass conservation, Neumann no-flux). *)

open Numerics

let checkf tol = Alcotest.(check (float tol))

(* --- Quadrature --- *)

let test_trapezoid_polynomial () =
  (* trapezoid is exact on affine functions *)
  let f x = (3. *. x) +. 2. in
  (* integral of 3x + 2 over [0,1] is 3/2 + 2 *)
  checkf 1e-12 "affine exact" 3.5 (Quadrature.trapezoid f ~a:0. ~b:1. ~n:7)

let test_simpson_cubic_exact () =
  (* Simpson is exact on cubics *)
  let f x = (x ** 3.) -. (2. *. x) +. 1. in
  let exact = (1. /. 4.) -. 1. +. 1. in
  checkf 1e-12 "cubic exact" exact (Quadrature.simpson f ~a:0. ~b:1. ~n:4)

let test_simpson_sin () =
  checkf 1e-6 "sin over [0,pi]" 2.
    (Quadrature.simpson sin ~a:0. ~b:Float.pi ~n:100)

let test_adaptive_simpson () =
  checkf 1e-8 "exp over [0,1]" (exp 1. -. 1.)
    (Quadrature.adaptive_simpson exp ~a:0. ~b:1.);
  checkf 1e-8 "peaked integrand" (atan 50. *. 2.)
    (Quadrature.adaptive_simpson
       (fun x -> 50. /. (1. +. (2500. *. x *. x)))
       ~a:(-1.) ~b:1.)

let test_trapezoid_sampled () =
  let xs = [| 0.; 1.; 3. |] and ys = [| 0.; 2.; 2. |] in
  checkf 1e-12 "piecewise" 5. (Quadrature.trapezoid_sampled ~xs ~ys)

let test_cumulative_trapezoid () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 1.; 1.; 3. |] in
  let c = Quadrature.cumulative_trapezoid ~xs ~ys in
  checkf 1e-12 "zero start" 0. c.(0);
  checkf 1e-12 "first" 1. c.(1);
  checkf 1e-12 "second" 3. c.(2)

(* --- Ode --- *)

let test_rk4_exponential () =
  (* y' = y, y(0) = 1 -> e^t *)
  let rhs = Ode.scalar_rhs (fun ~t:_ ~y -> y) in
  let out = Ode.integrate rhs ~y0:[| 1. |] ~t0:0. ~times:[| 1.; 2. |] in
  let _, y1 = out.(0) and _, y2 = out.(1) in
  checkf 1e-5 "e^1" (exp 1.) y1.(0);
  checkf 1e-4 "e^2" (exp 2.) y2.(0)

let test_euler_first_order () =
  (* Euler converges with order 1: halving dt halves the error. *)
  let rhs = Ode.scalar_rhs (fun ~t:_ ~y -> y) in
  let run times =
    let out = Ode.integrate ~step:`Euler rhs ~y0:[| 1. |] ~t0:0. ~times in
    let _, y = out.(Array.length out - 1) in
    Float.abs (y.(0) -. exp 1.)
  in
  let coarse = run [| 1. |] in
  Alcotest.(check bool) "euler reasonably accurate" true (coarse < 0.05)

let test_rk4_system () =
  (* Harmonic oscillator: x'' = -x as a 2-system; energy preserved well *)
  let rhs ~t:_ ~(y : Vec.t) = [| y.(1); -.y.(0) |] in
  let out = Ode.integrate rhs ~y0:[| 1.; 0. |] ~t0:0. ~times:[| Float.pi *. 2. |] in
  let _, y = out.(0) in
  checkf 1e-4 "x after full period" 1. y.(0);
  checkf 1e-4 "v after full period" 0. y.(1)

let test_rkf45_matches_closed_form () =
  let rhs = Ode.scalar_rhs (fun ~t:_ ~y -> 0.8 *. y *. (1. -. (y /. 10.))) in
  let y = Ode.rkf45 rhs ~y0:[| 0.5 |] ~t0:0. ~t1:5. in
  checkf 1e-6 "rkf45 logistic" (Ode.logistic ~r:0.8 ~k:10. ~n0:0.5 5.) y.(0)

let test_logistic_properties () =
  let k = 25. and r = 0.9 and n0 = 2. in
  checkf 1e-12 "initial value" n0 (Ode.logistic ~r ~k ~n0 0.);
  checkf 1e-6 "saturates at K" k (Ode.logistic ~r ~k ~n0 50.);
  checkf 1e-12 "zero stays zero" 0. (Ode.logistic ~r ~k ~n0:0. 10.);
  (* monotone increasing from below K *)
  let prev = ref n0 in
  for i = 1 to 20 do
    let t = float_of_int i /. 2. in
    let v = Ode.logistic ~r ~k ~n0 t in
    Alcotest.(check bool) "increasing" true (v >= !prev);
    prev := v
  done

let test_logistic_varying_r_reduces_to_constant () =
  let k = 10. and n0 = 1. in
  let v1 = Ode.logistic ~r:0.5 ~k ~n0 3. in
  let v2 = Ode.logistic_varying_r ~r_integral:(fun t -> 0.5 *. t) ~k ~n0 3. in
  checkf 1e-12 "constant-r consistency" v1 v2

let test_logistic_varying_r_vs_rk4 () =
  (* r(t) = the paper's Fig 6 rate; closed form must match RK4. *)
  let r t = (1.4 *. exp (-1.5 *. (t -. 1.))) +. 0.25 in
  let k = 25. in
  let rhs = Ode.scalar_rhs (fun ~t ~y -> r t *. y *. (1. -. (y /. k))) in
  let out = Ode.integrate rhs ~y0:[| 2. |] ~t0:1. ~times:[| 6. |] in
  let _, y = out.(0) in
  let r_integral t = Quadrature.simpson r ~a:1. ~b:t ~n:200 in
  let closed = Ode.logistic_varying_r ~r_integral ~k ~n0:2. 6. in
  checkf 1e-4 "closed form vs RK4" closed y.(0)

(* --- Pde --- *)

let gaussian_problem d nx =
  {
    Pde.xl = 0.;
    xr = 10.;
    nx;
    diffusion = (fun _ -> d);
    reaction = Pde.Custom (fun ~x:_ ~t:_ ~u:_ -> 0.);
    initial = (fun x -> exp (-.((x -. 5.) ** 2.)));
    t0 = 0.;
  }

let test_pure_diffusion_mass_conserved () =
  List.iter
    (fun scheme ->
      let sol =
        Pde.solve ~scheme ~dt:1e-3 (gaussian_problem 0.5 101)
          ~times:[| 0.5; 1.; 2. |]
      in
      let m0 = Pde.mass sol ~it:0 in
      for it = 1 to Array.length sol.Pde.ts - 1 do
        checkf 1e-6 "mass conserved" m0 (Pde.mass sol ~it)
      done)
    [ Pde.Ftcs; Pde.Imex 0.5; Pde.Imex 1. ]

let test_pure_diffusion_flattens () =
  let sol = Pde.solve ~dt:1e-3 (gaussian_problem 0.5 101) ~times:[| 5.; 50. |] in
  let spread u = Vec.max u -. Vec.min u in
  let s0 = spread sol.Pde.values.(0) in
  let s1 = spread sol.Pde.values.(1) in
  let s2 = spread sol.Pde.values.(2) in
  Alcotest.(check bool) "spread decreases" true (s1 < s0 && s2 < s1);
  (* long-time limit: uniform at the mean *)
  let final = sol.Pde.values.(2) in
  let mean_val = Vec.mean final in
  Alcotest.(check bool) "near uniform" true (spread final < 0.05 *. mean_val +. 1e-3)

let test_heat_equation_decay_rate () =
  (* With Neumann BCs on [0, L], the mode cos(pi x / L) decays at rate
     d (pi/L)^2 — a quantitative accuracy check, not just an invariant. *)
  let l = 2. and d = 0.3 in
  let p =
    {
      Pde.xl = 0.;
      xr = l;
      nx = 201;
      diffusion = (fun _ -> d);
      reaction = Pde.Custom (fun ~x:_ ~t:_ ~u:_ -> 0.);
      initial = (fun x -> 1. +. (0.5 *. cos (Float.pi *. x /. l)));
      t0 = 0.;
    }
  in
  let t_final = 1.0 in
  let sol = Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:5e-4 p ~times:[| t_final |] in
  let lambda = d *. ((Float.pi /. l) ** 2.) in
  let expected x =
    1. +. (0.5 *. exp (-.lambda *. t_final) *. cos (Float.pi *. x /. l))
  in
  Array.iteri
    (fun i x -> checkf 1e-3 "mode decay" (expected x) sol.Pde.values.(1).(i))
    sol.Pde.xs

let test_reaction_only_logistic () =
  (* d = 0: every grid point follows the scalar logistic. *)
  let r0 = 0.9 and k = 25. in
  let p =
    {
      Pde.xl = 1.;
      xr = 5.;
      nx = 41;
      diffusion = (fun _ -> 0.);
      reaction = Pde.Custom (fun ~x:_ ~t:_ ~u -> r0 *. u *. (1. -. (u /. k)));
      initial = (fun x -> 1. +. (0.1 *. x));
      t0 = 0.;
    }
  in
  List.iter
    (fun scheme ->
      let sol = Pde.solve ~scheme ~dt:1e-3 p ~times:[| 2. |] in
      Array.iteri
        (fun i x ->
          let n0 = 1. +. (0.1 *. x) in
          checkf 1e-3 "pointwise logistic"
            (Ode.logistic ~r:r0 ~k ~n0 2.)
            sol.Pde.values.(1).(i))
        sol.Pde.xs)
    [ Pde.Ftcs; Pde.Imex 0.5;
      Pde.Strang (Pde.logistic_reaction_step ~r:(fun _ -> r0) ~k) ]

let test_schemes_agree () =
  (* Full DL-type problem: all three schemes converge to the same
     solution. *)
  let r t = (1.4 *. exp (-1.5 *. (t -. 1.))) +. 0.25 in
  let k = 25. in
  let p =
    {
      Pde.xl = 1.;
      xr = 6.;
      nx = 51;
      diffusion = (fun _ -> 0.05);
      reaction = Pde.Custom (fun ~x:_ ~t ~u -> r t *. u *. (1. -. (u /. k)));
      initial = (fun x -> 8. *. exp (-0.5 *. (x -. 1.)));
      t0 = 1.;
    }
  in
  let times = [| 3.; 6. |] in
  let ftcs = Pde.solve ~scheme:Pde.Ftcs ~dt:2e-4 p ~times in
  let imex = Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:2e-4 p ~times in
  let strang =
    Pde.solve
      ~scheme:(Pde.Strang (Pde.logistic_reaction_step ~r ~k))
      ~dt:2e-4 p ~times
  in
  for it = 1 to 2 do
    for ix = 0 to 50 do
      checkf 5e-3 "ftcs vs imex" ftcs.Pde.values.(it).(ix) imex.Pde.values.(it).(ix);
      checkf 5e-3 "imex vs strang" imex.Pde.values.(it).(ix)
        strang.Pde.values.(it).(ix)
    done
  done

let test_dl_bounds_invariant () =
  (* Unique Property (paper, Sec II.C): 0 <= I <= K for initial data in
     [0, K]. *)
  let k = 25. in
  let p =
    {
      Pde.xl = 1.;
      xr = 6.;
      nx = 51;
      diffusion = (fun _ -> 0.01);
      reaction = Pde.Custom (fun ~x:_ ~t:_ ~u -> 0.9 *. u *. (1. -. (u /. k)));
      initial = (fun x -> 12. *. exp (-0.8 *. (x -. 1.)) +. 0.5);
      t0 = 1.;
    }
  in
  let sol = Pde.solve ~dt:1e-3 p ~times:(Array.init 10 (fun i -> 2. +. float_of_int i)) in
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "0 <= I <= K" true (v >= -1e-9 && v <= k +. 1e-9))
        row)
    sol.Pde.values

let test_dl_monotone_in_time () =
  (* Strictly Increasing Property: with phi a lower solution (ample K,
     small d), the solution increases in t at every x. *)
  let k = 25. in
  let r t = (1.4 *. exp (-1.5 *. (t -. 1.))) +. 0.25 in
  let p =
    {
      Pde.xl = 1.;
      xr = 6.;
      nx = 51;
      diffusion = (fun _ -> 0.01);
      reaction = Pde.Custom (fun ~x:_ ~t ~u -> r t *. u *. (1. -. (u /. k)));
      initial = (fun x -> (6. *. exp (-1.2 *. (x -. 1.))) +. 0.3);
      t0 = 1.;
    }
  in
  let sol = Pde.solve ~dt:1e-3 p ~times:(Array.init 8 (fun i -> float_of_int (i + 2))) in
  let nt = Array.length sol.Pde.ts in
  for it = 1 to nt - 1 do
    for ix = 0 to 50 do
      Alcotest.(check bool) "monotone in t" true
        (sol.Pde.values.(it).(ix) >= sol.Pde.values.(it - 1).(ix) -. 1e-9)
    done
  done

let test_cfl_limit () =
  let p = gaussian_problem 0.5 101 in
  let h = 10. /. 100. in
  checkf 1e-12 "cfl formula" (h *. h /. (2. *. 0.5)) (Pde.cfl_limit p);
  Alcotest.(check bool) "no diffusion -> infinite cfl" true
    (Float.is_integer
       (if Float.is_finite (Pde.cfl_limit (gaussian_problem 0. 11)) then 0. else 1.)
     && not (Float.is_finite (Pde.cfl_limit (gaussian_problem 0. 11))))

let test_eval_and_snapshot () =
  let sol = Pde.solve ~dt:1e-3 (gaussian_problem 0.1 41) ~times:[| 1. |] in
  let v = Pde.eval sol ~x:5. ~t:0. in
  checkf 1e-9 "eval at grid node" 1. v;
  let snap = Pde.snapshot sol ~t:0.9 in
  Alcotest.(check int) "snapshot length" 41 (Array.length snap);
  Alcotest.(check bool) "snapshot picks nearest time" true
    (Vec.approx_equal snap sol.Pde.values.(1))

let test_variable_diffusion_mass () =
  (* Variable d(x) (the paper's future-work case) still conserves mass
     under no-flux boundaries. *)
  let p =
    {
      Pde.xl = 0.;
      xr = 4.;
      nx = 81;
      diffusion = (fun x -> 0.05 +. (0.2 *. x /. 4.));
      reaction = Pde.Custom (fun ~x:_ ~t:_ ~u:_ -> 0.);
      initial = (fun x -> exp (-.((x -. 2.) ** 2.) *. 4.));
      t0 = 0.;
    }
  in
  let sol = Pde.solve ~scheme:(Pde.Imex 0.5) ~dt:1e-3 p ~times:[| 1.; 3. |] in
  let m0 = Pde.mass sol ~it:0 in
  checkf 1e-6 "mass t=1" m0 (Pde.mass sol ~it:1);
  checkf 1e-6 "mass t=3" m0 (Pde.mass sol ~it:2)

let test_invalid_theta_rejected () =
  (try
     ignore (Pde.solve ~scheme:(Pde.Imex 0.2) (gaussian_problem 0.1 11) ~times:[| 1. |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let suite =
  [
    Alcotest.test_case "trapezoid affine" `Quick test_trapezoid_polynomial;
    Alcotest.test_case "simpson cubic" `Quick test_simpson_cubic_exact;
    Alcotest.test_case "simpson sin" `Quick test_simpson_sin;
    Alcotest.test_case "adaptive simpson" `Quick test_adaptive_simpson;
    Alcotest.test_case "trapezoid sampled" `Quick test_trapezoid_sampled;
    Alcotest.test_case "cumulative trapezoid" `Quick test_cumulative_trapezoid;
    Alcotest.test_case "rk4 exponential" `Quick test_rk4_exponential;
    Alcotest.test_case "euler accuracy" `Quick test_euler_first_order;
    Alcotest.test_case "rk4 oscillator" `Quick test_rk4_system;
    Alcotest.test_case "rkf45 logistic" `Quick test_rkf45_matches_closed_form;
    Alcotest.test_case "logistic properties" `Quick test_logistic_properties;
    Alcotest.test_case "varying-r reduces" `Quick test_logistic_varying_r_reduces_to_constant;
    Alcotest.test_case "varying-r vs rk4" `Quick test_logistic_varying_r_vs_rk4;
    Alcotest.test_case "diffusion mass" `Quick test_pure_diffusion_mass_conserved;
    Alcotest.test_case "diffusion flattens" `Quick test_pure_diffusion_flattens;
    Alcotest.test_case "heat decay rate" `Quick test_heat_equation_decay_rate;
    Alcotest.test_case "reaction-only logistic" `Quick test_reaction_only_logistic;
    Alcotest.test_case "schemes agree" `Slow test_schemes_agree;
    Alcotest.test_case "DL bounds invariant" `Quick test_dl_bounds_invariant;
    Alcotest.test_case "DL monotone in time" `Quick test_dl_monotone_in_time;
    Alcotest.test_case "cfl limit" `Quick test_cfl_limit;
    Alcotest.test_case "eval and snapshot" `Quick test_eval_and_snapshot;
    Alcotest.test_case "variable diffusion" `Quick test_variable_diffusion_mass;
    Alcotest.test_case "invalid theta" `Quick test_invalid_theta_rejected;
  ]
