(* Tests for Numerics.Pde2d (ADI reaction-diffusion) and the joint
   two-metric DL model. *)

open Numerics

let checkf tol = Alcotest.(check (float tol))

let gaussian2d_problem dx dy nx ny =
  {
    Pde2d.xl = 0.;
    xr = 4.;
    nx;
    yl = 0.;
    yr = 4.;
    ny;
    dx_coef = dx;
    dy_coef = dy;
    reaction = (fun ~x:_ ~y:_ ~t:_ ~u:_ -> 0.);
    initial =
      (fun x y -> exp (-.(((x -. 2.) ** 2.) +. ((y -. 2.) ** 2.)) *. 2.));
    t0 = 0.;
  }

let test_mass_conservation () =
  let sol =
    Pde2d.solve ~dt:0.01 (gaussian2d_problem 0.3 0.1 41 41)
      ~times:[| 0.5; 2. |]
  in
  let m0 = Pde2d.mass sol ~it:0 in
  checkf 1e-8 "mass t=0.5" m0 (Pde2d.mass sol ~it:1);
  checkf 1e-8 "mass t=2" m0 (Pde2d.mass sol ~it:2)

let test_flattens_to_uniform () =
  let sol =
    Pde2d.solve ~dt:0.02 (gaussian2d_problem 0.5 0.5 31 31) ~times:[| 30. |]
  in
  let final = sol.Pde2d.values.(1) in
  let flat = Array.concat (Array.to_list final) in
  let spread = Stats.max flat -. Stats.min flat in
  Alcotest.(check bool) "near uniform" true (spread < 0.02 *. Stats.mean flat +. 1e-6)

let test_product_mode_decay_rate () =
  (* u = 1 + a cos(pi x/Lx) cos(pi y/Ly) decays at rate
     dx (pi/Lx)^2 + dy (pi/Ly)^2 under Neumann BCs. *)
  let lx = 4. and ly = 4. and dx = 0.3 and dy = 0.15 and a = 0.5 in
  let p =
    {
      Pde2d.xl = 0.;
      xr = lx;
      nx = 81;
      yl = 0.;
      yr = ly;
      ny = 81;
      dx_coef = dx;
      dy_coef = dy;
      reaction = (fun ~x:_ ~y:_ ~t:_ ~u:_ -> 0.);
      initial =
        (fun x y ->
          1. +. (a *. cos (Float.pi *. x /. lx) *. cos (Float.pi *. y /. ly)));
      t0 = 0.;
    }
  in
  let t_final = 1.0 in
  let sol = Pde2d.solve ~dt:5e-3 p ~times:[| t_final |] in
  let lambda =
    (dx *. ((Float.pi /. lx) ** 2.)) +. (dy *. ((Float.pi /. ly) ** 2.))
  in
  let expected x y =
    1.
    +. (a *. exp (-.lambda *. t_final)
        *. cos (Float.pi *. x /. lx)
        *. cos (Float.pi *. y /. ly))
  in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          checkf 2e-3 "mode decay" (expected x y) sol.Pde2d.values.(1).(i).(j))
        sol.Pde2d.ys)
    sol.Pde2d.xs

let test_reaction_only_matches_logistic () =
  let r0 = 0.8 and k = 20. in
  let p =
    {
      Pde2d.xl = 1.;
      xr = 3.;
      nx = 5;
      yl = 1.;
      yr = 3.;
      ny = 5;
      dx_coef = 0.;
      dy_coef = 0.;
      reaction = (fun ~x:_ ~y:_ ~t:_ ~u -> r0 *. u *. (1. -. (u /. k)));
      initial = (fun x y -> 1. +. (0.2 *. x) +. (0.1 *. y));
      t0 = 1.;
    }
  in
  let sol = Pde2d.solve ~dt:0.01 p ~times:[| 4. |] in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          let n0 = 1. +. (0.2 *. x) +. (0.1 *. y) in
          checkf 2e-3 "pointwise logistic"
            (Ode.logistic ~r:r0 ~k ~n0 3.)
            sol.Pde2d.values.(1).(i).(j))
        sol.Pde2d.ys)
    sol.Pde2d.xs

let test_anisotropic_diffusion_direction () =
  (* dx >> dy: the profile must spread mostly along x *)
  let sol =
    Pde2d.solve ~dt:0.01 (gaussian2d_problem 0.5 0.0 41 41) ~times:[| 1. |]
  in
  (* with dy = 0, distinct y-rows never mix: the centre row keeps mass
     while an off-centre row's peak decays only via x-diffusion *)
  let v = sol.Pde2d.values.(1) in
  (* along x through the centre: spread out; along y through the centre:
     the initial Gaussian shape (no y-transport) *)
  let centre = 20 in
  let edge_x = v.(0).(centre) and edge_y = v.(centre).(0) in
  Alcotest.(check bool) "x boundary received mass" true (edge_x > 1e-4);
  Alcotest.(check bool) "y boundary did not" true (edge_y < edge_x /. 10.)

let test_bounds_under_logistic () =
  let k = 25. in
  let p =
    {
      Pde2d.xl = 1.;
      xr = 5.;
      nx = 17;
      yl = 1.;
      yr = 5.;
      ny = 17;
      dx_coef = 0.05;
      dy_coef = 0.02;
      reaction = (fun ~x:_ ~y:_ ~t:_ ~u -> 0.9 *. u *. (1. -. (u /. k)));
      initial = (fun x y -> 10. *. exp (-.((x -. 1.) +. (y -. 1.))) +. 0.2);
      t0 = 1.;
    }
  in
  let sol = Pde2d.solve ~dt:0.02 p ~times:[| 3.; 6.; 12. |] in
  Array.iter
    (fun grid ->
      Array.iter
        (Array.iter (fun v ->
             Alcotest.(check bool) "0 <= u <= K" true (v >= -1e-9 && v <= k +. 1e-6)))
        grid)
    sol.Pde2d.values

let test_value_at_interpolates () =
  let sol =
    Pde2d.solve ~dt:0.02 (gaussian2d_problem 0.1 0.1 21 21) ~times:[| 1. |]
  in
  checkf 1e-9 "grid node at t0" 1. (Pde2d.value_at sol ~x:2. ~y:2. ~t:0.);
  let v = Pde2d.value_at sol ~x:2.05 ~y:1.95 ~t:1. in
  Alcotest.(check bool) "interpolated value sane" true (v > 0. && v < 1.)

let test_invalid_inputs () =
  let expect_invalid f =
    try
      ignore (f ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () ->
      Pde2d.solve (gaussian2d_problem 0.1 0.1 2 10) ~times:[| 1. |]);
  expect_invalid (fun () ->
      Pde2d.solve (gaussian2d_problem (-0.1) 0.1 10 10) ~times:[| 1. |])

(* --- Joint model --- *)

let vote user time = { Socialnet.Types.user; time }

let joint_fixture () =
  (* 6 users, 2x2 label grid; initiator (user 0) excluded (-1) *)
  let hop_assignment = [| -1; 1; 1; 2; 2; 2 |] in
  let interest_assignment = [| -1; 1; 2; 1; 2; 2 |] in
  let story =
    {
      Socialnet.Types.id = 0;
      initiator = 0;
      topic = 0;
      votes = [| vote 0 0.; vote 1 0.5; vote 3 1.5; vote 4 2.5 |];
    }
  in
  Dl.Joint.observe story ~hop_assignment ~interest_assignment ~hop_max:2
    ~group_max:2 ~times:[| 1.; 2.; 3. |]

let test_joint_observe () =
  let obs = joint_fixture () in
  Alcotest.(check int) "pop (1,1)" 1 obs.Dl.Joint.population.(0).(0);
  Alcotest.(check int) "pop (2,2)" 2 obs.Dl.Joint.population.(1).(1);
  (* user 1 at (1,1) voted at 0.5: density 100 at all times *)
  checkf 1e-9 "cell (1,1) t=1" 100. obs.Dl.Joint.density.(0).(0).(0);
  (* user 3 at (2,1) voted at 1.5: 0 at t=1, 100 at t=2 *)
  checkf 1e-9 "cell (2,1) t=1" 0. obs.Dl.Joint.density.(0).(1).(0);
  checkf 1e-9 "cell (2,1) t=2" 100. obs.Dl.Joint.density.(1).(1).(0);
  (* user 4 at (2,2) voted at 2.5 of pop 2: 50 at t=3 *)
  checkf 1e-9 "cell (2,2) t=3" 50. obs.Dl.Joint.density.(2).(1).(1)

let test_joint_solve_and_accuracy_on_realisable_data () =
  (* synthesize observations from the joint model itself; accuracy of
     the generating parameters must be high *)
  let truth =
    { Dl.Joint.dh = 0.02; di = 0.05; k = 30.; r = Dl.Growth.Constant 0.5 }
  in
  let base = joint_fixture () in
  (* seed a smooth initial surface *)
  let obs0 =
    {
      base with
      Dl.Joint.density =
        [| [| [| 8.; 4. |]; [| 3.; 1. |] |];
           [| [| 0.; 0. |]; [| 0.; 0. |] |];
           [| [| 0.; 0. |]; [| 0.; 0. |] |] |];
      population = [| [| 50; 50 |]; [| 50; 50 |] |];
    }
  in
  let times = [| 2.; 3. |] in
  let sol = Dl.Joint.solve truth obs0 ~times in
  let density =
    Array.init 3 (fun it ->
        if it = 0 then obs0.Dl.Joint.density.(0)
        else
          Array.init 2 (fun ih ->
              Array.init 2 (fun ig ->
                  Numerics.Pde2d.value_at sol
                    ~x:(float_of_int (ih + 1))
                    ~y:(float_of_int (ig + 1))
                    ~t:times.(it - 1))))
  in
  let obs = { obs0 with Dl.Joint.density } in
  let sol2 = Dl.Joint.solve truth obs ~times in
  let acc = Dl.Joint.accuracy sol2 obs in
  Alcotest.(check bool) "self-accuracy near 1" true (acc > 0.98);
  (* and the grid fit recovers the generating cell *)
  let p, err =
    Dl.Joint.fit_grid obs
      ~dh_grid:[| 0.002; 0.02; 0.2 |]
      ~di_grid:[| 0.005; 0.05; 0.5 |]
      ~r_grid:
        [| Dl.Growth.Constant 0.25; Dl.Growth.Constant 0.5;
           Dl.Growth.Constant 1.0 |]
      ~k:30.
  in
  checkf 1e-12 "recovers dh" 0.02 p.Dl.Joint.dh;
  checkf 1e-12 "recovers di" 0.05 p.Dl.Joint.di;
  Alcotest.(check bool) "tiny error" true (err < 0.02)

let test_joint_rejects_bad_axes () =
  let story =
    { Socialnet.Types.id = 0; initiator = 0; topic = 0; votes = [| vote 0 0. |] }
  in
  try
    ignore
      (Dl.Joint.observe story ~hop_assignment:[| -1 |]
         ~interest_assignment:[| -1 |] ~hop_max:1 ~group_max:2
         ~times:[| 1. |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "2d mass conservation" `Quick test_mass_conservation;
    Alcotest.test_case "2d flattens" `Quick test_flattens_to_uniform;
    Alcotest.test_case "2d mode decay" `Slow test_product_mode_decay_rate;
    Alcotest.test_case "2d reaction logistic" `Quick test_reaction_only_matches_logistic;
    Alcotest.test_case "2d anisotropy" `Quick test_anisotropic_diffusion_direction;
    Alcotest.test_case "2d bounds" `Quick test_bounds_under_logistic;
    Alcotest.test_case "2d value_at" `Quick test_value_at_interpolates;
    Alcotest.test_case "2d invalid inputs" `Quick test_invalid_inputs;
    Alcotest.test_case "joint observe" `Quick test_joint_observe;
    Alcotest.test_case "joint realisable fit" `Slow test_joint_solve_and_accuracy_on_realisable_data;
    Alcotest.test_case "joint bad axes" `Quick test_joint_rejects_bad_axes;
  ]
