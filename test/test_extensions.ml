(* Tests for the extension modules: wavefront analysis, the SI
   epidemic comparator, batch evaluation, temporal analytics,
   centrality and the Twitter-like corpus. *)

open Numerics

let checkf tol = Alcotest.(check (float tol))

(* --- Wavefront --- *)

let test_fisher_speed_formula () =
  checkf 1e-12 "2 sqrt(rd)" 0.2 (Dl.Wavefront.fisher_speed ~d:0.01 ~r:1.);
  checkf 1e-12 "zero d" 0. (Dl.Wavefront.fisher_speed ~d:0. ~r:1.);
  try
    ignore (Dl.Wavefront.fisher_speed ~d:(-1.) ~r:1.);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_instantaneous_speed_decays () =
  let p = Dl.Params.paper_hops in
  let s1 = Dl.Wavefront.instantaneous_speed p ~t:1. in
  let s5 = Dl.Wavefront.instantaneous_speed p ~t:5. in
  Alcotest.(check bool) "slows as r decays" true (s5 < s1);
  checkf 1e-9 "matches formula"
    (2. *. sqrt (0.01 *. Dl.Growth.eval Dl.Growth.paper_hops 1.))
    s1

let test_expected_position () =
  (* constant rate: position = x0 + c (t - 1), clamped at L *)
  let p = Dl.Params.make ~d:0.04 ~k:25. ~r:(Dl.Growth.Constant 1.) ~l:1. ~big_l:20. in
  let c = Dl.Wavefront.fisher_speed ~d:0.04 ~r:1. in
  checkf 1e-6 "linear motion" (2. +. (3. *. c))
    (Dl.Wavefront.expected_position p ~x0:2. ~t:4.);
  checkf 1e-9 "clamped at L" 20.
    (Dl.Wavefront.expected_position p ~x0:19.9 ~t:50.)

let test_empirical_front_speed_matches_fisher () =
  (* Fisher's equation on a long domain: the tracked front should move
     at roughly 2 sqrt(rd) once developed. *)
  let d = 0.5 and r = 1. in
  let p = Dl.Params.make ~d ~k:1. ~r:(Dl.Growth.Constant r) ~l:0. ~big_l:60. in
  let phi =
    (* steep initial step near the left edge, built from observations *)
    Dl.Initial.of_observations
      ~xs:[| 0.; 1.; 2.; 3.; 60. |]
      ~densities:[| 1.; 1.; 0.5; 0.0001; 0.0001 |]
  in
  (* Model.solve insists times >= 1, which suits a developed front *)
  let times = Array.init 15 (fun i -> 6. +. float_of_int i) in
  let sol = Dl.Model.solve ~nx:301 ~dt:5e-3 p ~phi ~times in
  let crossings = Dl.Wavefront.track sol ~threshold:0.5 in
  match Dl.Wavefront.empirical_speed crossings with
  | None -> Alcotest.fail "no front detected"
  | Some speed ->
    let fisher = Dl.Wavefront.fisher_speed ~d ~r in
    Alcotest.(check bool)
      (Printf.sprintf "measured %.3f vs fisher %.3f" speed fisher)
      true
      (Float.abs (speed -. fisher) /. fisher < 0.15)

let test_track_none_when_below_threshold () =
  let p = Dl.Params.paper_hops in
  let phi =
    Dl.Initial.of_observations ~xs:[| 1.; 2.; 3.; 4.; 5.; 6. |]
      ~densities:[| 0.2; 0.1; 0.05; 0.04; 0.03; 0.02 |]
  in
  let sol = Dl.Model.solve p ~phi ~times:[| 2. |] in
  let crossings = Dl.Wavefront.track sol ~threshold:50. in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "no crossing" true (c.Dl.Wavefront.position = None))
    crossings

(* --- Epidemic --- *)

let test_epidemic_validation () =
  let expect_invalid p =
    try
      Dl.Epidemic.validate p;
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid
    { Dl.Epidemic.beta_local = -1.; beta_cross = 0.; mixing_decay = 0.5 };
  expect_invalid
    { Dl.Epidemic.beta_local = 0.; beta_cross = 0.; mixing_decay = 0. };
  expect_invalid
    { Dl.Epidemic.beta_local = 0.; beta_cross = 0.; mixing_decay = 1.5 }

let test_epidemic_single_group_is_logistic () =
  (* one group, no coupling: dI/dt = beta I (1 - I), the logistic *)
  let p =
    { Dl.Epidemic.beta_local = 0.7; beta_cross = 0.; mixing_decay = 1. }
  in
  let result = Dl.Epidemic.simulate p ~i0:[| 5. |] ~times:[| 3.; 6. |] in
  List.iteri
    (fun i t ->
      let expected = 100. *. Ode.logistic ~r:0.7 ~k:1. ~n0:0.05 (t -. 1.) in
      checkf 1e-3 "logistic growth" expected result.(0).(i))
    [ 3.; 6. ]

let test_epidemic_saturates_at_100 () =
  let p =
    { Dl.Epidemic.beta_local = 2.; beta_cross = 0.5; mixing_decay = 0.5 }
  in
  let result =
    Dl.Epidemic.simulate p ~i0:[| 10.; 1.; 0.5 |] ~times:[| 30. |]
  in
  Array.iter
    (fun row ->
      Alcotest.(check bool) "saturated" true (row.(0) > 99. && row.(0) <= 100.0001))
    result

let test_epidemic_coupling_spreads () =
  (* a group starting at zero only grows through cross-group mixing *)
  let coupled =
    { Dl.Epidemic.beta_local = 0.5; beta_cross = 0.3; mixing_decay = 0.7 }
  in
  let isolated = { coupled with Dl.Epidemic.beta_cross = 0. } in
  let run p = (Dl.Epidemic.simulate p ~i0:[| 20.; 0. |] ~times:[| 5. |]).(1).(0) in
  Alcotest.(check bool) "coupled group grows" true (run coupled > 1.);
  checkf 1e-9 "isolated group stays zero" 0. (run isolated)

let test_epidemic_fit_recovers () =
  (* generate data with known rates, fit, check prediction quality *)
  let truth =
    { Dl.Epidemic.beta_local = 0.6; beta_cross = 0.08; mixing_decay = 0.6 }
  in
  let i0 = [| 8.; 4.; 2.; 1. |] in
  let times = [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let ground = Dl.Epidemic.simulate truth ~i0 ~times in
  let obs =
    {
      Socialnet.Density.distances = [| 1; 2; 3; 4 |];
      times;
      density = ground;
      population = [| 100; 100; 100; 100 |];
    }
  in
  let result = Dl.Epidemic.fit (Rng.create 4) obs in
  Alcotest.(check bool) "training error small" true
    (result.Dl.Epidemic.training_error < 0.02);
  let predictor = Dl.Epidemic.predictor result.Dl.Epidemic.params ~obs in
  let predicted = predictor ~x:2 ~t:6. in
  let actual = ground.(1).(5) in
  Alcotest.(check bool) "extrapolates" true
    (Float.abs (predicted -. actual) /. actual < 0.1)

(* --- Batch --- *)

let corpus = lazy (Socialnet.Digg.build ~scale:Socialnet.Digg.small ~seed:5 ())

let test_top_stories () =
  let c = Lazy.force corpus in
  let top = Dl.Batch.top_stories c.Socialnet.Digg.dataset ~n:5 in
  Alcotest.(check int) "five stories" 5 (Array.length top);
  for i = 0 to 3 do
    Alcotest.(check bool) "descending votes" true
      (Socialnet.Types.story_vote_count top.(i)
       >= Socialnet.Types.story_vote_count top.(i + 1))
  done

let test_batch_evaluate () =
  let c = Lazy.force corpus in
  let ds = c.Socialnet.Digg.dataset in
  let stories = Dl.Batch.top_stories ds ~n:6 in
  let summary =
    Dl.Batch.evaluate ~mode:Dl.Batch.Paper_params ds ~stories
  in
  Alcotest.(check int) "all stories accounted" 6
    (summary.Dl.Batch.evaluated + summary.Dl.Batch.skipped);
  Alcotest.(check bool) "some evaluated" true (summary.Dl.Batch.evaluated >= 3);
  Alcotest.(check bool) "mean in [0,1]" true
    (summary.Dl.Batch.mean_overall >= 0. && summary.Dl.Batch.mean_overall <= 1.);
  Alcotest.(check bool) "worst <= median <= best" true
    (summary.Dl.Batch.worst <= summary.Dl.Batch.median_overall
     && summary.Dl.Batch.median_overall <= summary.Dl.Batch.best)

(* --- Temporal --- *)

let vote user time = { Socialnet.Types.user; time }

let sample_story =
  {
    Socialnet.Types.id = 0;
    initiator = 0;
    topic = 0;
    votes =
      Array.of_list
        [ vote 0 0.; vote 1 0.2; vote 2 0.9; vote 3 1.5; vote 4 4.5 ];
  }

let test_votes_per_hour () =
  let counts = Socialnet.Temporal.votes_per_hour sample_story ~duration:5. in
  Alcotest.(check (array int)) "buckets" [| 3; 1; 0; 0; 1 |] counts

let test_votes_per_hour_truncates () =
  let counts = Socialnet.Temporal.votes_per_hour sample_story ~duration:2. in
  Alcotest.(check (array int)) "beyond-duration dropped" [| 3; 1 |] counts

let test_time_to_fraction () =
  checkf 1e-12 "60% of 5 = 3rd vote" 0.9
    (Socialnet.Temporal.time_to_fraction sample_story ~fraction:0.6);
  checkf 1e-12 "all votes" 4.5
    (Socialnet.Temporal.time_to_fraction sample_story ~fraction:1.)

let test_saturation_and_peak () =
  checkf 1e-12 "saturation = last vote for small stories" 4.5
    (Socialnet.Temporal.saturation_time sample_story);
  Alcotest.(check int) "peak hour" 0
    (Socialnet.Temporal.peak_hour sample_story ~duration:5.)

let test_inter_arrival () =
  let stats = Socialnet.Temporal.inter_arrival_stats sample_story in
  checkf 1e-9 "mean gap" (4.5 /. 4.) stats.Socialnet.Temporal.mean;
  checkf 1e-9 "max gap" 3. stats.Socialnet.Temporal.max

let test_spread_speed_rank () =
  let slow =
    {
      sample_story with
      Socialnet.Types.id = 1;
      votes = Array.of_list [ vote 0 0.; vote 1 8.; vote 2 9. ];
    }
  in
  let ranked = Socialnet.Temporal.spread_speed_rank [| slow; sample_story |] in
  let first_id, _ = ranked.(0) in
  Alcotest.(check int) "fast story first" 0 first_id

(* --- Centrality --- *)

let test_in_degree_ranking () =
  let g = Osn_graph.Digraph.of_edges 4 [ (1, 0); (2, 0); (3, 0); (0, 1) ] in
  let ranking = Osn_graph.Centrality.in_degree_ranking g in
  Alcotest.(check int) "most-followed first" 0 ranking.(0)

let test_pagerank_uniform_on_ring () =
  let g = Osn_graph.Generators.ring 6 in
  let pr = Osn_graph.Centrality.pagerank g in
  Array.iter (fun s -> checkf 1e-6 "symmetric ranks" (1. /. 6.) s) pr;
  checkf 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. pr)

let test_pagerank_hub_wins () =
  (* everyone points at node 0 *)
  let g =
    Osn_graph.Digraph.of_edges 5 [ (1, 0); (2, 0); (3, 0); (4, 0) ]
  in
  let pr = Osn_graph.Centrality.pagerank g in
  for v = 1 to 4 do
    Alcotest.(check bool) "hub dominates" true (pr.(0) > pr.(v))
  done;
  checkf 1e-9 "sums to 1" 1. (Array.fold_left ( +. ) 0. pr)

let test_pagerank_dangling_mass () =
  (* 0 -> 1, 1 dangles; ranks must still sum to 1 *)
  let g = Osn_graph.Digraph.of_edges 2 [ (0, 1) ] in
  let pr = Osn_graph.Centrality.pagerank g in
  checkf 1e-9 "mass conserved" 1. (Array.fold_left ( +. ) 0. pr);
  Alcotest.(check bool) "linked node ranks higher" true (pr.(1) > pr.(0))

let test_k_core_clique_plus_tail () =
  (* 4-clique (core 3) with a pendant chain (core 1) *)
  let clique =
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  let g = Osn_graph.Digraph.of_edges 6 (clique @ [ (3, 4); (4, 5) ]) in
  let core = Osn_graph.Centrality.k_core g in
  for v = 0 to 3 do
    Alcotest.(check int) "clique core" 3 core.(v)
  done;
  Alcotest.(check int) "tail core" 1 core.(4);
  Alcotest.(check int) "leaf core" 1 core.(5)

let test_k_core_ring () =
  let g = Osn_graph.Generators.ring 7 in
  let core = Osn_graph.Centrality.k_core g in
  Array.iter (fun c -> Alcotest.(check int) "cycle is 2-core" 2 c) core

let test_top_scores () =
  let top = Osn_graph.Centrality.top [| 0.1; 0.9; 0.5 |] ~n:2 in
  Alcotest.(check int) "best first" 1 (fst top.(0));
  Alcotest.(check int) "second" 2 (fst top.(1))

(* --- Twitter corpus --- *)

let test_twitter_build () =
  let c = Socialnet.Twitter.build ~n_users:2_000 ~n_background:40 ~seed:3 () in
  let ds = c.Socialnet.Twitter.dataset in
  Alcotest.(check int) "users" 2_000 (Socialnet.Dataset.n_users ds);
  Alcotest.(check int) "stories" 44 (Socialnet.Dataset.n_stories ds);
  Alcotest.(check int) "four reps" 4 (Array.length c.Socialnet.Twitter.rep_ids);
  (* Twitter-like: low reciprocity *)
  Alcotest.(check bool) "low reciprocity" true
    (Osn_graph.Metrics.reciprocity (Socialnet.Dataset.follows ds) < 0.25)

let test_twitter_density_hugs_graph () =
  (* without a front page, density must decay with hop distance for the
     celebrity tweet *)
  let c = Socialnet.Twitter.build ~n_users:2_000 ~n_background:40 ~seed:3 () in
  let ds = c.Socialnet.Twitter.dataset in
  let t1 = Socialnet.Dataset.story ds c.Socialnet.Twitter.rep_ids.(0) in
  let hops = Socialnet.Distance.friendship_hops ds ~story:t1 in
  let obs =
    Socialnet.Density.observe t1 ~assignment:hops ~max_distance:4
      ~times:[| 50. |]
  in
  let d1 = obs.Socialnet.Density.density.(0).(0) in
  let d3 = obs.Socialnet.Density.density.(2).(0) in
  Alcotest.(check bool) "hop 1 much denser than hop 3" true (d1 > 2. *. d3)

let suite =
  [
    Alcotest.test_case "fisher speed" `Quick test_fisher_speed_formula;
    Alcotest.test_case "speed decays" `Quick test_instantaneous_speed_decays;
    Alcotest.test_case "expected position" `Quick test_expected_position;
    Alcotest.test_case "front speed vs fisher" `Slow test_empirical_front_speed_matches_fisher;
    Alcotest.test_case "no crossing" `Quick test_track_none_when_below_threshold;
    Alcotest.test_case "epidemic validation" `Quick test_epidemic_validation;
    Alcotest.test_case "epidemic logistic" `Quick test_epidemic_single_group_is_logistic;
    Alcotest.test_case "epidemic saturation" `Quick test_epidemic_saturates_at_100;
    Alcotest.test_case "epidemic coupling" `Quick test_epidemic_coupling_spreads;
    Alcotest.test_case "epidemic fit" `Slow test_epidemic_fit_recovers;
    Alcotest.test_case "top stories" `Slow test_top_stories;
    Alcotest.test_case "batch evaluate" `Slow test_batch_evaluate;
    Alcotest.test_case "votes per hour" `Quick test_votes_per_hour;
    Alcotest.test_case "duration truncation" `Quick test_votes_per_hour_truncates;
    Alcotest.test_case "time to fraction" `Quick test_time_to_fraction;
    Alcotest.test_case "saturation/peak" `Quick test_saturation_and_peak;
    Alcotest.test_case "inter-arrival" `Quick test_inter_arrival;
    Alcotest.test_case "spread speed rank" `Quick test_spread_speed_rank;
    Alcotest.test_case "in-degree ranking" `Quick test_in_degree_ranking;
    Alcotest.test_case "pagerank ring" `Quick test_pagerank_uniform_on_ring;
    Alcotest.test_case "pagerank hub" `Quick test_pagerank_hub_wins;
    Alcotest.test_case "pagerank dangling" `Quick test_pagerank_dangling_mass;
    Alcotest.test_case "k-core clique" `Quick test_k_core_clique_plus_tail;
    Alcotest.test_case "k-core ring" `Quick test_k_core_ring;
    Alcotest.test_case "top scores" `Quick test_top_scores;
    Alcotest.test_case "twitter build" `Slow test_twitter_build;
    Alcotest.test_case "twitter locality" `Slow test_twitter_density_hugs_graph;
  ]

(* --- late additions: visibility gating and decaying-rate wavefront --- *)

let test_cascade_visibility_gates_exposure () =
  (* visibility 0 for odd users: they can never vote *)
  let rng = Rng.create 31 in
  let g = Osn_graph.Generators.complete 30 in
  let params =
    {
      Socialnet.Cascade.default with
      p_follow = 1.;
      promote_threshold = 1;
      front_page_rate = 50.;
      duration = 20.;
    }
  in
  let story =
    Socialnet.Cascade.simulate rng ~influence:g
      ~affinity:(fun _ -> 1.)
      ~visibility:(fun u -> if u mod 2 = 1 then 0. else 1.)
      ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  Array.iter
    (fun (v : Socialnet.Types.vote) ->
      Alcotest.(check bool) "only even users vote" true
        (v.Socialnet.Types.user mod 2 = 0))
    story.Socialnet.Types.votes;
  Alcotest.(check bool) "visible users did vote" true
    (Socialnet.Types.story_vote_count story > 5)

let test_traced_channels_consistent () =
  let rng = Rng.create 32 in
  let g = Osn_graph.Generators.star 40 in
  let params =
    {
      Socialnet.Cascade.default with
      p_follow = 0.8;
      promote_threshold = 3;
      front_page_rate = 10.;
      duration = 30.;
    }
  in
  let story, channels =
    Socialnet.Cascade.simulate_traced rng ~influence:g
      ~affinity:(fun _ -> 0.8)
      ~params ~initiator:0 ~story_id:0 ~topic:0 ()
  in
  Alcotest.(check int) "one channel per vote"
    (Socialnet.Types.story_vote_count story)
    (Array.length channels);
  Alcotest.(check bool) "first vote is the seed" true
    (channels.(0) = Socialnet.Cascade.Seed);
  Array.iteri
    (fun i c ->
      if i > 0 then
        Alcotest.(check bool) "later votes are not seeds" true
          (c <> Socialnet.Cascade.Seed))
    channels

let test_wavefront_expected_position_decaying_rate () =
  (* with the closed-form integral checked against quadrature *)
  let p = Dl.Params.paper_hops in
  let speed t = Dl.Wavefront.instantaneous_speed p ~t in
  let numeric = Numerics.Quadrature.simpson speed ~a:1. ~b:4. ~n:200 in
  let checkf tol = Alcotest.(check (float tol)) in
  checkf 1e-6 "integrated speed" (1. +. numeric)
    (Dl.Wavefront.expected_position p ~x0:1. ~t:4.)

let late_suite =
  [
    Alcotest.test_case "cascade visibility" `Quick test_cascade_visibility_gates_exposure;
    Alcotest.test_case "traced channels" `Quick test_traced_channels_consistent;
    Alcotest.test_case "wavefront decaying rate" `Quick test_wavefront_expected_position_decaying_rate;
  ]

let suite = suite @ late_suite
