(* Tests for the model zoo: the Predictor registry, the linear
   diffusive model against its closed form, tournament determinism
   across pool sizes, and the serve `model` field round-tripping
   through the persistent store. *)

let builtin_names =
  [
    "dl"; "dl-linear"; "epidemic"; "gompertz"; "linear-trend"; "logistic";
    "network"; "persistence";
  ]

(* --- registry --- *)

let test_registry_complete () =
  Alcotest.(check (list string))
    "names () lists every built-in, sorted" builtin_names
    (Dl.Predictor.names ());
  List.iter
    (fun n ->
      match Dl.Predictor.find n with
      | Some p -> Alcotest.(check string) "find returns the entry" n
                    p.Dl.Predictor.name
      | None -> Alcotest.failf "built-in %S not registered" n)
    builtin_names;
  (* registration order keeps built-ins first and complete *)
  Alcotest.(check (list string))
    "all () covers the same set" builtin_names
    (List.sort compare
       (List.map (fun (p : Dl.Predictor.t) -> p.Dl.Predictor.name)
          (Dl.Predictor.all ())));
  List.iter
    (fun (p : Dl.Predictor.t) ->
      Alcotest.(check bool)
        (p.Dl.Predictor.name ^ " has a description") true
        (String.length p.Dl.Predictor.description > 0))
    (Dl.Predictor.all ())

let test_registry_errors () =
  let obs = List.assoc "synth-1" (Dl.Tournament.synthetic_stories ~n:1 ()) in
  (match Dl.Predictor.fit "no-such-model" (Dl.Predictor.spec obs) with
  | _ -> Alcotest.fail "unknown model did not raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "Predictor.fit: prefix" true
      (String.starts_with ~prefix:"Predictor.fit:" msg);
    Alcotest.(check bool) "message lists registered names" true
      (List.for_all
         (fun n ->
           let rec contains i =
             i + String.length n <= String.length msg
             && (String.sub msg i (String.length n) = n || contains (i + 1))
           in
           contains 0)
         builtin_names));
  (* the network model needs graph context the density obs cannot give *)
  (match Dl.Predictor.fit "network" (Dl.Predictor.spec obs) with
  | _ -> Alcotest.fail "network without graph did not raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "Predictor.fit: prefix" true
      (String.starts_with ~prefix:"Predictor.fit:" msg));
  match Dl.Tournament.run ~models:[ "nope" ] [ ("s", obs) ] with
  | _ -> Alcotest.fail "tournament with unknown model did not raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "Tournament.run: prefix" true
      (String.starts_with ~prefix:"Tournament.run:" msg)

let test_default_models () =
  Alcotest.(check bool) "network excluded" false
    (List.mem "network" Dl.Tournament.default_models);
  Alcotest.(check bool) "at least 4 models" true
    (List.length Dl.Tournament.default_models >= 4);
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " registered") true
        (Dl.Predictor.find m <> None))
    Dl.Tournament.default_models

(* --- error-message form for the baseline/epidemic validators --- *)

let test_invalid_arg_form () =
  let bad_times =
    {
      Socialnet.Density.distances = [| 1; 2 |];
      times = [| 2.; 3. |];
      density = [| [| 1.; 2. |]; [| 1.; 2. |] |];
      population = [| 10; 10 |];
    }
  in
  (match Dl.Baselines.persistence bad_times with
  | (_ : Dl.Baselines.predictor) -> Alcotest.fail "baseline accepted t0 <> 1"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "Baselines.<fn>: form" true
      (String.starts_with ~prefix:"Baselines.persistence:" msg));
  match
    Dl.Epidemic.validate
      { Dl.Epidemic.beta_local = -1.; beta_cross = 0.1; mixing_decay = 0.5 }
  with
  | () -> Alcotest.fail "epidemic accepted a negative rate"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "Epidemic.<fn>: form" true
      (String.starts_with ~prefix:"Epidemic." msg)

(* --- linear diffusive model vs its closed form --- *)

(* With phi(x) = a0 + a1 cos(pi (x - l) / (L - l)) and constant growth
   r, the linear PDE separates exactly:
     I(x, t) = e^{r (t-1)} (a0 + a1 e^{-d lambda (t-1)} cos(...)),
   lambda = (pi / (L - l))^2 — the cosine is a Neumann eigenfunction. *)
let test_linear_model_closed_form () =
  let l = 1. and big_l = 5. in
  let d = 0.05 and r = 0.3 and a0 = 2.0 and a1 = 0.5 in
  let lambda = (Float.pi /. (big_l -. l)) ** 2. in
  let mode x = cos (Float.pi *. (x -. l) /. (big_l -. l)) in
  let exact ~x ~t =
    exp (r *. (t -. 1.))
    *. (a0 +. (a1 *. exp (-.d *. lambda *. (t -. 1.)) *. mode x))
  in
  let n_knots = 33 in
  let xs =
    Array.init n_knots (fun i ->
        l +. ((big_l -. l) *. float_of_int i /. float_of_int (n_knots - 1)))
  in
  let phi =
    Dl.Initial.of_observations ~xs
      ~densities:(Array.map (fun x -> a0 +. (a1 *. mode x)) xs)
  in
  let params =
    Dl.Linear_model.make ~d ~r:(Dl.Growth.Constant r) ~l ~big_l
  in
  List.iter
    (fun scheme ->
      let sol =
        Dl.Linear_model.solve ~scheme ~nx:201 ~dt:0.005 params ~phi
          ~times:[| 1.; 1.5; 2.; 3. |]
      in
      let predict = Dl.Linear_model.predictor sol in
      List.iter
        (fun x ->
          List.iter
            (fun t ->
              let got = predict ~x ~t in
              let want = exact ~x ~t in
              Alcotest.(check bool)
                (Printf.sprintf "I(%g, %g) within 1%% of closed form" x t)
                true
                (Float.abs (got -. want) /. want < 0.01))
            [ 1.5; 2.; 3. ])
        [ 1.; 2.3; 3.7; 5. ])
    [ Dl.Linear_model.Strang; Dl.Linear_model.Crank_nicolson ]

(* --- tournament determinism across pool sizes --- *)

let accuracy_fields lb =
  Array.map
    (fun (e : Dl.Tournament.entry) ->
      ( e.Dl.Tournament.e_model,
        e.Dl.Tournament.e_ok,
        e.Dl.Tournament.e_mean_rel_err,
        e.Dl.Tournament.e_training_error,
        Array.to_list e.Dl.Tournament.e_per_story,
        e.Dl.Tournament.e_evaluations ))
    lb.Dl.Tournament.lb_entries

let test_parallel_determinism () =
  let stories = Dl.Tournament.synthetic_stories ~n:3 ~seed:11 () in
  let models = [ "logistic"; "gompertz"; "linear-trend"; "persistence" ] in
  let seq =
    Dl.Tournament.run ~pool:Parallel.Pool.sequential ~models ~seed:5 stories
  in
  let par =
    Dl.Tournament.run
      ~pool:(Parallel.Pool.create ~jobs:4 ())
      ~models ~seed:5 stories
  in
  (* every accuracy field bit-identical; only wall-clock fields may vary *)
  Alcotest.(check bool) "accuracy fields identical across pool sizes" true
    (accuracy_fields seq = accuracy_fields par);
  Alcotest.(check int) "all models entered" (List.length models)
    (Array.length seq.Dl.Tournament.lb_entries);
  Array.iter
    (fun (e : Dl.Tournament.entry) ->
      Alcotest.(check bool) (e.Dl.Tournament.e_model ^ " fitted") true
        e.Dl.Tournament.e_ok)
    seq.Dl.Tournament.lb_entries;
  (* ranking is ascending in held-out error for successful entries *)
  let errs =
    Array.to_list
      (Array.map
         (fun (e : Dl.Tournament.entry) -> e.Dl.Tournament.e_mean_rel_err)
         seq.Dl.Tournament.lb_entries)
  in
  Alcotest.(check bool) "sorted ascending" true
    (List.sort compare errs = errs)

let test_leaderboard_json () =
  let stories = Dl.Tournament.synthetic_stories ~n:2 ~seed:3 () in
  let lb =
    Dl.Tournament.run ~models:[ "linear-trend"; "persistence" ] stories
  in
  let doc = Dl.Tournament.json_string lb in
  match Serve.Tiny_json.parse doc with
  | Error e -> Alcotest.failf "leaderboard JSON does not parse: %s" e
  | Ok j ->
    let module J = Serve.Tiny_json in
    Alcotest.(check (option string)) "schema" (Some Dl.Tournament.schema_version)
      (Option.bind (J.member "schema" j) J.to_string_opt);
    let entries =
      Option.bind (J.member "leaderboard" j) J.to_list |> Option.get
    in
    Alcotest.(check int) "one entry per model" 2 (List.length entries);
    List.iter
      (fun e ->
        List.iter
          (fun field ->
            Alcotest.(check bool) (field ^ " present") true
              (J.member field e <> None))
          [
            "model"; "ok"; "error"; "mean_rel_err"; "training_error";
            "per_story"; "fit_ms"; "predict_ms"; "evaluations";
          ])
      entries

(* --- serve `model` field, round-tripped through the store --- *)

let linear_fit_body =
  {|{"distances":[1,2,3,4],"times":[1,2,3,4,5],
     "density":[[2.0,3.0,4.0,4.8,5.4],[1.2,1.9,2.7,3.4,4.0],
                [0.7,1.1,1.6,2.1,2.5],[0.4,0.6,0.9,1.2,1.5]],
     "starts":1,"seed":3,"model":"dl-linear"}|}

let ok = function
  | Ok (r : Serve.Client.response) -> r
  | Error msg -> Alcotest.failf "request failed: %s" msg

let json_of (r : Serve.Client.response) =
  match Serve.Tiny_json.parse r.Serve.Client.body with
  | Ok v -> v
  | Error e -> Alcotest.failf "bad JSON body %S: %s" r.Serve.Client.body e

let with_store_server dir f =
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.port = 0;
      store_dir = Some dir;
    }
  in
  let server = Serve.Server.create ~config () in
  let th = Thread.create Serve.Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Thread.join th;
      Obs.set_enabled false)
    (fun () -> f (Serve.Server.port server))

let test_serve_model_roundtrip () =
  let module J = Serve.Tiny_json in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlosn-test-tournament-%d" (Unix.getpid ()))
  in
  let rmrf () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  rmrf ();
  Fun.protect ~finally:rmrf @@ fun () ->
  (* fit a linear model and let the server persist it *)
  with_store_server dir (fun port ->
      let r = ok (Serve.Client.request ~port ~body:linear_fit_body "POST" "/fit") in
      Alcotest.(check int) "fit status" 200 r.Serve.Client.status;
      Alcotest.(check (option string)) "response model" (Some "dl-linear")
        (Option.bind (J.member "model" (json_of r)) J.to_string_opt);
      (* unknown model name: structured 400, not a 500 *)
      let bad =
        ok
          (Serve.Client.request ~port
             ~body:{|{"distances":[1,2],"times":[1,2],
                      "density":[[1,2],[1,2]],"model":"nope"}|}
             "POST" "/fit")
      in
      Alcotest.(check int) "unknown model is a 400" 400
        bad.Serve.Client.status;
      let err =
        Option.bind (J.member "error" (json_of bad)) J.to_string_opt
        |> Option.value ~default:""
      in
      Alcotest.(check bool) "error lists registered models" true
        (let needle = "dl-linear" in
         let rec contains i =
           i + String.length needle <= String.length err
           && (String.sub err i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0));
  (* the store record carries the model name *)
  let records, _ = Store.load dir in
  (match records with
  | [ r ] ->
    Alcotest.(check string) "stored model" "dl-linear" r.Store.Format.model
  | rs -> Alcotest.failf "expected 1 stored record, got %d" (List.length rs));
  (* a restarted server warm-starts the linear fit and serves it *)
  with_store_server dir (fun port ->
      let r = ok (Serve.Client.request ~port "GET" "/predict?x=2&t=4") in
      Alcotest.(check int) "warm predict status" 200 r.Serve.Client.status;
      let d =
        Option.bind (J.member "density" (json_of r)) J.to_float |> Option.get
      in
      Alcotest.(check bool) "warm density sane" true
        (Float.is_finite d && d >= 0.))

let suite =
  [
    Alcotest.test_case "registry lists every built-in" `Quick
      test_registry_complete;
    Alcotest.test_case "registry errors name the caller" `Quick
      test_registry_errors;
    Alcotest.test_case "default tournament models" `Quick test_default_models;
    Alcotest.test_case "validator messages use Module.fn form" `Quick
      test_invalid_arg_form;
    Alcotest.test_case "linear model matches its closed form" `Slow
      test_linear_model_closed_form;
    Alcotest.test_case "leaderboard identical across pool sizes" `Slow
      test_parallel_determinism;
    Alcotest.test_case "leaderboard JSON shape" `Slow test_leaderboard_json;
    Alcotest.test_case "serve model field round-trips the store" `Slow
      test_serve_model_roundtrip;
  ]
