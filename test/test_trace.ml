(* End-to-end request tracing through the serving layer: X-Trace-Id
   propagation into response headers and the trace ring, generated ids
   when callers send none (or junk), /debug/traces and /debug/flame,
   and the slow-request warn log carrying the trace id. *)

module J = Serve.Tiny_json

let with_server = Test_serve.with_server
let ok = Test_serve.ok
let json_of = Test_serve.json_of
let fit_body = Test_serve.fit_body
let contains = Test_serve.contains

let is_hex s n =
  String.length s = n
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let response_trace_id (r : Serve.Client.response) =
  match List.assoc_opt "x-trace-id" r.Serve.Client.headers with
  | Some id -> id
  | None -> Alcotest.fail "response lacks an X-Trace-Id header"

let traces_of port n =
  let r =
    ok (Serve.Client.request ~port "GET"
          (Printf.sprintf "/debug/traces?n=%d" n))
  in
  Alcotest.(check int) "/debug/traces status" 200 r.Serve.Client.status;
  match Option.bind (J.member "traces" (json_of r)) J.to_list with
  | Some l -> l
  | None -> Alcotest.fail "/debug/traces body lacks a traces list"

let str_member k j = Option.bind (J.member k j) J.to_string_opt

let test_header_roundtrip () =
  with_server @@ fun port ->
  let token = "my-trace_0123456789abcdef" in
  let r =
    ok
      (Serve.Client.request ~port
         ~headers:[ ("X-Trace-Id", token) ]
         ~body:fit_body "POST" "/fit")
  in
  Alcotest.(check int) "fit status" 200 r.Serve.Client.status;
  Alcotest.(check string) "trace id echoed in the response" token
    (response_trace_id r);
  (* the completed request must land in the trace ring with its id,
     route and a serve.request root span *)
  let entry =
    match
      List.find_opt
        (fun e -> str_member "trace_id" e = Some token)
        (traces_of port 32)
    with
    | Some e -> e
    | None -> Alcotest.fail "trace id not found in /debug/traces"
  in
  Alcotest.(check (option string)) "path recorded" (Some "/fit")
    (str_member "path" entry);
  Alcotest.(check (option int)) "status recorded" (Some 200)
    (Option.bind (J.member "status" entry) J.to_int);
  (match J.member "root" entry with
  | Some root ->
    Alcotest.(check (option string)) "root span name" (Some "serve.request")
      (str_member "name" root);
    Alcotest.(check bool) "root span has children" true
      (match Option.bind (J.member "children" root) J.to_list with
      | Some (_ :: _) -> true
      | _ -> false)
  | None -> Alcotest.fail "trace entry lacks a root span")

let test_generated_and_sanitised_ids () =
  with_server @@ fun port ->
  (* no header: the server mints a 32-hex id *)
  let r1 = ok (Serve.Client.request ~port "GET" "/healthz") in
  let id1 = response_trace_id r1 in
  Alcotest.(check bool) "generated id is 32 hex chars" true (is_hex id1 32);
  (* a second request gets a different id *)
  let r2 = ok (Serve.Client.request ~port "GET" "/healthz") in
  Alcotest.(check bool) "ids are per-request" true
    (id1 <> response_trace_id r2);
  (* junk tokens are replaced, never echoed back *)
  let r3 =
    ok
      (Serve.Client.request ~port
         ~headers:[ ("X-Trace-Id", "bad id!") ]
         "GET" "/healthz")
  in
  let id3 = response_trace_id r3 in
  Alcotest.(check bool) "junk token replaced" true (id3 <> "bad id!");
  Alcotest.(check bool) "replacement is 32 hex chars" true (is_hex id3 32)

let test_debug_flame () =
  with_server @@ fun port ->
  let r = ok (Serve.Client.request ~port ~body:fit_body "POST" "/fit") in
  Alcotest.(check int) "fit status" 200 r.Serve.Client.status;
  let f = ok (Serve.Client.request ~port "GET" "/debug/flame") in
  Alcotest.(check int) "/debug/flame status" 200 f.Serve.Client.status;
  let body = f.Serve.Client.body in
  Alcotest.(check bool) "folded stacks mention serve.request" true
    (contains ~needle:"serve.request" body);
  (* every line is `stack weight` with a non-negative integer weight *)
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         if line = "" then ()
         else
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "flame line without weight: %S" line
           | Some sp -> (
             let w = String.sub line (sp + 1) (String.length line - sp - 1) in
             match int_of_string_opt w with
             | Some v when v >= 0 -> ()
             | _ -> Alcotest.failf "bad flame weight in %S" line))

let test_debug_traces_bad_n () =
  with_server @@ fun port ->
  let r = ok (Serve.Client.request ~port "GET" "/debug/traces?n=bad") in
  Alcotest.(check int) "non-numeric n rejected" 400 r.Serve.Client.status;
  let r2 = ok (Serve.Client.request ~port "GET" "/debug/traces?n=-1") in
  Alcotest.(check int) "negative n rejected" 400 r2.Serve.Client.status

let test_slow_request_warn () =
  (* a 0 ms threshold makes every request "slow" *)
  let config =
    { Test_serve.base_config with Serve.Server.slow_request_ms = 0. }
  in
  let mutex = Mutex.create () in
  let lines = ref [] in
  Obs.Log.set_out (fun l ->
      Mutex.lock mutex;
      lines := l :: !lines;
      Mutex.unlock mutex);
  Obs.Log.set_level (Some Obs.Level.Warn);
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_level None;
      Obs.Log.set_out prerr_endline)
  @@ fun () ->
  let token = "slowtrace0000000000000000000000ff" in
  ( with_server ~config @@ fun port ->
    let r =
      ok
        (Serve.Client.request ~port
           ~headers:[ ("X-Trace-Id", token) ]
           "GET" "/healthz")
    in
    Alcotest.(check int) "status" 200 r.Serve.Client.status );
  Mutex.lock mutex;
  let captured = String.concat "\n" !lines in
  Mutex.unlock mutex;
  Alcotest.(check bool) "slow-request warn emitted" true
    (contains ~needle:"serve.slow_request" captured);
  Alcotest.(check bool) "warn carries the trace id" true
    (contains ~needle:token captured)

let suite =
  [
    Alcotest.test_case "X-Trace-Id round-trip" `Quick test_header_roundtrip;
    Alcotest.test_case "generated and sanitised ids" `Quick
      test_generated_and_sanitised_ids;
    Alcotest.test_case "debug flame output" `Quick test_debug_flame;
    Alcotest.test_case "debug traces rejects bad n" `Quick
      test_debug_traces_bad_n;
    Alcotest.test_case "slow-request warn with trace id" `Quick
      test_slow_request_warn;
  ]
