(* Tests for the live-ingestion subsystem: incremental density
   profiles (property-tested equivalent to batch Density.observe),
   drift detection, warm-started fits, store v3 fields, and the
   end-to-end /observe -> refit-daemon loop against a live server. *)

module J = Serve.Tiny_json
module Profile = Live.Profile
module Drift = Live.Drift

(* --- helpers --- *)

let with_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlosn-live-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* random vote set over a labelled user population; returns
   (assignment, votes, population) for [max_distance] groups *)
let random_votes rng ~max_distance ~horizon =
  let n_users = 5 + Numerics.Rng.int rng 60 in
  (* labels 0 .. max_distance+1 so out-of-range labels are exercised *)
  let assignment =
    Array.init n_users (fun _ -> Numerics.Rng.int rng (max_distance + 2))
  in
  let n_votes = Numerics.Rng.int rng 80 in
  let votes =
    Array.init n_votes (fun _ ->
        {
          Socialnet.Types.user = Numerics.Rng.int rng n_users;
          time =
            Numerics.Rng.uniform rng 0. (float_of_int (horizon + 1));
        })
  in
  let population = Array.make max_distance 0 in
  Array.iter
    (fun d ->
      if d >= 1 && d <= max_distance then
        population.(d - 1) <- population.(d - 1) + 1)
    assignment;
  (assignment, votes, population)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Numerics.Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* --- Profile: incremental == batch (the core property) --- *)

let prop_profile_matches_batch_shuffled =
  QCheck.Test.make ~count:150
    ~name:"live profile == batch Density.observe (any order, no window)"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let max_distance = 1 + Numerics.Rng.int rng 6 in
      let horizon = 2 + Numerics.Rng.int rng 5 in
      let times = Array.init horizon (fun i -> float_of_int (i + 1)) in
      let assignment, votes, population =
        random_votes rng ~max_distance ~horizon
      in
      let story =
        { Socialnet.Types.id = 0; initiator = 0; topic = 0; votes }
      in
      let batch =
        Socialnet.Density.observe story ~assignment ~max_distance ~times
      in
      let profile =
        Profile.create ~lateness:infinity ~max_distance ~times ~population ()
      in
      let order = Array.init (Array.length votes) Fun.id in
      shuffle rng order;
      Array.iter
        (fun k ->
          let v = votes.(k) in
          ignore
            (Profile.add profile
               ~distance:assignment.(v.Socialnet.Types.user)
               ~time:v.Socialnet.Types.time))
        order;
      (* bit-equality: same distances, times, population and density *)
      Profile.density profile = batch)

let prop_profile_matches_batch_ordered =
  QCheck.Test.make ~count:150
    ~name:"live profile == batch Density.observe (time order, finite window)"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let max_distance = 1 + Numerics.Rng.int rng 6 in
      let horizon = 2 + Numerics.Rng.int rng 5 in
      let times = Array.init horizon (fun i -> float_of_int (i + 1)) in
      let assignment, votes, population =
        random_votes rng ~max_distance ~horizon
      in
      let story =
        { Socialnet.Types.id = 0; initiator = 0; topic = 0; votes }
      in
      let batch =
        Socialnet.Density.observe story ~assignment ~max_distance ~times
      in
      let profile =
        Profile.create ~lateness:0.5 ~max_distance ~times ~population ()
      in
      let sorted = Array.copy votes in
      Array.sort
        (fun a b ->
          compare a.Socialnet.Types.time b.Socialnet.Types.time)
        sorted;
      Array.iter
        (fun (v : Socialnet.Types.vote) ->
          ignore
            (Profile.add profile
               ~distance:assignment.(v.Socialnet.Types.user)
               ~time:v.Socialnet.Types.time))
        sorted;
      (* in-order arrival never drops, whatever the window *)
      Profile.dropped_late profile = 0 && Profile.density profile = batch)

let prop_profile_matches_batch_jittered =
  QCheck.Test.make ~count:150
    ~name:"live profile == batch (arrival jitter within the window)"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let max_distance = 1 + Numerics.Rng.int rng 6 in
      let horizon = 2 + Numerics.Rng.int rng 5 in
      let times = Array.init horizon (fun i -> float_of_int (i + 1)) in
      let assignment, votes, population =
        random_votes rng ~max_distance ~horizon
      in
      let story =
        { Socialnet.Types.id = 0; initiator = 0; topic = 0; votes }
      in
      let batch =
        Socialnet.Density.observe story ~assignment ~max_distance ~times
      in
      let lateness = 2. in
      let profile =
        Profile.create ~lateness ~max_distance ~times ~population ()
      in
      (* sort by (event time + arrival jitter < lateness): every vote is
         within the window when it arrives, so none may drop *)
      let keyed =
        Array.map
          (fun (v : Socialnet.Types.vote) ->
            ( v.Socialnet.Types.time
              +. Numerics.Rng.uniform rng 0. (lateness *. 0.99),
              v ))
          votes
      in
      Array.sort (fun (a, _) (b, _) -> compare a b) keyed;
      Array.iter
        (fun (_, (v : Socialnet.Types.vote)) ->
          ignore
            (Profile.add profile
               ~distance:assignment.(v.Socialnet.Types.user)
               ~time:v.Socialnet.Types.time))
        keyed;
      Profile.dropped_late profile = 0 && Profile.density profile = batch)

let test_profile_late_drop () =
  let profile =
    Profile.create ~lateness:1. ~max_distance:3
      ~times:[| 1.; 2.; 3. |] ~population:[| 10; 10; 10 |] ()
  in
  Alcotest.(check bool) "fresh vote lands" true
    (Profile.add profile ~distance:1 ~time:2.5 = Profile.Added);
  Alcotest.(check bool) "within window lands" true
    (Profile.add profile ~distance:2 ~time:1.6 = Profile.Added);
  Alcotest.(check bool) "older than window drops" true
    (Profile.add profile ~distance:1 ~time:1.2 = Profile.Late);
  Alcotest.(check int) "dropped_late counted" 1 (Profile.dropped_late profile);
  Alcotest.(check int) "votes" 2 (Profile.votes profile);
  Alcotest.(check bool) "out of range" true
    (Profile.add profile ~distance:9 ~time:2.6 = Profile.Out_of_range);
  Alcotest.(check bool) "beyond horizon" true
    (Profile.add profile ~distance:1 ~time:7. = Profile.Beyond_horizon);
  Alcotest.(check (float 0.) ) "watermark advanced" 7.
    (Profile.watermark profile)

let test_profile_replay_stream () =
  (* the replay adapter's full stream folds to exactly its own batch
     reference *)
  let stream = Socialnet.Replay.simulate ~seed:11 () in
  let profile =
    Profile.create ~lateness:infinity
      ~max_distance:stream.Socialnet.Replay.max_distance
      ~times:stream.Socialnet.Replay.times
      ~population:stream.Socialnet.Replay.population ()
  in
  Array.iter
    (fun (e : Socialnet.Replay.event) ->
      ignore
        (Profile.add profile ~distance:e.Socialnet.Replay.distance
           ~time:e.Socialnet.Replay.time))
    stream.Socialnet.Replay.events;
  Alcotest.(check bool) "profile == batch_density" true
    (Profile.density profile = Socialnet.Replay.batch_density stream)

let test_profile_cursor_resume () =
  let times = [| 1.; 2.; 3. |] and population = [| 10; 10 |] in
  let profile =
    Profile.create ~lateness:1. ~watermark:2.5 ~max_distance:2 ~times
      ~population ()
  in
  Alcotest.(check (float 0.)) "watermark resumed" 2.5
    (Profile.watermark profile);
  (* pre-cursor votes are late relative to the resumed clock *)
  Alcotest.(check bool) "pre-cursor vote drops" true
    (Profile.add profile ~distance:1 ~time:1.0 = Profile.Late);
  Alcotest.(check bool) "post-cursor vote lands" true
    (Profile.add profile ~distance:1 ~time:2.8 = Profile.Added)

(* --- drift --- *)

let drift_obs =
  {
    Socialnet.Density.distances = [| 1; 2 |];
    times = [| 1.; 2.; 3. |];
    density = [| [| 2.; 4.; 6. |]; [| 1.; 2.; 0. |] |];
    population = [| 50; 50 |];
  }

let test_drift_relative_error () =
  (* perfect prediction: zero error over the t > 1 cells with data *)
  let exact ~x ~t =
    let ix = int_of_float x - 1 and it = int_of_float t - 1 in
    drift_obs.Socialnet.Density.density.(ix).(it)
  in
  let err, cells =
    Drift.relative_error ~predict:exact ~obs:drift_obs
      ~times:drift_obs.Socialnet.Density.times
  in
  Alcotest.(check int) "cells: t>1 with positive density" 3 cells;
  Alcotest.(check (float 1e-12)) "exact fit has zero drift" 0. err;
  (* uniformly 50% low -> drift 0.5 *)
  let half ~x ~t = exact ~x ~t /. 2. in
  let err, _ =
    Drift.relative_error ~predict:half ~obs:drift_obs
      ~times:drift_obs.Socialnet.Density.times
  in
  Alcotest.(check (float 1e-12)) "half fit drifts 0.5" 0.5 err;
  (* restricting times restricts the cells *)
  let _, cells =
    Drift.relative_error ~predict:exact ~obs:drift_obs ~times:[| 1.; 2. |]
  in
  Alcotest.(check int) "restricted times" 2 cells;
  let err, cells =
    Drift.relative_error ~predict:exact ~obs:drift_obs ~times:[||]
  in
  Alcotest.(check int) "no times, no cells" 0 cells;
  Alcotest.(check (float 0.)) "no times, zero error" 0. err

let test_drift_should_refit () =
  let cfg = { Drift.threshold = 0.25; min_votes = 8; min_new_votes = 4 } in
  let go ?(drift = 0.3) ?(cells = 3) ?(votes = 20) ?(votes_at_fit = 10) () =
    Drift.should_refit cfg ~drift ~cells ~votes ~votes_at_fit
  in
  Alcotest.(check bool) "fires past threshold" true (go ());
  Alcotest.(check bool) "below threshold holds" false (go ~drift:0.2 ());
  Alcotest.(check bool) "no cells holds" false (go ~cells:0 ());
  Alcotest.(check bool) "too few votes holds" false (go ~votes:5 ~votes_at_fit:0 ());
  Alcotest.(check bool) "too few new votes holds" false (go ~votes_at_fit:18 ());
  Alcotest.(check bool) "nan drift fires when gates pass" true
    (go ~drift:Float.nan ());
  Alcotest.(check bool) "infinite drift fires" true (go ~drift:infinity ())

(* --- Fit warm starts --- *)

(* a synthetic observation generated by the model itself, so the fit
   landscape has a clean optimum *)
let synthetic_obs () =
  let params = Dl.Params.paper_hops in
  let distances = [| 1; 2; 3; 4; 5; 6 |] in
  let times = [| 1.; 2.; 3.; 4.; 5. |] in
  let phi =
    Dl.Initial.of_observations
      ~xs:(Array.map float_of_int distances)
      ~densities:[| 11.1; 6.1; 2.1; 1.6; 0.8; 0.4 |]
  in
  let sol = Dl.Model.solve params ~phi ~times in
  {
    Socialnet.Density.distances;
    times;
    density =
      Array.map
        (fun x ->
          Array.map
            (fun t -> Dl.Model.predict sol ~x:(float_of_int x) ~t)
            times)
        distances;
    population = Array.map (fun _ -> 100) distances;
  }

let test_fit_warm_start_fewer_evaluations () =
  let obs = synthetic_obs () in
  let config =
    { Dl.Fit.default_config with Dl.Fit.fit_times = [| 2.; 3. |] }
  in
  let cold = Dl.Fit.fit ~config (Numerics.Rng.create 7) obs in
  let warm_config = { config with Dl.Fit.starts = 1 } in
  let warm =
    Dl.Fit.fit ~config:warm_config
      ~init:(Dl.Fit.Init_params cold.Dl.Fit.params)
      (Numerics.Rng.create 7) obs
  in
  Alcotest.(check bool) "warm uses strictly fewer evaluations" true
    (warm.Dl.Fit.evaluations < cold.Dl.Fit.evaluations);
  (* Nelder--Mead never loses its best vertex, and the warm simplex
     starts at the cold optimum *)
  Alcotest.(check bool) "warm training error no worse" true
    (warm.Dl.Fit.training_error <= cold.Dl.Fit.training_error +. 1e-12)

let test_fit_init_simplex_validation () =
  let obs = synthetic_obs () in
  let config =
    {
      Dl.Fit.default_config with
      Dl.Fit.fit_times = [| 2. |];
      starts = 1;
      solver_nx = 21;
      solver_dt = 0.1;
    }
  in
  let fit_with simplex =
    Dl.Fit.fit ~config ~init:(Dl.Fit.Init_simplex simplex)
      (Numerics.Rng.create 7) obs
  in
  (* 5 parameters need 6 vertices of length 5 *)
  Alcotest.check_raises "wrong vertex count"
    (Invalid_argument "Fit: init simplex must be 6 vertices of length 5")
    (fun () -> ignore (fit_with (Array.make 3 (Array.make 5 0.1))));
  Alcotest.check_raises "wrong vertex length"
    (Invalid_argument "Fit: init simplex must be 6 vertices of length 5")
    (fun () -> ignore (fit_with (Array.make 6 (Array.make 4 0.1))))

let test_fit_warm_metric () =
  let obs = synthetic_obs () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let m = Obs.Metrics.counter "fit.warm_starts" in
  let before = Obs.Metrics.counter_value m in
  let config =
    {
      Dl.Fit.default_config with
      Dl.Fit.fit_times = [| 2. |];
      starts = 1;
      solver_nx = 21;
      solver_dt = 0.1;
    }
  in
  let cold = Dl.Fit.fit ~config (Numerics.Rng.create 7) obs in
  Alcotest.(check int) "cold fit does not count" 0
    (Obs.Metrics.counter_value m - before);
  ignore
    (Dl.Fit.fit ~config
       ~init:(Dl.Fit.Init_params cold.Dl.Fit.params)
       (Numerics.Rng.create 7) obs);
  Alcotest.(check int) "warm fit counts" 1
    (Obs.Metrics.counter_value m - before)

(* --- store format v3 --- *)

let v3_record () =
  {
    Store.Format.id = "r-live";
    story = "replay-7";
    source = "live";
    model = "dl";
    created_ns = 42;
    params =
      Dl.Params.make ~d:0.01 ~k:25.
        ~r:(Dl.Growth.Exp_decay { a = 1.4; b = 1.5; c = 0.25 })
        ~l:1. ~big_l:6.;
    phi_xs = [| 1.; 2.; 3. |];
    phi_densities = [| 2.0; 1.2; 0.7 |];
    phi_construction = `Pchip;
    scheme = Dl.Model.Strang;
    nx = 41;
    dt = 0.05;
    reference_stepper = false;
    fit_times = [| 2.; 3. |];
    training_error = 0.25;
    evaluations = 321;
    starts = 2;
    trace_id = "abcdef0123456789abcdef0123456789";
    obs_cursor = 4.53;
  }

let test_store_v3_roundtrip () =
  let r = v3_record () in
  match Store.Format.decode (Store.Format.encode r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check bool) "bit-equal roundtrip" true (Store.Format.equal r r');
    Alcotest.(check string) "trace id survives" r.Store.Format.trace_id
      r'.Store.Format.trace_id;
    Alcotest.(check (float 0.)) "cursor survives" r.Store.Format.obs_cursor
      r'.Store.Format.obs_cursor

let test_store_v2_compat () =
  (* a v2 payload is a v3 payload minus the two trailing fields, with
     the version byte rewound — decode must default them *)
  let r = { (v3_record ()) with Store.Format.trace_id = ""; obs_cursor = 0. } in
  let v3 = Store.Format.encode r in
  (* trailing bytes: u32 len=0 (empty trace_id) + 8-byte float *)
  let v2 =
    "\x02" ^ String.sub v3 1 (String.length v3 - 1 - 12)
  in
  match Store.Format.decode v2 with
  | Error e -> Alcotest.failf "v2 payload rejected: %s" e
  | Ok r' ->
    Alcotest.(check bool) "decodes equal to v3 defaults" true
      (Store.Format.equal r r');
    Alcotest.(check string) "empty trace id" "" r'.Store.Format.trace_id;
    Alcotest.(check (float 0.)) "zero cursor" 0. r'.Store.Format.obs_cursor

let test_record_of_fit_carries_live_fields () =
  let obs = synthetic_obs () in
  let config =
    {
      Dl.Fit.default_config with
      Dl.Fit.fit_times = [| 2. |];
      starts = 1;
      solver_nx = 21;
      solver_dt = 0.1;
    }
  in
  let result = Dl.Fit.fit ~config (Numerics.Rng.create 7) obs in
  let phi =
    Dl.Initial.of_observations
      ~xs:(Array.map float_of_int obs.Socialnet.Density.distances)
      ~densities:
        (Array.map (fun row -> row.(0)) obs.Socialnet.Density.density)
  in
  let r =
    Store.record_of_fit ~story:"s" ~source:"live" ~trace_id:"deadbeef"
      ~obs_cursor:3.25 ~phi ~config ~result ()
  in
  Alcotest.(check string) "trace id" "deadbeef" r.Store.Format.trace_id;
  Alcotest.(check (float 0.)) "cursor" 3.25 r.Store.Format.obs_cursor;
  let bare = Store.record_of_fit ~phi ~config ~result () in
  Alcotest.(check string) "defaults empty" "" bare.Store.Format.trace_id;
  Alcotest.(check (float 0.)) "defaults zero" 0. bare.Store.Format.obs_cursor

(* --- end-to-end: /observe -> drift -> warm refit daemon --- *)

let with_server ~config f =
  let server = Serve.Server.create ~config () in
  let th = Thread.create Serve.Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Thread.join th;
      Obs.set_enabled false)
    (fun () -> f (Serve.Server.port server))

let ok = function
  | Ok (r : Serve.Client.response) -> r
  | Error msg -> Alcotest.failf "request failed: %s" msg

let json_of (r : Serve.Client.response) =
  match J.parse r.Serve.Client.body with
  | Ok v -> v
  | Error e -> Alcotest.failf "bad JSON body %S: %s" r.Serve.Client.body e

let member_exn name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

(* poll /live until no refit is in flight for [story] *)
let wait_refit_idle conn story =
  let deadline = Unix.gettimeofday () +. 60. in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "refit did not finish within 60s";
    let r = ok (Serve.Client.request_on conn "GET" ("/live?story=" ^ story)) in
    let stories =
      Option.get (J.to_list (member_exn "stories" (json_of r)))
    in
    match stories with
    | [ s ] -> (
      match member_exn "refit_inflight" s with
      | J.Bool false -> s
      | _ ->
        Thread.delay 0.02;
        go ())
    | _ -> Alcotest.failf "expected one story, got %d" (List.length stories)
  in
  go ()

let vote_json (e : Socialnet.Replay.event) =
  J.Object
    [
      ("voter", J.Number (float_of_int e.Socialnet.Replay.voter));
      ("time", J.Number e.Socialnet.Replay.time);
      ("distance", J.Number (float_of_int e.Socialnet.Replay.distance));
    ]

let num_array a = J.List (List.map (fun v -> J.Number v) (Array.to_list a))

let test_e2e_observe_refit () =
  with_dir @@ fun dir ->
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.port = 0;
      jobs = 2;
      store_dir = Some dir;
    }
  in
  let story = "e2e" in
  let stream = Socialnet.Replay.simulate ~seed:7 () in
  let events = stream.Socialnet.Replay.events in
  with_server ~config @@ fun port ->
  let conn =
    match Serve.Client.connect ~timeout:30. ~port () with
    | Ok c -> c
    | Error msg -> Alcotest.failf "connect: %s" msg
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close conn) @@ fun () ->
  let n = Array.length events in
  let batch = 40 in
  let i = ref 0 in
  while !i < n do
    let j = ref (min n (!i + batch)) in
    (* never split equal event times across a batch boundary, so a
       refit's obs_cursor identifies the folded vote set exactly *)
    while
      !j < n
      && events.(!j).Socialnet.Replay.time
         = events.(!j - 1).Socialnet.Replay.time
    do
      incr j
    done;
    let votes =
      Array.to_list (Array.sub events !i (!j - !i)) |> List.map vote_json
    in
    let fields =
      [ ("story", J.String story); ("votes", J.List votes) ]
      @
      if !i = 0 then
        [
          ("times", num_array stream.Socialnet.Replay.times);
          ( "population",
            num_array
              (Array.map float_of_int stream.Socialnet.Replay.population) );
          ( "max_distance",
            J.Number (float_of_int stream.Socialnet.Replay.max_distance) );
        ]
      else []
    in
    let body = J.to_string (J.Object fields) in
    let r = ok (Serve.Client.request_on conn ~body "POST" "/observe") in
    Alcotest.(check int) "observe 200" 200 r.Serve.Client.status;
    (* serialize daemon fits so each refit's input is a batch boundary *)
    ignore (wait_refit_idle conn story);
    i := !j
  done;
  let status = wait_refit_idle conn story in
  let field name = member_exn name status in
  let fits = Option.get (J.to_int (field "fits")) in
  let refits = Option.get (J.to_int (field "refits")) in
  Alcotest.(check bool) "daemon fitted at least twice" true (fits >= 2);
  Alcotest.(check bool) "at least one drift-triggered warm refit" true
    (refits >= 1);
  let serving =
    match field "fit" with
    | J.String id -> id
    | _ -> Alcotest.fail "no serving fit"
  in
  (* the serving fit is the daemon's latest generation *)
  let gen =
    match String.rindex_opt serving 'g' with
    | Some k ->
      int_of_string
        (String.sub serving (k + 1) (String.length serving - k - 1))
    | None -> Alcotest.failf "unexpected daemon fit id %S" serving
  in
  Alcotest.(check bool) "warm generation" true (gen >= 2);
  let records, _ = Store.load dir in
  let find id =
    match
      List.find_opt (fun r -> r.Store.Format.id = id) records
    with
    | Some r -> r
    | None -> Alcotest.failf "record %S not in store" id
  in
  let warm_rec = find serving in
  let prev_rec = find (Printf.sprintf "live-%s-g%d" story (gen - 1)) in
  Alcotest.(check string) "daemon records carry source live" "live"
    warm_rec.Store.Format.source;
  Alcotest.(check bool) "cursor persisted" true
    (warm_rec.Store.Format.obs_cursor > 0.);
  Alcotest.(check bool) "daemon trace id persisted" true
    (warm_rec.Store.Format.trace_id <> "");
  (* --- offline replica of the daemon's warm refit --- *)
  let cursor = warm_rec.Store.Format.obs_cursor in
  let profile =
    Profile.create ~lateness:config.Serve.Server.live_lateness
      ~max_distance:stream.Socialnet.Replay.max_distance
      ~times:stream.Socialnet.Replay.times
      ~population:stream.Socialnet.Replay.population ()
  in
  Array.iter
    (fun (e : Socialnet.Replay.event) ->
      if e.Socialnet.Replay.time <= cursor then
        ignore
          (Profile.add profile ~distance:e.Socialnet.Replay.distance
             ~time:e.Socialnet.Replay.time))
    events;
  let observed = Profile.observed_times profile in
  let full = Profile.density profile in
  let m = Array.length observed in
  let obs =
    {
      full with
      Socialnet.Density.times = observed;
      density =
        Array.map (fun row -> Array.sub row 0 m) full.Socialnet.Density.density;
    }
  in
  let fit_times =
    Array.of_list (List.filter (fun tm -> tm > 1.) (Array.to_list observed))
  in
  let fit_config =
    { Dl.Fit.default_config with Dl.Fit.fit_times; starts = 1 }
  in
  let offline =
    Dl.Fit.fit ~config:fit_config
      ~init:(Dl.Fit.Init_params prev_rec.Store.Format.params)
      (Numerics.Rng.create config.Serve.Server.live_seed)
      obs
  in
  Alcotest.(check int) "same evaluation count as the daemon's refit"
    warm_rec.Store.Format.evaluations offline.Dl.Fit.evaluations;
  (* predictions agree within 1e-6 relative error on the fitting cells *)
  let phi = Store.Format.phi warm_rec in
  let sol_daemon =
    Dl.Model.solve warm_rec.Store.Format.params ~phi ~times:fit_times
  in
  let sol_offline =
    Dl.Model.solve offline.Dl.Fit.params ~phi ~times:fit_times
  in
  Array.iter
    (fun x ->
      Array.iter
        (fun tq ->
          let xf = float_of_int x in
          let a = Dl.Model.predict sol_daemon ~x:xf ~t:tq in
          let b = Dl.Model.predict sol_offline ~x:xf ~t:tq in
          let denom = Float.max 1e-9 (Float.abs a) in
          Alcotest.(check bool)
            (Printf.sprintf "cell (%d, %g) within 1e-6" x tq)
            true
            (Float.abs (a -. b) /. denom <= 1e-6))
        fit_times)
    obs.Socialnet.Density.distances;
  (* the warm refit is strictly cheaper than an equivalent cold fit *)
  let cold =
    Dl.Fit.fit
      ~config:{ Dl.Fit.default_config with Dl.Fit.fit_times }
      (Numerics.Rng.create config.Serve.Server.live_seed)
      obs
  in
  Alcotest.(check bool) "warm refit beats cold on evaluations" true
    (warm_rec.Store.Format.evaluations < cold.Dl.Fit.evaluations)

let test_observe_validation () =
  let config =
    { Serve.Server.default_config with Serve.Server.port = 0; jobs = 1 }
  in
  with_server ~config @@ fun port ->
  let post body = ok (Serve.Client.request ~port ~body "POST" "/observe") in
  (* unknown story without grid fields *)
  let r = post {|{"story":"x","votes":[]}|} in
  Alcotest.(check int) "unknown story needs grid" 400 r.Serve.Client.status;
  (* malformed vote *)
  let r =
    post
      {|{"story":"x","votes":[{"voter":1}],"times":[1,2],"population":[10]}|}
  in
  Alcotest.(check int) "vote without time" 400 r.Serve.Client.status;
  (* distance-less vote without graph context *)
  let r =
    post
      {|{"story":"x","votes":[{"voter":1,"time":0.5}],"times":[1,2],"population":[10]}|}
  in
  Alcotest.(check int) "no distance, no graph" 400 r.Serve.Client.status;
  (* a valid stream works and reports drop accounting *)
  let r =
    post
      {|{"story":"y","votes":[{"voter":1,"time":0.5,"distance":1},
                              {"voter":2,"time":1.5,"distance":9},
                              {"voter":3,"time":9.0,"distance":1}],
         "times":[1,2],"population":[10],"lateness":1}|}
  in
  Alcotest.(check int) "valid stream" 200 r.Serve.Client.status;
  let j = json_of r in
  Alcotest.(check (option int)) "ingested" (Some 1)
    (J.to_int (member_exn "ingested" j));
  Alcotest.(check (option int)) "out of range" (Some 1)
    (J.to_int (member_exn "out_of_range" j));
  Alcotest.(check (option int)) "beyond horizon" (Some 1)
    (J.to_int (member_exn "beyond_horizon" j));
  (* the late vote, after the watermark moved to 9 *)
  let r =
    post {|{"story":"y","votes":[{"voter":4,"time":0.6,"distance":1}]}|}
  in
  Alcotest.(check (option int)) "late vote dropped" (Some 1)
    (J.to_int (member_exn "late" (json_of r)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_profile_matches_batch_shuffled;
      prop_profile_matches_batch_ordered;
      prop_profile_matches_batch_jittered;
    ]
  @ [
      ("profile late drop accounting", `Quick, test_profile_late_drop);
      ("profile matches replay batch reference", `Quick, test_profile_replay_stream);
      ("profile cursor resume", `Quick, test_profile_cursor_resume);
      ("drift relative error", `Quick, test_drift_relative_error);
      ("drift refit gates", `Quick, test_drift_should_refit);
      ("warm start: fewer evaluations, no worse error", `Slow,
        test_fit_warm_start_fewer_evaluations);
      ("warm start: simplex validation", `Quick, test_fit_init_simplex_validation);
      ("warm start: fit.warm_starts metric", `Quick, test_fit_warm_metric);
      ("store v3 roundtrip", `Quick, test_store_v3_roundtrip);
      ("store v2 payload compat", `Quick, test_store_v2_compat);
      ("record_of_fit carries trace id and cursor", `Quick,
        test_record_of_fit_carries_live_fields);
      ("e2e: observe -> drift -> warm refit daemon", `Slow, test_e2e_observe_refit);
      ("observe validation and drop accounting", `Quick, test_observe_validation);
    ]
