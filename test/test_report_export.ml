(* Tests for Dl.Export and Dl.Report: file formats, round-trip sanity
   and markdown structure. *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let with_temp suffix f =
  let path = Filename.temp_file "dlosn_export" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let sample_obs =
  {
    Socialnet.Density.distances = [| 1; 2 |];
    times = [| 1.; 2. |];
    density = [| [| 5.; 8. |]; [| 1.; 3. |] |];
    population = [| 10; 40 |];
  }

let experiment =
  lazy
    (let c = Socialnet.Digg.build ~scale:Socialnet.Digg.small ~seed:5 () in
     let ds = c.Socialnet.Digg.dataset in
     let s1 = Socialnet.Dataset.story ds c.Socialnet.Digg.rep_ids.(0) in
     Dl.Pipeline.run ds ~story:s1 ~metric:Dl.Pipeline.hops)

let test_density_series_format () =
  with_temp ".tsv" (fun path ->
      Dl.Export.write_density_series sample_obs ~path;
      match lines (read_file path) with
      | header :: rows ->
        Alcotest.(check string) "header" "time\tdistance\tdensity\tpopulation" header;
        Alcotest.(check int) "2 times x 2 distances" 4 (List.length rows);
        Alcotest.(check string) "first row" "1\t1\t5.000000\t10" (List.hd rows)
      | [] -> Alcotest.fail "empty file")

let test_profiles_format () =
  with_temp ".tsv" (fun path ->
      Dl.Export.write_profiles sample_obs ~path;
      match lines (read_file path) with
      | header :: rows ->
        Alcotest.(check string) "header" "time\tx1\tx2" header;
        Alcotest.(check int) "one row per time" 2 (List.length rows)
      | [] -> Alcotest.fail "empty file")

let test_distance_distribution_format () =
  with_temp ".tsv" (fun path ->
      Dl.Export.write_distance_distribution [| (1, 0.25); (2, 0.75) |] ~path;
      let content = read_file path in
      Alcotest.(check bool) "has rows" true
        (contains ~needle:"1\t0.250000" content
         && contains ~needle:"2\t0.750000" content))

let test_growth_rate_export () =
  with_temp ".tsv" (fun path ->
      Dl.Export.write_growth_rate Dl.Growth.paper_hops ~t0:1. ~t1:5.
        ~samples:5 ~path;
      match lines (read_file path) with
      | _ :: rows ->
        Alcotest.(check int) "sample count" 5 (List.length rows);
        (* first sample is r(1) = 1.65 *)
        Alcotest.(check bool) "r(1)" true
          (contains ~needle:"1.650000" (List.hd rows))
      | [] -> Alcotest.fail "empty file")

let test_accuracy_table_na () =
  let table =
    Dl.Accuracy.table
      ~predict:(fun ~x:_ ~t:_ -> 1.)
      ~actual:(fun ~x ~t:_ -> if x = 1 then 0. else 2.)
      ~distances:[| 1; 2 |] ~times:[| 2. |]
  in
  with_temp ".tsv" (fun path ->
      Dl.Export.write_accuracy_table table ~path;
      let content = read_file path in
      Alcotest.(check bool) "NA for undefined" true (contains ~needle:"NA" content);
      Alcotest.(check bool) "percent for defined" true
        (contains ~needle:"50.0000" content))

let test_export_experiment_bundle () =
  let exp = Lazy.force experiment in
  let dir = Filename.temp_file "dlosn" "_dir" in
  Sys.remove dir;
  let written = Dl.Export.export_experiment exp ~dir ~prefix:"t" in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove written;
      Sys.rmdir dir)
    (fun () ->
      Alcotest.(check int) "five files" 5 (List.length written);
      List.iter
        (fun path ->
          Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
          Alcotest.(check bool) "non-empty" true
            (String.length (read_file path) > 20))
        written)

let test_surface_export_dense () =
  let exp = Lazy.force experiment in
  with_temp ".tsv" (fun path ->
      Dl.Export.write_solution_surface ~samples_x:11 exp.Dl.Pipeline.solution
        ~path;
      match lines (read_file path) with
      | _ :: rows ->
        (* 11 x-samples per recorded time (t = 1 snapshot + 5 predictions) *)
        Alcotest.(check int) "rows" (11 * 6) (List.length rows)
      | [] -> Alcotest.fail "empty file")

let test_report_structure () =
  let exp = Lazy.force experiment in
  let text = Dl.Report.render ~title:"Test report" exp in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle text))
    [
      "# Test report"; "## Setup"; "## Model"; "## Prediction accuracy";
      "friendship hops"; "unique property"; "**overall**";
    ]

let test_report_with_baselines () =
  let exp = Lazy.force experiment in
  let text =
    Dl.Report.render_with_baselines exp
      ~baselines:
        [ ("persistence", Dl.Baselines.persistence exp.Dl.Pipeline.observation) ]
  in
  Alcotest.(check bool) "baseline section" true
    (contains ~needle:"## Baseline comparison" text);
  Alcotest.(check bool) "baseline row" true (contains ~needle:"| persistence |" text)

let test_report_save () =
  with_temp ".md" (fun path ->
      Dl.Report.save ~path "# hello\n";
      Alcotest.(check string) "round trip" "# hello\n" (read_file path))

let suite =
  [
    Alcotest.test_case "density series" `Quick test_density_series_format;
    Alcotest.test_case "profiles" `Quick test_profiles_format;
    Alcotest.test_case "distance distribution" `Quick test_distance_distribution_format;
    Alcotest.test_case "growth rate" `Quick test_growth_rate_export;
    Alcotest.test_case "accuracy NA cells" `Quick test_accuracy_table_na;
    Alcotest.test_case "experiment bundle" `Slow test_export_experiment_bundle;
    Alcotest.test_case "surface density" `Slow test_surface_export_dense;
    Alcotest.test_case "report structure" `Slow test_report_structure;
    Alcotest.test_case "report baselines" `Slow test_report_with_baselines;
    Alcotest.test_case "report save" `Quick test_report_save;
  ]
